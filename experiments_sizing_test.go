package bufqos_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"bufqos/internal/sizing"
)

// TestExperimentsSizingTable pins the EXPERIMENTS.md buffer-sizing
// tables to the committed BENCH_sizing.json: every tail-drop closed-loop
// cell (the √n-regime table) and every scheme-ladder cell (n = 10 at
// B = C·RTT) must appear as a row, rendered exactly as
// sizing.SqrtRegimeRows/SchemeLadderRows render them — so regenerating
// the benchmark without updating the documented numbers fails the
// build, and vice versa.
func TestExperimentsSizingTable(t *testing.T) {
	raw, err := os.ReadFile("BENCH_sizing.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep sizing.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_sizing.json: %v", err)
	}

	doc, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	const (
		beginTag = "<!-- sizing-table:begin"
		endTag   = "<!-- sizing-table:end -->"
	)
	s := string(doc)
	begin := strings.Index(s, beginTag)
	end := strings.Index(s, endTag)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("EXPERIMENTS.md lacks the sizing-table markers (%q ... %q)", beginTag, endTag)
	}
	table := s[begin:end]

	rows := sizing.SqrtRegimeRows(&rep)
	if len(rows) == 0 {
		t.Fatal("BENCH_sizing.json has no closed-loop fifo+none cells")
	}
	for _, row := range rows {
		if !strings.Contains(table, row) {
			t.Errorf("EXPERIMENTS.md sizing table lacks the row %q", row)
		}
	}

	ladder := sizing.SchemeLadderRows(&rep)
	if len(ladder) == 0 {
		t.Fatal("BENCH_sizing.json has no n=10 bdp scheme-ladder cells")
	}
	for _, row := range ladder {
		if !strings.Contains(table, row) {
			t.Errorf("EXPERIMENTS.md scheme-ladder table lacks the row %q", row)
		}
	}
}
