// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the per-packet primitives whose
// O(1) cost is the paper's whole argument.
//
// The figure benchmarks run a scaled-down version of the corresponding
// experiment (fewer replications, shorter runs, a coarse buffer sweep)
// and report the figure's defining quantities via b.ReportMetric so the
// shape can be read straight from `go test -bench`. Full-scale numbers
// come from `go run ./cmd/qsim`; EXPERIMENTS.md records both.
package bufqos_test

import (
	"context"
	"strings"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/fluid"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

// benchOpts is the reduced-scale configuration shared by the figure
// benchmarks.
func benchOpts() *experiment.Options {
	o := &experiment.Options{
		Runs:        2,
		Duration:    4,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(1), units.MegaBytes(3)},
		Headrooms:   []units.Bytes{0, units.KiloBytes(250), units.KiloBytes(500)},
		Headroom:    units.KiloBytes(500),
	}
	experiment.WithWarmup(0.5)(o)
	experiment.WithSeed(1)(o)
	return o
}

// reportEdge reports a series' value at the smallest and largest swept
// buffer, which is where each figure's story lives.
func reportEdge(b *testing.B, fig experiment.Figure, label, unit string) {
	b.Helper()
	s, ok := fig.SeriesByLabel(label)
	if !ok {
		b.Fatalf("%s: series %q missing", fig.ID, label)
	}
	// Metric units may not contain whitespace.
	name := strings.ReplaceAll(label, " ", "-")
	b.ReportMetric(s.Points[0].Mean, name+"@min-"+unit)
	b.ReportMetric(s.Points[len(s.Points)-1].Mean, name+"@max-"+unit)
}

func runFigure(b *testing.B, fn func(context.Context, *experiment.Options) (experiment.Figure, error)) experiment.Figure {
	b.Helper()
	var fig experiment.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = fn(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// --- Tables ---

// BenchmarkTable1Workload measures generation of the Table 1 traffic
// mix and reports the realized offered load (paper: "a little over
// 100%" of the link).
func BenchmarkTable1Workload(b *testing.B) {
	benchWorkload(b, experiment.Table1Flows())
}

// BenchmarkTable2Workload does the same for the Table 2 mix.
func BenchmarkTable2Workload(b *testing.B) {
	benchWorkload(b, experiment.Table2Flows())
}

func benchWorkload(b *testing.B, flows []experiment.FlowConfig) {
	b.Helper()
	var offered float64
	for i := 0; i < b.N; i++ {
		s := sim.New()
		var total units.Bytes
		sink := source.SinkFunc(func(p *packet.Packet) { total += p.Size })
		for fi, f := range flows {
			src := source.NewOnOff(s, sim.NewRand(sim.DeriveSeed(1, fi)), source.OnOffConfig{
				Flow: fi, PacketSize: experiment.DefaultPacketSize,
				PeakRate: f.Spec.PeakRate, AvgRate: f.AvgRate, MeanBurst: f.MeanBurst,
			}, sink)
			src.Start()
		}
		const dur = 5.0
		s.RunUntil(dur)
		offered = total.Bits() / dur / experiment.DefaultLinkRate.BitsPerSecond()
	}
	b.ReportMetric(offered, "offered-load")
}

// --- Sweep execution: sequential vs worker pool ---

// BenchmarkFigure1Sequential and BenchmarkFigure1Parallel run the same
// Figure 1 sweep with Workers=1 and Workers=GOMAXPROCS; the ns/op ratio
// is the wall-clock speedup of the worker pool (the outputs themselves
// are identical — TestParallelRunLinesMatchesSequential asserts so).
func BenchmarkFigure1Sequential(b *testing.B) {
	o := benchOpts()
	o.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure1(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Parallel(b *testing.B) {
	o := benchOpts()
	o.Workers = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure1(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1-3: threshold-based buffer management ---

func BenchmarkFigure1(b *testing.B) {
	fig := runFigure(b, experiment.Figure1)
	reportEdge(b, fig, "FIFO", "util")
	reportEdge(b, fig, "FIFO+thresholds", "util")
	reportEdge(b, fig, "WFQ+thresholds", "util")
}

func BenchmarkFigure2(b *testing.B) {
	fig := runFigure(b, experiment.Figure2)
	reportEdge(b, fig, "FIFO", "loss")
	reportEdge(b, fig, "FIFO+thresholds", "loss")
	reportEdge(b, fig, "WFQ+thresholds", "loss")
}

func BenchmarkFigure3(b *testing.B) {
	fig := runFigure(b, experiment.Figure3)
	reportEdge(b, fig, "WFQ+thresholds flow6", "mbps")
	reportEdge(b, fig, "WFQ+thresholds flow8", "mbps")
	reportEdge(b, fig, "FIFO+thresholds flow6", "mbps")
	reportEdge(b, fig, "FIFO+thresholds flow8", "mbps")
}

// --- Figures 4-7: buffer sharing ---

func BenchmarkFigure4(b *testing.B) {
	fig := runFigure(b, experiment.Figure4)
	reportEdge(b, fig, "FIFO+sharing", "util")
	reportEdge(b, fig, "WFQ+sharing", "util")
	reportEdge(b, fig, "FIFO", "util")
}

func BenchmarkFigure5(b *testing.B) {
	fig := runFigure(b, experiment.Figure5)
	reportEdge(b, fig, "FIFO+sharing", "loss")
	reportEdge(b, fig, "WFQ+sharing", "loss")
}

func BenchmarkFigure6(b *testing.B) {
	fig := runFigure(b, experiment.Figure6)
	reportEdge(b, fig, "FIFO+sharing flow6", "mbps")
	reportEdge(b, fig, "FIFO+sharing flow8", "mbps")
}

func BenchmarkFigure7(b *testing.B) {
	fig := runFigure(b, experiment.Figure7)
	reportEdge(b, fig, "FIFO+sharing", "loss")
	reportEdge(b, fig, "WFQ+sharing", "loss")
}

// --- Figures 8-13: hybrid systems ---

func BenchmarkFigure8(b *testing.B) {
	fig := runFigure(b, experiment.Figure8)
	reportEdge(b, fig, "hybrid+sharing", "util")
	reportEdge(b, fig, "WFQ+sharing", "util")
}

func BenchmarkFigure9(b *testing.B) {
	fig := runFigure(b, experiment.Figure9)
	reportEdge(b, fig, "hybrid+sharing", "loss")
	reportEdge(b, fig, "WFQ+sharing", "loss")
}

func BenchmarkFigure10(b *testing.B) {
	fig := runFigure(b, experiment.Figure10)
	reportEdge(b, fig, "hybrid+sharing flow6", "mbps")
	reportEdge(b, fig, "hybrid+sharing flow8", "mbps")
}

func BenchmarkFigure11(b *testing.B) {
	fig := runFigure(b, experiment.Figure11)
	reportEdge(b, fig, "hybrid+sharing", "util")
	reportEdge(b, fig, "WFQ+sharing", "util")
}

func BenchmarkFigure12(b *testing.B) {
	fig := runFigure(b, experiment.Figure12)
	reportEdge(b, fig, "hybrid+sharing", "loss")
	reportEdge(b, fig, "WFQ+sharing", "loss")
}

func BenchmarkFigure13(b *testing.B) {
	fig := runFigure(b, experiment.Figure13)
	reportEdge(b, fig, "hybrid+sharing moderate", "mbps")
	reportEdge(b, fig, "hybrid+sharing aggressive", "mbps")
}

// --- Analytic results quoted in the text ---

// BenchmarkBufferUtilizationCurve evaluates the §2.3 trade-off
// (equation 10) and reports the inflation at the paper's operating
// point u = 32.8/48.
func BenchmarkBufferUtilizationCurve(b *testing.B) {
	specs := experiment.Specs(experiment.Table1Flows())
	var inflation float64
	for i := 0; i < b.N; i++ {
		u := core.ReservedUtilization(specs, experiment.DefaultLinkRate)
		inflation = core.BufferInflation(u)
	}
	b.ReportMetric(inflation, "inflation@u0.683")
}

// BenchmarkHybridSavings evaluates Proposition 3 and equation (17) for
// the Case 1 grouping and reports the saved KB.
func BenchmarkHybridSavings(b *testing.B) {
	specs := experiment.Specs(experiment.Table1Flows())
	var savings units.Bytes
	for i := 0; i < b.N; i++ {
		groups, err := core.GroupFlows(specs, experiment.Table1QueueOf(), 3)
		if err != nil {
			b.Fatal(err)
		}
		savings, err = core.BufferSavings(experiment.DefaultLinkRate, groups)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(savings.KB(), "savings-KB")
}

// BenchmarkExample1Convergence iterates the §2.1 recursion to its
// fixed point.
func BenchmarkExample1Convergence(b *testing.B) {
	e, err := fluid.NewExample1(units.MbitsPerSecond(8), units.MbitsPerSecond(48), units.MegaBytes(1))
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		ivs := e.Intervals(64)
		last = ivs[len(ivs)-1].R1.Mbits()
	}
	b.ReportMetric(last, "R1-limit-mbps")
}

// --- Per-packet primitives: the complexity argument ---

// BenchmarkAdmitFixedThreshold measures the O(1) admission decision of
// the paper's scheme (compare BenchmarkWFQEnqueueDequeue).
func BenchmarkAdmitFixedThreshold(b *testing.B) {
	th, err := core.Thresholds(experiment.Specs(experiment.Table1Flows()),
		experiment.DefaultLinkRate, units.MegaBytes(1))
	if err != nil {
		b.Fatal(err)
	}
	m := buffer.NewFixedThreshold(units.MegaBytes(1), th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Admit(i%9, 500) {
			m.Release(i%9, 500)
		}
	}
}

// BenchmarkAdmitSharing measures the sharing scheme's per-packet cost —
// still O(1), a few counters more.
func BenchmarkAdmitSharing(b *testing.B) {
	th, err := core.Thresholds(experiment.Specs(experiment.Table1Flows()),
		experiment.DefaultLinkRate, units.MegaBytes(1))
	if err != nil {
		b.Fatal(err)
	}
	m := buffer.NewSharing(units.MegaBytes(1), th, units.KiloBytes(200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Admit(i%9, 500) {
			m.Release(i%9, 500)
		}
	}
}

// BenchmarkWFQEnqueueDequeue measures the per-packet cost of the
// sorted-queue alternative at 256 flows — the scaling burden the paper
// avoids.
func BenchmarkWFQEnqueueDequeue(b *testing.B) {
	const n = 256
	weights := make([]units.Rate, n)
	for i := range weights {
		weights[i] = units.Mbps
	}
	now := 0.0
	w := sched.NewWFQ(units.MbitsPerSecond(48), func() float64 { return now }, weights)
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = &packet.Packet{Flow: i, Size: 500}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Enqueue(pkts[i%n])
		now += 1e-6
		if w.Len() > n {
			w.Dequeue()
		}
	}
}

// BenchmarkFIFOEnqueueDequeue is the FIFO counterpart.
func BenchmarkFIFOEnqueueDequeue(b *testing.B) {
	f := sched.NewFIFO()
	p := &packet.Packet{Flow: 0, Size: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Enqueue(p)
		if f.Len() > 64 {
			f.Dequeue()
		}
	}
}

// BenchmarkEndToEndSimulation measures simulator throughput on the full
// Table 1 workload (packets simulated per wall-second is the inverse of
// ns/op divided by the packet count).
func BenchmarkEndToEndSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiment.Run(context.Background(), experiment.NewOptions(
			experiment.WithFlows(experiment.Table1Flows()),
			experiment.WithScheme(experiment.FIFOThreshold),
			experiment.WithBuffer(units.MegaBytes(1)),
			experiment.WithDuration(2),
			experiment.WithWarmup(0.2),
			experiment.WithSeed(int64(i+1)),
		))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimulationMetrics is the same run with a live metrics
// registry attached. Comparing its ns/op against
// BenchmarkEndToEndSimulation prices the enabled instrumentation; the
// disabled (nil-registry) path is priced by BenchmarkEndToEndSimulation
// itself against the pre-instrumentation baseline.
func BenchmarkEndToEndSimulationMetrics(b *testing.B) {
	reg := metrics.NewRegistry()
	for i := 0; i < b.N; i++ {
		_, err := experiment.Run(context.Background(), experiment.NewOptions(
			experiment.WithFlows(experiment.Table1Flows()),
			experiment.WithScheme(experiment.FIFOThreshold),
			experiment.WithBuffer(units.MegaBytes(1)),
			experiment.WithDuration(2),
			experiment.WithWarmup(0.2),
			experiment.WithSeed(int64(i+1)),
			experiment.WithMetrics(reg),
		))
		if err != nil {
			b.Fatal(err)
		}
	}
}
