package bufqos_test

import (
	"os"
	"strings"
	"testing"

	"bufqos/internal/scheme"
)

// TestReadmeSchemeCatalogue pins the README's scheme tables to the
// registry: the text between the scheme-catalogue markers must be
// exactly scheme.MarkdownCatalogue(), so adding or re-parameterizing a
// scheduler or manager without regenerating the docs fails the build.
func TestReadmeSchemeCatalogue(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	const (
		beginTag = "<!-- scheme-catalogue:begin"
		endTag   = "<!-- scheme-catalogue:end -->"
	)
	s := string(readme)
	begin := strings.Index(s, beginTag)
	end := strings.Index(s, endTag)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("README.md lacks the scheme-catalogue markers (%q ... %q)", beginTag, endTag)
	}
	// The begin marker runs to the end of its line.
	nl := strings.Index(s[begin:], "\n")
	if nl < 0 {
		t.Fatal("unterminated begin marker line")
	}
	got := s[begin+nl+1 : end]
	want := scheme.MarkdownCatalogue()
	if got != want {
		t.Errorf("README scheme catalogue is stale; replace the text between the markers with internal/scheme.MarkdownCatalogue():\n--- README ---\n%s\n--- registry ---\n%s", got, want)
	}
}
