package bufqos_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestReadmeCLITable pins the README's command-line table to the cmd/
// tree: every command directory must have a row between the cli-table
// markers, and every row must name an existing command — so adding,
// renaming, or deleting a CLI without updating the docs fails the
// build.
func TestReadmeCLITable(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	const (
		beginTag = "<!-- cli-table:begin"
		endTag   = "<!-- cli-table:end -->"
	)
	s := string(readme)
	begin := strings.Index(s, beginTag)
	end := strings.Index(s, endTag)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("README.md lacks the cli-table markers (%q ... %q)", beginTag, endTag)
	}
	table := s[begin:end]

	ents, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	var cmds []string
	for _, e := range ents {
		if e.IsDir() {
			cmds = append(cmds, e.Name())
		}
	}
	if len(cmds) == 0 {
		t.Fatal("no command directories under cmd/")
	}

	// Each command appears as a `cmd/<name>` row cell.
	for _, c := range cmds {
		cell := fmt.Sprintf("| `cmd/%s` |", c)
		if !strings.Contains(table, cell) {
			t.Errorf("README CLI table lacks a row for cmd/%s (expected a cell %q)", c, cell)
		}
	}

	// And each table row names a real command.
	rowRe := regexp.MustCompile("\\| `cmd/([a-z0-9_]+)` \\|")
	for _, m := range rowRe.FindAllStringSubmatch(table, -1) {
		if _, err := os.Stat("cmd/" + m[1] + "/main.go"); err != nil {
			t.Errorf("README CLI table row for cmd/%s does not match a command: %v", m[1], err)
		}
	}
}
