package bufqos_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"bufqos/internal/validate"
)

// TestExperimentsOracleCatalogue pins the EXPERIMENTS.md invariant
// catalogue to the oracle library: every validate.Oracles() entry must
// have a row (with its paper citation) between the oracle-catalogue
// markers, so adding or renaming an oracle without documenting it
// fails the build.
func TestExperimentsOracleCatalogue(t *testing.T) {
	doc, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	const (
		beginTag = "<!-- oracle-catalogue:begin"
		endTag   = "<!-- oracle-catalogue:end -->"
	)
	s := string(doc)
	begin := strings.Index(s, beginTag)
	end := strings.Index(s, endTag)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("EXPERIMENTS.md lacks the oracle-catalogue markers (%q ... %q)", beginTag, endTag)
	}
	table := s[begin:end]

	for _, o := range validate.Oracles() {
		row := fmt.Sprintf("| `%s` |", o.Name)
		if !strings.Contains(table, row) {
			t.Errorf("EXPERIMENTS.md oracle catalogue lacks a row for %q (expected a cell %q)", o.Name, row)
			continue
		}
		if !strings.Contains(table, o.Citation) {
			t.Errorf("EXPERIMENTS.md row for %q omits its citation %q", o.Name, o.Citation)
		}
		if !strings.Contains(table, o.Doc) {
			t.Errorf("EXPERIMENTS.md row for %q does not state its invariant %q", o.Name, o.Doc)
		}
	}
}
