package scheme

import (
	"fmt"
	"strings"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// ParamDef documents one tunable of a scheduler or manager.
type ParamDef struct {
	// Name is the key in the spec's "?name=value" list.
	Name string
	// Default applies when the spec omits the parameter.
	Default float64
	// Doc is a one-line description (units included).
	Doc string
}

// params holds the explicitly-set parameters of a parsed spec.
type params map[string]float64

// get returns the explicit value or the definition's default.
func (p params) get(defs []ParamDef, name string) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	for _, d := range defs {
		if d.Name == name {
			return d.Default
		}
	}
	panic(fmt.Sprintf("scheme: undeclared parameter %q", name))
}

// schedulerDef is one registered scheduler.
type schedulerDef struct {
	name    string // spec token, e.g. "wfq"
	display string // label fragment for result tables, e.g. "WFQ"
	doc     string
	paper   string // paper section or reference
	takesK  bool   // accepts the ":k" queue-count argument
	// popSensitive marks schedulers whose per-flow behaviour depends on
	// the whole flow population, not just each flow's own spec: hybrid
	// aggregates (σ, ρ) over every flow in a queue to size rates and
	// buffers, and DRR normalizes quanta by the population's minimum
	// weight. Such schemes must be built with the full global population
	// even on links only a subset of flows traverses.
	popSensitive bool
	params       []ParamDef
	build        func(cfg Config, s *Scheme) (sched.Scheduler, error)
	// combined, when set, builds manager and scheduler together: the
	// hybrid architecture partitions the buffer per queue, and the
	// pushout/online policies ARE their own manager (preemption removes
	// queued packets, which no manager/scheduler split can express).
	combined func(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error)
	// allowedManagers restricts which manager names compose with a
	// combined scheduler (nil = any manager). Combined schedulers that
	// bring their own admission policy accept only "none".
	allowedManagers map[string]bool
}

// allowedManagerNames formats a combined scheduler's accepted manager
// list for error messages, in catalogue order.
func (sd *schedulerDef) allowedManagerNames() string {
	var names []string
	for _, md := range managers {
		if sd.allowedManagers[md.name] {
			names = append(names, md.name)
		}
	}
	return strings.Join(names, "/")
}

// managerDef is one registered buffer manager.
type managerDef struct {
	name    string // spec token, e.g. "threshold"
	aliases []string
	display string // label fragment, e.g. "thresholds"; "" for none
	doc     string
	paper   string
	params  []ParamDef
	build   func(cfg Config, p params) (buffer.Manager, error)
}

// thresholds computes the paper's per-flow thresholds σᵢ + ρᵢB/R.
func thresholds(cfg Config) ([]units.Bytes, error) {
	return core.Thresholds(cfg.Specs, cfg.LinkRate, cfg.Buffer)
}

// schedulers is the scheduler registry, in catalogue order.
var schedulers = []*schedulerDef{
	{
		name: "fifo", display: "FIFO",
		doc:   "single shared FIFO queue",
		paper: "§2",
		build: func(Config, *Scheme) (sched.Scheduler, error) { return sched.NewFIFO(), nil },
	},
	{
		name: "wfq", display: "WFQ",
		doc:   "per-flow weighted fair queueing (exact virtual time), weights = token rates",
		paper: "§3.2",
		build: func(cfg Config, _ *Scheme) (sched.Scheduler, error) {
			return sched.NewWFQ(cfg.LinkRate, cfg.Now, tokenRates(cfg.Specs)), nil
		},
	},
	{
		name: "hybrid", display: "hybrid",
		doc:          "k FIFO queues under WFQ (Proposition 3 rate allocation); ':k' fixes the queue count, otherwise it is derived from the flow→queue map",
		paper:        "§4",
		takesK:       true,
		popSensitive: true,
		combined: func(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
			return buildHybrid(cfg, s)
		},
		allowedManagers: hybridManagers,
	},
	{
		name: "rpq", display: "RPQ",
		doc:   "rotating priority queues, flows classed by burst-to-rate ratio",
		paper: "ref [10]",
		params: []ParamDef{
			{Name: "classes", Default: 4, Doc: "number of delay classes"},
			{Name: "interval", Default: 0.002, Doc: "rotation interval (seconds)"},
		},
		build: func(cfg Config, s *Scheme) (sched.Scheduler, error) {
			classes := s.params.get(s.sched.params, "classes")
			interval := s.params.get(s.sched.params, "interval")
			n := int(classes)
			if float64(n) != classes || n < 1 {
				return nil, fmt.Errorf("classes must be a positive integer, got %v", classes)
			}
			if interval <= 0 {
				return nil, fmt.Errorf("interval must be positive, got %v", interval)
			}
			return sched.NewRPQ(n, interval, cfg.Now, delayClasses(cfg.Specs, n)), nil
		},
	},
	{
		name: "drr", display: "DRR",
		doc:          "deficit round robin, quantum proportional to token rate",
		paper:        "related work",
		popSensitive: true,
		build: func(cfg Config, _ *Scheme) (sched.Scheduler, error) {
			return sched.NewDRR(tokenRates(cfg.Specs), cfg.packetSize()), nil
		},
	},
	{
		name: "edf", display: "EDF",
		doc:   "earliest deadline first, per-flow budget σ/ρ (burst drain time)",
		paper: "ref [4]",
		build: func(cfg Config, _ *Scheme) (sched.Scheduler, error) {
			budgets := make([]float64, len(cfg.Specs))
			for i, sp := range cfg.Specs {
				budgets[i] = sp.BucketSize.Bits() / sp.TokenRate.BitsPerSecond()
			}
			return sched.NewEDF(cfg.Now, budgets), nil
		},
	},
	{
		name: "vc", display: "VC",
		doc:   "virtual clock, rates = token rates",
		paper: "ref [8]",
		build: func(cfg Config, _ *Scheme) (sched.Scheduler, error) {
			return sched.NewVirtualClock(cfg.Now, tokenRates(cfg.Specs)), nil
		},
	},
	{
		name: "pushout", display: "pushout",
		doc:   "protective pushout FIFO (combined queue/manager): when full, an under-share flow pushes out the newest packet of the most over-share flow",
		paper: "ref [2]",
		params: []ParamDef{
			{Name: "share", Default: 0, Doc: "per-flow guaranteed share as a fraction of B; 0 derives the paper's σᵢ + ρᵢB/R thresholds"},
		},
		combined:        buildPushout,
		allowedManagers: selfManaged,
	},
	{
		name: "cgreedy", display: "cgreedy",
		doc:             "preemptive class-greedy FIFO: when full, the newest lowest-class packet is pushed out for a higher-class arrival",
		paper:           "arXiv:1103.6049",
		params:          classesParam,
		combined:        buildClassGreedy,
		allowedManagers: selfManaged,
	},
	{
		name: "classseg", display: "classseg",
		doc:             "class-segregated FIFO queues over the shared buffer, strict-priority service, lowest-class pushout",
		paper:           "arXiv:1103.6049",
		params:          classesParam,
		combined:        buildClassSeg,
		allowedManagers: selfManaged,
	},
	{
		name: "lqf", display: "LQF",
		doc:             "longest-queue-first over per-class queues with byte quotas B/classes (multi-queue switch model)",
		paper:           "arXiv:1007.1535",
		params:          classesParam,
		combined:        buildLQF,
		allowedManagers: selfManaged,
	},
	{
		name: "semigreedy", display: "semigreedy",
		doc:             "semi-greedy LQF: serve the fullest class queue above half quota, otherwise the oldest head-of-line packet",
		paper:           "arXiv:1007.1535",
		params:          classesParam,
		combined:        buildSemiGreedy,
		allowedManagers: selfManaged,
	},
}

// selfManaged marks combined schedulers that are their own admission
// policy: they compose only with the no-op manager spec.
var selfManaged = map[string]bool{"none": true}

// classesParam is the shared tunable of the class-aware online
// schemes.
var classesParam = []ParamDef{
	{Name: "classes", Default: 4, Doc: "number of service classes (flows map to classes by burst-to-rate ratio unless the topology assigns them)"},
}

// redSeedID is the DeriveSeed stream id reserved for RED's drop RNG; it
// sits far above any flow index so the manager's randomness never
// collides with a source's.
const redSeedID = 1 << 20

// managers is the buffer-manager registry, in catalogue order.
var managers = []*managerDef{
	{
		name: "none", display: "",
		doc:   "shared tail-drop buffer (no per-flow management)",
		paper: "§3.1",
		build: func(cfg Config, _ params) (buffer.Manager, error) {
			return buffer.NewTailDrop(cfg.Buffer, len(cfg.Specs)), nil
		},
	},
	{
		name: "threshold", aliases: []string{"thresholds"}, display: "thresholds",
		doc:   "fixed per-flow thresholds σᵢ + ρᵢB/R (the paper's proposal)",
		paper: "§2",
		params: []ParamDef{
			{Name: "scale", Default: 1, Doc: "multiply every computed threshold by this factor; <1 deliberately under-allocates (necessity experiments)"},
		},
		build: func(cfg Config, p params) (buffer.Manager, error) {
			scale := p.get(managerByName["threshold"].params, "scale")
			if scale <= 0 || scale > 1 {
				return nil, fmt.Errorf("scale %v outside (0,1]", scale)
			}
			th, err := thresholds(cfg)
			if err != nil {
				return nil, err
			}
			if scale != 1 {
				for i := range th {
					th[i] = units.Bytes(scale * float64(th[i]))
				}
			}
			return buffer.NewFixedThreshold(cfg.Buffer, th), nil
		},
	},
	{
		name: "sharing", display: "sharing",
		doc:   "thresholds + holes/headroom borrowing of unused buffer",
		paper: "§3.3",
		params: []ParamDef{
			{Name: "headroom", Default: 0, Doc: "headroom H as a fraction of B (omit to use the run-level headroom)"},
		},
		build: func(cfg Config, p params) (buffer.Manager, error) {
			th, err := thresholds(cfg)
			if err != nil {
				return nil, err
			}
			return buffer.NewSharing(cfg.Buffer, th, cfg.headroom(p)), nil
		},
	},
	{
		name: "dynthresh", display: "dynthresh",
		doc:   "Choudhury–Hahne dynamic threshold T(t) = α·(B − Q(t))",
		paper: "ref [1]",
		params: []ParamDef{
			{Name: "alpha", Default: 1, Doc: "control parameter α > 0"},
		},
		build: func(cfg Config, p params) (buffer.Manager, error) {
			alpha := p.get(managerByName["dynthresh"].params, "alpha")
			if alpha <= 0 {
				return nil, fmt.Errorf("alpha must be positive, got %v", alpha)
			}
			return buffer.NewDynamicThreshold(cfg.Buffer, len(cfg.Specs), alpha), nil
		},
	},
	{
		name: "red", display: "RED",
		doc:   "random early detection over the aggregate queue (no per-flow state)",
		paper: "ref [3]",
		params: []ParamDef{
			{Name: "min", Default: 0.25, Doc: "min threshold as a fraction of B"},
			{Name: "max", Default: 0.75, Doc: "max threshold as a fraction of B"},
			{Name: "maxp", Default: 0.1, Doc: "max drop probability at the max threshold"},
			{Name: "wq", Default: 0.002, Doc: "EWMA queue-average weight w_q"},
		},
		build: func(cfg Config, p params) (buffer.Manager, error) {
			defs := managerByName["red"].params
			min := p.get(defs, "min")
			max := p.get(defs, "max")
			maxp := p.get(defs, "maxp")
			wq := p.get(defs, "wq")
			if min < 0 || max <= min || max > 1 {
				return nil, fmt.Errorf("need 0 <= min < max <= 1, got min=%v max=%v", min, max)
			}
			if maxp <= 0 || maxp > 1 {
				return nil, fmt.Errorf("maxp %v outside (0,1]", maxp)
			}
			if wq <= 0 || wq > 1 {
				return nil, fmt.Errorf("wq %v outside (0,1]", wq)
			}
			minTh := units.Bytes(min * float64(cfg.Buffer))
			maxTh := units.Bytes(max * float64(cfg.Buffer))
			m := buffer.NewRED(cfg.Buffer, len(cfg.Specs), minTh, maxTh, maxp,
				sim.NewRand(sim.DeriveSeed(cfg.Seed, redSeedID)))
			m.Weight = wq
			return m, nil
		},
	},
	{
		name: "adaptive", aliases: []string{"adaptive-sharing"}, display: "adaptive-sharing",
		doc:   "sharing where only loss-adaptive flows borrow the full holes",
		paper: "§5",
		params: []ParamDef{
			{Name: "fraction", Default: 0.25, Doc: "fraction of the holes non-adaptive flows may borrow"},
			{Name: "headroom", Default: 0, Doc: "headroom H as a fraction of B (omit to use the run-level headroom)"},
		},
		build: func(cfg Config, p params) (buffer.Manager, error) {
			defs := managerByName["adaptive"].params
			fraction := p.get(defs, "fraction")
			if fraction < 0 || fraction > 1 {
				return nil, fmt.Errorf("fraction %v outside [0,1]", fraction)
			}
			th, err := thresholds(cfg)
			if err != nil {
				return nil, err
			}
			return buffer.NewAdaptiveSharing(cfg.Buffer, th, cfg.adaptive(), cfg.headroom(p), fraction), nil
		},
	},
}

// schedulerByName and managerByName index the registries, including
// aliases.
var (
	schedulerByName = map[string]*schedulerDef{}
	managerByName   = map[string]*managerDef{}
)

func init() {
	for _, d := range schedulers {
		schedulerByName[d.name] = d
	}
	for _, d := range managers {
		managerByName[d.name] = d
		for _, a := range d.aliases {
			managerByName[a] = d
		}
	}
}

// hybridManagers lists the manager names the hybrid architecture
// supports: its buffer is partitioned per queue, so only partitionable
// policies compose with it.
var hybridManagers = map[string]bool{"none": true, "threshold": true, "sharing": true}

// buildHybrid assembles the §4.2 configuration: Proposition 3 rate
// allocation across queues, buffer partitioning in proportion to the
// per-queue minimum requirements, per-flow thresholds within queues,
// and one manager per queue (sharing, fixed-threshold, or tail-drop
// according to the spec's manager).
func buildHybrid(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	if !s.sched.allowedManagers[s.mgr.name] {
		return nil, nil, fmt.Errorf("scheme %s: hybrid supports %s managers, not %q", s.Spec(), s.sched.allowedManagerNames(), s.mgr.name)
	}
	if len(cfg.QueueOf) != len(cfg.Specs) {
		return nil, nil, fmt.Errorf("scheme %s: hybrid needs QueueOf for every flow (%d maps for %d flows)", s.Spec(), len(cfg.QueueOf), len(cfg.Specs))
	}
	k := 0
	for _, q := range cfg.QueueOf {
		if q+1 > k {
			k = q + 1
		}
	}
	// An explicit queue count must match the map exactly: a larger k
	// would create unpopulated queues with zero reserved rate, which the
	// Proposition 3 allocation (and WFQ weights) cannot serve.
	if s.k > 0 && k != s.k {
		return nil, nil, fmt.Errorf("scheme %s: spec fixes %d queues but the flow→queue map uses %d", s.Spec(), s.k, k)
	}
	groups, err := core.GroupFlows(cfg.Specs, cfg.QueueOf, k)
	if err != nil {
		return nil, nil, err
	}
	rates, err := core.AllocateHybrid(cfg.LinkRate, groups)
	if err != nil {
		return nil, nil, err
	}
	minBuf, err := core.HybridBufferPerQueue(cfg.LinkRate, groups)
	if err != nil {
		return nil, nil, err
	}
	queueBuf := core.PartitionBuffer(cfg.Buffer, minBuf)
	th, err := core.HybridThresholds(cfg.Specs, cfg.QueueOf, groups, queueBuf)
	if err != nil {
		return nil, nil, err
	}
	headroom := cfg.headroom(s.params)
	queueMgrs := make([]buffer.Manager, k)
	for q := 0; q < k; q++ {
		// Per-queue thresholds vector, zero for non-member flows (they
		// are never seen by this queue's manager).
		qth := make([]units.Bytes, len(cfg.Specs))
		for i, f := range cfg.QueueOf {
			if f == q {
				qth[i] = th[i]
			}
		}
		switch s.mgr.name {
		case "none":
			queueMgrs[q] = buffer.NewTailDrop(queueBuf[q], len(cfg.Specs))
		case "threshold":
			queueMgrs[q] = buffer.NewFixedThreshold(queueBuf[q], qth)
		default: // sharing; headroom is split like the buffer
			var h units.Bytes
			if cfg.Buffer > 0 {
				h = units.Bytes(float64(headroom) * float64(queueBuf[q]) / float64(cfg.Buffer))
			}
			queueMgrs[q] = buffer.NewSharing(queueBuf[q], qth, h)
		}
	}
	mgr := buffer.NewPartitioned(cfg.QueueOf, queueMgrs)
	scheduler := sched.NewHybrid(cfg.LinkRate, cfg.Now, cfg.QueueOf, rates)
	return mgr, scheduler, nil
}
