package scheme

import (
	"strings"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/units"
)

// testConfig is a small but complete link environment: three flows,
// a queue map for hybrid, and a clock for time-stamping schedulers.
func testConfig() Config {
	mk := func(peak, tok, bucketKB float64) packet.FlowSpec {
		return packet.FlowSpec{
			PeakRate:   units.MbitsPerSecond(peak),
			TokenRate:  units.MbitsPerSecond(tok),
			BucketSize: units.KiloBytes(bucketKB),
		}
	}
	return Config{
		Specs:    []packet.FlowSpec{mk(16, 2, 50), mk(40, 8, 100), mk(40, 2, 50)},
		LinkRate: units.MbitsPerSecond(48),
		Buffer:   units.KiloBytes(500),
		Headroom: units.KiloBytes(100),
		QueueOf:  []int{0, 1, 1},
		Now:      func() float64 { return 0 },
		Seed:     1,
	}
}

// TestSpecRoundTrip: every registered combination's canonical spec
// parses back to the same canonical spec, display label, and a working
// builder.
func TestSpecRoundTrip(t *testing.T) {
	cfg := testConfig()
	for _, spec := range Specs() {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.Spec(); got != spec {
			t.Errorf("Parse(%q).Spec() = %q, not canonical", spec, got)
		}
		s2, err := Parse(s.Spec())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s.Spec(), err)
		}
		if s2.Spec() != s.Spec() || s2.String() != s.String() {
			t.Errorf("round trip of %q drifted: %q/%q vs %q/%q", spec, s2.Spec(), s2.String(), s.Spec(), s.String())
		}
		mgr, sc, err := s.Build(cfg)
		if err != nil {
			t.Errorf("Build(%q): %v", spec, err)
			continue
		}
		if mgr == nil || sc == nil {
			t.Errorf("Build(%q) returned nil component", spec)
		}
	}
}

// TestParamRoundTrip: non-default parameters survive the canonical
// form; default-valued explicit parameters normalize away.
func TestParamRoundTrip(t *testing.T) {
	cases := []struct{ in, spec, display string }{
		{"fifo+dynthresh?alpha=2", "fifo+dynthresh?alpha=2", "FIFO+dynthresh?alpha=2"},
		{"fifo+dynthresh?alpha=1", "fifo+dynthresh", "FIFO+dynthresh"},
		{"FIFO+RED?max=0.8,min=0.2", "fifo+red?max=0.8,min=0.2", "FIFO+RED?max=0.8,min=0.2"},
		{"rpq+threshold?classes=6,interval=0.001", "rpq+threshold?classes=6,interval=0.001", "RPQ+thresholds?classes=6,interval=0.001"},
		{"hybrid:3+sharing", "hybrid:3+sharing", "hybrid:3+sharing"},
		{"wfq", "wfq+none", "WFQ"},
		{"sharing", "fifo+sharing", "FIFO+sharing"},
		{"fifo+adaptive?fraction=0.5", "fifo+adaptive?fraction=0.5", "FIFO+adaptive-sharing?fraction=0.5"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if s.Spec() != c.spec {
			t.Errorf("Parse(%q).Spec() = %q, want %q", c.in, s.Spec(), c.spec)
		}
		if s.String() != c.display {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, s.String(), c.display)
		}
	}
}

// TestLegacyLabelsParse: the display labels that predate the registry
// must keep parsing (result tables and qsim -schemes use them) and must
// render the identical label back.
func TestLegacyLabelsParse(t *testing.T) {
	labels := []string{
		"FIFO", "WFQ", "FIFO+thresholds", "WFQ+thresholds",
		"FIFO+sharing", "WFQ+sharing", "hybrid+sharing",
		"FIFO+dynthresh", "FIFO+RED", "FIFO+adaptive-sharing",
		"RPQ+thresholds", "DRR+thresholds", "EDF+thresholds", "VC+thresholds",
	}
	for _, l := range labels {
		s, err := Parse(l)
		if err != nil {
			t.Errorf("legacy label %q no longer parses: %v", l, err)
			continue
		}
		if s.String() != l {
			t.Errorf("Parse(%q).String() = %q; table labels must stay stable", l, s.String())
		}
	}
}

// TestMalformedSpecs: the error paths the registry must reject.
func TestMalformedSpecs(t *testing.T) {
	bad := []string{
		"",
		"fifo+",
		"+threshold",
		"fifo+threshold+sharing",
		"hybrid:0+sharing",
		"hybrid:-1+sharing",
		"hybrid:x+sharing",
		"fifo:3+threshold",       // fifo takes no queue count
		"hybrid+red",             // non-partitionable manager
		"bogus+threshold",        // unknown scheduler
		"fifo+bogus",             // unknown manager
		"fifo+red?zorp=1",        // unknown parameter
		"fifo+red?",              // empty parameter list
		"fifo+red?min",           // not key=value
		"fifo+red?min=x",         // not a number
		"fifo+red?min=1,min=2",   // duplicate key
		"fifo+threshold?alpha=1", // parameter of another manager
	}
	for _, spec := range bad {
		if s, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %v, want error", spec, s.Spec())
		}
	}
}

// TestInvalidParamValues: specs that parse but carry out-of-range
// values fail at Build, not with a panic.
func TestInvalidParamValues(t *testing.T) {
	cfg := testConfig()
	bad := []string{
		"fifo+dynthresh?alpha=0",
		"fifo+dynthresh?alpha=-1",
		"fifo+red?min=0.9,max=0.5",
		"fifo+red?maxp=0",
		"fifo+red?maxp=1.5",
		"fifo+red?wq=0",
		"fifo+adaptive?fraction=2",
		"rpq+threshold?classes=0",
		"rpq+threshold?classes=2.5",
		"rpq+threshold?interval=0",
	}
	for _, spec := range bad {
		s, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v (value errors should surface at Build)", spec, err)
			continue
		}
		if _, _, err := s.Build(cfg); err == nil {
			t.Errorf("Build(%q) accepted an invalid value", spec)
		}
	}
}

// TestHybridBuildValidation: hybrid needs a queue map and respects an
// explicit queue count.
func TestHybridBuildValidation(t *testing.T) {
	cfg := testConfig()
	cfg.QueueOf = nil
	if _, _, err := MustParse("hybrid+sharing").Build(cfg); err == nil {
		t.Error("hybrid without QueueOf built")
	}
	cfg = testConfig() // queues {0,1,1} → 2 queues
	if _, _, err := MustParse("hybrid:1+sharing").Build(cfg); err == nil {
		t.Error("hybrid:1 accepted a 2-queue map")
	}
	if _, _, err := MustParse("hybrid:3+sharing").Build(cfg); err == nil {
		t.Error("hybrid:3 accepted a 2-queue map (would create an empty queue)")
	}
	cfg.QueueOf = []int{0, 1, 2}
	mgr, sc, err := MustParse("hybrid:3+sharing").Build(cfg)
	if err != nil {
		t.Fatalf("hybrid:3 over a 3-queue map: %v", err)
	}
	if mgr == nil || sc == nil {
		t.Fatal("nil hybrid components")
	}
}

// TestBuildComponents spot-checks that specs construct the right
// concrete types and thread their parameters through.
func TestBuildComponents(t *testing.T) {
	cfg := testConfig()
	mgr, sc, err := MustParse("wfq+sharing").Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.(*buffer.Sharing); !ok {
		t.Errorf("wfq+sharing built %T manager", mgr)
	}
	if _, ok := sc.(*sched.WFQ); !ok {
		t.Errorf("wfq+sharing built %T scheduler", sc)
	}

	mgr, _, err = MustParse("fifo+red?min=0.2,max=0.8,wq=0.01").Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red, ok := mgr.(*buffer.RED)
	if !ok {
		t.Fatalf("fifo+red built %T", mgr)
	}
	if red.MinTh != units.Bytes(0.2*float64(cfg.Buffer)) || red.MaxTh != units.Bytes(0.8*float64(cfg.Buffer)) {
		t.Errorf("RED thresholds %v/%v not scaled from fractions", red.MinTh, red.MaxTh)
	}
	if red.Weight != 0.01 {
		t.Errorf("RED weight %v, want 0.01", red.Weight)
	}

	// Spec-level headroom fraction overrides Config.Headroom.
	mgr, _, err = MustParse("fifo+sharing?headroom=0.1").Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := mgr.(*buffer.Sharing)
	if got, want := sh.Headroom(), units.Bytes(0.1*float64(cfg.Buffer)); got != want {
		t.Errorf("sharing headroom %v, want %v from spec fraction", got, want)
	}
}

// TestBuildIsStateless: one Scheme value builds independent links.
func TestBuildIsStateless(t *testing.T) {
	cfg := testConfig()
	s := MustParse("fifo+threshold")
	m1, _, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1.Admit(0, 400)
	if m2.Total() != 0 {
		t.Error("second build shares state with the first")
	}
}

// TestCatalogue: every registry entry appears in the catalogue and in
// at least one combination, and the renderers cover them.
func TestCatalogue(t *testing.T) {
	entries := Catalogue()
	if len(entries) != len(schedulers)+len(managers) {
		t.Fatalf("catalogue has %d entries, registry %d", len(entries), len(schedulers)+len(managers))
	}
	specs := strings.Join(Specs(), " ")
	for _, e := range entries {
		if e.Doc == "" || e.Paper == "" {
			t.Errorf("%s %q lacks doc or paper section", e.Kind, e.Name)
		}
		if !strings.Contains(specs, e.Name) {
			t.Errorf("%s %q appears in no combination", e.Kind, e.Name)
		}
	}
	var b strings.Builder
	if err := WriteCatalogue(&b); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.Contains(b.String(), e.Name) {
			t.Errorf("-list-schemes output omits %q", e.Name)
		}
		if !strings.Contains(MarkdownCatalogue(), "`"+e.Name+"`") {
			t.Errorf("markdown catalogue omits %q", e.Name)
		}
	}
}
