// Package scheme is the registry of composable QoS schemes. The paper's
// evaluation crosses a scheduler (FIFO, WFQ, the §4 hybrid, RPQ, DRR,
// EDF, Virtual Clock) with a buffer-management policy (tail-drop, fixed
// per-flow thresholds, the §3.3 sharing scheme, Choudhury–Hahne dynamic
// thresholds, RED, adaptive sharing); this package makes every such
// combination addressable by one parseable spec string, e.g.
//
//	fifo+threshold                 the paper's scheme 1
//	wfq+sharing                    scheme 2 with buffer sharing
//	hybrid:3+sharing               §4 architecture with 3 queues
//	fifo+red?min=0.25,max=0.75     RED with explicit thresholds
//	fifo+dynthresh?alpha=2         Choudhury–Hahne with α = 2
//
// The grammar is
//
//	spec    := sched [":" k] "+" manager ["?" params]
//	params  := key "=" value {"," key "=" value}
//
// A bare scheduler name ("wfq") means tail-drop ("wfq+none"); a bare
// manager name ("sharing") means FIFO scheduling ("fifo+sharing").
// Legacy display labels such as "FIFO+thresholds" parse too, so result
// tables and CLI flags round-trip.
//
// Parse resolves a spec against the registry and returns a *Scheme; its
// Build method constructs the (buffer.Manager, sched.Scheduler) pair
// for a concrete link described by a Config. Every layer of the
// repository — experiment sweeps, the multi-hop network package, and
// the CLIs — builds its data plane through this one path, so adding a
// scheme is a single registration visible everywhere at once.
package scheme

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/units"
)

// Config describes the link a scheme is instantiated on: the flow
// population's declared profiles plus the link's physical parameters.
// It is everything a Builder may consult, independent of which scheme
// is being built.
type Config struct {
	// Specs are the declared (σ, ρ, peak) profiles, one per flow.
	Specs []packet.FlowSpec
	// LinkRate is the output link capacity R.
	LinkRate units.Rate
	// Buffer is the total buffer B.
	Buffer units.Bytes
	// Headroom is the sharing headroom H. A spec-level headroom
	// parameter (a fraction of B) overrides it.
	Headroom units.Bytes
	// QueueOf maps flows to queues for the hybrid scheduler (required
	// by hybrid specs, ignored otherwise).
	QueueOf []int
	// Adaptive marks flows that respond to loss; the adaptive-sharing
	// manager restricts borrowing for the others. Nil means all flows
	// are adaptive.
	Adaptive []bool
	// Classes maps flows to service classes for the class-aware online
	// schemes (cgreedy, classseg, lqf, semigreedy); higher class = more
	// valuable. Nil derives classes from each flow's burst-to-rate
	// ratio, smooth (telephony-like) flows landing in the most valuable
	// classes.
	Classes []int
	// PacketSize is the MTU used by quantum-based schedulers (DRR).
	// Zero defaults to 500 bytes, the paper's maximum packet size.
	PacketSize units.Bytes
	// Now is the simulation clock, required by time-stamping schedulers
	// (WFQ, hybrid, RPQ, EDF, VC).
	Now func() float64
	// Seed derives the RNG of randomized managers (RED) so runs stay
	// reproducible.
	Seed int64
}

// DefaultPacketSize is the MTU assumed when Config.PacketSize is zero.
const DefaultPacketSize units.Bytes = 500

func (c *Config) packetSize() units.Bytes {
	if c.PacketSize > 0 {
		return c.PacketSize
	}
	return DefaultPacketSize
}

func (c *Config) adaptive() []bool {
	if c.Adaptive != nil {
		return c.Adaptive
	}
	all := make([]bool, len(c.Specs))
	for i := range all {
		all[i] = true
	}
	return all
}

// headroom resolves the sharing headroom: the spec-level parameter (a
// fraction of B) wins over the Config field.
func (c *Config) headroom(p params) units.Bytes {
	if f, ok := p["headroom"]; ok {
		return units.Bytes(f * float64(c.Buffer))
	}
	return c.Headroom
}

// Scheme is a parsed spec: one scheduler crossed with one buffer
// manager, plus their parameters. Values are immutable after Parse and
// safe to share across goroutines.
type Scheme struct {
	sched  *schedulerDef
	mgr    *managerDef
	k      int // hybrid queue count; 0 = derive from Config.QueueOf
	params params
}

// Build constructs the data plane of one link: the buffer manager and
// the scheduler, wired for cfg. The same Scheme may build any number of
// links (each call returns fresh state).
func (s *Scheme) Build(cfg Config) (buffer.Manager, sched.Scheduler, error) {
	if len(cfg.Specs) == 0 {
		return nil, nil, fmt.Errorf("scheme %s: no flows", s.Spec())
	}
	if s.sched.combined != nil {
		return s.sched.combined(cfg, s)
	}
	mgr, err := s.mgr.build(cfg, s.params)
	if err != nil {
		return nil, nil, fmt.Errorf("scheme %s: %w", s.Spec(), err)
	}
	sc, err := s.sched.build(cfg, s)
	if err != nil {
		return nil, nil, fmt.Errorf("scheme %s: %w", s.Spec(), err)
	}
	return mgr, sc, nil
}

// SchedulerName returns the registry name of the scheme's scheduler
// (e.g. "wfq").
func (s *Scheme) SchedulerName() string { return s.sched.name }

// ManagerName returns the registry name of the scheme's buffer manager
// (e.g. "threshold").
func (s *Scheme) ManagerName() string { return s.mgr.name }

// Queues returns the explicit hybrid queue count (0 when derived from
// Config.QueueOf or for non-hybrid schedulers).
func (s *Scheme) Queues() int { return s.k }

// PopulationSensitive reports whether the scheme's per-flow behaviour
// depends on the whole flow population rather than only each flow's own
// spec (hybrid's aggregate rate/buffer allocation, DRR's min-weight
// quantum normalization). A scenario engine may build a
// population-insensitive scheme with just the flows traversing a link —
// per-flow thresholds, weights, budgets, and delay classes come out
// identical — but a sensitive one must always see the full population.
func (s *Scheme) PopulationSensitive() bool { return s.sched.popSensitive }

// Param returns a parameter's effective value (explicit or default) and
// whether the scheme defines it at all.
func (s *Scheme) Param(name string) (float64, bool) {
	if v, ok := s.params[name]; ok {
		return v, true
	}
	for _, d := range s.paramDefs() {
		if d.Name == name {
			return d.Default, true
		}
	}
	return 0, false
}

// paramDefs returns the parameter definitions the scheme accepts, in
// catalogue order (scheduler's first, then manager's).
func (s *Scheme) paramDefs() []ParamDef {
	defs := append([]ParamDef(nil), s.sched.params...)
	return append(defs, s.mgr.params...)
}

// tokenRates returns the WFQ/DRR/VC weights: "the token rate is used to
// determine the weight used for the flow".
func tokenRates(specs []packet.FlowSpec) []units.Rate {
	rates := make([]units.Rate, len(specs))
	for i, s := range specs {
		rates[i] = s.TokenRate
	}
	return rates
}

// delayClasses maps flows to RPQ delay classes by their burst-to-rate
// ratio σ/ρ: smooth low-burst flows (telephony-like) get tighter
// classes, bursty ones looser — the same classification intuition as
// the paper's §4.1 queue-grouping guidance.
func delayClasses(specs []packet.FlowSpec, numClasses int) []int {
	classes := make([]int, len(specs))
	for i, s := range specs {
		ratio := s.BucketSize.Bits() / s.TokenRate.BitsPerSecond() // seconds of burst
		var c int
		switch {
		case ratio < 0.05:
			c = 0
		case ratio < 0.15:
			c = 1
		case ratio < 0.5:
			c = 2
		default:
			c = 3
		}
		if c >= numClasses {
			c = numClasses - 1
		}
		classes[i] = c
	}
	return classes
}
