package scheme

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/online"
	"bufqos/internal/sched"
	"bufqos/internal/units"
)

// This file builds the combined queue/manager schemes that bring their
// own admission policy: the paper's protective pushout FIFO and the
// competitive-analysis policies of internal/online. Each builder
// returns the same object as both manager and scheduler — preemption
// removes already-queued packets, which the manager/scheduler split
// cannot express.

// buildPushout assembles sched.PushoutFIFO: shares from the paper's
// σᵢ + ρᵢB/R thresholds, or a flat fraction of B per flow when the
// "share" parameter is set.
func buildPushout(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	if cfg.Buffer <= 0 {
		return nil, nil, fmt.Errorf("scheme %s: needs a positive buffer, got %v", s.Spec(), cfg.Buffer)
	}
	share := s.params.get(s.sched.params, "share")
	if share < 0 || share > 1 {
		return nil, nil, fmt.Errorf("scheme %s: share %v outside [0,1]", s.Spec(), share)
	}
	var shares []units.Bytes
	if share == 0 {
		th, err := thresholds(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scheme %s: %w", s.Spec(), err)
		}
		shares = th
	} else {
		shares = make([]units.Bytes, len(cfg.Specs))
		for i := range shares {
			shares[i] = units.Bytes(share * float64(cfg.Buffer))
		}
	}
	po := sched.NewPushoutFIFO(cfg.Buffer, shares)
	return po, po, nil
}

// onlineClasses resolves the class count and flow→class map of a
// class-aware online scheme.
func onlineClasses(cfg Config, s *Scheme) (int, []int, error) {
	if cfg.Buffer <= 0 {
		return 0, nil, fmt.Errorf("scheme %s: needs a positive buffer, got %v", s.Spec(), cfg.Buffer)
	}
	v := s.params.get(s.sched.params, "classes")
	n := int(v)
	if float64(n) != v || n < 1 {
		return 0, nil, fmt.Errorf("scheme %s: classes must be a positive integer, got %v", s.Spec(), v)
	}
	if cfg.Classes == nil {
		// Invert the RPQ delay classification: smooth low-burst flows
		// (telephony-like, class 0 there) are the most valuable here.
		classOf := delayClasses(cfg.Specs, n)
		for i, c := range classOf {
			classOf[i] = n - 1 - c
		}
		return n, classOf, nil
	}
	if len(cfg.Classes) != len(cfg.Specs) {
		return 0, nil, fmt.Errorf("scheme %s: %d classes for %d flows", s.Spec(), len(cfg.Classes), len(cfg.Specs))
	}
	for i, c := range cfg.Classes {
		if c < 0 || c >= n {
			return 0, nil, fmt.Errorf("scheme %s: flow %d class %d outside [0,%d)", s.Spec(), i, c, n)
		}
	}
	return n, append([]int(nil), cfg.Classes...), nil
}

func buildClassGreedy(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	n, classOf, err := onlineClasses(cfg, s)
	if err != nil {
		return nil, nil, err
	}
	g := online.NewClassGreedy(cfg.Buffer, classOf, n)
	return g, g, nil
}

func buildClassSeg(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	n, classOf, err := onlineClasses(cfg, s)
	if err != nil {
		return nil, nil, err
	}
	cs := online.NewClassSeg(cfg.Buffer, classOf, n)
	return cs, cs, nil
}

func buildLQF(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	n, classOf, err := onlineClasses(cfg, s)
	if err != nil {
		return nil, nil, err
	}
	m := online.NewMultiQueue(cfg.Buffer, classOf, n, false)
	return m, m, nil
}

func buildSemiGreedy(cfg Config, s *Scheme) (buffer.Manager, sched.Scheduler, error) {
	n, classOf, err := onlineClasses(cfg, s)
	if err != nil {
		return nil, nil, err
	}
	m := online.NewMultiQueue(cfg.Buffer, classOf, n, true)
	return m, m, nil
}
