package scheme

import (
	"strings"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func onlineTestConfig(nflows int) Config {
	specs := make([]packet.FlowSpec, nflows)
	for i := range specs {
		specs[i] = packet.FlowSpec{
			TokenRate:  units.MbitsPerSecond(1),
			BucketSize: units.KiloBytes(1),
		}
	}
	return Config{
		Specs:    specs,
		LinkRate: units.MbitsPerSecond(10),
		Buffer:   units.KiloBytes(16),
	}
}

// TestOnlineSpecsRegistered: the pushout and online policies are
// reachable from the spec grammar, build as combined queue/managers
// (the same object is manager and scheduler), and appear in the Specs
// inventory exactly once, composed with "none" only.
func TestOnlineSpecsRegistered(t *testing.T) {
	cfg := onlineTestConfig(3)
	for _, spec := range []string{"pushout", "cgreedy", "classseg", "lqf", "semigreedy"} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if s.Spec() != spec+"+none" {
			t.Errorf("Parse(%q).Spec() = %q, want %q", spec, s.Spec(), spec+"+none")
		}
		if s.PopulationSensitive() {
			t.Errorf("%q should be population-insensitive (per-flow shares/classes only)", spec)
		}
		mgr, sc, err := s.Build(cfg)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		if mgr == nil || sc == nil {
			t.Fatalf("Build(%q) returned nil component", spec)
		}
		if mgrObj, schedObj := any(mgr), any(sc); mgrObj != schedObj {
			t.Errorf("%q: manager and scheduler should be the same combined object", spec)
		}
		inventory := Specs()
		found := 0
		for _, v := range inventory {
			if v == spec+"+none" {
				found++
			}
			if strings.HasPrefix(v, spec+"+") && v != spec+"+none" {
				t.Errorf("inventory pairs %q with a real manager: %q", spec, v)
			}
		}
		if found != 1 {
			t.Errorf("Specs() lists %q+none %d times, want once", spec, found)
		}
	}
}

func TestOnlineSpecRejectsManagers(t *testing.T) {
	for _, spec := range []string{"pushout+threshold", "cgreedy+sharing", "lqf+red"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail: these schedulers bring their own admission policy", spec)
		}
	}
}

// TestPushoutShareParam: share=0 derives the paper's thresholds,
// share>0 grants every flow the same fraction of B.
func TestPushoutShareParam(t *testing.T) {
	cfg := onlineTestConfig(2)
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"pushout?share=0.5", true},
		{"pushout?share=0", true},
		{"pushout?share=1.5", false},
		{"pushout?share=-1", false},
	} {
		s, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		_, _, err = s.Build(cfg)
		if (err == nil) != tc.ok {
			t.Errorf("Build(%q) err = %v, want ok=%v", tc.spec, err, tc.ok)
		}
	}
}

// TestOnlineClassesResolution: explicit Config.Classes wins and is
// validated; nil Classes derives a spec-based classification.
func TestOnlineClassesResolution(t *testing.T) {
	cfg := onlineTestConfig(3)
	s := MustParse("classseg?classes=2")
	cfg.Classes = []int{0, 1, 0}
	if _, _, err := s.Build(cfg); err != nil {
		t.Fatalf("explicit classes: %v", err)
	}
	cfg.Classes = []int{0, 2, 0} // class 2 outside [0,2)
	if _, _, err := s.Build(cfg); err == nil {
		t.Error("out-of-range class accepted")
	}
	cfg.Classes = []int{0, 1} // wrong length
	if _, _, err := s.Build(cfg); err == nil {
		t.Error("class map shorter than the flow population accepted")
	}
	cfg.Classes = nil
	if _, _, err := s.Build(cfg); err != nil {
		t.Fatalf("derived classes: %v", err)
	}
	if _, _, err := MustParse("lqf?classes=0").Build(cfg); err == nil {
		t.Error("classes=0 accepted")
	}
}
