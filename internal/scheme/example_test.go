package scheme_test

import (
	"fmt"

	"bufqos/internal/scheme"
)

// A spec string names a scheduler, an optional queue count, a buffer
// manager, and optional parameters; the same grammar is accepted by
// every CLI flag and JSON field that selects a scheme.
func ExampleParse() {
	s, err := scheme.Parse("hybrid:3+sharing?headroom=0.25")
	if err != nil {
		fmt.Println(err)
		return
	}
	h, _ := s.Param("headroom")
	fmt.Printf("scheduler=%s queues=%d manager=%s headroom=%g\n",
		s.SchedulerName(), s.Queues(), s.ManagerName(), h)
	fmt.Println(s.Spec())
	// Output:
	// scheduler=hybrid queues=3 manager=sharing headroom=0.25
	// hybrid:3+sharing?headroom=0.25
}

// Bare names expand to their defaults: a lone scheduler gets tail-drop
// (+none), a lone manager gets a FIFO in front of it.
func ExampleParse_defaults() {
	for _, spec := range []string{"wfq", "threshold"} {
		s, err := scheme.Parse(spec)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s -> %s\n", spec, s.Spec())
	}
	// Output:
	// wfq -> wfq+none
	// threshold -> fifo+threshold
}
