package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse resolves a spec string against the registry. The grammar is
// sched[":"k]"+"manager["?"key"="value{","key"="value}]; a bare
// scheduler name implies the tail-drop manager and a bare manager name
// implies FIFO scheduling. Matching is case-insensitive, so the legacy
// display labels ("FIFO+thresholds", "WFQ", "FIFO+RED") parse to their
// registry entries.
func Parse(spec string) (*Scheme, error) {
	base := strings.TrimSpace(spec)
	if base == "" {
		return nil, fmt.Errorf("scheme: empty spec")
	}
	base, paramPart, hasParams := cut(base, "?")
	parts := strings.Split(strings.ToLower(base), "+")
	if len(parts) > 2 {
		return nil, fmt.Errorf("scheme %q: want scheduler+manager, got %d '+'-separated parts", spec, len(parts))
	}
	schedTok, mgrTok := parts[0], ""
	if len(parts) == 2 {
		mgrTok = parts[1]
	} else if _, isSched := schedulerByName[schedName(schedTok)]; !isSched {
		// A bare manager name means FIFO scheduling.
		if _, isMgr := managerByName[schedTok]; isMgr {
			schedTok, mgrTok = "fifo", schedTok
		}
	}
	if mgrTok == "" && len(parts) == 2 {
		return nil, fmt.Errorf("scheme %q: missing manager after '+' (use e.g. %q or %q)", spec, schedTok+"+threshold", schedTok+"+none")
	}
	if mgrTok == "" {
		mgrTok = "none"
	}

	name, arg, hasArg := cut(schedTok, ":")
	sd, ok := schedulerByName[name]
	if !ok {
		return nil, fmt.Errorf("scheme %q: unknown scheduler %q (known: %s)", spec, name, strings.Join(schedulerNames(), ", "))
	}
	k := 0
	if hasArg {
		if !sd.takesK {
			return nil, fmt.Errorf("scheme %q: scheduler %q takes no ':k' argument", spec, name)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("scheme %q: queue count %q must be a positive integer", spec, arg)
		}
		k = n
	}
	md, ok := managerByName[mgrTok]
	if !ok {
		return nil, fmt.Errorf("scheme %q: unknown buffer manager %q (known: %s)", spec, mgrTok, strings.Join(managerNames(), ", "))
	}
	s := &Scheme{sched: sd, mgr: md, k: k, params: params{}}
	if sd.combined != nil && !sd.allowedManagers[md.name] {
		return nil, fmt.Errorf("scheme %q: scheduler %q composes only with %s managers, not %q", spec, sd.name, sd.allowedManagerNames(), md.name)
	}
	if hasParams {
		if err := s.parseParams(spec, paramPart); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustParse is Parse for compile-time-constant specs; it panics on
// error.
func MustParse(spec string) *Scheme {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// schedName strips a ":k" argument for the bare-token scheduler check.
func schedName(tok string) string {
	name, _, _ := cut(tok, ":")
	return name
}

// cut is strings.Cut with the separator found flag last.
func cut(s, sep string) (before, after string, found bool) {
	if i := strings.Index(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// parseParams fills s.params from the "key=value,key=value" tail,
// validating every key against the combination's declared parameters.
func (s *Scheme) parseParams(spec, tail string) error {
	if strings.TrimSpace(tail) == "" {
		return fmt.Errorf("scheme %q: empty parameter list after '?'", spec)
	}
	defs := s.paramDefs()
	for _, kv := range strings.Split(tail, ",") {
		key, val, ok := cut(strings.TrimSpace(kv), "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if !ok || key == "" {
			return fmt.Errorf("scheme %q: parameter %q is not key=value", spec, kv)
		}
		known := false
		for _, d := range defs {
			if d.Name == key {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("scheme %q: unknown parameter %q (accepted: %s)", spec, key, paramNames(defs))
		}
		if _, dup := s.params[key]; dup {
			return fmt.Errorf("scheme %q: parameter %q given twice", spec, key)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("scheme %q: parameter %s=%q is not a number", spec, key, val)
		}
		s.params[key] = f
	}
	return nil
}

// paramNames formats the accepted parameter list for error messages.
func paramNames(defs []ParamDef) string {
	if len(defs) == 0 {
		return "none"
	}
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return strings.Join(names, ", ")
}

// paramSuffix renders the explicitly-set, non-default parameters as a
// sorted "?key=value,..." tail ("" when everything is default). Both
// the canonical spec and the display label share it, so equal behaviour
// means equal strings.
func (s *Scheme) paramSuffix() string {
	defaults := map[string]float64{}
	for _, d := range s.paramDefs() {
		defaults[d.Name] = d.Default
	}
	keys := make([]string, 0, len(s.params))
	for k, v := range s.params {
		if v != defaults[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.FormatFloat(s.params[k], 'g', -1, 64)
	}
	return "?" + strings.Join(parts, ",")
}

// Spec returns the canonical spec string: lower-case registry names,
// an explicit queue count only when one was given, and only the
// parameters that differ from their defaults, sorted. Parse(s.Spec())
// yields an equivalent Scheme.
func (s *Scheme) Spec() string {
	var b strings.Builder
	b.WriteString(s.sched.name)
	if s.k > 0 {
		b.WriteString(":")
		b.WriteString(strconv.Itoa(s.k))
	}
	b.WriteString("+")
	b.WriteString(s.mgr.name)
	b.WriteString(s.paramSuffix())
	return b.String()
}

// String returns the display label used in result tables and figure
// legends. Legacy combinations keep their historical names ("FIFO",
// "WFQ+thresholds", "hybrid+sharing", "FIFO+RED"); non-default
// parameters are appended as a "?key=value" tail.
func (s *Scheme) String() string {
	var b strings.Builder
	b.WriteString(s.sched.display)
	if s.k > 0 {
		b.WriteString(":")
		b.WriteString(strconv.Itoa(s.k))
	}
	if s.mgr.display != "" {
		b.WriteString("+")
		b.WriteString(s.mgr.display)
	}
	b.WriteString(s.paramSuffix())
	return b.String()
}

// schedulerNames returns the registered scheduler tokens in catalogue
// order.
func schedulerNames() []string {
	names := make([]string, len(schedulers))
	for i, d := range schedulers {
		names[i] = d.name
	}
	return names
}

// managerNames returns the registered manager tokens in catalogue
// order (aliases excluded).
func managerNames() []string {
	names := make([]string, len(managers))
	for i, d := range managers {
		names[i] = d.name
	}
	return names
}

// Specs enumerates the canonical spec of every valid scheduler×manager
// combination, in catalogue order — the "-list-schemes" inventory.
func Specs() []string {
	var out []string
	for _, sd := range schedulers {
		for _, md := range managers {
			if sd.combined != nil && !sd.allowedManagers[md.name] {
				continue
			}
			out = append(out, (&Scheme{sched: sd, mgr: md, params: params{}}).Spec())
		}
	}
	return out
}
