package scheme

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CatalogueEntry describes one registered scheduler or manager for
// documentation: CLI -list-schemes output and the README table are both
// rendered from these, so the docs cannot drift from the registry.
type CatalogueEntry struct {
	// Kind is "scheduler" or "manager".
	Kind string
	// Name is the spec token; Display the result-table label fragment.
	Name    string
	Display string
	// Doc is the one-line description, Paper the paper section or
	// reference it implements.
	Doc   string
	Paper string
	// Params are the entry's tunables with defaults.
	Params []ParamDef
}

// Catalogue returns every registered scheduler and manager, schedulers
// first, each list in registry order.
func Catalogue() []CatalogueEntry {
	var out []CatalogueEntry
	for _, d := range schedulers {
		out = append(out, CatalogueEntry{
			Kind: "scheduler", Name: d.name, Display: d.display,
			Doc: d.doc, Paper: d.paper, Params: d.Params(),
		})
	}
	for _, d := range managers {
		display := d.display
		if display == "" {
			display = "(tail-drop)"
		}
		out = append(out, CatalogueEntry{
			Kind: "manager", Name: d.name, Display: display,
			Doc: d.doc, Paper: d.paper, Params: d.Params(),
		})
	}
	return out
}

// Params returns a copy of the scheduler's parameter definitions.
func (d *schedulerDef) Params() []ParamDef { return append([]ParamDef(nil), d.params...) }

// Params returns a copy of the manager's parameter definitions.
func (d *managerDef) Params() []ParamDef { return append([]ParamDef(nil), d.params...) }

// formatParams renders "name=default (doc); ..." or "—".
func formatParams(defs []ParamDef) string {
	if len(defs) == 0 {
		return "—"
	}
	parts := make([]string, len(defs))
	for i, p := range defs {
		parts[i] = fmt.Sprintf("%s=%s (%s)", p.Name, strconv.FormatFloat(p.Default, 'g', -1, 64), p.Doc)
	}
	return strings.Join(parts, "; ")
}

// WriteCatalogue writes the human-readable scheme inventory: the spec
// grammar, both registries with parameters and defaults, and the full
// list of valid combinations. The CLIs' -list-schemes flag prints this.
func WriteCatalogue(w io.Writer) error {
	tw := &errWriter{w: w}
	tw.printf("scheme spec grammar: <scheduler>[:<queues>]+<manager>[?key=value,...]\n")
	tw.printf("  a bare scheduler name means '+none'; a bare manager name means 'fifo+'\n")
	tw.printf("  e.g. fifo+threshold, wfq+sharing, hybrid:3+sharing, fifo+red?min=0.2,max=0.8\n\n")
	tw.printf("schedulers:\n")
	for _, d := range schedulers {
		tw.printf("  %-10s %-8s %s  [%s]\n", d.name, d.display, d.doc, d.paper)
		for _, p := range d.params {
			tw.printf("  %-10s   ?%s=%s — %s\n", "", p.Name, strconv.FormatFloat(p.Default, 'g', -1, 64), p.Doc)
		}
	}
	tw.printf("\nbuffer managers:\n")
	for _, d := range managers {
		display := d.display
		if display == "" {
			display = "(tail-drop)"
		}
		tw.printf("  %-10s %-16s %s  [%s]\n", d.name, display, d.doc, d.paper)
		for _, p := range d.params {
			tw.printf("  %-10s   ?%s=%s — %s\n", "", p.Name, strconv.FormatFloat(p.Default, 'g', -1, 64), p.Doc)
		}
	}
	tw.printf("\nall combinations:\n")
	for _, spec := range Specs() {
		tw.printf("  %-20s %s\n", spec, MustParse(spec).String())
	}
	return tw.err
}

// MarkdownCatalogue renders the registry as the Markdown tables embedded
// in README.md (between the scheme-catalogue markers); a test keeps the
// README in sync with this output.
func MarkdownCatalogue() string {
	var b strings.Builder
	b.WriteString("Spec grammar: `<scheduler>[:<queues>]+<manager>[?key=value,...]` — a bare\n")
	b.WriteString("scheduler name means `+none`, a bare manager name means `fifo+`.\n\n")
	b.WriteString("| Scheduler | Label | Description | Paper | Parameters (default) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, d := range schedulers {
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n", d.name, d.display, d.doc, d.paper, formatParams(d.params))
	}
	b.WriteString("\n| Manager | Label | Description | Paper | Parameters (default) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, d := range managers {
		display := d.display
		if display == "" {
			display = "(tail-drop)"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n", d.name, display, d.doc, d.paper, formatParams(d.params))
	}
	return b.String()
}

// errWriter folds fmt errors so WriteCatalogue stays readable.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
