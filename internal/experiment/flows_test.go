package experiment

import (
	"math"
	"testing"

	"bufqos/internal/units"
)

func TestTable1FlowsMatchPaper(t *testing.T) {
	flows := Table1Flows()
	if len(flows) != 9 {
		t.Fatalf("Table 1 has %d flows, want 9", len(flows))
	}
	// Aggregate reserved rate: 32.8 Mb/s, "about 68% of the link".
	var rho float64
	for _, f := range flows {
		rho += f.Spec.TokenRate.Mbits()
	}
	if math.Abs(rho-32.8) > 1e-9 {
		t.Errorf("Σρ = %v Mb/s, want 32.8", rho)
	}
	// Mean offered load "a little over 100%": Σavg = 54 Mb/s on 48.
	load := OfferedLoad(flows, DefaultLinkRate)
	if load <= 1.0 || load > 1.3 {
		t.Errorf("offered load = %v, want a little over 1", load)
	}
	// Row checks against Table 1.
	f0 := flows[0]
	if f0.Spec.PeakRate != units.MbitsPerSecond(16) || f0.Spec.BucketSize != units.KiloBytes(50) ||
		f0.Spec.TokenRate != units.MbitsPerSecond(2) || f0.AvgRate != units.MbitsPerSecond(2) {
		t.Errorf("flow 0 = %+v", f0)
	}
	f8 := flows[8]
	if f8.Spec.TokenRate != units.MbitsPerSecond(2) || f8.AvgRate != units.MbitsPerSecond(16) {
		t.Errorf("flow 8 = %+v", f8)
	}
	if f8.Conformance != Aggressive || f8.MeanBurst != units.KiloBytes(250) {
		t.Errorf("flow 8 should be aggressive with 5× bucket burst: %+v", f8)
	}
	for i := 0; i <= 5; i++ {
		if !flows[i].Regulated() {
			t.Errorf("flow %d should be regulated", i)
		}
	}
	for i := 6; i <= 8; i++ {
		if flows[i].Regulated() {
			t.Errorf("flow %d should be unregulated", i)
		}
	}
}

func TestTable2FlowsMatchPaper(t *testing.T) {
	flows := Table2Flows()
	if len(flows) != 30 {
		t.Fatalf("Table 2 has %d flows, want 30", len(flows))
	}
	for i := 0; i < 10; i++ {
		f := flows[i]
		if f.Spec.PeakRate != units.MbitsPerSecond(8) || f.Spec.TokenRate.Mbits() != 0.6 ||
			f.Spec.BucketSize != units.KiloBytes(15) || f.Conformance != Conformant {
			t.Errorf("flow %d = %+v", i, f)
		}
	}
	for i := 10; i < 20; i++ {
		f := flows[i]
		if f.Conformance != Moderate || f.AvgRate.Mbits() != 2.4 || f.MeanBurst != units.KiloBytes(30) {
			t.Errorf("flow %d = %+v", i, f)
		}
	}
	for i := 20; i < 30; i++ {
		f := flows[i]
		if f.Conformance != Aggressive || f.MeanBurst != units.KiloBytes(500) {
			t.Errorf("flow %d = %+v", i, f)
		}
		// "over 8 times their requested reservation": 2.4 / 0.3 = 8.
		if r := f.AvgRate.BitsPerSecond() / f.Spec.TokenRate.BitsPerSecond(); r < 8 {
			t.Errorf("flow %d rate ratio %v, want ≥ 8", i, r)
		}
	}
}

func TestQueueMappings(t *testing.T) {
	q1 := Table1QueueOf()
	if len(q1) != 9 || q1[0] != 0 || q1[3] != 1 || q1[8] != 2 {
		t.Errorf("Table1QueueOf = %v", q1)
	}
	q2 := Table2QueueOf()
	if len(q2) != 30 || q2[9] != 0 || q2[10] != 1 || q2[29] != 2 {
		t.Errorf("Table2QueueOf = %v", q2)
	}
}

func TestConformantIDs(t *testing.T) {
	ids := ConformantIDs(Table1Flows())
	if len(ids) != 6 || ids[0] != 0 || ids[5] != 5 {
		t.Errorf("conformant IDs = %v", ids)
	}
	ids2 := ConformantIDs(Table2Flows())
	if len(ids2) != 10 {
		t.Errorf("Table 2 conformant IDs = %v", ids2)
	}
}

func TestSpecsExtraction(t *testing.T) {
	specs := Specs(Table1Flows())
	if len(specs) != 9 || specs[3].TokenRate != units.MbitsPerSecond(8) {
		t.Errorf("Specs() wrong: %+v", specs[3])
	}
}
