package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// ChurnConfig describes a dynamic-population experiment: flow requests
// arrive as a Poisson process, pass admission control (the §2.3 FIFO+BM
// region), hold for an exponential time, and depart. Thresholds are
// recomputed whenever the population changes — the operational regime
// the paper's §4 alludes to ("as flows come and go").
type ChurnConfig struct {
	// Template flows: each arrival draws one uniformly.
	Templates []FlowConfig
	// ArrivalRate is the request rate (flows/second).
	ArrivalRate float64
	// MeanHold is the mean flow lifetime (seconds).
	MeanHold float64
	// MaxFlows bounds concurrently active flows (slot pool size).
	MaxFlows int
	LinkRate units.Rate
	Buffer   units.Bytes
	Duration float64
	Warmup   float64
	Seed     int64
	// PacketSize defaults to DefaultPacketSize.
	PacketSize units.Bytes
	// Metrics, when non-nil, receives the kernel, buffer, and scheduler
	// metrics of the run (see Options.Metrics).
	Metrics *metrics.Registry
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	// Requests, Admitted, Blocked count flow-level admission outcomes;
	// BlockedBandwidth/BlockedBuffer split the rejections by cause.
	Requests         int
	Admitted         int
	Blocked          int
	BlockedBandwidth int
	BlockedBuffer    int
	// BlockingProbability = Blocked / Requests.
	BlockingProbability float64
	// Utilization is delivered rate over link rate (post-warmup).
	Utilization float64
	// ConformantLoss is the byte loss ratio across all admitted flows
	// (all churn traffic is shaped, so any loss is a guarantee
	// violation).
	ConformantLoss float64
	// MeanActive is the time-average number of active flows.
	MeanActive float64
}

// SweepChurn replicates the churn experiment across arrival rates,
// running the rates × runs grid on a worker pool (workers as in
// Options.Workers: 0 means GOMAXPROCS, 1 sequential). Replication r of
// every rate uses seed base.Seed + r, and results land in pre-assigned
// slots — out[i][r] is rate arrivalRates[i], replication r — so the
// output is identical for any worker count. Cancelling ctx stops the
// sweep; completed cells of the grid stay filled and ctx.Err() is
// returned alongside them.
func SweepChurn(ctx context.Context, base ChurnConfig, arrivalRates []float64, runs, workers int) ([][]ChurnResult, error) {
	if runs <= 0 {
		runs = 1
	}
	out := make([][]ChurnResult, len(arrivalRates))
	for i := range out {
		out[i] = make([]ChurnResult, runs)
	}
	err := forEachJob(ctx, workers, len(arrivalRates)*runs, base.Metrics, nil, func(j int) error {
		i, r := j/runs, j%runs
		cfg := base
		cfg.ArrivalRate = arrivalRates[i]
		cfg.Seed = base.Seed + int64(r)
		res, err := RunChurn(ctx, cfg)
		if err != nil {
			return fmt.Errorf("churn rate %v run %d: %w", arrivalRates[i], r, err)
		}
		out[i][r] = res
		return nil
	})
	if err != nil {
		return out, err
	}
	return out, nil
}

// RunChurn executes a churn experiment. Cancelling ctx interrupts the
// run, returning ctx.Err().
func RunChurn(ctx context.Context, cfg ChurnConfig) (ChurnResult, error) {
	if len(cfg.Templates) == 0 {
		return ChurnResult{}, fmt.Errorf("experiment: churn needs templates")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanHold <= 0 || cfg.MaxFlows <= 0 {
		return ChurnResult{}, fmt.Errorf("experiment: churn needs positive arrival rate, hold time, and slot count")
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = DefaultLinkRate
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = DefaultPacketSize
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 10
	}

	s := sim.New()
	col := stats.NewCollector(cfg.MaxFlows, cfg.Warmup)
	thresholds := make([]units.Bytes, cfg.MaxFlows)
	mgr := buffer.NewFixedThreshold(cfg.Buffer, thresholds)
	link := sched.NewLink(s, cfg.LinkRate, sched.NewFIFO(), mgr, col)
	if cfg.Metrics != nil {
		s.Instrument(cfg.Metrics)
		mgr.Instrument(cfg.Metrics, "buffer")
		link.Instrument(cfg.Metrics, "churn")
	}
	admission := core.NewSerialAdmitter(core.DisciplineFIFO, cfg.LinkRate, cfg.Buffer)

	rng := sim.NewRand(cfg.Seed)
	srcRngSeq := 0

	var res ChurnResult
	active := make([]*packet.FlowSpec, cfg.MaxFlows) // nil = free slot
	sources := make([]*source.OnOff, cfg.MaxFlows)

	// Time-average active count via area accumulation.
	var activeArea float64
	var lastChange float64
	var activeCount int
	accumulate := func() {
		activeArea += float64(activeCount) * (s.Now() - lastChange)
		lastChange = s.Now()
	}

	// recompute refreshes every active flow's threshold after a
	// population change: σᵢ + ρᵢ·B/R (no scale-up under churn; the
	// thresholds are the Prop. 2 minima).
	recompute := func() {
		for i, spec := range active {
			if spec == nil {
				// Keep a departed slot's threshold until the slot is
				// reused: its shaper may still be draining trailing
				// packets, which must not be punished retroactively.
				continue
			}
			mgr.SetThreshold(i, core.LeakyBucketThreshold(*spec, cfg.LinkRate, cfg.Buffer))
		}
	}

	freeSlot := func() int {
		for i, spec := range active {
			// A slot is reusable only once the previous occupant's
			// packets have fully drained, so flows never inherit
			// phantom occupancy (or each other's statistics).
			if spec == nil && mgr.Occupancy(i) == 0 {
				return i
			}
		}
		return -1
	}

	var arrive func()
	arrive = func() {
		// Schedule the next arrival first (Poisson process).
		s.After(sim.Exponential(rng, 1/cfg.ArrivalRate), arrive)

		tpl := cfg.Templates[rng.Intn(len(cfg.Templates))]
		res.Requests++
		slot := freeSlot()
		verdict := core.BufferLimited // treat slot exhaustion as buffer pressure
		if slot >= 0 {
			verdict = admission.Admit(tpl.Spec)
		}
		switch verdict {
		case core.Accepted:
		case core.BandwidthLimited:
			res.Blocked++
			res.BlockedBandwidth++
			return
		default:
			res.Blocked++
			res.BlockedBuffer++
			return
		}
		res.Admitted++
		spec := tpl.Spec
		accumulate()
		active[slot] = &spec
		activeCount++
		recompute()

		srcRngSeq++
		srcRng := sim.NewRand(sim.DeriveSeed(cfg.Seed, srcRngSeq))
		// All churn traffic is shaped (conformant): the experiment
		// measures whether guarantees survive population changes.
		sink := source.NewShaper(s, spec, link)
		src := source.NewOnOff(s, srcRng, source.OnOffConfig{
			Flow:       slot,
			PacketSize: cfg.PacketSize,
			PeakRate:   spec.PeakRate,
			AvgRate:    tpl.AvgRate,
			MeanBurst:  tpl.MeanBurst,
		}, sink)
		src.Start()
		sources[slot] = src

		// Departure after an exponential holding time.
		s.After(sim.Exponential(rng, cfg.MeanHold), func() {
			src.Stop()
			admission.Release(spec)
			accumulate()
			active[slot] = nil
			sources[slot] = nil
			activeCount--
			recompute()
		})
	}
	s.After(sim.Exponential(rng, 1/cfg.ArrivalRate), arrive)
	if err := runUntilCtx(ctx, s, cfg.Duration); err != nil {
		return ChurnResult{}, err
	}
	accumulate()

	res.Utilization = col.AggregateThroughput(cfg.Duration).BitsPerSecond() / cfg.LinkRate.BitsPerSecond()
	res.ConformantLoss = col.ConformantLossRatio()
	if res.Requests > 0 {
		res.BlockingProbability = float64(res.Blocked) / float64(res.Requests)
	}
	res.MeanActive = activeArea / cfg.Duration
	return res, nil
}
