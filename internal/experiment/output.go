package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteTable renders a figure as an aligned text table: one row per X
// value, one "mean ± ci" column per series.
func WriteTable(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := []string{fig.XLabel}
	for _, s := range fig.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintln(tw, strings.Join(cols, "\t"))
	for xi, x := range fig.Xs {
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, s := range fig.Series {
			p := s.Points[xi]
			row = append(row, fmt.Sprintf("%.4f±%.4f", p.Mean, p.HalfCI95))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// WriteCSV renders a figure as CSV with mean and ci columns per series.
func WriteCSV(w io.Writer, fig Figure) error {
	cols := []string{csvEscape(fig.XLabel)}
	for _, s := range fig.Series {
		cols = append(cols, csvEscape(s.Label), csvEscape(s.Label+" ci95"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for xi, x := range fig.Xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range fig.Series {
			p := s.Points[xi]
			row = append(row, fmt.Sprintf("%g", p.Mean), fmt.Sprintf("%g", p.HalfCI95))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SeriesByLabel finds a series in a figure; it returns false when the
// label is absent.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}
