package experiment

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// quickCfg returns a short Table 1 run for tests.
func quickCfg(scheme Scheme, buf units.Bytes) Config {
	return Config{
		Flows:    Table1Flows(),
		Scheme:   scheme,
		Buffer:   buf,
		Headroom: units.KiloBytes(500),
		QueueOf:  Table1QueueOf(),
		Duration: 4,
		Warmup:   0.5,
		Seed:     1,
	}
}

func TestRunAllSchemesSmoke(t *testing.T) {
	schemes := []Scheme{
		FIFONoBM, WFQNoBM, FIFOThreshold, WFQThreshold,
		FIFOSharing, WFQSharing, HybridSharing,
		FIFODynamicThreshold, FIFORed,
		FIFOAdaptiveSharing, RPQThreshold,
		DRRThreshold, EDFThreshold, VCThreshold,
	}
	for _, s := range schemes {
		res, err := RunConfig(quickCfg(s, units.MegaBytes(1)))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Utilization <= 0.3 || res.Utilization > 1.001 {
			t.Errorf("%v: utilization %v out of range", s, res.Utilization)
		}
		if len(res.FlowThroughput) != 9 || len(res.FlowLoss) != 9 {
			t.Errorf("%v: result vectors wrong length", s)
		}
		for i, l := range res.FlowLoss {
			if l < 0 || l > 1 {
				t.Errorf("%v: flow %d loss %v out of [0,1]", s, i, l)
			}
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := RunConfig(quickCfg(FIFOThreshold, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(quickCfg(FIFOThreshold, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different results")
	}
	c := quickCfg(FIFOThreshold, units.MegaBytes(1))
	c.Seed = 2
	b2, err := RunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b2) {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestThresholdsProtectConformantFlows(t *testing.T) {
	// The core claim of the paper: with enough buffer, FIFO+thresholds
	// drives conformant loss to ≈0 while plain FIFO keeps losing.
	noBM, err := RunConfig(quickCfg(FIFONoBM, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	thr, err := RunConfig(quickCfg(FIFOThreshold, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	if noBM.ConformantLoss < 0.005 {
		t.Errorf("no-BM conformant loss %v unexpectedly low — aggressors not hurting", noBM.ConformantLoss)
	}
	if thr.ConformantLoss > noBM.ConformantLoss/4 {
		t.Errorf("thresholds loss %v not clearly below no-BM loss %v", thr.ConformantLoss, noBM.ConformantLoss)
	}
}

func TestNoBMFillsLinkAtSmallBuffer(t *testing.T) {
	// Figure 1's left edge: plain FIFO hits ~90% utilization with just
	// 500 KB while FIFO+thresholds is visibly below it.
	noBM, err := RunConfig(quickCfg(FIFONoBM, units.KiloBytes(500)))
	if err != nil {
		t.Fatal(err)
	}
	thr, err := RunConfig(quickCfg(FIFOThreshold, units.KiloBytes(500)))
	if err != nil {
		t.Fatal(err)
	}
	if noBM.Utilization < 0.85 {
		t.Errorf("no-BM utilization %v at 500KB, want ≥ 0.85", noBM.Utilization)
	}
	if thr.Utilization >= noBM.Utilization {
		t.Errorf("threshold utilization %v not below no-BM %v at small buffer",
			thr.Utilization, noBM.Utilization)
	}
}

func TestSharingRecoversUtilization(t *testing.T) {
	// Figure 4 vs Figure 1: sharing beats fixed partitioning at equal
	// buffer.
	fixed, err := RunConfig(quickCfg(FIFOThreshold, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	share, err := RunConfig(quickCfg(FIFOSharing, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	if share.Utilization <= fixed.Utilization {
		t.Errorf("sharing utilization %v not above fixed %v", share.Utilization, fixed.Utilization)
	}
}

func TestWFQSharesExcessProportionally(t *testing.T) {
	// Figure 3's key contrast: under WFQ+thresholds flows 6 and 8 split
	// excess ∝ reservations (0.4 vs 2.0 Mb/s → ratio 5).
	cfg := quickCfg(WFQThreshold, units.MegaBytes(3))
	cfg.Duration = 8
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t6 := res.FlowThroughput[6].Mbits()
	t8 := res.FlowThroughput[8].Mbits()
	ratio := t8 / t6
	if ratio < 2.5 {
		t.Errorf("WFQ flow8/flow6 throughput ratio %v (t6=%v t8=%v), want ≫ 1", ratio, t6, t8)
	}
}

func TestHybridTracksWFQ(t *testing.T) {
	// Figures 8–9: the 3-queue hybrid stays close to per-flow WFQ with
	// sharing on both utilization and conformant loss.
	wfq, err := RunConfig(quickCfg(WFQSharing, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RunConfig(quickCfg(HybridSharing, units.MegaBytes(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hyb.Utilization-wfq.Utilization) > 0.1 {
		t.Errorf("hybrid utilization %v far from WFQ %v", hyb.Utilization, wfq.Utilization)
	}
	if hyb.ConformantLoss > wfq.ConformantLoss+0.03 {
		t.Errorf("hybrid conformant loss %v much worse than WFQ %v", hyb.ConformantLoss, wfq.ConformantLoss)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := RunConfig(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := quickCfg(HybridSharing, units.MegaBytes(1))
	bad.QueueOf = []int{0}
	if _, err := RunConfig(bad); err == nil {
		t.Error("mismatched QueueOf accepted")
	}
	if _, err := RunConfig(quickCfg(Scheme(42), units.MegaBytes(1))); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		FIFONoBM: "FIFO", WFQNoBM: "WFQ",
		FIFOThreshold: "thresholds", FIFOSharing: "sharing",
		HybridSharing: "hybrid", FIFORed: "RED",
		Scheme(42): "42",
	} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("Scheme(%d).String() = %q, want containing %q", int(s), s, want)
		}
	}
}

func TestOfferedRatesMatchTable(t *testing.T) {
	// The measured offered rates at the multiplexer should approximate
	// the AvgRate column of Table 1 (conformant flows arrive shaped at
	// their token rate ≈ avg rate; aggressive flows at their avg rate).
	cfg := quickCfg(FIFONoBM, units.MegaBytes(5))
	cfg.Duration = 12
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := Table1Flows()
	for i, f := range flows {
		got := res.OfferedRate[i].Mbits()
		want := f.AvgRate.Mbits()
		if math.Abs(got-want)/want > 0.4 {
			t.Errorf("flow %d offered %v Mb/s, want ≈ %v (±40%%)", i, got, want)
		}
	}
}

func TestFIFODelayBoundedByBufferDrainTime(t *testing.T) {
	// The §1 scaling argument: FIFO queueing delay is bounded by the
	// time to drain a full buffer, B·8/R (plus the packet in service).
	// "The worst case delay caused by a 1MByte buffer feeding an OC-48
	// link is less than 3.5msec" — here on the 48 Mb/s link a 1 MB
	// buffer bounds delay by 167 ms.
	cfg := quickCfg(FIFONoBM, units.MegaBytes(1))
	cfg.TrackDelays = true
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDelay == 0 {
		t.Fatal("no delays recorded")
	}
	bound := (units.MegaBytes(1).Bits() + 500*8) / 48e6
	if res.MaxDelay > bound {
		t.Errorf("worst FIFO delay %v exceeds buffer drain bound %v", res.MaxDelay, bound)
	}
	if res.MeanDelay <= 0 || res.MeanDelay > res.MaxDelay {
		t.Errorf("mean delay %v inconsistent with max %v", res.MeanDelay, res.MaxDelay)
	}
	if len(res.FlowMaxDelay) != 9 {
		t.Fatalf("per-flow delays missing")
	}
	for i, d := range res.FlowMaxDelay {
		if d > res.MaxDelay {
			t.Errorf("flow %d max delay %v exceeds global max %v", i, d, res.MaxDelay)
		}
	}
}

func TestOC48DelayClaim(t *testing.T) {
	// Reproduce the §1 numerical claim directly: 1 MB buffer on a
	// 2.4 Gb/s OC-48 link bounds FIFO delay below 3.5 ms, even under
	// heavy overload. Scale the Table 1 sources up 50× to keep the link
	// saturated.
	flows := Table1Flows()
	for i := range flows {
		flows[i].Spec.PeakRate *= 50
		flows[i].Spec.TokenRate *= 50
		flows[i].AvgRate *= 50
	}
	res, err := RunConfig(Config{
		Flows:       flows,
		Scheme:      FIFONoBM,
		LinkRate:    units.Rate(2.4e9),
		Buffer:      units.MegaBytes(1),
		Duration:    1,
		Warmup:      0.1,
		Seed:        3,
		TrackDelays: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDelay == 0 {
		t.Fatal("no delays recorded")
	}
	if res.MaxDelay >= 0.0035 {
		t.Errorf("OC-48 worst delay %v s, paper claims < 3.5 ms", res.MaxDelay)
	}
}

func TestRPQSchemeUrgentDelaySeparation(t *testing.T) {
	// RPQ+thresholds gives the low-burst-ratio flows (classes 0-1)
	// lower worst-case delays than FIFO+thresholds does under the same
	// load — the ablation claim behind including reference [10].
	fifoCfg := quickCfg(FIFOThreshold, units.MegaBytes(2))
	fifoCfg.TrackDelays = true
	fifo, err := RunConfig(fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	rpqCfg := quickCfg(RPQThreshold, units.MegaBytes(2))
	rpqCfg.TrackDelays = true
	rpq, err := RunConfig(rpqCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flows 0-2 (50KB/2Mb = 0.2s ratio... class 2) — use flow 6/7
	// (50KB/0.4Mb = 1s ratio, class 3) vs flows 3-5 (100KB/8Mb = 0.1s,
	// class 1): the class-1 flows should see relatively better delays
	// under RPQ than the class-3 flows, compared to FIFO where order is
	// blind.
	relFIFO := fifo.FlowMaxDelay[3] / (fifo.FlowMaxDelay[6] + 1e-9)
	relRPQ := rpq.FlowMaxDelay[3] / (rpq.FlowMaxDelay[6] + 1e-9)
	if relRPQ >= relFIFO {
		t.Errorf("RPQ did not improve class separation: rel delay %.3f (RPQ) vs %.3f (FIFO)", relRPQ, relFIFO)
	}
}

func TestAdaptiveSharingRestrainsAggressors(t *testing.T) {
	// Under the §5 adaptive policy, aggressive flows (non-adaptive)
	// deliver less than under plain sharing, while conformant flows
	// remain protected.
	shareCfg := quickCfg(FIFOSharing, units.MegaBytes(3))
	share, err := RunConfig(shareCfg)
	if err != nil {
		t.Fatal(err)
	}
	adCfg := quickCfg(FIFOAdaptiveSharing, units.MegaBytes(3))
	ad, err := RunConfig(adCfg)
	if err != nil {
		t.Fatal(err)
	}
	aggShare := share.FlowThroughput[6].Mbits() + share.FlowThroughput[7].Mbits() + share.FlowThroughput[8].Mbits()
	aggAd := ad.FlowThroughput[6].Mbits() + ad.FlowThroughput[7].Mbits() + ad.FlowThroughput[8].Mbits()
	if aggAd > aggShare+0.5 {
		t.Errorf("adaptive policy did not restrain aggressors: %v vs %v Mb/s", aggAd, aggShare)
	}
	if ad.ConformantLoss > share.ConformantLoss+0.01 {
		t.Errorf("adaptive policy hurt conformant flows: %v vs %v", ad.ConformantLoss, share.ConformantLoss)
	}
}

func TestMixedPacketSizesProtected(t *testing.T) {
	// Voice-sized (160 B) and MTU-sized (1500 B) conformant flows share
	// the link with an aggressor; byte-based thresholds protect both
	// regardless of packet granularity.
	flows := []FlowConfig{
		{
			Spec: packet.FlowSpec{PeakRate: units.MbitsPerSecond(2),
				TokenRate: units.MbitsPerSecond(0.5), BucketSize: units.KiloBytes(10)},
			AvgRate: units.MbitsPerSecond(0.5), MeanBurst: units.KiloBytes(10),
			Conformance: Conformant, PacketSize: 160,
		},
		{
			Spec: packet.FlowSpec{PeakRate: units.MbitsPerSecond(24),
				TokenRate: units.MbitsPerSecond(8), BucketSize: units.KiloBytes(60)},
			AvgRate: units.MbitsPerSecond(8), MeanBurst: units.KiloBytes(60),
			Conformance: Conformant, PacketSize: 1500,
		},
		{
			Spec: packet.FlowSpec{PeakRate: units.MbitsPerSecond(40),
				TokenRate: units.MbitsPerSecond(2), BucketSize: units.KiloBytes(50)},
			AvgRate: units.MbitsPerSecond(30), MeanBurst: units.KiloBytes(250),
			Conformance: Aggressive, PacketSize: 500,
		},
	}
	res, err := RunConfig(Config{
		Flows:    flows,
		Scheme:   FIFOThreshold,
		Buffer:   units.MegaBytes(1),
		Duration: 8,
		Warmup:   1,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformantLoss > 0 {
		t.Errorf("conformant loss %v with mixed packet sizes", res.ConformantLoss)
	}
	for i := 0; i < 2; i++ {
		if res.FlowThroughput[i].BitsPerSecond() < res.OfferedRate[i].BitsPerSecond()*0.99 {
			t.Errorf("flow %d (size %v) delivered below offered", i, flows[i].PacketSize)
		}
	}
}
