package experiment

import (
	"strings"
	"testing"
)

// FuzzParseWorkload hardens the JSON scenario loader: arbitrary input
// must either parse into a valid workload (every flow spec valid,
// queues non-negative, link rate positive) or return an error — never
// panic, never produce an inconsistent Workload.
func FuzzParseWorkload(f *testing.F) {
	f.Add(sampleWorkload)
	f.Add(`{"flows":[{"peak_mbps":16,"avg_mbps":2,"token_mbps":2,"bucket_kb":50}]}`)
	f.Add(`{"flows":[]}`)
	f.Add(`{`)
	f.Add(`{"name":"x","link_mbps":-1,"flows":[{"token_mbps":1,"bucket_kb":1,"avg_mbps":1}]}`)
	f.Add(`{"flows":[{"count":1000000,"token_mbps":1,"bucket_kb":1,"avg_mbps":1}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against pathological expansion blowing up memory.
		if strings.Contains(input, "count") && len(input) > 4096 {
			return
		}
		w, err := ParseWorkload(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(w.Flows) == 0 {
			t.Fatal("parsed workload with no flows and no error")
		}
		if len(w.Flows) != len(w.QueueOf) {
			t.Fatalf("flows/queues length mismatch: %d vs %d", len(w.Flows), len(w.QueueOf))
		}
		if w.LinkRate <= 0 {
			t.Fatalf("non-positive link rate %v accepted", w.LinkRate)
		}
		for i, fc := range w.Flows {
			if err := fc.Spec.Validate(); err != nil {
				t.Fatalf("flow %d invalid after successful parse: %v", i, err)
			}
			if fc.AvgRate <= 0 {
				t.Fatalf("flow %d has non-positive average rate", i)
			}
			if w.QueueOf[i] < 0 {
				t.Fatalf("flow %d has negative queue", i)
			}
		}
	})
}
