package experiment

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bufqos/internal/units"
)

// table1Lines builds the Figure-1 line set over the Table 1 workload,
// the reference workload for the equivalence tests.
func table1Lines(metric func(Result) float64) []line {
	var lines []line
	for _, spec := range []string{"fifo+threshold", "wfq+threshold", "fifo+none", "wfq+none"} {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, 0) },
			metric: metric,
		})
	}
	return lines
}

// TestParallelRunLinesMatchesSequential asserts that fanning the Table 1
// sweep onto 8 workers produces byte-identical Series to a sequential
// sweep: same labels, same points, bit-equal floats.
func TestParallelRunLinesMatchesSequential(t *testing.T) {
	opts := &Options{
		Runs:        3,
		Duration:    2,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(2)},
	}
	WithWarmup(0.25)(opts)
	WithSeed(7)(opts)
	opts.defaults()

	seq := *opts
	seq.Workers = 1
	want, err := runLines(context.Background(), &seq, seq.BufferSizes, table1Lines(utilization))
	if err != nil {
		t.Fatal(err)
	}
	par := *opts
	par.Workers = 8
	got, err := runLines(context.Background(), &par, par.BufferSizes, table1Lines(utilization))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel series differ from sequential:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallelChurnSweepMatchesSequential does the same for the churn
// driver: the rates × replications grid must be identical at any worker
// count.
func TestParallelChurnSweepMatchesSequential(t *testing.T) {
	base := ChurnConfig{
		Templates: []FlowConfig{{
			Spec:      Table1Flows()[0].Spec,
			AvgRate:   Table1Flows()[0].AvgRate,
			MeanBurst: Table1Flows()[0].MeanBurst,
		}},
		MeanHold: 2,
		MaxFlows: 16,
		Buffer:   units.MegaBytes(1),
		Duration: 5,
		Warmup:   0.5,
		Seed:     3,
	}
	rates := []float64{1, 4}
	want, err := SweepChurn(context.Background(), base, rates, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepChurn(context.Background(), base, rates, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel churn sweep differs from sequential:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallelErrorDeterministic checks forEachJob reports the earliest
// failing job regardless of scheduling, and skips work after a failure.
func TestParallelErrorDeterministic(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 7 failed")
	for _, workers := range []int{1, 4} {
		err := forEachJob(context.Background(), workers, 10, nil, nil, func(i int) error {
			switch i {
			case 2:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: got error %v, want earliest job's (%v)", workers, err, errA)
		}
	}
	var ran atomic.Int64
	if err := forEachJob(context.Background(), 4, 100, nil, nil, func(i int) error {
		ran.Add(1)
		return errA
	}); err == nil {
		t.Error("failure not propagated")
	}
	if ran.Load() == 100 {
		t.Error("no jobs were skipped after the first failure")
	}
}

// TestPoolCancellation cancels a sweep mid-flight and verifies the three
// promises of the context-aware pool: it returns promptly (within about
// one run, not the whole sweep), leaks no goroutines, and leaves the
// already-completed slots' results intact.
func TestPoolCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())

	const n = 64
	done := make([]bool, n)
	var completed atomic.Int64
	err := forEachJob(ctx, 4, n, nil, nil, func(i int) error {
		if completed.Add(1) == 8 {
			cancel() // cancel once a handful of jobs have finished
		}
		time.Sleep(2 * time.Millisecond)
		done[i] = true
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v, want context.Canceled", err)
	}
	finished := 0
	for _, d := range done {
		if d {
			finished++
		}
	}
	if finished == 0 || finished == n {
		t.Errorf("finished %d/%d jobs; want a proper partial prefix", finished, n)
	}
	// All workers must have exited: no goroutine leak. Allow a little
	// slack for runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("%d goroutines after cancelled pool, started with %d", g, before)
	}
}

// TestSweepCancellationPartialResults cancels a figure sweep mid-run and
// checks the partial Series: well-formed shape, completed points kept,
// prompt return bounded by roughly one run's duration.
func TestSweepCancellationPartialResults(t *testing.T) {
	opts := &Options{
		Runs:        2,
		Duration:    2,
		Workers:     2,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(1), units.MegaBytes(2)},
	}
	WithWarmup(0.2)(opts)
	opts.defaults()

	var seen atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Progress = func(p Progress) {
		if seen.Add(1) == 3 {
			cancel()
		}
	}
	start := time.Now()
	series, err := runLines(ctx, opts, opts.BufferSizes, table1Lines(utilization))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v, want context.Canceled", err)
	}
	// A full sequential sweep is 4 lines × 3 points × 2 runs = 24 runs;
	// cancellation after ~3 must return long before that.
	if elapsed > 15*time.Second {
		t.Errorf("cancelled sweep took %v", elapsed)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4 (one per scheme)", len(series))
	}
	total, populated := 0, 0
	for _, s := range series {
		if len(s.Points) != len(opts.BufferSizes) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(opts.BufferSizes))
		}
		for _, p := range s.Points {
			total++
			if p.N > 0 {
				populated++
				if p.Mean <= 0 || p.Mean > 1.01 {
					t.Errorf("series %q has nonsense utilization %v", s.Label, p.Mean)
				}
			}
		}
	}
	if populated == total {
		t.Error("every point fully populated — cancellation did nothing")
	}
}

// TestOptionsDefaults pins the defaults contract of the redesigned API:
// the zero Options reproduces the paper's setup, WithWarmup(0) and
// WithSeed(0) are honored as explicit zeros, and the deprecated
// Config/RunOpts shims convert faithfully.
func TestOptionsDefaults(t *testing.T) {
	o := NewOptions()
	o.defaults()
	if o.Duration != 20 || o.Warmup != 2 || o.Seed != 1 || o.Runs != 5 {
		t.Errorf("zero Options defaulted to duration=%v warmup=%v seed=%v runs=%v",
			o.Duration, o.Warmup, o.Seed, o.Runs)
	}
	if len(o.BufferSizes) != 10 || o.Fig7Buffer != units.MegaBytes(1) {
		t.Errorf("sweep axes: %d buffer sizes, fig7 buffer %v", len(o.BufferSizes), o.Fig7Buffer)
	}
	if o.Headroom != 0 {
		t.Errorf("single-run headroom defaulted to %v, want 0", o.Headroom)
	}
	s := NewOptions()
	s.sweepDefaults()
	if s.Headroom != units.MegaBytes(2) {
		t.Errorf("sweep headroom %v, want the paper's 2 MB", s.Headroom)
	}

	z := NewOptions(WithDuration(10), WithWarmup(0), WithSeed(0))
	z.defaults()
	if z.Warmup != 0 {
		t.Errorf("WithWarmup(0) overwritten to %v", z.Warmup)
	}
	if z.Seed != 0 {
		t.Errorf("WithSeed(0) overwritten to %v", z.Seed)
	}

	c := Config{Duration: 10}.Options()
	c.defaults()
	if c.Warmup != 1 {
		t.Errorf("unset shim warmup defaulted to %v, want Duration/10 = 1", c.Warmup)
	}
	c = Config{Duration: 10, WarmupSet: true}.Options()
	c.defaults()
	if c.Warmup != 0 {
		t.Errorf("shim explicit zero warmup overwritten to %v", c.Warmup)
	}
	if c.Seed != 0 {
		t.Errorf("shim zero seed overwritten to %v (legacy Config treats 0 literally)", c.Seed)
	}

	r := RunOpts{BaseSeed: 9, Workers: 3, WarmupSet: true}.Options()
	r.defaults()
	if r.Seed != 9 || r.Workers != 3 || r.Warmup != 0 {
		t.Errorf("RunOpts shim lost fields: seed=%v workers=%v warmup=%v", r.Seed, r.Workers, r.Warmup)
	}
}

// TestConfigExplicitZeroWarmup is the regression test for the defaults
// bug: a deliberate zero warmup used to be silently replaced with
// Duration/10. It runs end to end through the deprecated shim.
func TestConfigExplicitZeroWarmup(t *testing.T) {
	// Measuring from t=0 must count strictly more offered bytes than
	// discarding a warmup prefix.
	mk := func(warmupSet bool) Result {
		res, err := RunConfig(Config{
			Flows:     Table1Flows(),
			Scheme:    FIFOThreshold,
			Buffer:    units.MegaBytes(1),
			Duration:  2,
			WarmupSet: warmupSet,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noWarm, defWarm := mk(true), mk(false)
	var offNo, offDef float64
	for i := range noWarm.OfferedRate {
		offNo += noWarm.OfferedRate[i].BitsPerSecond() * 2
		offDef += defWarm.OfferedRate[i].BitsPerSecond() * (2 - 0.2)
	}
	if offNo <= offDef {
		t.Errorf("zero-warmup run observed %v offered bits, want more than warmed run's %v", offNo, offDef)
	}
}
