package experiment

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"bufqos/internal/units"
)

// table1Lines builds the Figure-1 line set over the Table 1 workload,
// the reference workload for the equivalence tests.
func table1Lines(metric func(Result) float64) []line {
	var lines []line
	for _, s := range []Scheme{FIFOThreshold, WFQThreshold, FIFONoBM, WFQNoBM} {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, 0) },
			metric: metric,
		})
	}
	return lines
}

// TestParallelRunLinesMatchesSequential asserts that fanning the Table 1
// sweep onto 8 workers produces byte-identical Series to a sequential
// sweep: same labels, same points, bit-equal floats.
func TestParallelRunLinesMatchesSequential(t *testing.T) {
	opts := RunOpts{
		Runs:        3,
		Duration:    2,
		Warmup:      0.25,
		BaseSeed:    7,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(2)},
	}
	opts.defaults()

	seq := opts
	seq.Workers = 1
	want, err := runLines(seq, seq.BufferSizes, table1Lines(utilization))
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := runLines(par, par.BufferSizes, table1Lines(utilization))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel series differ from sequential:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallelChurnSweepMatchesSequential does the same for the churn
// driver: the rates × replications grid must be identical at any worker
// count.
func TestParallelChurnSweepMatchesSequential(t *testing.T) {
	base := ChurnConfig{
		Templates: []FlowConfig{{
			Spec:      Table1Flows()[0].Spec,
			AvgRate:   Table1Flows()[0].AvgRate,
			MeanBurst: Table1Flows()[0].MeanBurst,
		}},
		MeanHold: 2,
		MaxFlows: 16,
		Buffer:   units.MegaBytes(1),
		Duration: 5,
		Warmup:   0.5,
		Seed:     3,
	}
	rates := []float64{1, 4}
	want, err := SweepChurn(base, rates, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepChurn(base, rates, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel churn sweep differs from sequential:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallelErrorDeterministic checks forEachJob reports the earliest
// failing job regardless of scheduling, and skips work after a failure.
func TestParallelErrorDeterministic(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 7 failed")
	for _, workers := range []int{1, 4} {
		err := forEachJob(workers, 10, func(i int) error {
			switch i {
			case 2:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: got error %v, want earliest job's (%v)", workers, err, errA)
		}
	}
	var ran atomic.Int64
	if err := forEachJob(4, 100, func(i int) error {
		ran.Add(1)
		return errA
	}); err == nil {
		t.Error("failure not propagated")
	}
	if ran.Load() == 100 {
		t.Error("no jobs were skipped after the first failure")
	}
}

// TestConfigExplicitZeroWarmup is the regression test for the defaults
// bug: a deliberate zero warmup used to be silently replaced with
// Duration/10.
func TestConfigExplicitZeroWarmup(t *testing.T) {
	c := Config{Duration: 10}
	c.defaults()
	if c.Warmup != 1 {
		t.Errorf("unset warmup defaulted to %v, want Duration/10 = 1", c.Warmup)
	}
	c = Config{Duration: 10, WarmupSet: true}
	c.defaults()
	if c.Warmup != 0 {
		t.Errorf("explicit zero warmup overwritten to %v", c.Warmup)
	}

	o := RunOpts{WarmupSet: true}
	o.defaults()
	if o.Warmup != 0 {
		t.Errorf("explicit zero RunOpts warmup overwritten to %v", o.Warmup)
	}

	// End to end: measuring from t=0 must count strictly more offered
	// bytes than discarding a warmup prefix.
	mk := func(warmupSet bool) Result {
		res, err := Run(Config{
			Flows:     Table1Flows(),
			Scheme:    FIFOThreshold,
			Buffer:    units.MegaBytes(1),
			Duration:  2,
			WarmupSet: warmupSet,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noWarm, defWarm := mk(true), mk(false)
	var offNo, offDef float64
	for i := range noWarm.OfferedRate {
		offNo += noWarm.OfferedRate[i].BitsPerSecond() * 2
		offDef += defWarm.OfferedRate[i].BitsPerSecond() * (2 - 0.2)
	}
	if offNo <= offDef {
		t.Errorf("zero-warmup run observed %v offered bits, want more than warmed run's %v", offNo, offDef)
	}
}
