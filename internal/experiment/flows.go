// Package experiment wires the substrate packages into the paper's
// simulation scenarios and reproduces every figure of the evaluation:
// the Table 1 nine-flow workload (Figures 1–10) and the Table 2
// thirty-flow workload (Figures 11–13), swept over buffer sizes and
// resource-management schemes, averaged over independent runs with 95%
// confidence intervals.
package experiment

import (
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// DefaultPacketSize is the paper's maximum packet size: "the flow
// continuously transmits maximum size (500 bytes) packets".
const DefaultPacketSize units.Bytes = 500

// DefaultLinkRate is the paper's 48 Mb/s output link ("a little over
// T3 capacity").
var DefaultLinkRate = units.MbitsPerSecond(48)

// Conformance classifies how a flow's actual traffic relates to its
// declared (σ, ρ) profile.
type Conformance int

const (
	// Conformant flows are reshaped by a leaky bucket matching their
	// profile (Table 1 flows 0–5, Table 2 flows 0–9).
	Conformant Conformance = iota
	// Moderate flows have profile-matching mean rate and burst but are
	// not reshaped, so they can temporarily exceed it (Table 2, 10–19).
	Moderate
	// Aggressive flows exceed their reservation persistently (Table 1
	// flows 6–8; Table 2 flows 20–29).
	Aggressive
)

// FlowConfig fully describes one simulated flow: its declared traffic
// contract (Spec, used for thresholds, WFQ weights, and admission) and
// its actual source behaviour (peak/average rate and mean burst of the
// Markov-modulated ON-OFF source).
type FlowConfig struct {
	// Spec is the declared profile: token rate ρ (the reserved rate),
	// bucket σ, and peak rate.
	Spec packet.FlowSpec
	// AvgRate is the source's true average rate (≥ ρ for aggressive
	// flows).
	AvgRate units.Rate
	// MeanBurst is the source's true mean burst size.
	MeanBurst units.Bytes
	// Conformance selects whether the source is reshaped by a leaky
	// bucket before reaching the multiplexer.
	Conformance Conformance
	// PacketSize optionally overrides the run-level packet size for
	// this flow (0 = use Config.PacketSize), letting scenarios mix
	// small-packet voice with MTU-sized data.
	PacketSize units.Bytes
}

// Regulated reports whether the flow passes through an edge shaper.
func (f FlowConfig) Regulated() bool { return f.Conformance == Conformant }

// Table1Flows returns the nine flows of the paper's Table 1.
//
//	flow  peak  avg  bucket  token-rate  class
//	0-2    16    2    50KB     2.0       conformant
//	3-5    40    8   100KB     8.0       conformant
//	6-7    40    4    50KB     0.4       aggressive (burst ≈ 5× bucket)
//	8      40   16    50KB     2.0       aggressive (burst ≈ 5× bucket)
//
// The aggregate reserved rate is 32.8 Mb/s (u ≈ 68% of the 48 Mb/s
// link); the mean offered load is a little over 100%.
func Table1Flows() []FlowConfig {
	mk := func(peak, avg float64, bucketKB, tok float64, c Conformance, burstKB float64) FlowConfig {
		return FlowConfig{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(peak),
				TokenRate:  units.MbitsPerSecond(tok),
				BucketSize: units.KiloBytes(bucketKB),
			},
			AvgRate:     units.MbitsPerSecond(avg),
			MeanBurst:   units.KiloBytes(burstKB),
			Conformance: c,
		}
	}
	return []FlowConfig{
		mk(16, 2, 50, 2, Conformant, 50),
		mk(16, 2, 50, 2, Conformant, 50),
		mk(16, 2, 50, 2, Conformant, 50),
		mk(40, 8, 100, 8, Conformant, 100),
		mk(40, 8, 100, 8, Conformant, 100),
		mk(40, 8, 100, 8, Conformant, 100),
		// "their average burst size also exceeds their token bucket by a
		// factor of 5"
		mk(40, 4, 50, 0.4, Aggressive, 250),
		mk(40, 4, 50, 0.4, Aggressive, 250),
		mk(40, 16, 50, 2, Aggressive, 250),
	}
}

// Table2Flows returns the thirty flows of Table 2 (§4.2, Case 2).
//
//	flow   peak  avg  bucket  token-rate  class
//	0-9      8   0.6   15KB     0.6       conformant
//	10-19   24   2.4   30KB     2.4       moderately non-conformant
//	20-29    8   2.4   35KB     0.3       aggressive (mean burst 500KB)
func Table2Flows() []FlowConfig {
	var flows []FlowConfig
	add := func(n int, peak, avg, bucketKB, tok float64, c Conformance, burstKB float64) {
		for i := 0; i < n; i++ {
			flows = append(flows, FlowConfig{
				Spec: packet.FlowSpec{
					PeakRate:   units.MbitsPerSecond(peak),
					TokenRate:  units.MbitsPerSecond(tok),
					BucketSize: units.KiloBytes(bucketKB),
				},
				AvgRate:     units.MbitsPerSecond(avg),
				MeanBurst:   units.KiloBytes(burstKB),
				Conformance: c,
			})
		}
	}
	add(10, 8, 0.6, 15, 0.6, Conformant, 15)
	// "their mean rate and average burst size conform to their specified
	// token parameters ... not reshaped by a token bucket"
	add(10, 24, 2.4, 30, 2.4, Moderate, 30)
	// "arrival rates are over 8 times their requested reservation rates
	// ... average burst size is 500KBytes"
	add(10, 8, 2.4, 35, 0.3, Aggressive, 500)
	return flows
}

// Table1QueueOf is the §4.2 Case 1 grouping: small conformant flows in
// queue 0, large conformant in queue 1, non-conformant in queue 2.
func Table1QueueOf() []int { return []int{0, 0, 0, 1, 1, 1, 2, 2, 2} }

// Table2QueueOf is the §4.2 Case 2 grouping by class.
func Table2QueueOf() []int {
	q := make([]int, 30)
	for i := range q {
		q[i] = i / 10
	}
	return q
}

// Specs extracts the declared profiles of a flow set.
func Specs(flows []FlowConfig) []packet.FlowSpec {
	specs := make([]packet.FlowSpec, len(flows))
	for i, f := range flows {
		specs[i] = f.Spec
	}
	return specs
}

// ConformantIDs returns the indices of the regulated (fully conformant)
// flows — the set whose loss the paper's Figures 2, 5, 7, 9 and 12
// report.
func ConformantIDs(flows []FlowConfig) []int {
	var ids []int
	for i, f := range flows {
		if f.Conformance == Conformant {
			ids = append(ids, i)
		}
	}
	return ids
}

// OfferedLoad returns Σ AvgRate / linkRate, the mean offered load.
func OfferedLoad(flows []FlowConfig, linkRate units.Rate) float64 {
	var sum float64
	for _, f := range flows {
		sum += f.AvgRate.BitsPerSecond()
	}
	return sum / linkRate.BitsPerSecond()
}
