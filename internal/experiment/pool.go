package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachJob runs fn(i) for every i in [0, n), fanning the calls onto
// up to workers goroutines (0 means GOMAXPROCS; 1 forces the inline
// sequential path). Jobs must be independent: callers pre-size result
// slots indexed by i so the output is identical for any worker count.
// Every job's error is recorded and the first one in index order is
// returned, so the reported error does not depend on goroutine
// scheduling; once a job fails, unstarted jobs are skipped.
func forEachJob(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
