package experiment

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bufqos/internal/metrics"
)

// queueWaitBuckets bound the pool.queue_wait_seconds histogram: jobs
// conceptually enqueue when the pool starts, so waits range from
// microseconds (first jobs) to the whole sweep duration (last jobs).
var queueWaitBuckets = metrics.ExpBuckets(0.001, 2, 24)

// forEachJob runs fn(i) for every i in [0, n), fanning the calls onto
// up to workers goroutines (0 means GOMAXPROCS; 1 forces the inline
// sequential path). Jobs must be independent: callers pre-size result
// slots indexed by i so the output is identical for any worker count.
// Every job's error is recorded and the first one in index order is
// returned, so the reported error does not depend on goroutine
// scheduling; once a job fails, unstarted jobs are skipped.
//
// A cancelled ctx stops workers from picking up further jobs — in-flight
// fn calls finish (fn may also observe ctx itself) — and forEachJob
// returns ctx.Err(). Completed jobs' results remain valid; callers that
// track per-job completion can salvage them.
//
// onDone, when non-nil, is called once after each successful job with
// its index (possibly from several goroutines at once). reg, when
// non-nil, receives per-worker "pool.runs_completed.worker<N>" counters
// and a "pool.queue_wait_seconds" histogram of how long each job sat
// queued before a worker picked it up. These execution metrics depend
// on the worker count by nature, unlike the simulation metrics.
// ForEachJob exposes the sweep worker pool to the other run drivers in
// this repository (the topology engine, cmd/qnet): same contract as
// forEachJob, including the identical-output-for-any-worker-count
// guarantee when callers write results into pre-assigned slots.
func ForEachJob(ctx context.Context, workers, n int, reg *metrics.Registry, onDone func(i int), fn func(i int) error) error {
	return forEachJob(ctx, workers, n, reg, onDone, fn)
}

func forEachJob(ctx context.Context, workers, n int, reg *metrics.Registry, onDone func(i int), fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var mWait *metrics.Histogram
	if reg != nil {
		mWait = reg.Histogram("pool.queue_wait_seconds", queueWaitBuckets)
	}
	start := time.Now()
	if workers <= 1 {
		var mRuns *metrics.Counter
		if reg != nil {
			mRuns = reg.Counter("pool.runs_completed.worker0")
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			mWait.Observe(time.Since(start).Seconds())
			if err := fn(i); err != nil {
				return err
			}
			mRuns.Inc()
			if onDone != nil {
				onDone(i)
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		var mRuns *metrics.Counter
		if reg != nil {
			mRuns = reg.Counter("pool.runs_completed.worker" + strconv.Itoa(w))
		}
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				mWait.Observe(time.Since(start).Seconds())
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				mRuns.Inc()
				if onDone != nil {
					onDone(i)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
