package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/metrics"
	"bufqos/internal/sched"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/trace"
	"bufqos/internal/units"
)

// Result holds the measurements of one run.
type Result struct {
	// AggThroughput is the delivered rate across all flows.
	AggThroughput units.Rate
	// Utilization is AggThroughput / LinkRate.
	Utilization float64
	// FlowThroughput is the delivered rate per flow.
	FlowThroughput []units.Rate
	// ConformantLoss is the byte-loss ratio of the regulated flows
	// (Figures 2, 5, 7, 9, 12).
	ConformantLoss float64
	// FlowLoss is the per-flow byte-loss ratio.
	FlowLoss []float64
	// OfferedRate is the measured offered load (arrival rate at the
	// multiplexer) per flow.
	OfferedRate []units.Rate
	// MaxDelay and MeanDelay summarize multiplexer queueing delay in
	// seconds across all flows (zero unless Options.TrackDelays).
	MaxDelay  float64
	MeanDelay float64
	// FlowMaxDelay is the per-flow worst queueing delay (nil unless
	// Options.TrackDelays).
	FlowMaxDelay []float64
}

// runEventBuckets are the histogram bounds for events-per-run: runs
// range from a few thousand events (short unit-test configs) to tens of
// millions (long sweeps), so exponential buckets from 1k up cover the
// span in factor-of-2 resolution.
var runEventBuckets = metrics.ExpBuckets(1024, 2, 16)

// runUntilCtx advances the simulation to duration, checking ctx between
// chunks of simulated time so a cancelled context interrupts a run
// mid-flight. The chunk boundaries are exact fractions of duration and
// every event at or before duration fires exactly as in an unchunked
// RunUntil, so results are bit-identical with and without a cancellable
// context. Returns ctx.Err() when interrupted.
func runUntilCtx(ctx context.Context, s *sim.Simulator, duration float64) error {
	if ctx == nil || ctx.Done() == nil {
		s.RunUntil(duration)
		return nil
	}
	const chunks = 64
	for i := 1; i <= chunks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.RunUntil(duration * float64(i) / chunks)
	}
	return ctx.Err()
}

// Run executes one simulation and returns its measurements. The context
// cancels a run mid-flight (Run then returns ctx.Err()); o is read-only
// and may be shared across concurrent Runs. When o.Metrics is set, the
// kernel, buffer manager, and scheduler publish counters into it, and
// o.TraceInterval/TraceWriter additionally sample those metrics
// periodically, flushing the series as CSV even on a cancelled run.
func Run(ctx context.Context, o *Options) (Result, error) {
	cfg := *o
	cfg.defaults()
	if len(cfg.Flows) == 0 {
		return Result{}, fmt.Errorf("experiment: no flows")
	}
	s := sim.New()
	n := len(cfg.Flows)
	col := stats.NewCollector(n, cfg.Warmup)
	if cfg.TrackDelays {
		// Histogram ceiling: a full buffer draining at the link rate.
		col.EnableDelays(2 * float64(cfg.Buffer) * 8 / cfg.LinkRate.BitsPerSecond())
	}
	sc, err := cfg.resolveScheme()
	if err != nil {
		return Result{}, err
	}
	mgr, scheduler, err := sc.Build(cfg.schemeConfig(s))
	if err != nil {
		return Result{}, err
	}

	link := sched.NewLink(s, cfg.LinkRate, scheduler, mgr, col)
	if cfg.Metrics != nil {
		s.Instrument(cfg.Metrics)
		if in, ok := mgr.(buffer.Instrumentable); ok {
			in.Instrument(cfg.Metrics, "buffer")
		}
		link.Instrument(cfg.Metrics, sc.String())
	}
	for i, f := range cfg.Flows {
		rng := sim.NewRand(sim.DeriveSeed(cfg.Seed, i))
		var sink source.Sink
		if f.Regulated() {
			sink = source.NewShaper(s, f.Spec, link)
		} else {
			sink = source.NewMeter(s, f.Spec, link)
		}
		size := cfg.PacketSize
		if f.PacketSize > 0 {
			size = f.PacketSize
		}
		src := source.NewOnOff(s, rng, source.OnOffConfig{
			Flow:       i,
			PacketSize: size,
			PeakRate:   f.Spec.PeakRate,
			AvgRate:    f.AvgRate,
			MeanBurst:  f.MeanBurst,
		}, sink)
		src.Start()
	}

	// The metrics sampler starts after instrumentation so every column
	// name already exists in the registry.
	var sampler *trace.Sampler
	if cfg.Metrics != nil && cfg.TraceInterval > 0 && cfg.TraceWriter != nil {
		sampler = trace.NewMetricsSampler(s, cfg.TraceInterval, cfg.Metrics, cfg.Metrics.Names())
		sampler.Start()
	}
	runErr := runUntilCtx(ctx, s, cfg.Duration)
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram("experiment.run_events", runEventBuckets).Observe(float64(s.Steps()))
	}
	if sampler != nil {
		// Flush the series even for a cancelled run: a partial trace is
		// exactly what an interrupted experiment wants to keep.
		if err := sampler.WriteCSV(cfg.TraceWriter); err != nil && runErr == nil {
			runErr = fmt.Errorf("experiment: writing trace: %w", err)
		}
	}
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{
		AggThroughput:  col.AggregateThroughput(cfg.Duration),
		FlowThroughput: make([]units.Rate, n),
		FlowLoss:       make([]float64, n),
		OfferedRate:    make([]units.Rate, n),
		ConformantLoss: col.ConformantLossRatio(ConformantIDs(cfg.Flows)...),
	}
	res.Utilization = res.AggThroughput.BitsPerSecond() / cfg.LinkRate.BitsPerSecond()
	meas := cfg.Duration - cfg.Warmup
	for i := 0; i < n; i++ {
		res.FlowThroughput[i] = col.FlowThroughput(i, cfg.Duration)
		res.FlowLoss[i] = col.LossRatio(i)
		res.OfferedRate[i] = units.Rate(col.Flow(i).Offered.Total().Bytes.Bits() / meas)
	}
	if cfg.TrackDelays {
		res.MaxDelay = col.MaxDelay()
		res.FlowMaxDelay = make([]float64, n)
		var sum float64
		var count int64
		for i := 0; i < n; i++ {
			d := col.Delays(i)
			res.FlowMaxDelay[i] = d.Max()
			sum += d.Mean() * float64(d.Count())
			count += d.Count()
		}
		if count > 0 {
			res.MeanDelay = sum / float64(count)
		}
	}
	return res, nil
}

// schemeConfig assembles the scheme.Config describing this run's link:
// the declared flow profiles, the link physics, and the adaptivity
// flags (aggressive flows do not respond to loss, so adaptive-sharing
// restricts their borrowing).
func (o *Options) schemeConfig(s *sim.Simulator) scheme.Config {
	adaptive := make([]bool, len(o.Flows))
	for i, f := range o.Flows {
		adaptive[i] = f.Conformance != Aggressive
	}
	return scheme.Config{
		Specs:      Specs(o.Flows),
		LinkRate:   o.LinkRate,
		Buffer:     o.Buffer,
		Headroom:   o.Headroom,
		QueueOf:    o.QueueOf,
		Adaptive:   adaptive,
		PacketSize: o.PacketSize,
		Now:        s.Now,
		Seed:       o.Seed,
	}
}

// resolveScheme returns the run's parsed scheme: SchemeSpec when set
// (the registry path), otherwise the deprecated Scheme enum mapped onto
// its registry entry, with DynAlpha carried into the dynthresh α
// parameter.
func (o *Options) resolveScheme() (*scheme.Scheme, error) {
	if o.SchemeSpec != "" {
		return scheme.Parse(o.SchemeSpec)
	}
	spec, err := o.Scheme.spec()
	if err != nil {
		return nil, err
	}
	if o.Scheme == FIFODynamicThreshold && o.DynAlpha != 0 && o.DynAlpha != 1 {
		spec = fmt.Sprintf("%s?alpha=%g", spec, o.DynAlpha)
	}
	return scheme.Parse(spec)
}
