package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/trace"
	"bufqos/internal/units"
)

// Scheme names one of the resource-management combinations compared in
// the paper's evaluation.
type Scheme int

const (
	// FIFONoBM is FIFO scheduling with no buffer management (shared
	// tail-drop) — benchmark 3 of §3.2.
	FIFONoBM Scheme = iota
	// WFQNoBM is per-flow WFQ with a shared tail-drop buffer —
	// benchmark 4.
	WFQNoBM
	// FIFOThreshold is the paper's proposal: FIFO + fixed per-flow
	// thresholds σᵢ + ρᵢB/R — scheme 1.
	FIFOThreshold
	// WFQThreshold is per-flow WFQ + the same thresholds — scheme 2.
	WFQThreshold
	// FIFOSharing is FIFO + the §3.3 holes/headroom sharing scheme.
	FIFOSharing
	// WFQSharing is per-flow WFQ + the sharing scheme.
	WFQSharing
	// HybridSharing is the §4 architecture: k FIFO queues under WFQ,
	// buffer sharing within each queue.
	HybridSharing
	// FIFODynamicThreshold is FIFO + Choudhury–Hahne dynamic thresholds,
	// an ablation baseline (reference [1]).
	FIFODynamicThreshold
	// FIFORed is FIFO + RED, an ablation baseline (reference [3]).
	FIFORed
	// FIFOAdaptiveSharing is the §5 extension: sharing where only
	// adaptive flows (here: the non-aggressive classes) may borrow the
	// full holes; aggressive flows get a reduced fraction.
	FIFOAdaptiveSharing
	// RPQThreshold is a Rotating-Priority-Queues scheduler (reference
	// [10]) + fixed thresholds, the sorting-free middle ground between
	// FIFO and WFQ.
	RPQThreshold
	// DRRThreshold is Deficit Round Robin + fixed thresholds: the other
	// O(1) fairness design of the era, for direct comparison with the
	// paper's O(1) buffer-management approach.
	DRRThreshold
	// EDFThreshold is Earliest-Deadline-First + fixed thresholds (the
	// rate-controlled EDF family of reference [4]).
	EDFThreshold
	// VCThreshold is Virtual Clock + fixed thresholds (the family
	// reference [8] accelerates).
	VCThreshold
)

// String implements fmt.Stringer; the names appear in result tables.
func (s Scheme) String() string {
	switch s {
	case FIFONoBM:
		return "FIFO"
	case WFQNoBM:
		return "WFQ"
	case FIFOThreshold:
		return "FIFO+thresholds"
	case WFQThreshold:
		return "WFQ+thresholds"
	case FIFOSharing:
		return "FIFO+sharing"
	case WFQSharing:
		return "WFQ+sharing"
	case HybridSharing:
		return "hybrid+sharing"
	case FIFODynamicThreshold:
		return "FIFO+dynthresh"
	case FIFORed:
		return "FIFO+RED"
	case FIFOAdaptiveSharing:
		return "FIFO+adaptive-sharing"
	case RPQThreshold:
		return "RPQ+thresholds"
	case DRRThreshold:
		return "DRR+thresholds"
	case EDFThreshold:
		return "EDF+thresholds"
	case VCThreshold:
		return "VC+thresholds"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Result holds the measurements of one run.
type Result struct {
	// AggThroughput is the delivered rate across all flows.
	AggThroughput units.Rate
	// Utilization is AggThroughput / LinkRate.
	Utilization float64
	// FlowThroughput is the delivered rate per flow.
	FlowThroughput []units.Rate
	// ConformantLoss is the byte-loss ratio of the regulated flows
	// (Figures 2, 5, 7, 9, 12).
	ConformantLoss float64
	// FlowLoss is the per-flow byte-loss ratio.
	FlowLoss []float64
	// OfferedRate is the measured offered load (arrival rate at the
	// multiplexer) per flow.
	OfferedRate []units.Rate
	// MaxDelay and MeanDelay summarize multiplexer queueing delay in
	// seconds across all flows (zero unless Options.TrackDelays).
	MaxDelay  float64
	MeanDelay float64
	// FlowMaxDelay is the per-flow worst queueing delay (nil unless
	// Options.TrackDelays).
	FlowMaxDelay []float64
}

// runEventBuckets are the histogram bounds for events-per-run: runs
// range from a few thousand events (short unit-test configs) to tens of
// millions (long sweeps), so exponential buckets from 1k up cover the
// span in factor-of-2 resolution.
var runEventBuckets = metrics.ExpBuckets(1024, 2, 16)

// runUntilCtx advances the simulation to duration, checking ctx between
// chunks of simulated time so a cancelled context interrupts a run
// mid-flight. The chunk boundaries are exact fractions of duration and
// every event at or before duration fires exactly as in an unchunked
// RunUntil, so results are bit-identical with and without a cancellable
// context. Returns ctx.Err() when interrupted.
func runUntilCtx(ctx context.Context, s *sim.Simulator, duration float64) error {
	if ctx == nil || ctx.Done() == nil {
		s.RunUntil(duration)
		return nil
	}
	const chunks = 64
	for i := 1; i <= chunks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.RunUntil(duration * float64(i) / chunks)
	}
	return ctx.Err()
}

// Run executes one simulation and returns its measurements. The context
// cancels a run mid-flight (Run then returns ctx.Err()); o is read-only
// and may be shared across concurrent Runs. When o.Metrics is set, the
// kernel, buffer manager, and scheduler publish counters into it, and
// o.TraceInterval/TraceWriter additionally sample those metrics
// periodically, flushing the series as CSV even on a cancelled run.
func Run(ctx context.Context, o *Options) (Result, error) {
	cfg := *o
	cfg.defaults()
	if len(cfg.Flows) == 0 {
		return Result{}, fmt.Errorf("experiment: no flows")
	}
	s := sim.New()
	n := len(cfg.Flows)
	col := stats.NewCollector(n, cfg.Warmup)
	if cfg.TrackDelays {
		// Histogram ceiling: a full buffer draining at the link rate.
		col.EnableDelays(2 * float64(cfg.Buffer) * 8 / cfg.LinkRate.BitsPerSecond())
	}
	specs := Specs(cfg.Flows)

	var mgr buffer.Manager
	var scheduler sched.Scheduler
	switch cfg.Scheme {
	case FIFONoBM:
		mgr = buffer.NewTailDrop(cfg.Buffer, n)
		scheduler = sched.NewFIFO()
	case WFQNoBM:
		mgr = buffer.NewTailDrop(cfg.Buffer, n)
		scheduler = sched.NewWFQ(cfg.LinkRate, s.Now, tokenRates(specs))
	case FIFOThreshold, WFQThreshold:
		th, err := core.Thresholds(specs, cfg.LinkRate, cfg.Buffer)
		if err != nil {
			return Result{}, err
		}
		mgr = buffer.NewFixedThreshold(cfg.Buffer, th)
		if cfg.Scheme == FIFOThreshold {
			scheduler = sched.NewFIFO()
		} else {
			scheduler = sched.NewWFQ(cfg.LinkRate, s.Now, tokenRates(specs))
		}
	case FIFOSharing, WFQSharing:
		th, err := core.Thresholds(specs, cfg.LinkRate, cfg.Buffer)
		if err != nil {
			return Result{}, err
		}
		mgr = buffer.NewSharing(cfg.Buffer, th, cfg.Headroom)
		if cfg.Scheme == FIFOSharing {
			scheduler = sched.NewFIFO()
		} else {
			scheduler = sched.NewWFQ(cfg.LinkRate, s.Now, tokenRates(specs))
		}
	case HybridSharing:
		var err error
		mgr, scheduler, err = buildHybrid(&cfg, s, specs)
		if err != nil {
			return Result{}, err
		}
	case FIFODynamicThreshold:
		mgr = buffer.NewDynamicThreshold(cfg.Buffer, n, cfg.DynAlpha)
		scheduler = sched.NewFIFO()
	case FIFORed:
		minTh := cfg.Buffer / 4
		maxTh := cfg.Buffer * 3 / 4
		mgr = buffer.NewRED(cfg.Buffer, n, minTh, maxTh, 0.1, sim.NewRand(sim.DeriveSeed(cfg.Seed, 1<<20)))
		scheduler = sched.NewFIFO()
	case FIFOAdaptiveSharing:
		th, err := core.Thresholds(specs, cfg.LinkRate, cfg.Buffer)
		if err != nil {
			return Result{}, err
		}
		// Aggressive flows are treated as non-adaptive (they do not
		// respond to loss); everyone else may borrow freely. The
		// non-adaptive fraction defaults to 1/4 of the holes.
		adaptive := make([]bool, n)
		for i, f := range cfg.Flows {
			adaptive[i] = f.Conformance != Aggressive
		}
		mgr = buffer.NewAdaptiveSharing(cfg.Buffer, th, adaptive, cfg.Headroom, 0.25)
		scheduler = sched.NewFIFO()
	case RPQThreshold:
		th, err := core.Thresholds(specs, cfg.LinkRate, cfg.Buffer)
		if err != nil {
			return Result{}, err
		}
		mgr = buffer.NewFixedThreshold(cfg.Buffer, th)
		scheduler = sched.NewRPQ(4, 0.002, s.Now, delayClasses(specs))
	case DRRThreshold, EDFThreshold, VCThreshold:
		th, err := core.Thresholds(specs, cfg.LinkRate, cfg.Buffer)
		if err != nil {
			return Result{}, err
		}
		mgr = buffer.NewFixedThreshold(cfg.Buffer, th)
		switch cfg.Scheme {
		case DRRThreshold:
			scheduler = sched.NewDRR(tokenRates(specs), cfg.PacketSize)
		case EDFThreshold:
			// Per-flow delay budgets: the flow's own burst drain time
			// σ/ρ, the natural deadline for a conformant flow.
			budgets := make([]float64, n)
			for i, sp := range specs {
				budgets[i] = sp.BucketSize.Bits() / sp.TokenRate.BitsPerSecond()
			}
			scheduler = sched.NewEDF(s.Now, budgets)
		default:
			scheduler = sched.NewVirtualClock(s.Now, tokenRates(specs))
		}
	default:
		return Result{}, fmt.Errorf("experiment: unknown scheme %v", cfg.Scheme)
	}

	link := sched.NewLink(s, cfg.LinkRate, scheduler, mgr, col)
	if cfg.Metrics != nil {
		s.Instrument(cfg.Metrics)
		if in, ok := mgr.(buffer.Instrumentable); ok {
			in.Instrument(cfg.Metrics, "buffer")
		}
		link.Instrument(cfg.Metrics, cfg.Scheme.String())
	}
	for i, f := range cfg.Flows {
		rng := sim.NewRand(sim.DeriveSeed(cfg.Seed, i))
		var sink source.Sink
		if f.Regulated() {
			sink = source.NewShaper(s, f.Spec, link)
		} else {
			sink = source.NewMeter(s, f.Spec, link)
		}
		size := cfg.PacketSize
		if f.PacketSize > 0 {
			size = f.PacketSize
		}
		src := source.NewOnOff(s, rng, source.OnOffConfig{
			Flow:       i,
			PacketSize: size,
			PeakRate:   f.Spec.PeakRate,
			AvgRate:    f.AvgRate,
			MeanBurst:  f.MeanBurst,
		}, sink)
		src.Start()
	}

	// The metrics sampler starts after instrumentation so every column
	// name already exists in the registry.
	var sampler *trace.Sampler
	if cfg.Metrics != nil && cfg.TraceInterval > 0 && cfg.TraceWriter != nil {
		sampler = trace.NewMetricsSampler(s, cfg.TraceInterval, cfg.Metrics, cfg.Metrics.Names())
		sampler.Start()
	}
	runErr := runUntilCtx(ctx, s, cfg.Duration)
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram("experiment.run_events", runEventBuckets).Observe(float64(s.Steps()))
	}
	if sampler != nil {
		// Flush the series even for a cancelled run: a partial trace is
		// exactly what an interrupted experiment wants to keep.
		if err := sampler.WriteCSV(cfg.TraceWriter); err != nil && runErr == nil {
			runErr = fmt.Errorf("experiment: writing trace: %w", err)
		}
	}
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{
		AggThroughput:  col.AggregateThroughput(cfg.Duration),
		FlowThroughput: make([]units.Rate, n),
		FlowLoss:       make([]float64, n),
		OfferedRate:    make([]units.Rate, n),
		ConformantLoss: col.ConformantLossRatio(ConformantIDs(cfg.Flows)...),
	}
	res.Utilization = res.AggThroughput.BitsPerSecond() / cfg.LinkRate.BitsPerSecond()
	meas := cfg.Duration - cfg.Warmup
	for i := 0; i < n; i++ {
		res.FlowThroughput[i] = col.FlowThroughput(i, cfg.Duration)
		res.FlowLoss[i] = col.LossRatio(i)
		res.OfferedRate[i] = units.Rate(col.Flow(i).Offered.Total().Bytes.Bits() / meas)
	}
	if cfg.TrackDelays {
		res.MaxDelay = col.MaxDelay()
		res.FlowMaxDelay = make([]float64, n)
		var sum float64
		var count int64
		for i := 0; i < n; i++ {
			d := col.Delays(i)
			res.FlowMaxDelay[i] = d.Max()
			sum += d.Mean() * float64(d.Count())
			count += d.Count()
		}
		if count > 0 {
			res.MeanDelay = sum / float64(count)
		}
	}
	return res, nil
}

// tokenRates returns the WFQ weights: "the token rate is used to
// determine the weight used for the flow".
func tokenRates(specs []packet.FlowSpec) []units.Rate {
	rates := make([]units.Rate, len(specs))
	for i, s := range specs {
		rates[i] = s.TokenRate
	}
	return rates
}

// delayClasses maps flows to RPQ delay classes by their burst-to-rate
// ratio σ/ρ: smooth low-burst flows (telephony-like) get tighter
// classes, bursty ones looser — the same classification intuition as
// the paper's §4.1 queue-grouping guidance.
func delayClasses(specs []packet.FlowSpec) []int {
	classes := make([]int, len(specs))
	for i, s := range specs {
		ratio := s.BucketSize.Bits() / s.TokenRate.BitsPerSecond() // seconds of burst
		switch {
		case ratio < 0.05:
			classes[i] = 0
		case ratio < 0.15:
			classes[i] = 1
		case ratio < 0.5:
			classes[i] = 2
		default:
			classes[i] = 3
		}
	}
	return classes
}

// buildHybrid assembles the §4.2 configuration: Proposition 3 rate
// allocation across queues, buffer partitioning in proportion to the
// per-queue minimum requirements, per-flow thresholds within queues,
// and a sharing manager per queue.
func buildHybrid(cfg *Options, s *sim.Simulator, specs []packet.FlowSpec) (buffer.Manager, sched.Scheduler, error) {
	if len(cfg.QueueOf) != len(cfg.Flows) {
		return nil, nil, fmt.Errorf("experiment: hybrid needs QueueOf for every flow")
	}
	k := 0
	for _, q := range cfg.QueueOf {
		if q+1 > k {
			k = q + 1
		}
	}
	groups, err := core.GroupFlows(specs, cfg.QueueOf, k)
	if err != nil {
		return nil, nil, err
	}
	rates, err := core.AllocateHybrid(cfg.LinkRate, groups)
	if err != nil {
		return nil, nil, err
	}
	minBuf, err := core.HybridBufferPerQueue(cfg.LinkRate, groups)
	if err != nil {
		return nil, nil, err
	}
	queueBuf := core.PartitionBuffer(cfg.Buffer, minBuf)
	th, err := core.HybridThresholds(specs, cfg.QueueOf, groups, queueBuf)
	if err != nil {
		return nil, nil, err
	}
	managers := make([]buffer.Manager, k)
	for q := 0; q < k; q++ {
		// Per-queue thresholds vector, zero for non-member flows (they
		// are never seen by this queue's manager).
		qth := make([]units.Bytes, len(specs))
		for i, f := range cfg.QueueOf {
			if f == q {
				qth[i] = th[i]
			}
		}
		// Headroom is split like the buffer.
		var h units.Bytes
		if cfg.Buffer > 0 {
			h = units.Bytes(float64(cfg.Headroom) * float64(queueBuf[q]) / float64(cfg.Buffer))
		}
		managers[q] = buffer.NewSharing(queueBuf[q], qth, h)
	}
	mgr := buffer.NewPartitioned(cfg.QueueOf, managers)
	scheduler := sched.NewHybrid(cfg.LinkRate, s.Now, cfg.QueueOf, rates)
	return mgr, scheduler, nil
}
