package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/scheme"
	"bufqos/internal/units"
)

// ParseScheme resolves a scheme name through the registry. It accepts
// both the spec grammar ("fifo+threshold", "hybrid:3+sharing",
// "fifo+red?min=0.2") and the legacy display labels that result tables
// print ("FIFO+thresholds", "WFQ", "FIFO+RED").
func ParseScheme(name string) (*scheme.Scheme, error) {
	return scheme.Parse(name)
}

// SchemeSpecs returns the canonical spec of every registered
// scheduler×manager combination — the data behind -list-schemes.
func SchemeSpecs() []string { return scheme.Specs() }

// specLabel returns the registry display label of a spec; it panics on
// an invalid spec, so it is reserved for compile-time-constant specs
// (the figure definitions).
func specLabel(spec string) string { return scheme.MustParse(spec).String() }

// SchemeByName resolves a scheme label to the deprecated enum.
//
// Deprecated: use ParseScheme, which also understands registry specs
// and parameterized variants the enum cannot express.
func SchemeByName(name string) (Scheme, error) {
	parsed, err := scheme.Parse(name)
	if err != nil {
		return 0, err
	}
	for s, spec := range legacySpecs {
		if parsed.Spec() == spec {
			return Scheme(s), nil
		}
	}
	return 0, fmt.Errorf("experiment: scheme %q has no legacy enum value; use ParseScheme", name)
}

// SweepWorkload runs the Figure-1/Figure-2 style buffer sweep for an
// arbitrary workload (e.g. one loaded from a JSON file): it returns a
// utilization figure and a conformant-loss figure over opts.BufferSizes
// for the given registry scheme specs. Empty specs defaults to the
// workload's own Schemes list, then to the paper's §3.2 comparison.
// Cancelling ctx returns the partial figures computed so far together
// with ctx.Err().
func SweepWorkload(ctx context.Context, w *Workload, specs []string, opts *Options) (util Figure, loss Figure, err error) {
	o := opts.sweepReady()
	if len(specs) == 0 {
		specs = w.Schemes
	}
	if len(specs) == 0 {
		specs = []string{"fifo+threshold", "wfq+threshold", "fifo+none"}
	}
	// Validate every spec up front: a typo should fail the sweep before
	// any simulation time is spent.
	labels := make([]string, len(specs))
	for i, spec := range specs {
		parsed, err := scheme.Parse(spec)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		labels[i] = parsed.String()
	}
	mkLines := func(metric func(Result) float64) []line {
		var lines []line
		for i, spec := range specs {
			spec := spec
			lines = append(lines, line{
				label: labels[i],
				cfg: func(x units.Bytes) *Options {
					return &Options{
						Flows:      w.Flows,
						SchemeSpec: spec,
						LinkRate:   w.LinkRate,
						Buffer:     x,
						Headroom:   o.Headroom,
						QueueOf:    w.QueueOf,
					}
				},
				metric: metric,
			})
		}
		return lines
	}
	name := w.Name
	if name == "" {
		name = fmt.Sprintf("%d flows", len(w.Flows))
	}
	us, err := runLines(ctx, o, o.BufferSizes, mkLines(utilization))
	util = Figure{
		ID: "sweep-util", Title: "Aggregate throughput — " + name,
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(o.BufferSizes), Series: us,
	}
	if err != nil {
		return util, Figure{}, err
	}
	ls, err := runLines(ctx, o, o.BufferSizes, mkLines(conformantLoss))
	loss = Figure{
		ID: "sweep-loss", Title: "Conformant loss — " + name,
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(o.BufferSizes), Series: ls,
	}
	return util, loss, err
}
