package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/units"
)

// SweepWorkload runs the Figure-1/Figure-2 style buffer sweep for an
// arbitrary workload (e.g. one loaded from a JSON file): it returns a
// utilization figure and a conformant-loss figure over opts.BufferSizes
// for the given schemes. Cancelling ctx returns the partial figures
// computed so far together with ctx.Err().
func SweepWorkload(ctx context.Context, w *Workload, schemes []Scheme, opts *Options) (util Figure, loss Figure, err error) {
	o := opts.sweepReady()
	if len(schemes) == 0 {
		schemes = []Scheme{FIFOThreshold, WFQThreshold, FIFONoBM}
	}
	mkLines := func(metric func(Result) float64) []line {
		var lines []line
		for _, s := range schemes {
			s := s
			lines = append(lines, line{
				label: s.String(),
				cfg: func(x units.Bytes) *Options {
					return &Options{
						Flows:    w.Flows,
						Scheme:   s,
						LinkRate: w.LinkRate,
						Buffer:   x,
						Headroom: o.Headroom,
						QueueOf:  w.QueueOf,
					}
				},
				metric: metric,
			})
		}
		return lines
	}
	name := w.Name
	if name == "" {
		name = fmt.Sprintf("%d flows", len(w.Flows))
	}
	us, err := runLines(ctx, o, o.BufferSizes, mkLines(utilization))
	util = Figure{
		ID: "sweep-util", Title: "Aggregate throughput — " + name,
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(o.BufferSizes), Series: us,
	}
	if err != nil {
		return util, Figure{}, err
	}
	ls, err := runLines(ctx, o, o.BufferSizes, mkLines(conformantLoss))
	loss = Figure{
		ID: "sweep-loss", Title: "Conformant loss — " + name,
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(o.BufferSizes), Series: ls,
	}
	return util, loss, err
}

// SchemeByName resolves a scheme label (as printed by Scheme.String)
// for CLI use.
func SchemeByName(name string) (Scheme, error) {
	all := []Scheme{
		FIFONoBM, WFQNoBM, FIFOThreshold, WFQThreshold,
		FIFOSharing, WFQSharing, HybridSharing,
		FIFODynamicThreshold, FIFORed, FIFOAdaptiveSharing, RPQThreshold,
		DRRThreshold, EDFThreshold, VCThreshold,
	}
	for _, s := range all {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown scheme %q", name)
}
