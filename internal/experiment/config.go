package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"bufqos/internal/packet"
	"bufqos/internal/scheme"
	"bufqos/internal/units"
)

// flowJSON is the on-disk form of a FlowConfig, in the paper's units
// (Mb/s and KBytes) so workload files read like Table 1.
type flowJSON struct {
	// Count expands this row into that many identical flows (default 1).
	Count int `json:"count,omitempty"`
	// PeakMbps, AvgMbps, TokenMbps are rates in Mb/s.
	PeakMbps  float64 `json:"peak_mbps"`
	AvgMbps   float64 `json:"avg_mbps"`
	TokenMbps float64 `json:"token_mbps"`
	// BucketKB and MeanBurstKB are sizes in decimal KBytes.
	BucketKB    float64 `json:"bucket_kb"`
	MeanBurstKB float64 `json:"mean_burst_kb"`
	// Conformance is "conformant", "moderate", or "aggressive".
	Conformance string `json:"conformance"`
	// Queue assigns the row's flows to a hybrid queue (default 0).
	Queue int `json:"queue,omitempty"`
}

// workloadJSON is a full scenario file.
type workloadJSON struct {
	// Name documents the scenario.
	Name string `json:"name,omitempty"`
	// LinkMbps overrides the 48 Mb/s default when positive.
	LinkMbps float64 `json:"link_mbps,omitempty"`
	// Schemes lists registry scheme specs to sweep by default (e.g.
	// "fifo+threshold", "hybrid:2+sharing"); CLI flags override it.
	Schemes []string   `json:"schemes,omitempty"`
	Flows   []flowJSON `json:"flows"`
}

// Workload is a parsed scenario: the flow set plus its metadata.
type Workload struct {
	Name     string
	LinkRate units.Rate
	// Schemes are the scenario's own default scheme specs, validated
	// against the registry at parse time. SweepWorkload falls back to
	// them when the caller passes no specs.
	Schemes []string
	Flows   []FlowConfig
	QueueOf []int
}

// ParseWorkload reads a JSON scenario. Example:
//
//	{
//	  "name": "table1-like",
//	  "flows": [
//	    {"count": 3, "peak_mbps": 16, "avg_mbps": 2, "token_mbps": 2,
//	     "bucket_kb": 50, "mean_burst_kb": 50, "conformance": "conformant"},
//	    {"count": 3, "peak_mbps": 40, "avg_mbps": 16, "token_mbps": 2,
//	     "bucket_kb": 50, "mean_burst_kb": 250, "conformance": "aggressive", "queue": 1}
//	  ]
//	}
func ParseWorkload(r io.Reader) (*Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w workloadJSON
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("experiment: parsing workload: %w", err)
	}
	if len(w.Flows) == 0 {
		return nil, fmt.Errorf("experiment: workload %q has no flows", w.Name)
	}
	out := &Workload{Name: w.Name, LinkRate: DefaultLinkRate, Schemes: w.Schemes}
	for _, spec := range w.Schemes {
		if _, err := scheme.Parse(spec); err != nil {
			return nil, fmt.Errorf("experiment: workload %q: %w", w.Name, err)
		}
	}
	if w.LinkMbps != 0 {
		if w.LinkMbps < 0 {
			return nil, fmt.Errorf("experiment: negative link rate %v", w.LinkMbps)
		}
		out.LinkRate = units.MbitsPerSecond(w.LinkMbps)
	}
	for i, row := range w.Flows {
		count := row.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return nil, fmt.Errorf("experiment: flow row %d has negative count", i)
		}
		var conf Conformance
		switch row.Conformance {
		case "conformant", "":
			conf = Conformant
		case "moderate":
			conf = Moderate
		case "aggressive":
			conf = Aggressive
		default:
			return nil, fmt.Errorf("experiment: flow row %d: unknown conformance %q", i, row.Conformance)
		}
		fc := FlowConfig{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(row.PeakMbps),
				TokenRate:  units.MbitsPerSecond(row.TokenMbps),
				BucketSize: units.KiloBytes(row.BucketKB),
			},
			AvgRate:     units.MbitsPerSecond(row.AvgMbps),
			MeanBurst:   units.KiloBytes(row.MeanBurstKB),
			Conformance: conf,
		}
		if fc.MeanBurst == 0 {
			fc.MeanBurst = fc.Spec.BucketSize
		}
		if err := fc.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: flow row %d: %w", i, err)
		}
		if fc.AvgRate <= 0 || (fc.Spec.PeakRate > 0 && fc.AvgRate > fc.Spec.PeakRate) {
			return nil, fmt.Errorf("experiment: flow row %d: average rate %v outside (0, peak]", i, fc.AvgRate)
		}
		if row.Queue < 0 {
			return nil, fmt.Errorf("experiment: flow row %d: negative queue", i)
		}
		for c := 0; c < count; c++ {
			out.Flows = append(out.Flows, fc)
			out.QueueOf = append(out.QueueOf, row.Queue)
		}
	}
	return out, nil
}

// WriteWorkload serializes a flow set back to the JSON form (one row
// per flow; rows are not re-compressed with counts).
func WriteWorkload(w io.Writer, name string, linkRate units.Rate, flows []FlowConfig, queueOf []int) error {
	doc := workloadJSON{Name: name, LinkMbps: linkRate.Mbits()}
	for i, f := range flows {
		var conf string
		switch f.Conformance {
		case Conformant:
			conf = "conformant"
		case Moderate:
			conf = "moderate"
		case Aggressive:
			conf = "aggressive"
		}
		row := flowJSON{
			PeakMbps:    f.Spec.PeakRate.Mbits(),
			AvgMbps:     f.AvgRate.Mbits(),
			TokenMbps:   f.Spec.TokenRate.Mbits(),
			BucketKB:    f.Spec.BucketSize.KB(),
			MeanBurstKB: f.MeanBurst.KB(),
			Conformance: conf,
		}
		if queueOf != nil {
			row.Queue = queueOf[i]
		}
		doc.Flows = append(doc.Flows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
