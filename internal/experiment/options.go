package experiment

import (
	"io"
	"sync/atomic"
	"time"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// Options is the single configuration surface of the experiment
// package: it describes one simulation run (flows, scheme, buffer,
// duration, seed) and how sweeps over such runs execute (replications,
// swept axes, worker count) and are observed (metrics registry,
// progress callbacks, trace sampling). It replaces the former
// Config/RunOpts pair, whose overlapping Duration/Warmup/seed fields
// every driver had to thread by hand.
//
// Build an Options with NewOptions and functional options:
//
//	o := experiment.NewOptions(
//		experiment.WithFlows(experiment.Table1Flows()),
//		experiment.WithScheme(experiment.FIFOThreshold),
//		experiment.WithBuffer(units.MegaBytes(1)),
//		experiment.WithWarmup(0), // explicit zero, no hack needed
//	)
//	res, err := experiment.Run(ctx, o)
//
// Fields may also be set directly on the struct; unset fields get the
// paper's defaults. The one thing struct literals cannot express is an
// intentional zero Warmup or Seed — use WithWarmup(0)/WithSeed(0) (or
// the legacy Config shim) for that.
type Options struct {
	// --- One run's physics ---

	Flows []FlowConfig
	// SchemeSpec selects the resource-management scheme through the
	// scheme registry (e.g. "fifo+threshold", "wfq+sharing",
	// "hybrid:3+sharing", "fifo+red?min=0.2"); see internal/scheme for
	// the grammar and catalogue. When empty, the deprecated Scheme enum
	// below is mapped onto its registry entry instead.
	SchemeSpec string
	// Scheme is the deprecated enum selector; SchemeSpec wins when both
	// are set.
	Scheme   Scheme
	LinkRate units.Rate
	Buffer   units.Bytes
	// Headroom is H for the sharing schemes (the paper's default in
	// §3.3 is 2 MB; buffer sweeps default it, single runs default 0).
	Headroom units.Bytes
	// QueueOf maps flows to queues for HybridSharing.
	QueueOf []int
	// Duration is the simulated time; Warmup the discarded prefix
	// (default Duration/10; set an explicit zero with WithWarmup(0)).
	Duration float64
	Warmup   float64
	// Seed drives all randomness. Single runs use it directly; sweeps
	// seed replication r with Seed + r. Defaults to 1; set an explicit
	// zero with WithSeed(0).
	Seed int64
	// PacketSize defaults to DefaultPacketSize.
	PacketSize units.Bytes
	// DynAlpha is α for FIFODynamicThreshold (default 1).
	DynAlpha float64
	// TrackDelays enables per-flow queueing-delay measurement (slower;
	// off by default).
	TrackDelays bool

	// --- Sweep execution ---

	// Runs is the number of independent replications (paper: 5).
	Runs int
	// BufferSizes is the swept total buffer (Figures 1-6, 8-13).
	BufferSizes []units.Bytes
	// Headrooms is the swept headroom for Figure 7.
	Headrooms []units.Bytes
	// Fig7Buffer is the fixed total buffer of the Figure 7 headroom
	// sweep (paper: 1 MB).
	Fig7Buffer units.Bytes
	// Workers bounds how many simulation runs execute concurrently:
	// 0 means GOMAXPROCS, 1 forces sequential execution. Results are
	// identical for any worker count.
	Workers int

	// --- Observability ---

	// Metrics, when non-nil, receives counters/gauges/histograms from
	// every layer the run touches (sim kernel, buffer manager,
	// scheduler, worker pool). Nil disables collection at near-zero
	// cost. One registry may be shared across a whole sweep;
	// deterministic aggregates (counters, histogram buckets, gauge
	// high-waters) are identical for any worker count.
	Metrics *metrics.Registry
	// Progress, when non-nil, is called after every completed run of a
	// sweep with completion counts and an ETA. It may be called
	// concurrently from pool workers.
	Progress ProgressFunc
	// TraceInterval/TraceWriter enable the periodic snapshot hook: a
	// single Run (not sweeps) samples its metrics every TraceInterval
	// simulated seconds and writes the series as CSV to TraceWriter
	// when the run completes. Requires Metrics.
	TraceInterval float64
	TraceWriter   io.Writer

	// warmupSet / seedSet mark explicit zeros, replacing the exported
	// WarmupSet flag of the legacy API. Only WithWarmup/WithSeed and
	// the legacy shims can set them.
	warmupSet bool
	seedSet   bool
}

// Option mutates an Options; see NewOptions.
type Option func(*Options)

// NewOptions returns an Options with all the given options applied.
// Defaults for untouched fields are applied by Run and the sweep
// drivers, so the returned value can still be adjusted directly.
func NewOptions(opts ...Option) *Options {
	o := &Options{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// WithFlows sets the flow population of single runs.
func WithFlows(flows []FlowConfig) Option { return func(o *Options) { o.Flows = flows } }

// WithScheme selects the resource-management scheme of single runs.
//
// Deprecated: use WithSchemeSpec with a registry spec string.
func WithScheme(s Scheme) Option { return func(o *Options) { o.Scheme = s } }

// WithSchemeSpec selects the scheme through the registry, e.g.
// "fifo+threshold", "wfq+sharing", "hybrid:3+sharing",
// "fifo+dynthresh?alpha=2". Invalid specs surface as an error from Run.
func WithSchemeSpec(spec string) Option { return func(o *Options) { o.SchemeSpec = spec } }

// WithLinkRate overrides the 48 Mb/s default link.
func WithLinkRate(r units.Rate) Option { return func(o *Options) { o.LinkRate = r } }

// WithBuffer sets the total buffer of single runs.
func WithBuffer(b units.Bytes) Option { return func(o *Options) { o.Buffer = b } }

// WithHeadroom sets H for the sharing schemes.
func WithHeadroom(h units.Bytes) Option { return func(o *Options) { o.Headroom = h } }

// WithQueues assigns flows to hybrid queues.
func WithQueues(queueOf []int) Option { return func(o *Options) { o.QueueOf = queueOf } }

// WithDuration sets the simulated seconds per run.
func WithDuration(d float64) Option { return func(o *Options) { o.Duration = d } }

// WithWarmup sets the discarded warm-up prefix. An explicit zero is
// honored — this replaces the legacy WarmupSet flag.
func WithWarmup(w float64) Option {
	return func(o *Options) { o.Warmup = w; o.warmupSet = true }
}

// WithSeed sets the base random seed (replication r of a sweep uses
// seed+r). An explicit zero is honored.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed; o.seedSet = true }
}

// WithPacketSize overrides the default packet size.
func WithPacketSize(b units.Bytes) Option { return func(o *Options) { o.PacketSize = b } }

// WithDynAlpha sets α for FIFODynamicThreshold.
func WithDynAlpha(a float64) Option { return func(o *Options) { o.DynAlpha = a } }

// WithDelayTracking enables per-flow queueing-delay measurement.
func WithDelayTracking() Option { return func(o *Options) { o.TrackDelays = true } }

// WithRuns sets the number of independent replications per point.
func WithRuns(n int) Option { return func(o *Options) { o.Runs = n } }

// WithWorkers bounds concurrent simulation runs (0 = GOMAXPROCS,
// 1 = sequential).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithBufferSizes sets the swept buffer axis.
func WithBufferSizes(sizes ...units.Bytes) Option {
	return func(o *Options) { o.BufferSizes = sizes }
}

// WithHeadrooms sets the swept headroom axis (Figure 7).
func WithHeadrooms(hs ...units.Bytes) Option { return func(o *Options) { o.Headrooms = hs } }

// WithFig7Buffer fixes the total buffer of the Figure 7 headroom sweep.
func WithFig7Buffer(b units.Bytes) Option { return func(o *Options) { o.Fig7Buffer = b } }

// WithMetrics attaches a metrics registry; nil disables collection.
func WithMetrics(r *metrics.Registry) Option { return func(o *Options) { o.Metrics = r } }

// WithProgress attaches a sweep progress callback.
func WithProgress(fn ProgressFunc) Option { return func(o *Options) { o.Progress = fn } }

// WithTrace enables periodic metric snapshots on single runs: every
// interval simulated seconds the run's metrics are sampled, and the
// series is written as CSV to w when the run finishes. Requires
// WithMetrics.
func WithTrace(interval float64, w io.Writer) Option {
	return func(o *Options) { o.TraceInterval = interval; o.TraceWriter = w }
}

// defaults fills unset fields with the paper's setup. It mutates the
// receiver, so callers work on a copy of caller-owned Options.
func (o *Options) defaults() {
	if o.LinkRate == 0 {
		o.LinkRate = DefaultLinkRate
	}
	if o.PacketSize == 0 {
		o.PacketSize = DefaultPacketSize
	}
	if o.Duration == 0 {
		o.Duration = 20
	}
	if o.Warmup == 0 && !o.warmupSet {
		o.Warmup = o.Duration / 10
	}
	if o.Seed == 0 && !o.seedSet {
		o.Seed = 1
	}
	if o.DynAlpha == 0 {
		o.DynAlpha = 1
	}
	if o.Runs == 0 {
		o.Runs = 5
	}
	if len(o.BufferSizes) == 0 {
		for kb := 500; kb <= 5000; kb += 500 {
			o.BufferSizes = append(o.BufferSizes, units.KiloBytes(float64(kb)))
		}
	}
	if len(o.Headrooms) == 0 {
		for kb := 0; kb <= 1000; kb += 100 {
			o.Headrooms = append(o.Headrooms, units.KiloBytes(float64(kb)))
		}
	}
	if o.Fig7Buffer == 0 {
		o.Fig7Buffer = units.MegaBytes(1)
	}
}

// sweepDefaults is defaults plus the sweep-specific headroom default
// (2 MB, the §3.3 operating point). Single runs keep Headroom zero so
// threshold schemes are unaffected.
func (o *Options) sweepDefaults() {
	o.defaults()
	if o.Headroom == 0 {
		o.Headroom = units.MegaBytes(2)
	}
}

// Progress reports how far a sweep has come. Done/Total count
// individual simulation runs (line × point × replication).
type Progress struct {
	Done  int
	Total int
	// Elapsed is wall-clock time since the sweep started.
	Elapsed time.Duration
	// Remaining estimates time to completion from the mean run rate so
	// far (zero until the first run completes).
	Remaining time.Duration
}

// ProgressFunc receives sweep progress updates. It may be called
// concurrently from several pool workers; implementations must be
// safe for concurrent use (the qsim printer serializes internally).
type ProgressFunc func(Progress)

// progressTracker adapts a ProgressFunc to the pool's onDone hook,
// adding wall-clock ETA estimation.
type progressTracker struct {
	fn    ProgressFunc
	total int
	start time.Time
	done  atomic.Int64
}

func newProgressTracker(fn ProgressFunc, total int) *progressTracker {
	if fn == nil {
		return nil
	}
	return &progressTracker{fn: fn, total: total, start: time.Now()}
}

// onDone is the pool hook; nil trackers no-op.
func (t *progressTracker) onDone(int) {
	if t == nil {
		return
	}
	done := int(t.done.Add(1))
	elapsed := time.Since(t.start)
	var remaining time.Duration
	if done > 0 && done < t.total {
		remaining = time.Duration(float64(elapsed) / float64(done) * float64(t.total-done))
	}
	t.fn(Progress{Done: done, Total: t.total, Elapsed: elapsed, Remaining: remaining})
}
