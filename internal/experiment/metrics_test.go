package experiment

import (
	"context"
	"strings"
	"testing"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// sweepWithRegistry runs the tiny Figure 1 sweep with every run feeding
// one shared registry, and returns that registry.
func sweepWithRegistry(t *testing.T, workers int) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry()
	opts := tinyOpts()
	opts.Workers = workers
	opts.Metrics = reg
	if _, err := Figure1(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	return reg
}

// deterministic reports whether a metric name participates in the
// cross-worker-count determinism contract. Pool metrics depend on how
// jobs land on workers, so they are scheduling-dependent by design.
func deterministic(name string) bool {
	return !strings.HasPrefix(name, "pool.")
}

// TestMetricsDeterministicAcrossWorkers is the registry's aggregation
// contract end to end: a fixed-seed sweep must leave identical counter
// sums, gauge high-water marks, and histogram bucket counts in a shared
// registry whether it ran sequentially or on 8 workers. (Gauge
// instantaneous values are last-writer-wins and histogram float sums
// accumulate in scheduling order, so neither is compared.)
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	seqReg := sweepWithRegistry(t, 1)
	parReg := sweepWithRegistry(t, 8)

	seq, par := seqReg.Snapshot(), parReg.Snapshot()

	// The pool registers one runs_completed counter per worker, so only
	// the deterministic subset of names must match.
	keep := func(names []string) []string {
		var out []string
		for _, n := range names {
			if deterministic(n) {
				out = append(out, n)
			}
		}
		return out
	}
	seqNames, parNames := keep(seqReg.Names()), keep(parReg.Names())
	if len(seqNames) != len(parNames) {
		t.Fatalf("metric name sets differ: %d sequential vs %d parallel", len(seqNames), len(parNames))
	}
	for i, n := range seqNames {
		if parNames[i] != n {
			t.Fatalf("metric name sets differ at %d: %q vs %q", i, n, parNames[i])
		}
	}
	if len(seq.Counters) == 0 {
		t.Fatal("instrumented sweep registered no counters")
	}

	for name, v := range seq.Counters {
		if !deterministic(name) {
			continue
		}
		if pv := par.Counters[name]; pv != v {
			t.Errorf("counter %s: sequential %d, parallel %d", name, v, pv)
		}
	}
	for name, g := range seq.Gauges {
		if !deterministic(name) {
			continue
		}
		if pm := par.Gauges[name].Max; pm != g.Max {
			t.Errorf("gauge %s high-water: sequential %d, parallel %d", name, g.Max, pm)
		}
	}
	for name, h := range seq.Histograms {
		if !deterministic(name) {
			continue
		}
		ph := par.Histograms[name]
		if ph.Count != h.Count {
			t.Errorf("histogram %s count: sequential %d, parallel %d", name, h.Count, ph.Count)
			continue
		}
		for i, c := range h.Counts {
			if ph.Counts[i] != c {
				t.Errorf("histogram %s bucket %d: sequential %d, parallel %d", name, i, c, ph.Counts[i])
			}
		}
	}
}

// TestRunMetricsPopulated checks a single instrumented run touches all
// three layers the issue wires up: the event kernel, the buffer
// manager, and the scheduler/link.
func TestRunMetricsPopulated(t *testing.T) {
	reg := metrics.NewRegistry()
	o := NewOptions(
		WithFlows(Table1Flows()),
		WithScheme(FIFOThreshold),
		WithBuffer(units.MegaBytes(1)),
		WithDuration(2),
		WithWarmup(0.2),
		WithSeed(1),
		WithMetrics(reg),
	)
	if _, err := Run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"sim.events_dispatched",
		"buffer.accepts",
		"sched.served_packets.FIFO+thresholds",
		"experiment.run_events",
	} {
		v, ok := reg.Value(name)
		if !ok {
			t.Errorf("metric %s not registered; have %v", name, reg.Names())
			continue
		}
		if v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, v)
		}
	}
}
