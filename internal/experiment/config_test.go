package experiment

import (
	"strings"
	"testing"

	"bufqos/internal/units"
)

const sampleWorkload = `{
  "name": "custom",
  "link_mbps": 100,
  "flows": [
    {"count": 2, "peak_mbps": 16, "avg_mbps": 2, "token_mbps": 2,
     "bucket_kb": 50, "mean_burst_kb": 50, "conformance": "conformant"},
    {"peak_mbps": 40, "avg_mbps": 16, "token_mbps": 2,
     "bucket_kb": 50, "mean_burst_kb": 250, "conformance": "aggressive", "queue": 1}
  ]
}`

func TestParseWorkload(t *testing.T) {
	w, err := ParseWorkload(strings.NewReader(sampleWorkload))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom" || w.LinkRate != units.MbitsPerSecond(100) {
		t.Errorf("metadata = %q %v", w.Name, w.LinkRate)
	}
	if len(w.Flows) != 3 {
		t.Fatalf("expanded to %d flows, want 3 (count 2 + 1)", len(w.Flows))
	}
	if w.Flows[0].Spec.BucketSize != units.KiloBytes(50) || w.Flows[0].Conformance != Conformant {
		t.Errorf("flow 0 = %+v", w.Flows[0])
	}
	if w.Flows[2].Conformance != Aggressive || w.QueueOf[2] != 1 {
		t.Errorf("flow 2 = %+v queue %d", w.Flows[2], w.QueueOf[2])
	}
	if w.QueueOf[0] != 0 {
		t.Errorf("flow 0 queue = %d", w.QueueOf[0])
	}
}

func TestParseWorkloadDefaults(t *testing.T) {
	// Link rate defaults to 48 Mb/s; mean burst defaults to the bucket;
	// conformance defaults to conformant.
	w, err := ParseWorkload(strings.NewReader(`{"flows":[
		{"peak_mbps": 16, "avg_mbps": 2, "token_mbps": 2, "bucket_kb": 50}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if w.LinkRate != DefaultLinkRate {
		t.Errorf("link rate = %v", w.LinkRate)
	}
	if w.Flows[0].MeanBurst != units.KiloBytes(50) {
		t.Errorf("mean burst = %v, want bucket size", w.Flows[0].MeanBurst)
	}
	if w.Flows[0].Conformance != Conformant {
		t.Error("default conformance wrong")
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []string{
		`{`,             // invalid JSON
		`{"flows": []}`, // no flows
		`{"flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 0, "bucket_kb": 1}]}`, // invalid spec
		`{"flows": [{"peak_mbps": 1, "avg_mbps": 5, "token_mbps": 1, "bucket_kb": 1}]}`, // avg > peak
		`{"flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1, "conformance": "weird"}]}`,
		`{"flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1, "queue": -1}]}`,
		`{"flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1, "count": -2}]}`,
		`{"link_mbps": -5, "flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1}]}`,
		`{"flows": [{"nope": 1}]}`, // unknown field
		`{"schemes": ["bogus+threshold"],
		  "flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1}]}`, // bad scheme spec
		`{"schemes": ["fifo+"],
		  "flows": [{"peak_mbps": 1, "avg_mbps": 1, "token_mbps": 1, "bucket_kb": 1}]}`, // malformed spec
	}
	for i, c := range cases {
		if _, err := ParseWorkload(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestParseWorkloadSchemes(t *testing.T) {
	w, err := ParseWorkload(strings.NewReader(`{
	  "schemes": ["fifo+threshold", "hybrid:2+sharing", "FIFO+RED?min=0.2"],
	  "flows": [{"peak_mbps": 16, "avg_mbps": 2, "token_mbps": 2, "bucket_kb": 50},
	            {"peak_mbps": 16, "avg_mbps": 2, "token_mbps": 2, "bucket_kb": 50, "queue": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fifo+threshold", "hybrid:2+sharing", "FIFO+RED?min=0.2"}
	if len(w.Schemes) != len(want) {
		t.Fatalf("schemes = %v, want %v", w.Schemes, want)
	}
	for i := range want {
		if w.Schemes[i] != want[i] {
			t.Errorf("scheme %d = %q, want %q (specs are carried verbatim)", i, w.Schemes[i], want[i])
		}
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	var b strings.Builder
	flows := Table1Flows()
	if err := WriteWorkload(&b, "table1", DefaultLinkRate, flows, Table1QueueOf()); err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkload(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, b.String())
	}
	if len(w.Flows) != len(flows) {
		t.Fatalf("round-trip flow count %d, want %d", len(w.Flows), len(flows))
	}
	for i := range flows {
		if w.Flows[i].Spec != flows[i].Spec || w.Flows[i].Conformance != flows[i].Conformance ||
			w.Flows[i].AvgRate != flows[i].AvgRate || w.Flows[i].MeanBurst != flows[i].MeanBurst {
			t.Errorf("flow %d mismatch: %+v vs %+v", i, w.Flows[i], flows[i])
		}
		if w.QueueOf[i] != Table1QueueOf()[i] {
			t.Errorf("flow %d queue mismatch", i)
		}
	}
}

func TestParsedWorkloadRuns(t *testing.T) {
	w, err := ParseWorkload(strings.NewReader(sampleWorkload))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConfig(Config{
		Flows:    w.Flows,
		Scheme:   FIFOThreshold,
		LinkRate: w.LinkRate,
		Buffer:   units.KiloBytes(500),
		Duration: 2,
		Warmup:   0.2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 {
		t.Error("parsed workload produced no traffic")
	}
}
