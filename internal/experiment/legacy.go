package experiment

import (
	"context"

	"bufqos/internal/units"
)

// Config is the legacy single-run configuration.
//
// Deprecated: use Options (NewOptions + functional options). Config
// remains as a thin conversion layer so pre-Options callers keep
// compiling; RunConfig executes one.
type Config struct {
	Flows    []FlowConfig
	Scheme   Scheme
	LinkRate units.Rate
	Buffer   units.Bytes
	Headroom units.Bytes
	QueueOf  []int
	Duration float64
	Warmup   float64
	// WarmupSet marks a zero Warmup as intentional rather than unset.
	// The Options API replaces it with WithWarmup(0).
	WarmupSet   bool
	Seed        int64
	PacketSize  units.Bytes
	DynAlpha    float64
	TrackDelays bool
}

// Options converts the legacy Config to the Options it describes. A
// zero Seed stays zero (the legacy contract), and WarmupSet carries
// over to the private explicit-zero flag.
func (c Config) Options() *Options {
	return &Options{
		Flows:       c.Flows,
		Scheme:      c.Scheme,
		LinkRate:    c.LinkRate,
		Buffer:      c.Buffer,
		Headroom:    c.Headroom,
		QueueOf:     c.QueueOf,
		Duration:    c.Duration,
		Warmup:      c.Warmup,
		Seed:        c.Seed,
		PacketSize:  c.PacketSize,
		DynAlpha:    c.DynAlpha,
		TrackDelays: c.TrackDelays,
		warmupSet:   c.WarmupSet,
		seedSet:     true,
	}
}

// RunConfig executes one simulation described by a legacy Config.
//
// Deprecated: use Run(ctx, opts) with an Options.
func RunConfig(cfg Config) (Result, error) {
	return Run(context.Background(), cfg.Options())
}

// RunOpts is the legacy sweep configuration.
//
// Deprecated: use Options — its Runs/BufferSizes/Headrooms/Workers
// fields and WithWarmup/WithSeed options cover everything RunOpts did.
type RunOpts struct {
	Runs        int
	Duration    float64
	Warmup      float64
	BaseSeed    int64
	BufferSizes []units.Bytes
	Headrooms   []units.Bytes
	Headroom    units.Bytes
	Fig7Buffer  units.Bytes
	// WarmupSet marks a zero Warmup as intentional rather than unset.
	WarmupSet bool
	Workers   int
}

// Options converts the legacy RunOpts to an Options. A zero BaseSeed
// maps to the default seed (1), matching the old defaults.
func (o RunOpts) Options() *Options {
	out := &Options{
		Runs:        o.Runs,
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Seed:        o.BaseSeed,
		BufferSizes: o.BufferSizes,
		Headrooms:   o.Headrooms,
		Headroom:    o.Headroom,
		Fig7Buffer:  o.Fig7Buffer,
		Workers:     o.Workers,
		warmupSet:   o.WarmupSet,
	}
	return out
}
