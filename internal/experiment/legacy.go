package experiment

import (
	"context"
	"fmt"

	"bufqos/internal/units"
)

// Scheme names one of the resource-management combinations compared in
// the paper's evaluation.
//
// Deprecated: the closed enum predates the scheme registry. Use
// Options.SchemeSpec / WithSchemeSpec with a registry spec string (e.g.
// "fifo+threshold", "wfq+sharing", "fifo+red?min=0.2"); every enum
// value maps onto its registry entry via Spec(), so existing callers
// keep producing identical runs.
type Scheme int

const (
	// FIFONoBM is FIFO scheduling with no buffer management (shared
	// tail-drop) — benchmark 3 of §3.2. Registry spec: "fifo+none".
	FIFONoBM Scheme = iota
	// WFQNoBM is per-flow WFQ with a shared tail-drop buffer —
	// benchmark 4. Registry spec: "wfq+none".
	WFQNoBM
	// FIFOThreshold is the paper's proposal: FIFO + fixed per-flow
	// thresholds σᵢ + ρᵢB/R — scheme 1. Registry spec: "fifo+threshold".
	FIFOThreshold
	// WFQThreshold is per-flow WFQ + the same thresholds — scheme 2.
	// Registry spec: "wfq+threshold".
	WFQThreshold
	// FIFOSharing is FIFO + the §3.3 holes/headroom sharing scheme.
	// Registry spec: "fifo+sharing".
	FIFOSharing
	// WFQSharing is per-flow WFQ + the sharing scheme. Registry spec:
	// "wfq+sharing".
	WFQSharing
	// HybridSharing is the §4 architecture: k FIFO queues under WFQ,
	// buffer sharing within each queue. Registry spec: "hybrid+sharing".
	HybridSharing
	// FIFODynamicThreshold is FIFO + Choudhury–Hahne dynamic thresholds,
	// an ablation baseline (reference [1]). Registry spec:
	// "fifo+dynthresh" (Options.DynAlpha becomes the α parameter).
	FIFODynamicThreshold
	// FIFORed is FIFO + RED, an ablation baseline (reference [3]).
	// Registry spec: "fifo+red".
	FIFORed
	// FIFOAdaptiveSharing is the §5 extension: sharing where only
	// adaptive flows (here: the non-aggressive classes) may borrow the
	// full holes; aggressive flows get a reduced fraction. Registry
	// spec: "fifo+adaptive".
	FIFOAdaptiveSharing
	// RPQThreshold is a Rotating-Priority-Queues scheduler (reference
	// [10]) + fixed thresholds, the sorting-free middle ground between
	// FIFO and WFQ. Registry spec: "rpq+threshold".
	RPQThreshold
	// DRRThreshold is Deficit Round Robin + fixed thresholds: the other
	// O(1) fairness design of the era, for direct comparison with the
	// paper's O(1) buffer-management approach. Registry spec:
	// "drr+threshold".
	DRRThreshold
	// EDFThreshold is Earliest-Deadline-First + fixed thresholds (the
	// rate-controlled EDF family of reference [4]). Registry spec:
	// "edf+threshold".
	EDFThreshold
	// VCThreshold is Virtual Clock + fixed thresholds (the family
	// reference [8] accelerates). Registry spec: "vc+threshold".
	VCThreshold
)

// legacySpecs maps every enum value onto its registry spec, in enum
// order.
var legacySpecs = []string{
	FIFONoBM:             "fifo+none",
	WFQNoBM:              "wfq+none",
	FIFOThreshold:        "fifo+threshold",
	WFQThreshold:         "wfq+threshold",
	FIFOSharing:          "fifo+sharing",
	WFQSharing:           "wfq+sharing",
	HybridSharing:        "hybrid+sharing",
	FIFODynamicThreshold: "fifo+dynthresh",
	FIFORed:              "fifo+red",
	FIFOAdaptiveSharing:  "fifo+adaptive",
	RPQThreshold:         "rpq+threshold",
	DRRThreshold:         "drr+threshold",
	EDFThreshold:         "edf+threshold",
	VCThreshold:          "vc+threshold",
}

// spec returns the registry spec of a legacy enum value.
func (s Scheme) spec() (string, error) {
	if s < 0 || int(s) >= len(legacySpecs) {
		return "", fmt.Errorf("experiment: unknown scheme Scheme(%d)", int(s))
	}
	return legacySpecs[s], nil
}

// Spec returns the registry spec string the enum value maps onto, e.g.
// FIFOThreshold → "fifo+threshold".
func (s Scheme) Spec() string {
	spec, err := s.spec()
	if err != nil {
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
	return spec
}

// String implements fmt.Stringer; the names appear in result tables and
// are the registry's display labels for the mapped specs.
func (s Scheme) String() string {
	spec, err := s.spec()
	if err != nil {
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
	return specLabel(spec)
}

// Config is the legacy single-run configuration.
//
// Deprecated: use Options (NewOptions + functional options). Config
// remains as a thin conversion layer so pre-Options callers keep
// compiling; RunConfig executes one.
type Config struct {
	Flows    []FlowConfig
	Scheme   Scheme
	LinkRate units.Rate
	Buffer   units.Bytes
	Headroom units.Bytes
	QueueOf  []int
	Duration float64
	Warmup   float64
	// WarmupSet marks a zero Warmup as intentional rather than unset.
	// The Options API replaces it with WithWarmup(0).
	WarmupSet   bool
	Seed        int64
	PacketSize  units.Bytes
	DynAlpha    float64
	TrackDelays bool
}

// Options converts the legacy Config to the Options it describes. A
// zero Seed stays zero (the legacy contract), and WarmupSet carries
// over to the private explicit-zero flag.
func (c Config) Options() *Options {
	return &Options{
		Flows:       c.Flows,
		Scheme:      c.Scheme,
		LinkRate:    c.LinkRate,
		Buffer:      c.Buffer,
		Headroom:    c.Headroom,
		QueueOf:     c.QueueOf,
		Duration:    c.Duration,
		Warmup:      c.Warmup,
		Seed:        c.Seed,
		PacketSize:  c.PacketSize,
		DynAlpha:    c.DynAlpha,
		TrackDelays: c.TrackDelays,
		warmupSet:   c.WarmupSet,
		seedSet:     true,
	}
}

// RunConfig executes one simulation described by a legacy Config.
//
// Deprecated: use Run(ctx, opts) with an Options.
func RunConfig(cfg Config) (Result, error) {
	return Run(context.Background(), cfg.Options())
}

// RunOpts is the legacy sweep configuration.
//
// Deprecated: use Options — its Runs/BufferSizes/Headrooms/Workers
// fields and WithWarmup/WithSeed options cover everything RunOpts did.
type RunOpts struct {
	Runs        int
	Duration    float64
	Warmup      float64
	BaseSeed    int64
	BufferSizes []units.Bytes
	Headrooms   []units.Bytes
	Headroom    units.Bytes
	Fig7Buffer  units.Bytes
	// WarmupSet marks a zero Warmup as intentional rather than unset.
	WarmupSet bool
	Workers   int
}

// Options converts the legacy RunOpts to an Options. A zero BaseSeed
// maps to the default seed (1), matching the old defaults.
func (o RunOpts) Options() *Options {
	out := &Options{
		Runs:        o.Runs,
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Seed:        o.BaseSeed,
		BufferSizes: o.BufferSizes,
		Headrooms:   o.Headrooms,
		Headroom:    o.Headroom,
		Fig7Buffer:  o.Fig7Buffer,
		Workers:     o.Workers,
		warmupSet:   o.WarmupSet,
	}
	return out
}
