package experiment

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bufqos/internal/units"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/legacy_golden.json from the current implementation")

// legacyGoldenSchemes is every value of the deprecated Scheme enum, in
// declaration order. The golden file keys results by the enum's String()
// name, so table labels are pinned at the same time.
func legacyGoldenSchemes() []Scheme {
	return []Scheme{
		FIFONoBM, WFQNoBM, FIFOThreshold, WFQThreshold,
		FIFOSharing, WFQSharing, HybridSharing,
		FIFODynamicThreshold, FIFORed, FIFOAdaptiveSharing,
		RPQThreshold, DRRThreshold, EDFThreshold, VCThreshold,
	}
}

// legacyGoldenOptions is the fixed scenario the guard runs every scheme
// under: short enough for the test suite, long enough that every code
// path (thresholds, sharing pools, RED's RNG, hybrid partitioning)
// executes.
func legacyGoldenOptions(s Scheme) *Options {
	o := &Options{
		Flows:       Table1Flows(),
		Scheme:      s,
		Buffer:      units.KiloBytes(500),
		Headroom:    units.KiloBytes(250),
		QueueOf:     Table1QueueOf(),
		Duration:    2,
		TrackDelays: true,
	}
	WithWarmup(0.2)(o)
	WithSeed(7)(o)
	return o
}

// goldenResult is Result in a JSON-stable form. encoding/json prints
// float64s with the shortest round-tripping representation, so decoding
// reproduces the exact bits Run produced.
type goldenResult struct {
	AggThroughput  float64   `json:"agg_throughput"`
	Utilization    float64   `json:"utilization"`
	FlowThroughput []float64 `json:"flow_throughput"`
	ConformantLoss float64   `json:"conformant_loss"`
	FlowLoss       []float64 `json:"flow_loss"`
	OfferedRate    []float64 `json:"offered_rate"`
	MaxDelay       float64   `json:"max_delay"`
	MeanDelay      float64   `json:"mean_delay"`
	FlowMaxDelay   []float64 `json:"flow_max_delay"`
}

func toGolden(r Result) goldenResult {
	g := goldenResult{
		AggThroughput:  float64(r.AggThroughput),
		Utilization:    r.Utilization,
		ConformantLoss: r.ConformantLoss,
		FlowLoss:       r.FlowLoss,
		MaxDelay:       r.MaxDelay,
		MeanDelay:      r.MeanDelay,
		FlowMaxDelay:   r.FlowMaxDelay,
	}
	for _, v := range r.FlowThroughput {
		g.FlowThroughput = append(g.FlowThroughput, float64(v))
	}
	for _, v := range r.OfferedRate {
		g.OfferedRate = append(g.OfferedRate, float64(v))
	}
	return g
}

// TestLegacySchemeEquivalence is the refactor guard: for every value of
// the deprecated Scheme enum, Run through the scheme registry must
// produce bit-identical Results to the pre-registry construction switch
// (captured in testdata/legacy_golden.json before the refactor).
// Regenerate with `go test -run LegacySchemeEquivalence -update-golden`
// only when an intentional behaviour change is being made.
func TestLegacySchemeEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "legacy_golden.json")
	got := map[string]goldenResult{}
	for _, s := range legacyGoldenSchemes() {
		res, err := Run(context.Background(), legacyGoldenOptions(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got[s.String()] = toGolden(res)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d schemes, current enum has %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scheme %q in golden but not produced (String() drift?)", name)
			continue
		}
		compareGolden(t, name, w, g)
	}
}

func compareGolden(t *testing.T, name string, want, got goldenResult) {
	t.Helper()
	eq := func(field string, w, g float64) {
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Errorf("%s: %s = %v, golden %v (not bit-identical)", name, field, g, w)
		}
	}
	eqs := func(field string, w, g []float64) {
		if len(w) != len(g) {
			t.Errorf("%s: %s has %d entries, golden %d", name, field, len(g), len(w))
			return
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Errorf("%s: %s[%d] = %v, golden %v", name, field, i, g[i], w[i])
			}
		}
	}
	eq("AggThroughput", want.AggThroughput, got.AggThroughput)
	eq("Utilization", want.Utilization, got.Utilization)
	eq("ConformantLoss", want.ConformantLoss, got.ConformantLoss)
	eq("MaxDelay", want.MaxDelay, got.MaxDelay)
	eq("MeanDelay", want.MeanDelay, got.MeanDelay)
	eqs("FlowThroughput", want.FlowThroughput, got.FlowThroughput)
	eqs("FlowLoss", want.FlowLoss, got.FlowLoss)
	eqs("OfferedRate", want.OfferedRate, got.OfferedRate)
	eqs("FlowMaxDelay", want.FlowMaxDelay, got.FlowMaxDelay)
}
