package experiment

import (
	"context"
	"strings"
	"testing"

	"bufqos/internal/units"
)

// tinyOpts keeps figure tests fast: one run, short duration, two buffer
// points.
func tinyOpts() *Options {
	o := &Options{
		Runs:        1,
		Duration:    2,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(2)},
		Headrooms:   []units.Bytes{0, units.KiloBytes(500)},
		Headroom:    units.KiloBytes(500),
	}
	WithWarmup(0.25)(o)
	WithSeed(7)(o)
	return o
}

func TestFigureRegistryComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 13 {
		t.Fatalf("registry has %d figures, want 13", len(ids))
	}
	if ids[0] != "fig1" || ids[12] != "fig13" {
		t.Errorf("IDs not in order: %v", ids)
	}
}

func TestAllFiguresRunTiny(t *testing.T) {
	opts := tinyOpts()
	for _, id := range FigureIDs() {
		fig, err := Figures[id](context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("%s: ID mismatch %q", id, fig.ID)
		}
		if len(fig.Xs) == 0 || len(fig.Series) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
		for _, s := range fig.Series {
			if len(s.Points) != len(fig.Xs) {
				t.Fatalf("%s %s: %d points for %d xs", id, s.Label, len(s.Points), len(fig.Xs))
			}
		}
	}
}

func TestFigure1SeriesLabels(t *testing.T) {
	fig, err := Figure1(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FIFO", "WFQ", "FIFO+thresholds", "WFQ+thresholds"} {
		if _, ok := fig.SeriesByLabel(want); !ok {
			t.Errorf("figure 1 missing series %q", want)
		}
	}
	if _, ok := fig.SeriesByLabel("nope"); ok {
		t.Error("SeriesByLabel found a nonexistent label")
	}
}

func TestFigure7SweepsHeadroom(t *testing.T) {
	opts := tinyOpts()
	fig, err := Figure7(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Xs) != len(opts.Headrooms) {
		t.Errorf("figure 7 xs = %v, want one per headroom", fig.Xs)
	}
	if !strings.Contains(fig.XLabel, "headroom") {
		t.Errorf("figure 7 XLabel = %q", fig.XLabel)
	}
}

func TestWriteTableFormat(t *testing.T) {
	fig, err := Figure2(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable(&b, fig); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "±") {
		t.Errorf("table output missing header or ci marker:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + column row + one row per X.
	if len(lines) != 2+len(fig.Xs) {
		t.Errorf("table has %d lines, want %d", len(lines), 2+len(fig.Xs))
	}
}

func TestWriteCSVFormat(t *testing.T) {
	fig, err := Figure5(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+len(fig.Xs) {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(fig.Xs))
	}
	wantCols := 1 + 2*len(fig.Series)
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != wantCols {
			t.Errorf("csv line %d has %d columns, want %d", i, got, wantCols)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Error("plain string escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Errorf("comma not quoted: %s", csvEscape(`a,b`))
	}
	if csvEscape(`a"b`) != `"a""b"` {
		t.Errorf("quote not doubled: %s", csvEscape(`a"b`))
	}
}

func TestSweepDefaults(t *testing.T) {
	var o Options
	o.sweepDefaults()
	if o.Runs != 5 || o.Duration != 20 || o.Warmup != 2 {
		t.Errorf("defaults = %+v", o)
	}
	if len(o.BufferSizes) != 10 || o.BufferSizes[0] != units.KiloBytes(500) || o.BufferSizes[9] != units.MegaBytes(5) {
		t.Errorf("default buffer sweep = %v", o.BufferSizes)
	}
	if o.Headroom != units.MegaBytes(2) {
		t.Errorf("default headroom = %v, want paper's 2MB", o.Headroom)
	}
	if len(o.Headrooms) != 11 {
		t.Errorf("default headroom sweep = %v", o.Headrooms)
	}
}
