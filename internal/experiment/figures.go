package experiment

import (
	"fmt"
	"sort"

	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// RunOpts controls how the figure experiments are executed. The zero
// value reproduces the paper's setup (5 runs, 20 simulated seconds,
// buffers swept 0.5–5 MB, headroom 2 MB).
type RunOpts struct {
	// Runs is the number of independent replications (paper: 5).
	Runs int
	// Duration and Warmup are per-run simulated seconds.
	Duration float64
	Warmup   float64
	// BaseSeed seeds run r with BaseSeed + r.
	BaseSeed int64
	// BufferSizes is the swept total buffer (Figures 1–6, 8–13).
	BufferSizes []units.Bytes
	// Headrooms is the swept headroom for Figure 7.
	Headrooms []units.Bytes
	// Headroom is H for the sharing schemes on buffer sweeps.
	Headroom units.Bytes
	// Fig7Buffer is the fixed total buffer of the Figure 7 headroom
	// sweep (paper: 1 MB).
	Fig7Buffer units.Bytes
	// WarmupSet marks a zero Warmup as intentional rather than unset,
	// suppressing the Duration/10 default.
	WarmupSet bool
	// Workers bounds how many simulation runs execute concurrently:
	// 0 means GOMAXPROCS, 1 forces sequential execution. Results are
	// identical for any worker count — each (line, x, replication) run
	// owns its simulator and seed, and lands in a pre-assigned slot.
	Workers int
}

func (o *RunOpts) defaults() {
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.Duration == 0 {
		o.Duration = 20
	}
	if o.Warmup == 0 && !o.WarmupSet {
		o.Warmup = o.Duration / 10
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if len(o.BufferSizes) == 0 {
		for kb := 500; kb <= 5000; kb += 500 {
			o.BufferSizes = append(o.BufferSizes, units.KiloBytes(float64(kb)))
		}
	}
	if len(o.Headrooms) == 0 {
		for kb := 0; kb <= 1000; kb += 100 {
			o.Headrooms = append(o.Headrooms, units.KiloBytes(float64(kb)))
		}
	}
	if o.Headroom == 0 {
		o.Headroom = units.MegaBytes(2)
	}
	if o.Fig7Buffer == 0 {
		o.Fig7Buffer = units.MegaBytes(1)
	}
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []stats.Summary // one per X value
}

// Figure is the regenerated data of one of the paper's figures.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
}

// line pairs a label with a config builder and a metric extractor.
type line struct {
	label  string
	cfg    func(x units.Bytes) Config
	metric func(Result) float64
}

// runLines sweeps xs, replicating each point opts.Runs times. The
// (line, x, replication) runs are independent — each owns its simulator
// and a seed derived only from the replication index — so they fan out
// onto opts.Workers goroutines, with every run's metric written into a
// pre-assigned slot. The resulting Series are identical to a sequential
// sweep for any worker count.
func runLines(opts RunOpts, xs []units.Bytes, lines []line) ([]Series, error) {
	nx, nr := len(xs), opts.Runs
	series := make([]Series, len(lines))
	for li, l := range lines {
		series[li].Label = l.label
		series[li].Points = make([]stats.Summary, nx)
	}
	vals := make([]float64, len(lines)*nx*nr)
	err := forEachJob(opts.Workers, len(vals), func(j int) error {
		li, xi, r := j/(nx*nr), (j/nr)%nx, j%nr
		l, x := lines[li], xs[xi]
		cfg := l.cfg(x)
		cfg.Duration = opts.Duration
		cfg.Warmup = opts.Warmup
		cfg.WarmupSet = true
		cfg.Seed = opts.BaseSeed + int64(r)
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at %v run %d: %w", l.label, x, r, err)
		}
		vals[j] = l.metric(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li := range lines {
		for xi := 0; xi < nx; xi++ {
			base := (li*nx + xi) * nr
			series[li].Points[xi] = stats.Summarize(vals[base : base+nr])
		}
	}
	return series, nil
}

func mbAxis(xs []units.Bytes) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x.MB()
	}
	return out
}

func utilization(r Result) float64    { return r.Utilization }
func conformantLoss(r Result) float64 { return r.ConformantLoss }
func flowThroughputMbps(id int) func(Result) float64 {
	return func(r Result) float64 { return r.FlowThroughput[id].Mbits() }
}

// meanThroughputMbps averages the delivered Mb/s over a set of flows.
func meanThroughputMbps(ids []int) func(Result) float64 {
	return func(r Result) float64 {
		sum := 0.0
		for _, id := range ids {
			sum += r.FlowThroughput[id].Mbits()
		}
		return sum / float64(len(ids))
	}
}

// lossOver computes the byte-weighted loss ratio over a flow set from
// per-flow loss and offered rates.
func lossOver(ids []int) func(Result) float64 {
	return func(r Result) float64 {
		var lost, offered float64
		for _, id := range ids {
			offered += r.OfferedRate[id].BitsPerSecond()
			lost += r.FlowLoss[id] * r.OfferedRate[id].BitsPerSecond()
		}
		if offered == 0 {
			return 0
		}
		return lost / offered
	}
}

// table1Cfg returns a Config template for the Table 1 workload.
func table1Cfg(scheme Scheme, buf, headroom units.Bytes) Config {
	return Config{
		Flows:    Table1Flows(),
		Scheme:   scheme,
		Buffer:   buf,
		Headroom: headroom,
		QueueOf:  Table1QueueOf(),
	}
}

func table2Cfg(scheme Scheme, buf, headroom units.Bytes) Config {
	return Config{
		Flows:    Table2Flows(),
		Scheme:   scheme,
		Buffer:   buf,
		Headroom: headroom,
		QueueOf:  Table2QueueOf(),
	}
}

// Figure1 regenerates "Aggregate throughput with threshold based buffer
// management": utilization vs total buffer for the four §3.2 schemes.
func Figure1(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOThreshold, WFQThreshold, FIFONoBM, WFQNoBM}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, 0) },
			metric: utilization,
		})
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig1", Title: "Aggregate throughput with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure2 regenerates "Loss for conformant flows with threshold based
// buffer management".
func Figure2(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOThreshold, WFQThreshold, FIFONoBM, WFQNoBM}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, 0) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig2", Title: "Loss for conformant flows with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure3 regenerates "Throughput for non-conformant flows with
// threshold based buffer management": flows 6 and 8 differ 5× in
// reservation (0.4 vs 2 Mb/s); WFQ+thresholds shares excess in that
// ratio, the others do not.
func Figure3(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOThreshold, WFQThreshold, FIFONoBM, WFQNoBM}
	var lines []line
	for _, s := range schemes {
		s := s
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", s, flow),
				cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, 0) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig3", Title: "Throughput for non-conformant flows with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure4 regenerates "Aggregate throughput with Buffer Sharing",
// including the no-buffer-management baselines for comparison with
// Figure 1.
func Figure4(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOSharing, WFQSharing, FIFONoBM, WFQNoBM}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
			metric: utilization,
		})
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig4", Title: "Aggregate throughput with Buffer Sharing (H = " + opts.Headroom.String() + ")",
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure5 regenerates "Loss for conformant flows in Buffer Sharing".
func Figure5(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOSharing, WFQSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig5", Title: "Loss for conformant flows in Buffer Sharing (H = " + opts.Headroom.String() + ")",
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure6 regenerates "Throughput for non-conformant flows with Buffer
// Sharing": with sharing, FIFO mimics WFQ's proportional split between
// flows 6 and 8.
func Figure6(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{FIFOSharing, WFQSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", s, flow),
				cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig6", Title: "Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure7 regenerates "Effect of varying the headroom in terms of loss
// for conformant flows": buffer fixed at 1 MB, H swept.
func Figure7(opts RunOpts) (Figure, error) {
	opts.defaults()
	buf := opts.Fig7Buffer
	schemes := []Scheme{FIFOSharing, WFQSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(h units.Bytes) Config { return table1Cfg(s, buf, h) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(opts, opts.Headrooms, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig7", Title: fmt.Sprintf("Effect of varying the headroom (B = %v)", buf),
		XLabel: "headroom (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(opts.Headrooms), Series: series,
	}, nil
}

// hybridFigure builds the three-metric × buffer-sweep comparisons of
// §4.2 shared by Figures 8–10 (Case 1) and 11–13 (Case 2).
func hybridFigure(opts RunOpts, id, title, ylabel string, cfgOf func(Scheme, units.Bytes) Config,
	metric func(Result) float64, extra []line) (Figure, error) {
	schemes := []Scheme{HybridSharing, WFQSharing, FIFOSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines, line{
			label:  s.String(),
			cfg:    func(x units.Bytes) Config { return cfgOf(s, x) },
			metric: metric,
		})
	}
	lines = append(lines, extra...)
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: id, Title: title,
		XLabel: "buffer (MB)", YLabel: ylabel,
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure8 regenerates "Hybrid System, Case 1: Aggregate throughput with
// Buffer Sharing".
func Figure8(opts RunOpts) (Figure, error) {
	opts.defaults()
	return hybridFigure(opts, "fig8", "Hybrid System, Case 1: Aggregate throughput with Buffer Sharing",
		"link utilization",
		func(s Scheme, x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
		utilization, nil)
}

// Figure9 regenerates "Hybrid System, Case 1: Loss for conformant flows
// with Buffer Sharing".
func Figure9(opts RunOpts) (Figure, error) {
	opts.defaults()
	return hybridFigure(opts, "fig9", "Hybrid System, Case 1: Loss for conformant flows with Buffer Sharing",
		"conformant loss ratio",
		func(s Scheme, x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
		conformantLoss, nil)
}

// Figure10 regenerates "Hybrid System, Case 1: Throughput for
// non-conformant flows with Buffer Sharing" (flows 6 and 8).
func Figure10(opts RunOpts) (Figure, error) {
	opts.defaults()
	schemes := []Scheme{HybridSharing, WFQSharing, FIFOSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", s, flow),
				cfg:    func(x units.Bytes) Config { return table1Cfg(s, x, opts.Headroom) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig10", Title: "Hybrid System, Case 1: Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figure11 regenerates "Hybrid System, Case 2: Aggregate throughput
// with Buffer Sharing" (the 30-flow Table 2 workload).
func Figure11(opts RunOpts) (Figure, error) {
	opts.defaults()
	return hybridFigure(opts, "fig11", "Hybrid System, Case 2: Aggregate throughput with Buffer Sharing",
		"link utilization",
		func(s Scheme, x units.Bytes) Config { return table2Cfg(s, x, opts.Headroom) },
		utilization, nil)
}

// Figure12 regenerates "Hybrid System, Case 2: Loss for conformant and
// moderately conformant flows with Buffer Sharing" (flows 0–19).
func Figure12(opts RunOpts) (Figure, error) {
	opts.defaults()
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i
	}
	return hybridFigure(opts, "fig12", "Hybrid System, Case 2: Loss for conformant and moderately conformant flows",
		"loss ratio (flows 0-19)",
		func(s Scheme, x units.Bytes) Config { return table2Cfg(s, x, opts.Headroom) },
		lossOver(ids), nil)
}

// Figure13 regenerates "Hybrid System, Case 2: Throughput for
// non-conformant flows with Buffer Sharing": mean per-flow throughput
// of the moderate (10–19) and aggressive (20–29) classes.
func Figure13(opts RunOpts) (Figure, error) {
	opts.defaults()
	moderate := make([]int, 10)
	aggressive := make([]int, 10)
	for i := 0; i < 10; i++ {
		moderate[i] = 10 + i
		aggressive[i] = 20 + i
	}
	schemes := []Scheme{HybridSharing, WFQSharing, FIFOSharing}
	var lines []line
	for _, s := range schemes {
		s := s
		lines = append(lines,
			line{
				label:  s.String() + " moderate",
				cfg:    func(x units.Bytes) Config { return table2Cfg(s, x, opts.Headroom) },
				metric: meanThroughputMbps(moderate),
			},
			line{
				label:  s.String() + " aggressive",
				cfg:    func(x units.Bytes) Config { return table2Cfg(s, x, opts.Headroom) },
				metric: meanThroughputMbps(aggressive),
			},
		)
	}
	series, err := runLines(opts, opts.BufferSizes, lines)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig13", Title: "Hybrid System, Case 2: Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "mean per-flow throughput (Mb/s)",
		Xs: mbAxis(opts.BufferSizes), Series: series,
	}, nil
}

// Figures maps figure IDs to their runners.
var Figures = map[string]func(RunOpts) (Figure, error){
	"fig1": Figure1, "fig2": Figure2, "fig3": Figure3,
	"fig4": Figure4, "fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
	"fig8": Figure8, "fig9": Figure9, "fig10": Figure10,
	"fig11": Figure11, "fig12": Figure12, "fig13": Figure13,
}

// FigureIDs returns the known figure IDs in order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Figures))
	for id := range Figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		var x, y int
		fmt.Sscanf(ids[a], "fig%d", &x)
		fmt.Sscanf(ids[b], "fig%d", &y)
		return x < y
	})
	return ids
}
