package experiment

import (
	"context"
	"fmt"
	"sort"

	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []stats.Summary // one per X value
}

// Figure is the regenerated data of one of the paper's figures.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
}

// line pairs a label with an options builder and a metric extractor.
type line struct {
	label  string
	cfg    func(x units.Bytes) *Options
	metric func(Result) float64
}

// sweepReady returns a defaulted copy of o (nil meaning all defaults)
// suitable for the figure sweeps, leaving the caller's Options intact.
func (o *Options) sweepReady() *Options {
	var c Options
	if o != nil {
		c = *o
	}
	c.sweepDefaults()
	return &c
}

// runLines sweeps xs, replicating each point opts.Runs times. The
// (line, x, replication) runs are independent — each owns its simulator
// and a seed derived only from the replication index — so they fan out
// onto opts.Workers goroutines, with every run's metric written into a
// pre-assigned slot. The resulting Series are identical to a sequential
// sweep for any worker count.
//
// Cancelling ctx stops the sweep within roughly one run's duration. The
// returned Series are then partial but well formed: every point
// summarizes only its completed replications (empty points have
// Summary{}), and the error is ctx.Err(). opts.Progress, when set, is
// notified after every completed run; opts.Metrics aggregates the
// simulation metrics of all runs.
func runLines(ctx context.Context, opts *Options, xs []units.Bytes, lines []line) ([]Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nx, nr := len(xs), opts.Runs
	series := make([]Series, len(lines))
	for li, l := range lines {
		series[li].Label = l.label
		series[li].Points = make([]stats.Summary, nx)
	}
	vals := make([]float64, len(lines)*nx*nr)
	done := make([]bool, len(vals))
	tracker := newProgressTracker(opts.Progress, len(vals))
	err := forEachJob(ctx, opts.Workers, len(vals), opts.Metrics, tracker.onDone, func(j int) error {
		li, xi, r := j/(nx*nr), (j/nr)%nx, j%nr
		l, x := lines[li], xs[xi]
		rc := l.cfg(x)
		rc.Duration = opts.Duration
		rc.Warmup = opts.Warmup
		rc.warmupSet = true
		rc.Seed = opts.Seed + int64(r)
		rc.seedSet = true
		rc.Metrics = opts.Metrics
		res, err := Run(ctx, rc)
		if err != nil {
			return fmt.Errorf("%s at %v run %d: %w", l.label, x, r, err)
		}
		vals[j] = l.metric(res)
		done[j] = true
		return nil
	})
	for li := range lines {
		for xi := 0; xi < nx; xi++ {
			base := (li*nx + xi) * nr
			complete := make([]float64, 0, nr)
			for r := 0; r < nr; r++ {
				if done[base+r] {
					complete = append(complete, vals[base+r])
				}
			}
			series[li].Points[xi] = stats.Summarize(complete)
		}
	}
	if err != nil {
		return series, err
	}
	return series, nil
}

func mbAxis(xs []units.Bytes) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x.MB()
	}
	return out
}

func utilization(r Result) float64    { return r.Utilization }
func conformantLoss(r Result) float64 { return r.ConformantLoss }
func flowThroughputMbps(id int) func(Result) float64 {
	return func(r Result) float64 { return r.FlowThroughput[id].Mbits() }
}

// meanThroughputMbps averages the delivered Mb/s over a set of flows.
func meanThroughputMbps(ids []int) func(Result) float64 {
	return func(r Result) float64 {
		sum := 0.0
		for _, id := range ids {
			sum += r.FlowThroughput[id].Mbits()
		}
		return sum / float64(len(ids))
	}
}

// lossOver computes the byte-weighted loss ratio over a flow set from
// per-flow loss and offered rates.
func lossOver(ids []int) func(Result) float64 {
	return func(r Result) float64 {
		var lost, offered float64
		for _, id := range ids {
			offered += r.OfferedRate[id].BitsPerSecond()
			lost += r.FlowLoss[id] * r.OfferedRate[id].BitsPerSecond()
		}
		if offered == 0 {
			return 0
		}
		return lost / offered
	}
}

// table1Cfg returns run options for the Table 1 workload; spec is a
// scheme-registry spec string.
func table1Cfg(spec string, buf, headroom units.Bytes) *Options {
	return &Options{
		Flows:      Table1Flows(),
		SchemeSpec: spec,
		Buffer:     buf,
		Headroom:   headroom,
		QueueOf:    Table1QueueOf(),
	}
}

func table2Cfg(spec string, buf, headroom units.Bytes) *Options {
	return &Options{
		Flows:      Table2Flows(),
		SchemeSpec: spec,
		Buffer:     buf,
		Headroom:   headroom,
		QueueOf:    Table2QueueOf(),
	}
}

// Figure1 regenerates "Aggregate throughput with threshold based buffer
// management": utilization vs total buffer for the four §3.2 schemes.
func Figure1(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+threshold", "wfq+threshold", "fifo+none", "wfq+none"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, 0) },
			metric: utilization,
		})
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig1", Title: "Aggregate throughput with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure2 regenerates "Loss for conformant flows with threshold based
// buffer management".
func Figure2(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+threshold", "wfq+threshold", "fifo+none", "wfq+none"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, 0) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig2", Title: "Loss for conformant flows with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure3 regenerates "Throughput for non-conformant flows with
// threshold based buffer management": flows 6 and 8 differ 5× in
// reservation (0.4 vs 2 Mb/s); WFQ+thresholds shares excess in that
// ratio, the others do not.
func Figure3(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+threshold", "wfq+threshold", "fifo+none", "wfq+none"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", specLabel(spec), flow),
				cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, 0) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig3", Title: "Throughput for non-conformant flows with threshold based buffer management",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure4 regenerates "Aggregate throughput with Buffer Sharing",
// including the no-buffer-management baselines for comparison with
// Figure 1.
func Figure4(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+sharing", "wfq+sharing", "fifo+none", "wfq+none"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
			metric: utilization,
		})
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig4", Title: "Aggregate throughput with Buffer Sharing (H = " + o.Headroom.String() + ")",
		XLabel: "buffer (MB)", YLabel: "link utilization",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure5 regenerates "Loss for conformant flows in Buffer Sharing".
func Figure5(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+sharing", "wfq+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig5", Title: "Loss for conformant flows in Buffer Sharing (H = " + o.Headroom.String() + ")",
		XLabel: "buffer (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure6 regenerates "Throughput for non-conformant flows with Buffer
// Sharing": with sharing, FIFO mimics WFQ's proportional split between
// flows 6 and 8.
func Figure6(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"fifo+sharing", "wfq+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", specLabel(spec), flow),
				cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig6", Title: "Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure7 regenerates "Effect of varying the headroom in terms of loss
// for conformant flows": buffer fixed at 1 MB, H swept.
func Figure7(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	buf := o.Fig7Buffer
	specs := []string{"fifo+sharing", "wfq+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(h units.Bytes) *Options { return table1Cfg(spec, buf, h) },
			metric: conformantLoss,
		})
	}
	series, err := runLines(ctx, o, o.Headrooms, lines)
	return Figure{
		ID: "fig7", Title: fmt.Sprintf("Effect of varying the headroom (B = %v)", buf),
		XLabel: "headroom (MB)", YLabel: "conformant loss ratio",
		Xs: mbAxis(o.Headrooms), Series: series,
	}, err
}

// hybridFigure builds the three-metric × buffer-sweep comparisons of
// §4.2 shared by Figures 8–10 (Case 1) and 11–13 (Case 2).
func hybridFigure(ctx context.Context, o *Options, id, title, ylabel string,
	cfgOf func(string, units.Bytes) *Options, metric func(Result) float64, extra []line) (Figure, error) {
	specs := []string{"hybrid+sharing", "wfq+sharing", "fifo+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines, line{
			label:  specLabel(spec),
			cfg:    func(x units.Bytes) *Options { return cfgOf(spec, x) },
			metric: metric,
		})
	}
	lines = append(lines, extra...)
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: id, Title: title,
		XLabel: "buffer (MB)", YLabel: ylabel,
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure8 regenerates "Hybrid System, Case 1: Aggregate throughput with
// Buffer Sharing".
func Figure8(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	return hybridFigure(ctx, o, "fig8", "Hybrid System, Case 1: Aggregate throughput with Buffer Sharing",
		"link utilization",
		func(spec string, x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
		utilization, nil)
}

// Figure9 regenerates "Hybrid System, Case 1: Loss for conformant flows
// with Buffer Sharing".
func Figure9(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	return hybridFigure(ctx, o, "fig9", "Hybrid System, Case 1: Loss for conformant flows with Buffer Sharing",
		"conformant loss ratio",
		func(spec string, x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
		conformantLoss, nil)
}

// Figure10 regenerates "Hybrid System, Case 1: Throughput for
// non-conformant flows with Buffer Sharing" (flows 6 and 8).
func Figure10(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	specs := []string{"hybrid+sharing", "wfq+sharing", "fifo+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		for _, flow := range []int{6, 8} {
			flow := flow
			lines = append(lines, line{
				label:  fmt.Sprintf("%s flow%d", specLabel(spec), flow),
				cfg:    func(x units.Bytes) *Options { return table1Cfg(spec, x, o.Headroom) },
				metric: flowThroughputMbps(flow),
			})
		}
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig10", Title: "Hybrid System, Case 1: Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "throughput (Mb/s)",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figure11 regenerates "Hybrid System, Case 2: Aggregate throughput
// with Buffer Sharing" (the 30-flow Table 2 workload).
func Figure11(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	return hybridFigure(ctx, o, "fig11", "Hybrid System, Case 2: Aggregate throughput with Buffer Sharing",
		"link utilization",
		func(spec string, x units.Bytes) *Options { return table2Cfg(spec, x, o.Headroom) },
		utilization, nil)
}

// Figure12 regenerates "Hybrid System, Case 2: Loss for conformant and
// moderately conformant flows with Buffer Sharing" (flows 0–19).
func Figure12(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i
	}
	return hybridFigure(ctx, o, "fig12", "Hybrid System, Case 2: Loss for conformant and moderately conformant flows",
		"loss ratio (flows 0-19)",
		func(spec string, x units.Bytes) *Options { return table2Cfg(spec, x, o.Headroom) },
		lossOver(ids), nil)
}

// Figure13 regenerates "Hybrid System, Case 2: Throughput for
// non-conformant flows with Buffer Sharing": mean per-flow throughput
// of the moderate (10–19) and aggressive (20–29) classes.
func Figure13(ctx context.Context, opts *Options) (Figure, error) {
	o := opts.sweepReady()
	moderate := make([]int, 10)
	aggressive := make([]int, 10)
	for i := 0; i < 10; i++ {
		moderate[i] = 10 + i
		aggressive[i] = 20 + i
	}
	specs := []string{"hybrid+sharing", "wfq+sharing", "fifo+sharing"}
	var lines []line
	for _, spec := range specs {
		spec := spec
		lines = append(lines,
			line{
				label:  specLabel(spec) + " moderate",
				cfg:    func(x units.Bytes) *Options { return table2Cfg(spec, x, o.Headroom) },
				metric: meanThroughputMbps(moderate),
			},
			line{
				label:  specLabel(spec) + " aggressive",
				cfg:    func(x units.Bytes) *Options { return table2Cfg(spec, x, o.Headroom) },
				metric: meanThroughputMbps(aggressive),
			},
		)
	}
	series, err := runLines(ctx, o, o.BufferSizes, lines)
	return Figure{
		ID: "fig13", Title: "Hybrid System, Case 2: Throughput for non-conformant flows with Buffer Sharing",
		XLabel: "buffer (MB)", YLabel: "mean per-flow throughput (Mb/s)",
		Xs: mbAxis(o.BufferSizes), Series: series,
	}, err
}

// Figures maps figure IDs to their runners.
var Figures = map[string]func(context.Context, *Options) (Figure, error){
	"fig1": Figure1, "fig2": Figure2, "fig3": Figure3,
	"fig4": Figure4, "fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
	"fig8": Figure8, "fig9": Figure9, "fig10": Figure10,
	"fig11": Figure11, "fig12": Figure12, "fig13": Figure13,
}

// FigureIDs returns the known figure IDs in order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Figures))
	for id := range Figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		var x, y int
		fmt.Sscanf(ids[a], "fig%d", &x)
		fmt.Sscanf(ids[b], "fig%d", &y)
		return x < y
	})
	return ids
}
