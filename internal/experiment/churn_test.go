package experiment

import (
	"context"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func churnTemplates() []FlowConfig {
	return []FlowConfig{
		{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(16),
				TokenRate:  units.MbitsPerSecond(2),
				BucketSize: units.KiloBytes(30),
			},
			AvgRate:     units.MbitsPerSecond(2),
			MeanBurst:   units.KiloBytes(30),
			Conformance: Conformant,
		},
		{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(24),
				TokenRate:  units.MbitsPerSecond(6),
				BucketSize: units.KiloBytes(60),
			},
			AvgRate:     units.MbitsPerSecond(6),
			MeanBurst:   units.KiloBytes(60),
			Conformance: Conformant,
		},
	}
}

func baseChurn() ChurnConfig {
	return ChurnConfig{
		Templates:   churnTemplates(),
		ArrivalRate: 2,
		MeanHold:    5,
		MaxFlows:    32,
		Buffer:      units.MegaBytes(2),
		Duration:    40,
		Warmup:      4,
		Seed:        1,
	}
}

func TestChurnBasicRun(t *testing.T) {
	res, err := RunChurn(context.Background(), baseChurn())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 40 {
		t.Fatalf("only %d requests in 40s at rate 2/s", res.Requests)
	}
	if res.Admitted+res.Blocked != res.Requests {
		t.Errorf("accounting: %d + %d != %d", res.Admitted, res.Blocked, res.Requests)
	}
	if res.BlockedBandwidth+res.BlockedBuffer != res.Blocked {
		t.Errorf("block split: %d + %d != %d", res.BlockedBandwidth, res.BlockedBuffer, res.Blocked)
	}
	if res.MeanActive <= 0 {
		t.Error("no flows ever active")
	}
	if res.Utilization <= 0 {
		t.Error("no traffic delivered")
	}
}

func TestChurnGuaranteesSurvivePopulationChanges(t *testing.T) {
	// The point of the experiment: every admitted (shaped) flow keeps
	// its guarantee through arrivals and departures of its neighbours.
	res, err := RunChurn(context.Background(), baseChurn())
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformantLoss > 1e-4 {
		t.Errorf("conformant loss %v under churn, want ≈ 0", res.ConformantLoss)
	}
}

func TestChurnBlockingGrowsWithLoad(t *testing.T) {
	light := baseChurn()
	light.ArrivalRate = 0.5
	lres, err := RunChurn(context.Background(), light)
	if err != nil {
		t.Fatal(err)
	}
	heavy := baseChurn()
	heavy.ArrivalRate = 10
	heavy.MeanHold = 8
	hres, err := RunChurn(context.Background(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hres.BlockingProbability <= lres.BlockingProbability {
		t.Errorf("blocking did not grow with load: light %v, heavy %v",
			lres.BlockingProbability, hres.BlockingProbability)
	}
	if hres.Blocked == 0 {
		t.Error("heavy churn load never blocked — admission control inert")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := RunChurn(context.Background(), baseChurn())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(context.Background(), baseChurn())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestChurnValidation(t *testing.T) {
	bad := []ChurnConfig{
		{},
		{Templates: churnTemplates()},
		{Templates: churnTemplates(), ArrivalRate: 1},
		{Templates: churnTemplates(), ArrivalRate: 1, MeanHold: 1},
	}
	for i, cfg := range bad {
		if _, err := RunChurn(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestChurnUtilizationTracksCarriedLoad(t *testing.T) {
	// Erlang sanity: carried load ≈ mean active flows × mean per-flow
	// rate; utilization should approximate that over the link rate.
	res, err := RunChurn(context.Background(), baseChurn())
	if err != nil {
		t.Fatal(err)
	}
	meanRate := (2e6 + 6e6) / 2
	expected := res.MeanActive * meanRate / 48e6
	if expected > 1 {
		expected = 1
	}
	if res.Utilization < expected*0.5 || res.Utilization > expected*1.5+0.05 {
		t.Errorf("utilization %v vs Erlang estimate %v", res.Utilization, expected)
	}
}
