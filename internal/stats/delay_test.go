package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
)

func TestDelayTrackerBasics(t *testing.T) {
	d := NewDelayTracker(1)
	for _, v := range []float64{0.001, 0.003, 0.002} {
		d.Add(v)
	}
	if d.Count() != 3 {
		t.Errorf("count = %d", d.Count())
	}
	if math.Abs(d.Mean()-0.002) > 1e-12 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Max() != 0.003 || d.Min() != 0.001 {
		t.Errorf("max/min = %v/%v", d.Max(), d.Min())
	}
}

func TestDelayTrackerEmpty(t *testing.T) {
	d := NewDelayTracker(0)
	if d.Mean() != 0 || d.Max() != 0 || d.Min() != 0 {
		t.Error("empty tracker should report zeros")
	}
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestDelayTrackerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewDelayTracker(1).Add(-0.001)
}

func TestDelayTrackerExactQuantiles(t *testing.T) {
	d := NewDelayTracker(1)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i) / 1000)
	}
	if got := d.Quantile(0.5); math.Abs(got-0.0505) > 1e-9 {
		t.Errorf("median = %v, want 0.0505", got)
	}
	if got := d.Quantile(1); got != 0.1 {
		t.Errorf("q1 = %v, want max", got)
	}
}

func TestDelayTrackerHistogramFallback(t *testing.T) {
	d := NewDelayTracker(1)
	d.exactLimit = 10 // force the histogram path quickly
	for i := 0; i < 10000; i++ {
		d.Add(float64(i%100) / 100) // uniform over [0, 0.99]
	}
	med := d.Quantile(0.5)
	if med < 0.45 || med > 0.55 {
		t.Errorf("approx median = %v, want ≈ 0.5", med)
	}
	p99 := d.Quantile(0.99)
	if p99 < 0.95 {
		t.Errorf("p99 = %v, want ≈ 0.99", p99)
	}
}

func TestDelayTrackerOverflowBin(t *testing.T) {
	d := NewDelayTracker(0.01)
	d.exactLimit = 1
	d.Add(0.5) // above histMax
	d.Add(0.5)
	if d.Quantile(0.9) != d.Max() {
		t.Errorf("overflow quantile = %v, want max", d.Quantile(0.9))
	}
}

func TestCollectorDelayIntegration(t *testing.T) {
	c := NewCollector(2, 1.0)
	c.EnableDelays(1)
	p := &packet.Packet{Flow: 0, Size: 500, Arrived: 2.0}
	c.Departed(p, 2.004)
	if got := c.Delays(0).Max(); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("recorded delay %v, want 0.004", got)
	}
	if c.MaxDelay() != c.Delays(0).Max() {
		t.Error("MaxDelay mismatch")
	}
	// Warmup filtering applies to delays too.
	early := &packet.Packet{Flow: 1, Size: 500, Arrived: 0.1}
	c.Departed(early, 0.2)
	if c.Delays(1).Count() != 0 {
		t.Error("warmup departure recorded a delay")
	}
}

func TestCollectorDelaysDisabled(t *testing.T) {
	c := NewCollector(1, 0)
	if c.Delays(0) != nil {
		t.Error("Delays should be nil before EnableDelays")
	}
	if c.MaxDelay() != 0 {
		t.Error("MaxDelay should be 0 when disabled")
	}
	// Departed must not crash with tracking off.
	c.Departed(&packet.Packet{Flow: 0, Size: 500}, 1)
}

// Property: mean ≤ max, min ≤ mean, and quantiles are monotone in q.
func TestPropertyDelayTracker(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDelayTracker(1)
		for _, r := range raw {
			d.Add(float64(r) / 65536)
		}
		if d.Mean() > d.Max()+1e-12 || d.Min() > d.Mean()+1e-12 {
			return false
		}
		last := -1.0
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := d.Quantile(q)
			if v < last-1e-12 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
