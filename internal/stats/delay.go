package stats

import (
	"math"
	"sort"
)

// DelayTracker accumulates queueing-delay statistics for one flow (or
// an aggregate): count, mean, maximum, and an exact reservoir-free
// record when small, switching to a fixed-resolution histogram when the
// sample count grows. The paper's §1 argues worst-case FIFO delay is
// bounded by B/R ("a 1MByte buffer feeding an OC-48 link is less than
// 3.5msec"); this tracker lets experiments check that bound.
type DelayTracker struct {
	count int64
	sum   float64
	max   float64
	min   float64
	// exact holds raw samples up to exactLimit, after which quantiles
	// come from the histogram.
	exact      []float64
	exactLimit int
	// histogram over [0, histMax) with fixed-width bins, plus an
	// overflow bin.
	histMax float64
	bins    []int64
	over    int64
}

// NewDelayTracker returns a tracker keeping up to 4096 exact samples
// and a 1024-bin histogram up to histMax seconds (pass 0 for a 1 s
// default).
func NewDelayTracker(histMax float64) *DelayTracker {
	if histMax <= 0 {
		histMax = 1.0
	}
	return &DelayTracker{
		min:        math.Inf(1),
		exactLimit: 4096,
		histMax:    histMax,
		bins:       make([]int64, 1024),
	}
}

// Add records one delay sample (seconds). Negative samples panic: a
// negative queueing delay is always a harness bug.
func (d *DelayTracker) Add(delay float64) {
	if delay < 0 {
		panic("stats: negative delay sample")
	}
	d.count++
	d.sum += delay
	if delay > d.max {
		d.max = delay
	}
	if delay < d.min {
		d.min = delay
	}
	if len(d.exact) < d.exactLimit {
		d.exact = append(d.exact, delay)
	}
	if delay >= d.histMax {
		d.over++
		return
	}
	idx := int(delay / d.histMax * float64(len(d.bins)))
	d.bins[idx]++
}

// Count returns the number of samples.
func (d *DelayTracker) Count() int64 { return d.count }

// Mean returns the average delay, 0 when empty.
func (d *DelayTracker) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Max returns the worst observed delay, 0 when empty.
func (d *DelayTracker) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// Min returns the smallest observed delay, 0 when empty.
func (d *DelayTracker) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Quantile returns the q-quantile of the recorded delays. While the
// sample count is within the exact window the answer is exact;
// afterwards it is approximated from the histogram (bin upper edge).
func (d *DelayTracker) Quantile(q float64) float64 {
	if d.count == 0 {
		return math.NaN()
	}
	if int64(len(d.exact)) == d.count {
		v := append([]float64(nil), d.exact...)
		sort.Float64s(v)
		return Quantile(v, q)
	}
	if q >= 1 {
		return d.max
	}
	if q < 0 {
		q = 0
	}
	target := int64(q * float64(d.count))
	var cum int64
	for i, n := range d.bins {
		cum += n
		if cum > target {
			return float64(i+1) / float64(len(d.bins)) * d.histMax
		}
	}
	return d.max
}
