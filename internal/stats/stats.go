// Package stats collects per-flow traffic statistics during a
// simulation run and aggregates results across independent runs.
//
// The paper reports aggregate throughput, per-flow loss for conformant
// traffic, and per-flow throughput for non-conformant flows, each
// averaged over 5 runs with 95% confidence intervals. This package
// implements exactly those measurements.
package stats

import (
	"fmt"
	"math"
	"sort"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// Counter accumulates a packet count and a byte count.
type Counter struct {
	Packets int64
	Bytes   units.Bytes
}

// Add records one packet of the given size.
func (c *Counter) Add(size units.Bytes) {
	c.Packets++
	c.Bytes += size
}

// ColorCounter splits a counter by the conformance color of packets.
type ColorCounter struct {
	Conformant Counter
	Excess     Counter
}

// Add records p in the sub-counter matching its color.
func (c *ColorCounter) Add(p *packet.Packet) {
	if p.Conformant {
		c.Conformant.Add(p.Size)
	} else {
		c.Excess.Add(p.Size)
	}
}

// Total returns the color-blind sum.
func (c *ColorCounter) Total() Counter {
	return Counter{
		Packets: c.Conformant.Packets + c.Excess.Packets,
		Bytes:   c.Conformant.Bytes + c.Excess.Bytes,
	}
}

// FlowStats holds the per-flow counters of one simulation run.
type FlowStats struct {
	// Offered counts packets that reached the multiplexer.
	Offered ColorCounter
	// Dropped counts packets rejected by the buffer manager.
	Dropped ColorCounter
	// Departed counts packets fully transmitted on the output link.
	Departed ColorCounter
}

// Collector gathers statistics for all flows of one run. Recording
// starts only after the warm-up time so transients do not bias the
// steady-state measurements.
type Collector struct {
	warmup float64
	// flows is a flat array indexed by flow id — one struct per flow,
	// no per-flow pointer chasing or allocation, so a collector for 10⁶
	// flows is a single contiguous block.
	flows  []FlowStats
	delays []*DelayTracker // nil unless EnableDelays was called
}

// NewCollector returns a collector for nflows flows that ignores all
// events before warmup (simulated seconds).
func NewCollector(nflows int, warmup float64) *Collector {
	return &Collector{warmup: warmup, flows: make([]FlowStats, nflows)}
}

// Warmup returns the warm-up boundary.
func (c *Collector) Warmup() float64 { return c.warmup }

// Flow returns the statistics of one flow.
func (c *Collector) Flow(id int) *FlowStats { return &c.flows[id] }

// NumFlows returns the number of flows tracked.
func (c *Collector) NumFlows() int { return len(c.flows) }

// Offered records a packet arrival at the multiplexer at time now.
func (c *Collector) Offered(p *packet.Packet, now float64) {
	if now >= c.warmup {
		c.flows[p.Flow].Offered.Add(p)
	}
}

// Dropped records a buffer-manager rejection at time now.
func (c *Collector) Dropped(p *packet.Packet, now float64) {
	if now >= c.warmup {
		c.flows[p.Flow].Dropped.Add(p)
	}
}

// Departed records a completed transmission at time now. When delay
// tracking is enabled, the packet's multiplexer queueing delay
// (now − Arrived) is recorded too.
func (c *Collector) Departed(p *packet.Packet, now float64) {
	if now >= c.warmup {
		c.flows[p.Flow].Departed.Add(p)
		if c.delays != nil {
			c.delays[p.Flow].Add(now - p.Arrived)
		}
	}
}

// EnableDelays turns on per-flow queueing-delay tracking with the given
// histogram ceiling (seconds; 0 for the 1 s default).
func (c *Collector) EnableDelays(histMax float64) {
	c.delays = make([]*DelayTracker, len(c.flows))
	for i := range c.delays {
		c.delays[i] = NewDelayTracker(histMax)
	}
}

// Delays returns flow's delay tracker, or nil when tracking is off.
func (c *Collector) Delays(flow int) *DelayTracker {
	if c.delays == nil {
		return nil
	}
	return c.delays[flow]
}

// MaxDelay returns the worst queueing delay across all flows, 0 when
// tracking is off or no departures were seen.
func (c *Collector) MaxDelay() float64 {
	var worst float64
	for _, d := range c.delays {
		if d != nil && d.Max() > worst {
			worst = d.Max()
		}
	}
	return worst
}

// FlowThroughput returns the delivered rate of one flow over the
// measurement interval [warmup, end].
func (c *Collector) FlowThroughput(id int, end float64) units.Rate {
	d := end - c.warmup
	if d <= 0 {
		return 0
	}
	return units.Rate(c.flows[id].Departed.Total().Bytes.Bits() / d)
}

// AggregateThroughput returns the total delivered rate over the
// measurement interval [warmup, end].
func (c *Collector) AggregateThroughput(end float64) units.Rate {
	var total units.Bytes
	for i := range c.flows {
		total += c.flows[i].Departed.Total().Bytes
	}
	d := end - c.warmup
	if d <= 0 {
		return 0
	}
	return units.Rate(total.Bits() / d)
}

// ConformantLossRatio returns dropped/offered for conformant traffic of
// the given flows (all flows when ids is empty). A flow set with no
// conformant offered traffic reports 0.
func (c *Collector) ConformantLossRatio(ids ...int) float64 {
	if len(ids) == 0 {
		ids = make([]int, len(c.flows))
		for i := range ids {
			ids[i] = i
		}
	}
	var dropped, offered units.Bytes
	for _, id := range ids {
		dropped += c.flows[id].Dropped.Conformant.Bytes
		offered += c.flows[id].Offered.Conformant.Bytes
	}
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// LossRatio returns total dropped/offered bytes for the given flows
// (all flows when ids is empty).
func (c *Collector) LossRatio(ids ...int) float64 {
	if len(ids) == 0 {
		ids = make([]int, len(c.flows))
		for i := range ids {
			ids[i] = i
		}
	}
	var dropped, offered units.Bytes
	for _, id := range ids {
		dropped += c.flows[id].Dropped.Total().Bytes
		offered += c.flows[id].Offered.Total().Bytes
	}
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// Summary is the cross-run aggregate of one scalar measurement.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	HalfCI95 float64 // half-width of the 95% confidence interval
}

// String formats the summary as "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.HalfCI95)
}

// RelativeCI returns HalfCI95/|Mean|, the precision measure the paper
// quotes ("confidence intervals ... within 10% of the results"). A zero
// mean reports 0 when the half-width is also zero, +Inf otherwise.
func (s Summary) RelativeCI() float64 {
	if s.Mean == 0 {
		if s.HalfCI95 == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.HalfCI95 / math.Abs(s.Mean)
}

// Summarize computes mean, sample standard deviation, and the 95%
// Student-t confidence half-width of the values.
func Summarize(values []float64) Summary {
	n := len(values)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	ss := 0.0
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	ci := tQuantile95(n-1) * sd / math.Sqrt(float64(n))
	return Summary{N: n, Mean: mean, StdDev: sd, HalfCI95: ci}
}

// tQuantile95 returns the two-sided 95% Student-t quantile for the given
// degrees of freedom.
func tQuantile95(df int) float64 {
	// Two-sided 0.975 quantiles for df = 1..30.
	table := []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960 // normal approximation for large df
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using linear
// interpolation. It copies and sorts its input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(v) {
		return v[len(v)-1]
	}
	return v[lo]*(1-frac) + v[lo+1]*frac
}
