package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func pkt(flow int, size units.Bytes, conf bool) *packet.Packet {
	return &packet.Packet{Flow: flow, Size: size, Conformant: conf}
}

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(500)
	c.Add(300)
	if c.Packets != 2 || c.Bytes != 800 {
		t.Errorf("counter = %+v, want {2 800}", c)
	}
}

func TestColorCounter(t *testing.T) {
	var c ColorCounter
	c.Add(pkt(0, 500, true))
	c.Add(pkt(0, 300, false))
	c.Add(pkt(0, 200, false))
	if c.Conformant.Bytes != 500 || c.Excess.Bytes != 500 {
		t.Errorf("split = %+v", c)
	}
	total := c.Total()
	if total.Packets != 3 || total.Bytes != 1000 {
		t.Errorf("total = %+v, want {3 1000}", total)
	}
}

func TestCollectorWarmupFilter(t *testing.T) {
	c := NewCollector(1, 5.0)
	c.Offered(pkt(0, 100, true), 4.999) // before warmup: ignored
	c.Offered(pkt(0, 100, true), 5.0)   // at boundary: counted
	c.Offered(pkt(0, 100, true), 6.0)
	if got := c.Flow(0).Offered.Total().Packets; got != 2 {
		t.Errorf("offered packets = %d, want 2", got)
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector(2, 1.0)
	// Flow 0 delivers 1,000,000 bytes over [1, 9]: 1 Mbps.
	for i := 0; i < 2000; i++ {
		c.Departed(pkt(0, 500, true), 2.0)
	}
	got := c.FlowThroughput(0, 9.0)
	if math.Abs(got.Mbits()-1.0) > 1e-9 {
		t.Errorf("flow throughput = %v, want 1Mb/s", got)
	}
	agg := c.AggregateThroughput(9.0)
	if agg != got {
		t.Errorf("aggregate %v != flow0 %v with one active flow", agg, got)
	}
}

func TestThroughputDegenerateInterval(t *testing.T) {
	c := NewCollector(1, 5.0)
	if c.FlowThroughput(0, 5.0) != 0 || c.AggregateThroughput(4.0) != 0 {
		t.Error("degenerate measurement interval should report 0")
	}
}

func TestConformantLossRatio(t *testing.T) {
	c := NewCollector(2, 0)
	// Flow 0: 4 conformant offered, 1 dropped -> 25% conformant loss.
	for i := 0; i < 4; i++ {
		c.Offered(pkt(0, 500, true), 1)
	}
	c.Dropped(pkt(0, 500, true), 1)
	// Flow 1 excess traffic must not affect the conformant ratio.
	c.Offered(pkt(1, 500, false), 1)
	c.Dropped(pkt(1, 500, false), 1)

	if got := c.ConformantLossRatio(0); got != 0.25 {
		t.Errorf("flow 0 conformant loss = %v, want 0.25", got)
	}
	if got := c.ConformantLossRatio(); got != 0.25 {
		t.Errorf("all-flow conformant loss = %v, want 0.25 (flow 1 has no conformant traffic)", got)
	}
	if got := c.ConformantLossRatio(1); got != 0 {
		t.Errorf("flow 1 conformant loss = %v, want 0", got)
	}
}

func TestLossRatioAllTraffic(t *testing.T) {
	c := NewCollector(1, 0)
	c.Offered(pkt(0, 500, true), 1)
	c.Offered(pkt(0, 500, false), 1)
	c.Dropped(pkt(0, 500, false), 1)
	if got := c.LossRatio(0); got != 0.5 {
		t.Errorf("loss ratio = %v, want 0.5", got)
	}
	if got := c.LossRatio(); got != 0.5 {
		t.Errorf("default-ids loss ratio = %v, want 0.5", got)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample sd of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("sd = %v, want %v", s.StdDev, want)
	}
	if s.HalfCI95 <= 0 {
		t.Errorf("ci = %v, want > 0", s.HalfCI95)
	}
}

func TestSummarizeFiveRuns(t *testing.T) {
	// n=5 is the paper's run count; t(4, 0.975) = 2.776.
	vals := []float64{10, 11, 9, 10.5, 9.5}
	s := Summarize(vals)
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	sd := s.StdDev
	want := 2.776 * sd / math.Sqrt(5)
	if math.Abs(s.HalfCI95-want) > 1e-12 {
		t.Errorf("ci = %v, want %v", s.HalfCI95, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summarize = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.HalfCI95 != 0 {
		t.Errorf("single-value summarize = %+v", s)
	}
}

func TestRelativeCI(t *testing.T) {
	s := Summary{Mean: 10, HalfCI95: 1}
	if s.RelativeCI() != 0.1 {
		t.Errorf("RelativeCI = %v, want 0.1", s.RelativeCI())
	}
	z := Summary{Mean: 0, HalfCI95: 0}
	if z.RelativeCI() != 0 {
		t.Errorf("zero/zero RelativeCI = %v, want 0", z.RelativeCI())
	}
	inf := Summary{Mean: 0, HalfCI95: 1}
	if !math.IsInf(inf.RelativeCI(), 1) {
		t.Errorf("x/0 RelativeCI = %v, want +Inf", inf.RelativeCI())
	}
}

func TestTQuantileTable(t *testing.T) {
	if got := tQuantile95(4); got != 2.776 {
		t.Errorf("t(4) = %v, want 2.776", got)
	}
	if got := tQuantile95(100); got != 1.960 {
		t.Errorf("t(100) = %v, want 1.960", got)
	}
	if !math.IsNaN(tQuantile95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Errorf("input mutated: %v", v)
	}
}

// Property: the sample mean lies within the data range, and CI width is
// non-negative.
func TestPropertySummarize(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r)
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		s := Summarize(vals)
		return s.Mean >= lo-1e-9 && s.Mean <= hi+1e-9 && s.HalfCI95 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
