package network

import (
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
)

func TestDeliveryAckerReordersAndCounts(t *testing.T) {
	s := sim.New()
	d := NewDeliveryLight(s, 2)
	var acks []uint64
	d.SetAcker(1, 40, func(p *packet.Packet) {
		if !p.Ack || p.Size != 40 || p.Flow != 1 {
			t.Fatalf("malformed ack %+v", p)
		}
		acks = append(acks, p.AckSeq)
	})
	recv := func(seq uint64) {
		d.Receive(&packet.Packet{Flow: 1, Size: 500, Seq: seq})
	}
	// In order, a gap, the gap's dupacks, the fill, a stale duplicate.
	recv(0)
	recv(2) // hole at 1: held out of order
	recv(3)
	recv(1) // fills the hole: cumulative jump to 4
	recv(1) // stale copy
	want := []uint64{1, 1, 1, 4, 4}
	if len(acks) != len(want) {
		t.Fatalf("acks %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks %v, want %v", acks, want)
		}
	}
	if g := d.Goodput(1); g.Packets != 4 || g.Bytes != 2000 {
		t.Errorf("goodput %+v, want 4 pkts / 2000 B", g)
	}
	if d.Duplicates(1) != 1 {
		t.Errorf("duplicates %d, want 1", d.Duplicates(1))
	}
	// Raw delivery counters still include the duplicate copy.
	if d.Packets(1) != 5 {
		t.Errorf("raw delivered %d, want 5", d.Packets(1))
	}
	// Unregistered flows report zero goodput.
	if g := d.Goodput(0); g.Packets != 0 {
		t.Errorf("flow 0 goodput %+v", g)
	}
}

func TestRouterSliceRoutes(t *testing.T) {
	// Forwarded and forward must tolerate flow IDs beyond any SetRoute
	// call (the slice conversion's out-of-range path).
	s := sim.New()
	r := NewRouter(s, "r", 1e9, sched.NewFIFO(), buffer.NewTailDrop(1000, 1), nil, 0)
	if got := r.Forwarded(99); got != 0 {
		t.Errorf("Forwarded(99)=%d before any route", got)
	}
	r.SetRoute(3, func(*packet.Packet) {})
	r.SetRoute(3, nil)  // un-route
	r.SetRoute(99, nil) // no-op beyond current length
	if got := r.Forwarded(3); got != 0 {
		t.Errorf("Forwarded(3)=%d", got)
	}
}
