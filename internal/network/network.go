// Package network composes single-link routers into multi-hop paths.
// The paper analyses one multiplexing point; a backbone deployment of
// its scheme puts one threshold-managed FIFO at every output port. This
// package provides exactly that: store-and-forward routers whose
// departed packets are handed to per-flow next hops (with optional
// propagation delay), plus end-to-end delivery statistics, so the
// per-node guarantees can be studied in tandem.
package network

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// Router is one store-and-forward hop: an output link (scheduler +
// buffer manager) plus a per-flow routing table that delivers departed
// packets to their next hop.
type Router struct {
	Name string

	sim  *sim.Simulator
	link *sched.Link
	col  *stats.Collector
	// next and nhops are indexed by flow ID, grown on demand — flow IDs
	// are dense small integers, so slice indexing replaces the former
	// per-flow map lookups on the forwarding hot path (the CSR
	// flow-table convention). A nil entry means the flow terminates
	// here.
	next  []func(p *packet.Packet)
	prop  float64
	nhops []int64 // diagnostics: how many packets forwarded per flow
}

// NewRouter builds a hop. col may be nil; prop is the propagation delay
// (seconds) added when forwarding to the next hop.
func NewRouter(s *sim.Simulator, name string, rate units.Rate, scheduler sched.Scheduler,
	mgr buffer.Manager, col *stats.Collector, prop float64) *Router {
	if prop < 0 {
		panic(fmt.Sprintf("network: negative propagation delay %v", prop))
	}
	r := &Router{
		Name: name,
		sim:  s,
		col:  col,
		prop: prop,
	}
	r.link = sched.NewLink(s, rate, scheduler, mgr, col)
	r.link.OnDepart = r.forward
	return r
}

// NewRouterSpec builds a hop from a scheme-registry spec string (e.g.
// "fifo+threshold", "wfq+sharing", "fifo+red?min=0.2"), so a multi-hop
// path can mix schemes per hop with the exact builders the experiment
// layer uses. cfg describes the hop's link (flows, rate, buffer); its
// Now field defaults to the simulator clock. col may be nil; prop is
// the propagation delay (seconds) to the next hop.
func NewRouterSpec(s *sim.Simulator, name, spec string, cfg scheme.Config,
	col *stats.Collector, prop float64) (*Router, error) {
	if prop < 0 {
		return nil, fmt.Errorf("network: router %s: negative propagation delay %v", name, prop)
	}
	sc, err := scheme.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("network: router %s: %w", name, err)
	}
	if cfg.Now == nil {
		cfg.Now = s.Now
	}
	mgr, scheduler, err := sc.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("network: router %s: %w", name, err)
	}
	return NewRouter(s, name, cfg.LinkRate, scheduler, mgr, col, prop), nil
}

// Link exposes the router's output link (for occupancy inspection or
// extra hooks — note OnDepart is owned by the router).
func (r *Router) Link() *sched.Link { return r.link }

// Collector returns the per-hop statistics collector (may be nil).
func (r *Router) Collector() *stats.Collector { return r.col }

// Receive implements source.Sink: packets enter the router's output
// queue (ingress processing is not modelled, as in the paper).
func (r *Router) Receive(p *packet.Packet) { r.link.Receive(p) }

// SetRoute directs departed packets of flow to next. A nil next means
// the flow terminates here.
func (r *Router) SetRoute(flow int, next func(p *packet.Packet)) {
	if flow >= len(r.next) {
		if next == nil {
			return
		}
		grown := make([]func(p *packet.Packet), flow+1)
		copy(grown, r.next)
		r.next = grown
		hops := make([]int64, flow+1)
		copy(hops, r.nhops)
		r.nhops = hops
	}
	r.next[flow] = next
}

// Forwarded returns how many of flow's packets this router has handed
// to a next hop so far (packets terminating here, or departing with no
// route set, are not counted).
func (r *Router) Forwarded(flow int) int64 {
	if flow >= len(r.nhops) {
		return 0
	}
	return r.nhops[flow]
}

func (r *Router) forward(p *packet.Packet) {
	if p.Flow >= len(r.next) {
		return
	}
	next := r.next[p.Flow]
	if next == nil {
		return
	}
	r.nhops[p.Flow]++
	if r.prop == 0 {
		// Forward within the same event: the packet arrives at the next
		// hop the instant its last bit leaves this one.
		p.Arrived = r.sim.Now()
		next(p)
		return
	}
	r.sim.After(r.prop, func() {
		p.Arrived = r.sim.Now()
		next(p)
	})
}

// Delivery records end-to-end completions at the far end of a path.
type Delivery struct {
	sim *sim.Simulator
	// per-flow counters
	packets []int64
	bytes   []units.Bytes
	dsum    []float64 // running delay sum (exact: same additions in both modes)
	dmax    []float64
	delays  []*stats.DelayTracker // nil in light mode
	// tcp is a flat array indexed by flow ID (one contiguous block, no
	// per-flow pointers), nil until a flow registers an acker; an entry
	// with a nil ack callback is open-loop.
	tcp []tcpEndpoint
}

// tcpEndpoint is the receive side of one closed-loop flow: it reorders
// by sequence number, counts goodput (first copies only) separately
// from raw deliveries, and answers every data segment with a cumulative
// acknowledgement handed to the registered ack callback.
type tcpEndpoint struct {
	ackSize units.Bytes
	ack     func(p *packet.Packet)
	rcvNxt  uint64        // next expected sequence number
	ooo     seqBitmap     // out-of-order segments held for reassembly
	ackSeq  uint64        // monotone Seq for emitted ACK packets
	goodput stats.Counter // unique in-order-reassembled data
	dups    int64         // duplicate copies discarded
}

// seqBitmap marks which out-of-order sequence numbers a receiver holds,
// in a power-of-two ring of bits indexed by the sequence number. Every
// set bit lies in [rcvNxt, rcvNxt + capacity); the ring grows by
// doubling when a segment lands beyond it. It replaces a
// map[uint64]bool whose per-segment hashing dominated the reassembly
// path and whose per-entry overhead (~50 bytes) dwarfed the one bit of
// information — at 10⁶ concurrent receivers the difference is what
// keeps memory O(flows).
type seqBitmap struct {
	words []uint64
}

func (b *seqBitmap) nbits() uint64 { return uint64(len(b.words)) * 64 }

// has reports whether seq's bit is set. base is the window anchor
// (rcvNxt); sequences at or beyond base+capacity cannot be stored and
// report false without touching the ring (guarding against slot
// collisions with live bits).
func (b *seqBitmap) has(base, seq uint64) bool {
	if n := b.nbits(); n == 0 || seq >= base+n {
		return false
	}
	i := seq & (b.nbits() - 1)
	return b.words[i/64]&(1<<(i%64)) != 0
}

// set marks seq, growing the ring until [base, seq] fits.
func (b *seqBitmap) set(base, seq uint64) {
	if need := seq - base + 1; need > b.nbits() {
		b.grow(base, need)
	}
	i := seq & (b.nbits() - 1)
	b.words[i/64] |= 1 << (i % 64)
}

// clear unmarks seq (a no-op when it was never set).
func (b *seqBitmap) clear(seq uint64) {
	if b.nbits() == 0 {
		return
	}
	i := seq & (b.nbits() - 1)
	b.words[i/64] &^= 1 << (i % 64)
}

// grow doubles the ring until it covers need bits, re-homing the live
// window's set bits under the new mask.
func (b *seqBitmap) grow(base, need uint64) {
	size := uint64(64)
	for size < need {
		size *= 2
	}
	words := make([]uint64, size/64)
	for s := base; s < base+b.nbits(); s++ {
		if b.has(base, s) {
			i := s & (size - 1)
			words[i/64] |= 1 << (i % 64)
		}
	}
	b.words = words
}

// receive processes one data segment and emits the cumulative ACK.
func (r *tcpEndpoint) receive(d *Delivery, p *packet.Packet) {
	switch {
	case p.Seq < r.rcvNxt || r.ooo.has(r.rcvNxt, p.Seq):
		r.dups++
	case p.Seq == r.rcvNxt:
		r.goodput.Add(p.Size)
		r.rcvNxt++
		for r.ooo.has(r.rcvNxt, r.rcvNxt) {
			r.ooo.clear(r.rcvNxt)
			r.rcvNxt++
		}
	default:
		r.goodput.Add(p.Size)
		r.ooo.set(r.rcvNxt, p.Seq)
	}
	now := d.sim.Now()
	ap := &packet.Packet{
		Flow:    p.Flow,
		Size:    r.ackSize,
		Created: now,
		Arrived: now,
		Seq:     r.ackSeq,
		Ack:     true,
		AckSeq:  r.rcvNxt,
	}
	r.ackSeq++
	r.ack(ap)
}

// NewDelivery builds an end-to-end sink for nflows flows with full
// per-flow delay tracking (histogram + exact-sample quantiles).
func NewDelivery(s *sim.Simulator, nflows int) *Delivery {
	d := NewDeliveryLight(s, nflows)
	d.delays = make([]*stats.DelayTracker, nflows)
	for i := range d.delays {
		d.delays[i] = stats.NewDelayTracker(0)
	}
	return d
}

// NewDeliveryLight builds a sink that records only each flow's count,
// byte volume, delay sum, and delay maximum — no histograms or sample
// reservoirs. With 10⁵ flows the full trackers cost tens of kilobytes
// each; the light mode keeps MeanDelay and MaxDelay bit-identical to the
// full mode (the same float additions in the same order) at 32 bytes per
// flow. Delay returns nil for every flow in this mode.
func NewDeliveryLight(s *sim.Simulator, nflows int) *Delivery {
	return &Delivery{
		sim:     s,
		packets: make([]int64, nflows),
		bytes:   make([]units.Bytes, nflows),
		dsum:    make([]float64, nflows),
		dmax:    make([]float64, nflows),
	}
}

// NumFlows returns how many flows the delivery sink tracks.
func (d *Delivery) NumFlows() int { return len(d.packets) }

// Receive implements the forwarding signature: record the completion.
// A packet whose flow ID is outside the sink's range panics with a
// message naming the flow — a topology that forwards an unknown flow is
// a wiring bug, and the bare index-out-of-range panic it used to cause
// gave no hint which flow was misrouted.
func (d *Delivery) Receive(p *packet.Packet) {
	if p.Flow < 0 || p.Flow >= len(d.packets) {
		panic(fmt.Sprintf("network: delivery received packet of unknown flow %d (tracking flows 0..%d); check the topology's routes", p.Flow, len(d.packets)-1))
	}
	d.packets[p.Flow]++
	d.bytes[p.Flow] += p.Size
	delay := d.sim.Now() - p.Created
	d.dsum[p.Flow] += delay
	if delay > d.dmax[p.Flow] {
		d.dmax[p.Flow] = delay
	}
	if d.delays != nil {
		d.delays[p.Flow].Add(delay)
	}
	if d.tcp != nil {
		if r := &d.tcp[p.Flow]; r.ack != nil {
			r.receive(d, p)
		}
	}
}

// SetAcker registers flow as closed-loop: every delivered data segment
// is answered with a cumulative acknowledgement packet of the given
// size, handed to ack at delivery time. The caller routes the ACK back
// towards the source (typically across the flow's reverse path delay).
func (d *Delivery) SetAcker(flow int, ackSize units.Bytes, ack func(p *packet.Packet)) {
	if d.tcp == nil {
		d.tcp = make([]tcpEndpoint, len(d.packets))
	}
	d.tcp[flow] = tcpEndpoint{ackSize: ackSize, ack: ack}
}

// Goodput returns flow's unique delivered data — retransmitted copies
// counted once — which is the throughput measure the GFR comparison
// uses. It is zero (and meaningless) for flows without an acker.
func (d *Delivery) Goodput(flow int) stats.Counter {
	if d.tcp == nil || d.tcp[flow].ack == nil {
		return stats.Counter{}
	}
	return d.tcp[flow].goodput
}

// Duplicates returns how many redundant copies flow's receiver
// discarded.
func (d *Delivery) Duplicates(flow int) int64 {
	if d.tcp == nil || d.tcp[flow].ack == nil {
		return 0
	}
	return d.tcp[flow].dups
}

// Packets returns flow's delivered packet count.
func (d *Delivery) Packets(flow int) int64 { return d.packets[flow] }

// Bytes returns flow's delivered volume.
func (d *Delivery) Bytes(flow int) units.Bytes { return d.bytes[flow] }

// Throughput returns flow's delivered rate over [0, now].
func (d *Delivery) Throughput(flow int) units.Rate {
	if d.sim.Now() == 0 {
		return 0
	}
	return units.Rate(d.bytes[flow].Bits() / d.sim.Now())
}

// Delay returns flow's end-to-end delay tracker (source departure to
// final delivery), or nil for a light-mode sink.
func (d *Delivery) Delay(flow int) *stats.DelayTracker {
	if d.delays == nil {
		return nil
	}
	return d.delays[flow]
}

// MeanDelay returns flow's average end-to-end delay in seconds (0 when
// nothing was delivered). Available in both full and light modes, with
// bit-identical values.
func (d *Delivery) MeanDelay(flow int) float64 {
	if d.packets[flow] == 0 {
		return 0
	}
	return d.dsum[flow] / float64(d.packets[flow])
}

// MaxDelay returns flow's worst end-to-end delay in seconds.
func (d *Delivery) MaxDelay(flow int) float64 { return d.dmax[flow] }

// DelaySum returns flow's total accumulated delay in seconds. Sharded
// engines merge per-shard sinks by adding sums (a flow delivers on
// exactly one shard, so the others contribute exact zeros).
func (d *Delivery) DelaySum(flow int) float64 { return d.dsum[flow] }

// Path wires a chain of routers for a set of flows: every flow entering
// at the head traverses all hops and terminates in the Delivery sink.
type Path struct {
	Routers  []*Router
	Delivery *Delivery
}

// NewPath connects routers head-to-tail for flows 0..nflows-1 and
// attaches a Delivery at the end.
func NewPath(s *sim.Simulator, routers []*Router, nflows int) *Path {
	if len(routers) == 0 {
		panic("network: empty path")
	}
	d := NewDelivery(s, nflows)
	for i, r := range routers {
		for flow := 0; flow < nflows; flow++ {
			if i+1 < len(routers) {
				next := routers[i+1]
				r.SetRoute(flow, next.Receive)
			} else {
				r.SetRoute(flow, d.Receive)
			}
		}
	}
	return &Path{Routers: routers, Delivery: d}
}

// Head returns the path's entry sink.
func (p *Path) Head() *Router { return p.Routers[0] }
