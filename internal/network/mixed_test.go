package network

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// mixedResult summarizes one mixed-scheme path run for the determinism
// comparison: delivered volume and packet counts per flow, plus per-hop
// drop and forward counts.
type mixedResult struct {
	Bytes     []units.Bytes
	Packets   []int64
	Drops     []int64
	Forwarded []int64
}

// runMixedPath drives three shaped on/off flows through a two-hop path
// whose hops use different registry specs — fixed thresholds at hop 1,
// WFQ with headroom sharing at hop 2 — and returns the end-to-end
// delivery statistics.
func runMixedPath(t *testing.T, seed int64) mixedResult {
	t.Helper()
	s := sim.New()
	linkRate := units.MbitsPerSecond(48)
	mk := func(peak, tok, bucketKB float64) packet.FlowSpec {
		return packet.FlowSpec{
			PeakRate:   units.MbitsPerSecond(peak),
			TokenRate:  units.MbitsPerSecond(tok),
			BucketSize: units.KiloBytes(bucketKB),
		}
	}
	specs := []packet.FlowSpec{mk(16, 2, 50), mk(40, 8, 100), mk(16, 4, 50)}
	cfg := scheme.Config{
		Specs:    specs,
		LinkRate: linkRate,
		Buffer:   units.KiloBytes(500),
		Headroom: units.KiloBytes(100),
		Seed:     seed,
	}
	r1, err := NewRouterSpec(s, "hop1", "fifo+threshold", cfg, stats.NewCollector(len(specs), 0), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouterSpec(s, "hop2", "wfq+sharing", cfg, stats.NewCollector(len(specs), 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	path := NewPath(s, []*Router{r1, r2}, len(specs))

	for i, spec := range specs {
		rng := sim.NewRand(sim.DeriveSeed(seed, i))
		sh := source.NewShaper(s, spec, path.Head())
		src := source.NewOnOff(s, rng, source.OnOffConfig{
			Flow:       i,
			PacketSize: 500,
			PeakRate:   spec.PeakRate,
			AvgRate:    spec.TokenRate,
			MeanBurst:  spec.BucketSize,
		}, sh)
		src.Start()
	}
	s.RunUntil(5)

	res := mixedResult{
		Bytes:   make([]units.Bytes, len(specs)),
		Packets: make([]int64, len(specs)),
	}
	for i := range specs {
		res.Bytes[i] = path.Delivery.Bytes(i)
		res.Packets[i] = path.Delivery.Packets(i)
	}
	for _, r := range path.Routers {
		var drops int64
		for i := range specs {
			drops += r.Collector().Flow(i).Dropped.Total().Packets
		}
		res.Drops = append(res.Drops, drops)
	}
	return res
}

// TestMixedSchemePathDeterministicAcrossSeeds: a path mixing two
// different registry specs per hop delivers sane end-to-end statistics,
// and rebuilding the identical scenario from its spec strings is
// bit-deterministic for every seed.
func TestMixedSchemePathDeterministicAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := runMixedPath(t, seed)
		b := runMixedPath(t, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: identical mixed-scheme runs diverged:\n%+v\n%+v", seed, a, b)
		}
		var total units.Bytes
		for i, bytes := range a.Bytes {
			if bytes <= 0 || a.Packets[i] <= 0 {
				t.Errorf("seed %d: flow %d delivered nothing end-to-end", seed, i)
			}
			total += bytes
		}
		// Shaped token rates sum to 14 Mb/s — delivery must stay inside
		// the link capacity but carry a meaningful share of the offer.
		if got := total.Bits() / 5; got > 48e6 {
			t.Errorf("seed %d: delivered %v b/s above the 48 Mb/s link", seed, got)
		} else if got < 1e6 {
			t.Errorf("seed %d: delivered only %v b/s end-to-end", seed, got)
		}
	}
}

// TestRouterSpecErrors: bad specs and unbuildable configs surface as
// errors, naming the hop.
func TestRouterSpecErrors(t *testing.T) {
	s := sim.New()
	cfg := scheme.Config{
		Specs:    []packet.FlowSpec{{TokenRate: units.MbitsPerSecond(2), BucketSize: 1000}},
		LinkRate: units.MbitsPerSecond(48),
		Buffer:   units.KiloBytes(100),
	}
	if _, err := NewRouterSpec(s, "bad", "bogus+threshold", cfg, nil, 0); err == nil {
		t.Error("unknown spec built a router")
	}
	// hybrid needs a queue map; the Build error must propagate.
	if _, err := NewRouterSpec(s, "bad", "hybrid+sharing", cfg, nil, 0); err == nil {
		t.Error("hybrid without a queue map built a router")
	}
	// A negative propagation delay is a spec error, not a panic.
	_, err := NewRouterSpec(s, "hop7", "fifo+threshold", cfg, nil, -0.001)
	if err == nil {
		t.Fatal("negative propagation delay built a router")
	}
	if !strings.Contains(err.Error(), "hop7") || !strings.Contains(err.Error(), "propagation") {
		t.Errorf("error %q should name the hop and the bad propagation delay", err)
	}
	// An invalid flow spec fails the scheme build (threshold computation).
	bad := cfg
	bad.Specs = []packet.FlowSpec{{TokenRate: -1}}
	if _, err := NewRouterSpec(s, "bad", "fifo+threshold", bad, nil, 0); err == nil {
		t.Error("negative token rate built a router")
	}
}

// runThreeHopMixedPath drives the three shaped flows of runMixedPath
// through a three-hop path mixing three different registry specs, and
// returns the end-to-end delivery counters plus per-hop forward counts.
func runThreeHopMixedPath(t *testing.T, seed int64) mixedResult {
	t.Helper()
	s := sim.New()
	mk := func(peak, tok, bucketKB float64) packet.FlowSpec {
		return packet.FlowSpec{
			PeakRate:   units.MbitsPerSecond(peak),
			TokenRate:  units.MbitsPerSecond(tok),
			BucketSize: units.KiloBytes(bucketKB),
		}
	}
	specs := []packet.FlowSpec{mk(16, 2, 50), mk(40, 8, 100), mk(16, 4, 50)}
	cfg := scheme.Config{
		Specs:    specs,
		LinkRate: units.MbitsPerSecond(48),
		Buffer:   units.KiloBytes(500),
		Headroom: units.KiloBytes(100),
		Seed:     seed,
	}
	var routers []*Router
	for i, spec := range []string{"fifo+threshold", "wfq+sharing", "drr+dynthresh?alpha=2"} {
		r, err := NewRouterSpec(s, fmt.Sprintf("hop%d", i), spec, cfg,
			stats.NewCollector(len(specs), 0), 0.0005*float64(i))
		if err != nil {
			t.Fatal(err)
		}
		routers = append(routers, r)
	}
	path := NewPath(s, routers, len(specs))
	for i, spec := range specs {
		rng := sim.NewRand(sim.DeriveSeed(seed, i))
		sh := source.NewShaper(s, spec, path.Head())
		src := source.NewOnOff(s, rng, source.OnOffConfig{
			Flow:       i,
			PacketSize: 500,
			PeakRate:   spec.PeakRate,
			AvgRate:    spec.TokenRate,
			MeanBurst:  spec.BucketSize,
		}, sh)
		src.Start()
	}
	s.RunUntil(5)

	res := mixedResult{
		Bytes:   make([]units.Bytes, len(specs)),
		Packets: make([]int64, len(specs)),
	}
	for i := range specs {
		res.Bytes[i] = path.Delivery.Bytes(i)
		res.Packets[i] = path.Delivery.Packets(i)
	}
	for _, r := range path.Routers {
		var drops, fwd int64
		for i := range specs {
			drops += r.Collector().Flow(i).Dropped.Total().Packets
			fwd += r.Forwarded(i)
		}
		res.Drops = append(res.Drops, drops)
		res.Forwarded = append(res.Forwarded, fwd)
	}
	return res
}

// TestThreeHopMixedSchemeDeterministicAcrossWorkers: running the same
// seeds of a three-hop mixed-scheme path on the experiment worker pool
// yields bit-identical Delivery counters for any worker count.
func TestThreeHopMixedSchemeDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{2, 13, 29, 31, 47, 53}
	want := make([]mixedResult, len(seeds))
	for i, seed := range seeds {
		want[i] = runThreeHopMixedPath(t, seed)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := make([]mixedResult, len(seeds))
		err := experiment.ForEachJob(context.Background(), workers, len(seeds), nil, nil, func(i int) error {
			got[i] = runThreeHopMixedPath(t, seeds[i])
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results diverged from sequential baseline:\n%+v\n%+v", workers, got, want)
		}
	}
}
