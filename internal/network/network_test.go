package network

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

func fifoRouter(s *sim.Simulator, name string, rate units.Rate, buf units.Bytes, nflows int, prop float64) *Router {
	return NewRouter(s, name, rate, sched.NewFIFO(),
		buffer.NewTailDrop(buf, nflows), stats.NewCollector(nflows, 0), prop)
}

func TestPathDeliversEndToEnd(t *testing.T) {
	s := sim.New()
	r1 := fifoRouter(s, "r1", units.MbitsPerSecond(48), units.MegaBytes(1), 1, 0)
	r2 := fifoRouter(s, "r2", units.MbitsPerSecond(48), units.MegaBytes(1), 1, 0)
	path := NewPath(s, []*Router{r1, r2}, 1)

	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(8), path.Head())
	src.Start()
	s.RunUntil(2)
	src.Stop()
	s.Run(0) // drain in-flight packets

	sent := int64(src.Seq())
	if got := path.Delivery.Packets(0); got != sent {
		t.Errorf("delivered %d of %d packets end-to-end", got, sent)
	}
	// Both hops saw every packet.
	for _, r := range path.Routers {
		if got := r.Collector().Flow(0).Departed.Total().Packets; got != sent {
			t.Errorf("%s departed %d, want %d", r.Name, got, sent)
		}
	}
}

func TestEndToEndDelayIsSumOfHops(t *testing.T) {
	// Uncontended 2-hop path: end-to-end delay is exactly two
	// transmission times plus the propagation delays.
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	const prop = 0.003
	r1 := fifoRouter(s, "r1", rate, units.MegaBytes(1), 1, prop)
	r2 := fifoRouter(s, "r2", rate, units.MegaBytes(1), 1, prop)
	path := NewPath(s, []*Router{r1, r2}, 1)

	// One isolated packet.
	p := &packet.Packet{Flow: 0, Size: 500, Created: 0, Arrived: 0}
	path.Head().Receive(p)
	s.Run(0)

	want := 2*units.TransmissionTime(500, rate) + 2*prop
	got := path.Delivery.Delay(0).Max()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("end-to-end delay %v, want %v", got, want)
	}
}

func TestBottleneckDropsAtSecondHop(t *testing.T) {
	// Hop 1 fast, hop 2 half the rate with a small buffer: losses occur
	// only at hop 2.
	s := sim.New()
	r1 := fifoRouter(s, "fast", units.MbitsPerSecond(48), units.MegaBytes(1), 1, 0)
	r2 := fifoRouter(s, "slow", units.MbitsPerSecond(24), units.KiloBytes(20), 1, 0)
	path := NewPath(s, []*Router{r1, r2}, 1)
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(40), path.Head())
	src.Start()
	s.RunUntil(2)

	if d := r1.Collector().Flow(0).Dropped.Total().Packets; d != 0 {
		t.Errorf("fast hop dropped %d packets", d)
	}
	if d := r2.Collector().Flow(0).Dropped.Total().Packets; d == 0 {
		t.Error("bottleneck hop dropped nothing despite 40 Mb/s into 24 Mb/s")
	}
	// Delivered rate caps at the bottleneck.
	thr := path.Delivery.Throughput(0)
	if thr.BitsPerSecond() > 24e6*1.02 {
		t.Errorf("delivered %v above bottleneck rate", thr)
	}
}

func TestPerHopThresholdsProtectAcrossHops(t *testing.T) {
	// The backbone story: a conformant flow crosses two hops, each with
	// threshold buffer management; a local aggressor at EACH hop cannot
	// starve it. Flow 0 is the end-to-end conformant flow; flows 1 and 2
	// are hop-local aggressors (flow 1 at hop 1, flow 2 at hop 2).
	s := sim.New()
	linkRate := units.MbitsPerSecond(48)
	rho := units.MbitsPerSecond(8)
	bufSize := units.KiloBytes(500)

	mkRouter := func(name string) *Router {
		th := core.PeakRateThreshold(rho, linkRate, bufSize)
		// Flow 0 gets its Prop-1 share (+1 MTU); local aggressors split
		// the rest.
		rest := (bufSize - th - 500) / 2
		mgr := buffer.NewFixedThreshold(bufSize, []units.Bytes{th + 500, rest, rest})
		return NewRouter(s, name, linkRate, sched.NewFIFO(), mgr, stats.NewCollector(3, 0.5), 0)
	}
	r1 := mkRouter("hop1")
	r2 := mkRouter("hop2")
	path := NewPath(s, []*Router{r1, r2}, 1) // only flow 0 is routed through

	victim := source.NewCBR(s, 0, 500, rho, path.Head())
	victim.Start()
	agg1 := source.NewSaturating(s, 1, 500, linkRate, r1)
	agg1.Start()
	agg2 := source.NewSaturating(s, 2, 500, linkRate, r2)
	agg2.Start()

	const dur = 10.0
	s.RunUntil(dur)

	thr := path.Delivery.Throughput(0)
	if thr.BitsPerSecond() < rho.BitsPerSecond()*0.93 {
		t.Errorf("end-to-end conformant throughput %v, want ≈ %v", thr, rho)
	}
	for _, r := range []*Router{r1, r2} {
		if d := r.Collector().Flow(0).Dropped.Total().Packets; d != 0 {
			t.Errorf("%s dropped %d conformant packets", r.Name, d)
		}
	}
}

func TestFIFOHopPreservesLongRunConformance(t *testing.T) {
	// A (σ, ρ)-shaped flow that crosses an uncontended FIFO hop stays
	// (σ + ρ·Dmax, ρ)-conformant at the hop's output: FIFO adds at most
	// its maximum delay of burstiness.
	s := sim.New()
	linkRate := units.MbitsPerSecond(48)
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(4), BucketSize: units.KiloBytes(30)}
	r1 := fifoRouter(s, "hop", linkRate, units.KiloBytes(200), 1, 0)
	rec := source.NewRecorder(s)
	r1.SetRoute(0, rec.Receive)

	sh := source.NewShaper(s, spec, r1)
	feed := source.NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh)
	feed.Start()
	s.RunUntil(10)

	// Max hop delay: full 200KB buffer at 48 Mb/s.
	dmax := units.KiloBytes(200).Bits() / linkRate.BitsPerSecond()
	out := packet.FlowSpec{
		TokenRate:  spec.TokenRate,
		BucketSize: spec.BucketSize + units.Bytes(spec.TokenRate.BytesPerSecond()*dmax),
	}
	if err := rec.ConformsTo(out, 500); err != nil {
		t.Errorf("hop output exceeds the dilated envelope: %v", err)
	}
}

func TestRouterValidation(t *testing.T) {
	s := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("negative propagation did not panic")
		}
	}()
	NewRouter(s, "bad", units.Mbps, sched.NewFIFO(), buffer.NewTailDrop(1000, 1), nil, -1)
}

func TestEmptyPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty path did not panic")
		}
	}()
	NewPath(sim.New(), nil, 1)
}

func TestSetRouteNilTerminates(t *testing.T) {
	s := sim.New()
	r := fifoRouter(s, "r", units.MbitsPerSecond(8), units.KiloBytes(50), 1, 0)
	forwarded := 0
	r.SetRoute(0, func(*packet.Packet) { forwarded++ })
	r.SetRoute(0, nil) // un-route
	r.Receive(&packet.Packet{Flow: 0, Size: 500})
	s.Run(0)
	if forwarded != 0 {
		t.Error("nil route still forwarded")
	}
}

func TestDeliveryThroughputZeroTime(t *testing.T) {
	s := sim.New()
	d := NewDelivery(s, 1)
	if d.Throughput(0) != 0 {
		t.Error("throughput at t=0 should be 0")
	}
}

func TestForwardedCountsPerFlow(t *testing.T) {
	// Forwarded counts only packets handed to a next hop: flow 0 is
	// routed onward, flow 1 terminates at the router, flow 2 never sends.
	s := sim.New()
	r := fifoRouter(s, "r", units.MbitsPerSecond(48), units.MegaBytes(1), 3, 0)
	d := NewDelivery(s, 3)
	r.SetRoute(0, d.Receive)
	for i := 0; i < 5; i++ {
		r.Receive(&packet.Packet{Flow: 0, Size: 500})
	}
	r.Receive(&packet.Packet{Flow: 1, Size: 500})
	s.Run(0)
	if got := r.Forwarded(0); got != 5 {
		t.Errorf("flow 0: forwarded %d, want 5", got)
	}
	if got := r.Forwarded(1); got != 0 {
		t.Errorf("flow 1 terminates here; forwarded %d, want 0", got)
	}
	if got := r.Forwarded(2); got != 0 {
		t.Errorf("flow 2 never sent; forwarded %d, want 0", got)
	}
	if got := d.Packets(0); got != 5 {
		t.Errorf("delivery saw %d packets of flow 0, want 5", got)
	}
}

func TestDeliveryUnknownFlowPanicsWithFlowID(t *testing.T) {
	s := sim.New()
	d := NewDelivery(s, 2)
	if d.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d, want 2", d.NumFlows())
	}
	for _, flow := range []int{-1, 2, 7} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("flow %d: out-of-range delivery did not panic", flow)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, fmt.Sprintf("flow %d", flow)) {
					t.Errorf("flow %d: panic %q does not name the flow", flow, msg)
				}
			}()
			d.Receive(&packet.Packet{Flow: flow, Size: 500})
		}()
	}
}
