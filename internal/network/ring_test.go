package network

import (
	"testing"

	"bufqos/internal/sim"
)

// TestSeqBitmapMatchesReferenceMap drives the reassembly bitmap and the
// map[uint64]bool it replaced through the same randomized op sequence —
// out-of-order arrivals within a bounded window, cumulative advances
// that consume runs of buffered segments — and demands identical
// answers, including for queries beyond the ring's capacity.
func TestSeqBitmapMatchesReferenceMap(t *testing.T) {
	rng := sim.NewRand(sim.DeriveSeed(2, 99))
	var b seqBitmap
	ref := map[uint64]bool{}
	rcvNxt := uint64(0)
	for op := 0; op < 20000; op++ {
		switch rng.Intn(3) {
		case 0: // out-of-order arrival somewhere ahead of rcvNxt
			s := rcvNxt + 1 + uint64(rng.Intn(300))
			if got, want := b.has(rcvNxt, s), ref[s]; got != want {
				t.Fatalf("op %d: has(%d, %d) = %v, reference %v", op, rcvNxt, s, got, want)
			}
			b.set(rcvNxt, s)
			ref[s] = true
		case 1: // the expected segment arrives; consume the buffered run
			rcvNxt++
			if got, want := b.has(rcvNxt, rcvNxt), ref[rcvNxt]; got != want {
				t.Fatalf("op %d: has(%d) = %v, reference %v", op, rcvNxt, got, want)
			}
			for ref[rcvNxt] {
				if !b.has(rcvNxt, rcvNxt) {
					t.Fatalf("op %d: bitmap lost buffered segment %d", op, rcvNxt)
				}
				b.clear(rcvNxt)
				delete(ref, rcvNxt)
				rcvNxt++
			}
		default: // probe far beyond the window: must be a clean miss
			s := rcvNxt + b.nbits() + uint64(rng.Intn(1000))
			if b.has(rcvNxt, s) {
				t.Fatalf("op %d: has(%d, %d) = true beyond ring capacity %d", op, rcvNxt, s, b.nbits())
			}
		}
	}
	for s := range ref {
		if !b.has(rcvNxt, s) {
			t.Fatalf("final state: bitmap lost buffered segment %d", s)
		}
	}
}

// TestSeqBitmapSteadyStateAllocFree pins the refactor's point: once the
// ring covers the reorder window, set/has/clear allocate nothing. The
// old map allocated on every out-of-order insert.
func TestSeqBitmapSteadyStateAllocFree(t *testing.T) {
	var b seqBitmap
	b.set(0, 255) // size the ring once
	b.clear(255)
	base := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		b.set(base, base+100)
		if !b.has(base, base+100) {
			t.Fatal("set bit not found")
		}
		b.clear(base + 100)
		base++
	})
	if allocs != 0 {
		t.Fatalf("steady-state reassembly ops allocate %v times per op, want 0", allocs)
	}
}

// BenchmarkSeqBitmapReassembly measures the per-segment cost of the
// reassembly bookkeeping for a small reorder window.
func BenchmarkSeqBitmapReassembly(b *testing.B) {
	var m seqBitmap
	m.set(0, 63)
	m.clear(63)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		base := uint64(i)
		m.set(base, base+17)
		m.has(base, base+17)
		m.clear(base + 17)
	}
}
