package packet

import (
	"encoding/json"
	"testing"

	"bufqos/internal/units"
)

func TestFlowSpecJSONRoundTrip(t *testing.T) {
	specs := []FlowSpec{
		{TokenRate: units.MbitsPerSecond(2), BucketSize: units.KiloBytes(60), PeakRate: units.MbitsPerSecond(16)},
		{TokenRate: units.MbitsPerSecond(0.4), BucketSize: units.KiloBytes(50)},
		{TokenRate: 1234, BucketSize: 7},
	}
	for _, s := range specs {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %+v: %v", s, err)
		}
		var back FlowSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != s {
			t.Errorf("round trip %+v -> %s -> %+v", s, b, back)
		}
	}
}

func TestFlowSpecJSONForm(t *testing.T) {
	s := FlowSpec{TokenRate: units.MbitsPerSecond(2), BucketSize: units.KiloBytes(60), PeakRate: units.MbitsPerSecond(6)}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"peak":"6Mbit/s","token":"2Mbit/s","bucket":"60KB"}`
	if string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
	// Zero peak is omitted.
	s.PeakRate = 0
	b, _ = json.Marshal(s)
	if string(b) != `{"token":"2Mbit/s","bucket":"60KB"}` {
		t.Errorf("marshal without peak = %s", b)
	}
	// Unknown fields are rejected.
	var back FlowSpec
	if err := json.Unmarshal([]byte(`{"token":"2Mbit/s","bucket":"60KB","sigma":"1KB"}`), &back); err == nil {
		t.Error("unknown field accepted")
	}
	// Suffix-free numbers use base units (bits/s, bytes).
	if err := json.Unmarshal([]byte(`{"token":2000000,"bucket":60000}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.TokenRate != units.MbitsPerSecond(2) || back.BucketSize != units.KiloBytes(60) {
		t.Errorf("numeric form decoded to %+v", back)
	}
}

// TestFlowSpecFastParserAgreesWithStrict feeds the same documents to
// the hand-rolled scanner's entry point and to the reflection decoder
// and requires identical accept/reject verdicts and values.
func TestFlowSpecFastParserAgreesWithStrict(t *testing.T) {
	cases := []string{
		`{"peak":"6Mbit/s","token":"2Mbit/s","bucket":"60KB"}`,
		` { "token" : "2Mbit/s" , "bucket" : "60KB" } `,
		"\n{\t\"bucket\":\"60KB\",\n \"token\":\"2Mbit/s\"}\r\n",
		`{"token":2000000,"bucket":60000}`,
		`{"token":2e6,"bucket":6.0e4}`,
		`{}`,
		`null`,
		`{"token":"2Mbit/s","bucket":"60KB","sigma":"1KB"}`, // unknown key
		`{"token":"2Mbit/s"`,                                // truncated
		`{"token":"2Mbit/s","bucket":"60\u004BB"}`,          // escape: slow path
		`{"token":"oops","bucket":"60KB"}`,                  // bad value
		`[1,2]`,
		`"2Mbit/s"`,
	}
	for _, c := range cases {
		var fast FlowSpec
		fastErr := json.Unmarshal([]byte(c), &fast)
		var slow flowSpecWire
		slowErr := strictUnmarshal([]byte(c), &slow)
		if (fastErr == nil) != (slowErr == nil) {
			t.Errorf("%s: fast err %v, strict err %v", c, fastErr, slowErr)
			continue
		}
		if fastErr == nil && (fast.PeakRate != slow.Peak || fast.TokenRate != slow.Token || fast.BucketSize != slow.Bucket) {
			t.Errorf("%s: fast %+v, strict %+v", c, fast, slow)
		}
	}
}
