// Package packet defines the packet and flow-descriptor types shared by
// traffic sources, buffer managers, and schedulers.
package packet

import (
	"fmt"

	"bufqos/internal/units"
)

// Packet is a single packet travelling through the simulated router.
// Packets are created by sources and owned by at most one queue at a
// time; they are never copied once enqueued.
type Packet struct {
	// Flow identifies the flow the packet belongs to. Flow IDs are
	// dense small integers assigned by the experiment setup.
	Flow int
	// Size is the packet length in bytes, including headers.
	Size units.Bytes
	// Created is the simulated time the source generated the packet.
	Created float64
	// Arrived is the simulated time the packet reached the multiplexer
	// (after any shaping delay).
	Arrived float64
	// Seq is a per-flow sequence number assigned by the source.
	Seq uint64
	// Hop is the packet's current position on its flow's route (0 at
	// the first link). Engines that renumber Flow to a link-local index
	// use it to find the next hop without a global lookup.
	Hop int32
	// Conformant marks whether a token-bucket meter at the network edge
	// found the packet within the flow's (σ, ρ) profile. The remark
	// after Proposition 1 colors conformant bits green and excess bits
	// red; this field is that color.
	Conformant bool
}

// String implements fmt.Stringer for debugging output.
func (p *Packet) String() string {
	c := "excess"
	if p.Conformant {
		c = "conf"
	}
	return fmt.Sprintf("pkt{flow=%d seq=%d %v %s t=%.6f}", p.Flow, p.Seq, p.Size, c, p.Created)
}

// FlowSpec is the traffic contract of a flow: the leaky-bucket profile
// (σ = BucketSize, ρ = TokenRate) plus a peak rate, exactly the triple
// the paper's simulation setup specifies per flow.
type FlowSpec struct {
	// PeakRate bounds the instantaneous sending rate of the source.
	PeakRate units.Rate
	// TokenRate ρ is the reserved (guaranteed) rate of the flow.
	TokenRate units.Rate
	// BucketSize σ is the token-bucket depth in bytes.
	BucketSize units.Bytes
}

// Validate reports a descriptive error for non-physical specs.
func (s FlowSpec) Validate() error {
	switch {
	case s.TokenRate <= 0:
		return fmt.Errorf("flow spec: token rate %v must be positive", s.TokenRate)
	case s.BucketSize < 0:
		return fmt.Errorf("flow spec: bucket size %v must be non-negative", s.BucketSize)
	case s.PeakRate != 0 && s.PeakRate < s.TokenRate:
		return fmt.Errorf("flow spec: peak rate %v below token rate %v", s.PeakRate, s.TokenRate)
	}
	return nil
}

// SigmaBits returns σ in bits, the unit the paper's formulas use.
func (s FlowSpec) SigmaBits() float64 { return s.BucketSize.Bits() }

// Envelope returns the maximum volume, in bits, that a conformant flow
// may emit over an interval of length d seconds: σ + ρ·d (capped by the
// peak rate when one is set).
func (s FlowSpec) Envelope(d float64) float64 {
	if d < 0 {
		return 0
	}
	byBucket := s.SigmaBits() + s.TokenRate.BitsPerSecond()*d
	if s.PeakRate > 0 {
		if byPeak := s.PeakRate.BitsPerSecond() * d; byPeak < byBucket {
			return byPeak
		}
	}
	return byBucket
}
