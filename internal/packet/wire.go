package packet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"bufqos/internal/units"
)

// flowSpecWire is FlowSpec's JSON form. The fields ride the units wire
// encodings ("48Mbit/s", "100KB"), so one (σ, ρ, peak) contract is
// spelled identically in topology files, qosd request bodies, and
// daemon snapshots.
type flowSpecWire struct {
	Peak   units.Rate  `json:"peak,omitempty"`
	Token  units.Rate  `json:"token"`
	Bucket units.Bytes `json:"bucket"`
}

// MarshalJSON encodes the contract as
// {"peak":"6Mbit/s","token":"2Mbit/s","bucket":"60KB"}; a zero peak
// (unbounded) is omitted. The encoder is hand-assembled because specs
// are the hot field of the qosd control plane — batch joins marshal
// and parse thousands of them per second.
func (s FlowSpec) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, '{')
	if s.PeakRate != 0 {
		b, err := s.PeakRate.MarshalJSON()
		if err != nil {
			return nil, err
		}
		buf = append(append(append(buf, `"peak":`...), b...), ',')
	}
	b, err := s.TokenRate.MarshalJSON()
	if err != nil {
		return nil, err
	}
	buf = append(append(append(buf, `"token":`...), b...), ',')
	if b, err = s.BucketSize.MarshalJSON(); err != nil {
		return nil, err
	}
	buf = append(append(append(buf, `"bucket":`...), b...), '}')
	return buf, nil
}

// UnmarshalJSON decodes the wire form. Unknown fields are rejected so
// misspelled contracts fail loudly; semantic validation stays with
// Validate, which callers run after decoding. A hand-rolled scanner
// handles the common shape; anything it cannot prove well-formed
// (escapes, nesting, unknown keys) is retried through the strict
// reflection decoder, which also produces the precise error.
func (s *FlowSpec) UnmarshalJSON(data []byte) error {
	if w, ok := parseWireFast(data); ok {
		s.PeakRate = w.Peak
		s.TokenRate = w.Token
		s.BucketSize = w.Bucket
		return nil
	}
	var w flowSpecWire
	if err := strictUnmarshal(data, &w); err != nil {
		return fmt.Errorf("flow spec: %w", err)
	}
	s.PeakRate = w.Peak
	s.TokenRate = w.Token
	s.BucketSize = w.Bucket
	return nil
}

// parseWireFast scans the flat {"key":value,...} shape directly,
// reporting ok=false whenever the input is anything but that exact
// shape — the slow path then owns the verdict.
func parseWireFast(data []byte) (flowSpecWire, bool) {
	var w flowSpecWire
	i, n := 0, len(data)
	skip := func() {
		for i < n && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
			i++
		}
	}
	skip()
	if i+4 <= n && string(data[i:i+4]) == "null" {
		i += 4
		skip()
		return w, i == n
	}
	if i >= n || data[i] != '{' {
		return w, false
	}
	i++
	skip()
	if i < n && data[i] == '}' {
		i++
		skip()
		return w, i == n
	}
	for {
		skip()
		if i >= n || data[i] != '"' {
			return w, false
		}
		j := i + 1
		for j < n && data[j] != '"' {
			if data[j] == '\\' {
				return w, false
			}
			j++
		}
		if j >= n {
			return w, false
		}
		key := data[i+1 : j]
		i = j + 1
		skip()
		if i >= n || data[i] != ':' {
			return w, false
		}
		i++
		skip()
		start := i
		if i < n && data[i] == '"' {
			i++
			for i < n && data[i] != '"' {
				if data[i] == '\\' {
					return w, false
				}
				i++
			}
			if i >= n {
				return w, false
			}
			i++
		} else {
			for i < n && data[i] != ',' && data[i] != '}' && data[i] > ' ' {
				i++
			}
		}
		tok := data[start:i]
		var err error
		switch string(key) {
		case "peak":
			err = w.Peak.UnmarshalJSON(tok)
		case "token":
			err = w.Token.UnmarshalJSON(tok)
		case "bucket":
			err = w.Bucket.UnmarshalJSON(tok)
		default:
			return w, false
		}
		if err != nil {
			return w, false
		}
		skip()
		if i < n && data[i] == ',' {
			i++
			continue
		}
		if i < n && data[i] == '}' {
			i++
			break
		}
		return w, false
	}
	skip()
	return w, i == n
}

// strictUnmarshal is json.Unmarshal with DisallowUnknownFields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
