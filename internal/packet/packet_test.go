package packet

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

func TestFlowSpecValidate(t *testing.T) {
	good := FlowSpec{
		PeakRate:   units.MbitsPerSecond(16),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(50),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}

	cases := []FlowSpec{
		{TokenRate: 0, BucketSize: 100},
		{TokenRate: -1, BucketSize: 100},
		{TokenRate: units.Mbps, BucketSize: -1},
		{PeakRate: units.Mbps, TokenRate: 2 * units.Mbps, BucketSize: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, c)
		}
	}
}

func TestFlowSpecNoPeakIsValid(t *testing.T) {
	s := FlowSpec{TokenRate: units.Mbps, BucketSize: units.KiloBytes(10)}
	if err := s.Validate(); err != nil {
		t.Errorf("spec without peak rate rejected: %v", err)
	}
}

func TestEnvelope(t *testing.T) {
	s := FlowSpec{
		PeakRate:   units.MbitsPerSecond(16),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(50),
	}
	// At d=0 the bucket term wins only if peak allows nothing: envelope
	// is min(σ, peak·0) = 0 with a peak limit.
	if got := s.Envelope(0); got != 0 {
		t.Errorf("Envelope(0) with peak = %v, want 0", got)
	}
	// Long horizon: bucket term governs: σ + ρd.
	d := 10.0
	want := s.BucketSize.Bits() + s.TokenRate.BitsPerSecond()*d
	if got := s.Envelope(d); got != want {
		t.Errorf("Envelope(%v) = %v, want %v", d, got, want)
	}
	// Negative horizon clamps to zero.
	if got := s.Envelope(-1); got != 0 {
		t.Errorf("Envelope(-1) = %v, want 0", got)
	}
}

func TestEnvelopeNoPeak(t *testing.T) {
	s := FlowSpec{TokenRate: units.MbitsPerSecond(2), BucketSize: units.KiloBytes(50)}
	if got := s.Envelope(0); got != s.BucketSize.Bits() {
		t.Errorf("Envelope(0) without peak = %v, want σ = %v", got, s.BucketSize.Bits())
	}
}

// Property: the envelope is non-decreasing and Lipschitz in the peak
// rate: Envelope(a+b) ≤ Envelope(a) + P·b for all non-negative a, b.
// (The tighter ρ·b bound only holds once the bucket segment binds at a;
// in the peak-to-bucket crossover region the increment can reach P·b.)
func TestPropertyEnvelopeMonotone(t *testing.T) {
	s := FlowSpec{
		PeakRate:   units.MbitsPerSecond(40),
		TokenRate:  units.MbitsPerSecond(8),
		BucketSize: units.KiloBytes(100),
	}
	f := func(a16, b16 uint16) bool {
		a, b := float64(a16)/1000, float64(b16)/1000
		ea, eab := s.Envelope(a), s.Envelope(a+b)
		if eab < ea {
			return false
		}
		return eab <= ea+s.PeakRate.BitsPerSecond()*b+1e-6
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Seq: 7, Size: 500, Conformant: true, Created: 1.5}
	s := p.String()
	for _, want := range []string{"flow=3", "seq=7", "conf"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	p.Conformant = false
	if !strings.Contains(p.String(), "excess") {
		t.Errorf("String() = %q missing excess marker", p.String())
	}
}
