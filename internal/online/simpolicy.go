package online

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// The types below restate the abstract policies over byte-sized
// packet.Packet queues so the scheme registry can run them on any
// simulated link. Like sched.PushoutFIFO they implement BOTH the
// buffer-manager and the scheduler interface (preemption removes
// already-queued packets, which no manager/scheduler split can
// express) and are wired into a Link as both at once. Class is a flow
// property: classOf[flow] gives the flow's service class, higher =
// more valuable.
//
// Pushed-out victims are reported through the OnPushout callback so
// the Link can count them as drops (sched.PushoutNotifier).

// checkClasses validates a flow→class map against the class count.
func checkClasses(classOf []int, classes int) []int {
	if len(classOf) == 0 {
		panic("online: no flows")
	}
	for i, c := range classOf {
		if c < 0 || c >= classes {
			panic(fmt.Sprintf("online: flow %d class %d outside [0,%d)", i, c, classes))
		}
	}
	return append([]int(nil), classOf...)
}

// ClassGreedy is the preemptive greedy policy of the value model over
// a shared buffer: FIFO service, and an arrival that does not fit
// pushes out the newest queued packet of the lowest class strictly
// below its own (repeatedly, until it fits or no victim remains).
type ClassGreedy struct {
	capacity units.Bytes
	classOf  []int
	occ      []units.Bytes
	total    units.Bytes

	q       []*packet.Packet // nil entries are pushed-out holes
	head    int
	len     int
	backlog units.Bytes

	onPushout func(p *packet.Packet)
}

// NewClassGreedy builds the combined queue/policy. classOf[i] is flow
// i's class within [0, classes).
func NewClassGreedy(capacity units.Bytes, classOf []int, classes int) *ClassGreedy {
	if capacity <= 0 {
		panic(fmt.Sprintf("online: non-positive capacity %v", capacity))
	}
	return &ClassGreedy{
		capacity: capacity,
		classOf:  checkClasses(classOf, classes),
		occ:      make([]units.Bytes, len(classOf)),
	}
}

// SetOnPushout implements sched.PushoutNotifier.
func (g *ClassGreedy) SetOnPushout(fn func(p *packet.Packet)) { g.onPushout = fn }

// Admit implements buffer.Manager. As with PushoutFIFO, victims
// already pushed out stay out even if the arrival is ultimately
// rejected.
func (g *ClassGreedy) Admit(flow int, size units.Bytes) bool {
	for g.total+size > g.capacity {
		if !g.pushOutLowest(g.classOf[flow]) {
			return false
		}
	}
	g.occ[flow] += size
	g.total += size
	return true
}

// pushOutLowest evicts the newest queued packet of the lowest class
// strictly below the given class. The packet in service has left the
// scheduler and cannot be evicted.
func (g *ClassGreedy) pushOutLowest(below int) bool {
	victim, victimClass := -1, below
	for i := len(g.q) - 1; i >= g.head; i-- {
		p := g.q[i]
		if p == nil {
			continue
		}
		// Scanning from the tail, the first packet seen of any class is
		// that class's newest, so only a strictly lower class updates the
		// choice.
		if c := g.classOf[p.Flow]; c < victimClass {
			victim, victimClass = i, c
		}
	}
	if victim < 0 {
		return false
	}
	p := g.q[victim]
	g.q[victim] = nil
	g.len--
	g.backlog -= p.Size
	g.occ[p.Flow] -= p.Size
	g.total -= p.Size
	if g.onPushout != nil {
		g.onPushout(p)
	}
	return true
}

// Release implements buffer.Manager.
func (g *ClassGreedy) Release(flow int, size units.Bytes) {
	if g.occ[flow] < size {
		panic(fmt.Sprintf("online: flow %d releasing %v with only %v held", flow, size, g.occ[flow]))
	}
	g.occ[flow] -= size
	g.total -= size
}

// Occupancy implements buffer.Manager.
func (g *ClassGreedy) Occupancy(flow int) units.Bytes { return g.occ[flow] }

// Total implements buffer.Manager.
func (g *ClassGreedy) Total() units.Bytes { return g.total }

// Capacity implements buffer.Manager.
func (g *ClassGreedy) Capacity() units.Bytes { return g.capacity }

// Enqueue implements sched.Scheduler.
func (g *ClassGreedy) Enqueue(p *packet.Packet) {
	g.q = append(g.q, p)
	g.len++
	g.backlog += p.Size
}

// Dequeue implements sched.Scheduler (FIFO, skipping holes).
func (g *ClassGreedy) Dequeue() *packet.Packet {
	for g.head < len(g.q) {
		p := g.q[g.head]
		g.q[g.head] = nil
		g.head++
		if g.head > 64 && g.head*2 >= len(g.q) {
			n := copy(g.q, g.q[g.head:])
			g.q = g.q[:n]
			g.head = 0
		}
		if p != nil {
			g.len--
			g.backlog -= p.Size
			return p
		}
	}
	return nil
}

// Len implements sched.Scheduler.
func (g *ClassGreedy) Len() int { return g.len }

// Backlog implements sched.Scheduler.
func (g *ClassGreedy) Backlog() units.Bytes { return g.backlog }

// ClassSeg is the class-segregation policy of arXiv:1103.6049 over a
// shared buffer: one FIFO queue per class, strict-priority service
// (highest class first), and an overflowing arrival pushes out the
// newest packet of the lowest nonempty class strictly below its own.
type ClassSeg struct {
	capacity units.Bytes
	classOf  []int
	occ      []units.Bytes
	total    units.Bytes

	qs      [][]*packet.Packet
	len     int
	backlog units.Bytes

	onPushout func(p *packet.Packet)
}

// NewClassSeg builds the combined queue/policy with one queue per
// class.
func NewClassSeg(capacity units.Bytes, classOf []int, classes int) *ClassSeg {
	if capacity <= 0 {
		panic(fmt.Sprintf("online: non-positive capacity %v", capacity))
	}
	return &ClassSeg{
		capacity: capacity,
		classOf:  checkClasses(classOf, classes),
		occ:      make([]units.Bytes, len(classOf)),
		qs:       make([][]*packet.Packet, classes),
	}
}

// SetOnPushout implements sched.PushoutNotifier.
func (cs *ClassSeg) SetOnPushout(fn func(p *packet.Packet)) { cs.onPushout = fn }

// Admit implements buffer.Manager.
func (cs *ClassSeg) Admit(flow int, size units.Bytes) bool {
	for cs.total+size > cs.capacity {
		if !cs.pushOutLowest(cs.classOf[flow]) {
			return false
		}
	}
	cs.occ[flow] += size
	cs.total += size
	return true
}

// pushOutLowest evicts the newest queued packet of the lowest nonempty
// class strictly below the given class.
func (cs *ClassSeg) pushOutLowest(below int) bool {
	for c := 0; c < below; c++ {
		q := cs.qs[c]
		if len(q) == 0 {
			continue
		}
		p := q[len(q)-1]
		cs.qs[c] = q[:len(q)-1]
		cs.len--
		cs.backlog -= p.Size
		cs.occ[p.Flow] -= p.Size
		cs.total -= p.Size
		if cs.onPushout != nil {
			cs.onPushout(p)
		}
		return true
	}
	return false
}

// Release implements buffer.Manager.
func (cs *ClassSeg) Release(flow int, size units.Bytes) {
	if cs.occ[flow] < size {
		panic(fmt.Sprintf("online: flow %d releasing %v with only %v held", flow, size, cs.occ[flow]))
	}
	cs.occ[flow] -= size
	cs.total -= size
}

// Occupancy implements buffer.Manager.
func (cs *ClassSeg) Occupancy(flow int) units.Bytes { return cs.occ[flow] }

// Total implements buffer.Manager.
func (cs *ClassSeg) Total() units.Bytes { return cs.total }

// Capacity implements buffer.Manager.
func (cs *ClassSeg) Capacity() units.Bytes { return cs.capacity }

// Enqueue implements sched.Scheduler.
func (cs *ClassSeg) Enqueue(p *packet.Packet) {
	c := cs.classOf[p.Flow]
	cs.qs[c] = append(cs.qs[c], p)
	cs.len++
	cs.backlog += p.Size
}

// Dequeue implements sched.Scheduler: strict priority, FIFO within a
// class.
func (cs *ClassSeg) Dequeue() *packet.Packet {
	for c := len(cs.qs) - 1; c >= 0; c-- {
		if len(cs.qs[c]) == 0 {
			continue
		}
		p := cs.qs[c][0]
		cs.qs[c] = cs.qs[c][1:]
		cs.len--
		cs.backlog -= p.Size
		return p
	}
	return nil
}

// Len implements sched.Scheduler.
func (cs *ClassSeg) Len() int { return cs.len }

// Backlog implements sched.Scheduler.
func (cs *ClassSeg) Backlog() units.Bytes { return cs.backlog }

// MultiQueue is the multi-queue switch model of arXiv:1007.1535 over a
// partitioned buffer: one FIFO queue per class with its own byte
// quota (capacity/classes), non-preemptive admission, and a service
// rule choosing the queue to drain — longest-queue-first, or the
// semi-greedy refinement (fullest queue above half quota, otherwise
// the oldest head-of-line packet).
type MultiQueue struct {
	capacity units.Bytes
	quota    units.Bytes
	semi     bool
	classOf  []int
	occ      []units.Bytes
	total    units.Bytes

	qs      [][]*packet.Packet
	queued  []units.Bytes // queued bytes per class (excludes in service)
	seq     uint64
	seqs    [][]uint64
	len     int
	backlog units.Bytes
}

// NewMultiQueue builds the combined queue/policy. semi selects the
// semi-greedy service rule instead of plain longest-queue-first.
func NewMultiQueue(capacity units.Bytes, classOf []int, classes int, semi bool) *MultiQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("online: non-positive capacity %v", capacity))
	}
	return &MultiQueue{
		capacity: capacity,
		quota:    capacity / units.Bytes(classes),
		semi:     semi,
		classOf:  checkClasses(classOf, classes),
		occ:      make([]units.Bytes, len(classOf)),
		qs:       make([][]*packet.Packet, classes),
		queued:   make([]units.Bytes, classes),
		seqs:     make([][]uint64, classes),
	}
}

// Admit implements buffer.Manager: the packet must fit in its class
// queue's quota (counting queued bytes; the packet in service has
// already freed its slot, as in the abstract model where transmission
// and arrivals share a step).
func (m *MultiQueue) Admit(flow int, size units.Bytes) bool {
	if m.queued[m.classOf[flow]]+size > m.quota {
		return false
	}
	m.occ[flow] += size
	m.total += size
	return true
}

// Release implements buffer.Manager.
func (m *MultiQueue) Release(flow int, size units.Bytes) {
	if m.occ[flow] < size {
		panic(fmt.Sprintf("online: flow %d releasing %v with only %v held", flow, size, m.occ[flow]))
	}
	m.occ[flow] -= size
	m.total -= size
}

// Occupancy implements buffer.Manager.
func (m *MultiQueue) Occupancy(flow int) units.Bytes { return m.occ[flow] }

// Total implements buffer.Manager.
func (m *MultiQueue) Total() units.Bytes { return m.total }

// Capacity implements buffer.Manager.
func (m *MultiQueue) Capacity() units.Bytes { return m.capacity }

// Quota returns the per-class byte quota.
func (m *MultiQueue) Quota() units.Bytes { return m.quota }

// Enqueue implements sched.Scheduler.
func (m *MultiQueue) Enqueue(p *packet.Packet) {
	c := m.classOf[p.Flow]
	m.qs[c] = append(m.qs[c], p)
	m.seqs[c] = append(m.seqs[c], m.seq)
	m.seq++
	m.queued[c] += p.Size
	m.len++
	m.backlog += p.Size
}

// Dequeue implements sched.Scheduler.
func (m *MultiQueue) Dequeue() *packet.Packet {
	if m.len == 0 {
		return nil
	}
	pick := -1
	if m.semi {
		for c := range m.qs {
			if 2*m.queued[c] > m.quota && (pick < 0 || m.queued[c] > m.queued[pick]) {
				pick = c
			}
		}
		if pick < 0 {
			for c := range m.qs {
				if len(m.qs[c]) > 0 && (pick < 0 || m.seqs[c][0] < m.seqs[pick][0]) {
					pick = c
				}
			}
		}
	} else {
		for c := range m.qs {
			if len(m.qs[c]) > 0 && (pick < 0 || m.queued[c] > m.queued[pick]) {
				pick = c
			}
		}
	}
	p := m.qs[pick][0]
	m.qs[pick] = m.qs[pick][1:]
	m.seqs[pick] = m.seqs[pick][1:]
	m.queued[pick] -= p.Size
	m.len--
	m.backlog -= p.Size
	return p
}

// Len implements sched.Scheduler.
func (m *MultiQueue) Len() int { return m.len }

// Backlog implements sched.Scheduler.
func (m *MultiQueue) Backlog() units.Bytes { return m.backlog }
