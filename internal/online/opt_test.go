package online

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance draws a tiny instance suitable for brute-force
// verification.
func randomInstance(r *rand.Rand, model Model) *Instance {
	in := &Instance{
		Name:   "random",
		Model:  model,
		Queues: 1 + r.Intn(3),
		Buffer: 1 + r.Intn(3),
	}
	n := 1 + r.Intn(8)
	for i := 0; i < n; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{
			At:    r.Intn(5),
			Queue: r.Intn(in.Queues),
			Value: float64(1 + r.Intn(5)),
		})
	}
	return in
}

// TestOptMatchesBruteForce is the satellite solver check: the min-cost
// max-flow optimum must agree exactly with exhaustive enumeration on
// tiny instances (≤ 8 packets) in both models.
func TestOptMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, model := range []Model{ModelShared, ModelMultiQueue} {
		for trial := 0; trial < 200; trial++ {
			in := randomInstance(r, model)
			got, err := Opt(in)
			if err != nil {
				t.Fatalf("%s trial %d: Opt: %v", model, trial, err)
			}
			want, err := BruteForceOpt(in)
			if err != nil {
				t.Fatalf("%s trial %d: BruteForceOpt: %v", model, trial, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s trial %d: Opt=%v, brute force=%v on %+v", model, trial, got, want, in)
			}
		}
	}
}

func TestOptEmptyInstance(t *testing.T) {
	in := &Instance{Model: ModelShared, Queues: 1, Buffer: 1}
	got, err := Opt(in)
	if err != nil || got != 0 {
		t.Fatalf("Opt(empty) = %v, %v; want 0, nil", got, err)
	}
}

// TestOptSharedHand pins the solver on a hand-checked shared-buffer
// instance: B ones followed by B alphas in the same step retain only B
// packets, and the optimum keeps the alphas.
func TestOptSharedHand(t *testing.T) {
	const b, alpha = 3, 10.0
	in := &Instance{Model: ModelShared, Queues: 1, Buffer: b}
	for i := 0; i < b; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{At: 0, Queue: 0, Value: 1})
	}
	for i := 0; i < b; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{At: 0, Queue: 0, Value: alpha})
	}
	got, err := Opt(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(b) * alpha; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Opt = %v, want %v", got, want)
	}
}

// TestOptMultiQueueHand pins the solver on the classic B=1 lower-bound
// sequence for m=3 (fill all queues, then re-hit the unserved ones):
// the optimum schedules 2m−1 = 5 of the 6 packets.
func TestOptMultiQueueHand(t *testing.T) {
	in := &Instance{
		Model:  ModelMultiQueue,
		Queues: 3,
		Buffer: 1,
		Arrivals: []Arrival{
			{At: 0, Queue: 0, Value: 1},
			{At: 0, Queue: 1, Value: 1},
			{At: 0, Queue: 2, Value: 1},
			{At: 1, Queue: 1, Value: 1},
			{At: 1, Queue: 2, Value: 1},
			{At: 2, Queue: 2, Value: 1},
		},
	}
	got, err := Opt(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("Opt = %v, want 5 (= 2m−1)", got)
	}
}

func TestBruteForceRefusesLargeInstances(t *testing.T) {
	in := &Instance{Model: ModelShared, Queues: 1, Buffer: 1}
	for i := 0; i < maxBruteForceArrivals+1; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{At: i, Value: 1})
	}
	if _, err := BruteForceOpt(in); err == nil {
		t.Fatal("BruteForceOpt accepted an oversized instance")
	}
}

func TestOptRejectsInvalidInstance(t *testing.T) {
	in := &Instance{Model: "bogus", Queues: 1, Buffer: 1}
	if _, err := Opt(in); err == nil {
		t.Fatal("Opt accepted an unknown model")
	}
}
