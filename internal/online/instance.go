package online

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Model selects the buffer discipline an instance (and a policy) is
// defined over.
type Model string

const (
	// ModelShared is the single shared B-slot buffer of the value /
	// class-segregation model: packets of any class share the buffer and
	// compete by value.
	ModelShared Model = "shared"
	// ModelMultiQueue is the multi-queue switch model: every queue has
	// its own B-slot buffer and one packet is transmitted per step from
	// a queue of the policy's choosing. Values are 1 in the papers; the
	// solver accepts arbitrary values.
	ModelMultiQueue Model = "multiqueue"
)

// Arrival is one unit-size packet of an arrival sequence.
type Arrival struct {
	// At is the time step the packet arrives (step = arrivals, then one
	// transmission).
	At int `json:"at"`
	// Queue is the packet's queue (multi-queue model) or class (shared
	// model; higher index = more valuable class).
	Queue int `json:"queue"`
	// Value is the benefit of transmitting the packet.
	Value float64 `json:"value"`
}

// Instance is one replayable competitive-analysis input: the model, the
// buffer geometry, and the arrival sequence. Instances are what
// adversaries generate, policies run on, the offline solver optimizes,
// and qcomp -replay reads back.
type Instance struct {
	// Name labels the instance in reports and reproducer files.
	Name string `json:"name,omitempty"`
	// Model is the buffer discipline.
	Model Model `json:"model"`
	// Queues is the number of queues (multi-queue model) or classes
	// (shared model); at least 1.
	Queues int `json:"queues"`
	// Buffer is the per-queue (multiqueue) or shared (shared) capacity
	// in packets.
	Buffer int `json:"buffer"`
	// Arrivals is the sequence, sorted by At (ties keep order: the
	// within-step offer order is part of the instance).
	Arrivals []Arrival `json:"arrivals"`
}

// Validate reports a descriptive error for malformed instances and
// stable-sorts arrivals by time.
func (in *Instance) Validate() error {
	switch in.Model {
	case ModelShared, ModelMultiQueue:
	default:
		return fmt.Errorf("online: unknown model %q (want %q or %q)", in.Model, ModelShared, ModelMultiQueue)
	}
	if in.Queues < 1 {
		return fmt.Errorf("online: instance needs at least one queue, got %d", in.Queues)
	}
	if in.Buffer < 1 {
		return fmt.Errorf("online: instance needs a positive buffer, got %d", in.Buffer)
	}
	for i, a := range in.Arrivals {
		if a.At < 0 {
			return fmt.Errorf("online: arrival %d at negative time %d", i, a.At)
		}
		if a.Queue < 0 || a.Queue >= in.Queues {
			return fmt.Errorf("online: arrival %d queue %d outside [0,%d)", i, a.Queue, in.Queues)
		}
		if a.Value <= 0 {
			return fmt.Errorf("online: arrival %d non-positive value %v", i, a.Value)
		}
	}
	sort.SliceStable(in.Arrivals, func(i, j int) bool { return in.Arrivals[i].At < in.Arrivals[j].At })
	return nil
}

// TotalValue returns the sum of all arrival values — the trivial upper
// bound on any benefit.
func (in *Instance) TotalValue() float64 {
	var sum float64
	for _, a := range in.Arrivals {
		sum += a.Value
	}
	return sum
}

// horizon returns one past the last step at which a transmission could
// still be useful: every kept packet needs its own slot at or after its
// arrival, so lastAt + len(arrivals) slots always suffice.
func (in *Instance) horizon() int {
	if len(in.Arrivals) == 0 {
		return 0
	}
	last := in.Arrivals[len(in.Arrivals)-1].At
	return last + len(in.Arrivals) + 1
}

// Clone returns a deep copy (adversaries mutate candidates in place).
func (in *Instance) Clone() *Instance {
	cp := *in
	cp.Arrivals = append([]Arrival(nil), in.Arrivals...)
	return &cp
}

// Write serializes the instance as indented JSON.
func (in *Instance) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// Save writes the instance to path; the file is replayable with
// `qcomp -replay <path>`.
func Save(path string, in *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	if err := in.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("online: %s: %w", path, err)
	}
	return f.Close()
}

// Parse reads and validates an instance from r. Unknown fields are
// rejected so typos in hand-written files surface immediately.
func Parse(r io.Reader) (*Instance, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in Instance
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// LoadInstance parses the instance file at path.
func LoadInstance(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	defer f.Close()
	in, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return in, nil
}

// ShrinkInstance greedily minimizes an instance while still failing:
// it repeatedly tries dropping each arrival (then halving the buffer)
// and keeps any mutation for which stillFailing returns true. The
// result is a local minimum — removing any single remaining arrival
// makes the failure disappear. Deterministic: mutations are tried in a
// fixed order with a bounded budget.
func ShrinkInstance(in *Instance, stillFailing func(*Instance) bool) *Instance {
	cur := in.Clone()
	budget := 4 * (len(cur.Arrivals) + 8)
	for shrunk := true; shrunk && budget > 0; {
		shrunk = false
		for i := 0; i < len(cur.Arrivals) && budget > 0; i++ {
			budget--
			cand := cur.Clone()
			cand.Arrivals = append(cand.Arrivals[:i], cand.Arrivals[i+1:]...)
			if len(cand.Arrivals) > 0 && stillFailing(cand) {
				cur = cand
				shrunk = true
				i--
			}
		}
		if cur.Buffer > 1 && budget > 0 {
			budget--
			cand := cur.Clone()
			cand.Buffer /= 2
			if stillFailing(cand) {
				cur = cand
				shrunk = true
			}
		}
	}
	return cur
}
