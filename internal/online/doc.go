// Package online is the competitive-analysis subsystem: online
// buffer-management policies evaluated against an exact offline-optimal
// solver on adversarial arrival sequences.
//
// The source paper argues for cheap threshold-based buffer management
// but gives no worst-case guarantees; the competitive-analysis
// literature does. This package implements the two models of the
// related work retrieved for this reproduction:
//
//   - The shared-buffer value model ("Buffer Overflow Management with
//     Class Segregation", Al-Bawani & Souza, arXiv:1103.6049; building
//     on Kesselman et al.'s QoS-switch buffer model): unit-size packets
//     carrying values arrive at a single B-slot buffer; one packet is
//     transmitted per time step; the benefit of a policy is the total
//     value it transmits. Preemptive greedy admission is 2-competitive;
//     non-preemptive greedy is only Θ(α)-competitive on two-value
//     (1, α) sequences.
//
//   - The multi-queue unit-value model ("An Optimal Lower Bound for
//     Buffer Management in Multi-Queue Switches", Bienkowski,
//     arXiv:1007.1535): m queues of B slots each, one transmission per
//     step from a queue of the policy's choosing. Any work-conserving
//     policy (longest-queue-first and its semi-greedy refinement
//     included) is 2-competitive; no deterministic policy beats
//     2 − 1/m at B = 1, and the paper's headline result is an optimal
//     e/(e−1) ≈ 1.582 lower bound as B grows.
//
// Three layers:
//
//   - The abstract model (Instance, Policy, Run): discrete time steps,
//     unit packets, exact replayable JSON instances.
//   - Exact offline optima (Opt, BruteForceOpt): a min-cost max-flow
//     matching of packets to transmission slots on a time-expanded
//     graph, and an exponential enumeration used to verify it on tiny
//     instances.
//   - Simulator adapters (ClassGreedy, ClassSeg, MultiQueue): the same
//     policies restated over byte-sized packet.Packet queues so the
//     scheme registry can run them on any simulated link, alongside
//     the paper's own protective PushoutFIFO.
//
// Adversarial arrival generators (the papers' lower-bound
// constructions plus a seeded hill-climbing search) live in
// internal/validate; the qcomp CLI sweeps policies × adversaries ×
// buffer sizes and reports empirical competitive ratios next to the
// proven bounds.
package online
