package online

import (
	"fmt"
	"math"
)

// Algo is one running policy over an abstract instance. The harness
// (or an adaptive adversary) drives it step by step: all of a step's
// arrivals are offered in order, then Transmit is called once.
type Algo interface {
	// Arrive offers a unit packet; it reports whether the packet was
	// kept (possibly after preempting a buffered one).
	Arrive(a Arrival) bool
	// Transmit removes and returns the packet the policy's service
	// discipline sends this step; ok is false when every buffer is
	// empty.
	Transmit() (a Arrival, ok bool)
	// Backlog returns the number of buffered packets.
	Backlog() int
}

// Policy is one registered online buffer-management policy.
type Policy struct {
	// Name is the stable identifier used by qcomp -policies.
	Name string
	// Model is the buffer discipline the policy is defined over.
	Model Model
	// Doc is a one-line description.
	Doc string
	// Bound is the proven competitive-ratio upper bound (OPT/ALG never
	// exceeds it on any sequence); 0 means no finite bound is known.
	Bound float64
	// Cite anchors the bound in the literature.
	Cite string
	// New builds a fresh run over the given geometry.
	New func(queues, buffer int) Algo
}

// Policies returns the policy registry in catalogue order.
func Policies() []Policy {
	return []Policy{
		{
			Name:  "greedy",
			Model: ModelShared,
			Doc:   "value-aware preemptive greedy: admit when room, else preempt the newest minimum-value packet if the arrival is worth more",
			Bound: 2,
			Cite:  "Kesselman et al., Buffer Overflow Management in QoS Switches (the baseline of arXiv:1103.6049)",
			New: func(_, buffer int) Algo {
				return &sharedGreedy{buffer: buffer, preemptive: true}
			},
		},
		{
			Name:  "greedy-np",
			Model: ModelShared,
			Doc:   "non-preemptive greedy: admit exactly when room; never evicts, so it is only Θ(α)-competitive on two-value (1, α) sequences",
			Bound: 0,
			Cite:  "two-value lower bound, arXiv:1103.6049 §1 related work",
			New: func(_, buffer int) Algo {
				return &sharedGreedy{buffer: buffer}
			},
		},
		{
			Name:  "cseg",
			Model: ModelShared,
			Doc:   "class-segregated greedy: per-class FIFO queues over the shared buffer, highest class served first, overflow preempts the newest packet of the lowest buffered class",
			Bound: 2,
			Cite:  "Al-Bawani & Souza, Buffer Overflow Management with Class Segregation (arXiv:1103.6049)",
			New: func(queues, buffer int) Algo {
				return newClassSegAlgo(queues, buffer)
			},
		},
		{
			Name:  "lqf",
			Model: ModelMultiQueue,
			Doc:   "longest queue first: admit when the packet's queue has room, serve the longest queue (ties to the lowest index)",
			Bound: 2,
			Cite:  "work-conserving bound, Azar & Richter (cited by arXiv:1007.1535); no deterministic policy beats 2−1/m at B=1",
			New: func(queues, buffer int) Algo {
				return newMultiQueueAlgo(queues, buffer, false)
			},
		},
		{
			Name:  "semigreedy",
			Model: ModelMultiQueue,
			Doc:   "semi-greedy LQF: serve the fullest queue that is above half capacity, otherwise the queue with the oldest head packet",
			Bound: 2,
			Cite:  "semi-greedy family, Azar & Richter (cited by arXiv:1007.1535)",
			New: func(queues, buffer int) Algo {
				return newMultiQueueAlgo(queues, buffer, true)
			},
		},
	}
}

// PolicyByName resolves a registry name.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("online: unknown policy %q (have %s)", name, PolicyNames())
}

// PolicyNames returns the registered names in catalogue order.
func PolicyNames() []string {
	var names []string
	for _, p := range Policies() {
		names = append(names, p.Name)
	}
	return names
}

// Run replays the instance through the policy and returns the benefit
// (total value transmitted). The instance is validated (which sorts
// arrivals by time); each step offers the step's arrivals in sequence
// order, then transmits once; after the last arrival the buffers
// drain.
func Run(p Policy, in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if p.Model != in.Model {
		return 0, fmt.Errorf("online: policy %s is a %s-model policy, instance %s is %s", p.Name, p.Model, in.Name, in.Model)
	}
	algo := p.New(in.Queues, in.Buffer)
	var benefit float64
	i := 0
	for t := 0; ; t++ {
		for i < len(in.Arrivals) && in.Arrivals[i].At == t {
			algo.Arrive(in.Arrivals[i])
			i++
		}
		if a, ok := algo.Transmit(); ok {
			benefit += a.Value
		}
		if i >= len(in.Arrivals) && algo.Backlog() == 0 {
			return benefit, nil
		}
	}
}

// Outcome is one measured policy-vs-optimum comparison.
type Outcome struct {
	// ALG is the policy's benefit, OPT the offline optimum's.
	ALG, OPT float64
	// Ratio is OPT/ALG (math.Inf(1) when ALG is 0 and OPT is not).
	Ratio float64
}

// Evaluate runs the policy and the exact offline solver on the same
// instance and returns the empirical competitive ratio.
func Evaluate(p Policy, in *Instance) (Outcome, error) {
	alg, err := Run(p, in)
	if err != nil {
		return Outcome{}, err
	}
	opt, err := Opt(in)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{ALG: alg, OPT: opt, Ratio: ratio(opt, alg)}, nil
}

func ratio(opt, alg float64) float64 {
	switch {
	case alg > 0:
		return opt / alg
	case opt > 0:
		return math.Inf(1)
	default:
		return 1
	}
}

// sharedGreedy is the single shared FIFO buffer of the value model,
// with or without preemption.
type sharedGreedy struct {
	buffer     int
	preemptive bool
	q          []Arrival
}

// Arrive implements Algo.
func (g *sharedGreedy) Arrive(a Arrival) bool {
	if len(g.q) < g.buffer {
		g.q = append(g.q, a)
		return true
	}
	if !g.preemptive {
		return false
	}
	// Preempt the newest minimum-value packet, but only for a strictly
	// more valuable arrival.
	min := -1
	for i, b := range g.q {
		if min < 0 || b.Value <= g.q[min].Value {
			min = i
		}
	}
	if min < 0 || g.q[min].Value >= a.Value {
		return false
	}
	g.q = append(g.q[:min], g.q[min+1:]...)
	g.q = append(g.q, a)
	return true
}

// Transmit implements Algo (FIFO service).
func (g *sharedGreedy) Transmit() (Arrival, bool) {
	if len(g.q) == 0 {
		return Arrival{}, false
	}
	a := g.q[0]
	g.q = g.q[1:]
	return a, true
}

// Backlog implements Algo.
func (g *sharedGreedy) Backlog() int { return len(g.q) }

// classSegAlgo segregates the shared buffer by class: one FIFO queue
// per class, strict-priority service (highest class first), greedy
// admission that preempts the newest packet of the lowest buffered
// class when the shared buffer overflows with a higher-class arrival.
type classSegAlgo struct {
	buffer int
	qs     [][]Arrival
	total  int
}

func newClassSegAlgo(classes, buffer int) *classSegAlgo {
	return &classSegAlgo{buffer: buffer, qs: make([][]Arrival, classes)}
}

// Arrive implements Algo.
func (c *classSegAlgo) Arrive(a Arrival) bool {
	if c.total < c.buffer {
		c.qs[a.Queue] = append(c.qs[a.Queue], a)
		c.total++
		return true
	}
	// Preempt from the lowest nonempty class strictly below the
	// arrival's class.
	for cls := 0; cls < a.Queue; cls++ {
		if n := len(c.qs[cls]); n > 0 {
			c.qs[cls] = c.qs[cls][:n-1]
			c.qs[a.Queue] = append(c.qs[a.Queue], a)
			return true
		}
	}
	return false
}

// Transmit implements Algo: strict priority, FIFO within a class.
func (c *classSegAlgo) Transmit() (Arrival, bool) {
	for cls := len(c.qs) - 1; cls >= 0; cls-- {
		if len(c.qs[cls]) > 0 {
			a := c.qs[cls][0]
			c.qs[cls] = c.qs[cls][1:]
			c.total--
			return a, true
		}
	}
	return Arrival{}, false
}

// Backlog implements Algo.
func (c *classSegAlgo) Backlog() int { return c.total }

// multiQueueAlgo is the multi-queue switch: per-queue B-slot buffers,
// non-preemptive admission, one transmission per step from the queue
// the service rule picks.
type multiQueueAlgo struct {
	buffer int
	semi   bool
	qs     [][]Arrival
	total  int
	// seq orders heads for the semi-greedy oldest-head rule; ties in
	// At are broken by arrival order.
	seq  int
	seqs [][]int
}

func newMultiQueueAlgo(queues, buffer int, semi bool) *multiQueueAlgo {
	return &multiQueueAlgo{
		buffer: buffer,
		semi:   semi,
		qs:     make([][]Arrival, queues),
		seqs:   make([][]int, queues),
	}
}

// Arrive implements Algo.
func (m *multiQueueAlgo) Arrive(a Arrival) bool {
	if len(m.qs[a.Queue]) >= m.buffer {
		return false
	}
	m.qs[a.Queue] = append(m.qs[a.Queue], a)
	m.seqs[a.Queue] = append(m.seqs[a.Queue], m.seq)
	m.seq++
	m.total++
	return true
}

// Transmit implements Algo.
func (m *multiQueueAlgo) Transmit() (Arrival, bool) {
	if m.total == 0 {
		return Arrival{}, false
	}
	pick := -1
	if m.semi {
		// Serve the fullest queue strictly above half capacity…
		for q := range m.qs {
			if 2*len(m.qs[q]) > m.buffer && (pick < 0 || len(m.qs[q]) > len(m.qs[pick])) {
				pick = q
			}
		}
		// …otherwise the queue whose head packet has waited longest.
		if pick < 0 {
			for q := range m.qs {
				if len(m.qs[q]) > 0 && (pick < 0 || m.seqs[q][0] < m.seqs[pick][0]) {
					pick = q
				}
			}
		}
	} else {
		for q := range m.qs {
			if len(m.qs[q]) > 0 && (pick < 0 || len(m.qs[q]) > len(m.qs[pick])) {
				pick = q
			}
		}
	}
	a := m.qs[pick][0]
	m.qs[pick] = m.qs[pick][1:]
	m.seqs[pick] = m.seqs[pick][1:]
	m.total--
	return a, true
}

// Backlog implements Algo.
func (m *multiQueueAlgo) Backlog() int { return m.total }
