package online

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// twoValueInstance is the classic non-preemptive lower bound: B ones
// then B alphas in the same step.
func twoValueInstance(b int, alpha float64) *Instance {
	in := &Instance{Name: "two-value", Model: ModelShared, Queues: 1, Buffer: b}
	for i := 0; i < b; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{At: 0, Value: 1})
	}
	for i := 0; i < b; i++ {
		in.Arrivals = append(in.Arrivals, Arrival{At: 0, Value: alpha})
	}
	return in
}

// TestGreedyPreemptsOnTwoValue: preemptive greedy evicts the ones for
// the alphas and matches the offline optimum on the two-value sequence,
// while the non-preemptive variant is stuck at ratio ≈ alpha.
func TestGreedyPreemptsOnTwoValue(t *testing.T) {
	const b, alpha = 4, 10.0
	in := twoValueInstance(b, alpha)
	preempt, err := Evaluate(mustPolicy(t, "greedy"), in)
	if err != nil {
		t.Fatal(err)
	}
	if preempt.ALG != b*alpha || preempt.Ratio != 1 {
		t.Fatalf("greedy: ALG=%v ratio=%v, want ALG=%v ratio=1", preempt.ALG, preempt.Ratio, b*alpha)
	}
	np, err := Evaluate(mustPolicy(t, "greedy-np"), in)
	if err != nil {
		t.Fatal(err)
	}
	if np.ALG != b || math.Abs(np.Ratio-alpha) > 1e-9 {
		t.Fatalf("greedy-np: ALG=%v ratio=%v, want ALG=%v ratio=%v", np.ALG, np.Ratio, float64(b), alpha)
	}
}

// TestLQFMeetsLowerBound replays the 2−1/m construction at B=1 against
// longest-queue-first for several m and checks the exact ratio.
func TestLQFMeetsLowerBound(t *testing.T) {
	for m := 2; m <= 5; m++ {
		in := &Instance{Name: "lb", Model: ModelMultiQueue, Queues: m, Buffer: 1}
		// Fill every queue at t=0, then at step t ≥ 1 re-hit every queue
		// LQF (lowest-index tie-break) has not yet served.
		for q := 0; q < m; q++ {
			in.Arrivals = append(in.Arrivals, Arrival{At: 0, Queue: q, Value: 1})
		}
		for tstep := 1; tstep < m; tstep++ {
			for q := tstep; q < m; q++ {
				in.Arrivals = append(in.Arrivals, Arrival{At: tstep, Queue: q, Value: 1})
			}
		}
		out, err := Evaluate(mustPolicy(t, "lqf"), in)
		if err != nil {
			t.Fatal(err)
		}
		if out.ALG != float64(m) || out.OPT != float64(2*m-1) {
			t.Fatalf("m=%d: ALG=%v OPT=%v, want %d and %d", m, out.ALG, out.OPT, m, 2*m-1)
		}
		if want := 2 - 1/float64(m); math.Abs(out.Ratio-want) > 1e-9 {
			t.Fatalf("m=%d: ratio=%v, want 2−1/m = %v", m, out.Ratio, want)
		}
	}
}

// TestClassSegPreemption: a full buffer of class-0 packets is preempted
// newest-first by higher-class arrivals, and service is strict
// priority.
func TestClassSegPreemption(t *testing.T) {
	in := &Instance{
		Name:   "cseg",
		Model:  ModelShared,
		Queues: 2,
		Buffer: 2,
		Arrivals: []Arrival{
			{At: 0, Queue: 0, Value: 1},
			{At: 0, Queue: 0, Value: 1},
			{At: 0, Queue: 1, Value: 5},
			{At: 0, Queue: 1, Value: 5},
		},
	}
	out, err := Evaluate(mustPolicy(t, "cseg"), in)
	if err != nil {
		t.Fatal(err)
	}
	// Both class-0 packets are pushed out; both class-1 packets go
	// through, matching the optimum.
	if out.ALG != 10 || out.Ratio != 1 {
		t.Fatalf("cseg: ALG=%v ratio=%v, want 10 and 1", out.ALG, out.Ratio)
	}
}

// TestSemiGreedyEqualsLQFAtBOne: with B=1 every nonempty queue is above
// half capacity, so semi-greedy degenerates to LQF and meets the same
// construction ratio.
func TestSemiGreedyEqualsLQFAtBOne(t *testing.T) {
	in := &Instance{
		Name:   "lb",
		Model:  ModelMultiQueue,
		Queues: 2,
		Buffer: 1,
		Arrivals: []Arrival{
			{At: 0, Queue: 0, Value: 1},
			{At: 0, Queue: 1, Value: 1},
			{At: 1, Queue: 1, Value: 1},
		},
	}
	for _, name := range []string{"lqf", "semigreedy"} {
		out, err := Evaluate(mustPolicy(t, name), in)
		if err != nil {
			t.Fatal(err)
		}
		if out.ALG != 2 || out.OPT != 3 {
			t.Fatalf("%s: ALG=%v OPT=%v, want 2 and 3", name, out.ALG, out.OPT)
		}
	}
}

// TestPoliciesWithinBounds draws random instances and checks every
// bounded policy stays within its proven competitive ratio against the
// exact optimum — the same invariant the qfuzz oracle enforces.
func TestPoliciesWithinBounds(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, p := range Policies() {
		if p.Bound == 0 {
			continue
		}
		for trial := 0; trial < 100; trial++ {
			in := randomInstance(r, p.Model)
			out, err := Evaluate(p, in)
			if err != nil {
				t.Fatal(err)
			}
			if out.Ratio > p.Bound+1e-9 {
				t.Fatalf("%s trial %d: ratio %v exceeds bound %v on %+v", p.Name, trial, out.Ratio, p.Bound, in)
			}
		}
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	_, err := PolicyByName("nope")
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("err = %v, want unknown-policy error", err)
	}
}

func TestRunRejectsModelMismatch(t *testing.T) {
	in := &Instance{Model: ModelMultiQueue, Queues: 2, Buffer: 1}
	if _, err := Run(mustPolicy(t, "greedy"), in); err == nil {
		t.Fatal("Run accepted a model mismatch")
	}
}

// TestShrinkInstance keeps the failure and reaches a local minimum.
func TestShrinkInstance(t *testing.T) {
	in := twoValueInstance(3, 10)
	in.Arrivals = append(in.Arrivals, Arrival{At: 5, Value: 2}) // noise
	failing := func(c *Instance) bool {
		out, err := Evaluate(mustPolicy(t, "greedy-np"), c)
		return err == nil && out.Ratio > 3
	}
	if !failing(in) {
		t.Fatal("setup: instance should fail")
	}
	small := ShrinkInstance(in, failing)
	if !failing(small) {
		t.Fatal("shrunk instance no longer fails")
	}
	if len(small.Arrivals) >= len(in.Arrivals) {
		t.Fatalf("shrink removed nothing: %d arrivals", len(small.Arrivals))
	}
	// 1-minimal: dropping any remaining arrival stops the failure.
	for i := range small.Arrivals {
		cand := small.Clone()
		cand.Arrivals = append(cand.Arrivals[:i], cand.Arrivals[i+1:]...)
		if len(cand.Arrivals) > 0 && failing(cand) {
			t.Fatalf("shrink not minimal: arrival %d removable", i)
		}
	}
}

// TestInstanceRoundTrip pins the JSON reproducer format.
func TestInstanceRoundTrip(t *testing.T) {
	in := twoValueInstance(2, 10)
	var buf strings.Builder
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Buffer != in.Buffer || len(back.Arrivals) != len(in.Arrivals) || back.Model != in.Model {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, in)
	}
	if _, err := Parse(strings.NewReader(`{"model":"shared","queues":1,"buffer":1,"bogus":true}`)); err == nil {
		t.Fatal("Parse accepted an unknown field")
	}
}
