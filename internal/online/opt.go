package online

import (
	"fmt"
	"math"
)

// maxOptNodes bounds the time-expanded graph so a pathological instance
// (a few arrivals spread over a huge horizon) fails loudly instead of
// exhausting memory. Solver-sized instances are far below this.
const maxOptNodes = 4 << 20

// Opt returns the exact offline-optimal benefit for the instance: the
// maximum total value any schedule can transmit, knowing the whole
// arrival sequence in advance and obeying the same buffer discipline as
// the online policies (occupancy after each step's arrivals is at most
// B per buffer; one transmission per step).
//
// The computation is a min-cost max-flow matching of packets to
// transmission slots on a time-expanded graph. Per chain c (one chain
// per queue in the multi-queue model; a single chain for the shared
// buffer) and step t:
//
//	source → in(c, at)     cap 1, cost −value   (one edge per packet)
//	in(c,t) → out(c,t)     cap B                (occupancy after arrivals)
//	out(c,t) → in(c,t+1)   cap B                (carry to the next step)
//	out(c,t) → slot(t)     cap 1                (this chain transmits at t)
//	slot(t) → sink         cap 1                (one transmission per step)
//
// Only source edges have negative cost, so the residual graph has no
// negative cycles and successive shortest paths (SPFA) augmenting while
// the path cost stays negative yield the maximum-benefit flow. Each
// augmentation routes exactly one packet (source edges have unit
// capacity), so the loop runs at most len(Arrivals) times.
func Opt(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(in.Arrivals) == 0 {
		return 0, nil
	}
	chains := 1
	if in.Model == ModelMultiQueue {
		chains = in.Queues
	}
	T := in.horizon()
	if n := (2*chains + 1) * T; n > maxOptNodes {
		return 0, fmt.Errorf("online: instance %s too large for exact solver (%d nodes > %d)", in.Name, n, maxOptNodes)
	}
	// Node layout: 0 = source, 1 = sink, then per step t the block
	// [slot(t), in(0,t), out(0,t), in(1,t), out(1,t), …].
	block := 1 + 2*chains
	nodes := 2 + block*T
	slot := func(t int) int { return 2 + block*t }
	inN := func(c, t int) int { return 2 + block*t + 1 + 2*c }
	outN := func(c, t int) int { return 2 + block*t + 2 + 2*c }

	g := newFlowGraph(nodes)
	capB := int64(in.Buffer)
	for t := 0; t < T; t++ {
		g.addEdge(slot(t), 1, 1, 0)
		for c := 0; c < chains; c++ {
			g.addEdge(inN(c, t), outN(c, t), capB, 0)
			g.addEdge(outN(c, t), slot(t), 1, 0)
			if t+1 < T {
				g.addEdge(outN(c, t), inN(c, t+1), capB, 0)
			}
		}
	}
	for _, a := range in.Arrivals {
		c := 0
		if in.Model == ModelMultiQueue {
			c = a.Queue
		}
		g.addEdge(0, inN(c, a.At), 1, -a.Value)
	}

	var benefit float64
	for {
		cost, ok := g.augment(0, 1)
		if !ok || cost >= 0 {
			return benefit, nil
		}
		benefit += -cost
	}
}

// flowGraph is a minimal successive-shortest-paths min-cost max-flow
// implementation (adjacency lists of paired residual edges, SPFA for
// shortest paths — costs can be negative but no negative cycles exist
// in the graphs Opt builds).
type flowGraph struct {
	head []int // first edge index per node, -1 terminated lists
	next []int
	to   []int
	cap  []int64
	cost []float64
}

func newFlowGraph(nodes int) *flowGraph {
	head := make([]int, nodes)
	for i := range head {
		head[i] = -1
	}
	return &flowGraph{head: head}
}

// addEdge appends a directed edge and its zero-capacity reverse twin
// (twin index = edge index ^ 1).
func (g *flowGraph) addEdge(from, to int, capacity int64, cost float64) {
	g.pushEdge(from, to, capacity, cost)
	g.pushEdge(to, from, 0, -cost)
}

func (g *flowGraph) pushEdge(from, to int, capacity int64, cost float64) {
	g.next = append(g.next, g.head[from])
	g.head[from] = len(g.to)
	g.to = append(g.to, to)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
}

// augment finds a minimum-cost source→sink path in the residual graph
// and pushes one unit of flow along it, returning the path cost. ok is
// false when the sink is unreachable.
func (g *flowGraph) augment(source, sink int) (float64, bool) {
	n := len(g.head)
	dist := make([]float64, n)
	prev := make([]int, n) // edge used to reach the node
	inQueue := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	inQueue[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for e := g.head[u]; e >= 0; e = g.next[e] {
			if g.cap[e] <= 0 {
				continue
			}
			v := g.to[e]
			if d := dist[u] + g.cost[e]; d < dist[v] {
				dist[v] = d
				prev[v] = e
				if !inQueue[v] {
					queue = append(queue, v)
					inQueue[v] = true
				}
			}
		}
	}
	if prev[sink] < 0 {
		return 0, false
	}
	// Source edges have unit capacity, so the bottleneck is always 1.
	for v := sink; v != source; {
		e := prev[v]
		g.cap[e]--
		g.cap[e^1]++
		v = g.to[e^1]
	}
	return dist[sink], true
}

// maxBruteForceArrivals caps the exponential enumeration in
// BruteForceOpt.
const maxBruteForceArrivals = 16

// BruteForceOpt computes the offline optimum by enumerating every
// subset of arrivals and checking schedulability directly. Exponential
// — it refuses instances above maxBruteForceArrivals packets — and
// exists solely to verify Opt on tiny instances.
func BruteForceOpt(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	n := len(in.Arrivals)
	if n > maxBruteForceArrivals {
		return 0, fmt.Errorf("online: %d arrivals exceed the brute-force limit of %d", n, maxBruteForceArrivals)
	}
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var value float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				value += in.Arrivals[i].Value
			}
		}
		if value <= best {
			continue
		}
		if schedulable(in, mask) {
			best = value
		}
	}
	return best, nil
}

// schedulable reports whether the subset of arrivals selected by mask
// can all be transmitted under the instance's buffer discipline.
func schedulable(in *Instance, mask int) bool {
	chains := 1
	if in.Model == ModelMultiQueue {
		chains = in.Queues
	}
	counts := make([]int, chains)
	if chains == 1 {
		// Single chain: serving the (only) nonempty chain whenever
		// possible is trivially optimal, no search needed.
		i := 0
		for t := 0; t < in.horizon(); t++ {
			for ; i < len(in.Arrivals) && in.Arrivals[i].At == t; i++ {
				if mask&(1<<i) != 0 {
					counts[0]++
				}
			}
			if counts[0] > in.Buffer {
				return false
			}
			if counts[0] > 0 {
				counts[0]--
			}
		}
		return counts[0] == 0
	}
	// Multi-queue: which chain to serve each step matters, so search
	// over service choices with memoization on (arrival index, step,
	// counts).
	seen := make(map[string]bool)
	var try func(i, t int, prev []int) bool
	try = func(i, t int, prev []int) bool {
		counts := append([]int(nil), prev...)
		for ; i < len(in.Arrivals) && in.Arrivals[i].At == t; i++ {
			if mask&(1<<i) != 0 {
				counts[in.Arrivals[i].Queue]++
			}
		}
		total := 0
		for _, c := range counts {
			if c > in.Buffer {
				return false
			}
			total += c
		}
		if i >= len(in.Arrivals) {
			// No arrivals left: the backlog drains freely, one per step.
			return true
		}
		if total == 0 {
			// Idle until the next arrival batch.
			return try(i, in.Arrivals[i].At, counts)
		}
		key := fmt.Sprint(i, t, counts)
		if seen[key] {
			return false
		}
		for q := range counts {
			if counts[q] == 0 {
				continue
			}
			counts[q]--
			ok := try(i, t+1, counts)
			counts[q]++
			if ok {
				return true
			}
		}
		seen[key] = true
		return false
	}
	return try(0, 0, counts)
}
