package core

import (
	"fmt"
	"math"
	"sort"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// BufferSavingsDirect evaluates the right-hand side of equation (17)
// directly,
//
//	Σ_{i<j} (√(σ̂ᵢρ̂ⱼ) − √(σ̂ⱼρ̂ᵢ))² / (R − ρ)
//
// which the claim in §4.1 shows equals B_FIFO − B_hybrid. Having both
// forms lets tests verify the paper's algebra.
func BufferSavingsDirect(r units.Rate, groups []Group) (units.Bytes, error) {
	var rho float64
	for _, g := range groups {
		rho += g.Rho.BitsPerSecond()
	}
	if rho >= r.BitsPerSecond() {
		return 0, fmt.Errorf("core: reserved rate %v ≥ link rate %v", units.Rate(rho), r)
	}
	var num float64 // in bits·(bits/s)
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			a := math.Sqrt(groups[i].Sigma.Bits() * groups[j].Rho.BitsPerSecond())
			b := math.Sqrt(groups[j].Sigma.Bits() * groups[i].Rho.BitsPerSecond())
			num += (a - b) * (a - b)
		}
	}
	return units.Bytes(num / (r.BitsPerSecond() - rho) / 8), nil
}

// groupingCost returns S = Σ√(σ̂ᵢρ̂ᵢ) for a queue assignment; since
// B_hybrid = σ + S²/(R−ρ) (equation 19), minimizing S minimizes the
// hybrid buffer requirement for any fixed link and flow set.
func groupingCost(specs []packet.FlowSpec, queueOf []int, k int) float64 {
	groups, err := GroupFlows(specs, queueOf, k)
	if err != nil {
		return math.Inf(1)
	}
	s := 0.0
	for _, g := range groups {
		s += math.Sqrt(g.Sigma.Bits() * g.Rho.BitsPerSecond())
	}
	return s
}

// OptimizeGroupingExhaustive searches all assignments of n flows to at
// most k queues for the one minimizing the hybrid buffer requirement.
// It is exponential (k^n with symmetry pruning) and intended for small
// n (≲ 12); larger inputs should use OptimizeGroupingDP.
func OptimizeGroupingExhaustive(specs []packet.FlowSpec, k int) ([]int, error) {
	n := len(specs)
	if n == 0 || k <= 0 {
		return nil, fmt.Errorf("core: need flows and queues (n=%d, k=%d)", n, k)
	}
	if k > n {
		k = n
	}
	if n > 14 {
		return nil, fmt.Errorf("core: exhaustive grouping infeasible for %d flows; use OptimizeGroupingDP", n)
	}
	best := make([]int, n)
	cur := make([]int, n)
	bestCost := math.Inf(1)
	// Restricted-growth enumeration: flow i may start a new group only
	// if all groups below it are in use, eliminating label symmetry.
	var rec func(i, used int)
	rec = func(i, used int) {
		if i == n {
			if c := groupingCost(specs, cur, k); c < bestCost {
				bestCost = c
				copy(best, cur)
			}
			return
		}
		limit := used
		if limit >= k {
			limit = k - 1
		}
		for q := 0; q <= limit; q++ {
			cur[i] = q
			next := used
			if q == used {
				next++
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	return best, nil
}

// OptimizeGroupingDP is the scalable grouping heuristic: flows are
// sorted by their burst-to-rate ratio σ/ρ and partitioned into at most
// k contiguous segments by dynamic programming, minimizing S. The
// intuition matches the paper's guidance that queues should separate
// low-burstiness flows (e.g. IP telephony) from high-burstiness ones
// (e.g. video on demand): flows with similar σ/ρ share a queue.
func OptimizeGroupingDP(specs []packet.FlowSpec, k int) ([]int, error) {
	n := len(specs)
	if n == 0 || k <= 0 {
		return nil, fmt.Errorf("core: need flows and queues (n=%d, k=%d)", n, k)
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ratio := func(i int) float64 {
		return specs[i].BucketSize.Bits() / specs[i].TokenRate.BitsPerSecond()
	}
	sort.Slice(order, func(a, b int) bool { return ratio(order[a]) < ratio(order[b]) })

	// Prefix sums over the sorted order.
	prefSigma := make([]float64, n+1)
	prefRho := make([]float64, n+1)
	for i, idx := range order {
		prefSigma[i+1] = prefSigma[i] + specs[idx].BucketSize.Bits()
		prefRho[i+1] = prefRho[i] + specs[idx].TokenRate.BitsPerSecond()
	}
	segCost := func(a, b int) float64 { // flows [a, b) of the sorted order
		return math.Sqrt((prefSigma[b] - prefSigma[a]) * (prefRho[b] - prefRho[a]))
	}

	const inf = math.MaxFloat64
	// dp[j][i]: min cost of splitting the first i flows into j segments.
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for j := range dp {
		dp[j] = make([]float64, n+1)
		cut[j] = make([]int, n+1)
		for i := range dp[j] {
			dp[j][i] = inf
		}
	}
	dp[0][0] = 0
	for j := 1; j <= k; j++ {
		for i := 1; i <= n; i++ {
			for a := j - 1; a < i; a++ {
				if dp[j-1][a] == inf {
					continue
				}
				if c := dp[j-1][a] + segCost(a, i); c < dp[j][i] {
					dp[j][i] = c
					cut[j][i] = a
				}
			}
		}
	}
	bestJ, bestCost := 1, dp[1][n]
	for j := 2; j <= k; j++ {
		if dp[j][n] < bestCost {
			bestJ, bestCost = j, dp[j][n]
		}
	}
	_ = bestCost
	queueOf := make([]int, n)
	i := n
	for j := bestJ; j >= 1; j-- {
		a := cut[j][i]
		for p := a; p < i; p++ {
			queueOf[order[p]] = j - 1
		}
		i = a
	}
	return queueOf, nil
}
