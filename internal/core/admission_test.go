package core

import (
	"strings"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func TestAdmissionWFQRegion(t *testing.T) {
	// WFQ region (eqs. 5-6): R ≥ Σρ and B ≥ Σσ.
	a := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	if got := a.Admit(spec(50, 20)); got != Accepted {
		t.Fatalf("first flow: %v", got)
	}
	// Second flow pushes Σσ to 120KB > 100KB: buffer limited.
	if got := a.Admit(spec(70, 20)); got != BufferLimited {
		t.Errorf("want buffer-limited, got %v", got)
	}
	// A small-burst flow pushing Σρ over R: bandwidth limited.
	if got := a.Admit(spec(10, 30)); got != BandwidthLimited {
		t.Errorf("want bandwidth-limited, got %v", got)
	}
	// Within both constraints: accepted.
	if got := a.Admit(spec(10, 4)); got != Accepted {
		t.Errorf("fitting flow rejected: %v", got)
	}
	if a.NumFlows() != 2 {
		t.Errorf("NumFlows = %d, want 2", a.NumFlows())
	}
}

func TestAdmissionFIFORegionTighter(t *testing.T) {
	// The same flow set can be WFQ-schedulable but FIFO-buffer-limited
	// (the §2.3 point). Σσ = 300KB, u = 0.5 ⇒ FIFO needs B ≥ 600KB.
	flows := []packet.FlowSpec{spec(150, 12), spec(150, 12)}
	wfq := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(400))
	fifo := NewSerialAdmitter(DisciplineFIFO, units.MbitsPerSecond(48), units.KiloBytes(400))
	for _, f := range flows[:1] {
		if wfq.Admit(f) != Accepted || fifo.Admit(f) != Accepted {
			t.Fatal("first flow rejected")
		}
	}
	if got := wfq.Admit(flows[1]); got != Accepted {
		t.Errorf("WFQ rejected second flow: %v", got)
	}
	if got := fifo.Admit(flows[1]); got != BufferLimited {
		t.Errorf("FIFO should be buffer-limited, got %v", got)
	}
}

func TestAdmissionFIFOMatchesRequiredBuffer(t *testing.T) {
	// The FIFO controller accepts the Table 1 set exactly when
	// B ≥ RequiredBufferFIFO.
	specs := table1Specs()
	need, err := RequiredBufferFIFO(specs, units.MbitsPerSecond(48))
	if err != nil {
		t.Fatal(err)
	}
	admitAll := func(b units.Bytes) bool {
		a := NewSerialAdmitter(DisciplineFIFO, units.MbitsPerSecond(48), b)
		for _, s := range specs {
			if a.Admit(s) != Accepted {
				return false
			}
		}
		return true
	}
	if !admitAll(need + 16) {
		t.Errorf("flow set rejected with sufficient buffer %v", need+16)
	}
	if admitAll(need * 9 / 10) {
		t.Errorf("flow set accepted with insufficient buffer %v", need*9/10)
	}
}

func TestAdmissionRelease(t *testing.T) {
	a := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	s := spec(60, 20)
	a.Admit(s)
	if a.Admit(spec(60, 20)) != BufferLimited {
		t.Fatal("expected buffer-limited before release")
	}
	if !a.Release(s) {
		t.Fatal("release of admitted flow failed")
	}
	if a.Release(s) {
		t.Error("double release succeeded")
	}
	if a.Admit(spec(60, 20)) != Accepted {
		t.Error("slot not freed after release")
	}
}

func TestAdmissionCheckDoesNotAdmit(t *testing.T) {
	a := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	if a.Check(spec(10, 1)) != Accepted {
		t.Fatal("check failed")
	}
	if a.NumFlows() != 0 {
		t.Error("Check admitted the flow")
	}
}

func TestAdmissionUtilization(t *testing.T) {
	a := NewSerialAdmitter(DisciplineFIFO, units.MbitsPerSecond(48), units.MegaBytes(10))
	a.Admit(spec(10, 12))
	a.Admit(spec(10, 12))
	if u := a.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestAdmissionInvalidSpec(t *testing.T) {
	a := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	if a.Check(packet.FlowSpec{}) == Accepted {
		t.Error("invalid spec accepted")
	}
}

func TestAdmissionFlowsCopy(t *testing.T) {
	a := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	a.Admit(spec(10, 1))
	flows := a.Flows()
	flows[0].BucketSize = 0
	if a.Flows()[0].BucketSize == 0 {
		t.Error("Flows() exposes internal state")
	}
}

func TestRejectReasonStrings(t *testing.T) {
	for _, c := range []struct {
		r    RejectReason
		want string
	}{
		{Accepted, "accepted"},
		{BandwidthLimited, "bandwidth"},
		{BufferLimited, "buffer"},
		{RejectReason(99), "99"},
	} {
		if !strings.Contains(c.r.String(), c.want) {
			t.Errorf("String(%d) = %q", int(c.r), c.r.String())
		}
	}
	if DisciplineWFQ.String() != "WFQ" || !strings.Contains(DisciplineFIFO.String(), "FIFO") {
		t.Error("discipline strings wrong")
	}
}

func TestAdmissionConstructorValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewSerialAdmitter(DisciplineWFQ, 0, 100) },
		func() { NewSerialAdmitter(DisciplineWFQ, units.Mbps, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
