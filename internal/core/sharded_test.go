package core

import (
	"sync"
	"testing"

	"bufqos/internal/units"
)

func twoLinks() *ShardedAdmitter {
	return NewShardedAdmitter([]LinkConfig{
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
		{DisciplineFIFO, units.MbitsPerSecond(48), units.MegaBytes(1)},
	})
}

func TestShardedLinkViewMatchesSerial(t *testing.T) {
	// The same op sequence on a linkView and a SerialAdmitter must give
	// identical decisions and aggregates.
	sa := twoLinks()
	view := sa.Link(0)
	serial := NewSerialAdmitter(DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	ops := []struct {
		admit bool
		s     float64
		r     float64
	}{
		{true, 50, 20}, {true, 70, 20}, {true, 10, 30}, {true, 10, 4},
		{false, 50, 20}, {true, 30, 2}, {false, 999, 1}, {false, 30, 2},
	}
	for i, op := range ops {
		if op.admit {
			if got, want := view.Admit(spec(op.s, op.r)), serial.Admit(spec(op.s, op.r)); got != want {
				t.Fatalf("op %d: sharded Admit = %v, serial = %v", i, got, want)
			}
		} else {
			if got, want := view.Release(spec(op.s, op.r)), serial.Release(spec(op.s, op.r)); got != want {
				t.Fatalf("op %d: sharded Release = %v, serial = %v", i, got, want)
			}
		}
	}
	vs, ss := view.Snapshot(), serial.Snapshot()
	if vs != ss {
		t.Errorf("snapshots diverge: sharded %+v, serial %+v", vs, ss)
	}
}

func TestShardedAdmitRouteAtomic(t *testing.T) {
	sa := twoLinks()
	// Link 0 (100KB WFQ) refuses σ=120KB; the all-or-nothing admit must
	// leave link 1 untouched too.
	if li, r := sa.AdmitRoute([]int{1, 0}, spec(120, 1)); li != 0 || r != BufferLimited {
		t.Fatalf("AdmitRoute = (%d, %v), want (0, buffer-limited)", li, r)
	}
	for i := 0; i < 2; i++ {
		if n := sa.Link(i).Snapshot().NumFlows; n != 0 {
			t.Errorf("link %d holds %d flows after failed route admit", i, n)
		}
	}
	if li, r := sa.AdmitRoute([]int{1, 0}, spec(50, 2)); li != -1 || r != Accepted {
		t.Fatalf("fitting route rejected: (%d, %v)", li, r)
	}
	if !sa.ReleaseRoute([]int{0, 1}, spec(50, 2)) {
		t.Error("ReleaseRoute of admitted spec failed")
	}
	if sa.ReleaseRoute([]int{0, 1}, spec(50, 2)) {
		t.Error("double ReleaseRoute succeeded")
	}
}

func TestShardedRejectInRouteOrder(t *testing.T) {
	// Both links refuse; the reported link must be the first on the
	// route, not the first in lock (ascending index) order.
	sa := NewShardedAdmitter([]LinkConfig{
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(10)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(10)},
	})
	if li, r := sa.AdmitRoute([]int{1, 0}, spec(50, 1)); li != 1 || r != BufferLimited {
		t.Errorf("AdmitRoute = (%d, %v), want (1, buffer-limited)", li, r)
	}
}

func TestShardedReroute(t *testing.T) {
	sa := NewShardedAdmitter([]LinkConfig{
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(60)},
	})
	s := spec(80, 2)
	if li, r := sa.AdmitRoute([]int{0, 1}, s); li != -1 || r != Accepted {
		t.Fatalf("admit: (%d, %v)", li, r)
	}
	// 0→{1,2}: link 2's 60KB refuses σ=80KB; nothing may change.
	if li, r := sa.Reroute([]int{0, 1}, []int{1, 2}, s); li != 2 || r != BufferLimited {
		t.Fatalf("reroute = (%d, %v), want (2, buffer-limited)", li, r)
	}
	for i, want := range []int{1, 1, 0} {
		if n := sa.Link(i).Snapshot().NumFlows; n != want {
			t.Errorf("after failed reroute, link %d has %d flows, want %d", i, n, want)
		}
	}
	// Shared link 1 keeps its reservation; 0 releases; nothing admits
	// twice on 1.
	if li, r := sa.Reroute([]int{0, 1}, []int{1}, s); li != -1 || r != Accepted {
		t.Fatalf("shrinking reroute rejected: (%d, %v)", li, r)
	}
	for i, want := range []int{0, 1, 0} {
		if n := sa.Link(i).Snapshot().NumFlows; n != want {
			t.Errorf("after reroute, link %d has %d flows, want %d", i, n, want)
		}
	}
}

// TestShardedRerouteIdentityNoOp: rerouting a flow onto its own route
// must succeed and change nothing — every link is on both routes, so no
// admission check runs and no reservation moves.
func TestShardedRerouteIdentityNoOp(t *testing.T) {
	sa := twoLinks()
	s := spec(50, 2)
	if li, r := sa.AdmitRoute([]int{0, 1}, s); li != -1 || r != Accepted {
		t.Fatalf("admit: (%d, %v)", li, r)
	}
	before := sa.Snapshot()
	for i := 0; i < 3; i++ {
		if li, r := sa.Reroute([]int{0, 1}, []int{0, 1}, s); li != -1 || r != Accepted {
			t.Fatalf("identity reroute %d rejected: (%d, %v)", i, li, r)
		}
	}
	after := sa.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("identity reroute moved link %d: %+v -> %+v", i, before[i], after[i])
		}
	}
	// The identity reroute even holds when the flow would no longer pass
	// a fresh admission check: fill link 0 to the brim first.
	if li, r := sa.Reroute([]int{0, 1}, []int{1, 0}, s); li != -1 || r != Accepted {
		t.Errorf("order-permuted identity reroute rejected: (%d, %v)", li, r)
	}
}

// TestShardedRerouteFailureLeavesAllUntouched: a reroute refused on its
// first genuinely-new link must leave every shard's snapshot — shared,
// old-only, and new-only — bit-identical to before.
func TestShardedRerouteFailureLeavesAllUntouched(t *testing.T) {
	sa := NewShardedAdmitter([]LinkConfig{
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(10)},
		{DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100)},
	})
	s := spec(50, 2)
	if li, r := sa.AdmitRoute([]int{0, 1}, s); li != -1 || r != Accepted {
		t.Fatalf("admit: (%d, %v)", li, r)
	}
	before := sa.Snapshot()
	// New route keeps 1, adds 2 (refuses: 10KB < σ=50KB) then 3. Link 2
	// is first in new-route order, so it is the reported refusal, and
	// link 3 must never see the spec.
	if li, r := sa.Reroute([]int{0, 1}, []int{1, 2, 3}, s); li != 2 || r != BufferLimited {
		t.Fatalf("reroute = (%d, %v), want (2, buffer-limited)", li, r)
	}
	after := sa.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("failed reroute changed link %d: %+v -> %+v", i, before[i], after[i])
		}
	}
	// And the flow is still releasable on its original route.
	if !sa.ReleaseRoute([]int{0, 1}, s) {
		t.Error("original route lost its reservation after a failed reroute")
	}
}

// TestShardedOneLinkHammer drives one link from 32 goroutines under
// -race: each worker admits its own distinct specs and releases every
// other one. The link is provisioned so everything fits, which makes
// the final aggregate independent of interleaving — it must equal a
// sequential replay of the same per-worker op streams exactly
// (NumFlows and the integer Σσ bit-for-bit).
func TestShardedOneLinkHammer(t *testing.T) {
	const workers = 32
	const perWorker = 200
	mk := func() *ShardedAdmitter {
		return NewShardedAdmitter([]LinkConfig{
			{DisciplineFIFO, units.Gbps, units.MegaBytes(1000)},
		})
	}
	workerSpec := func(w, i int) struct {
		s float64
		r float64
	} {
		return struct {
			s float64
			r float64
		}{s: 1 + float64(w*perWorker+i)/1000, r: 0.01}
	}

	conc := mk()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := conc.Link(0)
			for i := 0; i < perWorker; i++ {
				sp := workerSpec(w, i)
				if got := view.Admit(spec(sp.s, sp.r)); got != Accepted {
					t.Errorf("worker %d admit %d: %v", w, i, got)
					return
				}
				if i%2 == 1 {
					if !view.Release(spec(sp.s, sp.r)) {
						t.Errorf("worker %d release %d failed", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	seq := mk().Link(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			sp := workerSpec(w, i)
			seq.Admit(spec(sp.s, sp.r))
			if i%2 == 1 {
				seq.Release(spec(sp.s, sp.r))
			}
		}
	}
	got, want := conc.Link(0).Snapshot(), seq.Snapshot()
	if got.NumFlows != want.NumFlows || got.SumSigma != want.SumSigma {
		t.Errorf("concurrent aggregate (n=%d, Σσ=%v) != sequential replay (n=%d, Σσ=%v)",
			got.NumFlows, got.SumSigma, want.NumFlows, want.SumSigma)
	}
}

// TestShardedRouteRace has every worker admit-then-release routes over
// a shared trio of links in clashing orders; under -race this validates
// the canonical lock order (no deadlock) and the atomic check-commit
// (the aggregate returns to exactly zero at the end).
func TestShardedRouteRace(t *testing.T) {
	links := make([]LinkConfig, 8)
	for i := range links {
		links[i] = LinkConfig{DisciplineFIFO, units.Gbps, units.MegaBytes(100)}
	}
	sa := NewShardedAdmitter(links)
	routes := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 7, 3}, {3, 7, 1}, {4, 2, 6}, {6, 2, 4}}
	var wg sync.WaitGroup
	for w := 0; w < 24; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := spec(5+float64(w), 0.1)
			route := routes[w%len(routes)]
			for i := 0; i < 300; i++ {
				if li, r := sa.AdmitRoute(route, s); r != Accepted {
					t.Errorf("worker %d: admit (%d, %v)", w, li, r)
					return
				}
				if !sa.ReleaseRoute(route, s) {
					t.Errorf("worker %d: release failed", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range links {
		snap := sa.Link(i).Snapshot()
		if snap.NumFlows != 0 || snap.SumSigma != 0 || snap.SumRho != 0 {
			t.Errorf("link %d not empty after churn: %+v", i, snap)
		}
	}
}

func TestLegacyAdmissionControllerShim(t *testing.T) {
	// The deprecated alias and constructor must keep old callers
	// working against the renamed implementation.
	var ctl *AdmissionController = NewAdmissionController(
		DisciplineWFQ, units.MbitsPerSecond(48), units.KiloBytes(100))
	var _ Admitter = ctl
	if ctl.Admit(spec(50, 2)) != Accepted {
		t.Error("legacy shim admit failed")
	}
}
