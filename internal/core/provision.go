package core

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// WorstCaseFIFODelay returns the §1 bound on FIFO queueing delay: the
// time to drain a full buffer, B·8/R, plus one maximum packet of
// non-preemption. This is the figure behind "the worst case delay
// caused by a 1MByte buffer feeding an OC-48 link is less than
// 3.5msec".
func WorstCaseFIFODelay(b units.Bytes, r units.Rate, mtu units.Bytes) float64 {
	if r <= 0 {
		panic(fmt.Sprintf("core: non-positive link rate %v", r))
	}
	return (b.Bits() + mtu.Bits()) / r.BitsPerSecond()
}

// WFQDelayBound returns the PGPS worst-case delay for a
// (σ, ρ)-conformant flow scheduled with weight ρ on a link of rate r:
// σ/ρ + Lmax/R (plus one packet of non-preemption). This is the
// "tight delay guarantees" the paper trades away.
func WFQDelayBound(spec packet.FlowSpec, r units.Rate, mtu units.Bytes) float64 {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if r <= 0 {
		panic(fmt.Sprintf("core: non-positive link rate %v", r))
	}
	return spec.BucketSize.Bits()/spec.TokenRate.BitsPerSecond() +
		2*mtu.Bits()/r.BitsPerSecond()
}

// Hop describes one output port on a provisioned path.
type Hop struct {
	// Rate is the hop's link rate.
	Rate units.Rate
	// Buffer is the hop's total buffer.
	Buffer units.Bytes
	// Propagation is the link's propagation delay to the next hop.
	Propagation float64
	// Flows is the complete flow population at the hop (the provisioned
	// flow must be included).
	Flows []packet.FlowSpec
}

// PathPlan is the result of provisioning one flow across a path.
type PathPlan struct {
	// Thresholds[h] is the flow's occupancy threshold at hop h.
	Thresholds []units.Bytes
	// WorstCaseDelay is the end-to-end delay bound: Σ (Bₕ+L)/Rₕ + Σ prop.
	WorstCaseDelay float64
	// BurstAtHop[h] is the flow's effective burst parameter entering hop
	// h: FIFO multiplexing dilates σ by ρ·Dₕ per hop (the output of a
	// FIFO hop with worst delay D conforms to (σ + ρD, ρ)).
	BurstAtHop []units.Bytes
}

// ProvisionPath checks that the given flow (which must appear in every
// hop's population) is admissible at every hop under the FIFO+BM
// schedulability region, and returns the per-hop thresholds and the
// end-to-end worst-case delay bound. MTU is used for the per-hop
// non-preemption term.
func ProvisionPath(flow packet.FlowSpec, hops []Hop, mtu units.Bytes) (*PathPlan, error) {
	if err := flow.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("core: empty path")
	}
	plan := &PathPlan{
		Thresholds: make([]units.Bytes, len(hops)),
		BurstAtHop: make([]units.Bytes, len(hops)),
	}
	sigma := flow.BucketSize
	for h, hop := range hops {
		found := false
		var sumRho float64
		var sumSigma units.Bytes
		for _, f := range hop.Flows {
			if err := f.Validate(); err != nil {
				return nil, fmt.Errorf("core: hop %d: %w", h, err)
			}
			sumRho += f.TokenRate.BitsPerSecond()
			sumSigma += f.BucketSize
			if f == flow {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("core: hop %d population does not include the provisioned flow", h)
		}
		if sumRho >= hop.Rate.BitsPerSecond() {
			return nil, fmt.Errorf("core: hop %d bandwidth limited: Σρ = %v ≥ %v",
				h, units.Rate(sumRho), hop.Rate)
		}
		// Buffer constraint (eq. 8) with the flow's dilated burst.
		adjSigma := sumSigma - flow.BucketSize + sigma
		need := float64(hop.Buffer)*(1-sumRho/hop.Rate.BitsPerSecond()) - float64(adjSigma)
		if need < 0 {
			return nil, fmt.Errorf("core: hop %d buffer limited: B = %v insufficient for Σσ = %v at u = %.3f",
				h, hop.Buffer, adjSigma, sumRho/hop.Rate.BitsPerSecond())
		}
		plan.BurstAtHop[h] = sigma
		plan.Thresholds[h] = sigma + PeakRateThreshold(flow.TokenRate, hop.Rate, hop.Buffer)
		d := WorstCaseFIFODelay(hop.Buffer, hop.Rate, mtu)
		plan.WorstCaseDelay += d + hop.Propagation
		// The hop dilates the flow's burst by ρ·D for the next hop.
		sigma += units.Bytes(flow.TokenRate.BytesPerSecond() * d)
	}
	return plan, nil
}
