package core

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func TestExhaustiveGroupingBeatsPaperGrouping(t *testing.T) {
	// The optimizer must do at least as well (in S, hence in buffer) as
	// the paper's hand grouping of Table 1.
	specs := table1Specs()
	paper := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	best, err := OptimizeGroupingExhaustive(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := groupingCost(specs, best, 3), groupingCost(specs, paper, 3); got > ref+1e-9 {
		t.Errorf("exhaustive cost %v worse than paper grouping %v", got, ref)
	}
}

func TestExhaustiveGroupingSmallCase(t *testing.T) {
	// Two very different flows and k=2: separating them is optimal
	// (identical-ratio flows grouped together never hurt, mixed ones do).
	specs := []packet.FlowSpec{
		spec(10, 10), // low burst, high rate
		spec(200, 0.5),
	}
	q, err := OptimizeGroupingExhaustive(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] == q[1] {
		t.Errorf("optimizer merged heterogeneous flows: %v", q)
	}
}

func TestExhaustiveGroupingSingleQueue(t *testing.T) {
	specs := []packet.FlowSpec{spec(10, 1), spec(20, 2)}
	q, err := OptimizeGroupingExhaustive(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 0 || q[1] != 0 {
		t.Errorf("k=1 grouping = %v", q)
	}
}

func TestExhaustiveGroupingErrors(t *testing.T) {
	if _, err := OptimizeGroupingExhaustive(nil, 2); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := OptimizeGroupingExhaustive(table1Specs(), 0); err == nil {
		t.Error("zero queues accepted")
	}
	big := make([]packet.FlowSpec, 20)
	for i := range big {
		big[i] = spec(10, 1)
	}
	if _, err := OptimizeGroupingExhaustive(big, 3); err == nil {
		t.Error("oversized exhaustive search accepted")
	}
}

func TestDPGroupingMatchesExhaustiveOnTable1(t *testing.T) {
	// For the Table 1 workload the contiguous-by-ratio DP finds the
	// same cost as the exhaustive optimum.
	specs := table1Specs()
	ex, err := OptimizeGroupingExhaustive(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := OptimizeGroupingDP(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	ce, cd := groupingCost(specs, ex, 3), groupingCost(specs, dp, 3)
	if cd > ce+1e-6 {
		t.Errorf("DP cost %v vs exhaustive %v", cd, ce)
	}
}

func TestDPGroupingScales(t *testing.T) {
	// 100 flows in three natural classes: DP must keep classes together
	// (all flows of identical ratio share a queue).
	var specs []packet.FlowSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, spec(15, 0.6))
	}
	for i := 0; i < 30; i++ {
		specs = append(specs, spec(30, 2.4))
	}
	for i := 0; i < 30; i++ {
		specs = append(specs, spec(35, 0.3))
	}
	q, err := OptimizeGroupingDP(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Flows with identical profiles must be co-located.
	for group, span := range [][2]int{{0, 40}, {40, 70}, {70, 100}} {
		_ = group
		first := q[span[0]]
		for i := span[0]; i < span[1]; i++ {
			if q[i] != first {
				t.Fatalf("identical-profile flows %d and %d split across queues", span[0], i)
			}
		}
	}
}

func TestDPGroupingFewerQueuesWhenBeneficial(t *testing.T) {
	// With identical flows, one queue is optimal even when k allows 3:
	// splitting equal-ratio flows never reduces S (√ is concave:
	// √(a+b) ≤ √a + √b, so merging equal-ratio groups helps).
	specs := []packet.FlowSpec{spec(10, 1), spec(10, 1), spec(10, 1)}
	q, err := OptimizeGroupingDP(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != q[1] || q[1] != q[2] {
		t.Errorf("identical flows split: %v", q)
	}
}

func TestGroupingCostInfinityOnBadAssignment(t *testing.T) {
	if c := groupingCost(table1Specs(), []int{0}, 1); !math.IsInf(c, 1) {
		t.Errorf("bad assignment cost = %v, want +Inf", c)
	}
}

func TestBufferSavingsDirectOverReserved(t *testing.T) {
	groups := []Group{{Rho: units.MbitsPerSecond(50), Sigma: 1}}
	if _, err := BufferSavingsDirect(units.MbitsPerSecond(48), groups); err == nil {
		t.Error("over-reserved accepted")
	}
}

func TestSavingsGrowWithHeterogeneity(t *testing.T) {
	// Holding σ and ρ totals fixed, more heterogeneous groupings save
	// more buffer — the design guidance at the end of §4.1.
	r := units.MbitsPerSecond(48)
	homogeneous := []Group{
		{Rho: units.MbitsPerSecond(8), Sigma: units.KiloBytes(100)},
		{Rho: units.MbitsPerSecond(8), Sigma: units.KiloBytes(100)},
	}
	heterogeneous := []Group{
		{Rho: units.MbitsPerSecond(15), Sigma: units.KiloBytes(20)},
		{Rho: units.MbitsPerSecond(1), Sigma: units.KiloBytes(180)},
	}
	sHomo, err := BufferSavings(r, homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	sHet, err := BufferSavings(r, heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if sHet <= sHomo {
		t.Errorf("heterogeneous savings %v not above homogeneous %v", sHet, sHomo)
	}
	if sHomo > 16 {
		t.Errorf("identical groups saved %v, want ≈ 0", sHomo)
	}
}
