package core

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// RejectReason classifies why an admission request fails, following the
// §2.3 distinction: "the scheduler is deemed to be bandwidth limited
// ... conversely it is considered to be buffer limited".
type RejectReason int

const (
	// Accepted means the flow fits.
	Accepted RejectReason = iota
	// BandwidthLimited means Σρ would exceed the link rate (eq. 5/7).
	BandwidthLimited
	// BufferLimited means the buffer constraint fails (eq. 6/8).
	BufferLimited
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case BandwidthLimited:
		return "bandwidth-limited"
	case BufferLimited:
		return "buffer-limited"
	default:
		return fmt.Sprintf("RejectReason(%d)", int(r))
	}
}

// Discipline selects which schedulability region an AdmissionController
// enforces.
type Discipline int

const (
	// DisciplineWFQ uses equations (5)–(6): R ≥ Σρ, B ≥ Σσ.
	DisciplineWFQ Discipline = iota
	// DisciplineFIFO uses equations (7)–(8): R ≥ Σρ and
	// B ≥ (B/R)·Σρ + Σσ.
	DisciplineFIFO
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	if d == DisciplineWFQ {
		return "WFQ"
	}
	return "FIFO+thresholds"
}

// AdmissionController tracks the admitted flow set of a link and
// answers whether additional flows fit its schedulability region.
type AdmissionController struct {
	discipline Discipline
	rate       units.Rate
	buffer     units.Bytes
	flows      []packet.FlowSpec
	sumRho     float64 // bits/s
	sumSigma   units.Bytes
}

// NewAdmissionController returns an empty controller for a link of the
// given rate and total buffer.
func NewAdmissionController(d Discipline, rate units.Rate, buffer units.Bytes) *AdmissionController {
	if rate <= 0 || buffer <= 0 {
		panic(fmt.Sprintf("core: invalid link rate %v or buffer %v", rate, buffer))
	}
	return &AdmissionController{discipline: d, rate: rate, buffer: buffer}
}

// NumFlows returns the number of admitted flows.
func (a *AdmissionController) NumFlows() int { return len(a.flows) }

// Discipline returns the schedulability region the controller enforces.
func (a *AdmissionController) Discipline() Discipline { return a.discipline }

// Rate returns the link rate R the controller was built for.
func (a *AdmissionController) Rate() units.Rate { return a.rate }

// Buffer returns the total buffer B the controller was built for.
func (a *AdmissionController) Buffer() units.Bytes { return a.buffer }

// SumSigma returns Σσ over the admitted set.
func (a *AdmissionController) SumSigma() units.Bytes { return a.sumSigma }

// Utilization returns the reserved utilization u = Σρ/R of the admitted
// set.
func (a *AdmissionController) Utilization() float64 {
	return a.sumRho / a.rate.BitsPerSecond()
}

// Check reports whether spec fits without admitting it.
func (a *AdmissionController) Check(spec packet.FlowSpec) RejectReason {
	if err := spec.Validate(); err != nil {
		return BandwidthLimited
	}
	rho := a.sumRho + spec.TokenRate.BitsPerSecond()
	sigma := float64(a.sumSigma + spec.BucketSize)
	if rho > a.rate.BitsPerSecond() {
		return BandwidthLimited
	}
	switch a.discipline {
	case DisciplineWFQ:
		if sigma > float64(a.buffer) {
			return BufferLimited
		}
	case DisciplineFIFO:
		// B ≥ (B/R)·Σρ + Σσ  ⇔  B·(1 − Σρ/R) ≥ Σσ.
		if float64(a.buffer)*(1-rho/a.rate.BitsPerSecond()) < sigma {
			return BufferLimited
		}
	}
	return Accepted
}

// Admit adds spec to the admitted set when it fits, returning the
// decision.
func (a *AdmissionController) Admit(spec packet.FlowSpec) RejectReason {
	r := a.Check(spec)
	if r != Accepted {
		return r
	}
	a.flows = append(a.flows, spec)
	a.sumRho += spec.TokenRate.BitsPerSecond()
	a.sumSigma += spec.BucketSize
	return Accepted
}

// Release removes a previously admitted flow by index order equality of
// spec; it returns false when no matching flow is found.
func (a *AdmissionController) Release(spec packet.FlowSpec) bool {
	for i, f := range a.flows {
		if f == spec {
			a.flows = append(a.flows[:i], a.flows[i+1:]...)
			a.sumRho -= spec.TokenRate.BitsPerSecond()
			a.sumSigma -= spec.BucketSize
			return true
		}
	}
	return false
}

// Flows returns a copy of the admitted set.
func (a *AdmissionController) Flows() []packet.FlowSpec {
	return append([]packet.FlowSpec(nil), a.flows...)
}
