package core

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// RejectReason classifies why an admission request fails, following the
// §2.3 distinction: "the scheduler is deemed to be bandwidth limited
// ... conversely it is considered to be buffer limited".
type RejectReason int

const (
	// Accepted means the flow fits.
	Accepted RejectReason = iota
	// BandwidthLimited means Σρ would exceed the link rate (eq. 5/7).
	BandwidthLimited
	// BufferLimited means the buffer constraint fails (eq. 6/8).
	BufferLimited
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case BandwidthLimited:
		return "bandwidth-limited"
	case BufferLimited:
		return "buffer-limited"
	default:
		return fmt.Sprintf("RejectReason(%d)", int(r))
	}
}

// Discipline selects which schedulability region an admitter enforces.
type Discipline int

const (
	// DisciplineWFQ uses equations (5)–(6): R ≥ Σρ, B ≥ Σσ.
	DisciplineWFQ Discipline = iota
	// DisciplineFIFO uses equations (7)–(8): R ≥ Σρ and
	// B ≥ (B/R)·Σρ + Σσ.
	DisciplineFIFO
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	if d == DisciplineWFQ {
		return "WFQ"
	}
	return "FIFO+thresholds"
}

// Admitter is the narrow admission-control surface of one link: answer
// whether a flow fits the link's schedulability region, commit it,
// release it, and export a consistent view of the admitted aggregate.
// Two implementations exist: SerialAdmitter (single-goroutine, keeps
// the admitted specs) and ShardedAdmitter link views (mutex-guarded,
// safe for concurrent callers).
type Admitter interface {
	// Check reports whether spec fits without admitting it.
	Check(spec packet.FlowSpec) RejectReason
	// Admit adds spec to the admitted set when it fits, returning the
	// decision.
	Admit(spec packet.FlowSpec) RejectReason
	// Release removes one previously admitted instance of spec. It is
	// idempotent: releasing a spec that is not currently admitted
	// returns false and leaves the aggregate unchanged.
	Release(spec packet.FlowSpec) bool
	// Snapshot returns a consistent copy of the admitted aggregate.
	Snapshot() AdmissionSnapshot
}

// AdmissionSnapshot is a point-in-time view of one link's admitted
// aggregate — everything the admission regions (eqs. 5–8) depend on.
type AdmissionSnapshot struct {
	Discipline Discipline
	Rate       units.Rate
	Buffer     units.Bytes
	NumFlows   int
	// SumRho is Σρ over the admitted set.
	SumRho units.Rate
	// SumSigma is Σσ over the admitted set.
	SumSigma units.Bytes
}

// Utilization returns the reserved utilization u = Σρ/R.
func (s AdmissionSnapshot) Utilization() float64 {
	return s.SumRho.BitsPerSecond() / s.Rate.BitsPerSecond()
}

// checkRegion evaluates the paper's schedulability regions for a link
// (d, rate, buffer) whose admitted aggregate is (sumRho bits/s,
// sumSigma) against one additional spec. This is the single shared
// implementation behind both admitters.
func checkRegion(d Discipline, rate units.Rate, buffer units.Bytes,
	sumRho float64, sumSigma units.Bytes, spec packet.FlowSpec) RejectReason {
	if err := spec.Validate(); err != nil {
		return BandwidthLimited
	}
	rho := sumRho + spec.TokenRate.BitsPerSecond()
	sigma := float64(sumSigma + spec.BucketSize)
	if rho > rate.BitsPerSecond() {
		return BandwidthLimited
	}
	switch d {
	case DisciplineWFQ:
		if sigma > float64(buffer) {
			return BufferLimited
		}
	case DisciplineFIFO:
		// B ≥ (B/R)·Σρ + Σσ  ⇔  B·(1 − Σρ/R) ≥ Σσ.
		if float64(buffer)*(1-rho/rate.BitsPerSecond()) < sigma {
			return BufferLimited
		}
	}
	return Accepted
}
