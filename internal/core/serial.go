package core

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// SerialAdmitter tracks the admitted flow set of a link and answers
// whether additional flows fit its schedulability region. It is the
// single-goroutine implementation of Admitter used by per-run
// simulation code (the topology engine's admission plan, the churn
// experiment); a concurrent control plane uses ShardedAdmitter instead.
type SerialAdmitter struct {
	discipline Discipline
	rate       units.Rate
	buffer     units.Bytes
	flows      []packet.FlowSpec
	sumRho     float64 // bits/s
	sumSigma   units.Bytes
}

var _ Admitter = (*SerialAdmitter)(nil)

// NewSerialAdmitter returns an empty admitter for a link of the given
// rate and total buffer.
func NewSerialAdmitter(d Discipline, rate units.Rate, buffer units.Bytes) *SerialAdmitter {
	if rate <= 0 || buffer <= 0 {
		panic(fmt.Sprintf("core: invalid link rate %v or buffer %v", rate, buffer))
	}
	return &SerialAdmitter{discipline: d, rate: rate, buffer: buffer}
}

// NumFlows returns the number of admitted flows.
func (a *SerialAdmitter) NumFlows() int { return len(a.flows) }

// Discipline returns the schedulability region the admitter enforces.
func (a *SerialAdmitter) Discipline() Discipline { return a.discipline }

// Rate returns the link rate R the admitter was built for.
func (a *SerialAdmitter) Rate() units.Rate { return a.rate }

// Buffer returns the total buffer B the admitter was built for.
func (a *SerialAdmitter) Buffer() units.Bytes { return a.buffer }

// SumSigma returns Σσ over the admitted set.
func (a *SerialAdmitter) SumSigma() units.Bytes { return a.sumSigma }

// Utilization returns the reserved utilization u = Σρ/R of the admitted
// set.
func (a *SerialAdmitter) Utilization() float64 {
	return a.sumRho / a.rate.BitsPerSecond()
}

// Check reports whether spec fits without admitting it.
func (a *SerialAdmitter) Check(spec packet.FlowSpec) RejectReason {
	return checkRegion(a.discipline, a.rate, a.buffer, a.sumRho, a.sumSigma, spec)
}

// Admit adds spec to the admitted set when it fits, returning the
// decision.
func (a *SerialAdmitter) Admit(spec packet.FlowSpec) RejectReason {
	r := a.Check(spec)
	if r != Accepted {
		return r
	}
	a.flows = append(a.flows, spec)
	a.sumRho += spec.TokenRate.BitsPerSecond()
	a.sumSigma += spec.BucketSize
	return Accepted
}

// Release removes a previously admitted flow matching spec; it returns
// false when no matching flow is found. Release is fully idempotent: a
// double release or a release of a never-admitted spec leaves the
// aggregate (Σρ, Σσ) untouched. After a successful release the sums are
// recomputed from the surviving set, so long admit/release churn never
// accumulates floating-point drift in Σρ — Utilization() is exactly the
// fold over the flows currently admitted.
func (a *SerialAdmitter) Release(spec packet.FlowSpec) bool {
	for i, f := range a.flows {
		if f == spec {
			a.flows = append(a.flows[:i], a.flows[i+1:]...)
			a.sumRho, a.sumSigma = 0, 0
			for _, f := range a.flows {
				a.sumRho += f.TokenRate.BitsPerSecond()
				a.sumSigma += f.BucketSize
			}
			return true
		}
	}
	return false
}

// Flows returns a copy of the admitted set.
func (a *SerialAdmitter) Flows() []packet.FlowSpec {
	return append([]packet.FlowSpec(nil), a.flows...)
}

// Snapshot returns the admitted aggregate.
func (a *SerialAdmitter) Snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Discipline: a.discipline,
		Rate:       a.rate,
		Buffer:     a.buffer,
		NumFlows:   len(a.flows),
		SumRho:     units.Rate(a.sumRho),
		SumSigma:   a.sumSigma,
	}
}
