// Package core implements the paper's analytical results: buffer
// threshold computation (Propositions 1 and 2), the FIFO and WFQ
// schedulability regions and buffer requirements (§2.3), and the hybrid
// rate-allocation optimization (Proposition 3 and the §4.1 claim).
//
// Everything here is closed-form arithmetic over flow profiles — the
// simulation packages consume these numbers; the benchmarks check them
// against measured behaviour.
package core

import (
	"fmt"
	"math"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// PeakRateThreshold returns the §2.1 (Proposition 1) occupancy
// threshold B·ρ/R that guarantees lossless service to a peak-rate-ρ
// conformant flow sharing a FIFO buffer of size B on a link of rate R.
func PeakRateThreshold(rho, r units.Rate, b units.Bytes) units.Bytes {
	if r <= 0 {
		panic(fmt.Sprintf("core: non-positive link rate %v", r))
	}
	return units.Bytes(float64(b) * rho.BitsPerSecond() / r.BitsPerSecond())
}

// LeakyBucketThreshold returns the §2.2 (Proposition 2) threshold
// σ + B·ρ/R that guarantees lossless service to a (σ, ρ)-conformant
// flow.
func LeakyBucketThreshold(spec packet.FlowSpec, r units.Rate, b units.Bytes) units.Bytes {
	return spec.BucketSize + PeakRateThreshold(spec.TokenRate, r, b)
}

// Thresholds computes the per-flow buffer thresholds of §3.2 for a set
// of flows sharing a FIFO buffer of size b on a link of rate r:
// threshold_i = σᵢ + ρᵢ·B/R. Per the paper's footnote 5, when the
// buffer is larger than the sum of these thresholds, all thresholds are
// scaled up proportionally so the buffer is fully partitioned.
func Thresholds(specs []packet.FlowSpec, r units.Rate, b units.Bytes) ([]units.Bytes, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: non-positive link rate %v", r)
	}
	if b < 0 {
		return nil, fmt.Errorf("core: negative buffer size %v", b)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no flows")
	}
	raw := make([]float64, len(specs))
	var sum float64
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: flow %d: %w", i, err)
		}
		raw[i] = float64(s.BucketSize) + float64(b)*s.TokenRate.BitsPerSecond()/r.BitsPerSecond()
		sum += raw[i]
	}
	if sum < float64(b) && sum > 0 {
		scale := float64(b) / sum
		for i := range raw {
			raw[i] *= scale
		}
	}
	th := make([]units.Bytes, len(specs))
	for i, v := range raw {
		th[i] = units.Bytes(math.Round(v))
	}
	return th, nil
}

// RequiredBufferFIFO returns the minimum total buffer (equation 9) for
// the FIFO + threshold scheme to guarantee losslessness to every
// conformant flow:
//
//	B ≥ R·Σσᵢ / (R − Σρᵢ)
//
// It errors when the reserved rates exceed the link (the bandwidth
// constraint of equation 7 fails), since no buffer is then sufficient.
func RequiredBufferFIFO(specs []packet.FlowSpec, r units.Rate) (units.Bytes, error) {
	var sigma float64
	var rho float64
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return 0, fmt.Errorf("core: flow %d: %w", i, err)
		}
		sigma += float64(s.BucketSize)
		rho += s.TokenRate.BitsPerSecond()
	}
	if rho >= r.BitsPerSecond() {
		return 0, fmt.Errorf("core: reserved rate %v ≥ link rate %v: bandwidth limited", units.Rate(rho), r)
	}
	return units.Bytes(math.Ceil(r.BitsPerSecond() * sigma / (r.BitsPerSecond() - rho))), nil
}

// RequiredBufferWFQ returns the minimum total buffer for a per-flow WFQ
// scheduler (equation 6): Σσᵢ.
func RequiredBufferWFQ(specs []packet.FlowSpec) units.Bytes {
	var sum units.Bytes
	for _, s := range specs {
		sum += s.BucketSize
	}
	return sum
}

// BufferInflation returns the §2.3 buffer-cost ratio of FIFO+thresholds
// over WFQ at reserved utilization u = Σρ/R (equation 10): 1/(1−u).
// It returns +Inf at u ≥ 1.
func BufferInflation(u float64) float64 {
	if u < 0 {
		panic(fmt.Sprintf("core: negative utilization %v", u))
	}
	if u >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - u)
}

// ReservedUtilization returns u = Σρᵢ/R.
func ReservedUtilization(specs []packet.FlowSpec, r units.Rate) float64 {
	var rho float64
	for _, s := range specs {
		rho += s.TokenRate.BitsPerSecond()
	}
	return rho / r.BitsPerSecond()
}
