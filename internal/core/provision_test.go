package core

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func TestWorstCaseFIFODelayOC48(t *testing.T) {
	// The §1 quote: 1 MB buffer on OC-48 (2.4 Gb/s) -> < 3.5 ms.
	d := WorstCaseFIFODelay(units.MegaBytes(1), units.Rate(2.4e9), 500)
	if d >= 0.0035 {
		t.Errorf("OC-48 bound %v, paper claims < 3.5 ms", d)
	}
	// And the 48 Mb/s testbed: 1 MB -> ≈ 167 ms.
	d48 := WorstCaseFIFODelay(units.MegaBytes(1), units.MbitsPerSecond(48), 500)
	if math.Abs(d48-(8e6+4000)/48e6) > 1e-12 {
		t.Errorf("48 Mb/s bound %v", d48)
	}
}

func TestWFQDelayBound(t *testing.T) {
	s := spec(50, 8) // 50KB bucket, 8Mb/s
	d := WFQDelayBound(s, units.MbitsPerSecond(48), 500)
	want := 400000.0/8e6 + 2*4000.0/48e6
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("WFQ bound %v, want %v", d, want)
	}
	// WFQ's bound is rate-dependent and typically far tighter than the
	// shared-buffer FIFO bound at equal B — the §1 trade-off.
	fifo := WorstCaseFIFODelay(units.MegaBytes(2), units.MbitsPerSecond(48), 500)
	if d >= fifo {
		t.Errorf("WFQ bound %v not tighter than FIFO bound %v at 2MB", d, fifo)
	}
}

func TestDelayBoundValidation(t *testing.T) {
	for i, f := range []func(){
		func() { WorstCaseFIFODelay(1000, 0, 500) },
		func() { WFQDelayBound(packet.FlowSpec{}, units.Mbps, 500) },
		func() { WFQDelayBound(spec(10, 1), 0, 500) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func pathHops(flow packet.FlowSpec) []Hop {
	other := spec(100, 20)
	return []Hop{
		{Rate: units.MbitsPerSecond(48), Buffer: units.MegaBytes(2), Propagation: 0.002,
			Flows: []packet.FlowSpec{flow, other}},
		{Rate: units.MbitsPerSecond(48), Buffer: units.MegaBytes(2), Propagation: 0.003,
			Flows: []packet.FlowSpec{flow, other}},
	}
}

func TestProvisionPathHappy(t *testing.T) {
	flow := spec(50, 8)
	plan, err := ProvisionPath(flow, pathHops(flow), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Thresholds) != 2 {
		t.Fatalf("thresholds: %v", plan.Thresholds)
	}
	// Hop 0 threshold: σ + Bρ/R = 50KB + 2MB/6.
	want0 := units.KiloBytes(50) + PeakRateThreshold(flow.TokenRate, units.MbitsPerSecond(48), units.MegaBytes(2))
	if plan.Thresholds[0] != want0 {
		t.Errorf("hop 0 threshold %v, want %v", plan.Thresholds[0], want0)
	}
	// Burst dilation: hop 1 sees σ + ρ·D₀.
	d0 := WorstCaseFIFODelay(units.MegaBytes(2), units.MbitsPerSecond(48), 500)
	wantSigma := units.KiloBytes(50) + units.Bytes(flow.TokenRate.BytesPerSecond()*d0)
	if math.Abs(float64(plan.BurstAtHop[1]-wantSigma)) > 1 {
		t.Errorf("hop 1 burst %v, want %v", plan.BurstAtHop[1], wantSigma)
	}
	if plan.Thresholds[1] <= plan.Thresholds[0] {
		t.Error("hop 1 threshold should exceed hop 0 (dilated burst)")
	}
	// End-to-end delay: two hop bounds plus both propagations.
	wantDelay := 2*d0 + 0.005
	if math.Abs(plan.WorstCaseDelay-wantDelay) > 1e-12 {
		t.Errorf("worst delay %v, want %v", plan.WorstCaseDelay, wantDelay)
	}
}

func TestProvisionPathRejections(t *testing.T) {
	flow := spec(50, 8)
	// Flow missing from a hop.
	missing := pathHops(flow)
	missing[1].Flows = []packet.FlowSpec{spec(100, 20)}
	if _, err := ProvisionPath(flow, missing, 500); err == nil {
		t.Error("missing flow accepted")
	}
	// Bandwidth limited.
	bw := pathHops(flow)
	bw[0].Flows = append(bw[0].Flows, spec(10, 25))
	if _, err := ProvisionPath(flow, bw, 500); err == nil {
		t.Error("over-reserved hop accepted")
	}
	// Buffer limited.
	small := pathHops(flow)
	small[0].Buffer = units.KiloBytes(100)
	if _, err := ProvisionPath(flow, small, 500); err == nil {
		t.Error("under-buffered hop accepted")
	}
	// Degenerate inputs.
	if _, err := ProvisionPath(flow, nil, 500); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := ProvisionPath(packet.FlowSpec{}, pathHops(flow), 500); err == nil {
		t.Error("invalid flow accepted")
	}
}
