package core_test

import (
	"fmt"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// The §3.2 threshold rule for a two-flow link: each flow's cap is
// σ + ρB/R.
func ExampleThresholds() {
	specs := []packet.FlowSpec{
		{TokenRate: units.MbitsPerSecond(8), BucketSize: units.KiloBytes(50)},
		{TokenRate: units.MbitsPerSecond(16), BucketSize: units.KiloBytes(100)},
	}
	th, err := core.Thresholds(specs, units.MbitsPerSecond(48), units.MegaBytes(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, t := range th {
		fmt.Printf("flow %d: %v\n", i, t)
	}
	// The raw caps (217KB, 433KB) sum below B, so footnote 5 scales
	// them up to partition the whole buffer.
	// Output:
	// flow 0: 333KB
	// flow 1: 667KB
}

// The §2.3 buffer requirements: WFQ needs Σσ; the FIFO threshold scheme
// needs 1/(1−u) times more.
func ExampleRequiredBufferFIFO() {
	specs := []packet.FlowSpec{
		{TokenRate: units.MbitsPerSecond(12), BucketSize: units.KiloBytes(150)},
		{TokenRate: units.MbitsPerSecond(12), BucketSize: units.KiloBytes(150)},
	}
	wfq := core.RequiredBufferWFQ(specs)
	fifo, err := core.RequiredBufferFIFO(specs, units.MbitsPerSecond(48))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("WFQ: %v, FIFO+thresholds: %v (inflation %.0fx at u=0.5)\n",
		wfq, fifo, core.BufferInflation(0.5))
	// Output:
	// WFQ: 300KB, FIFO+thresholds: 600KB (inflation 2x at u=0.5)
}

// Proposition 3's optimal excess split for the hybrid architecture.
func ExampleAllocateHybrid() {
	groups := []core.Group{
		{Rho: units.MbitsPerSecond(6), Sigma: units.KiloBytes(150)},  // telephony-like
		{Rho: units.MbitsPerSecond(24), Sigma: units.KiloBytes(300)}, // video-like
	}
	rates, err := core.AllocateHybrid(units.MbitsPerSecond(48), groups)
	if err != nil {
		fmt.Println(err)
		return
	}
	for q, r := range rates {
		fmt.Printf("queue %d: %v\n", q, r)
	}
	// Output:
	// queue 0: 10.7Mb/s
	// queue 1: 37.3Mb/s
}

// The admission controller enforcing the FIFO+BM schedulability region.
func ExampleSerialAdmitter() {
	ctl := core.NewSerialAdmitter(core.DisciplineFIFO,
		units.MbitsPerSecond(48), units.KiloBytes(600))
	req := packet.FlowSpec{TokenRate: units.MbitsPerSecond(12), BucketSize: units.KiloBytes(150)}
	fmt.Println(ctl.Admit(req))
	fmt.Println(ctl.Admit(req))
	fmt.Println(ctl.Admit(req)) // third 150KB burst no longer fits
	// Output:
	// accepted
	// accepted
	// buffer-limited
}
