package core

import "bufqos/internal/units"

// AdmissionController is the pre-redesign name of the single-threaded
// admitter.
//
// Deprecated: use SerialAdmitter (or the Admitter interface, which the
// concurrent ShardedAdmitter link views also satisfy).
type AdmissionController = SerialAdmitter

// NewAdmissionController returns an empty controller for a link of the
// given rate and total buffer.
//
// Deprecated: use NewSerialAdmitter.
func NewAdmissionController(d Discipline, rate units.Rate, buffer units.Bytes) *AdmissionController {
	return NewSerialAdmitter(d, rate, buffer)
}
