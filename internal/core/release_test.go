package core

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// exactAggregate folds Σρ/Σσ over a spec set in admission order — the
// ground truth Release must preserve.
func exactAggregate(specs []packet.FlowSpec) (rho float64, sigma units.Bytes) {
	for _, s := range specs {
		rho += s.TokenRate.BitsPerSecond()
		sigma += s.BucketSize
	}
	return
}

// TestReleaseIdempotent is the regression test for the Release bugfix:
// double releases and releases of never-admitted specs must return
// false and leave the aggregate bit-for-bit unchanged, interleaved
// arbitrarily with admits.
func TestReleaseIdempotent(t *testing.T) {
	for _, impl := range []struct {
		name string
		mk   func() Admitter
	}{
		{"serial", func() Admitter {
			return NewSerialAdmitter(DisciplineFIFO, units.MbitsPerSecond(480), units.MegaBytes(100))
		}},
		{"sharded", func() Admitter {
			return NewShardedAdmitter([]LinkConfig{
				{DisciplineFIFO, units.MbitsPerSecond(480), units.MegaBytes(100)},
			}).Link(0)
		}},
	} {
		t.Run(impl.name, func(t *testing.T) {
			a := impl.mk()
			var admitted []packet.FlowSpec
			check := func(step string) {
				t.Helper()
				rho, sigma := exactAggregate(admitted)
				snap := a.Snapshot()
				if snap.NumFlows != len(admitted) {
					t.Fatalf("%s: NumFlows = %d, want %d", step, snap.NumFlows, len(admitted))
				}
				if snap.SumSigma != sigma {
					t.Fatalf("%s: Σσ = %v, want %v", step, snap.SumSigma, sigma)
				}
				if got := snap.Utilization(); math.Abs(got-rho/480e6) > 1e-12 {
					t.Fatalf("%s: utilization = %v, want %v", step, got, rho/480e6)
				}
			}

			bogus := spec(33, 3.3) // never admitted
			for i := 0; i < 50; i++ {
				s := spec(10+float64(i), 0.7)
				if a.Admit(s) != Accepted {
					t.Fatalf("admit %d refused", i)
				}
				admitted = append(admitted, s)
				if a.Release(bogus) {
					t.Fatalf("release of never-admitted spec succeeded at %d", i)
				}
				check("after bogus release")
				if i%3 == 2 {
					victim := admitted[0]
					admitted = admitted[1:]
					if !a.Release(victim) {
						t.Fatalf("release of admitted spec failed at %d", i)
					}
					if a.Release(victim) {
						t.Fatalf("double release succeeded at %d", i)
					}
					check("after double release")
				}
			}
			// Drain completely: a fully released link must report an
			// exactly zero aggregate (no floating-point residue).
			for _, s := range admitted {
				if !a.Release(s) {
					t.Fatal("drain release failed")
				}
			}
			admitted = nil
			snap := a.Snapshot()
			if snap.NumFlows != 0 || snap.SumSigma != 0 || snap.Utilization() != 0 {
				t.Fatalf("drained link not exactly empty: %+v (u=%v)", snap, snap.Utilization())
			}
		})
	}
}
