package core

import (
	"fmt"
	"sort"
	"sync"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// LinkConfig declares one link of a ShardedAdmitter: the discipline's
// schedulability region plus the link's physical parameters.
type LinkConfig struct {
	Discipline Discipline
	Rate       units.Rate
	Buffer     units.Bytes
}

// admShard is one link's admission state: a mutex-guarded aggregate
// plus a multiset of the admitted specs, so Release can refuse specs
// that are not currently admitted (idempotency) in O(1).
type admShard struct {
	mu         sync.Mutex
	discipline Discipline
	rate       units.Rate
	buffer     units.Bytes
	nflows     int
	sumRho     float64 // bits/s
	sumSigma   units.Bytes
	admitted   map[packet.FlowSpec]int
}

func (s *admShard) checkLocked(spec packet.FlowSpec) RejectReason {
	return checkRegion(s.discipline, s.rate, s.buffer, s.sumRho, s.sumSigma, spec)
}

func (s *admShard) admitLocked(spec packet.FlowSpec) {
	s.admitted[spec]++
	s.nflows++
	s.sumRho += spec.TokenRate.BitsPerSecond()
	s.sumSigma += spec.BucketSize
}

func (s *admShard) releaseLocked(spec packet.FlowSpec) bool {
	n, ok := s.admitted[spec]
	if !ok {
		return false
	}
	if n == 1 {
		delete(s.admitted, spec)
	} else {
		s.admitted[spec] = n - 1
	}
	s.nflows--
	s.sumRho -= spec.TokenRate.BitsPerSecond()
	s.sumSigma -= spec.BucketSize
	if s.nflows == 0 {
		// Reset exactly: an empty link has a zero aggregate, whatever
		// floating-point residue the churn left behind.
		s.sumRho, s.sumSigma = 0, 0
	}
	return true
}

func (s *admShard) snapshotLocked() AdmissionSnapshot {
	return AdmissionSnapshot{
		Discipline: s.discipline,
		Rate:       s.rate,
		Buffer:     s.buffer,
		NumFlows:   s.nflows,
		SumRho:     units.Rate(s.sumRho),
		SumSigma:   s.sumSigma,
	}
}

// ShardedAdmitter is the concurrent admission controller behind qosd:
// one mutex-guarded shard per link, so joins on disjoint links never
// contend. Multi-link operations (AdmitRoute, ReleaseRoute, Reroute)
// lock the links they touch in canonical (ascending index) order, which
// makes any mix of concurrent requests deadlock-free, and hold all of
// them across the check-then-commit window, so a route admission is
// atomic — two racing joins can never both pass Check and jointly
// overshoot a link's region (no double-commit).
type ShardedAdmitter struct {
	shards []*admShard
}

// NewShardedAdmitter builds one shard per link.
func NewShardedAdmitter(links []LinkConfig) *ShardedAdmitter {
	if len(links) == 0 {
		panic("core: sharded admitter needs at least one link")
	}
	a := &ShardedAdmitter{shards: make([]*admShard, len(links))}
	for i, l := range links {
		if l.Rate <= 0 || l.Buffer <= 0 {
			panic(fmt.Sprintf("core: link %d: invalid rate %v or buffer %v", i, l.Rate, l.Buffer))
		}
		a.shards[i] = &admShard{
			discipline: l.Discipline,
			rate:       l.Rate,
			buffer:     l.Buffer,
			admitted:   make(map[packet.FlowSpec]int),
		}
	}
	return a
}

// NumLinks returns the number of link shards.
func (a *ShardedAdmitter) NumLinks() int { return len(a.shards) }

// Link returns the Admitter view of one link. The view is safe for
// concurrent use; single-link calls lock only that link's shard.
func (a *ShardedAdmitter) Link(i int) Admitter { return linkView{a.shards[i]} }

// Snapshot returns a consistent per-link snapshot of every shard.
// Cross-link consistency is per shard only: a concurrent multi-link
// admission may appear on some of its links and not yet on others.
func (a *ShardedAdmitter) Snapshot() []AdmissionSnapshot {
	out := make([]AdmissionSnapshot, len(a.shards))
	for i, s := range a.shards {
		s.mu.Lock()
		out[i] = s.snapshotLocked()
		s.mu.Unlock()
	}
	return out
}

// lockOrder returns the distinct link indices of one or two routes in
// ascending order — the canonical acquisition order.
func lockOrder(route, extra []int) []int {
	order := make([]int, 0, len(route)+len(extra))
	order = append(order, route...)
	order = append(order, extra...)
	sort.Ints(order)
	// Deduplicate in place (a route may share links with the other).
	w := 0
	for i, li := range order {
		if i == 0 || li != order[w-1] {
			order[w] = li
			w++
		}
	}
	return order[:w]
}

func (a *ShardedAdmitter) lockAll(order []int) {
	for _, li := range order {
		a.shards[li].mu.Lock()
	}
}

func (a *ShardedAdmitter) unlockAll(order []int) {
	for _, li := range order {
		a.shards[li].mu.Unlock()
	}
}

// AdmitRoute atomically admits spec on every link of route, or on none.
// On rejection it returns the first refusing link in *route order* (the
// same semantics as the topology engine's per-hop admission gate) and
// the paper's reason taxonomy; on success it returns (-1, Accepted).
// Route entries must be distinct links.
func (a *ShardedAdmitter) AdmitRoute(route []int, spec packet.FlowSpec) (int, RejectReason) {
	order := lockOrder(route, nil)
	a.lockAll(order)
	defer a.unlockAll(order)
	for _, li := range route {
		if r := a.shards[li].checkLocked(spec); r != Accepted {
			return li, r
		}
	}
	for _, li := range route {
		a.shards[li].admitLocked(spec)
	}
	return -1, Accepted
}

// ReleaseRoute releases spec on every link of route, returning true
// when every link held it. Like Release, it is idempotent per link.
func (a *ShardedAdmitter) ReleaseRoute(route []int, spec packet.FlowSpec) bool {
	order := lockOrder(route, nil)
	a.lockAll(order)
	defer a.unlockAll(order)
	all := true
	for _, li := range route {
		if !a.shards[li].releaseLocked(spec) {
			all = false
		}
	}
	return all
}

// Reroute atomically moves spec from route old to route new: links on
// both routes keep their reservation untouched, links only on new must
// admit it, links only on old release it. On rejection nothing changes
// and the first refusing new link (in new-route order) is returned; on
// success it returns (-1, Accepted).
func (a *ShardedAdmitter) Reroute(old, new []int, spec packet.FlowSpec) (int, RejectReason) {
	onOld := make(map[int]bool, len(old))
	for _, li := range old {
		onOld[li] = true
	}
	onNew := make(map[int]bool, len(new))
	for _, li := range new {
		onNew[li] = true
	}
	order := lockOrder(old, new)
	a.lockAll(order)
	defer a.unlockAll(order)
	for _, li := range new {
		if onOld[li] {
			continue
		}
		if r := a.shards[li].checkLocked(spec); r != Accepted {
			return li, r
		}
	}
	for _, li := range new {
		if !onOld[li] {
			a.shards[li].admitLocked(spec)
		}
	}
	for _, li := range old {
		if !onNew[li] {
			a.shards[li].releaseLocked(spec)
		}
	}
	return -1, Accepted
}

// linkView adapts one shard to the Admitter interface.
type linkView struct{ s *admShard }

var _ Admitter = linkView{}

// Check reports whether spec fits without admitting it.
func (v linkView) Check(spec packet.FlowSpec) RejectReason {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.checkLocked(spec)
}

// Admit adds spec to the admitted set when it fits.
func (v linkView) Admit(spec packet.FlowSpec) RejectReason {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	if r := v.s.checkLocked(spec); r != Accepted {
		return r
	}
	v.s.admitLocked(spec)
	return Accepted
}

// Release removes one admitted instance of spec, refusing (and leaving
// the aggregate untouched) when none is admitted.
func (v linkView) Release(spec packet.FlowSpec) bool {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.releaseLocked(spec)
}

// Snapshot returns the link's admitted aggregate.
func (v linkView) Snapshot() AdmissionSnapshot {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.snapshotLocked()
}
