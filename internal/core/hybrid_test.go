package core

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

// table1Groups is the §4.2 Case 1 grouping: {0,1,2}, {3,4,5}, {6,7,8}.
func table1Groups(t *testing.T) []Group {
	t.Helper()
	groups, err := GroupFlows(table1Specs(), []int{0, 0, 0, 1, 1, 1, 2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

func TestGroupFlowsAggregates(t *testing.T) {
	groups := table1Groups(t)
	// Queue 1: three (50KB, 2Mb/s) flows.
	if groups[0].Rho != units.MbitsPerSecond(6) || groups[0].Sigma != units.KiloBytes(150) {
		t.Errorf("group 0 = %+v, want 6Mb/s, 150KB", groups[0])
	}
	// Queue 2: three (100KB, 8Mb/s) flows.
	if groups[1].Rho != units.MbitsPerSecond(24) || groups[1].Sigma != units.KiloBytes(300) {
		t.Errorf("group 1 = %+v", groups[1])
	}
	// Queue 3: two (50KB, 0.4) and one (50KB, 2).
	if math.Abs(groups[2].Rho.Mbits()-2.8) > 1e-12 || groups[2].Sigma != units.KiloBytes(150) {
		t.Errorf("group 2 = %+v", groups[2])
	}
}

func TestGroupFlowsErrors(t *testing.T) {
	specs := table1Specs()
	if _, err := GroupFlows(specs, []int{0}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := GroupFlows(specs, []int{0, 0, 0, 0, 0, 0, 0, 0, 5}, 3); err == nil {
		t.Error("out-of-range queue accepted")
	}
	if _, err := GroupFlows(specs, make([]int, 9), 0); err == nil {
		t.Error("zero queues accepted")
	}
}

func TestOptimalAlphasNormalize(t *testing.T) {
	groups := table1Groups(t)
	alphas := OptimalAlphas(groups)
	sum := 0.0
	for _, a := range alphas {
		if a <= 0 {
			t.Errorf("alpha %v not positive", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σα = %v, want 1", sum)
	}
	// α ∝ √(σ̂ρ̂): group 1 (300KB, 24Mb/s) gets the largest share.
	if !(alphas[1] > alphas[0] && alphas[1] > alphas[2]) {
		t.Errorf("alphas = %v, want group 1 largest", alphas)
	}
}

func TestOptimalAlphasEmptyGroups(t *testing.T) {
	alphas := OptimalAlphas([]Group{{}, {Rho: units.Mbps, Sigma: 1000}})
	if alphas[0] != 0 || alphas[1] != 1 {
		t.Errorf("alphas = %v, want [0 1]", alphas)
	}
	zero := OptimalAlphas([]Group{{}, {}})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("all-empty alphas = %v", zero)
	}
}

func TestAllocateHybridRates(t *testing.T) {
	groups := table1Groups(t)
	r := units.MbitsPerSecond(48)
	rates, err := AllocateHybrid(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Rate
	for i, ri := range rates {
		if ri < groups[i].Rho {
			t.Errorf("queue %d rate %v below reservation %v", i, ri, groups[i].Rho)
		}
		sum += ri
	}
	if math.Abs(sum.BitsPerSecond()-48e6) > 1 {
		t.Errorf("ΣRᵢ = %v, want link rate", sum)
	}
}

func TestAllocateHybridOverReserved(t *testing.T) {
	groups := []Group{{Rho: units.MbitsPerSecond(48), Sigma: 1000}}
	if _, err := AllocateHybrid(units.MbitsPerSecond(48), groups); err == nil {
		t.Error("ρ = R accepted")
	}
}

func TestQueueBuffer(t *testing.T) {
	g := Group{Rho: units.MbitsPerSecond(24), Sigma: units.KiloBytes(300)}
	// Equation (11): B = R·σ̂/(R−ρ̂) with R = 32 Mb/s: 300KB·32/8 = 1200KB.
	got, err := QueueBuffer(units.MbitsPerSecond(32), g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-1.2e6) > 1 {
		t.Errorf("queue buffer %v, want 1.2MB", got)
	}
	if _, err := QueueBuffer(units.MbitsPerSecond(24), g); err == nil {
		t.Error("rate = reservation accepted")
	}
}

func TestHybridBufferIdentities(t *testing.T) {
	// Equation (18) summed must equal equation (19), and equation (19)
	// must equal Σ eq(11) under the optimal rates.
	groups := table1Groups(t)
	r := units.MbitsPerSecond(48)

	per, err := HybridBufferPerQueue(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	total, err := HybridBufferTotal(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Bytes
	for _, b := range per {
		sum += b
	}
	if sum != total {
		t.Errorf("Σ per-queue %v != total %v", sum, total)
	}

	rates, err := AllocateHybrid(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	var direct units.Bytes
	for i, g := range groups {
		b, err := QueueBuffer(rates[i], g)
		if err != nil {
			t.Fatal(err)
		}
		direct += b
	}
	// Rounding each queue up can differ by a few bytes.
	if math.Abs(float64(direct-total)) > 8 {
		t.Errorf("Σ eq(11) = %v vs eq(19) = %v", direct, total)
	}
}

func TestBufferSavingsMatchesDirectFormula(t *testing.T) {
	// The §4.1 claim: B_FIFO − B_hybrid equals the explicit equation
	// (17) sum. Verify the paper's algebra numerically.
	groups := table1Groups(t)
	r := units.MbitsPerSecond(48)
	viaDiff, err := BufferSavings(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	viaSum, err := BufferSavingsDirect(r, groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(viaDiff-viaSum)) > 16 {
		t.Errorf("savings mismatch: difference form %v, direct form %v", viaDiff, viaSum)
	}
	if viaDiff <= 0 {
		t.Errorf("savings %v, want positive for heterogeneous groups", viaDiff)
	}
}

func TestBufferSavingsZeroForProportionalGroups(t *testing.T) {
	// §4.1: αᵢ = ρ̂ᵢ/ρ (proportional σ̂/ρ̂ across queues) yields no
	// savings. Groups with identical σ̂/ρ̂ ratios have √(σ̂ᵢρ̂ⱼ) =
	// √(σ̂ⱼρ̂ᵢ), so equation (17) vanishes.
	groups := []Group{
		{Rho: units.MbitsPerSecond(4), Sigma: units.KiloBytes(40)},
		{Rho: units.MbitsPerSecond(8), Sigma: units.KiloBytes(80)},
		{Rho: units.MbitsPerSecond(16), Sigma: units.KiloBytes(160)},
	}
	got, err := BufferSavings(units.MbitsPerSecond(48), groups)
	if err != nil {
		t.Fatal(err)
	}
	if got > 16 {
		t.Errorf("savings %v for proportional groups, want ≈ 0", got)
	}
}

func TestProposition3Optimality(t *testing.T) {
	// The optimal alphas must (weakly) beat any perturbed allocation:
	// B_hybrid(α*) ≤ B_hybrid(α* + δ) for feasible perturbations.
	groups := table1Groups(t)
	r := units.MbitsPerSecond(48)
	var rho float64
	for _, g := range groups {
		rho += g.Rho.BitsPerSecond()
	}
	excess := r.BitsPerSecond() - rho

	bufFor := func(alphas []float64) float64 {
		total := 0.0
		for i, g := range groups {
			ri := g.Rho.BitsPerSecond() + alphas[i]*excess
			total += ri * g.Sigma.Bits() / (ri - g.Rho.BitsPerSecond())
		}
		return total
	}
	best := bufFor(OptimalAlphas(groups))
	perturbs := [][]float64{
		{0.05, -0.05, 0}, {-0.03, 0.01, 0.02}, {0.1, -0.02, -0.08}, {-0.01, -0.01, 0.02},
	}
	opt := OptimalAlphas(groups)
	for _, d := range perturbs {
		alphas := make([]float64, 3)
		ok := true
		for i := range alphas {
			alphas[i] = opt[i] + d[i]
			if alphas[i] <= 0 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		if b := bufFor(alphas); b < best-1e-6 {
			t.Errorf("perturbation %v beats the optimum: %v < %v", d, b, best)
		}
	}
}

func TestHybridThresholds(t *testing.T) {
	specs := table1Specs()
	queueOf := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	groups := table1Groups(t)
	queueBuf := []units.Bytes{units.KiloBytes(300), units.KiloBytes(600), units.KiloBytes(300)}
	th, err := HybridThresholds(specs, queueOf, groups, queueBuf)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0 in queue 0: σ + (ρ/ρ̂)·B₀ = 50KB + (2/6)·300KB = 150KB.
	if math.Abs(float64(th[0])-150000) > 1 {
		t.Errorf("flow 0 hybrid threshold %v, want 150KB", th[0])
	}
	// Flow 8 in queue 2: 50KB + (2/2.8)·300KB.
	want := 50000 + 2.0/2.8*300000
	if math.Abs(float64(th[8])-want) > 1 {
		t.Errorf("flow 8 hybrid threshold %v, want %.0f", th[8], want)
	}
}

func TestPartitionBuffer(t *testing.T) {
	got := PartitionBuffer(units.MegaBytes(1), []units.Bytes{100, 300, 600})
	if got[0] != 100000 || got[1] != 300000 || got[2] != 600000 {
		t.Errorf("partition = %v", got)
	}
	zero := PartitionBuffer(units.MegaBytes(1), []units.Bytes{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero-minimum partition = %v", zero)
	}
}

// Property: for any grouping of the Table 1 flows, hybrid total buffer
// never exceeds the single-FIFO requirement, and savings are
// non-negative (the §4.1 claim).
func TestPropertyHybridNeverWorse(t *testing.T) {
	specs := table1Specs()
	r := units.MbitsPerSecond(48)
	fifo, err := RequiredBufferFIFO(specs, r)
	if err != nil {
		t.Fatal(err)
	}
	f := func(assign [9]uint8, kSel uint8) bool {
		k := int(kSel%3) + 1
		queueOf := make([]int, 9)
		for i, a := range assign {
			queueOf[i] = int(a) % k
		}
		groups, err := GroupFlows(specs, queueOf, k)
		if err != nil {
			return false
		}
		// Skip degenerate groupings with an empty queue: equations (18)
		// and (11) differ there (footnote 6: a single/empty queue needs
		// only σ̂).
		for _, g := range groups {
			if g.Rho == 0 {
				return true
			}
		}
		hyb, err := HybridBufferTotal(r, groups)
		if err != nil {
			return false
		}
		return hyb <= fifo+16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
