package core

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func spec(sigmaKB, rhoMbps float64) packet.FlowSpec {
	return packet.FlowSpec{
		TokenRate:  units.MbitsPerSecond(rhoMbps),
		BucketSize: units.KiloBytes(sigmaKB),
	}
}

// table1Specs returns the (σ, ρ) profiles of the paper's Table 1.
func table1Specs() []packet.FlowSpec {
	return []packet.FlowSpec{
		spec(50, 2), spec(50, 2), spec(50, 2),
		spec(100, 8), spec(100, 8), spec(100, 8),
		spec(50, 0.4), spec(50, 0.4), spec(50, 2),
	}
}

func TestPeakRateThreshold(t *testing.T) {
	// Proposition 1 example: 1 MB buffer, 48 Mb/s link, 8 Mb/s flow:
	// threshold = B·ρ/R = 1 MB/6.
	got := PeakRateThreshold(units.MbitsPerSecond(8), units.MbitsPerSecond(48), units.MegaBytes(1))
	oneSixthMB := 1e6 / 6.0
	want := units.Bytes(oneSixthMB)
	if got != want {
		t.Errorf("threshold = %v, want %v", got, want)
	}
}

func TestLeakyBucketThreshold(t *testing.T) {
	s := spec(50, 8)
	got := LeakyBucketThreshold(s, units.MbitsPerSecond(48), units.MegaBytes(1))
	oneSixthMB := 1e6 / 6.0
	want := units.KiloBytes(50) + units.Bytes(oneSixthMB)
	if got != want {
		t.Errorf("threshold = %v, want σ + Bρ/R = %v", got, want)
	}
}

func TestThresholdsTable1(t *testing.T) {
	specs := table1Specs()
	r := units.MbitsPerSecond(48)
	b := units.MegaBytes(1)
	th, err := Thresholds(specs, r, b)
	if err != nil {
		t.Fatal(err)
	}
	// Σρ = 32.8 Mb/s (the paper: "aggregate reserved rate is 32.8 Mb/s,
	// or about 68% of the link capacity").
	u := ReservedUtilization(specs, r)
	if math.Abs(u-32.8/48) > 1e-12 {
		t.Errorf("utilization = %v, want 32.8/48", u)
	}
	// Raw thresholds sum = Σσ + B·Σρ/R = 600 KB + 1 MB·0.6833 > B, so
	// no scaling happens and each threshold is exactly σᵢ + ρᵢB/R.
	for i, s := range specs {
		want := float64(s.BucketSize) + 1e6*s.TokenRate.BitsPerSecond()/48e6
		if math.Abs(float64(th[i])-want) > 1 {
			t.Errorf("flow %d threshold %v, want %v", i, th[i], want)
		}
	}
}

func TestThresholdsScaleUpToPartition(t *testing.T) {
	// Big buffer: raw thresholds sum below B, so footnote 5 scaling
	// applies and Σthresholds == B.
	specs := []packet.FlowSpec{spec(10, 4), spec(20, 8)}
	b := units.MegaBytes(10)
	th, err := Thresholds(specs, units.MbitsPerSecond(48), b)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Bytes
	for _, v := range th {
		sum += v
	}
	if math.Abs(float64(sum-b)) > 2 {
		t.Errorf("scaled thresholds sum to %v, want full buffer %v", sum, b)
	}
	// Proportions preserved.
	raw0 := 10000.0 + 1e7*4e6/48e6
	raw1 := 20000.0 + 1e7*8e6/48e6
	if math.Abs(float64(th[0])/float64(th[1])-raw0/raw1) > 1e-6 {
		t.Errorf("scaling not proportional: %v/%v", th[0], th[1])
	}
}

func TestThresholdsErrors(t *testing.T) {
	good := []packet.FlowSpec{spec(10, 1)}
	if _, err := Thresholds(good, 0, 1000); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Thresholds(good, units.Mbps, -1); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := Thresholds(nil, units.Mbps, 1000); err == nil {
		t.Error("empty flow set accepted")
	}
	if _, err := Thresholds([]packet.FlowSpec{{}}, units.Mbps, 1000); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRequiredBufferFIFO(t *testing.T) {
	// Equation (9) for Table 1: B ≥ R·Σσ/(R−Σρ) = 48·600KB/15.2.
	specs := table1Specs()
	got, err := RequiredBufferFIFO(specs, units.MbitsPerSecond(48))
	if err != nil {
		t.Fatal(err)
	}
	want := 48.0 * 600000 / 15.2
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("required buffer %v, want %.0f", got, want)
	}
}

func TestRequiredBufferFIFOBandwidthLimited(t *testing.T) {
	specs := []packet.FlowSpec{spec(10, 30), spec(10, 30)}
	if _, err := RequiredBufferFIFO(specs, units.MbitsPerSecond(48)); err == nil {
		t.Error("over-reserved link accepted")
	}
}

func TestRequiredBufferWFQ(t *testing.T) {
	if got := RequiredBufferWFQ(table1Specs()); got != units.KiloBytes(600) {
		t.Errorf("WFQ buffer %v, want Σσ = 600KB", got)
	}
}

func TestBufferInflation(t *testing.T) {
	cases := []struct{ u, want float64 }{
		{0, 1}, {0.5, 2}, {0.9, 10}, {32.8 / 48, 48 / 15.2},
	}
	for _, c := range cases {
		if got := BufferInflation(c.u); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("inflation(%v) = %v, want %v", c.u, got, c.want)
		}
	}
	if !math.IsInf(BufferInflation(1), 1) || !math.IsInf(BufferInflation(1.2), 1) {
		t.Error("u ≥ 1 should give +Inf")
	}
}

func TestBufferInflationNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative utilization did not panic")
		}
	}()
	BufferInflation(-0.1)
}

// Property: the FIFO requirement always dominates the WFQ requirement,
// with equality only at zero utilization — the §2.3 comparison.
func TestPropertyFIFODominatesWFQ(t *testing.T) {
	f := func(sigmas []uint8, rhos []uint8) bool {
		n := len(sigmas)
		if n == 0 || n > 8 || len(rhos) < n {
			return true
		}
		specs := make([]packet.FlowSpec, n)
		for i := range specs {
			specs[i] = spec(float64(sigmas[i])+1, float64(rhos[i]%5)+0.1)
		}
		r := units.MbitsPerSecond(48)
		if ReservedUtilization(specs, r) >= 1 {
			return true
		}
		fifo, err := RequiredBufferFIFO(specs, r)
		if err != nil {
			return false
		}
		return fifo >= RequiredBufferWFQ(specs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Thresholds never yields a flow threshold below σᵢ + ρᵢB/R
// (scaling only enlarges).
func TestPropertyThresholdLowerBound(t *testing.T) {
	f := func(bSel uint16) bool {
		specs := table1Specs()
		b := units.KiloBytes(float64(bSel) + 100)
		th, err := Thresholds(specs, units.MbitsPerSecond(48), b)
		if err != nil {
			return false
		}
		for i, s := range specs {
			raw := float64(s.BucketSize) + float64(b)*s.TokenRate.BitsPerSecond()/48e6
			if float64(th[i]) < raw-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
