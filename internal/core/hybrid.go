package core

import (
	"fmt"
	"math"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// Group is the aggregate profile of the flows assigned to one FIFO
// queue of the hybrid system: ρ̂ = Σρⱼ and σ̂ = Σσⱼ over its members.
type Group struct {
	Rho   units.Rate
	Sigma units.Bytes
}

// GroupFlows aggregates per-flow specs into per-queue groups using the
// queueOf mapping (queueOf[flow] = queue index in [0, k)).
func GroupFlows(specs []packet.FlowSpec, queueOf []int, k int) ([]Group, error) {
	if len(specs) != len(queueOf) {
		return nil, fmt.Errorf("core: %d specs but %d queue assignments", len(specs), len(queueOf))
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: need at least one queue, got %d", k)
	}
	groups := make([]Group, k)
	for i, s := range specs {
		q := queueOf[i]
		if q < 0 || q >= k {
			return nil, fmt.Errorf("core: flow %d assigned to invalid queue %d", i, q)
		}
		groups[q].Rho += s.TokenRate
		groups[q].Sigma += s.BucketSize
	}
	return groups, nil
}

// OptimalAlphas returns the Proposition 3 excess-capacity shares
//
//	αᵢ = √(σ̂ᵢρ̂ᵢ) / Σⱼ√(σ̂ⱼρ̂ⱼ)
//
// that minimize the hybrid system's total buffer requirement. Empty
// groups (ρ̂ = 0 or σ̂ = 0) get α = 0.
func OptimalAlphas(groups []Group) []float64 {
	alphas := make([]float64, len(groups))
	var s float64
	for i, g := range groups {
		alphas[i] = math.Sqrt(float64(g.Sigma) * g.Rho.BitsPerSecond())
		s += alphas[i]
	}
	if s == 0 {
		return alphas
	}
	for i := range alphas {
		alphas[i] /= s
	}
	return alphas
}

// AllocateHybrid returns the per-queue service rates of equation (16):
//
//	Rᵢ = ρ̂ᵢ + αᵢ·(R − ρ)
//
// with the optimal αᵢ of Proposition 3. It errors when the groups'
// total reserved rate meets or exceeds the link rate.
func AllocateHybrid(r units.Rate, groups []Group) ([]units.Rate, error) {
	var rho float64
	for _, g := range groups {
		rho += g.Rho.BitsPerSecond()
	}
	excess := r.BitsPerSecond() - rho
	if excess <= 0 {
		return nil, fmt.Errorf("core: reserved rate %v ≥ link rate %v", units.Rate(rho), r)
	}
	alphas := OptimalAlphas(groups)
	rates := make([]units.Rate, len(groups))
	for i, g := range groups {
		rates[i] = g.Rho + units.Rate(alphas[i]*excess)
	}
	return rates, nil
}

// QueueBuffer returns equation (11): the minimum buffer of one FIFO
// queue served at rate ri with aggregate profile g,
//
//	Bᵢ = Rᵢ·σ̂ᵢ / (Rᵢ − ρ̂ᵢ)
//
// It errors when ri ≤ ρ̂ᵢ.
func QueueBuffer(ri units.Rate, g Group) (units.Bytes, error) {
	if ri <= g.Rho {
		return 0, fmt.Errorf("core: queue rate %v ≤ reserved %v", ri, g.Rho)
	}
	return units.Bytes(math.Ceil(ri.BitsPerSecond() * float64(g.Sigma) / (ri.BitsPerSecond() - g.Rho.BitsPerSecond()))), nil
}

// HybridBufferPerQueue returns equation (18) under the optimal rate
// assignment:
//
//	Bᵢ = σ̂ᵢ + S·√(σ̂ᵢρ̂ᵢ)/(R − ρ),   S = Σⱼ√(σ̂ⱼρ̂ⱼ)
func HybridBufferPerQueue(r units.Rate, groups []Group) ([]units.Bytes, error) {
	var rho, s float64
	for _, g := range groups {
		rho += g.Rho.BitsPerSecond()
		s += math.Sqrt(float64(g.Sigma) * g.Rho.BitsPerSecond())
	}
	if rho >= r.BitsPerSecond() {
		return nil, fmt.Errorf("core: reserved rate %v ≥ link rate %v", units.Rate(rho), r)
	}
	// Work in bit·(bits/s) units: σ in bits for the S terms, then back
	// to bytes. √(σ̂ᵢρ̂ᵢ) above uses σ in bytes; the units cancel in
	// S·√(σ̂ᵢρ̂ᵢ)/(R−ρ) only if σ is consistent, so recompute with bits.
	s = 0
	roots := make([]float64, len(groups))
	for i, g := range groups {
		roots[i] = math.Sqrt(g.Sigma.Bits() * g.Rho.BitsPerSecond())
		s += roots[i]
	}
	out := make([]units.Bytes, len(groups))
	for i, g := range groups {
		bits := g.Sigma.Bits() + s*roots[i]/(r.BitsPerSecond()-rho)
		out[i] = units.Bytes(math.Ceil(bits / 8))
	}
	return out, nil
}

// HybridBufferTotal returns equation (19): the minimum total buffer of
// the optimally allocated hybrid system,
//
//	B_hybrid = σ + S²/(R − ρ)
func HybridBufferTotal(r units.Rate, groups []Group) (units.Bytes, error) {
	per, err := HybridBufferPerQueue(r, groups)
	if err != nil {
		return 0, err
	}
	var sum units.Bytes
	for _, b := range per {
		sum += b
	}
	return sum, nil
}

// BufferSavings returns equation (17): B_FIFO − B_hybrid, the buffer
// saved by splitting the single FIFO queue into the given groups under
// the optimal rate assignment. The result is always non-negative.
func BufferSavings(r units.Rate, groups []Group) (units.Bytes, error) {
	var rho float64
	var sigma units.Bytes
	for _, g := range groups {
		rho += g.Rho.BitsPerSecond()
		sigma += g.Sigma
	}
	if rho >= r.BitsPerSecond() {
		return 0, fmt.Errorf("core: reserved rate %v ≥ link rate %v", units.Rate(rho), r)
	}
	bfifo := r.BitsPerSecond() * sigma.Bits() / (r.BitsPerSecond() - rho)
	bhyb, err := HybridBufferTotal(r, groups)
	if err != nil {
		return 0, err
	}
	d := units.Bytes(bfifo/8) - bhyb
	if d < 0 {
		// Rounding in HybridBufferTotal can push the difference a few
		// bytes negative; the analytical result is ≥ 0.
		d = 0
	}
	return d, nil
}

// HybridThresholds computes the per-flow thresholds used in §4.2: flow
// j in queue i gets σⱼ + (ρⱼ/ρ̂ᵢ)·Bᵢ, where Bᵢ is the buffer partition
// of its queue.
func HybridThresholds(specs []packet.FlowSpec, queueOf []int, groups []Group, queueBuf []units.Bytes) ([]units.Bytes, error) {
	if len(specs) != len(queueOf) {
		return nil, fmt.Errorf("core: %d specs but %d queue assignments", len(specs), len(queueOf))
	}
	th := make([]units.Bytes, len(specs))
	for j, s := range specs {
		q := queueOf[j]
		if q < 0 || q >= len(groups) || q >= len(queueBuf) {
			return nil, fmt.Errorf("core: flow %d assigned to invalid queue %d", j, q)
		}
		g := groups[q]
		if g.Rho <= 0 {
			return nil, fmt.Errorf("core: queue %d has zero reserved rate", q)
		}
		th[j] = s.BucketSize + units.Bytes(float64(queueBuf[q])*s.TokenRate.BitsPerSecond()/g.Rho.BitsPerSecond())
	}
	return th, nil
}

// PartitionBuffer splits a total buffer among queues in proportion to
// their minimum requirements, the §4.2 rule
// Bᵢ = B · Bᵢ_min / Σⱼ Bⱼ_min.
func PartitionBuffer(total units.Bytes, minPerQueue []units.Bytes) []units.Bytes {
	var sum units.Bytes
	for _, b := range minPerQueue {
		sum += b
	}
	out := make([]units.Bytes, len(minPerQueue))
	if sum == 0 {
		return out
	}
	for i, b := range minPerQueue {
		out[i] = units.Bytes(float64(total) * float64(b) / float64(sum))
	}
	return out
}
