package buffer

import (
	"fmt"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// AdaptiveSharing implements the bandwidth-sharing variant sketched in
// the paper's conclusion (§5): "allowing adaptive flows to share
// buffers with reserved flows, while non-adaptive ones would be
// prevented from doing so ... without entirely shutting off
// non-adaptive flows from accessing idle resources."
//
// The pools work exactly as in Sharing (holes + headroom with the same
// departure rule). The difference is above-threshold borrowing:
//
//   - adaptive flows (e.g. TCP-like, which respond to loss) may grow
//     their excess up to the full remaining holes, as in Sharing;
//   - non-adaptive flows may only grow their excess up to
//     NonAdaptiveFraction of the remaining holes.
//
// With NonAdaptiveFraction = 1 the scheme degenerates to Sharing; with
// 0 non-adaptive flows are fully locked out of idle buffer space.
type AdaptiveSharing struct {
	accounting
	thresholds []units.Bytes
	adaptive   []bool
	frac       float64
	maxHead    units.Bytes
	headroom   units.Bytes
	holes      units.Bytes

	gHoles    *metrics.Gauge // nil unless instrumented
	gHeadroom *metrics.Gauge
}

// NewAdaptiveSharing builds the manager. adaptive[i] marks flow i as
// loss-responsive; nonAdaptiveFraction ∈ [0, 1] scales how much of the
// holes non-adaptive flows may claim beyond their reservations.
func NewAdaptiveSharing(capacity units.Bytes, thresholds []units.Bytes, adaptive []bool,
	h units.Bytes, nonAdaptiveFraction float64) *AdaptiveSharing {
	if len(adaptive) != len(thresholds) {
		panic(fmt.Sprintf("buffer: %d adaptive flags for %d thresholds", len(adaptive), len(thresholds)))
	}
	if nonAdaptiveFraction < 0 || nonAdaptiveFraction > 1 {
		panic(fmt.Sprintf("buffer: non-adaptive fraction %v outside [0,1]", nonAdaptiveFraction))
	}
	if h < 0 {
		panic(fmt.Sprintf("buffer: negative headroom %v", h))
	}
	m := &AdaptiveSharing{
		accounting: newAccounting(capacity, len(thresholds)),
		thresholds: append([]units.Bytes(nil), thresholds...),
		adaptive:   append([]bool(nil), adaptive...),
		frac:       nonAdaptiveFraction,
		maxHead:    h,
	}
	for i, th := range thresholds {
		if th < 0 {
			panic(fmt.Sprintf("buffer: negative threshold %v for flow %d", th, i))
		}
	}
	m.headroom = min(capacity, h)
	m.holes = capacity - m.headroom
	return m
}

// Threshold returns flow's reserved share.
func (m *AdaptiveSharing) Threshold(flow int) units.Bytes { return m.thresholds[flow] }

// Holes returns the shareable free space.
func (m *AdaptiveSharing) Holes() units.Bytes { return m.holes }

// Headroom returns the protected free pool.
func (m *AdaptiveSharing) Headroom() units.Bytes { return m.headroom }

// Instrument implements Instrumentable, adding the pool gauges as in
// Sharing.
func (m *AdaptiveSharing) Instrument(r *metrics.Registry, prefix string) {
	m.accounting.Instrument(r, prefix)
	if r == nil {
		return
	}
	m.gHoles = r.Gauge(prefix + ".holes_bytes")
	m.gHeadroom = r.Gauge(prefix + ".headroom_bytes")
	m.syncPools()
}

func (m *AdaptiveSharing) syncPools() {
	m.gHoles.Set(int64(m.holes))
	m.gHeadroom.Set(int64(m.headroom))
}

// Admit implements Manager.
func (m *AdaptiveSharing) Admit(flow int, size units.Bytes) bool {
	if m.occ[flow]+size <= m.thresholds[flow] {
		if m.holes+m.headroom < size {
			m.dropped(flow, size)
			return false
		}
		fromHoles := min(m.holes, size)
		m.holes -= fromHoles
		m.headroom -= size - fromHoles
		m.add(flow, size)
		m.syncPools()
		return true
	}
	if size > m.holes {
		m.dropped(flow, size)
		return false
	}
	limit := m.holes
	if !m.adaptive[flow] {
		limit = units.Bytes(float64(m.holes) * m.frac)
	}
	if m.occ[flow]+size-m.thresholds[flow] > limit {
		m.dropped(flow, size)
		return false
	}
	m.holes -= size
	m.add(flow, size)
	m.syncPools()
	return true
}

// Release implements Manager with the §3.3 departure rule.
func (m *AdaptiveSharing) Release(flow int, size units.Bytes) {
	m.remove(flow, size)
	m.headroom += size
	if m.headroom > m.maxHead {
		m.holes += m.headroom - m.maxHead
		m.headroom = m.maxHead
	}
	m.syncPools()
}

// checkInvariant mirrors Sharing's space-conservation check for tests.
func (m *AdaptiveSharing) checkInvariant() error {
	if m.holes < 0 || m.headroom < 0 {
		return fmt.Errorf("negative pool: holes=%v headroom=%v", m.holes, m.headroom)
	}
	if got := m.holes + m.headroom + m.total; got != m.capacity {
		return fmt.Errorf("space leak: %v != capacity %v", got, m.capacity)
	}
	return nil
}
