package buffer

import (
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

func TestTailDropAdmitsUntilFull(t *testing.T) {
	m := NewTailDrop(1000, 2)
	if !m.Admit(0, 600) {
		t.Fatal("first packet rejected")
	}
	if !m.Admit(1, 400) {
		t.Fatal("fitting packet rejected")
	}
	if m.Admit(0, 1) {
		t.Fatal("overflow admitted")
	}
	if m.Total() != 1000 || m.Occupancy(0) != 600 || m.Occupancy(1) != 400 {
		t.Errorf("accounting wrong: total=%v occ0=%v occ1=%v", m.Total(), m.Occupancy(0), m.Occupancy(1))
	}
}

func TestTailDropNoIsolation(t *testing.T) {
	// The defining failure mode of tail-drop: one flow can take the
	// entire buffer.
	m := NewTailDrop(1000, 2)
	for m.Admit(1, 100) {
	}
	if m.Occupancy(1) != 1000 {
		t.Fatalf("greedy flow holds %v, expected all 1000", m.Occupancy(1))
	}
	if m.Admit(0, 100) {
		t.Fatal("victim flow admitted into a full buffer")
	}
}

func TestReleaseRestoresSpace(t *testing.T) {
	m := NewTailDrop(1000, 1)
	m.Admit(0, 1000)
	m.Release(0, 400)
	if !m.Admit(0, 400) {
		t.Fatal("freed space not reusable")
	}
	if m.Total() != 1000 {
		t.Errorf("total = %v, want 1000", m.Total())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	m := NewTailDrop(1000, 1)
	m.Admit(0, 100)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	m.Release(0, 200)
}

func TestRejectedAdmitLeavesStateUnchanged(t *testing.T) {
	m := NewFixedThreshold(1000, []units.Bytes{300, 700})
	m.Admit(0, 300)
	before := m.Total()
	if m.Admit(0, 1) {
		t.Fatal("over-threshold packet admitted")
	}
	if m.Total() != before || m.Occupancy(0) != 300 {
		t.Error("failed admit mutated state")
	}
}

func TestFixedThresholdEnforcesPerFlowCap(t *testing.T) {
	m := NewFixedThreshold(1000, []units.Bytes{300, 700})
	for m.Admit(1, 100) {
	}
	if m.Occupancy(1) != 700 {
		t.Fatalf("flow 1 holds %v, threshold is 700", m.Occupancy(1))
	}
	// Flow 0 still gets its reserved 300 — this is the isolation the
	// paper's Proposition 1 builds on.
	for i := 0; i < 3; i++ {
		if !m.Admit(0, 100) {
			t.Fatalf("flow 0 packet %d rejected despite reserved share", i)
		}
	}
	if m.Admit(0, 100) {
		t.Fatal("flow 0 exceeded its own threshold")
	}
}

func TestFixedThresholdRespectsCapacity(t *testing.T) {
	// Thresholds may oversubscribe the buffer; capacity still binds.
	m := NewFixedThreshold(500, []units.Bytes{400, 400})
	m.Admit(0, 400)
	if m.Admit(1, 200) {
		t.Fatal("admitted beyond physical capacity")
	}
	if !m.Admit(1, 100) {
		t.Fatal("fitting packet rejected")
	}
}

func TestFixedThresholdAccessors(t *testing.T) {
	m := NewFixedThreshold(1000, []units.Bytes{300, 700})
	if m.Threshold(0) != 300 || m.Threshold(1) != 700 {
		t.Error("Threshold accessor wrong")
	}
	if m.Capacity() != 1000 || m.NumFlows() != 2 {
		t.Error("capacity/nflows wrong")
	}
}

func TestUnlimitedNeverDrops(t *testing.T) {
	m := NewUnlimited(1)
	for i := 0; i < 1000; i++ {
		if !m.Admit(0, 1500) {
			t.Fatal("unlimited manager dropped")
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewTailDrop(-1, 1) },
		func() { NewTailDrop(100, 0) },
		func() { NewFixedThreshold(100, []units.Bytes{-1}) },
		func() { NewDynamicThreshold(100, 1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDynamicThresholdAdapts(t *testing.T) {
	m := NewDynamicThreshold(1000, 3, 1.0)
	// Empty buffer: T = B, any flow may start filling.
	if m.CurrentThreshold() != 1000 {
		t.Fatalf("T(empty) = %v, want 1000", m.CurrentThreshold())
	}
	// One greedy flow self-limits at T = α(B−Q) → Q = B/2 for α=1.
	for m.Admit(0, 50) {
	}
	q := m.Occupancy(0)
	if q < 450 || q > 550 {
		t.Errorf("single greedy flow stabilized at %v, want ≈ B/2 = 500", q)
	}
	// A newcomer still gets space: T = α(B−Q) > 0.
	if !m.Admit(1, 50) {
		t.Error("newcomer rejected despite free space")
	}
}

func TestDynamicThresholdSmallAlpha(t *testing.T) {
	m := NewDynamicThreshold(1000, 2, 0.25)
	for m.Admit(0, 10) {
	}
	// Fixed point: Q = αB/(1+α) = 200 for α=0.25.
	q := float64(m.Occupancy(0))
	if q < 180 || q > 220 {
		t.Errorf("greedy occupancy %v, want ≈ 200", q)
	}
}

func TestDynamicThresholdCapacityBinds(t *testing.T) {
	m := NewDynamicThreshold(100, 2, 64)
	for m.Admit(0, 10) {
	}
	if m.Total() > 100 {
		t.Errorf("total %v exceeds capacity", m.Total())
	}
}

// Property: for random admit/release sequences against any manager,
// occupancy accounting stays consistent: total == Σocc, 0 ≤ occ,
// total ≤ capacity.
func TestPropertyAccountingConsistent(t *testing.T) {
	mk := map[string]func() Manager{
		"taildrop": func() Manager { return NewTailDrop(10000, 4) },
		"fixed": func() Manager {
			return NewFixedThreshold(10000, []units.Bytes{1000, 2000, 3000, 4000})
		},
		"sharing": func() Manager {
			return NewSharing(10000, []units.Bytes{1000, 2000, 3000, 4000}, 2000)
		},
		"dynamic": func() Manager { return NewDynamicThreshold(10000, 4, 1) },
	}
	for name, newM := range mk {
		f := func(ops []uint16) bool {
			m := newM()
			type held struct {
				flow int
				size units.Bytes
			}
			var admitted []held
			for _, op := range ops {
				flow := int(op % 4)
				size := units.Bytes(op%700) + 1
				if op%3 == 0 && len(admitted) > 0 {
					// Release the oldest held packet.
					h := admitted[0]
					admitted = admitted[1:]
					m.Release(h.flow, h.size)
				} else if m.Admit(flow, size) {
					admitted = append(admitted, held{flow, size})
				}
				var sum units.Bytes
				for i := 0; i < 4; i++ {
					if m.Occupancy(i) < 0 {
						return false
					}
					sum += m.Occupancy(i)
				}
				if sum != m.Total() || m.Total() > m.Capacity() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
