package buffer

import (
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

func newSharing2() *Sharing {
	// B = 10000, reserved 2000+3000, H = 1000.
	return NewSharing(10000, []units.Bytes{2000, 3000}, 1000)
}

func TestSharingInitialPools(t *testing.T) {
	m := newSharing2()
	if m.Headroom() != 1000 {
		t.Errorf("initial headroom %v, want 1000", m.Headroom())
	}
	if m.Holes() != 9000 {
		t.Errorf("initial holes %v, want 9000", m.Holes())
	}
	if err := m.checkInvariant(); err != nil {
		t.Error(err)
	}
}

func TestSharingHeadroomSmallerThanBuffer(t *testing.T) {
	m := NewSharing(500, []units.Bytes{100}, 1000)
	if m.Headroom() != 500 || m.Holes() != 0 {
		t.Errorf("pools = (%v, %v), want headroom capped at capacity", m.Headroom(), m.Holes())
	}
}

func TestSharingBelowThresholdUsesHolesFirst(t *testing.T) {
	m := newSharing2()
	if !m.Admit(0, 600) {
		t.Fatal("below-threshold packet rejected with free space")
	}
	if m.Holes() != 8400 || m.Headroom() != 1000 {
		t.Errorf("pools after admit = (%v holes, %v headroom), want (8400, 1000)", m.Holes(), m.Headroom())
	}
}

func TestSharingBelowThresholdFallsBackToHeadroom(t *testing.T) {
	// Drain the holes with an above-threshold borrower, then verify a
	// below-threshold flow can still use the headroom.
	m := NewSharing(3000, []units.Bytes{1000, 0}, 500)
	// Flow 1 (threshold 0) borrows from holes only: holes start at 2500.
	if !m.Admit(1, 2500) {
		t.Fatal("borrower rejected")
	}
	if m.Holes() != 0 {
		t.Fatalf("holes = %v, want 0", m.Holes())
	}
	// Flow 0 is below threshold: headroom (500) still admits it.
	if !m.Admit(0, 400) {
		t.Fatal("protected flow rejected despite headroom")
	}
	if m.Headroom() != 100 {
		t.Errorf("headroom = %v, want 100", m.Headroom())
	}
	// But not more than the headroom.
	if m.Admit(0, 200) {
		t.Fatal("admitted beyond headroom+holes")
	}
	if err := m.checkInvariant(); err != nil {
		t.Error(err)
	}
}

func TestSharingAboveThresholdNeedsHoles(t *testing.T) {
	m := NewSharing(3000, []units.Bytes{1000, 0}, 3000)
	// All free space is headroom (H ≥ B): above-threshold flow 1 gets
	// nothing even though the buffer is empty.
	if m.Admit(1, 100) {
		t.Fatal("above-threshold packet admitted with zero holes")
	}
	// Below-threshold flow 0 is fine.
	if !m.Admit(0, 100) {
		t.Fatal("below-threshold packet rejected")
	}
}

func TestSharingExcessBoundedByHoles(t *testing.T) {
	// The excess a flow holds beyond its reservation may not exceed the
	// remaining holes.
	m := NewSharing(10000, []units.Bytes{0, 0}, 0) // all space is holes
	if !m.Admit(0, 4000) {
		t.Fatal("first borrow rejected")
	}
	// holes = 6000, flow 0 excess would become 8000 > 6000 - reject.
	if m.Admit(0, 4000) {
		t.Fatal("excess allowed to outgrow remaining holes")
	}
	// A smaller grab that keeps excess ≤ holes is fine: excess 4000+1000
	// = 5000 ≤ holes 6000 → admitted.
	if !m.Admit(0, 1000) {
		t.Fatal("legal borrow rejected")
	}
	if err := m.checkInvariant(); err != nil {
		t.Error(err)
	}
}

func TestSharingDepartureRefillsHeadroomFirst(t *testing.T) {
	m := NewSharing(3000, []units.Bytes{1000, 0}, 500)
	m.Admit(1, 2500) // drains all holes
	m.Admit(0, 400)  // takes 400 of headroom; headroom = 100
	// A departure of 300 should rebuild headroom to 400 and add nothing
	// to holes.
	m.Release(1, 300)
	if m.Headroom() != 400 || m.Holes() != 0 {
		t.Errorf("pools = (%v holes, %v headroom), want (0, 400)", m.Holes(), m.Headroom())
	}
	// A further 600 departure fills headroom to 500 and overflows 500 to
	// holes.
	m.Release(1, 600)
	if m.Headroom() != 500 || m.Holes() != 500 {
		t.Errorf("pools = (%v holes, %v headroom), want (500, 500)", m.Holes(), m.Headroom())
	}
	if err := m.checkInvariant(); err != nil {
		t.Error(err)
	}
}

func TestSharingZeroHeadroomDegeneratesGracefully(t *testing.T) {
	// H = 0: pure hole sharing, no protected pool.
	m := NewSharing(1000, []units.Bytes{500, 500}, 0)
	if m.Headroom() != 0 || m.Holes() != 1000 {
		t.Fatalf("pools = (%v, %v)", m.Holes(), m.Headroom())
	}
	if !m.Admit(0, 500) || !m.Admit(1, 500) {
		t.Fatal("reserved shares not admitted")
	}
	m.Release(0, 500)
	if m.Headroom() != 0 || m.Holes() != 500 {
		t.Errorf("pools after release = (%v, %v), want (500, 0)", m.Holes(), m.Headroom())
	}
}

func TestSharingFullBufferRejects(t *testing.T) {
	m := NewSharing(1000, []units.Bytes{1000}, 0)
	if !m.Admit(0, 1000) {
		t.Fatal("cannot fill buffer")
	}
	if m.Admit(0, 1) {
		t.Fatal("admitted into a full buffer")
	}
}

func TestSharingAccessors(t *testing.T) {
	m := newSharing2()
	if m.Threshold(1) != 3000 || m.MaxHeadroom() != 1000 {
		t.Error("accessors wrong")
	}
}

func TestSharingNegativeHeadroomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative headroom did not panic")
		}
	}()
	NewSharing(1000, []units.Bytes{100}, -1)
}

// Property: the space conservation invariant holds across any random
// operation sequence, and occupancy never exceeds capacity.
func TestPropertySharingInvariant(t *testing.T) {
	f := func(ops []uint16, hSel uint8) bool {
		h := units.Bytes(hSel) * 20
		m := NewSharing(5000, []units.Bytes{800, 1500, 0}, h)
		type held struct {
			flow int
			size units.Bytes
		}
		var admitted []held
		for _, op := range ops {
			flow := int(op % 3)
			size := units.Bytes(op%500) + 1
			if op%3 == 0 && len(admitted) > 0 {
				hd := admitted[0]
				admitted = admitted[1:]
				m.Release(hd.flow, hd.size)
			} else if m.Admit(flow, size) {
				admitted = append(admitted, held{flow, size})
			}
			if err := m.checkInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a below-threshold flow is never rejected while holes plus
// headroom can hold the packet — the protection guarantee that makes
// Proposition 1 carry over to the sharing scheme.
func TestPropertySharingProtectsReservedFlows(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewSharing(5000, []units.Bytes{1000, 0}, 500)
		for _, op := range ops {
			size := units.Bytes(op%400) + 1
			if op%2 == 0 {
				// Aggressor borrows as much as it can.
				m.Admit(1, size)
				continue
			}
			// Protected flow stays below threshold by construction.
			if m.Occupancy(0)+size > m.Threshold(0) {
				continue
			}
			free := m.Holes() + m.Headroom()
			got := m.Admit(0, size)
			if free >= size && !got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
