package buffer

import (
	"fmt"
	"math/rand"

	"bufqos/internal/units"
)

// RED implements Random Early Detection (Floyd–Jacobson, reference [3]
// of the paper) as an additional O(1) baseline. RED keeps an
// exponentially weighted moving average of the queue length and drops
// arriving packets probabilistically once the average exceeds MinTh,
// with probability rising to MaxP at MaxTh and certainty beyond.
//
// RED has no per-flow state at all, so it cannot provide rate
// guarantees — including it shows what the threshold scheme buys over a
// purely aggregate early-drop policy.
type RED struct {
	accounting
	MinTh  units.Bytes
	MaxTh  units.Bytes
	MaxP   float64
	Weight float64 // EWMA weight w, typically 0.002

	rng   *rand.Rand
	avg   float64
	count int // packets since last drop, for uniform drop spacing
}

// NewRED returns a RED manager. The rng drives the drop decisions and
// must be non-nil.
func NewRED(capacity units.Bytes, nflows int, minTh, maxTh units.Bytes, maxP float64, rng *rand.Rand) *RED {
	switch {
	case rng == nil:
		panic("buffer: RED needs a random source")
	case minTh < 0 || maxTh <= minTh:
		panic(fmt.Sprintf("buffer: RED thresholds min=%v max=%v invalid", minTh, maxTh))
	case maxP <= 0 || maxP > 1:
		panic(fmt.Sprintf("buffer: RED maxP %v outside (0,1]", maxP))
	}
	return &RED{
		accounting: newAccounting(capacity, nflows),
		MinTh:      minTh, MaxTh: maxTh, MaxP: maxP,
		Weight: 0.002,
		rng:    rng,
	}
}

// AverageQueue returns the current EWMA of the queue length in bytes.
func (m *RED) AverageQueue() float64 { return m.avg }

// Admit implements Manager.
func (m *RED) Admit(flow int, size units.Bytes) bool {
	if m.total+size > m.capacity {
		m.count = 0
		m.dropped(flow, size)
		return false
	}
	m.avg = (1-m.Weight)*m.avg + m.Weight*float64(m.total)
	switch {
	case m.avg < float64(m.MinTh):
		m.count = 0
	case m.avg >= float64(m.MaxTh):
		m.count = 0
		m.dropped(flow, size)
		return false
	default:
		pb := m.MaxP * (m.avg - float64(m.MinTh)) / float64(m.MaxTh-m.MinTh)
		pa := pb / (1 - float64(m.count)*pb)
		if pa < 0 || pa >= 1 {
			pa = 1
		}
		m.count++
		if m.rng.Float64() < pa {
			m.count = 0
			m.dropped(flow, size)
			return false
		}
	}
	m.add(flow, size)
	return true
}

// Release implements Manager.
func (m *RED) Release(flow int, size units.Bytes) { m.remove(flow, size) }
