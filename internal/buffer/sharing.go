package buffer

import (
	"fmt"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// Sharing implements the buffer-sharing scheme of §3.3. Per-flow
// reserved thresholds are computed exactly as in the fixed-partition
// case, but unused buffer space may be borrowed by active flows. Free
// space is split into two pools:
//
//   - headroom: reserved for flows that are below their threshold (and
//     hence entitled to more buffer room), capped at H;
//   - holes: the remaining free space, shareable by any flow.
//
// Admission follows the paper verbatim. A packet of a flow below its
// threshold first consumes holes, then headroom, and is dropped only if
// both are exhausted. A packet of a flow above its threshold is
// accepted only if it fits in the holes AND the flow's occupancy in
// excess of its reserved share stays below the remaining holes — "the
// amount of additional buffer space that a flow can grab cannot exceed
// the amount of holes that are left."
//
// On departure, freed space replenishes the headroom up to H first, and
// only the overflow returns to the holes (the paper's pseudocode):
//
//	headroom += packetlength;
//	holes    += MAX(headroom - H, 0);
//	headroom  = MIN(headroom, H);
type Sharing struct {
	accounting
	thresholds []units.Bytes
	maxHead    units.Bytes // H
	headroom   units.Bytes
	holes      units.Bytes

	gHoles    *metrics.Gauge // nil unless instrumented
	gHeadroom *metrics.Gauge
}

// NewSharing returns a sharing manager with reserved per-flow
// thresholds and headroom cap H. Initially the whole buffer is free:
// the headroom pool is filled to min(B, H) and the rest are holes.
func NewSharing(capacity units.Bytes, thresholds []units.Bytes, h units.Bytes) *Sharing {
	if h < 0 {
		panic(fmt.Sprintf("buffer: negative headroom %v", h))
	}
	m := &Sharing{
		accounting: newAccounting(capacity, len(thresholds)),
		thresholds: append([]units.Bytes(nil), thresholds...),
		maxHead:    h,
	}
	for i, th := range thresholds {
		if th < 0 {
			panic(fmt.Sprintf("buffer: negative threshold %v for flow %d", th, i))
		}
	}
	m.headroom = min(capacity, h)
	m.holes = capacity - m.headroom
	return m
}

// Instrument implements Instrumentable, adding the §3.3 pool gauges
// (holes and headroom levels) on top of the accounting metrics.
func (m *Sharing) Instrument(r *metrics.Registry, prefix string) {
	m.accounting.Instrument(r, prefix)
	if r == nil {
		return
	}
	m.gHoles = r.Gauge(prefix + ".holes_bytes")
	m.gHeadroom = r.Gauge(prefix + ".headroom_bytes")
	m.gHoles.Set(int64(m.holes))
	m.gHeadroom.Set(int64(m.headroom))
}

// syncPools refreshes the pool gauges; nil handles make it free when
// metrics are disabled.
func (m *Sharing) syncPools() {
	m.gHoles.Set(int64(m.holes))
	m.gHeadroom.Set(int64(m.headroom))
}

// Threshold returns flow's reserved share.
func (m *Sharing) Threshold(flow int) units.Bytes { return m.thresholds[flow] }

// Headroom returns the current headroom pool size.
func (m *Sharing) Headroom() units.Bytes { return m.headroom }

// Holes returns the current shareable free space.
func (m *Sharing) Holes() units.Bytes { return m.holes }

// MaxHeadroom returns the configured cap H.
func (m *Sharing) MaxHeadroom() units.Bytes { return m.maxHead }

// Admit implements Manager.
func (m *Sharing) Admit(flow int, size units.Bytes) bool {
	if m.occ[flow]+size <= m.thresholds[flow] {
		// Below threshold: entitled to space. Holes first, then the
		// reserved headroom.
		if m.holes+m.headroom < size {
			m.dropped(flow, size)
			return false
		}
		fromHoles := min(m.holes, size)
		m.holes -= fromHoles
		m.headroom -= size - fromHoles
		m.add(flow, size)
		m.syncPools()
		return true
	}
	// Above threshold: only holes, and the flow's excess occupancy must
	// not outgrow what is left.
	if size > m.holes || m.occ[flow]+size-m.thresholds[flow] > m.holes {
		m.dropped(flow, size)
		return false
	}
	m.holes -= size
	m.add(flow, size)
	m.syncPools()
	return true
}

// Release implements Manager, applying the paper's departure update.
func (m *Sharing) Release(flow int, size units.Bytes) {
	m.remove(flow, size)
	m.headroom += size
	if m.headroom > m.maxHead {
		m.holes += m.headroom - m.maxHead
		m.headroom = m.maxHead
	}
	m.syncPools()
}

// checkInvariant verifies holes + headroom + occupancy == capacity and
// pool non-negativity. Tests call it after every operation.
func (m *Sharing) checkInvariant() error {
	if m.holes < 0 || m.headroom < 0 {
		return fmt.Errorf("negative pool: holes=%v headroom=%v", m.holes, m.headroom)
	}
	if m.headroom > m.maxHead && m.maxHead <= m.capacity {
		return fmt.Errorf("headroom %v exceeds cap %v", m.headroom, m.maxHead)
	}
	if got := m.holes + m.headroom + m.total; got != m.capacity {
		return fmt.Errorf("space leak: holes=%v + headroom=%v + occupied=%v = %v != capacity %v",
			m.holes, m.headroom, m.total, got, m.capacity)
	}
	return nil
}

func min(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}
