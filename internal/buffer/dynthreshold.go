package buffer

import (
	"fmt"

	"bufqos/internal/units"
)

// DynamicThreshold implements the Choudhury–Hahne dynamic-threshold
// scheme (reference [1] of the paper), which §3.3 compares the sharing
// scheme against. Every flow shares a single occupancy threshold
//
//	T(t) = α · (B − Q(t))
//
// proportional to the unused buffer space, where Q(t) is the total
// occupancy. A packet is admitted iff it fits and its flow's occupancy
// is below T(t). The scheme deliberately wastes a fraction of the
// buffer (the control margin) in exchange for automatic adaptation to
// the number of active flows.
type DynamicThreshold struct {
	accounting
	alpha float64
}

// NewDynamicThreshold returns a dynamic-threshold manager with the
// given α > 0 (Choudhury–Hahne recommend α in [1/64, 64]; α = 1 is the
// common operating point).
func NewDynamicThreshold(capacity units.Bytes, nflows int, alpha float64) *DynamicThreshold {
	if alpha <= 0 {
		panic(fmt.Sprintf("buffer: non-positive alpha %v", alpha))
	}
	return &DynamicThreshold{accounting: newAccounting(capacity, nflows), alpha: alpha}
}

// CurrentThreshold returns T(t) = α·(B − Q(t)).
func (m *DynamicThreshold) CurrentThreshold() units.Bytes {
	return units.Bytes(m.alpha * float64(m.capacity-m.total))
}

// Admit implements Manager.
func (m *DynamicThreshold) Admit(flow int, size units.Bytes) bool {
	if m.total+size > m.capacity || m.occ[flow] >= m.CurrentThreshold() {
		m.dropped(flow, size)
		return false
	}
	m.add(flow, size)
	return true
}

// Release implements Manager.
func (m *DynamicThreshold) Release(flow int, size units.Bytes) { m.remove(flow, size) }
