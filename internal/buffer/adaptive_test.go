package buffer

import (
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

// adaptive flow 0, non-adaptive flow 1, no reservations, all holes.
func newAdaptive(frac float64) *AdaptiveSharing {
	return NewAdaptiveSharing(10000, []units.Bytes{0, 0}, []bool{true, false}, 0, frac)
}

func TestAdaptiveFlowBorrowsLikeSharing(t *testing.T) {
	m := newAdaptive(0.25)
	// Adaptive flow: excess bounded by full holes, same as Sharing.
	if !m.Admit(0, 4000) {
		t.Fatal("adaptive borrow rejected")
	}
	if !m.Admit(0, 1000) { // excess 5000 ≤ holes 6000
		t.Fatal("second adaptive borrow rejected")
	}
}

func TestNonAdaptiveFlowRestricted(t *testing.T) {
	m := newAdaptive(0.25)
	// Non-adaptive flow: excess capped at 25% of holes. First grab of
	// 2500 = 0.25 × 10000 is allowed...
	if !m.Admit(1, 2500) {
		t.Fatal("within-fraction borrow rejected")
	}
	// ...but any further growth fails: excess 2500+x > 0.25 × 7500.
	if m.Admit(1, 500) {
		t.Fatal("non-adaptive flow exceeded its fraction")
	}
	// The adaptive flow can still use the rest.
	if !m.Admit(0, 5000) {
		t.Fatal("adaptive flow blocked by non-adaptive cap")
	}
}

func TestAdaptiveFractionZeroLocksOut(t *testing.T) {
	m := newAdaptive(0)
	if m.Admit(1, 100) {
		t.Fatal("non-adaptive flow borrowed with fraction 0")
	}
	if !m.Admit(0, 100) {
		t.Fatal("adaptive flow should borrow freely")
	}
}

func TestAdaptiveFractionOneEqualsSharing(t *testing.T) {
	// With fraction 1 both classes see the Sharing rule: compare
	// decision-by-decision on a fixed operation sequence.
	a := NewAdaptiveSharing(5000, []units.Bytes{800, 0}, []bool{true, false}, 500, 1)
	s := NewSharing(5000, []units.Bytes{800, 0}, 500)
	ops := []struct {
		flow int
		size units.Bytes
	}{
		{0, 400}, {1, 900}, {1, 900}, {0, 600}, {1, 2000}, {0, 300}, {1, 700},
	}
	for i, op := range ops {
		ga, gs := a.Admit(op.flow, op.size), s.Admit(op.flow, op.size)
		if ga != gs {
			t.Fatalf("op %d: adaptive=%v sharing=%v", i, ga, gs)
		}
	}
}

func TestAdaptiveReservationsAlwaysHonored(t *testing.T) {
	// Below-threshold admission ignores the adaptive flag entirely.
	m := NewAdaptiveSharing(3000, []units.Bytes{0, 1000}, []bool{true, false}, 500, 0)
	if !m.Admit(1, 1000) {
		t.Fatal("non-adaptive flow denied its own reservation")
	}
}

func TestAdaptiveDepartureRule(t *testing.T) {
	m := NewAdaptiveSharing(3000, []units.Bytes{3000}, []bool{true}, 500, 1)
	m.Admit(0, 3000) // drains holes 2500 then headroom 500
	if m.Holes() != 0 || m.Headroom() != 0 {
		t.Fatalf("pools = (%v, %v)", m.Holes(), m.Headroom())
	}
	m.Release(0, 800)
	if m.Headroom() != 500 || m.Holes() != 300 {
		t.Errorf("pools after release = (%v holes, %v headroom), want (300, 500)", m.Holes(), m.Headroom())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	cases := []func(){
		func() { NewAdaptiveSharing(100, []units.Bytes{0}, []bool{true, false}, 0, 1) },
		func() { NewAdaptiveSharing(100, []units.Bytes{0}, []bool{true}, 0, -0.1) },
		func() { NewAdaptiveSharing(100, []units.Bytes{0}, []bool{true}, 0, 1.1) },
		func() { NewAdaptiveSharing(100, []units.Bytes{-1}, []bool{true}, 0, 1) },
		func() { NewAdaptiveSharing(100, []units.Bytes{0}, []bool{true}, -1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: space conservation holds for any op sequence and fraction.
func TestPropertyAdaptiveInvariant(t *testing.T) {
	f := func(ops []uint16, fracSel uint8) bool {
		frac := float64(fracSel%101) / 100
		m := NewAdaptiveSharing(5000, []units.Bytes{800, 0, 400}, []bool{true, false, false},
			600, frac)
		type held struct {
			flow int
			size units.Bytes
		}
		var admitted []held
		for _, op := range ops {
			flow := int(op % 3)
			size := units.Bytes(op%500) + 1
			if op%3 == 0 && len(admitted) > 0 {
				h := admitted[0]
				admitted = admitted[1:]
				m.Release(h.flow, h.size)
			} else if m.Admit(flow, size) {
				admitted = append(admitted, held{flow, size})
			}
			if err := m.checkInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
