// Package buffer implements the buffer-management (packet admission)
// schemes studied in the paper:
//
//   - TailDrop: a shared buffer with no per-flow control, the paper's
//     "no buffer management" baseline (§3.1).
//   - FixedThreshold: the logical-partitioning scheme of §2 — flow i may
//     occupy at most its threshold σᵢ + ρᵢ·B/R.
//   - Sharing: the §3.3 extension that lets active flows borrow unused
//     buffer space ("holes") while a reserved "headroom" protects flows
//     that are within their thresholds.
//   - DynamicThreshold: the Choudhury–Hahne scheme [1] the paper
//     compares its sharing rule against.
//   - RED: Random Early Detection, one of the O(1) schemes cited in the
//     introduction, included as an additional baseline.
//
// All managers account occupancy in bytes and make O(1) admission
// decisions from the flow's own occupancy plus global counters — the
// property that makes the approach scalable.
package buffer

import (
	"fmt"
	"strconv"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// Manager is a packet-admission policy. Admit attempts to admit a
// packet of the given flow and size: on success it updates the
// occupancy accounting and returns true; on failure it leaves all state
// unchanged and returns false. Release must be called exactly once for
// every admitted packet when it departs.
type Manager interface {
	Admit(flow int, size units.Bytes) bool
	Release(flow int, size units.Bytes)
	// Occupancy returns the bytes flow currently holds in the buffer.
	Occupancy(flow int) units.Bytes
	// Total returns the occupied bytes across all flows.
	Total() units.Bytes
	// Capacity returns the total buffer size B.
	Capacity() units.Bytes
}

// Instrumentable is implemented by managers that can export metrics.
// Instrument must be called before the manager is used; a nil registry
// leaves the manager uninstrumented (the free fast path).
type Instrumentable interface {
	Instrument(r *metrics.Registry, prefix string)
}

// acctMetrics holds the metric handles of an instrumented manager.
// The pointer on accounting is nil when metrics are disabled, so the
// hot path pays a single branch.
type acctMetrics struct {
	accepts       *metrics.Counter
	drops         *metrics.Counter
	acceptedBytes *metrics.Counter
	droppedBytes  *metrics.Counter
	occupancy     *metrics.Gauge
	flowAccepts   []*metrics.Counter
	flowDrops     []*metrics.Counter
}

// accounting is the shared occupancy bookkeeping embedded by managers.
type accounting struct {
	capacity units.Bytes
	occ      []units.Bytes
	total    units.Bytes
	met      *acctMetrics
}

// Instrument implements Instrumentable: it registers accept/drop
// counters (aggregate and per flow) and a total-occupancy gauge under
// the given name prefix, e.g. "buffer".
func (a *accounting) Instrument(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	m := &acctMetrics{
		accepts:       r.Counter(prefix + ".accepts"),
		drops:         r.Counter(prefix + ".drops"),
		acceptedBytes: r.Counter(prefix + ".accepted_bytes"),
		droppedBytes:  r.Counter(prefix + ".dropped_bytes"),
		occupancy:     r.Gauge(prefix + ".occupancy_bytes"),
		flowAccepts:   make([]*metrics.Counter, len(a.occ)),
		flowDrops:     make([]*metrics.Counter, len(a.occ)),
	}
	for i := range a.occ {
		m.flowAccepts[i] = r.Counter(prefix + ".accepts.flow" + strconv.Itoa(i))
		m.flowDrops[i] = r.Counter(prefix + ".drops.flow" + strconv.Itoa(i))
	}
	a.met = m
}

// dropped records a rejected packet; every Admit failure path calls it.
func (a *accounting) dropped(flow int, size units.Bytes) {
	if m := a.met; m != nil {
		m.drops.Inc()
		m.droppedBytes.Add(int64(size))
		m.flowDrops[flow].Inc()
	}
}

func newAccounting(capacity units.Bytes, nflows int) accounting {
	if capacity < 0 {
		panic(fmt.Sprintf("buffer: negative capacity %v", capacity))
	}
	if nflows <= 0 {
		panic(fmt.Sprintf("buffer: need at least one flow, got %d", nflows))
	}
	return accounting{capacity: capacity, occ: make([]units.Bytes, nflows)}
}

func (a *accounting) add(flow int, size units.Bytes) {
	a.occ[flow] += size
	a.total += size
	if m := a.met; m != nil {
		m.accepts.Inc()
		m.acceptedBytes.Add(int64(size))
		m.flowAccepts[flow].Inc()
		m.occupancy.Set(int64(a.total))
	}
}

func (a *accounting) remove(flow int, size units.Bytes) {
	if a.occ[flow] < size {
		panic(fmt.Sprintf("buffer: flow %d releasing %v with only %v held", flow, size, a.occ[flow]))
	}
	a.occ[flow] -= size
	a.total -= size
	if m := a.met; m != nil {
		m.occupancy.Set(int64(a.total))
	}
}

// Occupancy implements Manager.
func (a *accounting) Occupancy(flow int) units.Bytes { return a.occ[flow] }

// Total implements Manager.
func (a *accounting) Total() units.Bytes { return a.total }

// Capacity implements Manager.
func (a *accounting) Capacity() units.Bytes { return a.capacity }

// NumFlows returns the number of flows the manager tracks.
func (a *accounting) NumFlows() int { return len(a.occ) }

// TailDrop is a shared buffer with no per-flow management: a packet is
// admitted whenever it fits. This is the classic best-effort router
// behaviour the paper uses as its first benchmark.
type TailDrop struct {
	accounting
}

// NewTailDrop returns a tail-drop manager over a buffer of the given
// capacity.
func NewTailDrop(capacity units.Bytes, nflows int) *TailDrop {
	return &TailDrop{newAccounting(capacity, nflows)}
}

// Admit implements Manager.
func (t *TailDrop) Admit(flow int, size units.Bytes) bool {
	if t.total+size > t.capacity {
		t.dropped(flow, size)
		return false
	}
	t.add(flow, size)
	return true
}

// Release implements Manager.
func (t *TailDrop) Release(flow int, size units.Bytes) { t.remove(flow, size) }

// Unlimited admits everything; it exists for tests and for measuring
// offered load.
type Unlimited struct {
	accounting
}

// NewUnlimited returns a manager that never drops.
func NewUnlimited(nflows int) *Unlimited {
	u := &Unlimited{newAccounting(0, nflows)}
	u.capacity = units.Bytes(1) << 60
	return u
}

// Admit implements Manager.
func (u *Unlimited) Admit(flow int, size units.Bytes) bool {
	u.add(flow, size)
	return true
}

// Release implements Manager.
func (u *Unlimited) Release(flow int, size units.Bytes) { u.remove(flow, size) }

// FixedThreshold is the paper's §2 scheme: the buffer is logically
// partitioned by per-flow occupancy thresholds. A packet of flow i is
// admitted iff it fits in the buffer and would not raise the flow's
// occupancy beyond its threshold Bᵢ.
type FixedThreshold struct {
	accounting
	thresholds []units.Bytes
}

// NewFixedThreshold returns a threshold manager. thresholds[i] is the
// maximum occupancy allowed for flow i (computed by the core package
// from the flow's (σᵢ, ρᵢ) profile).
func NewFixedThreshold(capacity units.Bytes, thresholds []units.Bytes) *FixedThreshold {
	m := &FixedThreshold{
		accounting: newAccounting(capacity, len(thresholds)),
		thresholds: append([]units.Bytes(nil), thresholds...),
	}
	for i, th := range thresholds {
		if th < 0 {
			panic(fmt.Sprintf("buffer: negative threshold %v for flow %d", th, i))
		}
	}
	return m
}

// Threshold returns flow's occupancy threshold.
func (m *FixedThreshold) Threshold(flow int) units.Bytes { return m.thresholds[flow] }

// SetThreshold updates a flow's threshold at run time — used when the
// flow population changes (admission/departure churn) and thresholds
// are recomputed. Lowering a threshold below the flow's current
// occupancy is allowed: the flow simply admits nothing until it drains
// below the new cap.
func (m *FixedThreshold) SetThreshold(flow int, v units.Bytes) {
	if v < 0 {
		panic(fmt.Sprintf("buffer: negative threshold %v for flow %d", v, flow))
	}
	m.thresholds[flow] = v
}

// Admit implements Manager.
func (m *FixedThreshold) Admit(flow int, size units.Bytes) bool {
	if m.total+size > m.capacity || m.occ[flow]+size > m.thresholds[flow] {
		m.dropped(flow, size)
		return false
	}
	m.add(flow, size)
	return true
}

// Release implements Manager.
func (m *FixedThreshold) Release(flow int, size units.Bytes) { m.remove(flow, size) }
