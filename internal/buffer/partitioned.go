package buffer

import (
	"fmt"

	"bufqos/internal/metrics"
	"bufqos/internal/units"
)

// Partitioned composes per-queue buffer managers for the hybrid
// architecture of §4: the total buffer is physically split among the k
// queues (B = ΣBᵢ), and each queue runs its own threshold or sharing
// manager over its member flows. A flow's admission is decided entirely
// by its queue's manager.
type Partitioned struct {
	queueOf  []int
	managers []Manager
}

// NewPartitioned builds a composite manager. queueOf[flow] names the
// queue of each flow; managers[q] handles queue q. Inner managers are
// indexed by global flow ID (they simply never see flows of other
// queues).
func NewPartitioned(queueOf []int, managers []Manager) *Partitioned {
	for f, q := range queueOf {
		if q < 0 || q >= len(managers) {
			panic(fmt.Sprintf("buffer: flow %d mapped to invalid queue %d", f, q))
		}
	}
	for q, m := range managers {
		if m == nil {
			panic(fmt.Sprintf("buffer: nil manager for queue %d", q))
		}
	}
	return &Partitioned{
		queueOf:  append([]int(nil), queueOf...),
		managers: managers,
	}
}

// Queue returns the manager of queue q, for inspection.
func (p *Partitioned) Queue(q int) Manager { return p.managers[q] }

// Instrument implements Instrumentable by instrumenting every inner
// manager that supports it under a per-queue prefix ("<prefix>.q<i>").
func (p *Partitioned) Instrument(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	for q, m := range p.managers {
		if in, ok := m.(Instrumentable); ok {
			in.Instrument(r, fmt.Sprintf("%s.q%d", prefix, q))
		}
	}
}

// Admit implements Manager.
func (p *Partitioned) Admit(flow int, size units.Bytes) bool {
	return p.managers[p.queueOf[flow]].Admit(flow, size)
}

// Release implements Manager.
func (p *Partitioned) Release(flow int, size units.Bytes) {
	p.managers[p.queueOf[flow]].Release(flow, size)
}

// Occupancy implements Manager.
func (p *Partitioned) Occupancy(flow int) units.Bytes {
	return p.managers[p.queueOf[flow]].Occupancy(flow)
}

// Total implements Manager.
func (p *Partitioned) Total() units.Bytes {
	var sum units.Bytes
	for _, m := range p.managers {
		sum += m.Total()
	}
	return sum
}

// Capacity implements Manager.
func (p *Partitioned) Capacity() units.Bytes {
	var sum units.Bytes
	for _, m := range p.managers {
		sum += m.Capacity()
	}
	return sum
}
