package buffer

import (
	"testing"

	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func newRED() *RED {
	return NewRED(10000, 2, 2000, 8000, 0.1, sim.NewRand(1))
}

func TestREDBelowMinThAdmitsEverything(t *testing.T) {
	m := newRED()
	// With an empty queue the EWMA stays near 0 < MinTh: no early drops.
	for i := 0; i < 20; i++ {
		if !m.Admit(0, 100) {
			t.Fatal("RED dropped below MinTh")
		}
		m.Release(0, 100)
	}
}

func TestREDDropsProbabilisticallyInBand(t *testing.T) {
	m := newRED()
	m.Weight = 1.0 // make the EWMA track the instantaneous queue for the test
	// Hold the queue at 5000 bytes, mid-band.
	for m.Total() < 5000 {
		m.Admit(0, 500)
	}
	drops, tries := 0, 2000
	for i := 0; i < tries; i++ {
		if m.Admit(0, 500) {
			m.Release(0, 500)
		} else {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no early drops in the RED band")
	}
	if drops == tries {
		t.Error("RED dropped everything mid-band")
	}
}

func TestREDForcedDropAboveMaxTh(t *testing.T) {
	m := newRED()
	m.Weight = 0 // freeze the EWMA at 0 while filling
	for m.Total() < 8500 {
		if !m.Admit(0, 500) {
			t.Fatal("fill admit failed with frozen EWMA")
		}
	}
	// Now let the EWMA see the 8500-byte queue: avg ≥ MaxTh forces a drop.
	m.Weight = 1.0
	if m.Admit(0, 500) {
		t.Error("RED admitted above MaxTh")
	}
}

func TestREDCapacityStillBinds(t *testing.T) {
	m := NewRED(1000, 1, 400, 800, 0.1, sim.NewRand(2))
	m.Weight = 0 // EWMA frozen at 0: no early drops ever
	for m.Admit(0, 100) {
	}
	if m.Total() != 1000 {
		t.Errorf("filled to %v, want capacity 1000", m.Total())
	}
}

func TestREDValidation(t *testing.T) {
	cases := []func(){
		func() { NewRED(100, 1, 10, 50, 0.1, nil) },
		func() { NewRED(100, 1, 50, 50, 0.1, sim.NewRand(1)) },
		func() { NewRED(100, 1, -1, 50, 0.1, sim.NewRand(1)) },
		func() { NewRED(100, 1, 10, 50, 0, sim.NewRand(1)) },
		func() { NewRED(100, 1, 10, 50, 1.5, sim.NewRand(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RED validation case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestREDAverageQueueTracks(t *testing.T) {
	m := newRED()
	m.Weight = 0.5
	m.Admit(0, units.Bytes(1000))
	m.Admit(0, 1000) // avg updated before add: sees 1000
	if m.AverageQueue() != 500 {
		t.Errorf("avg = %v, want 500", m.AverageQueue())
	}
}
