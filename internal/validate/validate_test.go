package validate

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bufqos/internal/topology"
)

// TestGenerateValid: every seed must yield a scenario that passes
// topology.Validate — a generator error is a bug by construction.
func TestGenerateValid(t *testing.T) {
	kinds := map[Kind]int{}
	for seed := int64(0); seed < 300; seed++ {
		sc, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		kinds[sc.Kind]++
	}
	for _, k := range []Kind{KindSingleLink, KindDifferential, KindTandem, KindChurn, KindTCP, KindRegistry} {
		if kinds[k] == 0 {
			t.Errorf("300 seeds never produced kind %s (got %v)", k, kinds)
		}
	}
}

// TestGenerateDeterministic: the same seed yields the same scenario.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := topology.Write(&ab, a.Topo); err != nil {
		t.Fatal(err)
	}
	if err := topology.Write(&bb, b.Topo); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Error("two Generate(42) calls produced different topologies")
	}
}

// TestFuzzWorkerDeterminism: the summary must be bit-identical for any
// worker count (pre-assigned result slots, per-case derived seeds).
func TestFuzzWorkerDeterminism(t *testing.T) {
	render := func(workers int) string {
		sum, err := Fuzz(context.Background(), Options{Cases: 8, Seed: 3, Duration: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		WriteSummary(&buf, sum)
		return buf.String()
	}
	w1 := render(1)
	w4 := render(4)
	if w1 != w4 {
		t.Errorf("summaries differ between 1 and 4 workers:\n--- w1 ---\n%s--- w4 ---\n%s", w1, w4)
	}
	if !strings.Contains(w1, "all oracles passed") {
		t.Errorf("healthy campaign reported failures:\n%s", w1)
	}
}

// TestFuzzBrokenThreshold: under-scaling the Proposition 1/2 thresholds
// must be caught by the zero-conformant-loss oracle, the failure must
// shrink to a reproducer file, and replaying that file through the
// topology engine must still fail verification.
func TestFuzzBrokenThreshold(t *testing.T) {
	dir := t.TempDir()
	sum, err := Fuzz(context.Background(), Options{
		Cases: 2, Seed: 1, Duration: 2, ThresholdScale: 0.9, ReproDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	fails := sum.FailedCases()
	if len(fails) != 2 {
		t.Fatalf("want both broken cases to fail, got %d of 2", len(fails))
	}
	for _, c := range fails {
		if c.Kind != KindBroken {
			t.Errorf("case %d: kind %s, want %s", c.Index, c.Kind, KindBroken)
		}
		seen := false
		for _, a := range c.Failures {
			if a.Name == "zero-conformant-loss" {
				seen = true
			}
		}
		if !seen {
			t.Errorf("case %d: no zero-conformant-loss violation in %v", c.Index, c.Failures)
		}
		if c.ReproPath == "" {
			t.Fatalf("case %d: no reproducer written", c.Index)
		}
		if c.ShrunkFlows > 3 {
			t.Errorf("case %d: shrink left %d flows, want <= 3", c.Index, c.ShrunkFlows)
		}

		// Replay: the shrunk file must load, run, and fail Verify —
		// exactly what `qnet -topology <repro> -check` does.
		topo, err := topology.Load(c.ReproPath)
		if err != nil {
			t.Fatalf("loading repro %s: %v", c.ReproPath, err)
		}
		res, err := topology.Run(context.Background(), topo, topology.Options{Duration: 2, Seed: c.Seed})
		if err != nil {
			t.Fatalf("replaying repro %s: %v", c.ReproPath, err)
		}
		failed := 0
		for _, a := range topology.Verify(topo, &res) {
			if a.Failed() {
				failed++
			}
		}
		if failed == 0 {
			t.Errorf("repro %s passes topology.Verify on replay; want a failure", c.ReproPath)
		}
	}
	// The repro directory holds exactly the advertised files.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("repro dir has %d files, want 2", len(ents))
	}
}

// TestTCPFamilyGoodputOracle: generated closed-loop scenarios must
// admit every flow and clear the goodput floor on guaranteed routes.
func TestTCPFamilyGoodputOracle(t *testing.T) {
	var oracle Oracle
	for _, o := range Oracles() {
		if o.Name == "tcp-goodput-floor" {
			oracle = o
		}
	}
	if oracle.Check == nil {
		t.Fatal("tcp-goodput-floor missing from the oracle catalogue")
	}
	checked := 0
	for seed := int64(0); seed < 60 && checked < 3; seed++ {
		sc, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if sc.Kind != KindTCP {
			continue
		}
		checked++
		opts := topology.Options{Duration: 2, Seed: seed}
		res, err := topology.Run(context.Background(), sc.Topo, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for fi := range res.Flows {
			if !res.Flows[fi].Admitted {
				t.Errorf("seed %d: flow %s rejected; the tcp family must stay inside the admission region",
					seed, sc.Topo.Flows[fi].Name)
			}
		}
		as := oracle.Check(context.Background(), &Case{Scenario: sc, Opts: opts, Result: &res})
		if len(as) != len(sc.Topo.Flows) {
			t.Errorf("seed %d: %d goodput assertions for %d tcp flows", seed, len(as), len(sc.Topo.Flows))
		}
		for _, a := range as {
			if a.Err != nil {
				t.Errorf("seed %d: %s: %v", seed, a.Detail, a.Err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("60 seeds never produced a tcp scenario")
	}
}

// TestFuzzOracleFilter: unknown names are rejected, known names select
// a subset.
func TestFuzzOracleFilter(t *testing.T) {
	if _, err := Fuzz(context.Background(), Options{Cases: 1, Seed: 1, Oracles: []string{"nope"}}); err == nil {
		t.Error("unknown oracle name accepted")
	}
	sum, err := Fuzz(context.Background(), Options{
		Cases: 2, Seed: 1, Duration: 2, Oracles: []string{"conservation"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.FailedCases()) != 0 {
		t.Errorf("conservation-only campaign failed: %+v", sum.FailedCases())
	}
}

// TestShrinkKeepsFailure: shrinking a failing broken-threshold scenario
// preserves the failure and never grows the scenario.
func TestShrinkKeepsFailure(t *testing.T) {
	sc, err := Generate(11, GenConfig{ThresholdScale: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	opts := topology.Options{Duration: 2, Seed: 11}
	all := Oracles()
	as, err := evaluateScenario(context.Background(), sc, opts, all)
	if err != nil {
		t.Fatal(err)
	}
	if !anyFailed(as) {
		t.Fatal("broken scenario did not fail; cannot test shrinking")
	}
	shrunk := Shrink(context.Background(), sc, opts, all)
	if len(shrunk.Topo.Flows) > len(sc.Topo.Flows) {
		t.Error("shrink grew the flow set")
	}
	as2, err := evaluateScenario(context.Background(), shrunk, opts, all)
	if err != nil {
		t.Fatal(err)
	}
	if !anyFailed(as2) {
		t.Error("shrunk scenario no longer fails")
	}
}

// TestReproFilenameStable pins the reproducer naming scheme that the
// docs reference.
func TestReproFilenameStable(t *testing.T) {
	dir := t.TempDir()
	sum, err := Fuzz(context.Background(), Options{
		Cases: 1, Seed: 1, Duration: 2, ThresholdScale: 0.9, ReproDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Cases) != 1 || sum.Cases[0].ReproPath == "" {
		t.Fatal("expected one failing case with a repro")
	}
	base := filepath.Base(sum.Cases[0].ReproPath)
	if !strings.HasPrefix(base, "repro-broken-threshold-seed") || !strings.HasSuffix(base, ".json") {
		t.Errorf("unexpected repro filename %q", base)
	}
}
