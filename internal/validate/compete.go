package validate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"bufqos/internal/experiment"
	"bufqos/internal/online"
	"bufqos/internal/report"
	"bufqos/internal/sim"
)

// This file is the competitive-analysis campaign: adversarial arrival
// generators for the abstract models of internal/online, and a sweep
// harness that crosses every policy with every compatible adversary and
// buffer size, measuring empirical competitive ratios against the exact
// offline optimum. cmd/qcomp drives it; the competitive-ratio qfuzz
// oracle reuses the same generators case by case.

// Adversary is one seeded generator of adversarial arrival sequences.
type Adversary struct {
	// Name is the stable identifier used by `qcomp -adversaries`.
	Name string
	// Model restricts the adversary to one abstract model; "" targets
	// whichever model the policy under test uses.
	Model online.Model
	// Doc is a one-line description of the construction.
	Doc string
	// Cite anchors the construction in the literature.
	Cite string
	// Deterministic marks constructions that ignore the rng: the sweep
	// runs them once per cell instead of once per replication.
	Deterministic bool
	// Gen builds the instance one replication runs. The policy is the
	// one under test — adaptive adversaries (hillclimb) search against
	// it; oblivious ones ignore it.
	Gen func(rng *rand.Rand, p online.Policy, queues, buffer int) *online.Instance
}

// Adversaries returns the adversary library in catalogue order.
func Adversaries() []Adversary {
	return []Adversary{
		{
			Name:          "lb-multiqueue",
			Model:         online.ModelMultiQueue,
			Doc:           "the deterministic 2−1/m lower-bound construction: fill every queue, then keep re-hitting the queues a greedy server has not yet drained",
			Cite:          "Bienkowski, An Optimal Lower Bound for Buffer Management in Multi-Queue Switches (arXiv:1007.1535)",
			Deterministic: true,
			Gen:           genLowerBoundMultiQueue,
		},
		{
			Name:          "lb-twovalue",
			Model:         online.ModelShared,
			Doc:           "the two-value (1, α) sequence with α = 10: a buffer of cheap packets followed by valuable ones in the same step",
			Cite:          "non-preemptive lower bound, Al-Bawani & Souza (arXiv:1103.6049) related work",
			Deterministic: true,
			Gen:           genLowerBoundTwoValue,
		},
		{
			Name: "random",
			Doc:  "seeded random bursts: arrival counts, times, and classes drawn uniformly; shared-model values grow geometrically with the class",
			Cite: "baseline oblivious adversary",
			Gen:  genRandomInstance,
		},
		{
			Name: "hillclimb",
			Doc:  "adaptive local search: starts from a random instance and keeps any of ~200 seeded mutations that increases OPT/ALG against the policy under test",
			Cite: "adaptive adversary; standard empirical competitive-analysis practice",
			Gen:  genHillClimb,
		},
	}
}

// AdversaryNames returns the registered names in catalogue order.
func AdversaryNames() []string {
	var names []string
	for _, a := range Adversaries() {
		names = append(names, a.Name)
	}
	return names
}

// AdversaryByName resolves a registry name.
func AdversaryByName(name string) (Adversary, error) {
	for _, a := range Adversaries() {
		if a.Name == name {
			return a, nil
		}
	}
	return Adversary{}, fmt.Errorf("validate: unknown adversary %q (have %s)",
		name, strings.Join(AdversaryNames(), ", "))
}

// twoValueAlpha is the value spread of the lb-twovalue construction;
// the non-preemptive greedy baseline is exactly α-competitive on it.
const twoValueAlpha = 10.0

// genLowerBoundMultiQueue generalizes the B=1 construction to any
// per-queue buffer: phase s (steps s·B … s·B+B−1) delivers B packets to
// every queue in {s, …, m−1}, so a longest-queue-first server with a
// lowest-index tie-break wastes its early service on queues the
// adversary will refill. At B=1 the ratio is exactly 2−1/m.
func genLowerBoundMultiQueue(_ *rand.Rand, _ online.Policy, queues, buffer int) *online.Instance {
	in := &online.Instance{
		Name:   fmt.Sprintf("lb-multiqueue-m%d-B%d", queues, buffer),
		Model:  online.ModelMultiQueue,
		Queues: queues,
		Buffer: buffer,
	}
	for s := 0; s < queues; s++ {
		for q := s; q < queues; q++ {
			for j := 0; j < buffer; j++ {
				in.Arrivals = append(in.Arrivals, online.Arrival{At: s * buffer, Queue: q, Value: 1})
			}
		}
	}
	return in
}

// genLowerBoundTwoValue fills the shared buffer with B class-0 packets
// of value 1, then offers B top-class packets of value α in the same
// step: a non-preemptive policy is stuck with the cheap ones.
func genLowerBoundTwoValue(_ *rand.Rand, _ online.Policy, queues, buffer int) *online.Instance {
	in := &online.Instance{
		Name:   fmt.Sprintf("lb-twovalue-B%d", buffer),
		Model:  online.ModelShared,
		Queues: queues,
		Buffer: buffer,
	}
	for i := 0; i < buffer; i++ {
		in.Arrivals = append(in.Arrivals, online.Arrival{At: 0, Queue: 0, Value: 1})
	}
	for i := 0; i < buffer; i++ {
		in.Arrivals = append(in.Arrivals, online.Arrival{At: 0, Queue: queues - 1, Value: twoValueAlpha})
	}
	return in
}

// classValue maps a class index to its packet value in generated
// shared-model instances: geometric growth, so preemption decisions
// matter. The class-segregation model requires values non-decreasing in
// the class index, which this respects.
func classValue(class int) float64 { return math.Pow(2, float64(class)) }

// genRandomInstance draws a small oblivious instance for the policy's
// model. Sizes stay small enough that the exact solver is cheap.
func genRandomInstance(rng *rand.Rand, p online.Policy, queues, buffer int) *online.Instance {
	in := &online.Instance{
		Name:   "random",
		Model:  p.Model,
		Queues: queues,
		Buffer: buffer,
	}
	n := 2 + rng.Intn(3*buffer+8)
	horizon := 2*buffer + 4
	for i := 0; i < n; i++ {
		a := online.Arrival{
			At:    rng.Intn(horizon),
			Queue: rng.Intn(queues),
			Value: 1,
		}
		if p.Model == online.ModelShared {
			a.Value = classValue(a.Queue)
		}
		in.Arrivals = append(in.Arrivals, a)
	}
	return in
}

// hillClimbBudget bounds the mutation search of the adaptive adversary.
const hillClimbBudget = 200

// genHillClimb starts from a random instance and keeps every mutation
// (add, drop, retime, reclass) that strictly increases the policy's
// empirical ratio. The search is greedy and seeded, so a (seed, policy,
// geometry) triple always reproduces the same instance.
func genHillClimb(rng *rand.Rand, p online.Policy, queues, buffer int) *online.Instance {
	cur := genRandomInstance(rng, p, queues, buffer)
	cur.Name = "hillclimb"
	best := math.Inf(-1)
	if out, err := online.Evaluate(p, cur); err == nil {
		best = out.Ratio
	}
	maxArrivals := 4*buffer + 16
	horizon := 2*buffer + 4
	for step := 0; step < hillClimbBudget; step++ {
		cand := cur.Clone()
		switch op := rng.Intn(4); {
		case op == 0 && len(cand.Arrivals) < maxArrivals:
			a := online.Arrival{At: rng.Intn(horizon), Queue: rng.Intn(queues), Value: 1}
			if p.Model == online.ModelShared {
				a.Value = classValue(a.Queue)
			}
			cand.Arrivals = append(cand.Arrivals, a)
		case op == 1 && len(cand.Arrivals) > 1:
			i := rng.Intn(len(cand.Arrivals))
			cand.Arrivals = append(cand.Arrivals[:i], cand.Arrivals[i+1:]...)
		case op == 2:
			i := rng.Intn(len(cand.Arrivals))
			cand.Arrivals[i].At = rng.Intn(horizon)
		default:
			i := rng.Intn(len(cand.Arrivals))
			cand.Arrivals[i].Queue = rng.Intn(queues)
			if p.Model == online.ModelShared {
				cand.Arrivals[i].Value = classValue(cand.Arrivals[i].Queue)
			}
		}
		out, err := online.Evaluate(p, cand)
		if err != nil || out.Ratio <= best {
			continue
		}
		best = out.Ratio
		cur = cand
	}
	return cur
}

// competitiveEps is the tolerance the qfuzz oracle grants above a
// proven bound before calling a replication a violation.
const competitiveEps = 1e-9

// competitiveSeedID offsets the fuzz-case seed so the oracle's rng
// streams are independent of the scenario generator's.
const competitiveSeedID = 7700

// checkCompetitiveRatio is the qfuzz oracle: for every policy with a
// proven competitive bound, each fuzz case generates fresh adversarial
// instances (one per compatible adversary, at a case-specific geometry)
// and asserts ALG ≥ OPT/bound within tolerance. A violation is shrunk
// to a 1-minimal instance and saved into the campaign's repro directory
// as a file replayable with `qcomp -replay`.
func checkCompetitiveRatio(ctx context.Context, c *Case) []report.Assertion {
	seed := sim.DeriveSeed(c.Scenario.Seed, competitiveSeedID)
	geo := sim.NewRand(seed)
	queues := 2 + geo.Intn(3)
	buffer := 1 + geo.Intn(3)
	var as []report.Assertion
	pair := 0
	for _, p := range online.Policies() {
		if p.Bound == 0 {
			continue
		}
		for _, adv := range Adversaries() {
			if ctx.Err() != nil {
				return as
			}
			if adv.Model != "" && adv.Model != p.Model {
				continue
			}
			pair++
			in := adv.Gen(sim.NewRand(sim.DeriveSeed(seed, pair)), p, queues, buffer)
			out, err := online.Evaluate(p, in)
			detail := fmt.Sprintf("policy %s vs %s (m=%d, B=%d)", p.Name, adv.Name, queues, buffer)
			if err == nil && out.Ratio > p.Bound+competitiveEps {
				err = fmt.Errorf("ratio %.6g exceeds the proven bound %g (ALG=%g, OPT=%g)",
					out.Ratio, p.Bound, out.ALG, out.OPT)
				if path := writeInstanceRepro(c.ReproDir, p, in); path != "" {
					detail += ", repro " + path
				}
			}
			as = append(as, report.Assertion{Name: "competitive-ratio", Detail: detail, Err: err})
		}
	}
	return as
}

// writeInstanceRepro shrinks a bound-violating instance against the
// same policy and saves it; it returns "" when no directory is set or
// saving fails.
func writeInstanceRepro(dir string, p online.Policy, in *online.Instance) string {
	if dir == "" {
		return ""
	}
	shrunk := online.ShrinkInstance(in, func(cand *online.Instance) bool {
		out, err := online.Evaluate(p, cand)
		return err == nil && out.Ratio > p.Bound+competitiveEps
	})
	shrunk.Name = fmt.Sprintf("repro-competitive-%s-%s", p.Name, in.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, shrunk.Name+".json")
	if err := online.Save(path, shrunk); err != nil {
		return ""
	}
	return path
}

// CompeteOptions parameterizes one competitive sweep.
type CompeteOptions struct {
	// Policies filters the policy registry by name; nil/empty sweeps all.
	Policies []string
	// Adversaries filters the adversary library; nil/empty sweeps all.
	Adversaries []string
	// Queues is the queue (multiqueue) / class (shared) count; default 3.
	Queues int
	// Buffers lists the buffer sizes to sweep; default {1, 2, 4}.
	Buffers []int
	// Reps is the number of seeded replications per randomized cell;
	// deterministic adversaries always run once. Default 5.
	Reps int
	// Seed is the campaign seed; replication r of cell i derives
	// sim.DeriveSeed(Seed, i*1000+r), so any cell replays in isolation.
	Seed int64
	// Eps is the tolerance above a proven bound before a replication
	// counts as a violation; default 1e-9.
	Eps float64
	// Workers caps the worker pool; 0 means GOMAXPROCS. Reports are
	// bit-identical for any value.
	Workers int
	// OnDone, when non-nil, is called after each finished cell.
	OnDone func(i int)
}

func (o *CompeteOptions) defaults() {
	if o.Queues == 0 {
		o.Queues = 3
	}
	if len(o.Buffers) == 0 {
		o.Buffers = []int{1, 2, 4}
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Eps == 0 {
		o.Eps = 1e-9
	}
}

// CompeteCell is one (policy, adversary, buffer) measurement.
type CompeteCell struct {
	Policy    string  `json:"policy"`
	Adversary string  `json:"adversary"`
	Model     string  `json:"model"`
	Queues    int     `json:"queues"`
	Buffer    int     `json:"buffer"`
	Reps      int     `json:"reps"`
	Bound     float64 `json:"bound,omitempty"` // proven upper bound; 0 = none
	MeanRatio float64 `json:"mean_ratio"`
	MaxRatio  float64 `json:"max_ratio"`
	// WorstSeed replays the worst replication: `qcomp -replay` on the
	// instance the same adversary regenerates from it.
	WorstSeed int64   `json:"worst_seed"`
	WorstALG  float64 `json:"worst_alg"`
	WorstOPT  float64 `json:"worst_opt"`
	// Violations counts replications whose ratio exceeded Bound + eps
	// (always 0 for policies with no proven bound).
	Violations int `json:"violations"`
}

// CompeteReport is one finished sweep, serialized verbatim into
// BENCH_competitive.json. It contains no timestamps or host details, so
// a re-run with the same options is byte-identical.
type CompeteReport struct {
	Seed   int64         `json:"seed"`
	Queues int           `json:"queues"`
	Reps   int           `json:"reps"`
	Eps    float64       `json:"eps"`
	Cells  []CompeteCell `json:"cells"`
}

// Compete crosses the selected policies with every compatible adversary
// and buffer size, evaluates each replication against the exact offline
// optimum, and aggregates empirical competitive ratios. Cells fan out
// over the experiment worker pool into pre-assigned slots, so the
// report is bit-identical for any worker count.
func Compete(ctx context.Context, opts CompeteOptions) (*CompeteReport, error) {
	opts.defaults()
	policies, err := policiesByName(opts.Policies)
	if err != nil {
		return nil, err
	}
	adversaries, err := adversariesByName(opts.Adversaries)
	if err != nil {
		return nil, err
	}
	type cellJob struct {
		p online.Policy
		a Adversary
		b int
	}
	var jobs []cellJob
	for _, p := range policies {
		for _, a := range adversaries {
			if a.Model != "" && a.Model != p.Model {
				continue
			}
			for _, b := range opts.Buffers {
				jobs = append(jobs, cellJob{p: p, a: a, b: b})
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("validate: no policy×adversary cell matches the selection")
	}
	cells := make([]CompeteCell, len(jobs))
	runErr := experiment.ForEachJob(ctx, opts.Workers, len(jobs), nil, opts.OnDone, func(i int) error {
		j := jobs[i]
		cell := CompeteCell{
			Policy:    j.p.Name,
			Adversary: j.a.Name,
			Model:     string(j.p.Model),
			Queues:    opts.Queues,
			Buffer:    j.b,
			Bound:     j.p.Bound,
		}
		reps := opts.Reps
		if j.a.Deterministic {
			reps = 1
		}
		cell.Reps = reps
		var sum float64
		for r := 0; r < reps; r++ {
			repSeed := sim.DeriveSeed(opts.Seed, i*1000+r)
			in := j.a.Gen(sim.NewRand(repSeed), j.p, opts.Queues, j.b)
			out, err := online.Evaluate(j.p, in)
			if err != nil {
				return fmt.Errorf("validate: %s vs %s (B=%d, rep %d): %w",
					j.p.Name, j.a.Name, j.b, r, err)
			}
			sum += out.Ratio
			if r == 0 || out.Ratio > cell.MaxRatio {
				cell.MaxRatio = out.Ratio
				cell.WorstSeed = repSeed
				cell.WorstALG = out.ALG
				cell.WorstOPT = out.OPT
			}
			if j.p.Bound > 0 && out.Ratio > j.p.Bound+opts.Eps {
				cell.Violations++
			}
		}
		cell.MeanRatio = sum / float64(reps)
		cells[i] = cell
		return ctx.Err()
	})
	if runErr != nil {
		return nil, runErr
	}
	return &CompeteReport{
		Seed:   opts.Seed,
		Queues: opts.Queues,
		Reps:   opts.Reps,
		Eps:    opts.Eps,
		Cells:  cells,
	}, nil
}

// Violations returns the cells with at least one bound violation.
func (r *CompeteReport) Violations() []CompeteCell {
	var out []CompeteCell
	for _, c := range r.Cells {
		if c.Violations > 0 {
			out = append(out, c)
		}
	}
	return out
}

// policiesByName resolves a policy name filter (nil = all).
func policiesByName(names []string) ([]online.Policy, error) {
	if len(names) == 0 {
		return online.Policies(), nil
	}
	var out []online.Policy
	for _, n := range names {
		p, err := online.PolicyByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// adversariesByName resolves an adversary name filter (nil = all).
func adversariesByName(names []string) ([]Adversary, error) {
	if len(names) == 0 {
		return Adversaries(), nil
	}
	var out []Adversary
	for _, n := range names {
		a, err := AdversaryByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
