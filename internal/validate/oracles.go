package validate

import (
	"context"
	"fmt"
	"reflect"

	"bufqos/internal/core"
	"bufqos/internal/fluid"
	"bufqos/internal/packet"
	"bufqos/internal/report"
	"bufqos/internal/scheme"
	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// Case is one executed fuzz case: the generated scenario, the options
// it ran under, and the finished run the oracles inspect. Oracles that
// need counterfactual runs (admission monotonicity) re-run the
// scenario themselves via topology.Run with the same options.
type Case struct {
	Index    int
	Scenario *Scenario
	Opts     topology.Options
	Result   *topology.Result
	// ReproDir, when non-empty, is where oracles that manage their own
	// reproducer format (competitive-ratio's abstract instances) write
	// files; the standard topology shrinker has its own pipeline.
	ReproDir string
}

// Oracle is one paper invariant turned into an executable check. Check
// returns one report.Assertion per property instance it examined; an
// assertion with a non-nil Err is a violation. An oracle that does not
// apply to a case returns no assertions.
type Oracle struct {
	// Name is the stable identifier used by `qfuzz -oracle`.
	Name string
	// Citation anchors the invariant in the paper.
	Citation string
	// Doc is a one-line statement of the property.
	Doc string
	// NoShrink excludes the oracle from the topology shrinker: its
	// failures concern inputs other than the scenario (abstract arrival
	// instances), and it writes its own reproducers into Case.ReproDir.
	NoShrink bool
	Check    func(ctx context.Context, c *Case) []report.Assertion
}

// Oracles returns the full oracle library in catalogue order.
func Oracles() []Oracle {
	return []Oracle{
		{
			Name:     "zero-conformant-loss",
			Citation: "Propositions 1–2, §2.1–2.2",
			Doc:      "an admitted shaped flow loses no conformant packet at any threshold- or sharing-managed hop",
			Check:    checkZeroConformantLoss,
		},
		{
			Name:     "conservation",
			Citation: "§2 queueing model",
			Doc:      "per link and flow, offered = departed + dropped + a residue within the buffer; delivered never exceeds offered",
			Check:    checkConservation,
		},
		{
			Name:     "reserved-throughput",
			Citation: "Proposition 2 corollary, §2.2",
			Doc:      "a sustained conformant flow on a guaranteed route delivers its reserved rate ρ up to a burst-and-storage allowance",
			Check:    checkReservedThroughput,
		},
		{
			Name:     "rejected-flow-idle",
			Citation: "admission regions, eqs. (5)–(8), §2.3",
			Doc:      "a flow refused by admission control carries no traffic",
			Check:    checkRejectedIdle,
		},
		{
			Name:     "admission-monotonicity",
			Citation: "Proposition 2, §2.2 (the guarantee is unconditional)",
			Doc:      "admitting one more flow never induces conformant loss for flows that stay admitted",
			Check:    checkMonotonicity,
		},
		{
			Name:     "threshold-necessity",
			Citation: "Proposition 1 tightness via Example 1, §2.1",
			Doc:      "in the fluid model the B·ρ/R threshold is lossless while 0.9× of it drops against a greedy competitor",
			Check:    checkNecessity,
		},
		{
			Name:     "hybrid-savings",
			Citation: "equation (17), §4.1",
			Doc:      "the hybrid allocation never needs more buffer than plain FIFO: B_FIFO − B_hybrid ≥ 0",
			Check:    checkHybridSavings,
		},
		{
			Name:     "tcp-goodput-floor",
			Citation: "GFR comparison (PAPERS.md: Goyal et al., rate guarantees to TCP); §3 thresholds under feedback",
			Doc:      "an admitted closed-loop TCP flow on a guaranteed route achieves goodput ≥ ρ/2 over its active window",
			Check:    checkTCPGoodputFloor,
		},
		{
			Name:     "shard-equivalence",
			Citation: "determinism contract, §5 scaling discussion",
			Doc:      "re-running the scenario on a 3-shard partitioned kernel reproduces the single-shard result bit for bit",
			Check:    checkShardEquivalence,
		},
		{
			Name:     "sim-fluid-differential",
			Citation: "§2 fluid analysis vs the packet simulator",
			Doc:      "on an all-greedy threshold link, packet-sim departures and drops stay within a quantization envelope of the fluid trajectory",
			Check:    checkDifferential,
		},
		{
			Name:     "competitive-ratio",
			Citation: "Al-Bawani & Souza (arXiv:1103.6049); Bienkowski (arXiv:1007.1535)",
			Doc:      "every bounded online policy earns ALG ≥ OPT/bound on per-case adversarial instances; violations shrink to instances replayable with qcomp -replay",
			NoShrink: true,
			Check:    checkCompetitiveRatio,
		},
		{
			Name:     "sizing-sqrt-n",
			Citation: "Spang–Arslan–McKeown, \"Updating the Theory of Buffer Sizing\" (PAPERS.md)",
			Doc:      "a drop-tail bottleneck buffered at C·RTT/√n stays ≥90% utilized under n ≥ 64 case-seeded TCP flows",
			NoShrink: true,
			Check:    checkSizingSqrtN,
		},
	}
}

// OracleNames returns the names in catalogue order.
func OracleNames() []string {
	var names []string
	for _, o := range Oracles() {
		names = append(names, o.Name)
	}
	return names
}

// linkGuaranteed reports whether a link's scheme carries the paper's
// zero-conformant-loss guarantee: a FIFO or WFQ scheduler over the §3.2
// threshold partition or its §3.3 sharing variant (whose reserved
// thresholds are identical). Note that an under-scaled threshold
// manager (threshold?scale<1) still claims the guarantee — that is
// precisely the defect the oracles exist to catch.
func linkGuaranteed(spec string) bool {
	s, err := scheme.Parse(spec)
	if err != nil {
		return false
	}
	switch s.SchedulerName() {
	case "fifo", "wfq":
	default:
		return false
	}
	switch s.ManagerName() {
	case "threshold", "sharing":
	default:
		return false
	}
	return true
}

// routeGuaranteed reports whether every hop of the flow's route is a
// guaranteed link.
func routeGuaranteed(t *topology.Topology, f *topology.Flow) bool {
	for _, li := range f.Route {
		if !linkGuaranteed(t.Links[li].Spec) {
			return false
		}
	}
	return true
}

// assertable reports whether the flow is held to its guarantees in this
// run: it must be admitted, shaped (no contract otherwise), and not
// degraded by a link failure or rate cut.
func assertable(f *topology.Flow, fr *topology.FlowResult) bool {
	return fr.Admitted && !fr.Degraded && f.Shaped
}

func checkZeroConformantLoss(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		if !assertable(f, &c.Result.Flows[fi]) {
			continue
		}
		for _, li := range f.Route {
			if !linkGuaranteed(t.Links[li].Spec) {
				continue
			}
			lf := &c.Result.Links[li].Flows[fi]
			var err error
			if lf.ConformantDropped.Packets != 0 {
				err = fmt.Errorf("dropped %d conformant packets (%v)",
					lf.ConformantDropped.Packets, lf.ConformantDropped.Bytes)
			}
			as = append(as, report.Assertion{
				Name:   "zero-conformant-loss",
				Detail: fmt.Sprintf("flow %s at link %s", f.Name, t.Links[li].Name),
				Err:    err,
			})
		}
	}
	return as
}

func checkConservation(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for li := range t.Links {
		l := &t.Links[li]
		for fi := range t.Flows {
			lf := &c.Result.Links[li].Flows[fi]
			if lf.Offered.Packets == 0 {
				continue
			}
			residue := lf.Offered.Bytes - lf.Dropped.Bytes - lf.Departed.Bytes
			var err error
			switch {
			case residue < 0:
				err = fmt.Errorf("more bytes left than arrived: offered %v, dropped %v, departed %v",
					lf.Offered.Bytes, lf.Dropped.Bytes, lf.Departed.Bytes)
			case residue > l.Buffer+t.Flows[fi].PacketSize:
				err = fmt.Errorf("residue %v exceeds buffer %v", residue, l.Buffer)
			}
			as = append(as, report.Assertion{
				Name:   "conservation",
				Detail: fmt.Sprintf("flow %s at link %s", t.Flows[fi].Name, l.Name),
				Err:    err,
			})
		}
	}
	for fi := range t.Flows {
		fr := &c.Result.Flows[fi]
		if fr.Offered.Packets == 0 {
			continue
		}
		as = append(as, report.Assertion{
			Name:   "conservation",
			Detail: fmt.Sprintf("flow %s end-to-end", t.Flows[fi].Name),
			Err: check(fr.Delivered.Bytes <= fr.Offered.Bytes,
				"delivered %v exceeds offered %v", fr.Delivered.Bytes, fr.Offered.Bytes),
		})
	}
	return as
}

func checkReservedThroughput(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		fr := &c.Result.Flows[fi]
		if !assertable(f, fr) || fr.Left || !sustainedSource(f) || !routeGuaranteed(t, f) {
			continue
		}
		active := fr.LeaveAt - fr.JoinAt
		want := units.BytesAtRate(f.Spec.TokenRate, active) - allowanceFor(t, f)
		as = append(as, report.Assertion{
			Name:   "reserved-throughput",
			Detail: fmt.Sprintf("flow %s: ≥ ρ = %v over %.3gs", f.Name, f.Spec.TokenRate, active),
			Err: check(fr.Delivered.Bytes >= want,
				"delivered %v (%v), want ≥ %v", fr.Delivered.Bytes, fr.Throughput, want),
		})
	}
	return as
}

// checkTCPGoodputFloor mirrors topology.Verify's closed-loop contract:
// an admitted TCP flow on an all-guaranteed route must achieve goodput
// of at least TCPGoodputFraction·ρ over its active window. Taildrop and
// RED routes make no such promise, so the oracle skips them — which is
// exactly what lets the nightly campaign use them as controls.
func checkTCPGoodputFloor(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		fr := &c.Result.Flows[fi]
		if f.Source != topology.SourceTCP {
			continue
		}
		if !fr.Admitted || fr.Degraded || fr.Left || !routeGuaranteed(t, f) {
			continue
		}
		active := fr.LeaveAt - fr.JoinAt
		want := units.Bytes(topology.TCPGoodputFraction*
			float64(units.BytesAtRate(f.Spec.TokenRate, active))) - allowanceFor(t, f)
		as = append(as, report.Assertion{
			Name: "tcp-goodput-floor",
			Detail: fmt.Sprintf("flow %s: goodput ≥ %.2g·ρ = %.2g·%v over %.3gs",
				f.Name, topology.TCPGoodputFraction, topology.TCPGoodputFraction, f.Spec.TokenRate, active),
			Err: check(fr.Goodput.Bytes >= want,
				"goodput %v (%v), want ≥ %v", fr.Goodput.Bytes, fr.GoodputRate, want),
		})
	}
	return as
}

func checkRejectedIdle(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for fi := range t.Flows {
		fr := &c.Result.Flows[fi]
		if fr.Admitted {
			continue
		}
		as = append(as, report.Assertion{
			Name:   "rejected-flow-idle",
			Detail: fmt.Sprintf("flow %s", t.Flows[fi].Name),
			Err: check(fr.Offered.Packets == 0 && fr.Delivered.Packets == 0,
				"non-admitted flow carried traffic: offered %d, delivered %d packets",
				fr.Offered.Packets, fr.Delivered.Packets),
		})
	}
	return as
}

// checkShardEquivalence re-runs the scenario with the link graph
// partitioned over three event kernels (internal/shard) and asserts the
// Result is bit-identical to the fuzz case's original run. Three is the
// awkwardest small count: with most generated route graphs it forces at
// least one uneven cut, exercising both the window protocol and the
// hand-off tie-breaking.
func checkShardEquivalence(ctx context.Context, c *Case) []report.Assertion {
	opts := c.Opts
	opts.Shards = 3
	vres, err := topology.Run(ctx, c.Scenario.Topo, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return []report.Assertion{{
			Name:   "shard-equivalence",
			Detail: "running the 3-shard variant",
			Err:    err,
		}}
	}
	var err2 error
	if !reflect.DeepEqual(*c.Result, vres) {
		err2 = fmt.Errorf("3-shard run diverges from the original (events %d vs %d)",
			vres.Events, c.Result.Events)
	}
	return []report.Assertion{{
		Name:   "shard-equivalence",
		Detail: fmt.Sprintf("scenario %s", c.Scenario.Topo.Name),
		Err:    err2,
	}}
}

// checkMonotonicity re-runs the scenario with one extra conformant flow
// appended and asserts that every flow admitted in both runs still sees
// zero conformant loss at its guaranteed hops. Appending (rather than
// inserting) preserves the original flows' IDs and hence their derived
// random streams, so their sources behave bit-identically; only the
// queueing interleaving may change — which is exactly what the
// guarantee says must not matter.
func checkMonotonicity(ctx context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	applicable := false
	for fi := range t.Flows {
		if assertable(&t.Flows[fi], &c.Result.Flows[fi]) && routeGuaranteed(t, &t.Flows[fi]) {
			applicable = true
			break
		}
	}
	if !applicable {
		return nil
	}
	clone := cloneTopology(t)
	clone.Flows = append(clone.Flows, topology.Flow{
		Name:       "zz-intruder",
		RouteNodes: append([]string(nil), t.Flows[0].RouteNodes...),
		Spec: packet.FlowSpec{
			PeakRate:   units.MbitsPerSecond(1),
			TokenRate:  units.MbitsPerSecond(0.25),
			BucketSize: units.KiloBytes(10),
		},
		Source: topology.SourceGreedy,
		Shaped: true,
	})
	for li := range clone.Links {
		if clone.Links[li].Queues != nil {
			clone.Links[li].Queues = append(clone.Links[li].Queues, 0)
		}
	}
	if err := clone.Validate(); err != nil {
		return []report.Assertion{{
			Name:   "admission-monotonicity",
			Detail: "building the +1-flow variant",
			Err:    err,
		}}
	}
	vres, err := topology.Run(ctx, clone, c.Opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return []report.Assertion{{
			Name:   "admission-monotonicity",
			Detail: "running the +1-flow variant",
			Err:    err,
		}}
	}
	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		if !assertable(f, &c.Result.Flows[fi]) || !vres.Flows[fi].Admitted || vres.Flows[fi].Degraded {
			continue
		}
		var lost int64
		for _, li := range f.Route {
			if linkGuaranteed(t.Links[li].Spec) {
				lost += vres.Links[li].Flows[fi].ConformantDropped.Packets
			}
		}
		as = append(as, report.Assertion{
			Name:   "admission-monotonicity",
			Detail: fmt.Sprintf("flow %s with one extra admitted flow", f.Name),
			Err: check(lost == 0,
				"gained %d conformant drops after adding an unrelated flow", lost),
		})
	}
	return as
}

// checkNecessity replays Proposition 1 and its Example 1 tightness in
// the fluid model, parameterized by the case's first link and first
// shaped flow: at the paper threshold B·ρ/R (plus one step of
// discretization slack) a constant-rate-ρ flow suffers zero loss
// against a greedy competitor pinned at the rest of the buffer; at 0.9×
// the threshold it must lose fluid.
func checkNecessity(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	l := &t.Links[0]
	r := l.Rate.BitsPerSecond()
	b := l.Buffer.Bits()
	rho := 0.1 * r
	for fi := range t.Flows {
		if t.Flows[fi].Shaped && t.Flows[fi].Spec.TokenRate.BitsPerSecond() < 0.5*r {
			rho = t.Flows[fi].Spec.TokenRate.BitsPerSecond()
			break
		}
	}
	drain := b / r
	dt := drain / 2500
	steps := 25 * 2500
	rates := func(float64) []float64 { return []float64{rho, 0} }

	th := b * rho / r
	suff := fluid.NewEngine(r, []float64{th + rho*dt, b - th - rho*dt}, dt)
	suff.SetGreedy(1)
	suff.Run(steps, rates)

	scaled := 0.9 * th
	nec := fluid.NewEngine(r, []float64{scaled, b - scaled}, dt)
	nec.SetGreedy(1)
	nec.Run(steps, rates)

	return []report.Assertion{
		{
			Name:   "threshold-necessity",
			Detail: fmt.Sprintf("sufficiency: threshold B·ρ/R (ρ=%v, R=%v, B=%v) lossless", units.Rate(rho), l.Rate, l.Buffer),
			Err: check(suff.Dropped[0] == 0,
				"fluid flow dropped %.0f bits at the paper threshold", suff.Dropped[0]),
		},
		{
			Name:   "threshold-necessity",
			Detail: "necessity: 0.9× the threshold drops against a greedy competitor",
			Err: check(nec.Dropped[0] > 0,
				"no loss at 0.9× threshold: the bound would not be tight"),
		},
	}
}

// checkHybridSavings evaluates eq. (17) on the case's admitted shaped
// population: grouping the flows into two hybrid queues never needs
// more buffer than the single FIFO partition.
func checkHybridSavings(_ context.Context, c *Case) []report.Assertion {
	t := c.Scenario.Topo
	var as []report.Assertion
	for li := range t.Links {
		l := &t.Links[li]
		// Eq. (17) compares allocations at ONE multiplexing point, so
		// pool only the admitted shaped flows that cross this link, and
		// only when their reservations fit its rate (the equation's
		// stability precondition Σρ < R).
		var specs []packet.FlowSpec
		var sumRho units.Rate
		for fi := range t.Flows {
			if !c.Result.Flows[fi].Admitted || !t.Flows[fi].Shaped {
				continue
			}
			if indexOf(t.Flows[fi].Route, li) < 0 {
				continue
			}
			specs = append(specs, t.Flows[fi].Spec)
			sumRho += t.Flows[fi].Spec.TokenRate
		}
		if len(specs) < 2 || sumRho >= l.Rate {
			continue
		}
		queueOf := make([]int, len(specs))
		for i := range queueOf {
			queueOf[i] = i % 2
		}
		groups, err := core.GroupFlows(specs, queueOf, 2)
		if err == nil {
			var fifoB units.Bytes
			fifoB, err = core.RequiredBufferFIFO(specs, l.Rate)
			if err == nil {
				var sav units.Bytes
				sav, err = core.BufferSavings(l.Rate, groups)
				if err == nil {
					err = check(sav >= 0, "negative savings %v: hybrid needs more than FIFO's %v", sav, fifoB)
				}
			}
		}
		as = append(as, report.Assertion{
			Name:   "hybrid-savings",
			Detail: fmt.Sprintf("B_FIFO − B_hybrid ≥ 0 over %d admitted flows on %s", len(specs), l.Name),
			Err:    err,
		})
	}
	return as
}

// checkDifferential replays a differential-family case through the
// fluid engine. Every flow is greedy and shaped, so its arrival process
// is exactly its envelope: peak rate until the bucket empties at
// t* = σ/(peak − ρ), then ρ. The packet run's per-flow departures must
// stay within a quantization envelope of the fluid trajectory, and
// neither model may drop (Proposition 2 holds in both).
func checkDifferential(_ context.Context, c *Case) []report.Assertion {
	if c.Scenario.Kind != KindDifferential {
		return nil
	}
	t := c.Scenario.Topo
	l := &t.Links[0]
	ths, err := core.Thresholds(t.Specs(), l.Rate, l.Buffer)
	if err != nil {
		return []report.Assertion{{Name: "sim-fluid-differential", Detail: "thresholds", Err: err}}
	}
	r := l.Rate.BitsPerSecond()
	thBits := make([]float64, len(ths))
	for i, th := range ths {
		thBits[i] = th.Bits()
	}
	// dt small enough that one step moves far less than a threshold.
	dt := (l.Buffer.Bits() / r) / 500
	steps := int(c.Opts.Duration/dt) + 1

	peak := make([]float64, len(t.Flows))
	rho := make([]float64, len(t.Flows))
	tstar := make([]float64, len(t.Flows))
	for fi := range t.Flows {
		s := t.Flows[fi].Spec
		peak[fi] = s.PeakRate.BitsPerSecond()
		rho[fi] = s.TokenRate.BitsPerSecond()
		tstar[fi] = s.BucketSize.Bits() / (peak[fi] - rho[fi])
	}
	eng := fluid.NewEngine(r, thBits, dt)
	buf := make([]float64, len(t.Flows))
	eng.Run(steps, func(now float64) []float64 {
		for fi := range buf {
			if now < tstar[fi] {
				buf[fi] = peak[fi]
			} else {
				buf[fi] = rho[fi]
			}
		}
		return buf
	})

	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		lf := &c.Result.Links[0].Flows[fi]
		fluidDep := units.Bytes(eng.Departed[fi] / 8)
		// Quantization envelope: the packet world trails by up to one
		// bucket of burst granularity plus a handful of packets of
		// scheduling slack; the fluid world ran one extra partial step.
		tol := f.Spec.BucketSize/2 + 16*f.PacketSize + units.BytesAtRate(f.Spec.TokenRate, 2*dt)
		diff := lf.Departed.Bytes - fluidDep
		if diff < 0 {
			diff = -diff
		}
		as = append(as,
			report.Assertion{
				Name: "sim-fluid-differential",
				Detail: fmt.Sprintf("flow %s departures: packet %v vs fluid %v (tol %v)",
					f.Name, lf.Departed.Bytes, fluidDep, tol),
				Err: check(diff <= tol, "packet and fluid departures diverge by %v > %v", diff, tol),
			},
			report.Assertion{
				Name:   "sim-fluid-differential",
				Detail: fmt.Sprintf("flow %s losslessness in both models", f.Name),
				Err: check(lf.ConformantDropped.Packets == 0 && eng.Dropped[fi] == 0,
					"packet dropped %d conformant packets, fluid dropped %.0f bits",
					lf.ConformantDropped.Packets, eng.Dropped[fi]),
			},
		)
	}
	return as
}

// sustainedSource mirrors topology.Verify's notion of a source that
// keeps its bucket busy all run.
func sustainedSource(f *topology.Flow) bool {
	switch f.Source {
	case topology.SourceGreedy:
		return true
	case topology.SourceCBR:
		return f.AvgRate >= f.Spec.TokenRate
	default:
		return false
	}
}

// allowanceFor mirrors topology.Verify's delivery allowance: one bucket
// σ plus, per hop, the buffer, the wire, and one packet.
func allowanceFor(t *topology.Topology, f *topology.Flow) units.Bytes {
	a := f.Spec.BucketSize
	for _, li := range f.Route {
		l := &t.Links[li]
		a += l.Buffer + units.BytesAtRate(l.Rate, l.PropDelay) + f.PacketSize
	}
	return a
}

// check returns nil when ok, else the formatted violation.
func check(ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return fmt.Errorf(format, args...)
}
