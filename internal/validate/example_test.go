package validate_test

import (
	"context"
	"fmt"
	"os"

	"bufqos/internal/validate"
)

// Scenario generation is a pure function of the seed: the same seed
// always yields the same validated topology, so any failure can be
// replayed from (seed, duration) alone.
func ExampleGenerate() {
	sc, err := validate.Generate(5, validate.GenConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d flows, %d links, %d events\n",
		sc.Topo.Name, len(sc.Topo.Flows), len(sc.Topo.Links), len(sc.Topo.Events))
	// Output:
	// fuzz-tcp-5: 3 flows, 2 links, 0 events
}

// The oracle library is ordered and named; qfuzz -oracle selects a
// subset by these names.
func ExampleOracles() {
	for _, o := range validate.Oracles()[:3] {
		fmt.Printf("%s (%s)\n", o.Name, o.Citation)
	}
	// Output:
	// zero-conformant-loss (Propositions 1–2, §2.1–2.2)
	// conservation (§2 queueing model)
	// reserved-throughput (Proposition 2 corollary, §2.2)
}

// A campaign is deterministic end to end: cases derive their seeds
// from the campaign seed and fan out into pre-assigned slots, so the
// summary is identical at any worker count.
func ExampleFuzz() {
	sum, err := validate.Fuzz(context.Background(), validate.Options{
		Cases: 4, Seed: 3, Duration: 2, Workers: 2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	validate.WriteSummary(os.Stdout, sum)
	// Output:
	// fuzz: 4 cases finished (of 4), seed 3, 2s horizon
	//   kind differential          1 cases
	//   kind single-link           2 cases
	//   kind tandem                1 cases
	//   assertions checked: 133
	//   all oracles passed
}
