package validate

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bufqos/internal/experiment"
	"bufqos/internal/report"
	"bufqos/internal/sim"
	"bufqos/internal/topology"
)

// Options parameterizes one fuzzing campaign.
type Options struct {
	// Cases is the number of scenarios to generate and check.
	Cases int
	// Seed is the campaign seed; case i derives its own seed via
	// sim.DeriveSeed(Seed, i), so campaigns are reproducible and
	// individual cases can be replayed in isolation.
	Seed int64
	// Duration is the simulated horizon per scenario, in seconds. The
	// generator's timelines assume at least 2 s.
	Duration float64
	// Workers caps the worker pool; 0 means GOMAXPROCS. Results are
	// bit-identical for any value.
	Workers int
	// Oracles filters the oracle library by name; nil/empty runs all.
	Oracles []string
	// ReproDir, when non-empty, receives one shrunk reproducer JSON per
	// failing case, replayable with `qnet -topology <file> -check`.
	ReproDir string
	// ThresholdScale is forwarded to the generator; values below 1
	// produce deliberately broken scenarios (see GenConfig).
	ThresholdScale float64
	// OnDone, when non-nil, is called after each finished case
	// (possibly concurrently) — progress reporting.
	OnDone func(i int)
}

// CaseResult is the outcome of one fuzz case.
type CaseResult struct {
	Index int
	Seed  int64
	Kind  Kind
	Name  string
	// Done distinguishes a finished case from one skipped by
	// cancellation.
	Done bool
	// Checked counts the assertions the selected oracles evaluated.
	Checked int
	// Failures holds the violated assertions, if any.
	Failures []report.Assertion
	// Err records a generation or run error (counts as a failure).
	Err error
	// ReproPath is the shrunk reproducer file, when one was written.
	ReproPath string
	// ShrunkFlows/ShrunkEvents/ShrunkLinks describe the reproducer size.
	ShrunkFlows, ShrunkEvents, ShrunkLinks int
}

// Failed reports whether the case violated any oracle or errored.
func (c *CaseResult) Failed() bool { return c.Err != nil || len(c.Failures) > 0 }

// Summary aggregates a campaign.
type Summary struct {
	Opts  Options
	Cases []CaseResult
}

// Fuzz runs the campaign: for each case it generates a scenario, runs
// it, applies the selected oracles, and — on failure — shrinks the
// scenario and writes a reproducer. Cases fan out over the experiment
// worker pool with pre-assigned result slots, so the summary is
// bit-identical for any worker count. On context cancellation the
// summary covers the cases that finished, and ctx.Err() is returned
// alongside it.
func Fuzz(ctx context.Context, opts Options) (*Summary, error) {
	if opts.Cases <= 0 {
		return nil, fmt.Errorf("validate: non-positive case count %d", opts.Cases)
	}
	if opts.Duration <= 0 {
		opts.Duration = 2
	}
	oracles, err := oraclesByName(opts.Oracles)
	if err != nil {
		return nil, err
	}
	results := make([]CaseResult, opts.Cases)
	runErr := experiment.ForEachJob(ctx, opts.Workers, opts.Cases, nil, opts.OnDone, func(i int) error {
		results[i] = runCase(ctx, i, opts, oracles)
		return ctx.Err()
	})
	sum := &Summary{Opts: opts}
	for i := range results {
		if results[i].Done {
			sum.Cases = append(sum.Cases, results[i])
		}
	}
	if runErr != nil {
		return sum, runErr
	}
	return sum, nil
}

// runCase executes one case end to end.
func runCase(ctx context.Context, i int, opts Options, oracles []Oracle) CaseResult {
	caseSeed := sim.DeriveSeed(opts.Seed, i)
	cr := CaseResult{Index: i, Seed: caseSeed}
	sc, err := Generate(caseSeed, GenConfig{ThresholdScale: opts.ThresholdScale})
	if err != nil {
		cr.Err = err
		cr.Done = ctx.Err() == nil
		return cr
	}
	cr.Kind = sc.Kind
	cr.Name = sc.Topo.Name
	ropts := topology.Options{Duration: opts.Duration, Seed: caseSeed}
	as, err := evaluateScenarioRepro(ctx, sc, ropts, oracles, opts.ReproDir)
	if err != nil {
		cr.Err = err
		cr.Done = ctx.Err() == nil
		return cr
	}
	cr.Checked = len(as)
	for _, a := range as {
		if a.Failed() {
			cr.Failures = append(cr.Failures, a)
		}
	}
	if len(cr.Failures) > 0 && opts.ReproDir != "" && ctx.Err() == nil {
		cr.ReproPath, cr.ShrunkFlows, cr.ShrunkEvents, cr.ShrunkLinks =
			writeRepro(ctx, sc, ropts, oracles, cr.Failures, opts.ReproDir)
	}
	cr.Done = ctx.Err() == nil
	return cr
}

// writeRepro shrinks the failing scenario against the oracles that
// flagged it and saves the minimized topology as a replayable JSON.
func writeRepro(ctx context.Context, sc *Scenario, ropts topology.Options,
	oracles []Oracle, failures []report.Assertion, dir string) (path string, flows, events, links int) {
	failing := map[string]bool{}
	for _, a := range failures {
		failing[a.Name] = true
	}
	var subset []Oracle
	var names []string
	for _, o := range oracles {
		// NoShrink oracles write their own reproducers (abstract
		// instances, not topologies) from inside Check.
		if failing[o.Name] && !o.NoShrink {
			subset = append(subset, o)
			names = append(names, o.Name)
		}
	}
	if len(subset) == 0 {
		return "", 0, 0, 0
	}
	shrunk := Shrink(ctx, sc, ropts, subset)
	t := shrunk.Topo
	t.Name = fmt.Sprintf("repro-%s-seed%d", sc.Kind, sc.Seed)
	t.Description = fmt.Sprintf("shrunk reproducer (kind %s, case seed %d): fails %s; replay with qnet -topology <file> -duration %g -seed %d -check",
		sc.Kind, sc.Seed, strings.Join(names, ", "), ropts.Duration, ropts.Seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", len(t.Flows), len(t.Events), len(t.Links)
	}
	path = filepath.Join(dir, t.Name+".json")
	if err := topology.Save(path, t); err != nil {
		return "", len(t.Flows), len(t.Events), len(t.Links)
	}
	return path, len(t.Flows), len(t.Events), len(t.Links)
}

// oraclesByName resolves a name filter against the library.
func oraclesByName(names []string) ([]Oracle, error) {
	all := Oracles()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Oracle{}
	for _, o := range all {
		byName[o.Name] = o
	}
	var out []Oracle
	for _, n := range names {
		o, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("validate: unknown oracle %q (have %s)",
				n, strings.Join(OracleNames(), ", "))
		}
		out = append(out, o)
	}
	return out, nil
}

// FailedCases returns the failing cases in index order.
func (s *Summary) FailedCases() []CaseResult {
	var out []CaseResult
	for _, c := range s.Cases {
		if c.Failed() {
			out = append(out, c)
		}
	}
	return out
}

// WriteSummary renders the campaign outcome: per-oracle assertion
// tallies, per-kind case counts, failing cases with their reproducers,
// and a verdict line. Output is deterministic for a deterministic
// campaign.
func WriteSummary(w io.Writer, s *Summary) {
	failed := map[string]int{}
	kinds := map[Kind]int{}
	for _, c := range s.Cases {
		kinds[c.Kind]++
		for _, a := range c.Failures {
			failed[a.Name]++
		}
	}
	totalChecked := 0
	for _, c := range s.Cases {
		totalChecked += c.Checked
	}
	fmt.Fprintf(w, "fuzz: %d cases finished (of %d), seed %d, %gs horizon\n",
		len(s.Cases), s.Opts.Cases, s.Opts.Seed, s.Opts.Duration)
	var kindNames []string
	for k := range kinds {
		kindNames = append(kindNames, string(k))
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		fmt.Fprintf(w, "  kind %-18s %4d cases\n", k, kinds[Kind(k)])
	}
	fmt.Fprintf(w, "  assertions checked: %d\n", totalChecked)
	for _, name := range OracleNames() {
		if n := failed[name]; n > 0 {
			fmt.Fprintf(w, "  FAIL %-24s %d assertion(s)\n", name, n)
		}
	}
	fails := s.FailedCases()
	for _, c := range fails {
		if c.Err != nil {
			fmt.Fprintf(w, "  case %d (seed %d): error: %v\n", c.Index, c.Seed, c.Err)
			continue
		}
		first := c.Failures[0]
		fmt.Fprintf(w, "  case %d (seed %d, %s): %d violation(s), first: %s: %s — %v\n",
			c.Index, c.Seed, c.Kind, len(c.Failures), first.Name, first.Detail, first.Err)
		if c.ReproPath != "" {
			fmt.Fprintf(w, "    repro: %s (%d flows, %d links, %d events)\n",
				c.ReproPath, c.ShrunkFlows, c.ShrunkLinks, c.ShrunkEvents)
		}
	}
	if len(fails) == 0 {
		fmt.Fprintf(w, "  all oracles passed\n")
	} else {
		fmt.Fprintf(w, "  %d/%d cases failed\n", len(fails), len(s.Cases))
	}
}
