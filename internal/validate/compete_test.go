package validate

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/online"
	"bufqos/internal/report"
	"bufqos/internal/sim"
	"bufqos/internal/topology"
)

// TestLowerBoundConstructions replays each paper's lower-bound sequence
// against its baseline policy and checks the cited ratio exactly:
// longest-queue-first loses 2−1/m on the Bienkowski construction at
// B=1, and non-preemptive greedy loses α on the two-value sequence.
func TestLowerBoundConstructions(t *testing.T) {
	lqf, err := online.PolicyByName("lqf")
	if err != nil {
		t.Fatal(err)
	}
	for m := 2; m <= 6; m++ {
		in := genLowerBoundMultiQueue(nil, lqf, m, 1)
		out, err := online.Evaluate(lqf, in)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 - 1/float64(m); math.Abs(out.Ratio-want) > 1e-9 {
			t.Errorf("lb-multiqueue m=%d: ratio %v, want exactly 2−1/m = %v (ALG=%v OPT=%v)",
				m, out.Ratio, want, out.ALG, out.OPT)
		}
	}
	np, err := online.PolicyByName("greedy-np")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 3, 5} {
		in := genLowerBoundTwoValue(nil, np, 2, b)
		out, err := online.Evaluate(np, in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Ratio-twoValueAlpha) > 1e-9 {
			t.Errorf("lb-twovalue B=%d: ratio %v, want α = %v", b, out.Ratio, twoValueAlpha)
		}
	}
}

// TestCompeteBoundsHold sweeps every policy × adversary × buffer cell
// and asserts no bounded policy ever exceeds its proven ratio — the
// acceptance criterion of the subsystem.
func TestCompeteBoundsHold(t *testing.T) {
	rep, err := Compete(context.Background(), CompeteOptions{Seed: 11, Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("empty sweep")
	}
	for _, v := range rep.Violations() {
		t.Errorf("%s vs %s (B=%d): max ratio %v exceeds bound %v (worst seed %d: ALG=%v OPT=%v)",
			v.Policy, v.Adversary, v.Buffer, v.MaxRatio, v.Bound, v.WorstSeed, v.WorstALG, v.WorstOPT)
	}
	// The lower-bound cells must actually bite: at B=1 the lqf cell
	// reaches 2−1/m, and greedy-np reaches α on the two-value sequence.
	sawLQF, sawNP := false, false
	for _, c := range rep.Cells {
		if c.Policy == "lqf" && c.Adversary == "lb-multiqueue" && c.Buffer == 1 {
			sawLQF = true
			if want := 2 - 1/float64(c.Queues); math.Abs(c.MaxRatio-want) > 1e-9 {
				t.Errorf("lqf lb cell: ratio %v, want %v", c.MaxRatio, want)
			}
		}
		if c.Policy == "greedy-np" && c.Adversary == "lb-twovalue" && c.Buffer == 1 {
			sawNP = true
			if math.Abs(c.MaxRatio-twoValueAlpha) > 1e-9 {
				t.Errorf("greedy-np lb cell: ratio %v, want α = %v", c.MaxRatio, twoValueAlpha)
			}
		}
	}
	if !sawLQF || !sawNP {
		t.Errorf("lower-bound cells missing from the sweep (lqf %v, greedy-np %v)", sawLQF, sawNP)
	}
}

// TestCompeteDeterministicAcrossWorkers: the report must be
// bit-identical at any worker count.
func TestCompeteDeterministicAcrossWorkers(t *testing.T) {
	var base *CompeteReport
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := Compete(context.Background(), CompeteOptions{
			Seed: 23, Reps: 3, Buffers: []int{1, 2}, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = rep
			continue
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("workers=%d: report diverges from the single-worker run", workers)
		}
	}
}

// TestCompeteSelectionErrors: unknown names are rejected, and an empty
// cross product is an error rather than an empty report.
func TestCompeteSelectionErrors(t *testing.T) {
	if _, err := Compete(context.Background(), CompeteOptions{Policies: []string{"nope"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Compete(context.Background(), CompeteOptions{Adversaries: []string{"nope"}}); err == nil {
		t.Error("unknown adversary accepted")
	}
	if _, err := Compete(context.Background(), CompeteOptions{
		Policies: []string{"lqf"}, Adversaries: []string{"lb-twovalue"},
	}); err == nil {
		t.Error("model-mismatched selection produced a report")
	}
}

// TestHillClimbImproves: the adaptive adversary must find a harder
// instance than its random starting point for the non-preemptive
// baseline (which has unbounded ratio, so there is always room).
func TestHillClimbImproves(t *testing.T) {
	np, err := online.PolicyByName("greedy-np")
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for seed := int64(1); seed <= 5 && !improved; seed++ {
		start, err2 := online.Evaluate(np, genRandomInstance(sim.NewRand(seed), np, 3, 2))
		if err2 != nil {
			t.Fatal(err2)
		}
		climbed, err2 := online.Evaluate(np, genHillClimb(sim.NewRand(seed), np, 3, 2))
		if err2 != nil {
			t.Fatal(err2)
		}
		if climbed.Ratio > start.Ratio {
			improved = true
		}
	}
	if !improved {
		t.Error("hill climbing never beat its random start across 5 seeds")
	}
}

// TestCompetitiveOracleHolds runs the qfuzz oracle over several case
// seeds: on correct policies every assertion passes.
func TestCompetitiveOracleHolds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := &Case{Scenario: &Scenario{Seed: seed, Topo: &topology.Topology{}}}
		as := checkCompetitiveRatio(context.Background(), c)
		if len(as) == 0 {
			t.Fatalf("seed %d: oracle checked nothing", seed)
		}
		for _, a := range as {
			if a.Failed() {
				t.Errorf("seed %d: %s: %v", seed, a.Detail, a.Err)
			}
		}
	}
}

// TestCompetitiveOracleCatchesBrokenPolicy feeds the repro pipeline a
// deliberately broken "policy" (claims bound 2 but never preempts) and
// checks the violation is caught, shrunk, and saved as a replayable
// instance file.
func TestCompetitiveOracleCatchesBrokenPolicy(t *testing.T) {
	np, err := online.PolicyByName("greedy-np")
	if err != nil {
		t.Fatal(err)
	}
	broken := np
	broken.Name = "broken"
	broken.Bound = 2 // a lie: greedy-np is only α-competitive
	dir := t.TempDir()
	in := genLowerBoundTwoValue(nil, broken, 2, 3)
	out, err := online.Evaluate(broken, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ratio <= broken.Bound+competitiveEps {
		t.Fatalf("setup: ratio %v should violate the claimed bound", out.Ratio)
	}
	path := writeInstanceRepro(dir, broken, in)
	if path == "" {
		t.Fatal("no reproducer written")
	}
	back, err := online.LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := online.Evaluate(broken, back)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ratio <= broken.Bound+competitiveEps {
		t.Errorf("shrunk reproducer no longer violates: ratio %v", again.Ratio)
	}
	if len(back.Arrivals) > len(in.Arrivals) {
		t.Errorf("shrink grew the instance: %d > %d arrivals", len(back.Arrivals), len(in.Arrivals))
	}
	if !strings.HasPrefix(filepath.Base(path), "repro-competitive-broken") {
		t.Errorf("unexpected reproducer name %s", filepath.Base(path))
	}
	// The fuzz pipeline must skip the topology shrinker when only a
	// NoShrink oracle failed.
	var compOracle Oracle
	for _, o := range Oracles() {
		if o.Name == "competitive-ratio" {
			compOracle = o
		}
	}
	if compOracle.Name == "" || !compOracle.NoShrink {
		t.Fatal("competitive-ratio oracle missing or shrinkable")
	}
	sc := &Scenario{Kind: KindSingleLink, Seed: 1, Topo: &topology.Topology{Name: "stub"}}
	p, _, _, _ := writeRepro(context.Background(), sc, topology.Options{},
		[]Oracle{compOracle}, []report.Assertion{{Name: "competitive-ratio"}}, dir)
	if p != "" {
		t.Errorf("topology shrinker ran for a NoShrink-only failure: %s", p)
	}
	_ = os.RemoveAll(dir)
}
