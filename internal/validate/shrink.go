package validate

import (
	"context"

	"bufqos/internal/report"
	"bufqos/internal/topology"
)

// cloneTopology deep-copies the exported scenario description. Resolved
// state (flow routes, event indices, parsed schemes) is deliberately
// reset; the clone must be Validate()d before use, which re-derives it.
func cloneTopology(t *topology.Topology) *topology.Topology {
	c := &topology.Topology{Name: t.Name, Description: t.Description}
	c.Links = append([]topology.Link(nil), t.Links...)
	for i := range c.Links {
		c.Links[i].Queues = append([]int(nil), t.Links[i].Queues...)
	}
	c.Flows = append([]topology.Flow(nil), t.Flows...)
	for i := range c.Flows {
		c.Flows[i].RouteNodes = append([]string(nil), t.Flows[i].RouteNodes...)
		c.Flows[i].Route = nil
		c.Flows[i].ReverseRoute = nil
	}
	c.Events = append([]topology.Event(nil), t.Events...)
	return c
}

// evaluateScenario runs the scenario once and applies the given oracles
// to the outcome. During shrinking the Case carries no ReproDir, so
// self-reproducing oracles stay silent about files.
func evaluateScenario(ctx context.Context, sc *Scenario, opts topology.Options, oracles []Oracle) ([]report.Assertion, error) {
	return evaluateScenarioRepro(ctx, sc, opts, oracles, "")
}

func evaluateScenarioRepro(ctx context.Context, sc *Scenario, opts topology.Options, oracles []Oracle, reproDir string) ([]report.Assertion, error) {
	res, err := topology.Run(ctx, sc.Topo, opts)
	if err != nil {
		return nil, err
	}
	c := &Case{Scenario: sc, Opts: opts, Result: &res, ReproDir: reproDir}
	var as []report.Assertion
	for _, o := range oracles {
		as = append(as, o.Check(ctx, c)...)
	}
	return as, nil
}

// anyFailed reports whether any assertion carries a violation.
func anyFailed(as []report.Assertion) bool {
	for _, a := range as {
		if a.Failed() {
			return true
		}
	}
	return false
}

// shrinkBudget caps the number of candidate re-runs one shrink may
// spend; each re-run is a full scenario simulation.
const shrinkBudget = 120

// Shrink greedily minimizes a failing scenario while it keeps failing
// the given oracles: it tries dropping flows, dropping events, halving
// link buffers, and halving link rates, re-running after each mutation
// and keeping any candidate that still fails, until a fixpoint (or the
// run budget) is reached. Shrinking is deterministic — candidates are
// tried in a fixed order — so the same failure always shrinks to the
// same reproducer.
func Shrink(ctx context.Context, sc *Scenario, opts topology.Options, oracles []Oracle) *Scenario {
	cur := sc
	runs := 0
	for improved := true; improved && runs < shrinkBudget && ctx.Err() == nil; {
		improved = false
		for _, cand := range candidates(cur) {
			if runs >= shrinkBudget || ctx.Err() != nil {
				break
			}
			if cand.Topo.Validate() != nil {
				continue // mutation made the scenario invalid; skip it
			}
			runs++
			as, err := evaluateScenario(ctx, cand, opts, oracles)
			if err != nil || !anyFailed(as) {
				continue
			}
			cur = cand
			improved = true
			break // restart the candidate sweep from the smaller scenario
		}
	}
	return cur
}

// candidates enumerates the one-step simplifications of a scenario, in
// decreasing order of how much they remove.
func candidates(sc *Scenario) []*Scenario {
	var out []*Scenario
	t := sc.Topo
	if len(t.Flows) > 1 {
		for fi := range t.Flows {
			out = append(out, mutate(sc, func(c *topology.Topology) { dropFlow(c, fi) }))
		}
	}
	for ei := range t.Events {
		ei := ei
		out = append(out, mutate(sc, func(c *topology.Topology) {
			c.Events = append(c.Events[:ei], c.Events[ei+1:]...)
		}))
	}
	for li := range t.Links {
		li := li
		out = append(out, mutate(sc, func(c *topology.Topology) {
			c.Links[li].Buffer /= 2
			if c.Links[li].Headroom >= c.Links[li].Buffer {
				c.Links[li].Headroom = c.Links[li].Buffer / 2
			}
		}))
		out = append(out, mutate(sc, func(c *topology.Topology) {
			c.Links[li].Rate /= 2
		}))
	}
	return out
}

// mutate clones the scenario and applies one mutation to the clone.
func mutate(sc *Scenario, f func(*topology.Topology)) *Scenario {
	c := cloneTopology(sc.Topo)
	f(c)
	return &Scenario{Kind: sc.Kind, Seed: sc.Seed, Topo: c}
}

// dropFlow removes flow fi together with its timeline events and its
// entries in any hybrid queue maps (renumbered dense afterwards).
func dropFlow(c *topology.Topology, fi int) {
	name := c.Flows[fi].Name
	c.Flows = append(c.Flows[:fi], c.Flows[fi+1:]...)
	var evs []topology.Event
	for _, ev := range c.Events {
		if (ev.Kind == topology.EventJoin || ev.Kind == topology.EventLeave) && ev.Flow == name {
			continue
		}
		evs = append(evs, ev)
	}
	c.Events = evs
	for li := range c.Links {
		if q := c.Links[li].Queues; q != nil {
			c.Links[li].Queues = densify(append(q[:fi], q[fi+1:]...))
		}
	}
}
