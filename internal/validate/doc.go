// Package validate is a property-based validation harness for the
// buffer-management simulator: it generates random but valid network
// scenarios, simulates them, and checks the outcomes against a library
// of invariant oracles derived from the paper's analytical results
// (Guérin, Kamat, Peris, Rajan — "Scalable QoS Provision Through
// Buffer Management", SIGCOMM 1998).
//
// The pieces compose as
//
//	Generate (seeded scenario) -> topology.Run -> Oracles -> Shrink -> repro JSON
//
// Generate derives every random choice from a single seed through the
// deterministic sim.Rand streams, so a scenario — and any failure it
// triggers — is reproducible from (seed, duration) alone. Scenario
// kinds cover single guaranteed links, tandem paths, admission churn,
// a sweep over every registered scheme, and fluid-vs-packet
// differential workloads; a ThresholdScale below 1 switches the
// generator into an adversarial mode that provisions paper-exact
// buffers but weakens the Proposition 1/2 thresholds, which the
// oracles must catch.
//
// Oracles returns the invariant library: zero conformant loss at the
// paper thresholds (Propositions 1 and 2), per-link and end-to-end
// byte conservation, reserved-rate throughput, admission monotonicity
// (adding a flow cannot break existing guarantees), threshold
// necessity via the Example 1 greedy competitor in the fluid model,
// the FIFO-vs-hybrid buffer-size ordering of eq. 17, and a
// differential check that packet-level departures track the fluid
// trajectory within a quantization envelope. Each oracle cites the
// paper result it encodes; EXPERIMENTS.md lists the full catalogue.
//
// Fuzz drives campaigns: cases fan out over the experiment worker
// pool into pre-assigned result slots, so summaries are bit-identical
// for any worker count. Failing scenarios are minimized by Shrink
// (greedily dropping flows and events and halving rates and buffers
// while the failure persists) and written as topology JSON files that
// `qnet -topology <file> -check` replays. The qfuzz command wraps
// this package for the command line.
package validate
