package validate

import (
	"fmt"
	"math/rand"
	"strconv"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// Kind classifies the scenario families the generator draws from. Each
// family stresses a different slice of the engine while staying inside
// the paper's schedulability region, so every oracle is expected to
// hold on every generated scenario (at ThresholdScale 1).
type Kind string

const (
	// KindSingleLink is one output port shared by conformant shaped
	// flows plus, sometimes, a non-conformant aggressor — the paper's §2
	// setting.
	KindSingleLink Kind = "single-link"
	// KindDifferential is a single fifo+threshold link carrying only
	// greedy shaped flows: the packet run has a closed-form fluid twin
	// the differential oracle compares against.
	KindDifferential Kind = "differential"
	// KindTandem is a 2–3 hop chain with contiguous sub-path routes —
	// the §2.4 "guarantees compose hop by hop" reading.
	KindTandem Kind = "tandem"
	// KindChurn adds a timeline: late joins, leaves, and occasionally a
	// bandwidth-limited hog that admission control must reject (§2.3).
	KindChurn Kind = "churn"
	// KindTCP is the closed-loop family: a guaranteed bottleneck with a
	// reverse link, carrying 2–4 TCP sources with asymmetric
	// reservations. It exercises the feedback path (ACKs, drop
	// notifications, retransmissions) and the tcp-goodput-floor oracle.
	KindTCP Kind = "tcp"
	// KindRegistry draws an arbitrary spec from the full scheme registry
	// (RED, DRR, hybrid, …). Such links carry no zero-loss guarantee, so
	// only the scheme-independent oracles (conservation, rejection
	// silence) apply — but every future registry entry gets fuzzed for
	// free.
	KindRegistry Kind = "registry"
	// KindBroken is the adversarial family generated when
	// GenConfig.ThresholdScale < 1: a deliberately under-allocated
	// threshold link arranged so the Proposition 2 guarantee measurably
	// fails, exercising the shrinker and the repro pipeline.
	KindBroken Kind = "broken-threshold"
)

// GenConfig parameterizes generation.
type GenConfig struct {
	// ThresholdScale multiplies every threshold-manager allocation via
	// the registry's `threshold?scale=` parameter. 1 (or 0, the zero
	// value) generates paper-faithful scenarios on which all oracles
	// must hold. Any value in (0,1) switches to the broken-threshold
	// family: scenarios engineered so the under-allocation causes
	// conformant loss that the oracles must catch.
	ThresholdScale float64
}

// Scenario is one generated case: a validated topology plus the family
// it came from (which decides the oracles that apply to it).
type Scenario struct {
	Kind Kind
	Seed int64
	Topo *topology.Topology
}

// Generate builds the scenario for one case seed. It is fully
// deterministic: the same (seed, cfg) always yields the same scenario,
// and all randomness flows through one sim.NewRand stream consumed in a
// fixed order. The returned topology is already validated.
func Generate(seed int64, cfg GenConfig) (*Scenario, error) {
	if cfg.ThresholdScale == 0 {
		cfg.ThresholdScale = 1
	}
	if cfg.ThresholdScale < 0 || cfg.ThresholdScale > 1 {
		return nil, fmt.Errorf("validate: threshold scale %v outside (0, 1]", cfg.ThresholdScale)
	}
	rng := sim.NewRand(seed)
	var sc *Scenario
	if cfg.ThresholdScale < 1 {
		sc = genBroken(rng, cfg.ThresholdScale)
	} else {
		switch x := rng.Float64(); {
		case x < 0.26:
			sc = genSingleLink(rng, KindSingleLink)
		case x < 0.44:
			sc = genDifferential(rng)
		case x < 0.64:
			sc = genTandem(rng)
		case x < 0.78:
			sc = genChurn(rng)
		case x < 0.92:
			sc = genTCP(rng)
		default:
			sc = genRegistry(rng)
		}
	}
	sc.Seed = seed
	sc.Topo.Name = fmt.Sprintf("fuzz-%s-%d", sc.Kind, seed)
	if err := sc.Topo.Validate(); err != nil {
		return nil, fmt.Errorf("validate: generator bug (seed %d, kind %s): %w", seed, sc.Kind, err)
	}
	return sc, nil
}

func unif(rng *rand.Rand, lo, hi float64) float64 { return lo + (hi-lo)*rng.Float64() }

// guaranteedSpecs is the scheme subset that carries the paper's
// zero-conformant-loss guarantee; see linkGuaranteed in oracles.go.
// threshold is weighted up because it is the paper's headline scheme.
var guaranteedSpecs = []string{
	"fifo+threshold", "fifo+threshold", "wfq+threshold",
	"fifo+sharing", "wfq+sharing",
}

// conformantFlow draws a shaped flow with a modest (σ, ρ, peak)
// envelope and a source that stays inside it.
func conformantFlow(rng *rand.Rand, name string, route []string) topology.Flow {
	rho := units.MbitsPerSecond(unif(rng, 0.5, 8))
	sigma := units.KiloBytes(unif(rng, 10, 100))
	peak := units.Rate(float64(rho) * unif(rng, 2, 5))
	f := topology.Flow{
		Name:       name,
		RouteNodes: route,
		Spec:       packet.FlowSpec{PeakRate: peak, TokenRate: rho, BucketSize: sigma},
		Shaped:     true,
	}
	switch x := rng.Float64(); {
	case x < 0.55:
		f.Source = topology.SourceGreedy
	case x < 0.80:
		f.Source = topology.SourceCBR
		f.AvgRate = rho
	default:
		f.Source = topology.SourceOnOff
		f.AvgRate = units.Rate(float64(rho) * unif(rng, 0.8, 1.0))
	}
	return f
}

// aggressor draws an unshaped flow that reserves a small (σ, ρ) but
// offers far more — the traffic the thresholds exist to police. Its
// rates are set relative to the link rate once that is known.
func aggressor(rng *rand.Rand, name string, route []string) topology.Flow {
	return topology.Flow{
		Name:       name,
		RouteNodes: route,
		Spec: packet.FlowSpec{
			TokenRate:  units.MbitsPerSecond(unif(rng, 0.3, 1.2)),
			BucketSize: units.KiloBytes(unif(rng, 15, 50)),
		},
		Source: topology.SourceCBR,
		Shaped: false,
	}
}

// finishAggressors fixes each aggressor's offered rate relative to the
// link rate (drawn earlier would bias the utilization computation).
func finishAggressors(rng *rand.Rand, flows []topology.Flow, r units.Rate) {
	for i := range flows {
		if flows[i].Shaped {
			continue
		}
		offered := units.Rate(r.BitsPerSecond() * unif(rng, 0.5, 1.2))
		flows[i].Spec.PeakRate = offered
		flows[i].AvgRate = offered
	}
}

// reservedTotals sums the shaped population's reservation.
func reservedTotals(flows []topology.Flow) (sigma units.Bytes, rho units.Rate) {
	for i := range flows {
		sigma += flows[i].Spec.BucketSize
		rho += flows[i].Spec.TokenRate
	}
	return sigma, rho
}

// genSingleLink builds the §2 setting: one port, 2–6 conformant shaped
// flows, sometimes an aggressor, buffer comfortably above the eq. (9)
// minimum so Proposition 2 holds with margin to spare.
func genSingleLink(rng *rand.Rand, kind Kind) *Scenario {
	route := []string{"src", "dst"}
	n := 2 + rng.Intn(5)
	var flows []topology.Flow
	for i := 0; i < n; i++ {
		flows = append(flows, conformantFlow(rng, fmt.Sprintf("f%d", i), route))
	}
	hasAggressor := rng.Float64() < 0.4
	if hasAggressor {
		flows = append(flows, aggressor(rng, "aggressor", route))
	}
	_, rho := reservedTotals(flows)
	u := unif(rng, 0.35, 0.8)
	r := units.Rate(rho.BitsPerSecond() / u)
	finishAggressors(rng, flows, r)
	specs := flowSpecs(flows)
	bmin, err := core.RequiredBufferFIFO(specs, r)
	if err != nil {
		panic(fmt.Sprintf("validate: u=%v below 1 yet bandwidth limited: %v", u, err))
	}
	spec := guaranteedSpecs[rng.Intn(len(guaranteedSpecs))]
	margin := unif(rng, 1.3, 2.5)
	if hasAggressor {
		// Aggressors press the shared pools; keep extra slack so the
		// sharing variant's headroom never starves a conformant flow.
		margin += 0.7
	}
	l := topology.Link{
		From: "src", To: "dst",
		Rate:   r,
		Buffer: units.Bytes(float64(bmin) * margin),
		Spec:   spec,
	}
	if scheme.MustParse(spec).ManagerName() == "sharing" {
		l.Headroom = units.Bytes(float64(l.Buffer) * unif(rng, 0.3, 0.5))
	}
	return &Scenario{
		Kind: kind,
		Topo: &topology.Topology{
			Description: "generated: single guaranteed link",
			Links:       []topology.Link{l},
			Flows:       flows,
		},
	}
}

// genDifferential builds the fluid-twin family: one fifo+threshold
// link, 2–4 greedy shaped flows, nothing else. The arrival process of
// every flow is then exactly the (σ, ρ, peak) envelope, which the
// differential oracle can replay through internal/fluid.
func genDifferential(rng *rand.Rand) *Scenario {
	route := []string{"src", "dst"}
	n := 2 + rng.Intn(3)
	var flows []topology.Flow
	for i := 0; i < n; i++ {
		f := conformantFlow(rng, fmt.Sprintf("f%d", i), route)
		f.Source = topology.SourceGreedy
		f.AvgRate = 0
		flows = append(flows, f)
	}
	_, rho := reservedTotals(flows)
	u := unif(rng, 0.35, 0.75)
	r := units.Rate(rho.BitsPerSecond() / u)
	bmin, err := core.RequiredBufferFIFO(flowSpecs(flows), r)
	if err != nil {
		panic(fmt.Sprintf("validate: differential generator: %v", err))
	}
	return &Scenario{
		Kind: KindDifferential,
		Topo: &topology.Topology{
			Description: "generated: fluid-differential single link",
			Links: []topology.Link{{
				From: "src", To: "dst",
				Rate:   r,
				Buffer: units.Bytes(float64(bmin) * unif(rng, 1.3, 2.2)),
				Spec:   "fifo+threshold",
			}},
			Flows: flows,
		},
	}
}

// genTandem builds a 2–3 link chain. Flows take contiguous sub-paths
// and are limited to greedy/cbr sources: on-off jitter compounds across
// hops and would need far larger (and less interesting) buffers.
// Downstream buffers are provisioned against jitter-inflated bursts:
// a flow crossing earlier hops can arrive at hop h with an effective
// burst of σ + ρ·Σ_{upstream}(B/R + prop), so each link's eq. (9)
// minimum is computed over those inflated profiles.
func genTandem(rng *rand.Rand) *Scenario {
	nLinks := 2 + rng.Intn(2)
	nodes := make([]string, nLinks+1)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i)
	}
	n := 2 + rng.Intn(4)
	var flows []topology.Flow
	for i := 0; i < n; i++ {
		a := rng.Intn(nLinks)
		b := a + 1 + rng.Intn(nLinks-a)
		f := conformantFlow(rng, fmt.Sprintf("f%d", i), nodes[a:b+1])
		if f.Source == topology.SourceOnOff {
			f.Source = topology.SourceGreedy
			f.AvgRate = 0
		}
		// Tame peaks: downstream burstiness grows with (peak − ρ).
		f.Spec.PeakRate = units.Rate(float64(f.Spec.TokenRate) * unif(rng, 1.5, 2.5))
		flows = append(flows, f)
	}
	// Ensure the first link carries at least one flow so every link has
	// a non-empty population (RequiredBufferFIFO needs flows; links with
	// zero traffic are legal but dull).
	if flows[0].RouteNodes[0] != nodes[0] {
		flows[0].RouteNodes = nodes[:len(flows[0].RouteNodes)]
	}

	links := make([]topology.Link, nLinks)
	// delayUpTo[h] accumulates the worst-case queue+propagation delay of
	// hops before h, used to inflate downstream burst profiles.
	jitter := make([]float64, nLinks) // per-link B/R + prop, filled in order
	for h := 0; h < nLinks; h++ {
		var sigma float64
		var rho units.Rate
		for i := range flows {
			hop := hopIndex(flows[i].RouteNodes, nodes, h)
			if hop < 0 {
				continue
			}
			s := flows[i].Spec
			infl := float64(s.BucketSize)
			for up := 0; up < hop; up++ {
				infl += s.TokenRate.BytesPerSecond() * jitter[hopLink(flows[i].RouteNodes, nodes, up)]
			}
			sigma += infl
			rho += s.TokenRate
		}
		u := unif(rng, 0.35, 0.7)
		var r units.Rate
		var bmin float64
		if rho > 0 {
			r = units.Rate(rho.BitsPerSecond() / u)
			bmin = r.BitsPerSecond() * sigma / (r.BitsPerSecond() - rho.BitsPerSecond())
		} else {
			// No flow crosses this hop; give it sane defaults.
			r = units.MbitsPerSecond(unif(rng, 10, 30))
			bmin = float64(units.KiloBytes(100))
		}
		buf := units.Bytes(bmin * unif(rng, 1.5, 2.2))
		prop := unif(rng, 0, 2e-3)
		links[h] = topology.Link{
			From: nodes[h], To: nodes[h+1],
			Rate:      r,
			Buffer:    buf,
			PropDelay: prop,
			Spec:      guaranteedSpecs[rng.Intn(len(guaranteedSpecs))],
		}
		if scheme.MustParse(links[h].Spec).ManagerName() == "sharing" {
			links[h].Headroom = units.Bytes(float64(buf) * unif(rng, 0.3, 0.5))
		}
		jitter[h] = float64(buf)/r.BytesPerSecond() + prop
	}
	return &Scenario{
		Kind: KindTandem,
		Topo: &topology.Topology{
			Description: "generated: multi-hop tandem",
			Links:       links,
			Flows:       flows,
		},
	}
}

// hopIndex returns the position of chain link h within the flow's
// route, or -1 when the flow does not cross it.
func hopIndex(route, nodes []string, h int) int {
	for i := 0; i+1 < len(route); i++ {
		if route[i] == nodes[h] && route[i+1] == nodes[h+1] {
			return i
		}
	}
	return -1
}

// hopLink returns the chain index of the flow's up-th hop. Routes are
// contiguous sub-paths, so this is start + up.
func hopLink(route, nodes []string, up int) int {
	for i := range nodes {
		if nodes[i] == route[0] {
			return i + up
		}
	}
	return up
}

// genChurn extends a single-link scenario with a timeline: one late
// join, one mid-run leave, occasionally a link failure blip (flows
// crossing it become "degraded" and are measured, not asserted), and
// occasionally a hog whose reservation exceeds the link — admission
// control must reject it and it must stay silent.
func genChurn(rng *rand.Rand) *Scenario {
	sc := genSingleLink(rng, KindChurn)
	t := sc.Topo
	t.Description = "generated: single link with churn timeline"
	var shaped []int
	for i := range t.Flows {
		if t.Flows[i].Shaped {
			shaped = append(shaped, i)
		}
	}
	// A late joiner: admission re-checks mid-run with traffic flowing.
	join := shaped[rng.Intn(len(shaped))]
	t.Events = append(t.Events, topology.Event{
		At:   unif(rng, 0.2, 0.6),
		Kind: topology.EventJoin,
		Flow: t.Flows[join].Name,
	})
	// A leaver among the t=0 flows (joining then leaving would also be
	// legal, but separating the two exercises both transitions).
	if len(shaped) > 1 {
		leave := shaped[(indexOf(shaped, join)+1)%len(shaped)]
		t.Events = append(t.Events, topology.Event{
			At:   unif(rng, 1.0, 1.6),
			Kind: topology.EventLeave,
			Flow: t.Flows[leave].Name,
		})
	}
	if rng.Float64() < 0.5 {
		// A hog that oversubscribes the link's rate: the FIFO region's
		// bandwidth constraint (eq. 7) must bounce it.
		t.Flows = append(t.Flows, topology.Flow{
			Name:       "hog",
			RouteNodes: []string{"src", "dst"},
			Spec: packet.FlowSpec{
				PeakRate:   t.Links[0].Rate * 2,
				TokenRate:  t.Links[0].Rate,
				BucketSize: units.KiloBytes(50),
			},
			Source: topology.SourceCBR,
			Shaped: true,
		})
		t.Events = append(t.Events, topology.Event{
			At:   unif(rng, 0.3, 0.8),
			Kind: topology.EventJoin,
			Flow: "hog",
		})
	}
	if rng.Float64() < 0.25 {
		at := unif(rng, 0.8, 1.2)
		// Link names are still empty here (Validate defaults them to
		// "from->to" later), so spell the default out.
		name := t.Links[0].From + "->" + t.Links[0].To
		t.Events = append(t.Events,
			topology.Event{At: at, Kind: topology.EventFail, Link: name},
			topology.Event{At: at + unif(rng, 0.1, 0.3), Kind: topology.EventRecover, Link: name},
		)
	}
	return sc
}

// genTCP builds the closed-loop family: one guaranteed bottleneck
// src -> dst with a reverse link dst -> src carrying acknowledgements,
// and 2–4 TCP flows with asymmetric reservations. Utilization stays at
// or below 0.6 and the buffer is generous (admission must accept every
// flow), so the goodput-floor oracle's ρ/2 bar is comfortably clear of
// slow-start transients over the 2 s default horizon.
func genTCP(rng *rand.Rand) *Scenario {
	route := []string{"src", "dst"}
	n := 2 + rng.Intn(3)
	var flows []topology.Flow
	for i := 0; i < n; i++ {
		// Asymmetric reservations: each flow doubles the previous band,
		// so big and small windows compete across a wide ρ spread.
		lo := 0.5 * float64(int(1)<<i)
		flows = append(flows, topology.Flow{
			Name:       fmt.Sprintf("tcp%d", i),
			RouteNodes: route,
			Spec: packet.FlowSpec{
				TokenRate:  units.MbitsPerSecond(unif(rng, lo, 2*lo)),
				BucketSize: units.KiloBytes(unif(rng, 8, 16)),
			},
			Source: topology.SourceTCP,
		})
	}
	_, rho := reservedTotals(flows)
	u := unif(rng, 0.4, 0.6)
	r := units.Rate(rho.BitsPerSecond() / u)
	bmin, err := core.RequiredBufferFIFO(flowSpecs(flows), r)
	if err != nil {
		panic(fmt.Sprintf("validate: tcp generator: u=%v below 1 yet bandwidth limited: %v", u, err))
	}
	spec := guaranteedSpecs[rng.Intn(len(guaranteedSpecs))]
	buf := units.Bytes(float64(bmin) * unif(rng, 1.8, 3.0))
	prop := unif(rng, 1e-4, 1e-3)
	links := []topology.Link{
		{From: "src", To: "dst", Rate: r, Buffer: buf, PropDelay: prop, Spec: spec},
		// The reverse link carries only 40-byte ACKs; same provisioning
		// keeps it trivially uncongested.
		{From: "dst", To: "src", Rate: r, Buffer: buf, PropDelay: prop, Spec: spec},
	}
	if scheme.MustParse(spec).ManagerName() == "sharing" {
		h := units.Bytes(float64(buf) * unif(rng, 0.3, 0.5))
		links[0].Headroom = h
		links[1].Headroom = h
	}
	return &Scenario{
		Kind: KindTCP,
		Topo: &topology.Topology{
			Description: "generated: closed-loop tcp over a guaranteed bottleneck",
			Links:       links,
			Flows:       flows,
		},
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

// genRegistry draws an arbitrary spec from the live registry, so every
// scheme — present and future — gets fuzzed under the scheme-agnostic
// oracles. Hybrid specs get a dense random queue map.
func genRegistry(rng *rand.Rand) *Scenario {
	sc := genSingleLink(rng, KindRegistry)
	t := sc.Topo
	t.Description = "generated: arbitrary registry scheme"
	all := scheme.Specs()
	spec := all[rng.Intn(len(all))]
	t.Links[0].Spec = spec
	s := scheme.MustParse(spec)
	t.Links[0].Headroom = 0
	if s.ManagerName() == "sharing" || s.ManagerName() == "adaptive" {
		t.Links[0].Headroom = units.Bytes(float64(t.Links[0].Buffer) * unif(rng, 0.2, 0.4))
	}
	if s.SchedulerName() == "hybrid" {
		k := s.Queues()
		if k <= 0 {
			k = 2
		}
		q := make([]int, len(t.Flows))
		for i := range q {
			q[i] = rng.Intn(k)
		}
		t.Links[0].Queues = densify(q)
	}
	return sc
}

// densify renumbers queue ids to 0..m-1 in order of first use, so every
// hybrid queue in range is populated (an empty queue has no reserved
// rate and is rejected at build time).
func densify(q []int) []int {
	next := 0
	seen := map[int]int{}
	out := make([]int, len(q))
	for i, v := range q {
		d, ok := seen[v]
		if !ok {
			d = next
			seen[v] = d
			next++
		}
		out[i] = d
	}
	return out
}

// genBroken engineers the Example 1 necessity construction against an
// under-allocated threshold link (spec fifo+threshold?scale=s):
//
//   - Aggressors (unshaped CBR far above the link rate) pin the queue at
//     the scaled thresholds from t≈0, entirely deterministically.
//   - A victim with a large bucket σ₁ joins late, its bucket full, and
//     bursts σ₁ into the pinned queue. Its first byte departs only
//     after the pinned backlog drains, so its occupancy must reach
//     σ₁ + ρ₁·(pinned/R) — above the scaled threshold s·(σ₁ + ρ₁B/R)
//     but below the paper's allocation, forcing conformant loss that
//     Proposition 2 says must never happen.
//
// The margins are chosen so the crossing exceeds the scaled threshold
// by many packets at any scale ≤ 0.95, and the whole scenario uses only
// deterministic sources, so the failure reproduces under any seed.
func genBroken(rng *rand.Rand, scale float64) *Scenario {
	r := units.MbitsPerSecond(unif(rng, 25, 50))
	u := unif(rng, 0.66, 0.70)
	f := unif(rng, 0.045, 0.055) // victim reserved share ρ₁/R
	g := unif(rng, 3.2, 3.6)     // σ₁ as a multiple of f·B
	m := unif(rng, 1.015, 1.03)  // admission margin: B ≈ eq. (9) minimum
	sigmaAgg := units.KiloBytes(unif(rng, 160, 240))

	// B solves B = m·(Σσ_agg + σ₁)/(1−u) with σ₁ = g·f·B.
	den := (1 - u) - m*g*f
	b := units.Bytes(m * float64(sigmaAgg) / den)
	rho1 := units.Rate(r.BitsPerSecond() * f)
	sigma1 := units.Bytes(g * f * float64(b))

	victim := topology.Flow{
		Name:       "victim",
		RouteNodes: []string{"src", "dst"},
		Spec: packet.FlowSpec{
			PeakRate:   units.Rate(r.BitsPerSecond() * 0.8),
			TokenRate:  rho1,
			BucketSize: sigma1,
		},
		Source: topology.SourceGreedy,
		Shaped: true,
	}
	nag := 1 + rng.Intn(2)
	flows := []topology.Flow{victim}
	rhoAgg := units.Rate(r.BitsPerSecond() * (u - f))
	for i := 0; i < nag; i++ {
		offered := units.Rate(r.BitsPerSecond() * unif(rng, 1.2, 2.0))
		flows = append(flows, topology.Flow{
			Name:       fmt.Sprintf("agg%d", i),
			RouteNodes: []string{"src", "dst"},
			Spec: packet.FlowSpec{
				PeakRate:   offered,
				TokenRate:  rhoAgg / units.Rate(nag),
				BucketSize: sigmaAgg / units.Bytes(nag),
			},
			Source:  topology.SourceCBR,
			AvgRate: offered,
			Shaped:  false,
		})
	}
	return &Scenario{
		Kind: KindBroken,
		Topo: &topology.Topology{
			Description: fmt.Sprintf("generated: threshold under-allocation (scale=%v) breaking Proposition 2", scale),
			Links: []topology.Link{{
				From: "src", To: "dst",
				Rate:   r,
				Buffer: b,
				Spec:   "fifo+threshold?scale=" + strconv.FormatFloat(scale, 'g', -1, 64),
			}},
			Flows: flows,
			Events: []topology.Event{{
				At:   unif(rng, 0.6, 0.8),
				Kind: topology.EventJoin,
				Flow: "victim",
			}},
		},
	}
}

// flowSpecs projects the declared profiles.
func flowSpecs(flows []topology.Flow) []packet.FlowSpec {
	specs := make([]packet.FlowSpec, len(flows))
	for i := range flows {
		specs[i] = flows[i].Spec
	}
	return specs
}
