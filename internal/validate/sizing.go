package validate

import (
	"context"
	"fmt"

	"bufqos/internal/report"
	"bufqos/internal/sim"
	"bufqos/internal/sizing"
)

// sizingSeedID derives the sizing oracle's RNG stream from a case seed
// (an arbitrary constant distinct from the other oracle stream IDs).
const sizingSeedID = 8800

// sizingUtilFloor is the headline claim of the many-flows buffer-sizing
// result: at B = C·RTT/√n a drop-tail bottleneck shared by n ≥ 64 TCP
// flows stays at least 90% utilized.
const sizingUtilFloor = 0.90

// checkSizingSqrtN is the sizing-sqrt-n qfuzz oracle: each case runs
// one fresh buffer-sizing cell — a case-seeded population of n ∈ {64,
// 128, 256} closed-loop TCP flows through a tail-drop bottleneck whose
// buffer follows the many-flows rule B = C·RTT/√n — and asserts the
// bottleneck ends at least 90% utilized. The cell is an abstract
// single-link instance unrelated to the case's topology scenario, so
// the oracle is NoShrink, like competitive-ratio.
func checkSizingSqrtN(ctx context.Context, c *Case) []report.Assertion {
	seed := sim.DeriveSeed(c.Scenario.Seed, sizingSeedID)
	rng := sim.NewRand(seed)
	n := 64 << rng.Intn(3)
	cfg := sizing.Config{
		Seed:     seed,
		Duration: 4,
		Workers:  1,
		Cells:    []sizing.CellSpec{{Flows: n, Rule: sizing.RuleSqrt, Scheme: "fifo+none"}},
	}
	rep, err := sizing.Sweep(ctx, cfg)
	detail := fmt.Sprintf("n=%d TCP flows, B = C·RTT/√n", n)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return []report.Assertion{{Name: "sizing-sqrt-n", Detail: detail, Err: err}}
	}
	cell := rep.Cells[0]
	detail = fmt.Sprintf("%s = %v (%.0f pkts): utilization %.4f", detail, cell.Buffer, cell.BufferPkts, cell.Utilization)
	if cell.Utilization < sizingUtilFloor {
		err = fmt.Errorf("utilization %.4f below the %.2f many-flows floor (loss %.4f, %d timeouts)",
			cell.Utilization, sizingUtilFloor, cell.Loss, cell.Timeouts)
	}
	return []report.Assertion{{Name: "sizing-sqrt-n", Detail: detail, Err: err}}
}
