package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestNilRegistryFastPath asserts the whole disabled path is inert: a
// nil registry hands out nil handles and every handle method is a
// no-op rather than a panic.
func TestNilRegistryFastPath(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	if _, ok := r.Value("c"); ok {
		t.Error("nil registry resolved a value")
	}
	if names := r.Names(); names != nil {
		t.Errorf("nil registry has names %v", names)
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if again := r.Counter("events"); again != c {
		t.Error("same name returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Errorf("gauge value/max = %d/%d, want 2/5", g.Value(), g.Max())
	}
	g.Add(10)
	if g.Value() != 12 || g.Max() != 12 {
		t.Errorf("gauge after Add = %d/%d, want 12/12", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	// v <= bound goes into that bucket: {5,10}, {11,500... no: 11<=100,
	// 500<=1000}, overflow {5000}.
	want := []int64{2, 1, 1, 1}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5+10+11+500+5000 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestValueAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.level").Set(3)
	r.Histogram("c.hist", []float64{1}).Observe(0.5)
	if v, ok := r.Value("b.count"); !ok || v != 7 {
		t.Errorf("Value(b.count) = %v,%v", v, ok)
	}
	if v, ok := r.Value("a.level"); !ok || v != 3 {
		t.Errorf("Value(a.level) = %v,%v", v, ok)
	}
	if v, ok := r.Value("c.hist"); !ok || v != 1 {
		t.Errorf("Value(c.hist) = %v,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("missing name resolved")
	}
	want := []string{"a.level", "b.count", "c.hist"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

// TestConcurrentAggregation checks the commutativity claim the worker
// pool relies on: N goroutines adding into shared metrics produce the
// same totals as one.
func TestConcurrentAggregation(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			g := r.Gauge("level")
			h := r.Histogram("obs", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("level").Max(); got != per-1 {
		t.Errorf("gauge max = %d, want %d", got, per-1)
	}
	if got := r.Histogram("obs", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(3)
	r.Gauge("occ").Set(42)
	r.Histogram("wait", []float64{1, 10}).Observe(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if back.Counters["runs"] != 3 {
		t.Errorf("counters lost: %+v", back)
	}
	if back.Gauges["occ"].Value != 42 || back.Gauges["occ"].Max != 42 {
		t.Errorf("gauges lost: %+v", back)
	}
	if h := back.Histograms["wait"]; h.Count != 1 || len(h.Counts) != 3 {
		t.Errorf("histograms lost: %+v", back)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}
