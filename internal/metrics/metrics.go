// Package metrics is a lightweight, allocation-conscious metrics
// registry for the simulation hot paths: atomic counters, gauges with
// high-water tracking, and fixed-bucket histograms, stdlib only.
//
// The design goal is that instrumented code pays (nearly) nothing when
// metrics are disabled. Every handle method has a nil-receiver fast
// path, and a nil *Registry hands out nil handles, so
//
//	var reg *metrics.Registry // disabled
//	reg.Counter("x").Inc()    // safe no-op, one predictable branch
//
// costs a nil check per operation and nothing else. Components
// therefore fetch typed handles once at construction time and call
// them unconditionally on the hot path.
//
// All mutation is atomic, so one registry may be shared by many
// concurrent simulation runs (the experiment worker pool does exactly
// that). Counter sums, histogram bucket counts, and gauge high-waters
// are commutative across runs: for a fixed seed the aggregated values
// are identical for any worker count. A gauge's instantaneous Value is
// last-writer-wins and is NOT deterministic under concurrency; use Max
// for reproducible reporting.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer. The zero value is
// ready for use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds d (d must be non-negative; this is not checked on the hot
// path).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level with high-water tracking. Set stores
// the current value and raises the recorded maximum. The zero value is
// ready; a nil *Gauge is a no-op. The maximum starts at zero, so
// gauges are intended for non-negative levels (occupancies, depths).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add adjusts the level by d and updates the high-water mark.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (last writer wins).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i]; one extra overflow bucket catches the
// rest. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket counts; the final entry is the
// overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry names and owns metrics. A nil *Registry is valid and hands
// out nil handles, which is the disabled fast path. Handle lookup
// takes a mutex; hot paths should look up once and keep the handle.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Later calls return the existing
// histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Value reads a metric by name for samplers and tests: a counter's
// count, a gauge's current value, or a histogram's observation count.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return float64(c.Value()), true
	}
	if g, ok := r.gauges[name]; ok {
		return float64(g.Value()), true
	}
	if h, ok := r.hists[name]; ok {
		return float64(h.Count()), true
	}
	return 0, false
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	// Value is the instantaneous level (last writer wins; not
	// deterministic when several runs share the registry).
	Value int64 `json:"value"`
	// Max is the high-water mark, which aggregates deterministically.
	Max int64 `json:"max"`
}

// HistogramValue is a histogram's exported state.
type HistogramValue struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric, suitable for JSON
// encoding (map keys serialize sorted, so output is reproducible).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for n, c := range r.counts {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeValue, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = GaugeValue{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramValue, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = HistogramValue{
				Bounds: h.Bounds(), Counts: h.BucketCounts(),
				Count: h.Count(), Sum: h.Sum(),
			}
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ExpBuckets returns n strictly increasing bounds starting at start
// and multiplying by factor — the usual latency/size bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: bad exponential buckets (start=%v factor=%v n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
