package source

import (
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// sinkToManager admits packets straight into a manager, standing in for
// a link in unit tests.
type sinkToManager struct {
	mgr  buffer.Manager
	held []*packet.Packet
}

func (s *sinkToManager) Receive(p *packet.Packet) {
	if s.mgr.Admit(p.Flow, p.Size) {
		s.held = append(s.held, p)
	}
}

func TestFeedbackGreedyFillsToThreshold(t *testing.T) {
	s := sim.New()
	mgr := buffer.NewFixedThreshold(10000, []units.Bytes{4000, 6000})
	sink := &sinkToManager{mgr: mgr}
	g := NewFeedbackGreedy(s, 0, 500, mgr, sink)
	g.Kick()
	if mgr.Occupancy(0) != 4000 {
		t.Errorf("occupancy %v after kick, want threshold 4000", mgr.Occupancy(0))
	}
	if g.Injected != 8 {
		t.Errorf("injected %d packets, want 8", g.Injected)
	}
}

func TestFeedbackGreedyTopsUpAfterRelease(t *testing.T) {
	s := sim.New()
	mgr := buffer.NewFixedThreshold(10000, []units.Bytes{4000, 6000})
	sink := &sinkToManager{mgr: mgr}
	g := NewFeedbackGreedy(s, 0, 500, mgr, sink)
	g.Kick()
	mgr.Release(0, 1000)
	g.DepartureHook()(nil)
	if mgr.Occupancy(0) != 4000 {
		t.Errorf("occupancy %v after top-up, want 4000", mgr.Occupancy(0))
	}
}

func TestFeedbackGreedyIdempotentWhenFull(t *testing.T) {
	s := sim.New()
	mgr := buffer.NewFixedThreshold(10000, []units.Bytes{4000, 6000})
	sink := &sinkToManager{mgr: mgr}
	g := NewFeedbackGreedy(s, 0, 500, mgr, sink)
	g.Kick()
	before := g.Injected
	g.Kick()
	if g.Injected != before {
		t.Error("kick at threshold injected packets")
	}
}

func TestFeedbackGreedyValidation(t *testing.T) {
	s := sim.New()
	mgr := buffer.NewTailDrop(1000, 1)
	for i, f := range []func(){
		func() { NewFeedbackGreedy(s, 0, 0, mgr, &sinkToManager{mgr: mgr}) },
		func() { NewFeedbackGreedy(s, 0, 500, nil, &sinkToManager{mgr: mgr}) },
		func() { NewFeedbackGreedy(s, 0, 500, mgr, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
