package source

import (
	"fmt"
	"math"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// bucket is a token bucket with byte-granularity tokens accumulating at
// a fixed rate, shared by the shaper and the meter.
type bucket struct {
	rate   units.Rate // token accumulation rate, bits/s
	depth  float64    // σ in bytes
	tokens float64    // current level in bytes
	last   float64    // time of last refill
}

func newBucket(rate units.Rate, depth units.Bytes) *bucket {
	return &bucket{rate: rate, depth: float64(depth), tokens: float64(depth)}
}

// refill advances the bucket to time now.
func (b *bucket) refill(now float64) {
	if now < b.last {
		panic(fmt.Sprintf("token bucket: time went backwards: %v < %v", now, b.last))
	}
	b.tokens = math.Min(b.depth, b.tokens+b.rate.BytesPerSecond()*(now-b.last))
	b.last = now
}

// tokenEpsilon absorbs float rounding in token accounting: a shortfall
// below this many bytes counts as "enough". Without it, a release event
// can be scheduled for a delay so small the clock does not advance,
// wedging the event loop at a single instant.
const tokenEpsilon = 1e-6

// timeUntil returns how long from now until the bucket holds at least
// want bytes of tokens (0 if it already does). It returns +Inf when the
// bucket can never hold that many.
func (b *bucket) timeUntil(want float64) float64 {
	if b.tokens >= want-tokenEpsilon {
		return 0
	}
	if want > b.depth+tokenEpsilon {
		return math.Inf(1)
	}
	return (want - b.tokens) / b.rate.BytesPerSecond()
}

// take consumes want bytes of tokens, clamping at zero to absorb the
// epsilon tolerance of timeUntil.
func (b *bucket) take(want float64) {
	b.tokens = math.Max(0, b.tokens-want)
}

// Shaper is a leaky-bucket regulator: it delays packets so that its
// output conforms to the (σ, ρ) profile. The paper uses shapers to make
// flows 0–5 of Table 1 conformant ("their traffic regulated by a leaky
// bucket with parameters corresponding to their traffic profile").
//
// Packets that must wait are held in an unbounded FIFO shaping queue —
// shaping happens at the network edge, before the multiplexer whose
// buffer is under study. Forwarded packets are stamped Conformant and
// their Arrived time is set to the release time.
type Shaper struct {
	spec packet.FlowSpec
	sim  *sim.Simulator
	sink Sink
	bkt  *bucket
	q    []*packet.Packet
	busy bool // a release event is scheduled
}

// NewShaper creates a leaky-bucket shaper for the given profile. The
// bucket must be at least one packet deep or nothing can ever pass; the
// caller's specs come from experiment tables, so violations panic.
func NewShaper(s *sim.Simulator, spec packet.FlowSpec, sink Sink) *Shaper {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Shaper{
		spec: spec,
		sim:  s,
		sink: sink,
		bkt:  newBucket(spec.TokenRate, spec.BucketSize),
	}
}

// Backlog returns the number of packets waiting in the shaping queue.
func (s *Shaper) Backlog() int { return len(s.q) }

// Receive implements Sink.
func (s *Shaper) Receive(p *packet.Packet) {
	if float64(p.Size) > s.bkt.depth {
		panic(fmt.Sprintf("shaper: packet %v larger than bucket depth %v", p.Size, s.spec.BucketSize))
	}
	s.q = append(s.q, p)
	if !s.busy {
		s.release()
	}
}

// release forwards the head packet as soon as the bucket allows, then
// re-arms for the next one.
func (s *Shaper) release() {
	now := s.sim.Now()
	s.bkt.refill(now)
	head := s.q[0]
	wait := s.bkt.timeUntil(float64(head.Size))
	if wait > 0 {
		s.busy = true
		s.sim.After(wait, s.release)
		return
	}
	s.bkt.take(float64(head.Size))
	s.q = s.q[1:]
	head.Conformant = true
	head.Arrived = now
	s.sink.Receive(head)
	if len(s.q) > 0 {
		s.busy = true
		s.sim.After(s.bkt.timeUntil(float64(s.q[0].Size)), s.release)
		return
	}
	s.busy = false
}

// Meter is a token-bucket marker: it colors packets Conformant when the
// bucket holds enough tokens (consuming them) and excess otherwise
// (consuming nothing), then forwards them without delay. This is the
// green/red coloring of Remark 1.
type Meter struct {
	spec packet.FlowSpec
	sim  *sim.Simulator
	sink Sink
	bkt  *bucket
	// Green and Red count marked bytes, for conformance accounting.
	Green units.Bytes
	Red   units.Bytes
}

// NewMeter creates a coloring meter for the given profile.
func NewMeter(s *sim.Simulator, spec packet.FlowSpec, sink Sink) *Meter {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Meter{spec: spec, sim: s, sink: sink, bkt: newBucket(spec.TokenRate, spec.BucketSize)}
}

// BurstPotential returns the flow's current burst potential σ(t) — the
// token-pool level of equation (3) of the paper — in bytes.
func (m *Meter) BurstPotential() units.Bytes {
	m.bkt.refill(m.sim.Now())
	return units.Bytes(m.bkt.tokens)
}

// Receive implements Sink.
func (m *Meter) Receive(p *packet.Packet) {
	m.bkt.refill(m.sim.Now())
	if m.bkt.tokens >= float64(p.Size)-tokenEpsilon {
		m.bkt.take(float64(p.Size))
		p.Conformant = true
		m.Green += p.Size
	} else {
		p.Conformant = false
		m.Red += p.Size
	}
	p.Arrived = m.sim.Now()
	m.sink.Receive(p)
}

// Recorder is a Sink that stores every packet it receives, with the
// receipt time. It is a test and measurement helper.
type Recorder struct {
	sim     *sim.Simulator
	Packets []*packet.Packet
	Times   []float64
}

// NewRecorder returns a recording sink bound to the simulator clock.
func NewRecorder(s *sim.Simulator) *Recorder { return &Recorder{sim: s} }

// Receive implements Sink.
func (r *Recorder) Receive(p *packet.Packet) {
	r.Packets = append(r.Packets, p)
	r.Times = append(r.Times, r.sim.Now())
}

// TotalBytes returns the volume received.
func (r *Recorder) TotalBytes() units.Bytes {
	var total units.Bytes
	for _, p := range r.Packets {
		total += p.Size
	}
	return total
}

// ConformsTo checks the recorded arrival sequence against a (σ, ρ)
// envelope: for every pair i ≤ j, the volume in [t_i, t_j] must not
// exceed σ + ρ·(t_j − t_i) + slack. It returns the first violation found.
func (r *Recorder) ConformsTo(spec packet.FlowSpec, slack units.Bytes) error {
	// Prefix sums of bytes, so volume(i..j) is O(1).
	prefix := make([]units.Bytes, len(r.Packets)+1)
	for i, p := range r.Packets {
		prefix[i+1] = prefix[i] + p.Size
	}
	rho := spec.TokenRate.BytesPerSecond()
	sigma := float64(spec.BucketSize)
	for i := 0; i < len(r.Packets); i++ {
		for j := i; j < len(r.Packets); j++ {
			vol := float64(prefix[j+1] - prefix[i])
			allowed := sigma + rho*(r.Times[j]-r.Times[i]) + float64(slack)
			// Tolerance of half a byte: far below packet granularity,
			// but wide enough to absorb accumulated float rounding.
			if vol > allowed+0.5 {
				return fmt.Errorf("envelope violated on [%v, %v]: %v bytes > %v allowed",
					r.Times[i], r.Times[j], vol, allowed)
			}
		}
	}
	return nil
}
