// Package source implements the traffic sources and edge regulators of
// the paper's simulation setup: Markov-modulated ON-OFF sources, CBR and
// saturating sources, a leaky-bucket shaper (which makes a flow
// conformant, as for flows 0–5 of Table 1), and a token-bucket meter
// that colors packets conformant/excess per the Remark 1 accounting.
package source

import (
	"fmt"
	"math/rand"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// Sink consumes packets emitted by a source or regulator stage.
type Sink interface {
	Receive(p *packet.Packet)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(p *packet.Packet)

// Receive implements Sink.
func (f SinkFunc) Receive(p *packet.Packet) { f(p) }

// Feedback is the reverse-direction surface of a closed-loop source:
// the network calls OnAck with each acknowledgement arriving back from
// the delivery endpoint and OnDrop with each of the flow's data packets
// a buffer manager rejected. Both are invoked on the source's own event
// kernel at the (propagation-delayed) time the notification reaches the
// sender, so a Feedback implementation re-clocks itself with ordinary
// sim scheduling. Open-loop sources simply do not implement it.
type Feedback interface {
	OnAck(p *packet.Packet)
	OnDrop(p *packet.Packet)
}

// OnOffConfig describes a Markov-modulated ON-OFF source. While ON, the
// source emits back-to-back maximum-size packets at PeakRate; ON and OFF
// holding times are exponential. The configuration is given in the
// paper's terms — peak rate, average rate, and mean burst size — and the
// holding-time means are derived from them:
//
//	E[on]  = MeanBurst·8 / PeakRate
//	E[off] = E[on]·(PeakRate/AvgRate − 1)
type OnOffConfig struct {
	Flow       int
	PacketSize units.Bytes
	PeakRate   units.Rate
	AvgRate    units.Rate
	MeanBurst  units.Bytes
}

// Validate reports configuration errors.
func (c OnOffConfig) Validate() error {
	switch {
	case c.PacketSize <= 0:
		return fmt.Errorf("on-off source: packet size %v must be positive", c.PacketSize)
	case c.PeakRate <= 0:
		return fmt.Errorf("on-off source: peak rate %v must be positive", c.PeakRate)
	case c.AvgRate <= 0 || c.AvgRate > c.PeakRate:
		return fmt.Errorf("on-off source: average rate %v must be in (0, peak=%v]", c.AvgRate, c.PeakRate)
	case c.MeanBurst < c.PacketSize:
		return fmt.Errorf("on-off source: mean burst %v below packet size %v", c.MeanBurst, c.PacketSize)
	}
	return nil
}

// MeanOn returns the mean ON-period duration in seconds.
func (c OnOffConfig) MeanOn() float64 {
	return c.MeanBurst.Bits() / c.PeakRate.BitsPerSecond()
}

// MeanOff returns the mean OFF-period duration in seconds.
func (c OnOffConfig) MeanOff() float64 {
	return c.MeanOn() * (c.PeakRate.BitsPerSecond()/c.AvgRate.BitsPerSecond() - 1)
}

// OnOff is a running Markov-modulated ON-OFF source.
type OnOff struct {
	cfg  OnOffConfig
	sim  *sim.Simulator
	rng  *rand.Rand
	sink Sink
	seq  uint64
	// onUntil is the end of the current ON period; packets are emitted
	// while the clock is strictly before it.
	onUntil float64
	stopped bool
}

// NewOnOff creates an ON-OFF source delivering packets into sink. It
// panics on an invalid configuration: source parameters come from static
// experiment tables, so a bad value is a programming error.
func NewOnOff(s *sim.Simulator, rng *rand.Rand, cfg OnOffConfig, sink Sink) *OnOff {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &OnOff{cfg: cfg, sim: s, rng: rng, sink: sink}
}

// Start begins the ON/OFF cycle. The source starts in the OFF state with
// a randomized residual so that flows do not synchronize.
func (o *OnOff) Start() {
	o.sim.After(sim.Exponential(o.rng, o.cfg.MeanOff()), o.beginOn)
}

// Stop halts packet generation after any already-scheduled event.
func (o *OnOff) Stop() { o.stopped = true }

// Seq returns the number of packets generated so far.
func (o *OnOff) Seq() uint64 { return o.seq }

func (o *OnOff) beginOn() {
	if o.stopped {
		return
	}
	d := sim.Exponential(o.rng, o.cfg.MeanOn())
	o.onUntil = o.sim.Now() + d
	o.emit()
}

func (o *OnOff) emit() {
	if o.stopped {
		return
	}
	now := o.sim.Now()
	if now >= o.onUntil {
		// ON period over; schedule the next one after an OFF period.
		o.sim.After(sim.Exponential(o.rng, o.cfg.MeanOff()), o.beginOn)
		return
	}
	p := &packet.Packet{
		Flow:    o.cfg.Flow,
		Size:    o.cfg.PacketSize,
		Created: now,
		Arrived: now,
		Seq:     o.seq,
	}
	o.seq++
	o.sink.Receive(p)
	o.sim.After(units.TransmissionTime(o.cfg.PacketSize, o.cfg.PeakRate), o.emit)
}

// CBR is a constant-bit-rate source: one packet every Size·8/Rate
// seconds, starting at the configured offset.
type CBR struct {
	Flow       int
	PacketSize units.Bytes
	Rate       units.Rate
	Offset     float64

	sim     *sim.Simulator
	sink    Sink
	seq     uint64
	stopped bool
}

// NewCBR creates a CBR source delivering packets into sink.
func NewCBR(s *sim.Simulator, flow int, size units.Bytes, rate units.Rate, sink Sink) *CBR {
	if size <= 0 || rate <= 0 {
		panic(fmt.Sprintf("cbr source: invalid size %v or rate %v", size, rate))
	}
	return &CBR{Flow: flow, PacketSize: size, Rate: rate, sim: s, sink: sink}
}

// Start begins emission.
func (c *CBR) Start() { c.sim.After(c.Offset, c.emit) }

// Stop halts packet generation.
func (c *CBR) Stop() { c.stopped = true }

// Seq returns the number of packets generated so far.
func (c *CBR) Seq() uint64 { return c.seq }

func (c *CBR) emit() {
	if c.stopped {
		return
	}
	now := c.sim.Now()
	p := &packet.Packet{
		Flow:    c.Flow,
		Size:    c.PacketSize,
		Created: now,
		Arrived: now,
		Seq:     c.seq,
	}
	c.seq++
	c.sink.Receive(p)
	c.sim.After(units.TransmissionTime(c.PacketSize, c.Rate), c.emit)
}

// Saturating is a source that offers traffic at the given rate forever —
// the packetized analogue of the paper's "greedy" flow that always tries
// to occupy its full buffer share. Offering at (or above) the link rate
// keeps the flow's queue pegged at its admission threshold.
type Saturating struct {
	*CBR
}

// NewSaturating creates a greedy source offering at rate (typically the
// link rate) into sink.
func NewSaturating(s *sim.Simulator, flow int, size units.Bytes, rate units.Rate, sink Sink) *Saturating {
	return &Saturating{CBR: NewCBR(s, flow, size, rate, sink)}
}
