package source

import (
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func dualSpec() packet.FlowSpec {
	return packet.FlowSpec{
		PeakRate:   units.MbitsPerSecond(16),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(50),
	}
}

func TestDualShaperOutputConformsToBothEnvelopes(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	spec := dualSpec()
	sh := NewDualShaper(s, spec, 500, rec)
	src := NewOnOff(s, sim.NewRand(4), OnOffConfig{
		Flow: 0, PacketSize: 500,
		PeakRate:  units.MbitsPerSecond(40),
		AvgRate:   units.MbitsPerSecond(8),
		MeanBurst: units.KiloBytes(200),
	}, sh)
	src.Start()
	s.RunUntil(20)
	if len(rec.Packets) < 100 {
		t.Fatalf("too few packets: %d", len(rec.Packets))
	}
	// (σ, ρ) envelope.
	if err := rec.ConformsTo(spec, 0); err != nil {
		t.Errorf("token envelope violated: %v", err)
	}
	// Peak envelope: one-MTU bucket at rate P.
	peakSpec := packet.FlowSpec{TokenRate: spec.PeakRate, BucketSize: 500}
	if err := rec.ConformsTo(peakSpec, 0); err != nil {
		t.Errorf("peak envelope violated: %v", err)
	}
}

func TestDualShaperNoInstantBurst(t *testing.T) {
	// Unlike the plain Shaper, the dual shaper must NOT release the σ
	// backlog instantaneously: consecutive packets are spaced at least
	// one packet time at the peak rate.
	s := sim.New()
	rec := NewRecorder(s)
	sh := NewDualShaper(s, dualSpec(), 500, rec)
	for i := 0; i < 20; i++ {
		sh.Receive(&packet.Packet{Flow: 0, Size: 500, Seq: uint64(i)})
	}
	s.Run(0)
	if len(rec.Packets) != 20 {
		t.Fatalf("delivered %d of 20", len(rec.Packets))
	}
	minGap := units.TransmissionTime(500, units.MbitsPerSecond(16))
	for i := 1; i < len(rec.Times); i++ {
		if gap := rec.Times[i] - rec.Times[i-1]; gap < minGap-1e-12 {
			t.Fatalf("packets %d,%d spaced %v < peak packet time %v", i-1, i, gap, minGap)
		}
	}
}

func TestDualShaperLongRunRate(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	sh := NewDualShaper(s, dualSpec(), 500, rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh)
	src.Start()
	const dur = 20.0
	s.RunUntil(dur)
	rate := rec.TotalBytes().Bits() / dur
	if rate > 2e6*1.03 || rate < 2e6*0.95 {
		t.Errorf("long-run rate %.4g, want ≈ token rate 2e6", rate)
	}
}

func TestDualShaperMarksConformant(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	sh := NewDualShaper(s, dualSpec(), 500, rec)
	sh.Receive(&packet.Packet{Flow: 0, Size: 500})
	s.Run(0)
	if !rec.Packets[0].Conformant {
		t.Error("dual shaper output not marked conformant")
	}
}

func TestDualShaperValidation(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	noPeak := packet.FlowSpec{TokenRate: units.Mbps, BucketSize: 1000}
	for i, f := range []func(){
		func() { NewDualShaper(s, noPeak, 500, rec) },
		func() { NewDualShaper(s, dualSpec(), 0, rec) },
		func() { NewDualShaper(s, packet.FlowSpec{}, 500, rec) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	// Oversize packets panic at Receive time.
	sh := NewDualShaper(s, dualSpec(), 500, rec)
	defer func() {
		if recover() == nil {
			t.Error("oversize packet did not panic")
		}
	}()
	sh.Receive(&packet.Packet{Size: 600})
}

// Property: dual-shaper output satisfies the peak envelope for random
// input patterns.
func TestPropertyDualShaperPeakEnvelope(t *testing.T) {
	spec := packet.FlowSpec{
		PeakRate:   units.MbitsPerSecond(10),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: 3000,
	}
	f := func(sizes []uint16, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.New()
		rec := NewRecorder(s)
		sh := NewDualShaper(s, spec, 1500, rec)
		at := 0.0
		for i, raw := range sizes {
			size := units.Bytes(raw%1400) + 100
			if i < len(gaps) {
				at += float64(gaps[i]) / 1e5
			}
			p := &packet.Packet{Flow: 0, Size: size, Seq: uint64(i)}
			s.At(at, func() { sh.Receive(p) })
		}
		s.Run(0)
		peakSpec := packet.FlowSpec{TokenRate: spec.PeakRate, BucketSize: 1500}
		return rec.ConformsTo(spec, 0) == nil && rec.ConformsTo(peakSpec, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
