package source

import (
	"fmt"
	"math"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// DualShaper is a dual-leaky-bucket regulator: it delays packets so the
// output conforms to BOTH the (σ, ρ) token-bucket profile and a peak
// rate P (enforced as a second bucket of one-MTU depth refilled at P).
// §2.3's note observes that adding a peak-rate limit to the source
// leaves the paper's buffer results unchanged; this shaper lets
// experiments feed the multiplexer exactly such peak-limited conformant
// traffic instead of the instantaneous bursts a plain Shaper emits.
type DualShaper struct {
	spec packet.FlowSpec
	sim  *sim.Simulator
	sink Sink
	tkn  *bucket // (σ, ρ)
	peak *bucket // (MTU, P)
	q    []*packet.Packet
	busy bool
}

// NewDualShaper creates the regulator. spec must carry a positive
// PeakRate; mtu bounds the packet size (and sets the peak bucket's
// depth, i.e. back-to-back transmission is limited to one packet).
func NewDualShaper(s *sim.Simulator, spec packet.FlowSpec, mtu units.Bytes, sink Sink) *DualShaper {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.PeakRate <= 0 {
		panic(fmt.Sprintf("dual shaper: need a peak rate, got %v", spec.PeakRate))
	}
	if mtu <= 0 {
		panic(fmt.Sprintf("dual shaper: invalid MTU %v", mtu))
	}
	return &DualShaper{
		spec: spec,
		sim:  s,
		sink: sink,
		tkn:  newBucket(spec.TokenRate, spec.BucketSize),
		peak: newBucket(spec.PeakRate, mtu),
	}
}

// Backlog returns the number of packets waiting in the shaping queue.
func (d *DualShaper) Backlog() int { return len(d.q) }

// Receive implements Sink.
func (d *DualShaper) Receive(p *packet.Packet) {
	if float64(p.Size) > d.tkn.depth {
		panic(fmt.Sprintf("dual shaper: packet %v larger than bucket depth %v", p.Size, d.spec.BucketSize))
	}
	if float64(p.Size) > d.peak.depth {
		panic(fmt.Sprintf("dual shaper: packet %v larger than MTU %v", p.Size, units.Bytes(d.peak.depth)))
	}
	d.q = append(d.q, p)
	if !d.busy {
		d.release()
	}
}

func (d *DualShaper) release() {
	now := d.sim.Now()
	d.tkn.refill(now)
	d.peak.refill(now)
	head := d.q[0]
	wait := math.Max(d.tkn.timeUntil(float64(head.Size)), d.peak.timeUntil(float64(head.Size)))
	if wait > 0 {
		d.busy = true
		d.sim.After(wait, d.release)
		return
	}
	d.tkn.take(float64(head.Size))
	d.peak.take(float64(head.Size))
	d.q = d.q[1:]
	head.Conformant = true
	head.Arrived = now
	d.sink.Receive(head)
	if len(d.q) > 0 {
		next := math.Max(d.tkn.timeUntil(float64(d.q[0].Size)), d.peak.timeUntil(float64(d.q[0].Size)))
		d.busy = true
		d.sim.After(next, d.release)
		return
	}
	d.busy = false
}
