package source

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func spec2Mb50KB() packet.FlowSpec {
	return packet.FlowSpec{
		PeakRate:   units.MbitsPerSecond(16),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(50),
	}
}

func TestShaperOutputConforms(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	spec := spec2Mb50KB()
	sh := NewShaper(s, spec, rec)
	// Feed a much-too-fast ON-OFF source through the shaper.
	src := NewOnOff(s, sim.NewRand(2), OnOffConfig{
		Flow: 0, PacketSize: 500,
		PeakRate:  units.MbitsPerSecond(40),
		AvgRate:   units.MbitsPerSecond(8),
		MeanBurst: units.KiloBytes(200),
	}, sh)
	src.Start()
	s.RunUntil(30)
	if len(rec.Packets) < 100 {
		t.Fatalf("too few shaped packets: %d", len(rec.Packets))
	}
	if err := rec.ConformsTo(spec, 0); err != nil {
		t.Errorf("shaper output violates its own envelope: %v", err)
	}
}

func TestShaperMarksConformantAndKeepsOrder(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	sh := NewShaper(s, spec2Mb50KB(), rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh)
	src.Start()
	s.RunUntil(5)
	src.Stop()
	s.Run(0)
	if len(rec.Packets) == 0 {
		t.Fatal("no packets through shaper")
	}
	var last uint64
	for i, p := range rec.Packets {
		if !p.Conformant {
			t.Fatalf("packet %d not marked conformant", i)
		}
		if i > 0 && p.Seq <= last {
			t.Fatalf("order violated at %d: seq %d after %d", i, p.Seq, last)
		}
		last = p.Seq
	}
}

func TestShaperDoesNotDrop(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	sh := NewShaper(s, spec2Mb50KB(), rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh)
	src.Start()
	s.RunUntil(2)
	src.Stop()
	sent := src.seq
	s.Run(0) // drain the shaping queue
	if uint64(len(rec.Packets)) != sent {
		t.Errorf("shaper delivered %d of %d packets", len(rec.Packets), sent)
	}
	if sh.Backlog() != 0 {
		t.Errorf("backlog %d after drain", sh.Backlog())
	}
}

func TestShaperInitialBurstPassesUnshaped(t *testing.T) {
	// A full bucket should let σ bytes through back-to-back.
	s := sim.New()
	rec := NewRecorder(s)
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(1), BucketSize: 5000}
	sh := NewShaper(s, spec, rec)
	for i := 0; i < 10; i++ {
		sh.Receive(&packet.Packet{Flow: 0, Size: 500, Seq: uint64(i)})
	}
	// All 10 × 500 = 5000 bytes fit the initial bucket: no delay at all.
	if len(rec.Packets) != 10 {
		t.Fatalf("initial burst: %d packets passed immediately, want 10", len(rec.Packets))
	}
	for _, at := range rec.Times {
		if at != 0 {
			t.Fatalf("initial burst delayed to %v", at)
		}
	}
	// The 11th must wait a full packet time at the token rate.
	sh.Receive(&packet.Packet{Flow: 0, Size: 500, Seq: 10})
	s.Run(0)
	want := 500 * 8.0 / 1e6
	if math.Abs(rec.Times[10]-want) > 1e-12 {
		t.Errorf("11th packet released at %v, want %v", rec.Times[10], want)
	}
}

func TestShaperRejectsOversizePacket(t *testing.T) {
	s := sim.New()
	sh := NewShaper(s, packet.FlowSpec{TokenRate: units.Mbps, BucketSize: 400}, NewRecorder(s))
	defer func() {
		if recover() == nil {
			t.Error("packet larger than bucket did not panic")
		}
	}()
	sh.Receive(&packet.Packet{Size: 500})
}

func TestShaperSteadyStateRate(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	spec := spec2Mb50KB()
	sh := NewShaper(s, spec, rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh) // 8× oversubscribed
	src.Start()
	const dur = 20.0
	s.RunUntil(dur)
	rate := rec.TotalBytes().Bits() / dur
	// Long-run output rate must approach ρ (the σ head start amortizes out).
	if rate > 2e6*1.02 || rate < 2e6*0.95 {
		t.Errorf("shaped rate %.4g, want ≈ 2e6", rate)
	}
}

func TestMeterColorsByProfile(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	spec := spec2Mb50KB()
	m := NewMeter(s, spec, rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(4), m) // 2× the token rate
	src.Start()
	const dur = 30.0
	s.RunUntil(dur)
	var green, red units.Bytes
	for _, p := range rec.Packets {
		if p.Conformant {
			green += p.Size
		} else {
			red += p.Size
		}
	}
	if green != m.Green || red != m.Red {
		t.Errorf("meter counters (%v,%v) disagree with marks (%v,%v)", m.Green, m.Red, green, red)
	}
	// Green rate ≈ ρ (σ is small relative to 30s·ρ), red the remainder.
	greenRate := green.Bits() / dur
	if math.Abs(greenRate-2e6)/2e6 > 0.05 {
		t.Errorf("green rate %.4g, want ≈ 2e6", greenRate)
	}
	total := rec.TotalBytes()
	if green+red != total {
		t.Errorf("green %v + red %v != total %v", green, red, total)
	}
}

func TestMeterForwardsEverythingUndelayed(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	m := NewMeter(s, spec2Mb50KB(), rec)
	src := NewCBR(s, 0, 500, units.MbitsPerSecond(8), m)
	src.Start()
	s.RunUntil(1)
	if uint64(len(rec.Packets)) != src.seq {
		t.Errorf("meter delivered %d of %d", len(rec.Packets), src.seq)
	}
	for i, p := range rec.Packets {
		if p.Arrived != rec.Times[i] {
			t.Fatalf("meter delayed packet %d", i)
		}
	}
}

func TestMeterGreenStreamConforms(t *testing.T) {
	// The green-marked substream must itself satisfy the (σ, ρ) envelope
	// with one packet of slack for the marking granularity.
	s := sim.New()
	rec := NewRecorder(s)
	spec := spec2Mb50KB()
	m := NewMeter(s, spec, rec)
	src := NewOnOff(s, sim.NewRand(9), OnOffConfig{
		Flow: 0, PacketSize: 500,
		PeakRate:  units.MbitsPerSecond(40),
		AvgRate:   units.MbitsPerSecond(16),
		MeanBurst: units.KiloBytes(250),
	}, m)
	src.Start()
	s.RunUntil(20)
	green := NewRecorder(s)
	for i, p := range rec.Packets {
		if p.Conformant {
			green.Packets = append(green.Packets, p)
			green.Times = append(green.Times, rec.Times[i])
		}
	}
	if len(green.Packets) < 50 {
		t.Fatalf("too few green packets: %d", len(green.Packets))
	}
	if err := green.ConformsTo(spec, 0); err != nil {
		t.Errorf("green substream violates envelope: %v", err)
	}
}

func TestMeterBurstPotential(t *testing.T) {
	s := sim.New()
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(8), BucketSize: 10000}
	m := NewMeter(s, spec, NewRecorder(s))
	if got := m.BurstPotential(); got != 10000 {
		t.Fatalf("initial burst potential %v, want full bucket", got)
	}
	m.Receive(&packet.Packet{Size: 4000})
	if got := m.BurstPotential(); got != 6000 {
		t.Fatalf("after 4000B: potential %v, want 6000", got)
	}
	// 8 Mb/s = 1e6 B/s: after 2 ms the pool regains 2000 bytes.
	s.At(0.002, func() {})
	s.Run(0)
	if got := m.BurstPotential(); got != 8000 {
		t.Fatalf("after refill: potential %v, want 8000", got)
	}
	// The pool saturates at σ.
	s.At(1, func() {})
	s.Run(0)
	if got := m.BurstPotential(); got != 10000 {
		t.Fatalf("saturated potential %v, want 10000", got)
	}
}

func TestBucketTimeUntil(t *testing.T) {
	b := newBucket(units.MbitsPerSecond(8), 1000) // 1e6 B/s
	b.tokens = 0
	if got := b.timeUntil(500); math.Abs(got-0.0005) > 1e-15 {
		t.Errorf("timeUntil(500) = %v, want 0.0005", got)
	}
	if got := b.timeUntil(2000); !math.IsInf(got, 1) {
		t.Errorf("timeUntil beyond depth = %v, want +Inf", got)
	}
	b.tokens = 700
	if got := b.timeUntil(500); got != 0 {
		t.Errorf("timeUntil with enough tokens = %v, want 0", got)
	}
}

func TestBucketRefillMonotonic(t *testing.T) {
	b := newBucket(units.Mbps, 1000)
	b.refill(1)
	defer func() {
		if recover() == nil {
			t.Error("backwards refill did not panic")
		}
	}()
	b.refill(0.5)
}

// Property: for any arrival pattern (random sizes and gaps), the shaper
// output satisfies the (σ, ρ) envelope exactly.
func TestPropertyShaperAlwaysConforms(t *testing.T) {
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(2), BucketSize: 3000}
	f := func(sizes []uint16, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.New()
		rec := NewRecorder(s)
		sh := NewShaper(s, spec, rec)
		at := 0.0
		for i, raw := range sizes {
			size := units.Bytes(raw%2900) + 100 // 100..2999 bytes, within bucket
			if i < len(gaps) {
				at += float64(gaps[i]) / 1e5 // 0..0.65s gaps
			}
			p := &packet.Packet{Flow: 0, Size: size, Seq: uint64(i)}
			s.At(at, func() { sh.Receive(p) })
		}
		s.Run(0)
		return rec.ConformsTo(spec, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: meter conservation — every byte is either green or red, and
// the green volume over the whole run never exceeds σ + ρT.
func TestPropertyMeterConservation(t *testing.T) {
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(2), BucketSize: 3000}
	f := func(sizes []uint16, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.New()
		rec := NewRecorder(s)
		m := NewMeter(s, spec, rec)
		at := 0.0
		var offered units.Bytes
		for i, raw := range sizes {
			size := units.Bytes(raw%1400) + 100
			offered += size
			if i < len(gaps) {
				at += float64(gaps[i]) / 1e5
			}
			p := &packet.Packet{Flow: 0, Size: size, Seq: uint64(i)}
			s.At(at, func() { m.Receive(p) })
		}
		s.Run(0)
		if m.Green+m.Red != offered {
			return false
		}
		limit := spec.Envelope(s.Now()) + 1e-9
		return m.Green.Bits() <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
