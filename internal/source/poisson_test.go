package source

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func TestPoissonMeanRate(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewPoisson(s, sim.NewRand(5), 0, 500, units.MbitsPerSecond(4), rec)
	src.Start()
	const dur = 60.0
	s.RunUntil(dur)
	rate := rec.TotalBytes().Bits() / dur
	if math.Abs(rate-4e6)/4e6 > 0.05 {
		t.Errorf("empirical rate %.3g, want 4e6 ± 5%%", rate)
	}
}

func TestPoissonInterArrivalCV(t *testing.T) {
	// Exponential inter-arrivals have coefficient of variation 1 — the
	// memoryless signature that distinguishes Poisson from CBR (CV 0)
	// and from the bursty ON-OFF sources (CV > 1).
	s := sim.New()
	rec := NewRecorder(s)
	src := NewPoisson(s, sim.NewRand(9), 0, 500, units.MbitsPerSecond(8), rec)
	src.Start()
	s.RunUntil(30)
	if len(rec.Times) < 1000 {
		t.Fatalf("too few packets: %d", len(rec.Times))
	}
	var gaps []float64
	for i := 1; i < len(rec.Times); i++ {
		gaps = append(gaps, rec.Times[i]-rec.Times[i-1])
	}
	mean, ss := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(ss/float64(len(gaps))) / mean
	if math.Abs(cv-1) > 0.1 {
		t.Errorf("inter-arrival CV %.3f, want ≈ 1 (exponential)", cv)
	}
}

func TestPoissonStopAndSeq(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewPoisson(s, sim.NewRand(1), 3, 500, units.MbitsPerSecond(8), rec)
	src.Start()
	s.RunUntil(2)
	n := src.Seq()
	if n == 0 || uint64(len(rec.Packets)) != n {
		t.Fatalf("seq %d vs recorded %d", n, len(rec.Packets))
	}
	src.Stop()
	s.RunUntil(4)
	if src.Seq() != n {
		t.Error("Poisson source kept emitting after Stop")
	}
	for i, p := range rec.Packets {
		if p.Flow != 3 || p.Seq != uint64(i) {
			t.Fatalf("packet %d fields wrong: %v", i, p)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	rng := sim.NewRand(1)
	for i, f := range []func(){
		func() { NewPoisson(s, rng, 0, 0, units.Mbps, rec) },
		func() { NewPoisson(s, rng, 0, 500, 0, rec) },
		func() { NewPoisson(s, nil, 0, 500, units.Mbps, rec) },
		func() { NewPoisson(s, rng, 0, 500, units.Mbps, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPoissonThroughThresholdLink(t *testing.T) {
	// Smoke the Poisson source against the paper's machinery: shaped
	// Poisson traffic through a threshold-managed link loses nothing.
	s := sim.New()
	rec := NewRecorder(s)
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(4), BucketSize: units.KiloBytes(30)}
	sh := NewShaper(s, spec, rec)
	src := NewPoisson(s, sim.NewRand(2), 0, 500, units.MbitsPerSecond(3), sh)
	src.Start()
	s.RunUntil(20)
	if err := rec.ConformsTo(spec, 0); err != nil {
		t.Errorf("shaped Poisson output violates envelope: %v", err)
	}
}
