package source

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// TCP congestion-control constants (RFC 5681 / 6582 / 6298), in the
// segment-granularity form classic simulators use: windows count
// segments, not bytes.
const (
	tcpInitialWindow = 2   // IW, segments
	tcpDupThresh     = 3   // dupacks triggering fast retransmit
	tcpMinSsthresh   = 2   // floor for the multiplicative decrease
	tcpInitialRTO    = 1.0 // seconds, before the first RTT sample
	tcpMinRTO        = 0.2 // seconds (the common simulator value)
	tcpMaxRTO        = 60.0
)

// TCPConfig describes a closed-loop TCP Reno/NewReno source.
type TCPConfig struct {
	Flow int
	// SegmentSize is the size of every data segment (one packet).
	SegmentSize units.Bytes
	// PaceRate spaces new-data emissions at SegmentSize·8/PaceRate —
	// the sender's access-link speed. Typically the flow's peak rate or
	// its first link's rate.
	PaceRate units.Rate
}

// Validate reports configuration errors.
func (c TCPConfig) Validate() error {
	switch {
	case c.SegmentSize <= 0:
		return fmt.Errorf("tcp source: segment size %v must be positive", c.SegmentSize)
	case c.PaceRate <= 0:
		return fmt.Errorf("tcp source: pace rate %v must be positive", c.PaceRate)
	}
	return nil
}

// TCP is a window-based closed-loop source implementing TCP
// Reno/NewReno at segment granularity: slow start, AIMD congestion
// avoidance, fast retransmit / fast recovery on three duplicate
// acknowledgements (with NewReno partial-ack retransmission), and an
// RFC 6298 retransmission timer with Karn's algorithm and exponential
// backoff. It emits data segments into its sink and receives
// acknowledgements through the Feedback interface; everything is
// re-clocked on the sim kernel, so a run is deterministic.
//
// Sequence numbers count segments: Seq s is the s-th segment of the
// flow, and a cumulative ACK carrying AckSeq a acknowledges every
// segment with Seq < a. Retransmissions reuse the original Seq.
type TCP struct {
	cfg  TCPConfig
	sim  *sim.Simulator
	sink Sink

	una uint64 // lowest unacknowledged sequence number
	nxt uint64 // next new sequence number to send

	cwnd     float64 // congestion window, segments
	ssthresh float64 // slow-start threshold, segments

	dupAcks    int
	inRecovery bool
	recover    uint64 // NewReno: highest sequence outstanding at loss detection

	// RTO state (RFC 6298). srtt < 0 means "no sample yet".
	srtt, rttvar, rto float64
	rtoEv             sim.Event

	// sent records each outstanding segment's emission time for RTT
	// sampling and whether it was retransmitted (Karn's algorithm: never
	// sample those). It used to be a pair of maps keyed by sequence
	// number; the flat ring makes the per-ACK bookkeeping loop
	// allocation-free and index-based, which is what lets 10⁶ concurrent
	// sources fit in memory and stay fast (see internal/sizing).
	sent sendRing

	pumping bool
	stopped bool

	retransmits int64
	timeouts    int64
	dropsSeen   int64
}

// NewTCP creates a TCP source delivering segments into sink. It panics
// on an invalid configuration, like the other sources.
func NewTCP(s *sim.Simulator, cfg TCPConfig, sink Sink) *TCP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TCP{
		cfg:      cfg,
		sim:      s,
		sink:     sink,
		cwnd:     tcpInitialWindow,
		ssthresh: 1 << 30, // effectively unbounded until the first loss
		srtt:     -1,
		rto:      tcpInitialRTO,
	}
}

// sendRing is the per-segment send record of one TCP source: emission
// times and retransmission marks for every sequence number in
// [lo, hi), stored in a power-of-two ring indexed by the sequence
// number itself. lo tracks the cumulative acknowledgement point (una)
// and hi the highest emission, so the ring holds exactly the
// outstanding window — it replaces two maps whose per-ACK
// insert/lookup/delete churn dominated the feedback hot path. The
// ring grows by doubling when the window outruns it; records are never
// cleared individually, validity is the [lo, hi) span.
type sendRing struct {
	time []float64
	retx []bool
	lo   uint64 // lowest live sequence (the cumulative ACK point)
	hi   uint64 // one past the highest sequence ever emitted
}

// record stores segment s's emission time, clearing any stale
// retransmission mark left by a previous occupant of the slot.
func (r *sendRing) record(s uint64, now float64) {
	if s >= r.hi {
		r.hi = s + 1
	}
	if need := r.hi - r.lo; need > uint64(len(r.time)) {
		r.grow(need)
	}
	i := s & uint64(len(r.time)-1)
	r.time[i] = now
	r.retx[i] = false
}

// markRetx flags segment s as retransmitted; s must have been recorded.
func (r *sendRing) markRetx(s uint64) { r.retx[s&uint64(len(r.retx)-1)] = true }

// sample returns segment s's emission time and whether it is a valid
// RTT sample (recorded, transmitted exactly once).
func (r *sendRing) sample(s uint64) (float64, bool) {
	if s < r.lo || s >= r.hi {
		return 0, false
	}
	i := s & uint64(len(r.time)-1)
	return r.time[i], !r.retx[i]
}

// advance moves the live span's lower edge to ack (the new una),
// retiring every record below it.
func (r *sendRing) advance(ack uint64) {
	r.lo = ack
	if r.hi < r.lo {
		r.hi = r.lo
	}
}

// grow doubles the ring until it covers need slots, re-homing the live
// span's records under the new mask.
func (r *sendRing) grow(need uint64) {
	size := uint64(16)
	for size < need {
		size *= 2
	}
	nt := make([]float64, size)
	nr := make([]bool, size)
	oldMask := uint64(len(r.time) - 1)
	for s := r.lo; s < r.hi-1; s++ { // hi-1 is being recorded by the caller
		nt[s&(size-1)] = r.time[s&oldMask]
		nr[s&(size-1)] = r.retx[s&oldMask]
	}
	r.time, r.retx = nt, nr
}

// Start begins the transfer (the source is greedy: it always has data).
func (t *TCP) Start() { t.pump() }

// Stop halts the source: pending timers are cancelled and late
// feedback is ignored.
func (t *TCP) Stop() {
	t.stopped = true
	t.rtoEv.Cancel()
}

// Retransmits returns how many segments were re-emitted (fast
// retransmit, NewReno partial-ack, and timeout recovery combined).
func (t *TCP) Retransmits() int64 { return t.retransmits }

// Timeouts returns how many times the retransmission timer fired.
func (t *TCP) Timeouts() int64 { return t.timeouts }

// DropsSeen returns how many in-network drop notifications reached the
// source. Congestion control reacts only to the ACK stream (as real TCP
// must); the count is diagnostic.
func (t *TCP) DropsSeen() int64 { return t.dropsSeen }

// Cwnd returns the current congestion window in segments.
func (t *TCP) Cwnd() float64 { return t.cwnd }

// flight returns the number of outstanding segments.
func (t *TCP) flight() float64 { return float64(t.nxt - t.una) }

// OnAck implements Feedback: process one cumulative acknowledgement.
func (t *TCP) OnAck(p *packet.Packet) {
	if t.stopped {
		return
	}
	ack := p.AckSeq
	switch {
	case ack > t.una:
		t.newAck(ack)
	case ack == t.una && t.nxt > t.una:
		t.dupAck()
	}
	t.pump()
}

// OnDrop implements Feedback: a buffer manager rejected one of the
// flow's segments. TCP infers loss from the ACK stream alone, so this
// only counts the notification.
func (t *TCP) OnDrop(p *packet.Packet) {
	if t.stopped {
		return
	}
	t.dropsSeen++
}

// newAck advances the window for an acknowledgement of new data.
func (t *TCP) newAck(ack uint64) {
	acked := float64(ack - t.una)
	// Consume send records, sampling the RTT from the newest
	// acknowledged segment that was transmitted exactly once (Karn).
	sample := -1.0
	for s := t.una; s < ack; s++ {
		if ts, ok := t.sent.sample(s); ok {
			sample = t.sim.Now() - ts
		}
	}
	t.sent.advance(ack)
	if sample >= 0 {
		t.updateRTO(sample)
	}
	t.una = ack
	if t.nxt < t.una {
		t.nxt = t.una
	}
	if t.inRecovery {
		if ack > t.recover {
			// Full acknowledgement: leave fast recovery, deflating the
			// window back to the slow-start threshold.
			t.inRecovery = false
			t.cwnd = t.ssthresh
			t.dupAcks = 0
		} else {
			// NewReno partial ACK: the next hole is lost too. Retransmit
			// it, deflate by the acknowledged amount, and stay in
			// recovery.
			t.cwnd = t.cwnd - acked + 1
			if t.cwnd < 1 {
				t.cwnd = 1
			}
			t.retransmit(t.una)
		}
	} else {
		t.dupAcks = 0
		if t.cwnd < t.ssthresh {
			t.cwnd += acked // slow start: exponential growth
		} else {
			t.cwnd += acked / t.cwnd // congestion avoidance: +1 MSS per RTT
		}
	}
	t.armTimer()
}

// dupAck handles an acknowledgement that advanced nothing while data is
// outstanding.
func (t *TCP) dupAck() {
	if t.inRecovery {
		// Window inflation: each further dupack signals a segment left
		// the network.
		t.cwnd++
		return
	}
	t.dupAcks++
	if t.dupAcks < tcpDupThresh {
		return
	}
	// Fast retransmit + fast recovery.
	t.ssthresh = t.flight() / 2
	if t.ssthresh < tcpMinSsthresh {
		t.ssthresh = tcpMinSsthresh
	}
	t.recover = t.nxt - 1
	t.inRecovery = true
	t.cwnd = t.ssthresh + tcpDupThresh
	t.retransmit(t.una)
	t.armTimer()
}

// onTimeout handles RTO expiry: multiplicative decrease to one segment,
// go-back-N from the first hole, exponential timer backoff.
func (t *TCP) onTimeout() {
	if t.stopped || t.una == t.nxt {
		return
	}
	t.timeouts++
	t.ssthresh = t.flight() / 2
	if t.ssthresh < tcpMinSsthresh {
		t.ssthresh = tcpMinSsthresh
	}
	t.cwnd = 1
	t.dupAcks = 0
	t.inRecovery = false
	t.rto *= 2
	if t.rto > tcpMaxRTO {
		t.rto = tcpMaxRTO
	}
	t.retransmit(t.una)
	// Go-back-N: everything after the retransmitted segment is resent
	// as the window re-opens.
	t.nxt = t.una + 1
	t.armTimer()
	t.pump()
}

// updateRTO folds one RTT measurement into the RFC 6298 estimator and
// resets the backoff.
func (t *TCP) updateRTO(r float64) {
	if t.srtt < 0 {
		t.srtt = r
		t.rttvar = r / 2
	} else {
		d := t.srtt - r
		if d < 0 {
			d = -d
		}
		t.rttvar = 0.75*t.rttvar + 0.25*d
		t.srtt = 0.875*t.srtt + 0.125*r
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < tcpMinRTO {
		t.rto = tcpMinRTO
	}
	if t.rto > tcpMaxRTO {
		t.rto = tcpMaxRTO
	}
}

// armTimer (re)starts the retransmission timer, or cancels it when
// nothing is outstanding.
func (t *TCP) armTimer() {
	t.rtoEv.Cancel()
	if t.una == t.nxt {
		return
	}
	t.rtoEv = t.sim.After(t.rto, t.onTimeout)
}

// emit sends segment s into the sink.
func (t *TCP) emit(s uint64) {
	now := t.sim.Now()
	t.sent.record(s, now)
	t.sink.Receive(&packet.Packet{
		Flow:    t.cfg.Flow,
		Size:    t.cfg.SegmentSize,
		Created: now,
		Arrived: now,
		Seq:     s,
	})
}

// retransmit re-emits segment s immediately (retransmissions are not
// paced: they replace a segment the network already accounted for).
func (t *TCP) retransmit(s uint64) {
	t.retransmits++
	t.emit(s)
	t.sent.markRetx(s)
}

// pump starts the paced emission loop when the window allows sending.
func (t *TCP) pump() {
	if t.pumping || t.stopped {
		return
	}
	if t.flight() >= t.cwnd {
		return
	}
	t.pumping = true
	t.step()
}

// step emits one new segment and re-schedules itself one transmission
// time later, for as long as the window stays open.
func (t *TCP) step() {
	if t.stopped {
		t.pumping = false
		return
	}
	if t.flight() >= t.cwnd {
		t.pumping = false
		return
	}
	wasIdle := t.una == t.nxt
	t.emit(t.nxt)
	t.nxt++
	if wasIdle {
		t.armTimer()
	}
	t.sim.After(units.TransmissionTime(t.cfg.SegmentSize, t.cfg.PaceRate), t.step)
}
