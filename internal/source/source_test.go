package source

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func table1Flow0() OnOffConfig {
	return OnOffConfig{
		Flow:       0,
		PacketSize: 500,
		PeakRate:   units.MbitsPerSecond(16),
		AvgRate:    units.MbitsPerSecond(2),
		MeanBurst:  units.KiloBytes(50),
	}
}

func TestOnOffConfigValidate(t *testing.T) {
	if err := table1Flow0().Validate(); err != nil {
		t.Fatalf("Table 1 flow 0 config rejected: %v", err)
	}
	bad := []OnOffConfig{
		{PacketSize: 0, PeakRate: units.Mbps, AvgRate: units.Mbps, MeanBurst: 1000},
		{PacketSize: 500, PeakRate: 0, AvgRate: units.Mbps, MeanBurst: 1000},
		{PacketSize: 500, PeakRate: units.Mbps, AvgRate: 2 * units.Mbps, MeanBurst: 1000},
		{PacketSize: 500, PeakRate: units.Mbps, AvgRate: 0, MeanBurst: 1000},
		{PacketSize: 500, PeakRate: units.Mbps, AvgRate: units.Mbps, MeanBurst: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestOnOffHoldingTimeMoments(t *testing.T) {
	c := table1Flow0()
	// E[on] = 50KB·8 / 16Mb/s = 25 ms.
	if got := c.MeanOn(); math.Abs(got-0.025) > 1e-12 {
		t.Errorf("MeanOn = %v, want 0.025", got)
	}
	// E[off] = E[on]·(16/2 − 1) = 175 ms.
	if got := c.MeanOff(); math.Abs(got-0.175) > 1e-12 {
		t.Errorf("MeanOff = %v, want 0.175", got)
	}
}

func TestOnOffAverageRate(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewOnOff(s, sim.NewRand(7), table1Flow0(), rec)
	src.Start()
	const dur = 400.0
	s.RunUntil(dur)
	rate := rec.TotalBytes().Bits() / dur
	want := 2e6
	if math.Abs(rate-want)/want > 0.10 {
		t.Errorf("empirical rate %.3g b/s, want %.3g ± 10%%", rate, want)
	}
}

func TestOnOffPeakRateSpacing(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewOnOff(s, sim.NewRand(3), table1Flow0(), rec)
	src.Start()
	s.RunUntil(50)
	if len(rec.Times) < 100 {
		t.Fatalf("too few packets: %d", len(rec.Times))
	}
	// Within a burst, spacing is exactly one packet time at peak rate;
	// across bursts it is longer. No spacing may be shorter.
	pktTime := units.TransmissionTime(500, units.MbitsPerSecond(16))
	for i := 1; i < len(rec.Times); i++ {
		gap := rec.Times[i] - rec.Times[i-1]
		if gap < pktTime-1e-12 {
			t.Fatalf("packets %d,%d spaced %v < packet time %v (exceeds peak rate)", i-1, i, gap, pktTime)
		}
	}
}

func TestOnOffMeanBurst(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewOnOff(s, sim.NewRand(11), table1Flow0(), rec)
	src.Start()
	s.RunUntil(600)

	// Reconstruct bursts: packets separated by more than ~2 packet
	// times belong to different bursts.
	pktTime := units.TransmissionTime(500, units.MbitsPerSecond(16))
	var bursts []float64
	cur := 0.0
	for i, p := range rec.Packets {
		if i > 0 && rec.Times[i]-rec.Times[i-1] > 2*pktTime {
			bursts = append(bursts, cur)
			cur = 0
		}
		cur += float64(p.Size)
	}
	bursts = append(bursts, cur)
	sum := 0.0
	for _, b := range bursts {
		sum += b
	}
	mean := sum / float64(len(bursts))
	if math.Abs(mean-50000)/50000 > 0.15 {
		t.Errorf("mean burst %v bytes, want 50000 ± 15%% (%d bursts)", mean, len(bursts))
	}
}

func TestOnOffStop(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewOnOff(s, sim.NewRand(1), table1Flow0(), rec)
	src.Start()
	s.RunUntil(10)
	n := len(rec.Packets)
	if n == 0 {
		t.Fatal("no packets in 10s")
	}
	src.Stop()
	s.RunUntil(20)
	if got := len(rec.Packets); got != n {
		t.Errorf("source kept emitting after Stop: %d -> %d", n, got)
	}
}

func TestOnOffSequencesAndStamps(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewOnOff(s, sim.NewRand(5), table1Flow0(), rec)
	src.Start()
	s.RunUntil(20)
	for i, p := range rec.Packets {
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
		if p.Flow != 0 || p.Size != 500 {
			t.Fatalf("packet fields wrong: %v", p)
		}
		if p.Created != rec.Times[i] || p.Arrived != rec.Times[i] {
			t.Fatalf("timestamps wrong: created=%v arrived=%v at %v", p.Created, p.Arrived, rec.Times[i])
		}
	}
	if src.Seq() != uint64(len(rec.Packets)) {
		t.Errorf("Seq() = %d, want %d", src.Seq(), len(rec.Packets))
	}
}

func TestCBRSpacing(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewCBR(s, 1, 500, units.MbitsPerSecond(4), rec)
	src.Start()
	s.RunUntil(0.9995)
	// 4 Mb/s with 4000-bit packets: one per ms at t = 0, 1ms, ..., 999ms.
	if len(rec.Times) != 1000 {
		t.Fatalf("got %d packets in 1s, want 1000", len(rec.Times))
	}
	for i, at := range rec.Times {
		if math.Abs(at-float64(i)*0.001) > 1e-9 {
			t.Fatalf("packet %d at %v, want %v", i, at, float64(i)*0.001)
		}
	}
}

func TestCBRStopAndOffset(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewCBR(s, 1, 500, units.MbitsPerSecond(4), rec)
	src.Offset = 0.5
	src.Start()
	s.RunUntil(0.25)
	if len(rec.Packets) != 0 {
		t.Fatal("CBR emitted before offset")
	}
	s.RunUntil(1)
	if len(rec.Packets) == 0 {
		t.Fatal("CBR never started")
	}
	if rec.Times[0] != 0.5 {
		t.Errorf("first packet at %v, want 0.5", rec.Times[0])
	}
	src.Stop()
	n := len(rec.Packets)
	s.RunUntil(2)
	if len(rec.Packets) != n {
		t.Error("CBR kept emitting after Stop")
	}
}

func TestCBRInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate CBR did not panic")
		}
	}()
	NewCBR(sim.New(), 0, 500, 0, SinkFunc(func(*packet.Packet) {}))
}

func TestSaturatingOffersAtRate(t *testing.T) {
	s := sim.New()
	rec := NewRecorder(s)
	src := NewSaturating(s, 8, 500, units.MbitsPerSecond(48), rec)
	src.Start()
	const dur = 1.0
	s.RunUntil(dur)
	rate := rec.TotalBytes().Bits() / dur
	if math.Abs(rate-48e6)/48e6 > 0.01 {
		t.Errorf("saturating source rate %.3g, want 48e6 ± 1%%", rate)
	}
}
