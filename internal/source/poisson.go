package source

import (
	"fmt"
	"math/rand"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// Poisson is a memoryless packet source: fixed-size packets with
// exponential inter-arrival times at the given mean rate. It is the
// classic teletraffic null model — smoother than the Markov ON-OFF
// sources the paper uses, and useful as a best-case traffic contrast
// in sensitivity experiments.
type Poisson struct {
	flow       int
	packetSize units.Bytes
	mean       float64 // mean inter-arrival, seconds

	sim     *sim.Simulator
	rng     *rand.Rand
	sink    Sink
	seq     uint64
	stopped bool
}

// NewPoisson creates a Poisson source with the given average rate.
func NewPoisson(s *sim.Simulator, rng *rand.Rand, flow int, size units.Bytes, rate units.Rate, sink Sink) *Poisson {
	if size <= 0 || rate <= 0 {
		panic(fmt.Sprintf("poisson source: invalid size %v or rate %v", size, rate))
	}
	if rng == nil || sink == nil {
		panic("poisson source: nil rng or sink")
	}
	return &Poisson{
		flow:       flow,
		packetSize: size,
		mean:       size.Bits() / rate.BitsPerSecond(),
		sim:        s,
		rng:        rng,
		sink:       sink,
	}
}

// Start begins emission with a randomized first arrival.
func (p *Poisson) Start() {
	p.sim.After(sim.Exponential(p.rng, p.mean), p.emit)
}

// Stop halts packet generation.
func (p *Poisson) Stop() { p.stopped = true }

// Seq returns the number of packets generated so far.
func (p *Poisson) Seq() uint64 { return p.seq }

func (p *Poisson) emit() {
	if p.stopped {
		return
	}
	now := p.sim.Now()
	p.sink.Receive(&packet.Packet{
		Flow:    p.flow,
		Size:    p.packetSize,
		Created: now,
		Arrived: now,
		Seq:     p.seq,
	})
	p.seq++
	p.sim.After(sim.Exponential(p.rng, p.mean), p.emit)
}
