package source

import (
	"testing"

	"bufqos/internal/sim"
)

// TestSendRingMatchesReferenceMaps drives the ring and the map-based
// send records it replaced through the same randomized op sequence and
// demands identical answers. Ops mimic the TCP source's usage:
// record(nxt), record(una) for a retransmit + markRetx, sample over
// [una, ack), advance(ack).
func TestSendRingMatchesReferenceMaps(t *testing.T) {
	rng := sim.NewRand(sim.DeriveSeed(1, 99))
	var r sendRing
	sendTime := map[uint64]float64{}
	retx := map[uint64]bool{}
	una, nxt := uint64(0), uint64(0)
	now := 0.0
	for op := 0; op < 20000; op++ {
		now += rng.Float64()
		switch k := rng.Intn(4); {
		case k == 0 || una == nxt: // emit new data
			r.record(nxt, now)
			sendTime[nxt] = now
			delete(retx, nxt)
			nxt++
		case k == 1: // retransmit the first hole
			r.record(una, now)
			sendTime[una] = now
			delete(retx, una)
			r.markRetx(una)
			retx[una] = true
		default: // cumulative ACK of 1..8 segments
			ack := una + 1 + uint64(rng.Intn(8))
			if ack > nxt {
				ack = nxt
			}
			for s := una; s < ack; s++ {
				ts, ok := r.sample(s)
				wts, wok := sendTime[s]
				if valid := wok && !retx[s]; ok != valid || (ok && ts != wts) {
					t.Fatalf("op %d: sample(%d) = (%v, %v), reference (%v, %v)", op, s, ts, ok, wts, wok && !retx[s])
				}
				delete(sendTime, s)
				delete(retx, s)
			}
			r.advance(ack)
			una = ack
		}
	}
	if len(sendTime) != int(nxt-una) {
		t.Fatalf("reference invariant broken: %d records for window %d", len(sendTime), nxt-una)
	}
}

// TestSendRingSteadyStateAllocFree pins the refactor's point: once the
// ring has grown to the window size, the per-ACK record/sample/advance
// cycle performs zero allocations. The old map-based records allocated
// on every insert.
func TestSendRingSteadyStateAllocFree(t *testing.T) {
	var r sendRing
	for s := uint64(0); s < 64; s++ {
		r.record(s, float64(s))
	}
	s := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		// Slide a 64-segment window forward: ack one, emit one.
		if _, ok := r.sample(s); !ok {
			t.Fatal("live record reported invalid")
		}
		r.advance(s + 1)
		r.record(s+64, float64(s))
		s++
	})
	if allocs != 0 {
		t.Fatalf("steady-state window slide allocates %v times per op, want 0", allocs)
	}
}

// BenchmarkSendRingWindowSlide measures the per-ACK cost of the send
// records at a typical small window (the "no slower at small n" half of
// the flow-state refactor's contract; see internal/sizing for the
// full-path benchmark).
func BenchmarkSendRingWindowSlide(b *testing.B) {
	var r sendRing
	const w = 16
	for s := uint64(0); s < w; s++ {
		r.record(s, float64(s))
	}
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		s := uint64(i)
		r.sample(s)
		r.advance(s + 1)
		r.record(s+w, float64(s))
	}
}
