package source

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// FeedbackGreedy is the packetized analogue of the paper's greedy flow
// in §2.1/Example 1: a source that always keeps its buffer occupancy at
// its admission limit ("its arrival process is such that Q₂(t) = B₂ for
// all t ≥ 0"). It watches the buffer manager and, whenever its
// occupancy drops below the target, immediately injects packets to top
// it back up.
//
// Unlike Saturating (open-loop offering at the link rate), this source
// adapts perfectly: it never wastes offered packets and keeps the
// occupancy pinned regardless of how fast the queue drains, which is
// the exact adversary the propositions are proved against.
type FeedbackGreedy struct {
	flow       int
	packetSize units.Bytes
	sim        *sim.Simulator
	mgr        buffer.Manager
	sink       Sink
	seq        uint64
	// Injected counts the packets actually admitted.
	Injected uint64
}

// NewFeedbackGreedy creates a greedy source for flow. mgr must be the
// same buffer manager the sink's link uses: the source reads its own
// occupancy from it. Call Kick after the topology is wired, and again
// from the link's OnDepart/OnDrop hooks (Attach does this wiring).
func NewFeedbackGreedy(s *sim.Simulator, flow int, size units.Bytes, mgr buffer.Manager, sink Sink) *FeedbackGreedy {
	if size <= 0 {
		panic(fmt.Sprintf("greedy source: invalid packet size %v", size))
	}
	if mgr == nil || sink == nil {
		panic("greedy source: nil manager or sink")
	}
	return &FeedbackGreedy{flow: flow, packetSize: size, sim: s, mgr: mgr, sink: sink}
}

// Kick injects packets until the buffer manager refuses one. It is
// idempotent and cheap when the flow is already at its limit.
func (g *FeedbackGreedy) Kick() {
	for {
		before := g.mgr.Occupancy(g.flow)
		p := &packet.Packet{
			Flow:    g.flow,
			Size:    g.packetSize,
			Created: g.sim.Now(),
			Arrived: g.sim.Now(),
			Seq:     g.seq,
		}
		g.seq++
		g.sink.Receive(p)
		if g.mgr.Occupancy(g.flow) == before {
			// Not admitted: the flow is at its limit.
			return
		}
		g.Injected++
	}
}

// DepartureHook returns a function suitable for sched.Link.OnDepart
// (or OnDrop): it re-tops the greedy flow after every event that frees
// buffer space. Chain it with any existing hook at the caller.
func (g *FeedbackGreedy) DepartureHook() func(p *packet.Packet) {
	return func(*packet.Packet) { g.Kick() }
}
