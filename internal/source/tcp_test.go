package source

import (
	"math"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// tcpLoop is a miniature closed loop for exercising the TCP source in
// isolation: segments cross a fixed one-way delay to a cumulative-ACK
// receiver, whose ACKs cross the same delay back. A drop predicate
// models in-network loss of chosen (Seq, attempt) copies.
type tcpLoop struct {
	s     *sim.Simulator
	src   *TCP
	delay float64
	drop  func(seq uint64, attempt int) bool

	attempts  map[uint64]int
	rcvNxt    uint64
	ooo       map[uint64]bool
	delivered int64
}

func newTCPLoop(s *sim.Simulator, delay float64) *tcpLoop {
	return &tcpLoop{s: s, delay: delay, attempts: map[uint64]int{}, ooo: map[uint64]bool{}}
}

func (n *tcpLoop) Receive(p *packet.Packet) {
	n.attempts[p.Seq]++
	if n.drop != nil && n.drop(p.Seq, n.attempts[p.Seq]) {
		return
	}
	seq := p.Seq
	n.s.After(n.delay, func() {
		n.delivered++
		if seq == n.rcvNxt {
			n.rcvNxt++
			for n.ooo[n.rcvNxt] {
				delete(n.ooo, n.rcvNxt)
				n.rcvNxt++
			}
		} else if seq > n.rcvNxt {
			n.ooo[seq] = true
		}
		ack := n.rcvNxt
		n.s.After(n.delay, func() {
			n.src.OnAck(&packet.Packet{Ack: true, AckSeq: ack})
		})
	})
}

func startLoop(s *sim.Simulator, delay float64, drop func(uint64, int) bool) *tcpLoop {
	n := newTCPLoop(s, delay)
	n.drop = drop
	n.src = NewTCP(s, TCPConfig{Flow: 0, SegmentSize: 500, PaceRate: 100 * units.Mbps}, n)
	n.src.Start()
	return n
}

func TestTCPSlowStartLossFree(t *testing.T) {
	s := sim.New()
	n := startLoop(s, 0.01, nil) // RTT 20 ms
	s.RunUntil(1.0)
	if n.src.Retransmits() != 0 || n.src.Timeouts() != 0 {
		t.Fatalf("loss-free run retransmitted: retx=%d timeouts=%d", n.src.Retransmits(), n.src.Timeouts())
	}
	if n.src.Cwnd() <= tcpInitialWindow {
		t.Errorf("cwnd never grew: %v", n.src.Cwnd())
	}
	// ~50 RTTs of unconstrained slow start should deliver far more than
	// the initial window's worth of segments, gap-free.
	if n.rcvNxt < 100 {
		t.Errorf("only %d contiguous segments delivered", n.rcvNxt)
	}
	if int64(n.rcvNxt) != n.delivered {
		t.Errorf("duplicates in a loss-free run: rcvNxt=%d delivered=%d", n.rcvNxt, n.delivered)
	}
}

func TestTCPFastRetransmit(t *testing.T) {
	s := sim.New()
	// Lose the first copy of segment 20; plenty of later segments
	// generate the duplicate ACKs.
	n := startLoop(s, 0.01, func(seq uint64, attempt int) bool {
		return seq == 20 && attempt == 1
	})
	s.RunUntil(1.0)
	if n.src.Retransmits() != 1 {
		t.Errorf("want exactly 1 retransmission, got %d", n.src.Retransmits())
	}
	if n.src.Timeouts() != 0 {
		t.Errorf("fast retransmit should have repaired the loss without a timeout, got %d", n.src.Timeouts())
	}
	if n.rcvNxt < 100 {
		t.Errorf("transfer stalled after the loss: rcvNxt=%d", n.rcvNxt)
	}
	// Loss must halve the window: after recovery cwnd restarts from
	// ssthresh, far below the pre-loss exponential trajectory.
	if n.src.Cwnd() > 10000 {
		t.Errorf("cwnd %v suggests the loss never registered", n.src.Cwnd())
	}
}

func TestTCPTimeoutRecovery(t *testing.T) {
	s := sim.New()
	// Lose every copy of segment 1 twice: with only segments 0..1 in
	// flight at that point there are not enough dupacks for fast
	// retransmit, so only the RTO can repair it.
	n := startLoop(s, 0.01, func(seq uint64, attempt int) bool {
		return seq == 1 && attempt <= 2
	})
	s.RunUntil(5.0)
	if n.src.Timeouts() == 0 {
		t.Fatal("RTO never fired")
	}
	if n.rcvNxt < 100 {
		t.Errorf("transfer never resumed after timeout: rcvNxt=%d", n.rcvNxt)
	}
}

func TestTCPRTOEstimator(t *testing.T) {
	s := sim.New()
	src := NewTCP(s, TCPConfig{Flow: 0, SegmentSize: 500, PaceRate: units.Mbps}, SinkFunc(func(*packet.Packet) {}))
	src.updateRTO(0.1)
	if src.srtt != 0.1 || src.rttvar != 0.05 {
		t.Errorf("first sample: srtt=%v rttvar=%v", src.srtt, src.rttvar)
	}
	if got, want := src.rto, 0.3; math.Abs(got-want) > 1e-12 { // srtt + 4·rttvar
		t.Errorf("rto=%v", got)
	}
	src.updateRTO(0.2)
	wantVar := 0.75*0.05 + 0.25*0.1
	wantSrtt := 0.875*0.1 + 0.125*0.2
	if math.Abs(src.rttvar-wantVar) > 1e-12 || math.Abs(src.srtt-wantSrtt) > 1e-12 {
		t.Errorf("second sample: srtt=%v (want %v) rttvar=%v (want %v)", src.srtt, wantSrtt, src.rttvar, wantVar)
	}
}

func TestTCPStopSilences(t *testing.T) {
	s := sim.New()
	n := startLoop(s, 0.01, nil)
	s.RunUntil(0.1)
	n.src.Stop()
	sent := len(n.attempts)
	s.RunUntil(2.0)
	if len(n.attempts) != sent {
		t.Errorf("segments emitted after Stop: %d -> %d", sent, len(n.attempts))
	}
}
