package sizing

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bufqos/internal/units"
)

// Rule is a buffer-sizing rule: B = Frac · C·RTT, divided by √n when
// Sqrt is set. The resolved size is floored at two segments so every
// cell can at least store-and-forward.
type Rule struct {
	// Name is the canonical spelling ("bdp", "bdp/2", "bdp/sqrtn",
	// "bdp/2sqrtn", ...) used in reports and CLI flags.
	Name string
	// Frac scales the bandwidth–delay product.
	Frac float64
	// Sqrt divides by √n (the many-flows rule).
	Sqrt bool
}

// The named rules of the default grid.
var (
	// RuleBDP is the classic B = C·RTT rule of thumb.
	RuleBDP = Rule{Name: "bdp", Frac: 1}
	// RuleHalfBDP is B = C·RTT/2.
	RuleHalfBDP = Rule{Name: "bdp/2", Frac: 0.5}
	// RuleSqrt is the many-flows rule B = C·RTT/√n.
	RuleSqrt = Rule{Name: "bdp/sqrtn", Frac: 1, Sqrt: true}
	// RuleHalfSqrt is B = C·RTT/(2√n), probing below the √n floor.
	RuleHalfSqrt = Rule{Name: "bdp/2sqrtn", Frac: 0.5, Sqrt: true}
)

// DefaultRules is the rule axis of the default grid.
var DefaultRules = []Rule{RuleBDP, RuleHalfBDP, RuleSqrt, RuleHalfSqrt}

// DefaultSchemes is the scheme axis of the default grid: the paper's
// FIFO ladder (tail-drop, per-flow thresholds, threshold sharing, RED)
// plus per-flow WFQ with sharing.
var DefaultSchemes = []string{"fifo+none", "fifo+threshold", "fifo+sharing", "fifo+red", "wfq+sharing"}

// ParseRule reads a rule spelling: "bdp", "bdp/<k>", "bdp/sqrtn", or
// "bdp/<k>sqrtn", where <k> is a positive number dividing the BDP.
func ParseRule(s string) (Rule, error) {
	r := Rule{Name: s, Frac: 1}
	rest, ok := strings.CutPrefix(s, "bdp")
	if !ok {
		return Rule{}, fmt.Errorf("sizing: rule %q does not start with \"bdp\"", s)
	}
	if rest == "" {
		return r, nil
	}
	den, ok := strings.CutPrefix(rest, "/")
	if !ok {
		return Rule{}, fmt.Errorf("sizing: rule %q: want bdp[/<k>][sqrtn]", s)
	}
	if den == "" {
		return Rule{}, fmt.Errorf("sizing: rule %q: want bdp[/<k>][sqrtn]", s)
	}
	if d, found := strings.CutSuffix(den, "sqrtn"); found {
		r.Sqrt = true
		den = d
	}
	if den != "" {
		k, err := strconv.ParseFloat(den, 64)
		if err != nil || k <= 0 {
			return Rule{}, fmt.Errorf("sizing: rule %q: %q is not a positive divisor", s, den)
		}
		r.Frac = 1 / k
	}
	return r, nil
}

// Resolve returns the buffer size the rule prescribes for n flows on a
// link of rate c with round-trip time rtt, floored at two segments.
func (r Rule) Resolve(c units.Rate, rtt float64, n int, segment units.Bytes) units.Bytes {
	b := r.Frac * c.BytesPerSecond() * rtt
	if r.Sqrt {
		b /= math.Sqrt(float64(n))
	}
	if floor := 2 * segment; b < float64(floor) {
		return floor
	}
	return units.Bytes(math.Round(b))
}

// CellSpec names one point of the sweep.
type CellSpec struct {
	// Flows is the population size n.
	Flows int
	// Rule sizes the bottleneck buffer.
	Rule Rule
	// Scheme is the bottleneck's scheme-registry spec (e.g.
	// "fifo+threshold", "wfq+sharing").
	Scheme string
	// Open switches the population from closed-loop TCP to open-loop
	// (σ,ρ)-profiled on-off sources.
	Open bool
}

// Grid crosses flow counts, rules, and schemes into cell specs, in the
// deterministic n-major order the default report uses.
func Grid(flows []int, rules []Rule, schemes []string, open bool) []CellSpec {
	cells := make([]CellSpec, 0, len(flows)*len(rules)*len(schemes))
	for _, n := range flows {
		for _, r := range rules {
			for _, s := range schemes {
				cells = append(cells, CellSpec{Flows: n, Rule: r, Scheme: s, Open: open})
			}
		}
	}
	return cells
}

// DefaultGrid is the committed benchmark's cell list: the full
// closed-loop cross product up to n = 10⁴, an open-loop slice, and
// reduced large-n cells (10⁵ and 10⁶ flows) probing the √n rule and
// the BDP rule where the full cross product would dominate the run
// time without adding information.
func DefaultGrid() []CellSpec {
	cells := Grid([]int{10, 100, 1000, 10000}, DefaultRules, DefaultSchemes, false)
	cells = append(cells, Grid([]int{100, 1000}, DefaultRules,
		[]string{"fifo+none", "fifo+threshold", "wfq+sharing"}, true)...)
	return append(cells,
		CellSpec{Flows: 100000, Rule: RuleSqrt, Scheme: "fifo+none"},
		CellSpec{Flows: 100000, Rule: RuleSqrt, Scheme: "fifo+threshold"},
		CellSpec{Flows: 1000000, Rule: RuleSqrt, Scheme: "fifo+none"},
		CellSpec{Flows: 1000000, Rule: RuleBDP, Scheme: "fifo+none"},
	)
}

// Config describes a sweep. Zero values take the defaults noted on each
// field, so Config{} runs the committed benchmark's configuration.
type Config struct {
	// LinkRate is the bottleneck capacity C (default 100 Mb/s).
	LinkRate units.Rate
	// RTT is the two-way propagation delay in seconds (default 40 ms);
	// C·RTT is the BDP every rule scales.
	RTT float64
	// SegmentSize is the data-packet size (default 1500 bytes).
	SegmentSize units.Bytes
	// Duration is the simulated horizon per cell in seconds (default 10).
	Duration float64
	// Warmup discards measurements before this time (default Duration/4).
	Warmup float64
	// Seed derives every cell's RNG stream (default 1).
	Seed int64
	// Workers fans cells over the experiment pool (0 = GOMAXPROCS);
	// reports are bit-identical at any setting.
	Workers int
	// Cells lists the sweep points (default DefaultGrid()).
	Cells []CellSpec
}

func (c *Config) linkRate() units.Rate {
	if c.LinkRate > 0 {
		return c.LinkRate
	}
	return units.MbitsPerSecond(100)
}

func (c *Config) rtt() float64 {
	if c.RTT > 0 {
		return c.RTT
	}
	return 0.040
}

func (c *Config) segmentSize() units.Bytes {
	if c.SegmentSize > 0 {
		return c.SegmentSize
	}
	return 1500
}

func (c *Config) duration() float64 {
	if c.Duration > 0 {
		return c.Duration
	}
	return 10
}

func (c *Config) warmup() float64 {
	if c.Warmup > 0 {
		return c.Warmup
	}
	return c.duration() / 4
}

func (c *Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c *Config) cells() []CellSpec {
	if len(c.Cells) > 0 {
		return c.Cells
	}
	return DefaultGrid()
}

// Cell is one sweep point's measurements.
type Cell struct {
	// Flows, Rule, Scheme, and Open echo the CellSpec.
	Flows  int
	Rule   string
	Scheme string
	Open   bool `json:",omitempty"`

	// Buffer is the resolved bottleneck buffer in bytes; BufferPkts the
	// same in segments.
	Buffer     units.Bytes
	BufferPkts float64
	// RequiredBuffer is the paper's equation-9 minimum for the cell's
	// declared (σ,ρ) population, and Bound whether Buffer meets it —
	// i.e. whether the Propositions 1/2 lossless guarantee is in force.
	RequiredBuffer units.Bytes
	Bound          bool

	// Utilization is delivered bottleneck throughput over capacity
	// during the measurement window; Loss the dropped/offered byte
	// ratio.
	Utilization float64
	Loss        float64
	// MeanDelayMs, P99DelayMs, and MaxDelayMs summarize the bottleneck
	// queueing delay (arrival to departure) in milliseconds.
	MeanDelayMs float64
	P99DelayMs  float64
	MaxDelayMs  float64
	// Fairness is the Jain index of per-flow goodput (closed loop) or
	// delivered bytes (open loop): 1 is perfectly even, 1/n maximally
	// skewed.
	Fairness float64

	// Retransmits and Timeouts total the TCP senders' recovery activity
	// (zero for open-loop cells).
	Retransmits int64 `json:",omitempty"`
	Timeouts    int64 `json:",omitempty"`

	// Events is the cell's simulation event count — a determinism
	// fingerprint that must not depend on the worker count.
	Events uint64
}

// Report is a completed sweep: the configuration echo plus one Cell per
// CellSpec, in spec order. It contains no timestamps or host details,
// so a re-run with the same Config is byte-identical.
type Report struct {
	LinkRateMbps float64
	RTT          float64
	SegmentSize  units.Bytes
	Duration     float64
	Warmup       float64
	Seed         int64
	Cells        []Cell
}

// jain returns the Jain fairness index (Σx)²/(n·Σx²) of the values, 0
// when every value is zero.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
