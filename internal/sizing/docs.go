package sizing

import "fmt"

// SqrtRegimeRows renders the report's closed-loop tail-drop cells as
// the markdown rows of the EXPERIMENTS.md √n-regime table, in report
// order. The docs drift test pins EXPERIMENTS.md to exactly these
// strings; regenerate them with `qsize -md BENCH_sizing.json`.
func SqrtRegimeRows(rep *Report) []string {
	var rows []string
	for _, c := range rep.Cells {
		if c.Open || c.Scheme != "fifo+none" {
			continue
		}
		rows = append(rows, fmt.Sprintf("| %d | %s | %s | %.0f | %.3f | %.4f | %.2f | %.3f |",
			c.Flows, c.Rule, c.Buffer, c.BufferPkts, c.Utilization, c.Loss, c.P99DelayMs, c.Fairness))
	}
	return rows
}

// SchemeLadderRows renders the report's n = 10, B = C·RTT closed-loop
// cells — one per scheme — as the markdown rows of the EXPERIMENTS.md
// scheme-ladder table, in report order.
func SchemeLadderRows(rep *Report) []string {
	var rows []string
	for _, c := range rep.Cells {
		if c.Open || c.Flows != 10 || c.Rule != RuleBDP.Name {
			continue
		}
		rows = append(rows, fmt.Sprintf("| `%s` | %.3f | %.4f | %.2f | %.3f | %d |",
			c.Scheme, c.Utilization, c.Loss, c.P99DelayMs, c.Fairness, c.Retransmits))
	}
	return rows
}
