package sizing

import (
	"context"
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
		err  bool
	}{
		{in: "bdp", want: Rule{Name: "bdp", Frac: 1}},
		{in: "bdp/2", want: Rule{Name: "bdp/2", Frac: 0.5}},
		{in: "bdp/sqrtn", want: Rule{Name: "bdp/sqrtn", Frac: 1, Sqrt: true}},
		{in: "bdp/2sqrtn", want: Rule{Name: "bdp/2sqrtn", Frac: 0.5, Sqrt: true}},
		{in: "bdp/4", want: Rule{Name: "bdp/4", Frac: 0.25}},
		{in: "bdp/4sqrtn", want: Rule{Name: "bdp/4sqrtn", Frac: 0.25, Sqrt: true}},
		{in: "cbr", err: true},
		{in: "bdp/", err: true},
		{in: "bdp/0", err: true},
		{in: "bdp/-2", err: true},
		{in: "bdpx", err: true},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseRule(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestRuleResolve(t *testing.T) {
	c := defaultConfig()
	// BDP at the defaults: 100 Mb/s · 40 ms = 500 KB.
	if got := RuleBDP.Resolve(c.linkRate(), c.rtt(), 10, c.segmentSize()); got != 500000 {
		t.Errorf("bdp: %v bytes, want 500000", int64(got))
	}
	// √n rule at n=100 divides by 10.
	if got := RuleSqrt.Resolve(c.linkRate(), c.rtt(), 100, c.segmentSize()); got != 50000 {
		t.Errorf("bdp/sqrtn at n=100: %v bytes, want 50000", int64(got))
	}
	// The floor: at n=10⁶ the rule prescribes 500 bytes, clamped to two
	// segments.
	if got := RuleSqrt.Resolve(c.linkRate(), c.rtt(), 1000000, c.segmentSize()); got != 3000 {
		t.Errorf("bdp/sqrtn at n=10⁶: %v bytes, want the 3000-byte floor", int64(got))
	}
}

func defaultConfig() *Config { return &Config{} }

func TestJain(t *testing.T) {
	if got := jain([]float64{5, 5, 5, 5}); got != 1 {
		t.Errorf("even split: %v, want 1", got)
	}
	if got := jain([]float64{1, 0, 0, 0}); got != 0.25 {
		t.Errorf("single winner of 4: %v, want 0.25", got)
	}
	if got := jain([]float64{0, 0}); got != 0 {
		t.Errorf("no traffic: %v, want 0", got)
	}
}

func TestDefaultGridShape(t *testing.T) {
	cells := DefaultGrid()
	if len(cells) != 108 {
		t.Fatalf("default grid has %d cells, want 108", len(cells))
	}
	var open, big int
	for _, c := range cells {
		if c.Open {
			open++
		}
		if c.Flows >= 100000 {
			big++
			if c.Open {
				t.Errorf("large-n cell %+v must be closed-loop", c)
			}
		}
	}
	if open != 24 {
		t.Errorf("grid has %d open-loop cells, want 24", open)
	}
	if big != 4 {
		t.Errorf("grid has %d large-n cells, want 4", big)
	}
}

// TestSweepWorkerBitIdentity pins the determinism contract: the same
// Config serializes to byte-identical JSON at any worker count.
func TestSweepWorkerBitIdentity(t *testing.T) {
	cfg := Config{
		Duration: 1.5,
		Cells: append(
			Grid([]int{10, 50}, []Rule{RuleSqrt, RuleHalfBDP}, []string{"fifo+none", "fifo+threshold"}, false),
			Grid([]int{20}, []Rule{RuleSqrt}, []string{"wfq+sharing", "fifo+red"}, true)...),
	}
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		cfg.Workers = workers
		rep, err := Sweep(t.Context(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("workers=%d report diverges from workers=1", workers)
		}
	}
}

// TestSweepMemoryCeiling pins the flow-state refactor's memory claim: a
// 10⁵-flow closed-loop cell peaks under 512 MB of live heap — per-flow
// state in flat arrays at small constants (the map era held dozens of
// pointer-laden map entries per flow). The peak is sampled by a polling
// goroutine, so the measured value is a lower bound on the true peak;
// the budget leaves generous headroom above the ~150 MB measured at the
// time of writing.
func TestSweepMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-flow cell is a few hundred ms; skipped in -short")
	}
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	_, err := Sweep(context.Background(), Config{
		Duration: 2,
		Workers:  1,
		Cells:    []CellSpec{{Flows: 100000, Rule: RuleSqrt, Scheme: "fifo+none"}},
	})
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	const budget = 512 << 20
	if p := peak.Load(); p > base.HeapAlloc+budget {
		t.Fatalf("peak heap %d MB exceeds the %d MB budget above the %d MB baseline — per-flow state is no longer O(F) with small constants",
			p>>20, budget>>20, base.HeapAlloc>>20)
	}
}

// BenchmarkSmallCell measures the full single-link closed-loop path at
// small n — the "no slower at small n" half of the flow-state
// refactor's contract (the ring microbenchmarks in internal/source and
// internal/network cover the per-op costs).
func BenchmarkSmallCell(b *testing.B) {
	cfg := Config{
		Duration: 1,
		Workers:  1,
		Cells:    []CellSpec{{Flows: 10, Rule: RuleBDP, Scheme: "fifo+none"}},
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := Sweep(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
