package sizing

import (
	"context"
	"fmt"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/network"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// tcpAckSize is the size of a pure acknowledgement (the closed-loop
// engine's convention: 40 bytes, a TCP/IP header).
const tcpAckSize units.Bytes = 40

// Sweep runs every cell of cfg and returns the report. Cells are
// independent simulations fanned over the experiment pool; each writes
// its pre-assigned Report slot, so the result is bit-identical at any
// Workers count. A cancelled ctx aborts unstarted cells and returns the
// context error.
func Sweep(ctx context.Context, cfg Config) (*Report, error) {
	cells := cfg.cells()
	rep := &Report{
		LinkRateMbps: cfg.linkRate().Mbits(),
		RTT:          cfg.rtt(),
		SegmentSize:  cfg.segmentSize(),
		Duration:     cfg.duration(),
		Warmup:       cfg.warmup(),
		Seed:         cfg.seed(),
		Cells:        make([]Cell, len(cells)),
	}
	err := experiment.ForEachJob(ctx, cfg.Workers, len(cells), nil, nil, func(i int) error {
		cell, err := runCell(&cfg, cells[i], sim.DeriveSeed(cfg.seed(), i))
		if err != nil {
			return fmt.Errorf("sizing: cell %d (n=%d %s %s): %w",
				i, cells[i].Flows, cells[i].Rule.Name, cells[i].Scheme, err)
		}
		rep.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runCell simulates one (n, rule, scheme) bottleneck and measures it.
func runCell(cfg *Config, spec CellSpec, seed int64) (Cell, error) {
	if spec.Flows <= 0 {
		return Cell{}, fmt.Errorf("non-positive flow count %d", spec.Flows)
	}
	n := spec.Flows
	c := cfg.linkRate()
	rtt := cfg.rtt()
	segment := cfg.segmentSize()
	warmup := cfg.warmup()
	duration := cfg.duration()
	buffer := spec.Rule.Resolve(c, rtt, n, segment)

	// The declared contract of every flow: ρ an even 95% share of the
	// link (so the population is schedulable and equation 9 is finite),
	// σ two segments, peak capped well above ρ. Threshold-based managers
	// partition the buffer from exactly these profiles.
	rho := units.Rate(0.95 * c.BitsPerSecond() / float64(n))
	peak := units.Rate(20 * rho.BitsPerSecond())
	if peak > c {
		peak = c
	}
	specs := make([]packet.FlowSpec, n)
	for i := range specs {
		specs[i] = packet.FlowSpec{PeakRate: peak, TokenRate: rho, BucketSize: 2 * segment}
	}
	required, err := core.RequiredBufferFIFO(specs, c)
	if err != nil {
		return Cell{}, err
	}

	sc, err := scheme.Parse(spec.Scheme)
	if err != nil {
		return Cell{}, err
	}
	s := sim.New()
	mgr, scheduler, err := sc.Build(scheme.Config{
		Specs:      specs,
		LinkRate:   c,
		Buffer:     buffer,
		PacketSize: segment,
		Now:        s.Now,
		Seed:       seed,
	})
	if err != nil {
		return Cell{}, err
	}

	col := stats.NewCollector(n, warmup)
	link := sched.NewLink(s, c, scheduler, mgr, col)
	delivery := network.NewDeliveryLight(s, n)
	qdelay := stats.NewDelayTracker(0)

	// Per-flow propagation: half the flow's RTT after the bottleneck,
	// the other half on the ACK path. RTTs are spread uniformly over
	// [0.5, 1.5]·RTT (mean RTT, the value the rules size against) — with
	// one shared RTT the closed-loop population phase-locks and drop-tail
	// starves late starters outright, a synchronization artifact the
	// buffer-sizing literature removes the same way.
	rng := sim.NewRand(seed)
	props := make([]float64, n)
	for i := range props {
		props[i] = (rtt / 2) * (0.5 + rng.Float64())
	}
	link.OnDepart = func(p *packet.Packet) {
		if now := s.Now(); now >= warmup {
			qdelay.Add(now - p.Arrived)
		}
		s.After(props[p.Flow], func() {
			p.Arrived = s.Now()
			delivery.Receive(p)
		})
	}
	var tcps []*source.TCP
	if spec.Open {
		// Open-loop population: on-off sources matching the declared
		// (σ,ρ,peak) profiles in the paper's parameterization.
		for i := 0; i < n; i++ {
			srcRng := sim.NewRand(sim.DeriveSeed(seed, i))
			source.NewOnOff(s, srcRng, source.OnOffConfig{
				Flow:       i,
				PacketSize: segment,
				PeakRate:   peak,
				AvgRate:    rho,
				MeanBurst:  2 * segment,
			}, link).Start()
		}
	} else {
		// Closed-loop population: NewReno senders paced at link speed,
		// ACKed from the far end across the reverse propagation delay.
		// Starts are staggered over two RTTs — enough jitter to split
		// the slow-start bursts across event times, short enough that
		// every flow joins the opening contention (a long stagger lets
		// the first starter pin the queue full and lock everyone out).
		tcps = make([]*source.TCP, n)
		link.OnDrop = func(p *packet.Packet) { tcps[p.Flow].OnDrop(p) }
		spread := 2 * rtt
		for i := 0; i < n; i++ {
			tcps[i] = source.NewTCP(s, source.TCPConfig{
				Flow:        i,
				SegmentSize: segment,
				PaceRate:    c,
			}, link)
			delivery.SetAcker(i, tcpAckSize, func(ap *packet.Packet) {
				s.After(props[ap.Flow], func() { tcps[ap.Flow].OnAck(ap) })
			})
			s.At(rng.Float64()*spread, tcps[i].Start)
		}
	}

	s.RunUntil(duration)

	cell := Cell{
		Flows:          n,
		Rule:           spec.Rule.Name,
		Scheme:         sc.Spec(),
		Open:           spec.Open,
		Buffer:         buffer,
		BufferPkts:     float64(buffer) / float64(segment),
		RequiredBuffer: required,
		Bound:          buffer >= required,
		Utilization:    col.AggregateThroughput(duration).BitsPerSecond() / c.BitsPerSecond(),
		Loss:           col.LossRatio(),
		MeanDelayMs:    1e3 * qdelay.Mean(),
		MaxDelayMs:     1e3 * qdelay.Max(),
		Events:         s.Steps(),
	}
	if qdelay.Count() > 0 { // Quantile is NaN on an empty tracker
		cell.P99DelayMs = 1e3 * qdelay.Quantile(0.99)
	}
	goodput := make([]float64, n)
	if spec.Open {
		for i := 0; i < n; i++ {
			goodput[i] = float64(col.Flow(i).Departed.Total().Bytes)
		}
	} else {
		for i, t := range tcps {
			goodput[i] = float64(delivery.Goodput(i).Bytes)
			cell.Retransmits += t.Retransmits()
			cell.Timeouts += t.Timeouts()
		}
	}
	cell.Fairness = jain(goodput)
	return cell, nil
}
