// Package sizing sweeps buffer-sizing rules against flow count: n
// closed-loop TCP flows (or an open-loop (σ,ρ) on-off population)
// share one bottleneck whose buffer is set by a rule such as B = C·RTT
// (the 1998 rule of thumb the paper's era assumed) or B = C·RTT/√n
// (the many-flows correction of Spang–Arslan–McKeown, "Updating the
// Theory of Buffer Sizing"), crossed with the scheme registry's buffer
// managers and schedulers. Each (n, B-rule, scheme) cell reports
// bottleneck utilization, loss, queueing-delay quantiles, and the Jain
// fairness of per-flow goodput, so the sweep maps where the √n regime
// holds and where the paper's Propositions 1/2 thresholds stop binding
// (B falls below equation 9's requirement and the lossless guarantee is
// vacuously off).
//
// Cells are independent simulations fanned over the experiment pool;
// results land in pre-assigned slots, so a Report is bit-identical for
// a given Config at any worker count. The flat per-flow state of the
// underlying packages (index-based send records, reassembly bitmaps,
// and collectors — no per-flow maps) keeps one cell's memory O(n) with
// small constants, which is what makes the n = 10⁶ end of the default
// grid runnable. cmd/qsize is the command-line front end; the committed
// BENCH_sizing.json is a Sweep of DefaultGrid.
package sizing
