package sizing_test

import (
	"context"
	"fmt"

	"bufqos/internal/sizing"
)

// A sweep is a list of (n, buffer-rule, scheme) cells; Config{} runs
// the committed benchmark's grid, and Cells selects any subset. Here
// one cell puts 64 closed-loop TCP flows through a tail-drop bottleneck
// buffered by the many-flows rule B = C·RTT/√n. Reports are
// deterministic for a fixed seed at any worker count.
func ExampleSweep() {
	rep, err := sizing.Sweep(context.Background(), sizing.Config{
		Duration: 4,
		Cells: []sizing.CellSpec{
			{Flows: 64, Rule: sizing.RuleSqrt, Scheme: "fifo+none"},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	c := rep.Cells[0]
	fmt.Printf("n=%d %s %s: B=%v (%.0f pkts)\n", c.Flows, c.Rule, c.Scheme, c.Buffer, c.BufferPkts)
	fmt.Printf("utilized ≥ 90%%: %v\n", c.Utilization >= 0.90)
	fmt.Printf("props 1/2 binding: %v\n", c.Bound)
	// Output:
	// n=64 bdp/sqrtn fifo+none: B=62.5KB (42 pkts)
	// utilized ≥ 90%: true
	// props 1/2 binding: false
}
