package sim

import (
	"reflect"
	"testing"
)

// TestStampedOrdering checks that equal-time events order by their
// scheduling stamp before insertion order, which is what lets a shard
// merge cross-shard arrivals into the position a global kernel would
// have used.
func TestStampedOrdering(t *testing.T) {
	s := New()
	var got []string
	s.At(5, func() { got = append(got, "local") })        // sched = 0
	s.AtStamped(5, 3, func() { got = append(got, "b") })  // later stamp
	s.AtStamped(5, 1, func() { got = append(got, "a") })  // earliest stamp... after "local"?
	s.AtStamped(5, 3, func() { got = append(got, "b2") }) // stamp tie → insertion order
	s.RunUntil(10)
	want := []string{"local", "a", "b", "b2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}

// TestStampedMatchesLocalOrder checks the comparator refactor is a
// no-op for purely local workloads: At assigns sched = now, which is
// nondecreasing in seq, so (time, sched, seq) equals (time, seq).
func TestStampedMatchesLocalOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		s.At(2, func() { got = append(got, i) })
	}
	s.At(1, func() {
		// Scheduled at time 0 but executing at 1: children scheduled now
		// carry sched=1 > 0, yet the same fire time as the batch above —
		// they must run after all seq-earlier sched-0 events.
		s.At(2, func() { got = append(got, 100) })
	})
	s.RunUntil(3)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 100}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}

// TestAtStampedValidation checks the argument panics.
func TestAtStampedValidation(t *testing.T) {
	s := New()
	for name, fn := range map[string]func(){
		"stamp after fire time": func() { s.AtStamped(1, 2, func() {}) },
		"nan stamp":             func() { s.AtStamped(1, nan(), func() {}) },
		"past event":            func() { s.RunUntil(5); s.AtStamped(1, 1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func nan() float64 { return 0.0 / zero }

var zero = 0.0

// TestBatchCancelSameTime checks the batch dispatcher honours a cancel
// issued by an earlier event of the same instant: the cancelled
// callback must not fire, exactly as with one-at-a-time dispatch.
func TestBatchCancelSameTime(t *testing.T) {
	s := New()
	fired := false
	var victim Event
	s.At(5, func() { victim.Cancel() })
	victim = s.At(5, func() { fired = true })
	survived := false
	s.At(5, func() { survived = true })
	s.RunUntil(10)
	if fired {
		t.Error("cancelled same-time event fired")
	}
	if !survived {
		t.Error("later same-time event did not fire")
	}
	if got := s.Steps(); got != 2 {
		t.Errorf("Steps() = %d, want 2 (cancelled event must not count)", got)
	}
}

// TestBatchCancelTwice checks double-cancelling an in-batch event stays
// a no-op (and is counted once).
func TestBatchCancelTwice(t *testing.T) {
	s := New()
	var victim Event
	s.At(5, func() { victim.Cancel(); victim.Cancel() })
	victim = s.At(5, func() { t.Error("cancelled event fired") })
	s.RunUntil(10)
}

// TestRunBeforeExcludesBoundary checks RunBefore's strict horizon:
// events at exactly t stay queued and the clock does not jump to t.
func TestRunBeforeExcludesBoundary(t *testing.T) {
	s := New()
	var got []float64
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.At(3, func() { got = append(got, 3) })
	s.RunBefore(2)
	if want := []float64{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RunBefore(2) executed %v, want %v", got, want)
	}
	if s.Now() != 1 {
		t.Errorf("Now() = %v after RunBefore(2), want 1 (last executed event)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunUntil(3)
	if want := []float64{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("after RunUntil(3) executed %v, want %v", got, want)
	}
}

// TestReserve checks pre-sizing: scheduling within the reserved
// capacity must not grow the arena or heap.
func TestReserve(t *testing.T) {
	s := New()
	const n = 4096
	s.Reserve(n)
	if cap(s.nodes) < n || cap(s.heap) < n {
		t.Fatalf("Reserve(%d) left caps nodes=%d heap=%d", n, cap(s.nodes), cap(s.heap))
	}
	nodesCap, heapCap := cap(s.nodes), cap(s.heap)
	for i := 0; i < n; i++ {
		s.At(float64(i), func() {})
	}
	if cap(s.nodes) != nodesCap || cap(s.heap) != heapCap {
		t.Errorf("caps grew: nodes %d→%d heap %d→%d", nodesCap, cap(s.nodes), heapCap, cap(s.heap))
	}
	s.RunUntil(n)
	if s.Steps() != n {
		t.Errorf("Steps() = %d, want %d", s.Steps(), n)
	}
}

// TestBatchReentrantCallback checks a callback scheduling more work at
// the same instant: the new event belongs to the next batch and still
// fires within the same RunUntil.
func TestBatchReentrantCallback(t *testing.T) {
	s := New()
	var got []string
	s.At(5, func() {
		got = append(got, "first")
		s.At(5, func() { got = append(got, "child") })
	})
	s.At(5, func() { got = append(got, "second") })
	s.RunUntil(5)
	want := []string{"first", "second", "child"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}
