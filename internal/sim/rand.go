package sim

import "math/rand"

// NewRand returns a deterministic pseudo-random source for the given
// seed. Every stochastic component in the simulator receives its own
// source so that adding a component never perturbs the random streams of
// the others.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// DeriveSeed combines a run-level seed with a component identifier into
// a stream-specific seed. The mixing uses splitmix64 so that nearby
// (seed, id) pairs produce uncorrelated streams.
func DeriveSeed(seed int64, id int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Exponential draws an exponentially distributed value with the given
// mean from r. A zero or negative mean returns 0, which lets callers
// express degenerate (always-on or always-off) sources naturally.
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}
