// Package sim implements the discrete-event simulation kernel used by
// every experiment in this repository.
//
// The kernel is deliberately small: a simulator owns a current clock and
// a min-heap of pending events. Events scheduled for the same instant
// fire in the order they were scheduled (a monotone sequence number
// breaks ties), which makes FIFO queueing semantics exact and the whole
// simulation deterministic for a fixed seed.
//
// The implementation is allocation-free in steady state. Event payloads
// live in an index-managed arena with a free-list, the priority queue is
// a 4-ary heap of arena indices (shallower than a binary heap, so fewer
// cache-missing comparisons per sift), and At/After hand out value
// handles instead of heap pointers. Cancelled events are removed from
// the heap eagerly rather than lingering until popped, so a workload
// that schedules and cancels heavily (shapers, churn) keeps the queue
// exactly as large as its live event count.
package sim

import (
	"fmt"
	"math"

	"bufqos/internal/metrics"
)

// node is one arena slot. The generation counter distinguishes a live
// occupant from a recycled slot, so stale Event handles stay inert.
type node struct {
	time float64
	seq  uint64
	fn   func()
	gen  uint32
	pos  int32 // heap position, -1 when not queued
}

// Event is a value handle to a scheduled callback. The zero Event is
// inert; events are created through Simulator.At and Simulator.After.
type Event struct {
	s    *Simulator
	id   int32
	gen  uint32
	time float64
}

// Time returns the simulated time at which the event fires (or fired).
func (e Event) Time() float64 { return e.time }

// Cancel removes a pending event from the queue. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	n := &e.s.nodes[e.id]
	if n.gen != e.gen || n.pos < 0 {
		return
	}
	e.s.removeAt(int(n.pos))
	e.s.freeNode(e.id)
	e.s.mCancelled.Inc()
}

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	if e.s == nil {
		return false
	}
	n := &e.s.nodes[e.id]
	return n.gen == e.gen && n.pos >= 0
}

// Simulator is a discrete-event simulator. The zero value is not ready
// for use; call New.
type Simulator struct {
	now    float64
	seq    uint64
	nsteps uint64
	nodes  []node
	free   []int32
	heap   []int32 // 4-ary min-heap of arena indices, ordered by (time, seq)

	// Metric handles, nil unless Instrument was called. Nil handles
	// no-op, so the disabled path costs one branch per operation.
	mScheduled  *metrics.Counter
	mDispatched *metrics.Counter
	mCancelled  *metrics.Counter
	mHeapDepth  *metrics.Gauge
}

// New returns a simulator with its clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Instrument registers the kernel's metrics with r: events scheduled,
// dispatched, and cancelled (counters) and the event-heap depth
// high-water (gauge). A nil registry leaves the kernel uninstrumented,
// which is the free fast path.
func (s *Simulator) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	s.mScheduled = r.Counter("sim.events_scheduled")
	s.mDispatched = r.Counter("sim.events_dispatched")
	s.mCancelled = r.Counter("sim.events_cancelled")
	s.mHeapDepth = r.Gauge("sim.heap_depth")
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns how many events have been executed so far. Useful for
// loop-detection in tests and for benchmark reporting.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// Pending returns the number of events currently queued. Cancelled
// events leave the queue immediately, so the count is exact.
func (s *Simulator) Pending() int { return len(s.heap) }

// At schedules fn to run at absolute time t. It panics if t is in the
// past or not a finite number: such bugs would otherwise manifest as
// silently reordered events.
func (s *Simulator) At(t float64, fn func()) Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: non-finite event time %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	id := s.alloc()
	n := &s.nodes[id]
	n.time = t
	n.seq = s.seq
	n.fn = fn
	s.seq++
	s.heap = append(s.heap, id)
	n.pos = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
	// Gauge.Set is not inlinable (CAS loop), so gate the pair on one
	// predictable branch instead of paying a call on the disabled path.
	if s.mScheduled != nil {
		s.mScheduled.Inc()
		s.mHeapDepth.Set(int64(len(s.heap)))
	}
	return Event{s: s, id: id, gen: n.gen, time: t}
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event and reports whether one was
// executed.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	id := s.heap[0]
	n := &s.nodes[id]
	fn := n.fn
	s.now = n.time
	s.nsteps++
	s.removeAt(0)
	s.freeNode(id)
	s.mDispatched.Inc()
	fn()
	return true
}

// RunUntil executes events in order until the clock would pass t or the
// queue drains. Events scheduled exactly at t do fire. On return the
// clock reads exactly t (even if the queue drained earlier), so
// measurement intervals are well defined.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is in the past (now %v)", t, s.now))
	}
	for len(s.heap) > 0 {
		if s.nodes[s.heap[0]].time > t {
			break
		}
		s.Step()
	}
	s.now = t
}

// Run executes events until the queue drains. It panics after maxSteps
// events as a runaway guard; pass 0 for the default of 1e9.
func (s *Simulator) Run(maxSteps uint64) {
	if maxSteps == 0 {
		maxSteps = 1e9
	}
	start := s.nsteps
	for s.Step() {
		if s.nsteps-start > maxSteps {
			panic("sim: event budget exhausted; likely an event loop")
		}
	}
}

// alloc returns a free arena slot, recycling before growing.
func (s *Simulator) alloc() int32 {
	if k := len(s.free); k > 0 {
		id := s.free[k-1]
		s.free = s.free[:k-1]
		return id
	}
	s.nodes = append(s.nodes, node{pos: -1})
	return int32(len(s.nodes) - 1)
}

// freeNode retires an arena slot: the generation bump invalidates any
// outstanding handles and the callback reference is dropped so the
// arena never pins dead closures.
func (s *Simulator) freeNode(id int32) {
	n := &s.nodes[id]
	n.fn = nil
	n.gen++
	n.pos = -1
	s.free = append(s.free, id)
}

// less orders arena indices by (time, seq).
func (s *Simulator) less(a, b int32) bool {
	na, nb := &s.nodes[a], &s.nodes[b]
	if na.time != nb.time {
		return na.time < nb.time
	}
	return na.seq < nb.seq
}

// removeAt deletes the heap entry at position i, restoring heap order.
func (s *Simulator) removeAt(i int) {
	last := len(s.heap) - 1
	moved := s.heap[last]
	s.heap = s.heap[:last]
	if i == last {
		return
	}
	s.heap[i] = moved
	s.nodes[moved].pos = int32(i)
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

func (s *Simulator) siftUp(i int) {
	id := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(id, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.nodes[s.heap[i]].pos = int32(i)
		i = parent
	}
	s.heap[i] = id
	s.nodes[id].pos = int32(i)
}

// siftDown restores heap order below i and reports whether i moved.
func (s *Simulator) siftDown(i int) bool {
	id := s.heap[i]
	start := i
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.less(s.heap[best], id) {
			break
		}
		s.heap[i] = s.heap[best]
		s.nodes[s.heap[i]].pos = int32(i)
		i = best
	}
	s.heap[i] = id
	s.nodes[id].pos = int32(i)
	return i != start
}
