// Package sim implements the discrete-event simulation kernel used by
// every experiment in this repository.
//
// The kernel is deliberately small: a simulator owns a current clock and
// a min-heap of pending events. Events scheduled for the same instant
// fire in the order they were scheduled (a monotone sequence number
// breaks ties), which makes FIFO queueing semantics exact and the whole
// simulation deterministic for a fixed seed.
//
// The implementation is allocation-free in steady state. Event payloads
// live in an index-managed arena with a free-list, the priority queue is
// a 4-ary heap of arena indices (shallower than a binary heap, so fewer
// cache-missing comparisons per sift), and At/After hand out value
// handles instead of heap pointers. Cancelled events are removed from
// the heap eagerly rather than lingering until popped, so a workload
// that schedules and cancels heavily (shapers, churn) keeps the queue
// exactly as large as its live event count.
package sim

import (
	"fmt"
	"math"

	"bufqos/internal/metrics"
)

// node is one arena slot. The generation counter distinguishes a live
// occupant from a recycled slot, so stale Event handles stay inert.
//
// sched is the simulated time at which the event was scheduled. For
// At/After it is the kernel's clock at the call; AtStamped lets a
// caller supply it explicitly (the sharded topology engine stamps
// cross-shard arrivals with their upstream departure time, so a merged
// heap reproduces the order a single global kernel would have used).
type node struct {
	time  float64
	sched float64
	seq   uint64
	fn    func()
	gen   uint32
	pos   int32 // heap position, -1 free, posInBatch while batch-dispatching
}

// posInBatch marks a node that has been popped into the current
// dispatch batch but has not executed yet. Cancelling such a node nils
// its callback instead of freeing the slot (the batch loop owns it).
const posInBatch int32 = -2

// Event is a value handle to a scheduled callback. The zero Event is
// inert; events are created through Simulator.At and Simulator.After.
type Event struct {
	s    *Simulator
	id   int32
	gen  uint32
	time float64
}

// Time returns the simulated time at which the event fires (or fired).
func (e Event) Time() float64 { return e.time }

// Cancel removes a pending event from the queue. Cancelling an event
// that already fired (or was already cancelled) is a no-op. An event
// that shares the current dispatch instant may be cancelled by an
// earlier event of the same batch: its callback is nilled and the batch
// loop skips it, preserving the exact semantics of one-at-a-time
// dispatch.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	n := &e.s.nodes[e.id]
	if n.gen != e.gen {
		return
	}
	if n.pos == posInBatch {
		if n.fn != nil {
			n.fn = nil
			e.s.mCancelled.Inc()
		}
		return
	}
	if n.pos < 0 {
		return
	}
	e.s.removeAt(int(n.pos))
	e.s.freeNode(e.id)
	e.s.mCancelled.Inc()
}

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	if e.s == nil {
		return false
	}
	n := &e.s.nodes[e.id]
	return n.gen == e.gen && n.pos >= 0
}

// Simulator is a discrete-event simulator. The zero value is not ready
// for use; call New.
type Simulator struct {
	now    float64
	seq    uint64
	nsteps uint64
	nodes  []node
	free   []int32
	heap   []int32 // 4-ary min-heap of arena indices, ordered by (time, sched, seq)
	batch  []int32 // scratch for RunUntilBatch: one instant's events

	// Metric handles, nil unless Instrument was called. Nil handles
	// no-op, so the disabled path costs one branch per operation.
	mScheduled  *metrics.Counter
	mDispatched *metrics.Counter
	mCancelled  *metrics.Counter
	mHeapDepth  *metrics.Gauge
}

// New returns a simulator with its clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Instrument registers the kernel's metrics with r: events scheduled,
// dispatched, and cancelled (counters) and the event-heap depth
// high-water (gauge). A nil registry leaves the kernel uninstrumented,
// which is the free fast path.
func (s *Simulator) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	s.mScheduled = r.Counter("sim.events_scheduled")
	s.mDispatched = r.Counter("sim.events_dispatched")
	s.mCancelled = r.Counter("sim.events_cancelled")
	s.mHeapDepth = r.Gauge("sim.heap_depth")
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns how many events have been executed so far. Useful for
// loop-detection in tests and for benchmark reporting.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// Pending returns the number of events currently queued. Cancelled
// events leave the queue immediately, so the count is exact.
func (s *Simulator) Pending() int { return len(s.heap) }

// At schedules fn to run at absolute time t. It panics if t is in the
// past or not a finite number: such bugs would otherwise manifest as
// silently reordered events.
func (s *Simulator) At(t float64, fn func()) Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: non-finite event time %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	id := s.alloc()
	n := &s.nodes[id]
	n.time = t
	n.sched = s.now
	n.seq = s.seq
	n.fn = fn
	s.seq++
	s.heap = append(s.heap, id)
	n.pos = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
	// Gauge.Set is not inlinable (CAS loop), so gate the pair on one
	// predictable branch instead of paying a call on the disabled path.
	if s.mScheduled != nil {
		s.mScheduled.Inc()
		s.mHeapDepth.Set(int64(len(s.heap)))
	}
	return Event{s: s, id: id, gen: n.gen, time: t}
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AtStamped schedules fn to run at absolute time t carrying an explicit
// scheduling stamp. Same-time events order by (sched, insertion), so an
// event injected from another simulator (a cross-shard arrival) can
// reproduce the position it would have had in a single global kernel:
// stamp it with the time its producing event executed. sched must not
// exceed t, and t obeys the same bounds as At.
//
// For events created by At/After, sched is the kernel clock at the
// call. Since the clock never runs backwards, a later insertion always
// has an equal-or-later stamp, so for purely local workloads the
// (time, sched, seq) order is identical to the historical (time, seq)
// order — the stamp only discriminates when merging work from elsewhere.
func (s *Simulator) AtStamped(t, sched float64, fn func()) Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: non-finite event time %v", t))
	}
	if math.IsNaN(sched) || math.IsInf(sched, 0) {
		panic(fmt.Sprintf("sim: non-finite scheduling stamp %v", sched))
	}
	if sched > t {
		panic(fmt.Sprintf("sim: scheduling stamp %v after event time %v", sched, t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	id := s.alloc()
	n := &s.nodes[id]
	n.time = t
	n.sched = sched
	n.seq = s.seq
	n.fn = fn
	s.seq++
	s.heap = append(s.heap, id)
	n.pos = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
	if s.mScheduled != nil {
		s.mScheduled.Inc()
		s.mHeapDepth.Set(int64(len(s.heap)))
	}
	return Event{s: s, id: id, gen: n.gen, time: t}
}

// Reserve pre-sizes the arena, heap, and free list for at least n
// simultaneously pending events, so a large warm-up (a 100k-flow
// topology scheduling its sources) does no growth reallocations.
func (s *Simulator) Reserve(n int) {
	if cap(s.nodes) < n {
		nodes := make([]node, len(s.nodes), n)
		copy(nodes, s.nodes)
		s.nodes = nodes
	}
	if cap(s.heap) < n {
		heap := make([]int32, len(s.heap), n)
		copy(heap, s.heap)
		s.heap = heap
	}
	if cap(s.free) < n {
		free := make([]int32, len(s.free), n)
		copy(free, s.free)
		s.free = free
	}
}

// Step executes the next pending event and reports whether one was
// executed.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	id := s.heap[0]
	n := &s.nodes[id]
	fn := n.fn
	s.now = n.time
	s.nsteps++
	s.removeAt(0)
	s.freeNode(id)
	if s.mDispatched != nil {
		s.mDispatched.Inc()
	}
	fn()
	return true
}

// RunUntil executes events in order until the clock would pass t or the
// queue drains. Events scheduled exactly at t do fire. On return the
// clock reads exactly t (even if the queue drained earlier), so
// measurement intervals are well defined.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is in the past (now %v)", t, s.now))
	}
	s.RunUntilBatch(t)
}

// RunBefore executes events in order while they are strictly earlier
// than t, leaving the clock at the last executed event. Events at
// exactly t stay queued — the sharded engine runs each synchronization
// window [T, T+W) with RunBefore(T+W), so arrivals landing exactly on a
// window boundary execute in the next window, after the exchange that
// may deliver their equal-time cross-shard peers.
func (s *Simulator) RunBefore(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunBefore(%v) is in the past (now %v)", t, s.now))
	}
	s.dispatchBatches(t, true)
}

// RunUntilBatch is RunUntil's engine: it drains events in batches of
// identical timestamps, re-reading the heap root only between instants,
// and sets the clock to exactly t when done. Cancellations within a
// batch are honoured (the cancelled callback is skipped), so semantics
// match one-at-a-time dispatch exactly.
func (s *Simulator) RunUntilBatch(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntilBatch(%v) is in the past (now %v)", t, s.now))
	}
	s.dispatchBatches(t, false)
	s.now = t
}

// dispatchBatches pops and executes events up to t — strictly before t
// when exclusive — one instant at a time. All events of one instant are
// popped before any executes, so the heap is touched once per pop
// rather than once per pop-and-reinspect cycle in the caller's loop.
func (s *Simulator) dispatchBatches(t float64, exclusive bool) {
	mDispatched := s.mDispatched
	for len(s.heap) > 0 {
		id := s.heap[0]
		bt := s.nodes[id].time
		if bt > t || (exclusive && bt == t) {
			return
		}
		s.removeAt(0)
		if len(s.heap) == 0 || s.nodes[s.heap[0]].time != bt {
			// Fast path: the instant holds a single event — the normal
			// case in continuous time — so skip the batch bookkeeping.
			n := &s.nodes[id]
			fn := n.fn
			s.now = bt
			s.nsteps++
			s.freeNode(id)
			if mDispatched != nil {
				mDispatched.Inc()
			}
			fn()
			continue
		}
		// Gather the whole instant. New events scheduled at bt by the
		// batch's own callbacks are picked up by the next iteration, in
		// seq order after this batch — exactly as serial dispatch would.
		batch := s.batch[:0]
		s.batch = nil // re-entrant callbacks get fresh scratch
		s.nodes[id].pos = posInBatch
		batch = append(batch, id)
		for len(s.heap) > 0 {
			id := s.heap[0]
			n := &s.nodes[id]
			if n.time != bt {
				break
			}
			s.removeAt(0)
			n.pos = posInBatch
			batch = append(batch, id)
		}
		s.now = bt
		for _, id := range batch {
			n := &s.nodes[id]
			fn := n.fn
			s.freeNode(id)
			if fn == nil {
				continue // cancelled by an earlier event of this batch
			}
			s.nsteps++
			if mDispatched != nil {
				mDispatched.Inc()
			}
			fn()
		}
		s.batch = batch[:0] // hand the scratch back for the next instant
	}
}

// Run executes events until the queue drains. It panics after maxSteps
// events as a runaway guard; pass 0 for the default of 1e9.
func (s *Simulator) Run(maxSteps uint64) {
	if maxSteps == 0 {
		maxSteps = 1e9
	}
	start := s.nsteps
	for s.Step() {
		if s.nsteps-start > maxSteps {
			panic("sim: event budget exhausted; likely an event loop")
		}
	}
}

// alloc returns a free arena slot, recycling before growing.
func (s *Simulator) alloc() int32 {
	if k := len(s.free); k > 0 {
		id := s.free[k-1]
		s.free = s.free[:k-1]
		return id
	}
	s.nodes = append(s.nodes, node{pos: -1})
	return int32(len(s.nodes) - 1)
}

// freeNode retires an arena slot: the generation bump invalidates any
// outstanding handles and the callback reference is dropped so the
// arena never pins dead closures.
func (s *Simulator) freeNode(id int32) {
	n := &s.nodes[id]
	n.fn = nil
	n.gen++
	n.pos = -1
	s.free = append(s.free, id)
}

// less orders arena indices by (time, sched, seq). For events scheduled
// through At/After the sched stamp is nondecreasing in seq (the clock
// never runs backwards), so this order coincides with the historical
// (time, seq) order; the stamp only matters for AtStamped injections.
func (s *Simulator) less(a, b int32) bool {
	na, nb := &s.nodes[a], &s.nodes[b]
	if na.time != nb.time {
		return na.time < nb.time
	}
	if na.sched != nb.sched {
		return na.sched < nb.sched
	}
	return na.seq < nb.seq
}

// removeAt deletes the heap entry at position i, restoring heap order.
func (s *Simulator) removeAt(i int) {
	last := len(s.heap) - 1
	moved := s.heap[last]
	s.heap = s.heap[:last]
	if i == last {
		return
	}
	s.heap[i] = moved
	s.nodes[moved].pos = int32(i)
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

func (s *Simulator) siftUp(i int) {
	id := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(id, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.nodes[s.heap[i]].pos = int32(i)
		i = parent
	}
	s.heap[i] = id
	s.nodes[id].pos = int32(i)
}

// siftDown restores heap order below i and reports whether i moved.
func (s *Simulator) siftDown(i int) bool {
	id := s.heap[i]
	start := i
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.less(s.heap[best], id) {
			break
		}
		s.heap[i] = s.heap[best]
		s.nodes[s.heap[i]].pos = int32(i)
		i = best
	}
	s.heap[i] = id
	s.nodes[id].pos = int32(i)
	return i != start
}
