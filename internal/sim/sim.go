// Package sim implements the discrete-event simulation kernel used by
// every experiment in this repository.
//
// The kernel is deliberately small: a simulator owns a current clock and
// a binary heap of pending events. Events scheduled for the same instant
// fire in the order they were scheduled (a monotone sequence number
// breaks ties), which makes FIFO queueing semantics exact and the whole
// simulation deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Simulator.At and Simulator.After.
type Event struct {
	time   float64
	seq    uint64
	fn     func()
	index  int // heap index, -1 when not queued
	cancel bool
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancel }

// Simulator is a discrete-event simulator. The zero value is not ready
// for use; call New.
type Simulator struct {
	now    float64
	seq    uint64
	queue  eventQueue
	nsteps uint64
}

// New returns a simulator with its clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns how many events have been executed so far. Useful for
// loop-detection in tests and for benchmark reporting.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been popped).
func (s *Simulator) Pending() int { return s.queue.Len() }

// At schedules fn to run at absolute time t. It panics if t is in the
// past or not a finite number: such bugs would otherwise manifest as
// silently reordered events.
func (s *Simulator) At(t float64, fn func()) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: non-finite event time %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e := &Event{time: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event and reports whether one was
// executed. Cancelled events are skipped without advancing the clock.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.time
		s.nsteps++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t or the
// queue drains. Events scheduled exactly at t do fire. On return the
// clock reads exactly t (even if the queue drained earlier), so
// measurement intervals are well defined.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is in the past (now %v)", t, s.now))
	}
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.time > t {
			break
		}
		s.Step()
	}
	s.now = t
}

// Run executes events until the queue drains. It panics after maxSteps
// events as a runaway guard; pass 0 for the default of 1e9.
func (s *Simulator) Run(maxSteps uint64) {
	if maxSteps == 0 {
		maxSteps = 1e9
	}
	start := s.nsteps
	for s.Step() {
		if s.nsteps-start > maxSteps {
			panic("sim: event budget exhausted; likely an event loop")
		}
	}
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
