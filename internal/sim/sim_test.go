package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{3, 1, 2, 0.5, 2.5} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run(0)
	want := []float64{0.5, 1, 2, 2.5, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: position %d got event %d", i, v)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.At(5, func() {
		if s.Now() != 5 {
			t.Errorf("Now() = %v inside event at t=5", s.Now())
		}
	})
	s.Run(0)
	if s.Now() != 5 {
		t.Errorf("final Now() = %v, want 5", s.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at float64
	s.At(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run(0)
	if at != 5 {
		t.Errorf("After(3) from t=2 fired at %v, want 5", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	e.Cancel()
	s.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Steps() != 0 {
		t.Errorf("Steps() = %d, want 0", s.Steps())
	}
}

func TestCancelInsideEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(2, func() { fired = true })
	s.At(1, func() { e.Cancel() })
	s.Run(0)
	if fired {
		t.Error("event cancelled at t=1 still fired at t=2")
	}
}

func TestRunUntilStopsAndSetsClock(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=2.5, want 2", len(fired))
	}
	if s.Now() != 2.5 {
		t.Errorf("Now() = %v after RunUntil(2.5)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v after RunUntil(10)", s.Now())
	}
}

func TestRunUntilIncludesBoundary(t *testing.T) {
	s := New()
	fired := false
	s.At(2, func() { fired = true })
	s.RunUntil(2)
	if !fired {
		t.Error("event at exactly the RunUntil boundary did not fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNonFiniteTimePanics(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", bad)
				}
			}()
			New().At(bad, func() {})
		}()
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestRunawayGuard(t *testing.T) {
	s := New()
	var loop func()
	loop = func() { s.After(0.001, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("infinite event chain did not trip the budget guard")
		}
	}()
	s.Run(1000)
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	s := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(1, chain)
		}
	}
	s.After(1, chain)
	s.Run(0)
	if count != 5 {
		t.Errorf("chained events executed %d times, want 5", count)
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %v, want 5", s.Now())
	}
}

func TestPendingReflectsQueue(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	if !e.Pending() {
		t.Error("event should report pending")
	}
	s.Run(0)
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after drain", s.Pending())
	}
	if e.Pending() {
		t.Error("fired event still reports pending")
	}
}

// Property: for any set of non-negative event offsets, events fire in
// non-decreasing time order and all of them fire.
func TestPropertyOrderedExecution(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var fired []float64
		for _, o := range offsets {
			at := float64(o) / 100
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run(0)
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCancelRemovesEagerly verifies cancelled events leave the queue
// immediately instead of lingering until popped.
func TestCancelRemovesEagerly(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.At(2, func() {})
	s.At(3, func() {})
	e.Cancel()
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d after cancel, want 2", s.Pending())
	}
	e.Cancel() // double-cancel is a no-op
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d after double cancel, want 2", s.Pending())
	}
}

// TestStaleHandleAfterSlotReuse checks that a handle to a fired event
// cannot cancel an unrelated event that recycled its arena slot.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run(0)
	fired := false
	s.At(2, func() { fired = true }) // reuses e's arena slot
	if e.Pending() {
		t.Error("stale handle reports pending")
	}
	e.Cancel()
	s.Run(0)
	if !fired {
		t.Error("stale Cancel killed an unrelated event")
	}
}

// TestCancelChurnDeterminism drives the kernel through a heavy
// cancel/reschedule workload twice and checks the firing orders match
// exactly, and that each order respects (time, schedule-seq).
func TestCancelChurnDeterminism(t *testing.T) {
	run := func() []int {
		s := New()
		rng := NewRand(42)
		var fired []int
		handles := make([]Event, 0, 512)
		next := 0
		schedule := func() {
			id := next
			next++
			at := s.Now() + rng.Float64()*3
			handles = append(handles, s.At(at, func() { fired = append(fired, id) }))
		}
		for i := 0; i < 200; i++ {
			schedule()
		}
		for i := 0; i < 2000; i++ {
			switch rng.Intn(3) {
			case 0:
				schedule()
			case 1:
				h := handles[rng.Intn(len(handles))]
				h.Cancel()
			default:
				// Cancel one and immediately reschedule another in its
				// place — the shaper/churn pattern.
				handles[rng.Intn(len(handles))].Cancel()
				schedule()
			}
		}
		s.Run(0)
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTieBreakSurvivesCancelChurn cancels interleaved same-time events
// and checks the survivors still fire in schedule order.
func TestTieBreakSurvivesCancelChurn(t *testing.T) {
	s := New()
	var order []int
	var handles []Event
	for i := 0; i < 50; i++ {
		i := i
		handles = append(handles, s.At(1.0, func() { order = append(order, i) }))
	}
	for i := 0; i < 50; i += 2 {
		handles[i].Cancel()
	}
	s.Run(0)
	if len(order) != 25 {
		t.Fatalf("fired %d events, want 25", len(order))
	}
	for i, v := range order {
		if v != 2*i+1 {
			t.Fatalf("tie-break violated after cancels: position %d got event %d", i, v)
		}
	}
}

// TestZeroAllocSteadyState guards the allocation-free hot path: once
// the arena and heap reach steady capacity, schedule+dispatch must not
// allocate.
func TestZeroAllocSteadyState(t *testing.T) {
	s := New()
	var next func()
	next = func() { s.After(1e-6, next) }
	s.After(0, next)
	for i := 0; i < 100; i++ { // warm the arena and heap
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { s.Step() })
	if allocs != 0 {
		t.Errorf("schedule+dispatch allocates %v/op in steady state, want 0", allocs)
	}
}

// TestZeroAllocCancelReschedule guards the other hot pattern: cancel an
// event and schedule a replacement, as regulators do per packet.
func TestZeroAllocCancelReschedule(t *testing.T) {
	s := New()
	fn := func() {}
	e := s.At(1, fn)
	for i := 0; i < 100; i++ {
		e.Cancel()
		e = s.At(1, fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel()
		e = s.At(1, fn)
	})
	if allocs != 0 {
		t.Errorf("cancel+reschedule allocates %v/op in steady state, want 0", allocs)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 10; seed++ {
		for id := 0; id < 100; id++ {
			v := DeriveSeed(seed, id)
			if seen[v] {
				t.Fatalf("duplicate derived seed for (%d,%d)", seed, id)
			}
			seen[v] = true
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Error("DeriveSeed is not deterministic")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(r, 2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("empirical mean %v, want 2.5±0.05", mean)
	}
}

func TestExponentialDegenerate(t *testing.T) {
	r := NewRand(1)
	if Exponential(r, 0) != 0 || Exponential(r, -1) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}
