package trace

import (
	"bufqos/internal/metrics"
	"bufqos/internal/sim"
)

// NewMetricsSampler returns a Sampler that periodically snapshots the
// named metrics from a registry into a time series — the bridge
// between the instantaneous counters/gauges of internal/metrics and
// the trace package's CSV/column tooling. Missing names sample as
// zero until (if ever) they are registered, so samplers can be set up
// before the instrumented components run.
//
// Counters sample their running count, gauges their current level,
// histograms their observation count (see metrics.Registry.Value).
func NewMetricsSampler(s *sim.Simulator, interval float64, r *metrics.Registry, names []string) *Sampler {
	if r == nil {
		panic("trace: nil metrics registry")
	}
	labels := append([]string(nil), names...)
	return NewSampler(s, interval, labels, func() []float64 {
		row := make([]float64, len(labels))
		for i, name := range labels {
			v, _ := r.Value(name)
			row[i] = v
		}
		return row
	})
}
