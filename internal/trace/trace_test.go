package trace

import (
	"strings"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

func TestSamplerCollectsAtInterval(t *testing.T) {
	s := sim.New()
	v := 0.0
	sa := NewSampler(s, 0.5, []string{"v"}, func() []float64 { return []float64{v} })
	sa.Start()
	s.At(0.75, func() { v = 7 })
	s.RunUntil(2.1)
	// Samples at 0, 0.5, 1.0, 1.5, 2.0.
	if sa.Len() != 5 {
		t.Fatalf("got %d samples, want 5", sa.Len())
	}
	col, ok := sa.Column("v")
	if !ok {
		t.Fatal("column v missing")
	}
	want := []float64{0, 0, 7, 7, 7}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, col[i], want[i])
		}
	}
	if _, ok := sa.Column("nope"); ok {
		t.Error("found nonexistent column")
	}
}

func TestSamplerStop(t *testing.T) {
	s := sim.New()
	sa := NewSampler(s, 0.5, nil, func() []float64 { return nil })
	sa.Start()
	s.RunUntil(1.1)
	sa.Stop()
	n := sa.Len()
	s.RunUntil(5)
	// One queued sample may still fire before the stop flag is seen —
	// no, Stop sets the flag; the pending event returns early. Count
	// must not grow.
	if sa.Len() != n {
		t.Errorf("sampler grew after Stop: %d -> %d", n, sa.Len())
	}
}

func TestSamplerCSV(t *testing.T) {
	s := sim.New()
	sa := NewSampler(s, 1, []string{"a", "b"}, func() []float64 { return []float64{1, 2} })
	sa.Start()
	s.RunUntil(2)
	var b strings.Builder
	if err := sa.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+sa.Len() {
		t.Errorf("%d lines for %d samples", len(lines), sa.Len())
	}
}

func TestSamplerValidation(t *testing.T) {
	s := sim.New()
	for i, f := range []func(){
		func() { NewSampler(s, 0, nil, func() []float64 { return nil }) },
		func() { NewSampler(s, 1, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	// Probe/label mismatch panics at sample time.
	sa := NewSampler(s, 1, []string{"a"}, func() []float64 { return []float64{1, 2} })
	defer func() {
		if recover() == nil {
			t.Error("label mismatch did not panic")
		}
	}()
	sa.Start()
}

func TestLogRecordsLifecycle(t *testing.T) {
	s := sim.New()
	log := NewLog(s, 0)
	mgr := buffer.NewTailDrop(600, 1)
	link := sched.NewLink(s, units.MbitsPerSecond(8), sched.NewFIFO(), mgr, nil)
	link.OnDepart = log.DepartHook()
	link.OnDrop = log.DropHook()
	sink := log.Tee(link)

	sink.Receive(&packet.Packet{Flow: 0, Size: 500, Seq: 1})
	sink.Receive(&packet.Packet{Flow: 0, Size: 500, Seq: 2}) // dropped: buffer 600
	s.Run(0)

	events := log.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (2 offered, 1 drop, 1 depart)", len(events))
	}
	counts := map[EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts[EventOffered] != 2 || counts[EventDropped] != 1 || counts[EventDeparted] != 1 {
		t.Errorf("event mix = %v", counts)
	}
}

func TestLogBounded(t *testing.T) {
	s := sim.New()
	log := NewLog(s, 3)
	for i := 0; i < 10; i++ {
		log.add(EventOffered, &packet.Packet{Flow: 0, Seq: uint64(i), Size: 100})
	}
	ev := log.Events()
	if len(ev) != 3 {
		t.Fatalf("bounded log kept %d events", len(ev))
	}
	if ev[0].Seq != 7 || ev[2].Seq != 9 {
		t.Errorf("kept wrong tail: %v", ev)
	}
}

func TestLogCSV(t *testing.T) {
	s := sim.New()
	log := NewLog(s, 0)
	log.add(EventDropped, &packet.Packet{Flow: 2, Seq: 5, Size: 500})
	var b strings.Builder
	if err := log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "time,kind,flow,seq,size") || !strings.Contains(out, "dropped,2,5,500") {
		t.Errorf("csv output:\n%s", out)
	}
}

func TestEventKindString(t *testing.T) {
	if EventOffered.String() != "offered" || EventDeparted.String() != "departed" ||
		EventDropped.String() != "dropped" || !strings.Contains(EventKind(9).String(), "9") {
		t.Error("event kind strings wrong")
	}
}

func TestSamplerObservesExample1Convergence(t *testing.T) {
	// End-to-end: sample the conformant flow's occupancy in the
	// greedy-vs-CBR scenario; it must be (weakly) increasing toward its
	// threshold after the start-up, never above it.
	s := sim.New()
	linkRate := units.MbitsPerSecond(48)
	bufSize := units.KiloBytes(200)
	th := units.Bytes(float64(bufSize) * 8.0 / 48.0)
	mgr := buffer.NewFixedThreshold(bufSize, []units.Bytes{th + 500, bufSize - th - 500})
	link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, nil)
	g := source.NewFeedbackGreedy(s, 1, 500, mgr, link)
	link.OnDepart = g.DepartureHook()
	g.Kick()
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(8), link)
	src.Start()

	sa := NewSampler(s, 0.01, []string{"q0"}, func() []float64 {
		return []float64{float64(mgr.Occupancy(0))}
	})
	sa.Start()
	s.RunUntil(5)

	col, _ := sa.Column("q0")
	peak := 0.0
	for _, v := range col {
		if v > peak {
			peak = v
		}
	}
	if peak > float64(th+500) {
		t.Errorf("occupancy peak %v exceeded threshold %v", peak, th+500)
	}
	if peak < float64(th)*0.8 {
		t.Errorf("occupancy peak %v never approached threshold %v", peak, th)
	}
}
