// Package trace provides observation helpers for simulations: a
// periodic sampler that turns instantaneous state (queue occupancies,
// sharing-pool levels) into time series, and a per-packet event log.
// The paper's Example 1 dynamics — the greedy flow pinning its share
// while the conformant flow's occupancy converges — are directly
// visible through these.
package trace

import (
	"fmt"
	"io"
	"strings"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
)

// Sampler periodically evaluates a probe function and stores the
// samples as rows of a time series.
type Sampler struct {
	sim      *sim.Simulator
	interval float64
	probe    func() []float64
	labels   []string
	times    []float64
	rows     [][]float64
	stopped  bool
}

// NewSampler creates a sampler that calls probe every interval seconds
// once started. labels name the probe's columns.
func NewSampler(s *sim.Simulator, interval float64, labels []string, probe func() []float64) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("trace: non-positive sample interval %v", interval))
	}
	if probe == nil {
		panic("trace: nil probe")
	}
	return &Sampler{sim: s, interval: interval, probe: probe, labels: labels}
}

// Start begins sampling at the current time; sampling continues until
// Stop or the event queue drains.
func (sa *Sampler) Start() {
	sa.sample()
}

// Stop halts future samples.
func (sa *Sampler) Stop() { sa.stopped = true }

func (sa *Sampler) sample() {
	if sa.stopped {
		return
	}
	row := sa.probe()
	if len(sa.labels) > 0 && len(row) != len(sa.labels) {
		panic(fmt.Sprintf("trace: probe returned %d values for %d labels", len(row), len(sa.labels)))
	}
	sa.times = append(sa.times, sa.sim.Now())
	sa.rows = append(sa.rows, append([]float64(nil), row...))
	sa.sim.After(sa.interval, sa.sample)
}

// Len returns the number of samples taken.
func (sa *Sampler) Len() int { return len(sa.rows) }

// Times returns the sample instants.
func (sa *Sampler) Times() []float64 { return sa.times }

// Column returns one column of the series by label; false when absent.
func (sa *Sampler) Column(label string) ([]float64, bool) {
	for i, l := range sa.labels {
		if l == label {
			col := make([]float64, len(sa.rows))
			for r, row := range sa.rows {
				col[r] = row[i]
			}
			return col, true
		}
	}
	return nil, false
}

// WriteCSV emits "time,<labels...>" rows.
func (sa *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(sa.labels, ",")); err != nil {
		return err
	}
	for i, at := range sa.times {
		parts := make([]string, 0, len(sa.rows[i])+1)
		parts = append(parts, fmt.Sprintf("%g", at))
		for _, v := range sa.rows[i] {
			parts = append(parts, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// EventKind classifies packet-log entries.
type EventKind uint8

const (
	// EventOffered marks a packet reaching the stage the Tee wraps.
	EventOffered EventKind = iota
	// EventDeparted marks a completed transmission (via DepartHook).
	EventDeparted
	// EventDropped marks a rejection (via DropHook).
	EventDropped
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventOffered:
		return "offered"
	case EventDeparted:
		return "departed"
	case EventDropped:
		return "dropped"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one packet-log record.
type Event struct {
	Time float64
	Kind EventKind
	Flow int
	Seq  uint64
	Size int64
}

// Log accumulates packet events, optionally bounded to the most recent
// max entries (0 = unbounded).
type Log struct {
	sim    *sim.Simulator
	max    int
	events []Event
}

// NewLog creates a packet log. max bounds retained events (0 keeps
// everything).
func NewLog(s *sim.Simulator, max int) *Log {
	if max < 0 {
		panic("trace: negative log bound")
	}
	return &Log{sim: s, max: max}
}

func (l *Log) add(kind EventKind, p *packet.Packet) {
	l.events = append(l.events, Event{
		Time: l.sim.Now(), Kind: kind, Flow: p.Flow, Seq: p.Seq, Size: int64(p.Size),
	})
	if l.max > 0 && len(l.events) > l.max {
		l.events = l.events[len(l.events)-l.max:]
	}
}

// Events returns the retained records.
func (l *Log) Events() []Event { return l.events }

// Tee wraps a sink, logging every packet as EventOffered before
// forwarding it.
func (l *Log) Tee(next source.Sink) source.Sink {
	return source.SinkFunc(func(p *packet.Packet) {
		l.add(EventOffered, p)
		next.Receive(p)
	})
}

// DepartHook returns a function for sched.Link.OnDepart.
func (l *Log) DepartHook() func(*packet.Packet) {
	return func(p *packet.Packet) { l.add(EventDeparted, p) }
}

// DropHook returns a function for sched.Link.OnDrop.
func (l *Log) DropHook() func(*packet.Packet) {
	return func(p *packet.Packet) { l.add(EventDropped, p) }
}

// WriteCSV emits "time,kind,flow,seq,size" rows.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,kind,flow,seq,size"); err != nil {
		return err
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%d,%d\n", e.Time, e.Kind, e.Flow, e.Seq, e.Size); err != nil {
			return err
		}
	}
	return nil
}
