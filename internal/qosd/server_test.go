package qosd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bufqos/internal/core"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// testTopo is a 3-link line a->b->c->d: two FIFO+BM links and one WFQ
// link, so both admission regions are exercised through the API.
func testTopo() *topology.Topology {
	return &topology.Topology{
		Name: "qosd-test",
		Links: []topology.Link{
			{From: "a", To: "b", Rate: units.MbitsPerSecond(48), Buffer: units.KiloBytes(600), Spec: "fifo+threshold"},
			{From: "b", To: "c", Rate: units.MbitsPerSecond(48), Buffer: units.KiloBytes(600), Spec: "fifo+threshold"},
			{From: "c", To: "d", Rate: units.MbitsPerSecond(24), Buffer: units.KiloBytes(300), Spec: "wfq+threshold"},
		},
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(testTopo(), metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// call POSTs (or GETs when body is nil) JSON and decodes the reply.
func call(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func vidSpec() packet.FlowSpec {
	return packet.FlowSpec{
		PeakRate:   units.MbitsPerSecond(6),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(60),
	}
}

func TestJoinLeaveRerouteAPI(t *testing.T) {
	_, ts := newTestServer(t)

	var d Decision
	join := JoinRequest{Flow: "f0", Links: []string{"a->b", "b->c"}, Spec: vidSpec()}
	if code := call(t, ts, "POST", "/v1/join", join, &d); code != 200 || !d.Admitted {
		t.Fatalf("join: code %d, decision %+v", code, d)
	}

	// Duplicate join conflicts on the flow table.
	var apiErr apiError
	if code := call(t, ts, "POST", "/v1/join", join, &apiErr); code != 409 {
		t.Errorf("duplicate join: code %d (want 409), err %q", code, apiErr.Error)
	}

	// Unknown flow operations are 404.
	if code := call(t, ts, "POST", "/v1/leave", LeaveRequest{Flow: "ghost"}, &apiErr); code != 404 {
		t.Errorf("leave unknown: code %d (want 404)", code)
	}
	if code := call(t, ts, "POST", "/v1/reroute", RerouteRequest{Flow: "ghost", Links: []string{"a->b"}}, &apiErr); code != 404 {
		t.Errorf("reroute unknown: code %d (want 404)", code)
	}

	// Unknown link is a malformed request.
	bad := JoinRequest{Flow: "f1", Links: []string{"nowhere"}, Spec: vidSpec()}
	if code := call(t, ts, "POST", "/v1/join", bad, &apiErr); code != 400 {
		t.Errorf("unknown link: code %d (want 400)", code)
	}

	// Reroute moves the reservation: a->b keeps it (shared), b->c
	// releases, c->d admits.
	rr := RerouteRequest{Flow: "f0", Links: []string{"a->b", "c->d"}}
	if code := call(t, ts, "POST", "/v1/reroute", rr, &d); code != 200 || !d.Admitted {
		t.Fatalf("reroute: code %d, decision %+v", code, d)
	}
	var links []LinkState
	call(t, ts, "GET", "/v1/links", nil, &links)
	wantFlows := map[string]int{"a->b": 1, "b->c": 0, "c->d": 1}
	for _, l := range links {
		if l.Flows != wantFlows[l.Name] {
			t.Errorf("after reroute, link %s has %d flows, want %d", l.Name, l.Flows, wantFlows[l.Name])
		}
	}

	// Leave drains everything back to zero.
	if code := call(t, ts, "POST", "/v1/leave", LeaveRequest{Flow: "f0"}, &d); code != 200 {
		t.Fatalf("leave: code %d", code)
	}
	call(t, ts, "GET", "/v1/links", nil, &links)
	for _, l := range links {
		if l.Flows != 0 || l.SumSigma != 0 || l.SumRho != 0 {
			t.Errorf("after leave, link %s not empty: %+v", l.Name, l)
		}
	}
}

// TestJoinRejectionNamesFirstRefusingLink fills one mid-route link to
// its buffer bound and checks a spanning join reports that link with
// the same RejectReason the offline engine's admitter produces — and
// that the refused join left the other links untouched (atomicity).
func TestJoinRejectionNamesFirstRefusingLink(t *testing.T) {
	_, ts := newTestServer(t)
	spec := vidSpec()

	// Fill b->c alone: FIFO region 600·(1 − 2n/48) ≥ 60n admits 7.
	var d Decision
	n := 0
	for ; ; n++ {
		j := JoinRequest{Flow: fmt.Sprintf("fill%d", n), Links: []string{"b->c"}, Spec: spec}
		call(t, ts, "POST", "/v1/join", j, &d)
		if !d.Admitted {
			break
		}
	}

	// The same sequence against the serial admitter must agree on both
	// the count and the reason (qnet and qosd share checkRegion).
	serial := core.NewSerialAdmitter(core.DisciplineFIFO, units.MbitsPerSecond(48), units.KiloBytes(600))
	var want core.RejectReason
	for {
		if want = serial.Admit(spec); want != core.Accepted {
			break
		}
	}
	if serial.NumFlows() != n {
		t.Fatalf("qosd admitted %d flows on b->c, serial admitter %d", n, serial.NumFlows())
	}
	if d.Reason != want.String() || d.Link != "b->c" {
		t.Errorf("rejection = {link %s, reason %s}, want {b->c, %s}", d.Link, d.Reason, want)
	}

	// A spanning join refuses at b->c and books nothing on a->b.
	span := JoinRequest{Flow: "span", Links: []string{"a->b", "b->c"}, Spec: spec}
	call(t, ts, "POST", "/v1/join", span, &d)
	if d.Admitted || d.Link != "b->c" || d.Reason != want.String() {
		t.Errorf("spanning join decision %+v, want rejection at b->c (%s)", d, want)
	}
	var links []LinkState
	call(t, ts, "GET", "/v1/links", nil, &links)
	if links[0].Flows != 0 || links[0].SumSigma != 0 {
		t.Errorf("refused route booked state on a->b: %+v", links[0])
	}

	// Bandwidth-limited rejection: eq. (5)/(7)'s rate bound.
	hog := packet.FlowSpec{TokenRate: units.MbitsPerSecond(30), BucketSize: units.KiloBytes(10)}
	call(t, ts, "POST", "/v1/join", JoinRequest{Flow: "hog1", Links: []string{"a->b"}, Spec: hog}, &d)
	if !d.Admitted {
		t.Fatalf("first hog refused: %+v", d)
	}
	call(t, ts, "POST", "/v1/join", JoinRequest{Flow: "hog2", Links: []string{"a->b"}, Spec: hog}, &d)
	if d.Admitted || d.Reason != core.BandwidthLimited.String() {
		t.Errorf("second hog decision %+v, want bandwidth-limited", d)
	}
}

func TestBatchJoin(t *testing.T) {
	_, ts := newTestServer(t)
	hog := packet.FlowSpec{TokenRate: units.MbitsPerSecond(30), BucketSize: units.KiloBytes(10)}
	req := BatchRequest{Joins: []JoinRequest{
		{Flow: "b0", Links: []string{"a->b", "b->c"}, Spec: vidSpec()},
		{Flow: "b1", Links: []string{"a->b"}, Spec: hog},
		{Flow: "b2", Links: []string{"a->b"}, Spec: hog},       // Σρ over rate: rejected
		{Flow: "b0", Links: []string{"a->b"}, Spec: vidSpec()}, // duplicate: error
		{Flow: "b3", Links: []string{"nope"}, Spec: vidSpec()}, // unknown link: error
	}}
	var resp BatchResponse
	if code := call(t, ts, "POST", "/v1/batch", req, &resp); code != 200 {
		t.Fatalf("batch: code %d", code)
	}
	if len(resp.Decisions) != 5 {
		t.Fatalf("batch returned %d decisions, want 5", len(resp.Decisions))
	}
	if !resp.Decisions[0].Admitted || !resp.Decisions[1].Admitted {
		t.Errorf("b0/b1 should admit: %+v", resp.Decisions[:2])
	}
	if resp.Decisions[2].Admitted || resp.Decisions[2].Reason != core.BandwidthLimited.String() {
		t.Errorf("b2 = %+v, want bandwidth-limited rejection", resp.Decisions[2])
	}
	if resp.Decisions[3].Error == "" || resp.Decisions[4].Error == "" {
		t.Errorf("duplicate/unknown-link entries should carry errors: %+v", resp.Decisions[3:])
	}
}

// TestBatchMixedOps drives the ordered mixed stream: a join whose
// reservations a later leave in the same batch frees, a reroute that
// only fits because of that leave, and a trailing unknown op.
func TestBatchMixedOps(t *testing.T) {
	s, ts := newTestServer(t)
	// Alone on a->b the hog satisfies eq. (8): B(1-30/48) = 225KB >= 200KB.
	// With m1 alongside the burst sum 260KB overflows B(1-32/48) = 200KB.
	hog := packet.FlowSpec{TokenRate: units.MbitsPerSecond(30), BucketSize: units.KiloBytes(200)}
	spec := vidSpec()
	req := BatchRequest{Ops: []BatchOp{
		{Op: "join", Flow: "m0", Links: []string{"a->b"}, Spec: &hog},
		{Flow: "m1", Links: []string{"b->c"}, Spec: &spec}, // empty op defaults to join
		{Op: "reroute", Flow: "m1", Links: []string{"a->b"}},
		{Op: "leave", Flow: "m0"},
		{Op: "reroute", Flow: "m1", Links: []string{"a->b"}},
		{Op: "leave", Flow: "nope"},
		{Op: "split", Flow: "m1"},
	}}
	var resp BatchResponse
	if code := call(t, ts, "POST", "/v1/batch", req, &resp); code != 200 {
		t.Fatalf("batch: code %d", code)
	}
	if len(resp.Decisions) != 7 {
		t.Fatalf("batch returned %d decisions, want 7", len(resp.Decisions))
	}
	if !resp.Decisions[0].Admitted || !resp.Decisions[1].Admitted {
		t.Errorf("joins should admit: %+v", resp.Decisions[:2])
	}
	// With the hog still holding a->b, the first reroute must refuse
	// and name the refusing link; after the leave it must fit.
	if resp.Decisions[2].Admitted || resp.Decisions[2].Link != "a->b" {
		t.Errorf("reroute before leave = %+v, want a->b rejection", resp.Decisions[2])
	}
	if !resp.Decisions[3].Admitted {
		t.Errorf("leave m0 = %+v", resp.Decisions[3])
	}
	if !resp.Decisions[4].Admitted {
		t.Errorf("reroute after leave = %+v, want admitted", resp.Decisions[4])
	}
	if resp.Decisions[5].Error == "" || resp.Decisions[6].Error == "" {
		t.Errorf("unknown flow/op entries should carry errors: %+v", resp.Decisions[5:])
	}
	if s.NumFlows() != 1 {
		t.Errorf("NumFlows = %d, want 1 (m1 only)", s.NumFlows())
	}
}

// TestSnapshotRestoreRoundTrip drains a populated daemon into a fresh
// one and checks the states serialize identically.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		links := []string{"a->b", "b->c"}
		if i%2 == 1 {
			links = []string{"b->c", "c->d"}
		}
		var d Decision
		call(t, ts, "POST", "/v1/join", JoinRequest{Flow: fmt.Sprintf("f%d", i), Links: links, Spec: vidSpec()}, &d)
		if !d.Admitted {
			t.Fatalf("f%d refused", i)
		}
	}

	var snap Snapshot
	call(t, ts, "GET", "/v1/snapshot", nil, &snap)
	if len(snap.Flows) != 5 || snap.Topology != "qosd-test" {
		t.Fatalf("snapshot %d flows, topology %q", len(snap.Flows), snap.Topology)
	}

	_, ts2 := newTestServer(t)
	var rr RestoreResponse
	if code := call(t, ts2, "POST", "/v1/restore", snap, &rr); code != 200 {
		t.Fatalf("restore: code %d", code)
	}
	if rr.Restored != 5 || len(rr.Rejected) != 0 {
		t.Fatalf("restore = %+v, want 5 restored, none rejected", rr)
	}

	// Byte-identical round trip: flows are name-sorted and link
	// aggregates rebuilt from the same reservations.
	b1, _ := json.Marshal(snap)
	var snap2 Snapshot
	call(t, ts2, "GET", "/v1/snapshot", nil, &snap2)
	b2, _ := json.Marshal(snap2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("snapshot round trip drifted:\n%s\nvs\n%s", b1, b2)
	}

	// Restore also resets: restoring an empty snapshot clears state.
	if code := call(t, ts2, "POST", "/v1/restore", Snapshot{Topology: "qosd-test"}, &rr); code != 200 || rr.Restored != 0 {
		t.Fatalf("empty restore: code %d, %+v", code, rr)
	}
	var links []LinkState
	call(t, ts2, "GET", "/v1/links", nil, &links)
	for _, l := range links {
		if l.Flows != 0 || l.SumSigma != 0 {
			t.Errorf("link %s not empty after reset: %+v", l.Name, l)
		}
	}
}

func TestHealthzMetricz(t *testing.T) {
	_, ts := newTestServer(t)
	var d Decision
	call(t, ts, "POST", "/v1/join", JoinRequest{Flow: "f0", Links: []string{"a->b"}, Spec: vidSpec()}, &d)

	var h Health
	if code := call(t, ts, "GET", "/healthz", nil, &h); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if h.Status != "ok" || h.Links != 3 || h.Flows != 1 {
		t.Errorf("healthz = %+v", h)
	}

	resp, err := ts.Client().Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	for _, want := range []string{"qosd.join.accepted", "qosd.latency.join", "qosd.flows.active"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metricz missing %s", want)
		}
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Errorf("metricz is not JSON: %v", err)
	}
}

// TestWireSpecEncoding exercises the suffixed wire units end to end: a
// hand-written JSON body with "2Mbit/s"-style strings must decode to
// the same reservation a Go-marshalled body produces.
func TestWireSpecEncoding(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"flow":"w0","links":["a->b"],"spec":{"peak":"6Mbit/s","token":"2Mbit/s","bucket":"60KB"}}`
	resp, err := ts.Client().Post(ts.URL+"/v1/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("wire-typed join refused: %+v", d)
	}
	var snap Snapshot
	call(t, ts, "GET", "/v1/snapshot", nil, &snap)
	if snap.Flows[0].Spec != vidSpec() {
		t.Errorf("decoded spec %+v, want %+v", snap.Flows[0].Spec, vidSpec())
	}
}
