// Package qosd is the admission control plane as a long-running
// service: it loads a topology.Topology, builds one admission shard
// per link (core.ShardedAdmitter), and serves flow join / leave /
// reroute decisions over HTTP/JSON. Every decision goes through the
// paper's §2.3 schedulability regions — eqs. (5)-(6) for WFQ links,
// eqs. (7)-(8) for FIFO + buffer-management links — exactly as the
// offline engine does, but concurrently: requests touching disjoint
// links never contend, and multi-link joins commit atomically across
// all traversed links or not at all.
//
// The daemon's state is deliberately small: the per-link (Σσ, Σρ)
// aggregates live inside the sharded admitter, and a flat flow table
// maps flow names to their admitted route and contract. The whole
// table snapshots to JSON (wire-typed, suffixed units) and restores
// from it, so an operator can drain one daemon and replay its
// reservations into another.
package qosd

import (
	"fmt"
	"sort"
	"sync"

	"bufqos/internal/core"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/scheme"
	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// LinkState describes one admission shard for /v1/links and snapshots:
// static provisioning plus the live aggregates behind eqs. (5)-(8).
type LinkState struct {
	Name        string      `json:"name"`
	Discipline  string      `json:"discipline"`
	Rate        units.Rate  `json:"rate"`
	Buffer      units.Bytes `json:"buffer"`
	Flows       int         `json:"flows"`
	SumRho      units.Rate  `json:"sum_rho"`
	SumSigma    units.Bytes `json:"sum_sigma"`
	Utilization float64     `json:"utilization"`
}

// FlowRecord is one admitted flow in a snapshot: its name, the links
// it reserved on (in route order), and its declared contract.
type FlowRecord struct {
	Flow  string          `json:"flow"`
	Links []string        `json:"links"`
	Spec  packet.FlowSpec `json:"spec"`
}

// Snapshot is the full transferable state of a daemon: restoring it
// into a fresh daemon over the same topology reproduces every
// reservation (and therefore every per-link aggregate).
type Snapshot struct {
	Topology string       `json:"topology"`
	Links    []LinkState  `json:"links"`
	Flows    []FlowRecord `json:"flows"`
}

// Decision is the outcome of a join or reroute: either admitted, or
// rejected with the first refusing link (in route order) and the
// region that refused it — the same RejectReason taxonomy the offline
// engine reports.
type Decision struct {
	Flow     string `json:"flow"`
	Admitted bool   `json:"admitted"`
	// Link and Reason are set on rejection: the first link in route
	// order that refused, and why ("bandwidth-limited" when eq. 5/7's
	// rate bound failed, "buffer-limited" when eq. 6/8's buffer bound
	// failed).
	Link   string `json:"link,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// flowEntry is one row of the flow table. A row is inserted in the
// pending state before the admitter runs so concurrent joins of the
// same name conflict on the table, not inside the shards; it becomes
// active (pending=false) only after the route committed.
type flowEntry struct {
	spec    packet.FlowSpec
	route   []int
	pending bool
}

// Server is the admission control plane for one topology. Its methods
// are safe for concurrent use; the HTTP layer in http.go is a thin
// JSON shim over them.
type Server struct {
	topoName    string
	linkNames   []string
	disciplines []core.Discipline
	byName      map[string]int
	adm         *core.ShardedAdmitter

	mu    sync.Mutex
	flows map[string]*flowEntry

	met serverMetrics
}

// New builds a Server over a topology's links. Declared flows and
// timeline events in t are ignored: the daemon starts empty and the
// flow population arrives through the API. reg may be nil (metrics
// handles are nil-safe); pass one to expose /metricz counters.
func New(t *topology.Topology, reg *metrics.Registry) (*Server, error) {
	if len(t.Links) == 0 {
		return nil, fmt.Errorf("qosd: topology %s has no links", t.Name)
	}
	s := &Server{
		topoName:    t.Name,
		linkNames:   make([]string, len(t.Links)),
		disciplines: make([]core.Discipline, len(t.Links)),
		byName:      make(map[string]int, len(t.Links)),
		flows:       make(map[string]*flowEntry),
	}
	cfgs := make([]core.LinkConfig, len(t.Links))
	for i := range t.Links {
		l := &t.Links[i]
		name := l.Name
		if name == "" {
			name = l.From + "->" + l.To
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("qosd: duplicate link name %s", name)
		}
		if l.Rate <= 0 || l.Buffer <= 0 {
			return nil, fmt.Errorf("qosd: link %s: non-positive rate or buffer", name)
		}
		d, err := linkDiscipline(l.Spec)
		if err != nil {
			return nil, fmt.Errorf("qosd: link %s: %w", name, err)
		}
		s.linkNames[i] = name
		s.disciplines[i] = d
		s.byName[name] = i
		cfgs[i] = core.LinkConfig{Discipline: d, Rate: l.Rate, Buffer: l.Buffer}
	}
	s.adm = core.NewShardedAdmitter(cfgs)
	s.met.init(reg)
	return s, nil
}

// linkDiscipline maps a link's scheme spec to the admission region it
// can guarantee, mirroring the offline engine: WFQ gets eqs. (5)-(6),
// everything else is held to the conservative FIFO region,
// eqs. (7)-(8). An empty spec means the Validate default
// ("fifo+threshold").
func linkDiscipline(spec string) (core.Discipline, error) {
	if spec == "" {
		return core.DisciplineFIFO, nil
	}
	sc, err := scheme.Parse(spec)
	if err != nil {
		return 0, err
	}
	if sc.SchedulerName() == "wfq" {
		return core.DisciplineWFQ, nil
	}
	return core.DisciplineFIFO, nil
}

// NumLinks reports the number of admission shards.
func (s *Server) NumLinks() int { return s.adm.NumLinks() }

// resolveRoute maps link names to admitter indices, rejecting unknown
// and repeated links (a route traverses a link at most once).
func (s *Server) resolveRoute(links []string) ([]int, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("empty route")
	}
	route := make([]int, len(links))
	for i, name := range links {
		li, ok := s.byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown link %q", name)
		}
		// Routes are short (a handful of hops), so a linear dup scan
		// beats a set allocation on the admission hot path.
		for _, prev := range route[:i] {
			if prev == li {
				return nil, fmt.Errorf("link %q repeated in route", name)
			}
		}
		route[i] = li
	}
	return route, nil
}

// Join admits one flow on every link of its route, atomically: either
// all links book the (σ, ρ) reservation or none do. On rejection the
// decision carries the first refusing link in route order.
func (s *Server) Join(name string, links []string, spec packet.FlowSpec) (Decision, error) {
	if name == "" {
		return Decision{}, fmt.Errorf("missing flow name")
	}
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	route, err := s.resolveRoute(links)
	if err != nil {
		return Decision{}, err
	}

	s.mu.Lock()
	if _, exists := s.flows[name]; exists {
		s.mu.Unlock()
		return Decision{}, &ConflictError{fmt.Sprintf("flow %q already joined", name)}
	}
	entry := &flowEntry{spec: spec, route: route, pending: true}
	s.flows[name] = entry
	s.mu.Unlock()

	refusing, reason := s.adm.AdmitRoute(route, spec)

	s.mu.Lock()
	if reason != core.Accepted {
		delete(s.flows, name)
		n := len(s.flows)
		s.mu.Unlock()
		s.met.decision(reason, n)
		return Decision{Flow: name, Link: s.linkNames[refusing], Reason: reason.String()}, nil
	}
	entry.pending = false
	n := len(s.flows)
	s.mu.Unlock()
	s.met.decision(core.Accepted, n)
	return Decision{Flow: name, Admitted: true}, nil
}

// Leave releases a flow's reservation on every link of its route.
func (s *Server) Leave(name string) error {
	s.mu.Lock()
	entry, ok := s.flows[name]
	if !ok {
		s.mu.Unlock()
		return &NotFoundError{fmt.Sprintf("flow %q not joined", name)}
	}
	if entry.pending {
		s.mu.Unlock()
		return &ConflictError{fmt.Sprintf("flow %q has an operation in flight", name)}
	}
	delete(s.flows, name)
	n := len(s.flows)
	s.mu.Unlock()

	s.adm.ReleaseRoute(entry.route, entry.spec)
	s.met.released(n)
	return nil
}

// Reroute atomically moves a flow to a new route: links on both routes
// keep their reservation untouched, vacated links release it, and new
// links admit it — or, if any new link refuses, nothing changes and
// the decision names the first refusing link.
func (s *Server) Reroute(name string, links []string) (Decision, error) {
	newRoute, err := s.resolveRoute(links)
	if err != nil {
		return Decision{}, err
	}

	s.mu.Lock()
	entry, ok := s.flows[name]
	if !ok {
		s.mu.Unlock()
		return Decision{}, &NotFoundError{fmt.Sprintf("flow %q not joined", name)}
	}
	if entry.pending {
		s.mu.Unlock()
		return Decision{}, &ConflictError{fmt.Sprintf("flow %q has an operation in flight", name)}
	}
	entry.pending = true
	oldRoute, spec := entry.route, entry.spec
	s.mu.Unlock()

	refusing, reason := s.adm.Reroute(oldRoute, newRoute, spec)

	s.mu.Lock()
	entry.pending = false
	if reason == core.Accepted {
		entry.route = newRoute
	}
	n := len(s.flows)
	s.mu.Unlock()

	s.met.rerouted(reason, n)
	if reason != core.Accepted {
		return Decision{Flow: name, Link: s.linkNames[refusing], Reason: reason.String()}, nil
	}
	return Decision{Flow: name, Admitted: true}, nil
}

// NumFlows reports the number of active (committed) flows.
func (s *Server) NumFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.flows {
		if !e.pending {
			n++
		}
	}
	return n
}

// linkStates renders every shard's live aggregates.
func (s *Server) linkStates() []LinkState {
	snaps := s.adm.Snapshot()
	out := make([]LinkState, len(snaps))
	for i, sn := range snaps {
		out[i] = LinkState{
			Name:        s.linkNames[i],
			Discipline:  sn.Discipline.String(),
			Rate:        sn.Rate,
			Buffer:      sn.Buffer,
			Flows:       sn.NumFlows,
			SumRho:      sn.SumRho,
			SumSigma:    sn.SumSigma,
			Utilization: sn.Utilization(),
		}
	}
	return out
}

// SnapshotState captures the daemon's full state: every committed
// flow (sorted by name, so equal states serialize identically) plus
// the per-link aggregates. Flows with an operation in flight are
// excluded — they have not committed.
func (s *Server) SnapshotState() Snapshot {
	s.mu.Lock()
	flows := make([]FlowRecord, 0, len(s.flows))
	for name, e := range s.flows {
		if e.pending {
			continue
		}
		links := make([]string, len(e.route))
		for i, li := range e.route {
			links[i] = s.linkNames[li]
		}
		flows = append(flows, FlowRecord{Flow: name, Links: links, Spec: e.spec})
	}
	s.mu.Unlock()
	sort.Slice(flows, func(i, j int) bool { return flows[i].Flow < flows[j].Flow })
	return Snapshot{Topology: s.topoName, Links: s.linkStates(), Flows: flows}
}

// Restore replaces the daemon's state with a snapshot: every current
// reservation is released, then the snapshot's flows are re-admitted
// in name order. Flows the topology can no longer accommodate are
// reported as rejections (the rest of the restore proceeds). Restore
// refuses to run while any operation is in flight.
func (s *Server) Restore(snap Snapshot) ([]Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, e := range s.flows {
		if e.pending {
			return nil, &ConflictError{fmt.Sprintf("flow %q has an operation in flight", name)}
		}
	}
	for name, e := range s.flows {
		s.adm.ReleaseRoute(e.route, e.spec)
		delete(s.flows, name)
	}

	recs := append([]FlowRecord(nil), snap.Flows...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Flow < recs[j].Flow })
	var rejected []Decision
	for _, rec := range recs {
		if rec.Flow == "" {
			return nil, fmt.Errorf("snapshot flow with empty name")
		}
		if _, dup := s.flows[rec.Flow]; dup {
			return nil, fmt.Errorf("snapshot names flow %q twice", rec.Flow)
		}
		if err := rec.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot flow %q: %w", rec.Flow, err)
		}
		route, err := s.resolveRoute(rec.Links)
		if err != nil {
			return nil, fmt.Errorf("snapshot flow %q: %w", rec.Flow, err)
		}
		refusing, reason := s.adm.AdmitRoute(route, rec.Spec)
		if reason != core.Accepted {
			rejected = append(rejected, Decision{
				Flow:   rec.Flow,
				Link:   s.linkNames[refusing],
				Reason: reason.String(),
			})
			continue
		}
		s.flows[rec.Flow] = &flowEntry{spec: rec.Spec, route: route}
	}
	s.met.restored(len(s.flows))
	return rejected, nil
}

// ConflictError reports an operation colliding with existing state
// (duplicate join, concurrent operation on the same flow). The HTTP
// layer maps it to 409.
type ConflictError struct{ msg string }

func (e *ConflictError) Error() string { return e.msg }

// NotFoundError reports an operation on a flow the daemon does not
// know. The HTTP layer maps it to 404.
type NotFoundError struct{ msg string }

func (e *NotFoundError) Error() string { return e.msg }
