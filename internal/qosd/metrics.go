package qosd

import (
	"bufqos/internal/core"
	"bufqos/internal/metrics"
)

// serverMetrics holds the daemon's registry handles. All handles are
// nil-safe, so a Server built with a nil registry records nothing at
// zero cost.
type serverMetrics struct {
	reg *metrics.Registry

	joinAccepted   *metrics.Counter
	joinBandwidth  *metrics.Counter
	joinBuffer     *metrics.Counter
	leaveReleased  *metrics.Counter
	rerouteOK      *metrics.Counter
	rerouteBW      *metrics.Counter
	rerouteBuf     *metrics.Counter
	restores       *metrics.Counter
	activeFlows    *metrics.Gauge
	latencyJoin    *metrics.Histogram
	latencyLeave   *metrics.Histogram
	latencyReroute *metrics.Histogram
	latencyBatch   *metrics.Histogram
	httpRequests   *metrics.Counter
	httpErrors     *metrics.Counter
}

// latencyBuckets spans 1µs to ~4s in quarter-decade steps — request
// latencies for in-memory admission sit at the bottom; the top exists
// so an overloaded daemon is visible, not truncated.
func latencyBuckets() []float64 { return metrics.ExpBuckets(1e-6, 2, 23) }

func (m *serverMetrics) init(reg *metrics.Registry) {
	m.reg = reg
	m.joinAccepted = reg.Counter("qosd.join.accepted")
	m.joinBandwidth = reg.Counter("qosd.join.rejected.bandwidth-limited")
	m.joinBuffer = reg.Counter("qosd.join.rejected.buffer-limited")
	m.leaveReleased = reg.Counter("qosd.leave.released")
	m.rerouteOK = reg.Counter("qosd.reroute.accepted")
	m.rerouteBW = reg.Counter("qosd.reroute.rejected.bandwidth-limited")
	m.rerouteBuf = reg.Counter("qosd.reroute.rejected.buffer-limited")
	m.restores = reg.Counter("qosd.restore.count")
	m.activeFlows = reg.Gauge("qosd.flows.active")
	m.latencyJoin = reg.Histogram("qosd.latency.join", latencyBuckets())
	m.latencyLeave = reg.Histogram("qosd.latency.leave", latencyBuckets())
	m.latencyReroute = reg.Histogram("qosd.latency.reroute", latencyBuckets())
	m.latencyBatch = reg.Histogram("qosd.latency.batch", latencyBuckets())
	m.httpRequests = reg.Counter("qosd.http.requests")
	m.httpErrors = reg.Counter("qosd.http.errors")
}

func (m *serverMetrics) decision(r core.RejectReason, active int) {
	switch r {
	case core.Accepted:
		m.joinAccepted.Inc()
	case core.BandwidthLimited:
		m.joinBandwidth.Inc()
	default:
		m.joinBuffer.Inc()
	}
	m.activeFlows.Set(int64(active))
}

func (m *serverMetrics) released(active int) {
	m.leaveReleased.Inc()
	m.activeFlows.Set(int64(active))
}

func (m *serverMetrics) rerouted(r core.RejectReason, active int) {
	switch r {
	case core.Accepted:
		m.rerouteOK.Inc()
	case core.BandwidthLimited:
		m.rerouteBW.Inc()
	default:
		m.rerouteBuf.Inc()
	}
	m.activeFlows.Set(int64(active))
}

func (m *serverMetrics) restored(active int) {
	m.restores.Inc()
	m.activeFlows.Set(int64(active))
}
