package qosd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bufqos/internal/packet"
)

// JoinRequest asks admission for one flow over an explicit route. The
// spec uses the suffixed wire encoding ("2Mbit/s", "60KB") shared with
// the topology loader.
type JoinRequest struct {
	Flow  string          `json:"flow"`
	Links []string        `json:"links"`
	Spec  packet.FlowSpec `json:"spec"`
}

// BatchRequest carries several operations in one round trip: a
// join-only shorthand (Joins) and a mixed stream (Ops), executed in
// that order. Every entry is decided independently and in sequence —
// a rejection or per-entry error does not stop the rest — and each
// join stays atomic across its route.
type BatchRequest struct {
	Joins []JoinRequest `json:"joins,omitempty"`
	Ops   []BatchOp     `json:"ops,omitempty"`
}

// BatchOp is one entry of a mixed batch: a join (default), leave, or
// reroute. Leave ignores Links and Spec; reroute ignores Spec.
type BatchOp struct {
	Op    string           `json:"op,omitempty"` // "join" (default), "leave", "reroute"
	Flow  string           `json:"flow"`
	Links []string         `json:"links,omitempty"`
	Spec  *packet.FlowSpec `json:"spec,omitempty"`
}

// BatchResult is one batch entry's outcome: a Decision when the join
// was decided, or Error when the request itself was malformed
// (unknown link, duplicate flow name, invalid spec).
type BatchResult struct {
	Decision
	Error string `json:"error,omitempty"`
}

// BatchResponse carries one result per batch entry, in request order.
type BatchResponse struct {
	Decisions []BatchResult `json:"decisions"`
}

// LeaveRequest releases a flow's reservations.
type LeaveRequest struct {
	Flow string `json:"flow"`
}

// RerouteRequest atomically moves a flow to a new route.
type RerouteRequest struct {
	Flow  string   `json:"flow"`
	Links []string `json:"links"`
}

// RestoreResponse reports a restore: how many flows re-admitted, and
// the decisions for those the topology refused.
type RestoreResponse struct {
	Restored int        `json:"restored"`
	Rejected []Decision `json:"rejected,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	Status   string `json:"status"`
	Topology string `json:"topology"`
	Links    int    `json:"links"`
	Flows    int    `json:"flows"`
}

type apiError struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/join      admit one flow (atomic across its route)
//	POST /v1/batch     run many joins/leaves/reroutes in one round trip
//	POST /v1/leave     release a flow
//	POST /v1/reroute   move a flow to a new route atomically
//	GET  /v1/links     per-link aggregates behind eqs. (5)-(8)
//	GET  /v1/snapshot  full flow table + link aggregates
//	POST /v1/restore   replace state from a snapshot
//	GET  /healthz      liveness + population summary
//	GET  /metricz      metrics registry snapshot
//
// Decisions are 200 whether admitted or rejected — a rejection is the
// control plane working, not an error. 4xx is reserved for malformed
// requests (400), unknown flows (404), and conflicts (409).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", s.handleJoin)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/leave", s.handleLeave)
	mux.HandleFunc("POST /v1/reroute", s.handleReroute)
	mux.HandleFunc("GET /v1/links", s.handleLinks)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/restore", s.handleRestore)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metricz", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.httpRequests.Inc()
		mux.ServeHTTP(w, r)
	})
}

// decode parses a strict JSON request body (unknown fields rejected).
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeJSON emits compact JSON: decisions are the hot path and the
// indentation bytes are pure overhead there.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeErr maps service errors to status codes: ConflictError → 409,
// NotFoundError → 404, anything else → 400.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	s.met.httpErrors.Inc()
	code := http.StatusBadRequest
	var conflict *ConflictError
	var notFound *NotFoundError
	switch {
	case errors.As(err, &conflict):
		code = http.StatusConflict
	case errors.As(err, &notFound):
		code = http.StatusNotFound
	}
	s.writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req JoinRequest
	if err := decode(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	d, err := s.Join(req.Flow, req.Links, req.Spec)
	s.met.latencyJoin.Observe(time.Since(start).Seconds())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	resp := BatchResponse{Decisions: make([]BatchResult, 0, len(req.Joins)+len(req.Ops))}
	record := func(flow string, d Decision, err error) {
		if err != nil {
			resp.Decisions = append(resp.Decisions, BatchResult{Decision: Decision{Flow: flow}, Error: err.Error()})
			return
		}
		resp.Decisions = append(resp.Decisions, BatchResult{Decision: d})
	}
	for _, j := range req.Joins {
		d, err := s.Join(j.Flow, j.Links, j.Spec)
		record(j.Flow, d, err)
	}
	for _, op := range req.Ops {
		switch op.Op {
		case "", "join":
			var spec packet.FlowSpec
			if op.Spec != nil {
				spec = *op.Spec
			}
			d, err := s.Join(op.Flow, op.Links, spec)
			record(op.Flow, d, err)
		case "leave":
			err := s.Leave(op.Flow)
			record(op.Flow, Decision{Flow: op.Flow, Admitted: err == nil}, err)
		case "reroute":
			d, err := s.Reroute(op.Flow, op.Links)
			record(op.Flow, d, err)
		default:
			record(op.Flow, Decision{}, fmt.Errorf("unknown op %q", op.Op))
		}
	}
	s.met.latencyBatch.Observe(time.Since(start).Seconds())
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req LeaveRequest
	if err := decode(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	err := s.Leave(req.Flow)
	s.met.latencyLeave.Observe(time.Since(start).Seconds())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, Decision{Flow: req.Flow, Admitted: true})
}

func (s *Server) handleReroute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req RerouteRequest
	if err := decode(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	d, err := s.Reroute(req.Flow, req.Links)
	s.met.latencyReroute.Observe(time.Since(start).Seconds())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.linkStates())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.SnapshotState())
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var snap Snapshot
	if err := decode(r, &snap); err != nil {
		s.writeErr(w, err)
		return
	}
	rejected, err := s.Restore(snap)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, RestoreResponse{Restored: s.NumFlows(), Rejected: rejected})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		Topology: s.topoName,
		Links:    s.NumLinks(),
		Flows:    s.NumFlows(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.met.reg == nil {
		w.Write([]byte("{}\n")) //nolint:errcheck
		return
	}
	s.met.reg.Snapshot().WriteJSON(w) //nolint:errcheck
}
