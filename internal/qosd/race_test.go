package qosd

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// TestConcurrentJoinsMatchSequentialReplay hammers one link from 32
// goroutines through the HTTP API — joins interleaved with leaves —
// and checks the final per-link aggregates equal a sequential replay
// of the same operations on the single-threaded admitter. The link is
// provisioned so every join admits, making the final state
// independent of interleaving; run under -race this doubles as the
// data-race check on the whole handler → flow-table → shard path.
func TestConcurrentJoinsMatchSequentialReplay(t *testing.T) {
	const workers, perWorker = 32, 40
	topo := &topology.Topology{
		Name: "hammer",
		Links: []topology.Link{
			{From: "x", To: "y", Rate: units.MbitsPerSecond(1000), Buffer: units.MegaBytes(100)},
		},
	}
	s, err := New(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := func(w, i int) packet.FlowSpec {
		return packet.FlowSpec{
			TokenRate:  units.Rate(100_000 + 1000*w),
			BucketSize: units.KiloBytes(float64(1 + (w+i)%20)),
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				var d Decision
				code := call(t, ts, "POST", "/v1/join",
					JoinRequest{Flow: name, Links: []string{"x->y"}, Spec: spec(w, i)}, &d)
				if code != 200 || !d.Admitted {
					t.Errorf("join %s: code %d, %+v", name, code, d)
					return
				}
				if i%2 == 1 {
					if code := call(t, ts, "POST", "/v1/leave", LeaveRequest{Flow: name}, &d); code != 200 {
						t.Errorf("leave %s: code %d", name, code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Sequential replay of the identical operation set.
	serial := core.NewSerialAdmitter(core.DisciplineFIFO, units.MbitsPerSecond(1000), units.MegaBytes(100))
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if r := serial.Admit(spec(w, i)); r != core.Accepted {
				t.Fatalf("sequential replay refused w%d-%d: %v", w, i, r)
			}
			if i%2 == 1 {
				serial.Release(spec(w, i))
			}
		}
	}

	got := s.adm.Snapshot()[0]
	want := serial.Snapshot()
	if got.NumFlows != want.NumFlows || got.SumSigma != want.SumSigma {
		t.Errorf("concurrent final state (flows %d, Σσ %v) != sequential replay (flows %d, Σσ %v)",
			got.NumFlows, got.SumSigma, want.NumFlows, want.SumSigma)
	}
	if s.NumFlows() != want.NumFlows {
		t.Errorf("flow table has %d flows, want %d", s.NumFlows(), want.NumFlows)
	}
}

// TestConcurrentRerouteDrain spins flows between two parallel links
// from many goroutines, then leaves them all: the shards must end
// exactly empty (the multiset release path never double-counts).
func TestConcurrentRerouteDrain(t *testing.T) {
	const workers, hops = 16, 30
	topo := &topology.Topology{
		Name: "spin",
		Links: []topology.Link{
			{From: "x", To: "y", Name: "up", Rate: units.MbitsPerSecond(1000), Buffer: units.MegaBytes(100)},
			{From: "y", To: "x", Name: "down", Rate: units.MbitsPerSecond(1000), Buffer: units.MegaBytes(100)},
		},
	}
	s, err := New(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("spin%d", w)
			sp := packet.FlowSpec{TokenRate: units.MbitsPerSecond(1), BucketSize: units.KiloBytes(10)}
			var d Decision
			if code := call(t, ts, "POST", "/v1/join",
				JoinRequest{Flow: name, Links: []string{"up"}, Spec: sp}, &d); code != 200 || !d.Admitted {
				t.Errorf("join %s: code %d %+v", name, code, d)
				return
			}
			for h := 0; h < hops; h++ {
				link := []string{"up", "down"}[h%2^1]
				if code := call(t, ts, "POST", "/v1/reroute",
					RerouteRequest{Flow: name, Links: []string{link}}, &d); code != 200 || !d.Admitted {
					t.Errorf("reroute %s hop %d: code %d %+v", name, h, code, d)
					return
				}
			}
			if code := call(t, ts, "POST", "/v1/leave", LeaveRequest{Flow: name}, &d); code != 200 {
				t.Errorf("leave %s: code %d", name, code)
			}
		}(w)
	}
	wg.Wait()

	for i, sn := range s.adm.Snapshot() {
		if sn.NumFlows != 0 || sn.SumSigma != 0 || sn.SumRho != 0 {
			t.Errorf("link %d not empty after drain: %+v", i, sn)
		}
	}
	if s.NumFlows() != 0 {
		t.Errorf("flow table not empty: %d", s.NumFlows())
	}
}
