package units

import (
	"fmt"
	"strconv"
	"strings"
)

// This file gives the unit types a human-readable JSON wire form —
// "48Mbit/s", "100KB", "5ms" — shared by the topology loader and the
// qosd control-plane API, so a (σ, ρ) contract means the same bytes in
// a scenario file, a join request, and a daemon snapshot.
//
// Marshalling always picks the largest unit that represents the value
// exactly (falling back to the base unit, which always does), so every
// value round-trips bit-for-bit. Unmarshalling additionally accepts a
// bare JSON number in the base unit (bits/s, bytes, seconds).

// jsonScaled renders v as value/scale + suffix when that division is
// exact under round-trip, or "" when it is not.
func jsonScaled(v, scale float64, suffix string) string {
	s := v / scale
	if s*scale != v {
		return ""
	}
	return strconv.FormatFloat(s, 'g', -1, 64) + suffix
}

// unquote strips the quotes of a JSON string literal, reporting whether
// data was one. encoding/json hands UnmarshalJSON the raw token, so a
// plain strings.Trim suffices — escapes never appear in unit strings.
func unquote(data []byte) (string, bool) {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1], true
	}
	return s, false
}

// parseSuffixed splits a "<number><suffix>" form against a suffix→scale
// table, longest suffix first (the caller orders the table).
func parseSuffixed(s string, suffixes []struct {
	suf   string
	scale float64
}) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	for _, e := range suffixes {
		if rest, ok := strings.CutSuffix(t, e.suf); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad value in %q: %w", s, err)
			}
			return v * e.scale, nil
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: %q has no recognized unit suffix", s)
	}
	return v, nil
}

// MarshalJSON encodes the rate as a suffixed string, e.g. "48Mbit/s".
func (r Rate) MarshalJSON() ([]byte, error) {
	v := float64(r)
	for _, e := range []struct {
		scale float64
		suf   string
	}{{1e9, "Gbit/s"}, {1e6, "Mbit/s"}, {1e3, "Kbit/s"}} {
		if v >= e.scale || v <= -e.scale {
			if s := jsonScaled(v, e.scale, e.suf); s != "" {
				return []byte(`"` + s + `"`), nil
			}
		}
	}
	return []byte(`"` + strconv.FormatFloat(v, 'g', -1, 64) + `bit/s"`), nil
}

var rateSuffixes = []struct {
	suf   string
	scale float64
}{
	{"gbit/s", 1e9}, {"gb/s", 1e9}, {"gbps", 1e9},
	{"mbit/s", 1e6}, {"mb/s", 1e6}, {"mbps", 1e6},
	{"kbit/s", 1e3}, {"kb/s", 1e3}, {"kbps", 1e3},
	{"bit/s", 1}, {"b/s", 1}, {"bps", 1},
}

// UnmarshalJSON accepts "48Mbit/s" (also Mb/s, mbps, Kbit/s, Gbit/s,
// bit/s forms) or a bare number in bits/s.
func (r *Rate) UnmarshalJSON(data []byte) error {
	s, quoted := unquote(data)
	if !quoted {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("units: rate %s: %w", data, err)
		}
		*r = Rate(v)
		return nil
	}
	v, err := parseSuffixed(s, rateSuffixes)
	if err != nil {
		return fmt.Errorf("units: rate %w", err)
	}
	*r = Rate(v)
	return nil
}

// MarshalJSON encodes the size as a suffixed string, e.g. "100KB"
// (decimal units, matching the paper's convention).
func (b Bytes) MarshalJSON() ([]byte, error) {
	v := int64(b)
	switch {
	case v%1e9 == 0 && v != 0:
		return []byte(fmt.Sprintf(`"%dGB"`, v/1e9)), nil
	case v%1e6 == 0 && v != 0:
		return []byte(fmt.Sprintf(`"%dMB"`, v/1e6)), nil
	case v%1e3 == 0 && v != 0:
		return []byte(fmt.Sprintf(`"%dKB"`, v/1e3)), nil
	default:
		return []byte(fmt.Sprintf(`"%dB"`, v)), nil
	}
}

var bytesSuffixes = []struct {
	suf   string
	scale float64
}{
	{"gb", 1e9}, {"mb", 1e6}, {"kb", 1e3}, {"b", 1},
}

// UnmarshalJSON accepts "100KB", "1.5MB", "512B" (decimal units) or a
// bare number in bytes. Fractional results truncate to whole bytes,
// matching KiloBytes/MegaBytes.
func (b *Bytes) UnmarshalJSON(data []byte) error {
	s, quoted := unquote(data)
	if !quoted {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("units: size %s: %w", data, err)
		}
		*b = Bytes(v)
		return nil
	}
	v, err := parseSuffixed(s, bytesSuffixes)
	if err != nil {
		return fmt.Errorf("units: size %w", err)
	}
	*b = Bytes(v)
	return nil
}

// MarshalJSON encodes the span as a suffixed string, e.g. "5ms".
func (t Time) MarshalJSON() ([]byte, error) {
	v := float64(t)
	abs := v
	if abs < 0 {
		abs = -abs
	}
	if v != 0 && abs < 1 {
		for _, e := range []struct {
			scale float64
			suf   string
		}{{1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"}} {
			if abs >= e.scale {
				if s := jsonScaled(v, e.scale, e.suf); s != "" {
					return []byte(`"` + s + `"`), nil
				}
			}
		}
	}
	return []byte(`"` + strconv.FormatFloat(v, 'g', -1, 64) + `s"`), nil
}

var timeSuffixes = []struct {
	suf   string
	scale float64
}{
	{"ns", 1e-9}, {"us", 1e-6}, {"µs", 1e-6}, {"ms", 1e-3}, {"s", 1},
}

// UnmarshalJSON accepts "5ms", "250us", "1.5s", "80ns" or a bare number
// in seconds.
func (t *Time) UnmarshalJSON(data []byte) error {
	s, quoted := unquote(data)
	if !quoted {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("units: time %s: %w", data, err)
		}
		*t = Time(v)
		return nil
	}
	v, err := parseSuffixed(s, timeSuffixes)
	if err != nil {
		return fmt.Errorf("units: time %w", err)
	}
	*t = Time(v)
	return nil
}
