package units

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRateJSONRoundTrip(t *testing.T) {
	for _, r := range []Rate{
		0, 1, 500, Kbps, 48 * Mbps, MbitsPerSecond(1.5), MbitsPerSecond(0.4),
		2 * Gbps, Rate(123456789), Rate(math.Pi * 1e6),
	} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %v: %v", r, err)
		}
		var back Rate
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != r {
			t.Errorf("round trip %v -> %s -> %v", float64(r), b, float64(back))
		}
	}
}

func TestRateJSONForms(t *testing.T) {
	cases := []struct {
		in   string
		want Rate
	}{
		{`"48Mbit/s"`, 48 * Mbps},
		{`"48Mb/s"`, 48 * Mbps},
		{`"48mbps"`, 48 * Mbps},
		{`"1.5Gbit/s"`, 1500 * Mbps},
		{`"250Kbit/s"`, 250 * Kbps},
		{`"9600bit/s"`, 9600},
		{`"9600b/s"`, 9600},
		{`64000`, 64 * Kbps},
	}
	for _, c := range cases {
		var r Rate
		if err := json.Unmarshal([]byte(c.in), &r); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if r != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, r, c.want)
		}
	}
	if b, _ := json.Marshal(48 * Mbps); string(b) != `"48Mbit/s"` {
		t.Errorf("marshal 48Mbps = %s, want \"48Mbit/s\"", b)
	}
	var r Rate
	if err := json.Unmarshal([]byte(`"48 furlongs"`), &r); err == nil {
		t.Error("bad suffix accepted")
	}
}

func TestBytesJSONRoundTrip(t *testing.T) {
	for _, v := range []Bytes{0, 1, 999, KiloBytes(100), KiloBytes(1.5), MegaBytes(2), 123456, MegaBytes(1e3)} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Bytes
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != v {
			t.Errorf("round trip %d -> %s -> %d", int64(v), b, int64(back))
		}
	}
	cases := []struct {
		in   string
		want Bytes
	}{
		{`"100KB"`, KiloBytes(100)},
		{`"1.5MB"`, KiloBytes(1500)},
		{`"512B"`, 512},
		{`"2GB"`, MegaBytes(2000)},
		{`777`, 777},
	}
	for _, c := range cases {
		var v Bytes
		if err := json.Unmarshal([]byte(c.in), &v); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if v != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, v, c.want)
		}
	}
	if b, _ := json.Marshal(KiloBytes(100)); string(b) != `"100KB"` {
		t.Errorf("marshal 100KB = %s", b)
	}
}

func TestTimeJSONRoundTrip(t *testing.T) {
	for _, v := range []Time{0, Second, Seconds(1.5), Milliseconds(5), Milliseconds(0.25),
		Microsecond, 80 * Nanosecond, Seconds(3600), Seconds(0.0034567)} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Time
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != v {
			t.Errorf("round trip %v -> %s -> %v", float64(v), b, float64(back))
		}
	}
	cases := []struct {
		in   string
		want Time
	}{
		{`"5ms"`, Milliseconds(5)},
		{`"250us"`, 250 * Microsecond},
		{`"250µs"`, 250 * Microsecond},
		{`"1.5s"`, Seconds(1.5)},
		{`"80ns"`, 80 * Nanosecond},
		{`0.25`, Seconds(0.25)},
	}
	for _, c := range cases {
		var v Time
		if err := json.Unmarshal([]byte(c.in), &v); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if v != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, float64(v), float64(c.want))
		}
	}
	if b, _ := json.Marshal(Milliseconds(5)); string(b) != `"5ms"` {
		t.Errorf("marshal 5ms = %s", b)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Milliseconds(1500).SecondsFloat() != 1.5 {
		t.Error("SecondsFloat wrong")
	}
	if Seconds(2).Duration().Seconds() != 2 {
		t.Error("Duration wrong")
	}
	for _, c := range []struct {
		v    Time
		want string
	}{{0, "0s"}, {Seconds(2), "2s"}, {Milliseconds(5), "5ms"}, {3 * Microsecond, "3us"}, {2 * Nanosecond, "2ns"}} {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", float64(c.v), got, c.want)
		}
	}
}
