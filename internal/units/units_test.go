package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRateConstructors(t *testing.T) {
	if MbitsPerSecond(48) != 48*Mbps {
		t.Errorf("MbitsPerSecond(48) = %v, want %v", MbitsPerSecond(48), 48*Mbps)
	}
	if got := MbitsPerSecond(2.4).BitsPerSecond(); got != 2.4e6 {
		t.Errorf("2.4 Mb/s = %v bits/s", got)
	}
}

func TestRateConversions(t *testing.T) {
	r := MbitsPerSecond(8)
	if r.BytesPerSecond() != 1e6 {
		t.Errorf("8 Mb/s = %v bytes/s, want 1e6", r.BytesPerSecond())
	}
	if r.Mbits() != 8 {
		t.Errorf("Mbits() = %v, want 8", r.Mbits())
	}
}

func TestBytesConstructors(t *testing.T) {
	if KiloBytes(50) != 50000 {
		t.Errorf("KiloBytes(50) = %d, want 50000", KiloBytes(50))
	}
	if MegaBytes(1) != 1000000 {
		t.Errorf("MegaBytes(1) = %d, want 1e6", MegaBytes(1))
	}
	if KiloBytes(0.5) != 500 {
		t.Errorf("KiloBytes(0.5) = %d, want 500", KiloBytes(0.5))
	}
}

func TestBytesConversions(t *testing.T) {
	b := KiloBytes(50)
	if b.Bits() != 400000 {
		t.Errorf("50KB = %v bits", b.Bits())
	}
	if b.KB() != 50 {
		t.Errorf("KB() = %v", b.KB())
	}
	if MegaBytes(2.5).MB() != 2.5 {
		t.Errorf("MB() = %v", MegaBytes(2.5).MB())
	}
}

func TestTransmissionTime(t *testing.T) {
	// 500-byte packet on a 48 Mb/s link: 4000 bits / 48e6 b/s.
	got := TransmissionTime(500, MbitsPerSecond(48))
	want := 4000.0 / 48e6
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("TransmissionTime = %v, want %v", got, want)
	}
}

func TestTransmissionTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate did not panic")
		}
	}()
	TransmissionTime(100, 0)
}

func TestBytesAtRate(t *testing.T) {
	if got := BytesAtRate(MbitsPerSecond(8), 1.0); got != 1000000 {
		t.Errorf("8Mb/s for 1s = %v bytes", got)
	}
	if got := BytesAtRate(MbitsPerSecond(8), 0); got != 0 {
		t.Errorf("zero duration = %v bytes", got)
	}
}

func TestBytesAtRatePanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	BytesAtRate(Mbps, -1)
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{MbitsPerSecond(48).String(), "48Mb/s"},
		{Rate(2.4e9).String(), "2.4Gb/s"},
		{Rate(500).String(), "500b/s"},
		{Rate(5e3).String(), "5Kb/s"},
		{KiloBytes(50).String(), "50KB"},
		{MegaBytes(2).String(), "2MB"},
		{Bytes(500).String(), "500B"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

// Property: transmission time scales linearly in size and inversely in
// rate.
func TestPropertyTransmissionTimeLinear(t *testing.T) {
	f := func(sz uint16, mbps uint8) bool {
		if mbps == 0 {
			return true
		}
		r := MbitsPerSecond(float64(mbps))
		t1 := TransmissionTime(Bytes(sz), r)
		t2 := TransmissionTime(Bytes(sz)*2, r)
		return math.Abs(t2-2*t1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-tripping bytes through bits halves precision nowhere.
func TestPropertyBitsRoundTrip(t *testing.T) {
	f := func(kb uint16) bool {
		b := KiloBytes(float64(kb))
		return Bytes(b.Bits()/8) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
