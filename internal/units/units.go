// Package units provides the units of measure used throughout the
// simulator: data sizes in bytes, data rates in bits per second, and
// simulated time in seconds.
//
// The paper (Guérin et al., SIGCOMM '98) states buffer sizes in KBytes
// and MBytes, rates in Mbits/s, and analyses flows at bit granularity.
// To avoid unit mistakes, all conversions go through this package.
package units

import "fmt"

// Rate is a data rate in bits per second.
type Rate float64

// Common rate constructors.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
)

// MbitsPerSecond returns a Rate from a value expressed in Mbits/s, the
// unit used in the paper's tables.
func MbitsPerSecond(v float64) Rate { return Rate(v * 1e6) }

// BitsPerSecond reports the rate as a plain float64 in bits/s.
func (r Rate) BitsPerSecond() float64 { return float64(r) }

// BytesPerSecond reports the rate in bytes/s.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// Mbits reports the rate in Mbits/s.
func (r Rate) Mbits() float64 { return float64(r) / 1e6 }

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.3gGb/s", float64(r)/1e9)
	case r >= Mbps:
		return fmt.Sprintf("%.3gMb/s", float64(r)/1e6)
	case r >= Kbps:
		return fmt.Sprintf("%.3gKb/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.3gb/s", float64(r))
	}
}

// Bytes is a data size in bytes. Buffer occupancies, thresholds, and
// packet sizes are all accounted in bytes.
type Bytes int64

// Common size constructors. The paper uses decimal KBytes/MBytes
// (50 KBytes = 50,000 bytes); we follow that convention.
const (
	Byte   Bytes = 1
	KBytes       = 1000 * Byte
	MBytes       = 1000 * KBytes
)

// KiloBytes returns a size from a value in (decimal) KBytes.
func KiloBytes(v float64) Bytes { return Bytes(v * 1000) }

// MegaBytes returns a size from a value in (decimal) MBytes.
func MegaBytes(v float64) Bytes { return Bytes(v * 1e6) }

// Bits reports the size in bits.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// KB reports the size in decimal KBytes.
func (b Bytes) KB() float64 { return float64(b) / 1000 }

// MB reports the size in decimal MBytes.
func (b Bytes) MB() float64 { return float64(b) / 1e6 }

// String formats the size with an adaptive unit.
func (b Bytes) String() string {
	switch {
	case b >= MBytes:
		return fmt.Sprintf("%.3gMB", float64(b)/1e6)
	case b >= KBytes:
		return fmt.Sprintf("%.3gKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// TransmissionTime returns the time, in seconds, needed to transmit b
// bytes at rate r. It panics if r is not positive: a zero-rate link
// would silently wedge the event loop otherwise.
func TransmissionTime(b Bytes, r Rate) float64 {
	if r <= 0 {
		panic("units: non-positive rate in TransmissionTime")
	}
	return b.Bits() / r.BitsPerSecond()
}

// BytesAtRate returns how many whole bytes rate r delivers in d seconds.
func BytesAtRate(r Rate, d float64) Bytes {
	if d < 0 {
		panic("units: negative duration in BytesAtRate")
	}
	return Bytes(r.BytesPerSecond() * d)
}
