package units

import (
	"fmt"
	"time"
)

// Time is a span of simulated (or configured) time in seconds — the
// unit every kernel timestamp, propagation delay, and horizon in this
// codebase is expressed in. It exists so durations cross JSON
// boundaries with an explicit unit (see MarshalJSON) instead of as
// bare floats whose unit lives in a field name.
type Time float64

// Common duration constructors.
const (
	Second      Time = 1
	Millisecond      = 1e-3 * Second
	Microsecond      = 1e-6 * Second
	Nanosecond       = 1e-9 * Second
)

// Seconds returns a Time from a value in seconds.
func Seconds(v float64) Time { return Time(v) }

// Milliseconds returns a Time from a value in milliseconds.
func Milliseconds(v float64) Time { return Time(v * 1e-3) }

// SecondsFloat reports the span as a plain float64 in seconds, the form
// the simulation kernel consumes.
func (t Time) SecondsFloat() float64 { return float64(t) }

// Duration converts to a time.Duration (nanosecond granularity).
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// String formats the span with an adaptive unit.
func (t Time) String() string {
	v := float64(t)
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0s"
	case abs >= 1:
		return fmt.Sprintf("%.4gs", v)
	case abs >= 1e-3:
		return fmt.Sprintf("%.4gms", v*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4gus", v*1e6)
	default:
		return fmt.Sprintf("%.4gns", v*1e9)
	}
}
