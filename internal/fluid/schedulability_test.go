package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/sim"
)

// Property: the full §2.3 schedulability region. For any set of up to 6
// (σᵢ, ρᵢ) flows with Σρ < R, give each flow the threshold σᵢ + ρᵢB/R
// with B = R·Σσ/(R−Σρ) (equation 9): every conformant flow is lossless,
// even when each flow plays the worst case (fill the ρ-share, then dump
// the σ burst) at a randomized time.
func TestPropertySchedulabilityRegionLossless(t *testing.T) {
	r := 48e6
	f := func(sigmaSel [6]uint8, rhoSel [6]uint8, burstAt [6]uint8, nSel uint8) bool {
		n := int(nSel%6) + 1
		sigmas := make([]float64, n)
		rhos := make([]float64, n)
		var sumSigma, sumRho float64
		for i := 0; i < n; i++ {
			sigmas[i] = 1e5 + float64(sigmaSel[i])*4e3 // 0.1..1.1 Mbit bursts
			rhos[i] = 5e5 + float64(rhoSel[i])*2.5e4   // 0.5..6.9 Mb/s
			sumSigma += sigmas[i]
			sumRho += rhos[i]
		}
		if sumRho >= 0.95*r {
			return true // outside the admissible region
		}
		b := r * sumSigma / (r - sumRho) // equation (9)
		dt := 1e-4
		th := make([]float64, n)
		for i := 0; i < n; i++ {
			th[i] = sigmas[i] + b*rhos[i]/r + rhos[i]*dt // one-step slack
		}
		e := NewEngine(r, th, dt)
		// Each flow trickles at ρ and dumps its σ burst at a random
		// step; afterwards it continues at ρ (still conformant).
		burstStep := make([]int, n)
		done := make([]bool, n)
		for i := 0; i < n; i++ {
			burstStep[i] = int(burstAt[i]) * 150 // within the first 3.8 s
		}
		rates := make([]float64, n)
		for step := 0; step < 60000; step++ { // 6 s
			for i := 0; i < n; i++ {
				rates[i] = rhos[i] * dt
				if step == burstStep[i] && !done[i] {
					rates[i] += sigmas[i]
					done[i] = true
				}
			}
			e.Step(rates)
		}
		for i := 0; i < n; i++ {
			if e.Dropped[i] > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The engine agrees with the closed-form Example 1 trajectory: the
// greedy flow's buffer clears for the first time at t₁ = B₂/R, and the
// conformant flow receives zero service before that.
func TestEngineMatchesExample1FirstInterval(t *testing.T) {
	r := 48e6
	b := 8e6
	rho := 8e6
	dt := 1e-5
	b1 := b*rho/r + rho*dt
	b2 := b - b1
	e := NewEngine(r, []float64{b1, b2}, dt)
	e.SetGreedy(1)
	// Prime the greedy flow: the paper's Example 1 starts with
	// Q₂(0) = B₂ already in the buffer.
	e.Step([]float64{0, 0})
	t1 := b2 / r
	steps := int(t1/dt) - 2
	e.Run(steps, func(float64) []float64 { return []float64{rho, 0} })
	if e.Departed[0] > 0 {
		t.Errorf("flow 1 served %v bits before t₁ = B₂/R", e.Departed[0])
	}
	// A little beyond t₁, service begins.
	e.Run(400, func(float64) []float64 { return []float64{rho, 0} })
	if e.Departed[0] == 0 {
		t.Error("flow 1 still unserved after t₁")
	}
}

// Determinism guard: the engine is pure (no hidden state), so repeated
// runs agree bit-for-bit.
func TestEngineDeterministic(t *testing.T) {
	run := func() float64 {
		e := NewEngine(48e6, []float64{2e6, 6e6}, 1e-4)
		e.SetGreedy(1)
		rng := sim.NewRand(3)
		e.Run(20000, func(float64) []float64 {
			return []float64{8e6 * rng.Float64(), 0}
		})
		return e.Departed[0] + e.Dropped[0]*1e3 + e.Occupancy(0)*1e6
	}
	if a, b := run(), run(); math.Abs(a-b) > 0 {
		t.Errorf("engine not deterministic: %v vs %v", a, b)
	}
}
