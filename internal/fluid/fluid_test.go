package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/units"
)

func example() *Example1 {
	e, err := NewExample1(units.MbitsPerSecond(8), units.MbitsPerSecond(48), units.MegaBytes(1))
	if err != nil {
		panic(err)
	}
	return e
}

func TestExample1BufferSplit(t *testing.T) {
	e := example()
	// B₁ = B·ρ₁/R = 1MB·8/48.
	b := 1e6 * 8.0 / 48.0
	want := units.Bytes(b)
	if e.B1 != want {
		t.Errorf("B1 = %v, want %v", e.B1, want)
	}
	if e.B1+e.B2 != e.B {
		t.Errorf("B1+B2 = %v, want B = %v", e.B1+e.B2, e.B)
	}
}

func TestExample1Validation(t *testing.T) {
	cases := []struct{ rho, r float64 }{
		{0, 48}, {48, 48}, {50, 48}, {8, 0},
	}
	for _, c := range cases {
		if _, err := NewExample1(units.MbitsPerSecond(c.rho), units.MbitsPerSecond(c.r), units.MegaBytes(1)); err == nil {
			t.Errorf("ρ=%v R=%v accepted", c.rho, c.r)
		}
	}
	if _, err := NewExample1(units.Mbps, 2*units.Mbps, 0); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestExample1FirstInterval(t *testing.T) {
	e := example()
	iv := e.Intervals(1)[0]
	// t₁ = B₂/R; flow 1 receives no service, flow 2 the full link.
	wantL := e.B2.Bits() / 48e6
	if math.Abs(iv.L-wantL) > 1e-12 {
		t.Errorf("l₁ = %v, want %v", iv.L, wantL)
	}
	if iv.R1 != 0 || iv.R2 != units.MbitsPerSecond(48) {
		t.Errorf("R¹₁=%v R²₁=%v, want 0 and 48Mb/s", iv.R1, iv.R2)
	}
}

func TestExample1Recursion(t *testing.T) {
	e := example()
	ivs := e.Intervals(10)
	r := 48e6
	rho := 8e6
	b2 := e.B2.Bits()
	for i := 1; i < len(ivs); i++ {
		want := rho/r*ivs[i-1].L + b2/r
		if math.Abs(ivs[i].L-want) > 1e-9 {
			t.Fatalf("l_%d = %v, want recursion value %v", i+1, ivs[i].L, want)
		}
		if ivs[i].Start != ivs[i-1].End {
			t.Fatalf("interval %d not contiguous", i+1)
		}
		// R² = B₂/l, R¹ = R − R².
		if math.Abs(ivs[i].R2.BitsPerSecond()-b2/ivs[i].L) > 1e-3 {
			t.Fatalf("R²_%d = %v, want B₂/l", i+1, ivs[i].R2)
		}
	}
}

func TestExample1Convergence(t *testing.T) {
	e := example()
	ivs := e.Intervals(60)
	lInf, r1Inf, r2Inf := e.Limits()
	last := ivs[len(ivs)-1]
	if math.Abs(last.L-lInf)/lInf > 1e-9 {
		t.Errorf("l converged to %v, want %v", last.L, lInf)
	}
	if math.Abs(last.R1.BitsPerSecond()-r1Inf.BitsPerSecond())/r1Inf.BitsPerSecond() > 1e-9 {
		t.Errorf("R¹ converged to %v, want ρ₁ = %v", last.R1, r1Inf)
	}
	if math.Abs(last.R2.BitsPerSecond()-r2Inf.BitsPerSecond())/r2Inf.BitsPerSecond() > 1e-9 {
		t.Errorf("R² converged to %v, want R−ρ₁ = %v", last.R2, r2Inf)
	}
	// l∞ = B₂/(R−ρ₁) explicitly.
	want := e.B2.Bits() / (48e6 - 8e6)
	if math.Abs(lInf-want) > 1e-12 {
		t.Errorf("l∞ = %v, want %v", lInf, want)
	}
}

func TestExample1MonotoneApproach(t *testing.T) {
	// l_i increases monotonically to l∞; flow 1's rate increases
	// monotonically to ρ₁ (after the first interval).
	e := example()
	ivs := e.Intervals(40)
	lInf, _, _ := e.Limits()
	for i := 1; i < len(ivs); i++ {
		if ivs[i].L < ivs[i-1].L {
			t.Fatalf("l not monotone at %d", i)
		}
		if ivs[i].L > lInf+1e-9 {
			t.Fatalf("l_%d = %v overshoots limit %v", i+1, ivs[i].L, lInf)
		}
		if i >= 2 && ivs[i].R1 < ivs[i-1].R1 {
			t.Fatalf("R¹ not monotone at %d", i)
		}
	}
}

func TestExample1AsymptoticOccupancy(t *testing.T) {
	e := example()
	// Flow 1 asymptotically fills ρ₁·l∞ = ρ₁·B₂/(R−ρ₁) bytes, which for
	// this allocation equals exactly B₁ = Bρ₁/R:
	// ρ₁·(B−Bρ₁/R)/(R−ρ₁) = Bρ₁(R−ρ₁)/R/(R−ρ₁) = Bρ₁/R. ✓
	got := e.FlowOneAsymptoticOccupancy()
	if diff := math.Abs(float64(got - e.B1)); diff > 1 {
		t.Errorf("asymptotic occupancy %v, want B₁ = %v", got, e.B1)
	}
}

// --- fluid engine ---

func TestEngineWorkConservation(t *testing.T) {
	// One flow at exactly the link rate: no loss, no growing backlog.
	e := NewEngine(48e6, []float64{1e9}, 1e-4)
	e.Run(10000, func(t float64) []float64 { return []float64{48e6} })
	if e.Dropped[0] != 0 {
		t.Errorf("dropped %v bits at exactly link rate", e.Dropped[0])
	}
	// Occupancy stays at one step's worth.
	if e.Occupancy(0) > 48e6*1e-4+1 {
		t.Errorf("backlog grew to %v bits", e.Occupancy(0))
	}
}

func TestEngineFIFOOrderExact(t *testing.T) {
	// Two flows, first fills the queue, then the second: departures
	// strictly in arrival order.
	e := NewEngine(1e6, []float64{1e6, 1e6}, 1e-3)
	e.Step([]float64{5e5, 0}) // 0.5s worth of flow 0
	e.Step([]float64{0, 5e5})
	// After serving 5e5 bits (0.5 s), all departures are flow 0's.
	for i := 0; i < 498; i++ {
		e.Step([]float64{0, 0})
	}
	if e.Departed[1] > 0 {
		t.Errorf("flow 1 served %v bits before flow 0 drained", e.Departed[1])
	}
}

func TestEngineProposition1(t *testing.T) {
	// Proposition 1: conformant peak-rate flow with threshold B·ρ/R
	// against a greedy flow never loses fluid. Run well past several
	// buffer-drain cycles.
	r := 48e6
	b := 8e6 // 1 MB in bits
	rho := 8e6
	// One step of slack (ρ·dt) absorbs discretization: the continuous
	// proof's strict inequality has vanishing margin as Q₁ → B₁.
	dt := 1e-4
	b1 := b*rho/r + rho*dt
	e := NewEngine(r, []float64{b1, b - b1}, dt)
	e.SetGreedy(1)
	e.Run(200000, func(t float64) []float64 { return []float64{rho, 0} }) // 20 s
	if e.Dropped[0] != 0 {
		t.Errorf("Proposition 1 violated: conformant flow dropped %v bits (%.3g%% of offered)",
			e.Dropped[0], 100*e.Dropped[0]/e.Offered[0])
	}
	// And the flow asymptotically receives its guaranteed rate: over the
	// whole run (including the initial starvation) it must approach ρ.
	rate := e.ServiceRate(0)
	if rate < rho*0.95 {
		t.Errorf("long-run service rate %v, want ≈ ρ = %v", rate, rho)
	}
}

func TestEngineProposition1Necessity(t *testing.T) {
	// Allocating less than B·ρ/R causes loss for the conformant flow
	// (the paper's necessity example): shrink flow 1's share by 10% and
	// give the rest to the greedy flow.
	r := 48e6
	b := 8e6
	rho := 8e6
	b1 := b * rho / r * 0.9
	e := NewEngine(r, []float64{b1, b - b1}, 1e-4)
	e.SetGreedy(1)
	e.Run(200000, func(t float64) []float64 { return []float64{rho, 0} })
	if e.Dropped[0] == 0 {
		t.Error("expected losses with under-allocated threshold, saw none")
	}
}

func TestEngineProposition2(t *testing.T) {
	// Proposition 2: a (σ, ρ)-conformant flow with threshold σ + B·ρ/R
	// against a greedy flow is lossless — even for the worst-case
	// arrival: send at ρ until the B·ρ/R share is (nearly) full, then
	// dump the σ burst.
	r := 48e6
	b := 8e6
	rho := 8e6
	sigma := 4e5 // 50 KB
	dt := 1e-4
	th := sigma + b*rho/r + rho*dt // one step of discretization slack
	e := NewEngine(r, []float64{th, b - th}, dt)
	e.SetGreedy(1)

	// Phase 1: trickle at ρ for 20 s; occupancy converges to ≈ B·ρ/R.
	e.Run(200000, func(t float64) []float64 { return []float64{rho, 0} })
	// Phase 2: dump the burst in one step, then continue at ρ.
	e.Step([]float64{sigma, 0})
	e.Run(50000, func(t float64) []float64 { return []float64{rho, 0} })

	if e.Dropped[0] != 0 {
		t.Errorf("Proposition 2 violated: dropped %v bits (threshold σ+Bρ/R)", e.Dropped[0])
	}
}

func TestEngineProposition2Necessity(t *testing.T) {
	// With threshold σ·0.5 + B·ρ/R the same worst case must lose fluid.
	r := 48e6
	b := 8e6
	rho := 8e6
	sigma := 4e5
	th := 0.5*sigma + b*rho/r
	e := NewEngine(r, []float64{th, b - th}, 1e-4)
	e.SetGreedy(1)
	e.Run(200000, func(t float64) []float64 { return []float64{rho, 0} })
	e.Step([]float64{sigma, 0})
	if e.Dropped[0] == 0 {
		t.Error("expected burst loss with under-allocated σ share")
	}
}

func TestEngineGreedyKeepsShareFull(t *testing.T) {
	e := NewEngine(48e6, []float64{4e6, 4e6}, 1e-4)
	e.SetGreedy(1)
	e.Run(1000, func(t float64) []float64 { return []float64{0, 0} })
	if math.Abs(e.Occupancy(1)-4e6) > 1 {
		t.Errorf("greedy occupancy %v, want threshold 4e6", e.Occupancy(1))
	}
}

func TestEngineConservationInvariant(t *testing.T) {
	e := NewEngine(48e6, []float64{1e6, 7e6}, 1e-4)
	e.SetGreedy(1)
	e.Run(5000, func(t float64) []float64 { return []float64{8e6, 0} })
	for i := 0; i < 2; i++ {
		balance := e.Admitted[i] - e.Departed[i] - e.Occupancy(i)
		if math.Abs(balance) > 1e-3 {
			t.Errorf("flow %d: admitted−departed−queued = %v, want 0", i, balance)
		}
		if math.Abs(e.Offered[i]-e.Admitted[i]-e.Dropped[i]) > 1e-3 {
			t.Errorf("flow %d: offered ≠ admitted+dropped", i)
		}
	}
}

func TestEnginePropositionM(t *testing.T) {
	// The M(t) bound inside the Proposition 2 proof:
	// M(t) = Q₁(t) + σ₁(t) − σ₁ < B₂ρ₁/(R−ρ₁). Track σ₁(t) with the
	// burst-potential process while feeding the engine a stressful
	// pattern (on-off at peak 4ρ).
	r := 48e6
	b := 8e6
	rho := 8e6
	sigma := 4e5
	dt := 1e-4
	th := sigma + b*rho/r + rho*dt // one step of discretization slack
	b2 := b - th
	e := NewEngine(r, []float64{th, b2}, dt)
	e.SetGreedy(1)
	bp := NewBurstPotential(sigma, rho)
	bound := b2 * rho / (r - rho)
	for i := 0; i < 100000; i++ {
		// On-off: bursts at 4ρ for 50 ms, silence for 150 ms; the
		// pattern is (σ,ρ)-conformant only as long as the potential
		// stays non-negative, so clip against the token pool.
		want := 0.0
		if (i/500)%4 == 0 {
			want = 4 * rho * dt
		}
		if bp.Level() < want {
			want = math.Max(0, bp.Level())
		}
		bp.Advance(dt, want)
		e.Step([]float64{want, 0})
		m := e.Occupancy(0) + bp.Level() - sigma
		if m >= bound+r*dt {
			t.Fatalf("M(t) = %v reached bound %v at t=%v", m, bound, e.Now())
		}
	}
	if e.Dropped[0] != 0 {
		t.Errorf("conformant on-off flow lost %v bits", e.Dropped[0])
	}
}

func TestBurstPotentialBasics(t *testing.T) {
	bp := NewBurstPotential(1000, 100)
	if bp.Level() != 1000 {
		t.Fatal("initial level should be σ")
	}
	bp.Advance(1, 500) // +100 refill capped at σ, −500
	if bp.Level() != 500 {
		t.Errorf("level = %v, want 500", bp.Level())
	}
	bp.Advance(2, 0)
	if bp.Level() != 700 {
		t.Errorf("level = %v, want 700", bp.Level())
	}
	bp.Advance(100, 0)
	if bp.Level() != 1000 {
		t.Errorf("level = %v, want cap σ", bp.Level())
	}
	bp.Advance(0, 1100)
	if bp.Level() >= 0 {
		t.Error("violation should drive the level negative")
	}
}

func TestBurstPotentialValidation(t *testing.T) {
	for _, c := range []struct{ s, r float64 }{{-1, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("σ=%v ρ=%v accepted", c.s, c.r)
				}
			}()
			NewBurstPotential(c.s, c.r)
		}()
	}
}

// Property: Proposition 1 holds for arbitrary (ρ₁, B): a conformant
// CBR flow with threshold B·ρ₁/R never loses fluid against a greedy
// competitor.
func TestPropertyProposition1(t *testing.T) {
	f := func(rhoSel, bSel uint8) bool {
		r := 48e6
		rho := 1e6 + float64(rhoSel%40)*1e6 // 1..40 Mb/s
		b := 1e6 + float64(bSel)*1e5        // 1..26.5 Mbit buffers
		dt := 2e-4
		b1 := b*rho/r + rho*dt // one step of discretization slack
		e := NewEngine(r, []float64{b1, b - b1}, dt)
		e.SetGreedy(1)
		e.Run(20000, func(t float64) []float64 { return []float64{rho, 0} }) // 4 s
		return e.Dropped[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
