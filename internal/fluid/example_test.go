package fluid_test

import (
	"fmt"

	"bufqos/internal/fluid"
	"bufqos/internal/units"
)

// The §2.1 Example 1 dynamics in closed form: a conformant ρ₁ = 8 Mb/s
// flow shares a B = 120 KB FIFO with a greedy competitor on an
// R = 48 Mb/s link. The interval lengths follow
// l_{i+1} = (ρ₁/R)·l_i + B₂/R and converge to l∞ = B₂/(R−ρ₁), at which
// point flow 1 is served at exactly its reserved rate.
func ExampleExample1() {
	e, err := fluid.NewExample1(
		units.MbitsPerSecond(8), units.MbitsPerSecond(48), units.KiloBytes(120))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, iv := range e.Intervals(3) {
		fmt.Printf("l_%d = %.2f ms  R1 = %v\n", iv.Index, iv.L*1e3, iv.R1)
	}
	lInf, r1Inf, _ := e.Limits()
	fmt.Printf("l_inf = %.2f ms  R1 -> %v\n", lInf*1e3, r1Inf)
	// Output:
	// l_1 = 16.67 ms  R1 = 0b/s
	// l_2 = 19.44 ms  R1 = 6.86Mb/s
	// l_3 = 19.91 ms  R1 = 7.81Mb/s
	// l_inf = 20.00 ms  R1 -> 8Mb/s
}
