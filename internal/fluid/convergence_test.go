package fluid

import (
	"math"
	"testing"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// TestExample1ConvergenceParamSets re-runs the §2.1 Example 1 recursion
//
//	l_{k+1} = (ρ₁/R)·l_k + B₂/R
//
// for three different (ρ₁, R, B) operating points, including a
// near-capacity one, and checks (a) the fixed point satisfies the
// recursion exactly, and (b) the error |l_k − l∞| contracts by exactly
// ρ₁/R per interval — the recursion is affine, so convergence is
// geometric with that ratio from any start.
func TestExample1ConvergenceParamSets(t *testing.T) {
	cases := []struct {
		name string
		rho1 units.Rate
		r    units.Rate
		b    units.Bytes
		n    int
	}{
		{"light-load", units.MbitsPerSecond(2), units.MbitsPerSecond(10), units.KiloBytes(50), 40},
		{"half-load", units.MbitsPerSecond(45), units.MbitsPerSecond(90), units.KiloBytes(200), 60},
		{"near-capacity", units.MbitsPerSecond(30), units.MbitsPerSecond(32), units.KiloBytes(1000), 120},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewExample1(tc.rho1, tc.r, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			ivs := e.Intervals(tc.n)
			lInf, r1Inf, r2Inf := e.Limits()
			ratio := tc.rho1.BitsPerSecond() / tc.r.BitsPerSecond()

			// Fixed point: l∞ = (ρ₁/R)·l∞ + B₂/R.
			if got := ratio*lInf + e.B2.Bits()/tc.r.BitsPerSecond(); math.Abs(got-lInf)/lInf > 1e-12 {
				t.Fatalf("l∞ = %v is not a fixed point (maps to %v)", lInf, got)
			}
			// Exact geometric contraction of the error term.
			gap := math.Abs(ivs[0].L - lInf)
			for k := 1; k < len(ivs); k++ {
				want := gap * math.Pow(ratio, float64(k))
				got := math.Abs(ivs[k].L - lInf)
				if math.Abs(got-want) > 1e-9*lInf {
					t.Fatalf("interval %d: |l−l∞| = %g, want geometric %g", k+1, got, want)
				}
			}
			// The tail has converged for these n (ratio^(n−1) ≪ 1).
			last := ivs[len(ivs)-1]
			if math.Abs(last.L-lInf)/lInf > 1e-3 {
				t.Errorf("l after %d intervals = %v, limit %v", tc.n, last.L, lInf)
			}
			if math.Abs(last.R1.BitsPerSecond()-r1Inf.BitsPerSecond()) > 1e-3*r1Inf.BitsPerSecond() {
				t.Errorf("R¹ → %v, want ρ₁ = %v", last.R1, r1Inf)
			}
			if math.Abs(last.R2.BitsPerSecond()-r2Inf.BitsPerSecond()) > 1e-3*r2Inf.BitsPerSecond() {
				t.Errorf("R² → %v, want R−ρ₁ = %v", last.R2, r2Inf)
			}
		})
	}
}

// TestRequiredBufferDivergesNearCapacity checks the utilization blowup
// of equations (9)–(10): the minimal lossless FIFO buffer
// B = R·Σσ/(R−Σρ) = Σσ/(1−u) inflates by 1/(1−u), so stepping u toward
// 1 multiplies the requirement without bound, and u ≥ 1 is infeasible
// outright. (Example 1's own l∞ = B₂/(R−ρ₁) = B/R stays finite — the
// divergence lives in the buffer sizing, not the interval length.)
func TestRequiredBufferDivergesNearCapacity(t *testing.T) {
	r := units.MbitsPerSecond(100)
	sigma := units.KiloBytes(100)
	need := func(u float64) units.Bytes {
		spec := packet.FlowSpec{
			PeakRate:   r,
			TokenRate:  units.Rate(u * r.BitsPerSecond()),
			BucketSize: sigma,
		}
		b, err := core.RequiredBufferFIFO([]packet.FlowSpec{spec}, r)
		if err != nil {
			t.Fatalf("u=%g: %v", u, err)
		}
		return b
	}
	us := []float64{0.5, 0.9, 0.99, 0.999}
	prev := units.Bytes(0)
	for _, u := range us {
		b := need(u)
		want := float64(sigma) / (1 - u)
		if math.Abs(float64(b)-want) > 2 { // Ceil rounding
			t.Errorf("u=%g: B = %v, want Σσ/(1−u) = %.0fB", u, b, want)
		}
		if b <= prev {
			t.Errorf("u=%g: B = %v did not grow from %v", u, b, prev)
		}
		prev = b
	}
	// Each decade toward u=1 costs a decade of buffer: 1/(1−u) scaling.
	if lo, hi := need(0.9), need(0.999); float64(hi)/float64(lo) < 99 {
		t.Errorf("B(0.999)/B(0.9) = %.1f, want ≈ 100", float64(hi)/float64(lo))
	}
	// At u ≥ 1 no buffer suffices.
	full := packet.FlowSpec{PeakRate: r, TokenRate: r, BucketSize: sigma}
	if _, err := core.RequiredBufferFIFO([]packet.FlowSpec{full}, r); err == nil {
		t.Error("u=1 accepted; want bandwidth-limited error")
	}
}
