// Package fluid implements the paper's fluid-model analysis: the
// Example 1 greedy-competitor dynamics of §2.1, a discretized fluid
// FIFO engine for verifying Propositions 1 and 2 numerically, and the
// burst-potential process of equation (3).
package fluid

import (
	"fmt"

	"bufqos/internal/units"
)

// Example1 reproduces the closed-form dynamics of §2.1, Example 1: a
// conformant constant-rate flow (rate ρ₁) shares a FIFO buffer of size
// B with a greedy flow that always keeps its buffer share B₂ = B − B₁
// full, where B₁ = B·ρ₁/R.
type Example1 struct {
	Rho1 units.Rate
	R    units.Rate
	B    units.Bytes
	// B1 and B2 are the derived buffer shares.
	B1, B2 units.Bytes
}

// NewExample1 validates and derives the buffer split.
func NewExample1(rho1, r units.Rate, b units.Bytes) (*Example1, error) {
	if r <= 0 || rho1 <= 0 || rho1 >= r {
		return nil, fmt.Errorf("fluid: need 0 < ρ₁ < R, got ρ₁=%v R=%v", rho1, r)
	}
	if b <= 0 {
		return nil, fmt.Errorf("fluid: need positive buffer, got %v", b)
	}
	b1 := units.Bytes(float64(b) * rho1.BitsPerSecond() / r.BitsPerSecond())
	return &Example1{Rho1: rho1, R: r, B: b, B1: b1, B2: b - b1}, nil
}

// Interval describes the dynamics between the greedy flow's buffer
// "clearing" times t_{i-1} and t_i.
type Interval struct {
	// Index is i (1-based, as in the paper).
	Index int
	// Start and End are t_{i-1} and t_i in seconds.
	Start, End float64
	// L is the interval length l_i = t_i − t_{i-1}.
	L float64
	// R1 and R2 are the service rates of flows 1 and 2 during the
	// interval.
	R1, R2 units.Rate
}

// Intervals iterates the recursion
//
//	l_{i+1} = (ρ₁/R)·l_i + B₂/R,   R²ᵢ = B₂/l_i,   R¹ᵢ = R − R²ᵢ
//
// for n intervals starting from l₁ = B₂/R (during which flow 1 receives
// no service at all).
func (e *Example1) Intervals(n int) []Interval {
	out := make([]Interval, 0, n)
	r := e.R.BitsPerSecond()
	rho := e.Rho1.BitsPerSecond()
	b2 := e.B2.Bits()
	t := 0.0
	l := b2 / r // l₁
	for i := 1; i <= n; i++ {
		r2 := b2 / l
		r1 := r - r2
		if i == 1 {
			// The paper: R¹₁ = 0, R²₁ = R exactly.
			r1, r2 = 0, r
		}
		out = append(out, Interval{
			Index: i, Start: t, End: t + l, L: l,
			R1: units.Rate(r1), R2: units.Rate(r2),
		})
		t += l
		l = rho/r*l + b2/r
	}
	return out
}

// Limits returns the asymptotic values shown in §2.1:
//
//	l∞ = B₂/(R−ρ₁),  R¹∞ = ρ₁,  R²∞ = R−ρ₁
func (e *Example1) Limits() (l float64, r1, r2 units.Rate) {
	l = e.B2.Bits() / (e.R.BitsPerSecond() - e.Rho1.BitsPerSecond())
	return l, e.Rho1, e.R - e.Rho1
}

// FlowOneAsymptoticOccupancy returns the steady-state buffer occupancy
// of flow 1: ρ₁·l∞ = ρ₁·B₂/(R−ρ₁), which the paper shows approaches
// (but never exceeds) B₁ ... in fact equals B·ρ₁/R only in the limit of
// the allocation being tight. Returned in bytes.
func (e *Example1) FlowOneAsymptoticOccupancy() units.Bytes {
	l, _, _ := e.Limits()
	return units.Bytes(e.Rho1.BytesPerSecond() * l)
}
