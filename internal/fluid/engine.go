package fluid

import (
	"fmt"
	"math"
)

// Engine is a discretized fluid FIFO multiplexer with per-flow
// occupancy thresholds — the exact model of §2. Fluid is admitted up to
// each flow's threshold, queued in arrival order (slugs of interleaved
// per-flow volume), and drained at the link rate. All volumes are in
// bits, rates in bits/s, time in seconds.
//
// Each call to Step advances the model by dt: first the server drains
// R·dt bits from the head of the queue, then new arrivals are admitted
// against the thresholds. Greedy flows (see SetGreedy) top their
// occupancy up to their threshold every step, modelling the paper's
// "greedy" competitor whose Q(t) = B₂ for all t.
type Engine struct {
	R          float64   // link rate, bits/s
	Thresholds []float64 // per-flow occupancy caps, bits

	dt    float64
	now   float64
	queue []slug
	head  int
	occ   []float64 // per-flow occupancy, bits

	greedy []bool

	// Cumulative per-flow accounting, bits.
	Offered  []float64
	Admitted []float64
	Dropped  []float64
	Departed []float64
}

type slug struct {
	flow int
	vol  float64
}

// NewEngine creates a fluid engine with the given link rate (bits/s),
// per-flow thresholds (bits) and time step dt (seconds).
func NewEngine(r float64, thresholds []float64, dt float64) *Engine {
	if r <= 0 || dt <= 0 {
		panic(fmt.Sprintf("fluid: invalid rate %v or dt %v", r, dt))
	}
	n := len(thresholds)
	if n == 0 {
		panic("fluid: no flows")
	}
	return &Engine{
		R: r, Thresholds: append([]float64(nil), thresholds...), dt: dt,
		occ:     make([]float64, n),
		greedy:  make([]bool, n),
		Offered: make([]float64, n), Admitted: make([]float64, n),
		Dropped: make([]float64, n), Departed: make([]float64, n),
	}
}

// SetGreedy marks a flow as greedy: each step it offers exactly enough
// fluid to keep its occupancy at its threshold.
func (e *Engine) SetGreedy(flow int) { e.greedy[flow] = true }

// Now returns the simulated time.
func (e *Engine) Now() float64 { return e.now }

// Occupancy returns a flow's current queued volume in bits.
func (e *Engine) Occupancy(flow int) float64 { return e.occ[flow] }

// TotalOccupancy returns the queued volume across flows.
func (e *Engine) TotalOccupancy() float64 {
	t := 0.0
	for _, q := range e.occ {
		t += q
	}
	return t
}

// Step advances the model by dt. arrivals[i] is the volume (bits) flow
// i offers during this step; greedy flows ignore their entry and top up
// instead.
func (e *Engine) Step(arrivals []float64) {
	if len(arrivals) != len(e.occ) {
		panic(fmt.Sprintf("fluid: %d arrival entries for %d flows", len(arrivals), len(e.occ)))
	}
	// Serve R·dt bits from the head of the FIFO.
	budget := e.R * e.dt
	for budget > 0 && e.head < len(e.queue) {
		s := &e.queue[e.head]
		take := math.Min(budget, s.vol)
		s.vol -= take
		budget -= take
		e.occ[s.flow] -= take
		e.Departed[s.flow] += take
		if s.vol <= 1e-12 {
			e.occ[s.flow] = math.Max(0, e.occ[s.flow])
			e.head++
		}
	}
	if e.head > 1024 && e.head*2 >= len(e.queue) {
		n := copy(e.queue, e.queue[e.head:])
		e.queue = e.queue[:n]
		e.head = 0
	}
	// Admit arrivals against thresholds.
	for i, offered := range arrivals {
		if e.greedy[i] {
			offered = math.Max(0, e.Thresholds[i]-e.occ[i])
		}
		if offered <= 0 {
			continue
		}
		e.Offered[i] += offered
		room := e.Thresholds[i] - e.occ[i]
		adm := math.Min(offered, math.Max(0, room))
		if adm > 0 {
			e.queue = append(e.queue, slug{flow: i, vol: adm})
			e.occ[i] += adm
			e.Admitted[i] += adm
		}
		e.Dropped[i] += offered - adm
	}
	e.now += e.dt
}

// Run advances the engine n steps, calling rates(t) for the per-flow
// arrival rates (bits/s) at the start of each step; the engine converts
// them to per-step volumes. Pass nil entries... rates must return a
// slice of length NumFlows.
func (e *Engine) Run(n int, rates func(t float64) []float64) {
	buf := make([]float64, len(e.occ))
	for i := 0; i < n; i++ {
		rs := rates(e.now)
		for j, r := range rs {
			buf[j] = r * e.dt
		}
		e.Step(buf)
	}
}

// ServiceRate returns flow's average departure rate (bits/s) over a
// window by sampling Departed before/after externally; helper for
// tests: returns cumulative departed bits divided by elapsed time.
func (e *Engine) ServiceRate(flow int) float64 {
	if e.now == 0 {
		return 0
	}
	return e.Departed[flow] / e.now
}

// BurstPotential tracks σ(t) of equation (3) incrementally for a fluid
// arrival process: the token-pool level of a (σ, ρ) leaky bucket fed by
// the flow. Advance returns the level after the step; a negative level
// means the arrival process violated its envelope.
type BurstPotential struct {
	Sigma, Rho float64 // bits, bits/s
	level      float64
}

// NewBurstPotential starts with a full token pool, σ(0) = σ.
func NewBurstPotential(sigma, rho float64) *BurstPotential {
	if sigma < 0 || rho <= 0 {
		panic(fmt.Sprintf("fluid: invalid burst potential σ=%v ρ=%v", sigma, rho))
	}
	return &BurstPotential{Sigma: sigma, Rho: rho, level: sigma}
}

// Level returns the current σ(t).
func (b *BurstPotential) Level() float64 { return b.level }

// Advance moves time forward by dt seconds during which the flow
// emitted arrived bits, and returns the new level.
func (b *BurstPotential) Advance(dt, arrived float64) float64 {
	b.level = math.Min(b.Sigma, b.level+b.Rho*dt) - arrived
	return b.level
}
