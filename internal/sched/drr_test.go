package sched

import (
	"math"
	"testing"
	"testing/quick"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

func TestDRREqualWeightsAlternate(t *testing.T) {
	d := NewDRR([]units.Rate{units.Mbps, units.Mbps}, 500)
	for i := 0; i < 6; i++ {
		d.Enqueue(mkPkt(i%2, 500, uint64(i)))
	}
	// Equal quanta and equal sizes: strict alternation.
	var flows []int
	for p := d.Dequeue(); p != nil; p = d.Dequeue() {
		flows = append(flows, p.Flow)
	}
	for i := 1; i < len(flows); i++ {
		if flows[i] == flows[i-1] {
			t.Fatalf("no alternation: %v", flows)
		}
	}
}

func TestDRRWeightedSharesEndToEnd(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	d := NewDRR([]units.Rate{3 * units.Mbps, units.Mbps}, 500)
	var got [2]units.Bytes
	link := NewLink(s, rate, d, buffer.NewUnlimited(2), nil)
	link.OnDepart = func(p *packet.Packet) { got[p.Flow] += p.Size }
	for i := 0; i < 2; i++ {
		src := source.NewSaturating(s, i, 500, rate, link)
		src.Start()
	}
	s.RunUntil(2)
	ratio := float64(got[0]) / float64(got[1])
	if math.Abs(ratio-3) > 0.1 {
		t.Errorf("3:1 weights served ratio %.3f", ratio)
	}
}

func TestDRRWorkConserving(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	d := NewDRR([]units.Rate{units.Mbps, 4 * units.Mbps}, 500)
	var delivered units.Bytes
	link := NewLink(s, rate, d, buffer.NewTailDrop(units.KiloBytes(50), 2), nil)
	link.OnDepart = func(p *packet.Packet) { delivered += p.Size }
	src := source.NewSaturating(s, 0, 500, 2*rate, link)
	src.Start()
	const dur = 1.0
	s.RunUntil(dur)
	if float64(delivered) < rate.BytesPerSecond()*dur-1500 {
		t.Errorf("DRR idled while backlogged: delivered %v", delivered)
	}
}

func TestDRRPerFlowFIFO(t *testing.T) {
	d := NewDRR([]units.Rate{units.Mbps}, 500)
	for i := 0; i < 5; i++ {
		d.Enqueue(mkPkt(0, 500, uint64(i)))
	}
	for i := 0; i < 5; i++ {
		if p := d.Dequeue(); p.Seq != uint64(i) {
			t.Fatalf("order violated: got %d want %d", p.Seq, i)
		}
	}
	if d.Dequeue() != nil {
		t.Fatal("drained DRR returned a packet")
	}
}

func TestDRRVariablePacketSizes(t *testing.T) {
	// The deficit mechanism must not starve a flow with large packets:
	// flow 0 sends 1500B packets, flow 1 sends 100B, equal weights with
	// a small MTU quantum. Over a long run both get equal bytes.
	d := NewDRR([]units.Rate{units.Mbps, units.Mbps}, 200)
	for i := 0; i < 300; i++ {
		d.Enqueue(mkPkt(0, 1500, uint64(i)))
		for j := 0; j < 15; j++ {
			d.Enqueue(mkPkt(1, 100, uint64(i*15+j)))
		}
	}
	// Serve a budget well below the enqueued volume.
	var served [2]units.Bytes
	for total := units.Bytes(0); total < 200000; {
		p := d.Dequeue()
		if p == nil {
			break
		}
		served[p.Flow] += p.Size
		total += p.Size
	}
	ratio := float64(served[0]) / float64(served[1])
	if math.Abs(ratio-1) > 0.1 {
		t.Errorf("byte-fairness ratio %.3f with mixed packet sizes, want ≈ 1", ratio)
	}
}

func TestDRRValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewDRR(nil, 500) },
		func() { NewDRR([]units.Rate{0}, 500) },
		func() { NewDRR([]units.Rate{units.Mbps}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: DRR conserves packets under random interleavings.
func TestPropertyDRRConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDRR([]units.Rate{units.Mbps, 2 * units.Mbps, 5 * units.Mbps}, 300)
		next := make([]uint64, 3)
		seqs := make([]uint64, 3)
		inFlight := 0
		for _, op := range ops {
			flow := int(op) % 3
			if op%3 == 0 && inFlight > 0 {
				p := d.Dequeue()
				if p == nil {
					return false
				}
				if p.Seq != next[p.Flow] {
					return false
				}
				next[p.Flow]++
				inFlight--
			} else {
				d.Enqueue(mkPkt(flow, units.Bytes(op%1200)+100, seqs[flow]))
				seqs[flow]++
				inFlight++
			}
			if d.Len() != inFlight {
				return false
			}
		}
		for p := d.Dequeue(); p != nil; p = d.Dequeue() {
			if p.Seq != next[p.Flow] {
				return false
			}
			next[p.Flow]++
			inFlight--
		}
		return inFlight == 0 && d.Len() == 0 && d.Backlog() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
