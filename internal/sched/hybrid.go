package sched

import (
	"fmt"

	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// Hybrid is the §4 architecture: flows are grouped into a small number
// k of FIFO queues, and a WFQ scheduler serves the queues with weights
// equal to their allocated rates Rᵢ. Inside each queue, packets are
// served in FIFO order, and isolation between the flows sharing a queue
// comes from buffer management (a per-queue threshold or sharing
// manager wired up by buffer.Partitioned).
//
// With one flow per queue the hybrid degenerates to per-flow WFQ; with
// one queue it degenerates to plain FIFO. The scheduler's sorted-list
// work is O(log k) regardless of the number of flows — the scalability
// argument of the paper.
type Hybrid struct {
	wfq     *WFQ
	queueOf []int
}

// NewHybrid builds a hybrid scheduler. queueOf[flow] gives the FIFO
// queue index of each flow and queueRates[q] the WFQ service rate
// (weight) of queue q; rates normally come from core.AllocateHybrid.
func NewHybrid(rate units.Rate, now func() float64, queueOf []int, queueRates []units.Rate) *Hybrid {
	for f, q := range queueOf {
		if q < 0 || q >= len(queueRates) {
			panic(fmt.Sprintf("hybrid: flow %d mapped to invalid queue %d", f, q))
		}
	}
	return &Hybrid{
		wfq:     NewWFQ(rate, now, queueRates),
		queueOf: append([]int(nil), queueOf...),
	}
}

// Instrument delegates to the inner WFQ's virtual-time counter.
func (h *Hybrid) Instrument(r *metrics.Registry) { h.wfq.Instrument(r) }

// QueueOf returns the queue index a flow is assigned to.
func (h *Hybrid) QueueOf(flow int) int { return h.queueOf[flow] }

// NumQueues returns k.
func (h *Hybrid) NumQueues() int { return len(h.wfq.flows) }

// Enqueue implements Scheduler. The packet keeps its flow identity; only
// the scheduling key is the queue index.
func (h *Hybrid) Enqueue(p *packet.Packet) {
	q := h.queueOf[p.Flow]
	// The inner WFQ keys everything by its "flow" = queue index. Wrap
	// the packet reference by temporarily re-keying: WFQ only reads
	// p.Flow at Enqueue time, so re-key around the call.
	orig := p.Flow
	p.Flow = q
	h.wfq.Enqueue(p)
	p.Flow = orig
}

// Dequeue implements Scheduler.
func (h *Hybrid) Dequeue() *packet.Packet { return h.wfq.Dequeue() }

// Len implements Scheduler.
func (h *Hybrid) Len() int { return h.wfq.Len() }

// Backlog implements Scheduler.
func (h *Hybrid) Backlog() units.Bytes { return h.wfq.Backlog() }

// QueueBacklog returns the queued packets of one of the k queues.
func (h *Hybrid) QueueBacklog(q int) int { return h.wfq.FlowBacklog(q) }
