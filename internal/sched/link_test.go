package sched

import (
	"math"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

func TestLinkTransmitsAtLinkRate(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	col := stats.NewCollector(1, 0)
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(units.KiloBytes(100), 1), col)
	src := source.NewSaturating(s, 0, 500, units.MbitsPerSecond(96), link)
	src.Start()
	const dur = 1.0
	s.RunUntil(dur)
	thr := col.AggregateThroughput(dur)
	if math.Abs(thr.BitsPerSecond()-48e6)/48e6 > 0.01 {
		t.Errorf("saturated link throughput %v, want 48Mb/s", thr)
	}
}

func TestLinkDropsWhenManagerRejects(t *testing.T) {
	s := sim.New()
	col := stats.NewCollector(1, 0)
	// Tiny buffer: most packets of a 2x-oversubscribed source drop.
	link := NewLink(s, units.MbitsPerSecond(4), NewFIFO(), buffer.NewTailDrop(1000, 1), col)
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(8), link)
	src.Start()
	s.RunUntil(1)
	f := col.Flow(0)
	if f.Dropped.Total().Packets == 0 {
		t.Error("no drops despite 2x oversubscription and tiny buffer")
	}
	offered := f.Offered.Total().Packets
	kept := f.Departed.Total().Packets + f.Dropped.Total().Packets
	// Conservation: offered = departed + dropped + still queued (≤ 2 pkts + 1 in service).
	if offered-kept > 3 {
		t.Errorf("conservation violated: offered %d, departed+dropped %d", offered, kept)
	}
}

func TestLinkOccupancyReleasedOnDeparture(t *testing.T) {
	s := sim.New()
	mgr := buffer.NewTailDrop(units.KiloBytes(10), 1)
	link := NewLink(s, units.MbitsPerSecond(8), NewFIFO(), mgr, nil)
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	if mgr.Total() != 1000 {
		t.Fatalf("occupancy %v after two arrivals", mgr.Total())
	}
	s.Run(0)
	if mgr.Total() != 0 {
		t.Errorf("occupancy %v after drain, want 0", mgr.Total())
	}
	if link.Busy() {
		t.Error("link still busy after drain")
	}
}

func TestLinkWorkConservation(t *testing.T) {
	// The link must never idle while packets are queued: delivered bytes
	// over a saturated interval equal rate × time exactly (± one packet).
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	col := stats.NewCollector(1, 0)
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(units.KiloBytes(50), 1), col)
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(16), link)
	src.Start()
	const dur = 2.0
	s.RunUntil(dur)
	delivered := col.Flow(0).Departed.Total().Bytes.Bits()
	capacity := rate.BitsPerSecond() * dur
	if capacity-delivered > 2*500*8 {
		t.Errorf("delivered %v bits of %v possible: link idled while backlogged", delivered, capacity)
	}
}

func TestLinkHooksFire(t *testing.T) {
	s := sim.New()
	link := NewLink(s, units.MbitsPerSecond(8), NewFIFO(), buffer.NewTailDrop(600, 1), nil)
	var drops, departs int
	link.OnDrop = func(*packet.Packet) { drops++ }
	link.OnDepart = func(*packet.Packet) { departs++ }
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	link.Receive(&packet.Packet{Flow: 0, Size: 500}) // buffer full: dropped
	s.Run(0)
	if drops != 1 || departs != 1 {
		t.Errorf("hooks: drops=%d departs=%d, want 1,1", drops, departs)
	}
}

func TestLinkValidation(t *testing.T) {
	s := sim.New()
	cases := []func(){
		func() { NewLink(s, 0, NewFIFO(), buffer.NewTailDrop(100, 1), nil) },
		func() { NewLink(s, units.Mbps, nil, buffer.NewTailDrop(100, 1), nil) },
		func() { NewLink(s, units.Mbps, NewFIFO(), nil, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("validation case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinkFIFODelayMatchesQueueingTheory(t *testing.T) {
	// Deterministic check: with the buffer pre-filled to Q bytes, a FIFO
	// arrival waits exactly Q·8/R before its own transmission completes
	// at +L·8/R — the (Q₁+Q₂)/R argument in the paper's §2.1 proof.
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(units.KiloBytes(100), 2), nil)
	for i := 0; i < 10; i++ {
		link.Receive(&packet.Packet{Flow: 0, Size: 500})
	}
	var done float64
	probe := &packet.Packet{Flow: 1, Size: 500, Arrived: 0}
	link.OnDepart = func(p *packet.Packet) {
		if p.Flow == 1 {
			done = s.Now()
		}
	}
	link.Receive(probe)
	s.Run(0)
	want := 11 * units.TransmissionTime(500, rate)
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("probe finished at %v, want %v", done, want)
	}
}

func TestHybridEndToEndQueueRates(t *testing.T) {
	// Two queues with rates 36 and 12 Mb/s, both saturated by their
	// member flows: delivered bytes split 3:1.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	col := stats.NewCollector(2, 0.2)
	queueOf := []int{0, 1}
	qRates := []units.Rate{units.MbitsPerSecond(36), units.MbitsPerSecond(12)}
	h := NewHybrid(rate, s.Now, queueOf, qRates)
	mgr := buffer.NewPartitioned(queueOf, []buffer.Manager{
		buffer.NewTailDrop(units.KiloBytes(50), 2),
		buffer.NewTailDrop(units.KiloBytes(50), 2),
	})
	link := NewLink(s, rate, h, mgr, col)
	for i := 0; i < 2; i++ {
		src := source.NewSaturating(s, i, 500, rate, link)
		src.Start()
	}
	const dur = 2.0
	s.RunUntil(dur)
	b0 := float64(col.Flow(0).Departed.Total().Bytes)
	b1 := float64(col.Flow(1).Departed.Total().Bytes)
	if ratio := b0 / b1; math.Abs(ratio-3) > 0.1 {
		t.Errorf("queue service ratio %.3f, want 3", ratio)
	}
}

func TestLinkSetRateTakesEffectOnNextPacket(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(4)
	col := stats.NewCollector(1, 0)
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(units.KiloBytes(100), 1), col)
	// Two packets enqueued back-to-back: the first serializes at the old
	// rate even though SetRate fires mid-transmission; the second at the
	// new rate.
	var times []float64
	link.OnDepart = func(p *packet.Packet) { times = append(times, s.Now()) }
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	s.After(1e-6, func() { link.SetRate(units.MbitsPerSecond(8)) })
	s.Run(0)
	if len(times) != 2 {
		t.Fatalf("departures: %d, want 2", len(times))
	}
	slow := units.TransmissionTime(500, units.MbitsPerSecond(4))
	fast := units.TransmissionTime(500, units.MbitsPerSecond(8))
	if math.Abs(times[0]-slow) > 1e-12 {
		t.Errorf("first departure at %v, want %v (old rate)", times[0], slow)
	}
	if math.Abs(times[1]-(slow+fast)) > 1e-12 {
		t.Errorf("second departure at %v, want %v (new rate)", times[1], slow+fast)
	}
	if link.Rate() != units.MbitsPerSecond(8) {
		t.Errorf("Rate() = %v after SetRate", link.Rate())
	}
}

func TestLinkSetRateRejectsNonPositive(t *testing.T) {
	s := sim.New()
	link := NewLink(s, units.MbitsPerSecond(4), NewFIFO(), buffer.NewTailDrop(1000, 1), nil)
	defer func() {
		if recover() == nil {
			t.Error("SetRate(0) did not panic")
		}
	}()
	link.SetRate(0)
}

func TestLinkFailureHaltsServiceAndRecoveryResumes(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(4)
	col := stats.NewCollector(1, 0)
	// Buffer fits exactly two packets: while the link is down, arrivals
	// beyond that must drop.
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(1000, 1), col)
	if link.Down() {
		t.Fatal("new link reports Down")
	}
	link.SetDown(true)
	for i := 0; i < 4; i++ {
		link.Receive(&packet.Packet{Flow: 0, Size: 500})
	}
	s.Run(0)
	f := col.Flow(0)
	if got := f.Departed.Total().Packets; got != 0 {
		t.Errorf("failed link transmitted %d packets", got)
	}
	if got := f.Dropped.Total().Packets; got != 2 {
		t.Errorf("dropped %d packets while down, want 2 (buffer holds 2)", got)
	}
	link.SetDown(false)
	s.Run(0)
	if got := f.Departed.Total().Packets; got != 2 {
		t.Errorf("recovered link delivered %d queued packets, want 2", got)
	}
	// Idempotent recover on an idle link must not double-start service.
	link.SetDown(false)
	s.Run(0)
	if got := f.Departed.Total().Packets; got != 2 {
		t.Errorf("idempotent recover replayed service: %d departures", got)
	}
}

func TestLinkInFlightPacketCompletesAcrossFailure(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(4)
	col := stats.NewCollector(1, 0)
	link := NewLink(s, rate, NewFIFO(), buffer.NewTailDrop(units.KiloBytes(10), 1), col)
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	// Fail mid-first-transmission: the wire finishes the first packet,
	// then service halts with the second still queued.
	s.After(1e-6, func() { link.SetDown(true) })
	s.Run(0)
	if got := col.Flow(0).Departed.Total().Packets; got != 1 {
		t.Errorf("departures with failure mid-transmission: %d, want 1", got)
	}
	link.SetDown(false)
	s.Run(0)
	if got := col.Flow(0).Departed.Total().Packets; got != 2 {
		t.Errorf("departures after recovery: %d, want 2", got)
	}
}

// TestLinkCountsPushoutsAsDrops is the pushout drop-accounting
// regression test: victims evicted by a PushoutNotifier scheduler must
// show up in the statistics collector, the sched.pushouts metric, and
// the OnDrop hook, so packet conservation (offered = departed +
// dropped + queued) holds for pushout schemes.
func TestLinkCountsPushoutsAsDrops(t *testing.T) {
	s := sim.New()
	col := stats.NewCollector(2, 0)
	// Two flows share a 2000-byte buffer; flow 1 is guaranteed the
	// whole of it, flow 0 nothing — so flow 1 arrivals push out flow 0.
	po := NewPushoutFIFO(2000, []units.Bytes{0, 2000})
	link := NewLink(s, units.MbitsPerSecond(8), po, po, col)
	reg := metrics.NewRegistry()
	link.Instrument(reg, "pushout")
	var hooked int
	link.OnDrop = func(p *packet.Packet) { hooked++ }

	// Fill the buffer with flow-0 packets (first is dequeued into
	// service immediately), then overflow with flow 1.
	for i := 0; i < 5; i++ {
		link.Receive(&packet.Packet{Flow: 0, Size: 500})
	}
	for i := 0; i < 4; i++ {
		link.Receive(&packet.Packet{Flow: 1, Size: 500})
	}
	// The 5th flow-0 packet tail-drops (flow 0 has no share). Three of
	// the four flow-1 arrivals evict the three queued flow-0 packets;
	// the fourth finds only the in-service packet and tail-drops. So
	// flow 0 loses 4 packets total (1 tail drop + 3 pushouts), and the
	// OnDrop hook sees every loss either way (2 tail drops + 3
	// pushouts).
	f0 := col.Flow(0)
	if got := f0.Dropped.Total().Packets; got != 4 {
		t.Errorf("flow 0 dropped %d packets in the collector, want 4 (1 tail drop + 3 pushouts)", got)
	}
	if got := reg.Counter("sched.pushouts.pushout").Value(); got != 3 {
		t.Errorf("sched.pushouts.pushout = %d, want 3", got)
	}
	if hooked != 5 {
		t.Errorf("OnDrop saw %d packets, want 5", hooked)
	}
	s.Run(0)
	// Conservation across both flows: everything offered either
	// departed or was dropped once the link drains.
	for flow := 0; flow < 2; flow++ {
		f := col.Flow(flow)
		if f.Offered.Total().Packets != f.Departed.Total().Packets+f.Dropped.Total().Packets {
			t.Errorf("flow %d: offered %d != departed %d + dropped %d", flow,
				f.Offered.Total().Packets, f.Departed.Total().Packets, f.Dropped.Total().Packets)
		}
	}
}
