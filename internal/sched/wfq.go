package sched

import (
	"container/heap"
	"fmt"

	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// WFQ is packetized Weighted Fair Queueing (PGPS): each flow has its own
// FIFO queue and a weight φᵢ, and the scheduler transmits the packet
// that would finish first in the fluid GPS reference system.
//
// The GPS virtual time V(t) is tracked exactly, not approximated: between
// scheduler events V advances at rate R/Σφ over the GPS-backlogged flows,
// and GPS departures inside an interval are replayed iteratively
// (Demers–Keshav–Shenker). A packet of flow i arriving at time t gets
//
//	S = max(V(t), F_prev(i)),  F = S + L/φᵢ
//
// and flows are served in increasing order of the head-packet finish tag.
//
// Weights are expressed in rate units (bits/s); the paper sets φᵢ to the
// flow's reserved token rate ρᵢ.
type WFQ struct {
	rate    units.Rate
	flows   []wfqFlow
	ready   readyHeap // non-empty packet queues, keyed by head finish tag
	gps     gpsHeap   // GPS-backlogged flows, keyed by last finish tag
	v       float64   // GPS virtual time
	lastT   float64   // real time of the last virtual-time update
	sumPhi  float64   // Σφ over GPS-backlogged flows
	nowFn   func() float64
	len     int
	backlog units.Bytes

	mAdvances *metrics.Counter // nil unless instrumented
}

// Instrument registers the GPS virtual-time advance counter
// ("sched.wfq.vt_advances": how often the virtual clock moved forward)
// with r. Multiple WFQ instances sharing a registry share the counter.
func (w *WFQ) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	w.mAdvances = r.Counter("sched.wfq.vt_advances")
}

type wfqFlow struct {
	phi        float64 // weight in bits/s
	q          []taggedPacket
	qhead      int
	lastFinish float64 // finish tag of the flow's most recent arrival
	readyIdx   int     // index in ready heap, -1 if absent
	gpsIdx     int     // index in gps heap, -1 if absent
}

type taggedPacket struct {
	p      *packet.Packet
	finish float64
}

// NewWFQ returns a WFQ scheduler for a link of the given rate. now is
// the clock (normally Simulator.Now), and weights[i] is flow i's weight
// in bits/s (the paper uses the reserved rate ρᵢ).
func NewWFQ(rate units.Rate, now func() float64, weights []units.Rate) *WFQ {
	if rate <= 0 {
		panic(fmt.Sprintf("wfq: non-positive link rate %v", rate))
	}
	if now == nil {
		panic("wfq: nil clock")
	}
	if len(weights) == 0 {
		panic("wfq: no flows")
	}
	w := &WFQ{rate: rate, nowFn: now, flows: make([]wfqFlow, len(weights))}
	for i, phi := range weights {
		if phi <= 0 {
			panic(fmt.Sprintf("wfq: flow %d has non-positive weight %v", i, phi))
		}
		w.flows[i] = wfqFlow{phi: phi.BitsPerSecond(), readyIdx: -1, gpsIdx: -1}
	}
	return w
}

// VirtualTime returns the current GPS virtual time (after advancing it
// to the present); exposed for tests and instrumentation.
func (w *WFQ) VirtualTime() float64 {
	w.advance(w.nowFn())
	return w.v
}

// advance moves the GPS virtual clock from w.lastT to real time t,
// replaying GPS departures that occur inside the interval.
func (w *WFQ) advance(t float64) {
	if t < w.lastT {
		panic(fmt.Sprintf("wfq: clock moved backwards: %v < %v", t, w.lastT))
	}
	if w.lastT < t {
		w.mAdvances.Inc()
	}
	for w.lastT < t {
		if len(w.gps) == 0 {
			w.lastT = t
			return
		}
		f := w.gps[0]
		// Real time needed for V to reach the next GPS flow-departure.
		dt := (f.lastFinish - w.v) * w.sumPhi / w.rate.BitsPerSecond()
		if w.lastT+dt > t {
			w.v += (t - w.lastT) * w.rate.BitsPerSecond() / w.sumPhi
			w.lastT = t
			return
		}
		w.v = f.lastFinish
		w.lastT += dt
		// The flow's GPS backlog clears exactly now.
		heap.Pop(&w.gps)
		w.sumPhi -= f.phi
	}
	// System idle in GPS (gps heap may still be empty): nothing to do.
	if len(w.gps) == 0 && w.len == 0 {
		// Both systems idle: rebase virtual time so tags do not grow
		// without bound over long runs.
		w.v = 0
		for i := range w.flows {
			w.flows[i].lastFinish = 0
		}
	}
}

// Enqueue implements Scheduler.
func (w *WFQ) Enqueue(p *packet.Packet) {
	now := w.nowFn()
	w.advance(now)
	f := &w.flows[p.Flow]
	start := w.v
	if f.lastFinish > start {
		start = f.lastFinish
	}
	finish := start + p.Size.Bits()/f.phi

	wasGPSIdle := f.gpsIdx < 0
	f.lastFinish = finish
	f.q = append(f.q, taggedPacket{p: p, finish: finish})
	w.len++
	w.backlog += p.Size

	if wasGPSIdle {
		heap.Push(&w.gps, f)
		w.sumPhi += f.phi
	} else {
		heap.Fix(&w.gps, f.gpsIdx)
	}
	if f.readyIdx < 0 {
		heap.Push(&w.ready, f)
	}
	// Head tag unchanged if the flow already had packets, so no Fix is
	// needed for the ready heap in that case.
}

// Dequeue implements Scheduler.
func (w *WFQ) Dequeue() *packet.Packet {
	if len(w.ready) == 0 {
		return nil
	}
	w.advance(w.nowFn())
	f := w.ready[0]
	tp := f.q[f.qhead]
	f.q[f.qhead].p = nil
	f.qhead++
	if f.qhead > 64 && f.qhead*2 >= len(f.q) {
		n := copy(f.q, f.q[f.qhead:])
		f.q = f.q[:n]
		f.qhead = 0
	}
	w.len--
	w.backlog -= tp.p.Size
	if f.qhead >= len(f.q) {
		heap.Pop(&w.ready)
	} else {
		heap.Fix(&w.ready, 0)
	}
	return tp.p
}

// Len implements Scheduler.
func (w *WFQ) Len() int { return w.len }

// Backlog implements Scheduler.
func (w *WFQ) Backlog() units.Bytes { return w.backlog }

// FlowBacklog returns the queued packets of one flow.
func (w *WFQ) FlowBacklog(flow int) int {
	f := &w.flows[flow]
	return len(f.q) - f.qhead
}

// readyHeap orders flows by head-packet finish tag.
type readyHeap []*wfqFlow

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	return h[i].q[h[i].qhead].finish < h[j].q[h[j].qhead].finish
}
func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].readyIdx = i
	h[j].readyIdx = j
}
func (h *readyHeap) Push(x any) {
	f := x.(*wfqFlow)
	f.readyIdx = len(*h)
	*h = append(*h, f)
}
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.readyIdx = -1
	*h = old[:n-1]
	return f
}

// gpsHeap orders GPS-backlogged flows by their last (largest) finish tag,
// i.e. the virtual time at which their GPS backlog clears.
type gpsHeap []*wfqFlow

func (h gpsHeap) Len() int           { return len(h) }
func (h gpsHeap) Less(i, j int) bool { return h[i].lastFinish < h[j].lastFinish }
func (h gpsHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].gpsIdx = i
	h[j].gpsIdx = j
}
func (h *gpsHeap) Push(x any) {
	f := x.(*wfqFlow)
	f.gpsIdx = len(*h)
	*h = append(*h, f)
}
func (h *gpsHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.gpsIdx = -1
	*h = old[:n-1]
	return f
}
