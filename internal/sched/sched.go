// Package sched implements the link schedulers the paper compares:
// FIFO, packetized Weighted Fair Queueing (WFQ) with exact GPS
// virtual-time tracking, and the §4 hybrid architecture (a small WFQ
// serving k FIFO queues). It also provides the Link server that drains
// a scheduler at the link rate and drives buffer management and
// statistics.
package sched

import (
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// Scheduler orders admitted packets for transmission.
type Scheduler interface {
	// Enqueue accepts an admitted packet.
	Enqueue(p *packet.Packet)
	// Dequeue removes and returns the next packet to transmit, or nil
	// when no packet is queued.
	Dequeue() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Backlog returns the queued bytes.
	Backlog() units.Bytes
}

// FIFO is the first-in-first-out scheduler at the heart of the paper's
// proposal: constant-time, no per-flow state.
type FIFO struct {
	q       []*packet.Packet
	head    int
	backlog units.Bytes
}

// NewFIFO returns an empty FIFO queue.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(p *packet.Packet) {
	f.q = append(f.q, p)
	f.backlog += p.Size
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() *packet.Packet {
	if f.head >= len(f.q) {
		return nil
	}
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	f.backlog -= p.Size
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if f.head > 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		f.q = f.q[:n]
		f.head = 0
	}
	return p
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) - f.head }

// Backlog implements Scheduler.
func (f *FIFO) Backlog() units.Bytes { return f.backlog }
