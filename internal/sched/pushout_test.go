package sched

import (
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

func TestPushoutBasicFIFO(t *testing.T) {
	po := NewPushoutFIFO(10000, []units.Bytes{5000, 5000})
	for i := 0; i < 4; i++ {
		p := mkPkt(i%2, 500, uint64(i))
		if !po.Admit(p.Flow, p.Size) {
			t.Fatalf("admit %d failed with free space", i)
		}
		po.Enqueue(p)
	}
	for i := 0; i < 4; i++ {
		p := po.Dequeue()
		if p == nil || p.Seq != uint64(i) {
			t.Fatalf("dequeue %d: %v", i, p)
		}
		po.Release(p.Flow, p.Size)
	}
	if po.Dequeue() != nil || po.Total() != 0 {
		t.Error("drain incomplete")
	}
}

func TestPushoutEvictsOverShareFlow(t *testing.T) {
	po := NewPushoutFIFO(2000, []units.Bytes{1000, 1000})
	var pushed []*packet.Packet
	po.OnPushout = func(p *packet.Packet) { pushed = append(pushed, p) }
	// Flow 1 fills the whole buffer (allowed: admission only protects
	// when full).
	for i := 0; i < 4; i++ {
		p := mkPkt(1, 500, uint64(i))
		if !po.Admit(1, 500) {
			t.Fatalf("fill admit %d failed", i)
		}
		po.Enqueue(p)
	}
	// Flow 0 (below its share) arrives into the full buffer: flow 1's
	// NEWEST packet is pushed out.
	p := mkPkt(0, 500, 100)
	if !po.Admit(0, 500) {
		t.Fatal("protected arrival rejected")
	}
	po.Enqueue(p)
	if len(pushed) != 1 || pushed[0].Flow != 1 || pushed[0].Seq != 3 {
		t.Fatalf("pushed %v, want flow 1 seq 3 (newest)", pushed)
	}
	if po.Occupancy(1) != 1500 || po.Occupancy(0) != 500 || po.Total() != 2000 {
		t.Errorf("occupancies %v/%v", po.Occupancy(0), po.Occupancy(1))
	}
	// Service order: flow 1's surviving packets (0,1,2) then flow 0's.
	want := []struct {
		flow int
		seq  uint64
	}{{1, 0}, {1, 1}, {1, 2}, {0, 100}}
	for i, w := range want {
		got := po.Dequeue()
		if got == nil || got.Flow != w.flow || got.Seq != w.seq {
			t.Fatalf("dequeue %d: got %v, want flow %d seq %d", i, got, w.flow, w.seq)
		}
		po.Release(got.Flow, got.Size)
	}
}

func TestPushoutOverShareArrivalRejected(t *testing.T) {
	po := NewPushoutFIFO(1000, []units.Bytes{500, 500})
	for i := 0; i < 2; i++ {
		po.Admit(0, 500)
		po.Enqueue(mkPkt(0, 500, uint64(i)))
	}
	// Flow 0 is at 1000 > share 500; its next arrival must not push
	// anyone (and there is nobody over-share but itself).
	if po.Admit(0, 500) {
		t.Fatal("over-share flow pushed out a victim")
	}
	// Flow 1's arrival pushes flow 0's newest.
	if !po.Admit(1, 500) {
		t.Fatal("protected flow rejected")
	}
}

func TestPushoutCannotEvictPacketInService(t *testing.T) {
	// Only one packet total, and it has been dequeued (in service):
	// occupancy is still held but nothing is queued to push.
	po := NewPushoutFIFO(500, []units.Bytes{250, 250})
	po.Admit(1, 500)
	po.Enqueue(mkPkt(1, 500, 0))
	if po.Dequeue() == nil {
		t.Fatal("dequeue failed")
	}
	// Buffer still accounts the in-service packet; flow 0 cannot evict it.
	if po.Admit(0, 250) {
		t.Fatal("pushed out a packet that already left the queue")
	}
}

func TestPushoutProtectsConformantEndToEnd(t *testing.T) {
	// The reference-[2] claim: pushout gives tail-drop utilization AND
	// protection. Conformant 8 Mb/s CBR vs saturating aggressor.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	bufSize := units.KiloBytes(200)
	shares := []units.Bytes{units.Bytes(float64(bufSize) * 8 / 48), units.Bytes(float64(bufSize) * 40 / 48)}
	po := NewPushoutFIFO(bufSize, shares)
	col := stats.NewCollector(2, 1)
	po.OnPushout = func(p *packet.Packet) { col.Dropped(p, s.Now()) }
	link := NewLink(s, rate, po, po, col)

	victim := source.NewCBR(s, 0, 500, units.MbitsPerSecond(8), link)
	victim.Start()
	agg := source.NewSaturating(s, 1, 500, rate, link)
	agg.Start()
	const dur = 10.0
	s.RunUntil(dur)

	// Protection: the conformant flow delivers ≈ its rate.
	thr := col.FlowThroughput(0, dur)
	if thr.BitsPerSecond() < 8e6*0.97 {
		t.Errorf("conformant flow got %v, want ≈ 8Mb/s", thr)
	}
	// Utilization: the link stays full (tail-drop-like efficiency).
	agg2 := col.AggregateThroughput(dur)
	if agg2.BitsPerSecond() < 48e6*0.99 {
		t.Errorf("aggregate %v, want ≈ full link", agg2)
	}
}

func TestPushoutValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewPushoutFIFO(0, []units.Bytes{100}) },
		func() { NewPushoutFIFO(100, nil) },
		func() { NewPushoutFIFO(100, []units.Bytes{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	po := NewPushoutFIFO(100, []units.Bytes{100})
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	po.Release(0, 50)
}
