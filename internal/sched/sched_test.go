package sched

import (
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func mkPkt(flow int, size units.Bytes, seq uint64) *packet.Packet {
	return &packet.Packet{Flow: flow, Size: size, Seq: seq}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	for i := 0; i < 10; i++ {
		f.Enqueue(mkPkt(i%2, 500, uint64(i)))
	}
	for i := 0; i < 10; i++ {
		p := f.Dequeue()
		if p == nil || p.Seq != uint64(i) {
			t.Fatalf("dequeue %d got %v", i, p)
		}
	}
	if f.Dequeue() != nil {
		t.Error("empty FIFO returned a packet")
	}
}

func TestFIFOLenAndBacklog(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(mkPkt(0, 500, 0))
	f.Enqueue(mkPkt(0, 300, 1))
	if f.Len() != 2 || f.Backlog() != 800 {
		t.Errorf("len=%d backlog=%v, want 2, 800", f.Len(), f.Backlog())
	}
	f.Dequeue()
	if f.Len() != 1 || f.Backlog() != 300 {
		t.Errorf("after dequeue: len=%d backlog=%v", f.Len(), f.Backlog())
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Interleaved enqueue/dequeue far past the compaction trigger.
	f := NewFIFO()
	seq := uint64(0)
	next := uint64(0)
	for round := 0; round < 1000; round++ {
		f.Enqueue(mkPkt(0, 100, seq))
		seq++
		if round%2 == 1 {
			p := f.Dequeue()
			if p.Seq != next {
				t.Fatalf("round %d: got seq %d, want %d", round, p.Seq, next)
			}
			next++
		}
	}
	for p := f.Dequeue(); p != nil; p = f.Dequeue() {
		if p.Seq != next {
			t.Fatalf("drain: got seq %d, want %d", p.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Errorf("drained %d packets, want %d", next, seq)
	}
	if f.Backlog() != 0 || f.Len() != 0 {
		t.Error("non-zero backlog after drain")
	}
}

func TestHybridMapsFlowsToQueues(t *testing.T) {
	now := func() float64 { return 0 }
	h := NewHybrid(units.MbitsPerSecond(48), now, []int{0, 0, 1}, []units.Rate{units.MbitsPerSecond(24), units.MbitsPerSecond(24)})
	if h.NumQueues() != 2 {
		t.Fatalf("NumQueues = %d", h.NumQueues())
	}
	if h.QueueOf(1) != 0 || h.QueueOf(2) != 1 {
		t.Error("QueueOf mapping wrong")
	}
	h.Enqueue(mkPkt(0, 500, 0))
	h.Enqueue(mkPkt(2, 500, 1))
	if h.QueueBacklog(0) != 1 || h.QueueBacklog(1) != 1 {
		t.Errorf("queue backlogs = %d,%d", h.QueueBacklog(0), h.QueueBacklog(1))
	}
	// Packets keep their original flow IDs on dequeue.
	got := map[int]bool{}
	for p := h.Dequeue(); p != nil; p = h.Dequeue() {
		got[p.Flow] = true
	}
	if !got[0] || !got[2] {
		t.Errorf("flow identities lost: %v", got)
	}
}

func TestHybridFIFOWithinQueue(t *testing.T) {
	now := func() float64 { return 0 }
	h := NewHybrid(units.MbitsPerSecond(48), now, []int{0, 0}, []units.Rate{units.MbitsPerSecond(48)})
	// Two flows sharing one queue: strict arrival order preserved.
	h.Enqueue(mkPkt(0, 500, 10))
	h.Enqueue(mkPkt(1, 500, 11))
	h.Enqueue(mkPkt(0, 500, 12))
	want := []uint64{10, 11, 12}
	for i, w := range want {
		p := h.Dequeue()
		if p == nil || p.Seq != w {
			t.Fatalf("dequeue %d: got %v, want seq %d", i, p, w)
		}
	}
}

func TestHybridInvalidMappingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid queue mapping did not panic")
		}
	}()
	NewHybrid(units.Mbps, func() float64 { return 0 }, []int{3}, []units.Rate{units.Mbps})
}
