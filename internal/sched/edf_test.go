package sched

import (
	"math"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

func TestEDFServesEarliestDeadline(t *testing.T) {
	now := 0.0
	e := NewEDF(func() float64 { return now }, []float64{0.100, 0.005})
	e.Enqueue(mkPkt(0, 500, 1)) // deadline 0.100
	e.Enqueue(mkPkt(1, 500, 2)) // deadline 0.005
	if p := e.Dequeue(); p.Flow != 1 {
		t.Fatalf("served flow %d first, want tight-deadline flow 1", p.Flow)
	}
	if p := e.Dequeue(); p.Flow != 0 {
		t.Fatal("second packet wrong")
	}
	if e.Dequeue() != nil {
		t.Fatal("empty EDF returned a packet")
	}
}

func TestEDFDeadlineAccountsForArrivalTime(t *testing.T) {
	now := 0.0
	e := NewEDF(func() float64 { return now }, []float64{0.010, 0.012})
	e.Enqueue(mkPkt(1, 500, 1)) // deadline 0.012
	now = 0.005
	e.Enqueue(mkPkt(0, 500, 2)) // deadline 0.015 — later despite tighter budget
	if p := e.Dequeue(); p.Flow != 1 {
		t.Fatal("EDF ignored arrival time in deadline computation")
	}
}

func TestEDFPerFlowOrderAndTieBreak(t *testing.T) {
	now := 0.0
	e := NewEDF(func() float64 { return now }, []float64{0.01, 0.01})
	// Same deadlines: arrival order must win.
	e.Enqueue(mkPkt(0, 500, 10))
	e.Enqueue(mkPkt(1, 500, 11))
	e.Enqueue(mkPkt(0, 500, 12))
	want := []uint64{10, 11, 12}
	for i, w := range want {
		if p := e.Dequeue(); p.Seq != w {
			t.Fatalf("dequeue %d: got seq %d, want %d", i, p.Seq, w)
		}
	}
}

func TestEDFLenBacklog(t *testing.T) {
	e := NewEDF(func() float64 { return 0 }, []float64{0.01})
	e.Enqueue(mkPkt(0, 500, 0))
	e.Enqueue(mkPkt(0, 300, 1))
	if e.Len() != 2 || e.Backlog() != 800 {
		t.Errorf("len=%d backlog=%v", e.Len(), e.Backlog())
	}
	e.Dequeue()
	if e.Len() != 1 || e.Backlog() != 300 {
		t.Errorf("after dequeue: len=%d backlog=%v", e.Len(), e.Backlog())
	}
}

func TestEDFValidation(t *testing.T) {
	now := func() float64 { return 0 }
	for i, f := range []func(){
		func() { NewEDF(nil, []float64{0.1}) },
		func() { NewEDF(now, nil) },
		func() { NewEDF(now, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEDFEndToEndMeetsTightDeadlines(t *testing.T) {
	// Rate-controlled EDF: shaped flows + deadline scheduling. The
	// tight-budget flow's worst delay must come in near its budget even
	// against a heavy loose-budget flow.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	e := NewEDF(s.Now, []float64{0.002, 0.050})
	link := NewLink(s, rate, e, buffer.NewFixedThreshold(units.KiloBytes(300),
		[]units.Bytes{units.KiloBytes(50), units.KiloBytes(250)}), nil)
	var worst0 float64
	link.OnDepart = func(p *packet.Packet) {
		if p.Flow == 0 {
			if d := s.Now() - p.Arrived; d > worst0 {
				worst0 = d
			}
		}
	}
	urgent := source.NewCBR(s, 0, 500, units.MbitsPerSecond(2), link)
	urgent.Start()
	bulk := source.NewSaturating(s, 1, 500, rate, link)
	bulk.Start()
	s.RunUntil(3)
	if worst0 == 0 {
		t.Fatal("urgent flow never served")
	}
	// Budget 2 ms + one non-preemptable packet time.
	bound := 0.002 + 2*units.TransmissionTime(500, rate)
	if worst0 > bound {
		t.Errorf("urgent worst delay %v exceeds EDF budget bound %v", worst0, bound)
	}
}

func TestVirtualClockGuaranteesRates(t *testing.T) {
	// Flow 0 reserved 8 Mb/s sending exactly that; flow 1 reserved
	// 40 Mb/s flooding. VC must deliver flow 0's reservation.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	vc := NewVirtualClock(s.Now, []units.Rate{units.MbitsPerSecond(8), units.MbitsPerSecond(40)})
	var got units.Bytes
	link := NewLink(s, rate, vc, buffer.NewUnlimited(2), nil)
	link.OnDepart = func(p *packet.Packet) {
		if p.Flow == 0 {
			got += p.Size
		}
	}
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(8), link)
	src.Start()
	agg := source.NewSaturating(s, 1, 500, rate, link)
	agg.Start()
	const dur = 2.0
	s.RunUntil(dur)
	thr := got.Bits() / dur
	if thr < 8e6*0.97 {
		t.Errorf("reserved flow got %.3g b/s under Virtual Clock, want ≈ 8e6", thr)
	}
}

func TestVirtualClockStampAdvances(t *testing.T) {
	now := 0.0
	vc := NewVirtualClock(func() float64 { return now }, []units.Rate{units.MbitsPerSecond(4)})
	// Two back-to-back 500B packets: stamps at 1ms and 2ms.
	vc.Enqueue(mkPkt(0, 500, 0))
	vc.Enqueue(mkPkt(0, 500, 1))
	if math.Abs(vc.clocks[0]-0.002) > 1e-12 {
		t.Errorf("clock = %v, want 0.002", vc.clocks[0])
	}
	// After idling past the clock, the stamp resyncs to real time.
	now = 1.0
	vc.Enqueue(mkPkt(0, 500, 2))
	if math.Abs(vc.clocks[0]-1.001) > 1e-12 {
		t.Errorf("clock = %v after idle, want 1.001", vc.clocks[0])
	}
}

func TestVirtualClockValidation(t *testing.T) {
	now := func() float64 { return 0 }
	for i, f := range []func(){
		func() { NewVirtualClock(nil, []units.Rate{units.Mbps}) },
		func() { NewVirtualClock(now, nil) },
		func() { NewVirtualClock(now, []units.Rate{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestVirtualClockWorkConserving(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	vc := NewVirtualClock(s.Now, []units.Rate{units.Mbps})
	var delivered units.Bytes
	link := NewLink(s, rate, vc, buffer.NewTailDrop(units.KiloBytes(50), 1), nil)
	link.OnDepart = func(p *packet.Packet) { delivered += p.Size }
	src := source.NewSaturating(s, 0, 500, 2*rate, link)
	src.Start()
	const dur = 1.0
	s.RunUntil(dur)
	if float64(delivered) < rate.BytesPerSecond()*dur-1500 {
		t.Errorf("VC idled while backlogged: delivered %v", delivered)
	}
}
