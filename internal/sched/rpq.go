package sched

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// RPQ is a Rotating-Priority-Queues scheduler in the spirit of Wrege &
// Liebeherr (the paper's reference [10]): a small fixed set of FIFO
// queues approximates deadline ordering without any sorted data
// structure. The paper positions its FIFO+buffer-management scheme as
// the extreme point of this family (one queue); RPQ is the intermediate
// baseline and is included for the complexity-vs-guarantees ablation.
//
// Each flow is assigned a delay class c ∈ [0, P). Time is divided into
// rotation epochs of length Δ; a class-c packet arriving in epoch e is
// due in epoch e+c. The scheduler keeps one FIFO per future epoch (a
// ring of P slots) plus a "due" FIFO holding everything whose epoch has
// arrived. On each epoch boundary the next ring slot is merged into the
// due queue, preserving arrival order. Service takes from the due queue
// first and, when it is empty, from the earliest non-empty future slot
// (work conservation). All operations are O(1) per packet plus O(1)
// amortized per rotation.
type RPQ struct {
	classes  []int
	interval float64
	nowFn    func() float64

	due   *FIFO
	ring  []*FIFO // ring[(epoch+c) % P] holds packets due in that epoch
	epoch int64

	len     int
	backlog units.Bytes
}

// NewRPQ builds an RPQ scheduler. classes[i] is flow i's delay class,
// all of which must lie in [0, numClasses); interval is the rotation
// period Δ in seconds; now is the clock.
func NewRPQ(numClasses int, interval float64, now func() float64, classes []int) *RPQ {
	if numClasses <= 0 {
		panic(fmt.Sprintf("rpq: need at least one class, got %d", numClasses))
	}
	if interval <= 0 {
		panic(fmt.Sprintf("rpq: non-positive rotation interval %v", interval))
	}
	if now == nil {
		panic("rpq: nil clock")
	}
	for f, c := range classes {
		if c < 0 || c >= numClasses {
			panic(fmt.Sprintf("rpq: flow %d has class %d outside [0,%d)", f, c, numClasses))
		}
	}
	r := &RPQ{
		classes:  append([]int(nil), classes...),
		interval: interval,
		nowFn:    now,
		due:      NewFIFO(),
		ring:     make([]*FIFO, numClasses),
	}
	for i := range r.ring {
		r.ring[i] = NewFIFO()
	}
	return r
}

// NumClasses returns P.
func (r *RPQ) NumClasses() int { return len(r.ring) }

// Epoch returns the current rotation epoch (after advancing the clock).
func (r *RPQ) Epoch() int64 {
	r.advance()
	return r.epoch
}

// advance merges ring slots into the due queue for every epoch boundary
// the clock has crossed.
func (r *RPQ) advance() {
	target := int64(r.nowFn() / r.interval)
	for r.epoch < target {
		r.epoch++
		slot := r.ring[int(r.epoch)%len(r.ring)]
		for p := slot.Dequeue(); p != nil; p = slot.Dequeue() {
			r.due.Enqueue(p)
		}
	}
}

// Enqueue implements Scheduler.
func (r *RPQ) Enqueue(p *packet.Packet) {
	r.advance()
	c := r.classes[p.Flow]
	r.len++
	r.backlog += p.Size
	if c == 0 {
		r.due.Enqueue(p)
		return
	}
	r.ring[int(r.epoch+int64(c))%len(r.ring)].Enqueue(p)
}

// Dequeue implements Scheduler.
func (r *RPQ) Dequeue() *packet.Packet {
	r.advance()
	if p := r.due.Dequeue(); p != nil {
		r.len--
		r.backlog -= p.Size
		return p
	}
	// Work conservation: pull from the earliest future epoch.
	for d := 1; d <= len(r.ring); d++ {
		if p := r.ring[int(r.epoch+int64(d))%len(r.ring)].Dequeue(); p != nil {
			r.len--
			r.backlog -= p.Size
			return p
		}
	}
	return nil
}

// Len implements Scheduler.
func (r *RPQ) Len() int { return r.len }

// Backlog implements Scheduler.
func (r *RPQ) Backlog() units.Bytes { return r.backlog }
