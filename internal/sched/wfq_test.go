package sched

import (
	"math"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// runWFQ drives saturating sources at the given offered rates through a
// WFQ link and returns per-flow delivered bytes over [warmup, dur].
func runWFQ(t *testing.T, rate units.Rate, weights []units.Rate, offered []units.Rate, dur float64) []units.Bytes {
	t.Helper()
	s := sim.New()
	col := stats.NewCollector(len(weights), 0)
	w := NewWFQ(rate, s.Now, weights)
	// Unlimited buffer: these tests isolate scheduling fairness. (With a
	// shared tail-drop buffer the first saturating flow would capture
	// all the space — the very pathology the paper's §2 opens with.)
	mgr := buffer.NewUnlimited(len(weights))
	link := NewLink(s, rate, w, mgr, col)
	for i, r := range offered {
		if r <= 0 {
			continue
		}
		src := source.NewCBR(s, i, 500, r, link)
		src.Start()
	}
	s.RunUntil(dur)
	out := make([]units.Bytes, len(weights))
	for i := range out {
		out[i] = col.Flow(i).Departed.Total().Bytes
	}
	return out
}

func TestWFQEqualWeightsEqualService(t *testing.T) {
	rate := units.MbitsPerSecond(48)
	weights := []units.Rate{units.MbitsPerSecond(1), units.MbitsPerSecond(1)}
	offered := []units.Rate{rate, rate} // both saturating
	got := runWFQ(t, rate, weights, offered, 2.0)
	ratio := float64(got[0]) / float64(got[1])
	if math.Abs(ratio-1) > 0.02 {
		t.Errorf("equal weights served %v vs %v (ratio %.3f)", got[0], got[1], ratio)
	}
}

func TestWFQWeightedService(t *testing.T) {
	rate := units.MbitsPerSecond(48)
	weights := []units.Rate{units.MbitsPerSecond(3), units.MbitsPerSecond(1)}
	offered := []units.Rate{rate, rate}
	got := runWFQ(t, rate, weights, offered, 2.0)
	ratio := float64(got[0]) / float64(got[1])
	if math.Abs(ratio-3) > 0.1 {
		t.Errorf("3:1 weights served ratio %.3f, want 3", ratio)
	}
}

func TestWFQWorkConserving(t *testing.T) {
	// A single backlogged flow gets the whole link regardless of weight.
	rate := units.MbitsPerSecond(48)
	weights := []units.Rate{units.MbitsPerSecond(1), units.MbitsPerSecond(47)}
	offered := []units.Rate{rate, 0} // only the small-weight flow sends
	got := runWFQ(t, rate, weights, offered, 1.0)
	thr := got[0].Bits() / 1.0
	if math.Abs(thr-48e6)/48e6 > 0.01 {
		t.Errorf("lone flow got %.3g b/s, want full 48e6", thr)
	}
}

func TestWFQGuaranteedRateUnderAggression(t *testing.T) {
	// Flow 0 sends exactly its reservation; flow 1 floods. WFQ must
	// deliver flow 0's reservation (the per-flow queue isolates it).
	rate := units.MbitsPerSecond(48)
	weights := []units.Rate{units.MbitsPerSecond(8), units.MbitsPerSecond(40)}
	offered := []units.Rate{units.MbitsPerSecond(8), rate}
	got := runWFQ(t, rate, weights, offered, 2.0)
	thr0 := got[0].Bits() / 2.0
	if thr0 < 8e6*0.98 {
		t.Errorf("reserved flow got %.3g b/s, want ≥ 98%% of 8e6", thr0)
	}
}

func TestWFQExcessSharedByWeight(t *testing.T) {
	// Three flows, weights 1:2:5, all saturating: the full link splits
	// 1:2:5 — the paper's "WFQ shares excess in proportion to
	// reservations" behaviour.
	rate := units.MbitsPerSecond(48)
	weights := []units.Rate{units.MbitsPerSecond(1), units.MbitsPerSecond(2), units.MbitsPerSecond(5)}
	offered := []units.Rate{rate, rate, rate}
	got := runWFQ(t, rate, weights, offered, 2.0)
	total := float64(got[0] + got[1] + got[2])
	for i, share := range []float64{1.0 / 8, 2.0 / 8, 5.0 / 8} {
		frac := float64(got[i]) / total
		if math.Abs(frac-share) > 0.02 {
			t.Errorf("flow %d got fraction %.3f of link, want %.3f", i, frac, share)
		}
	}
}

func TestWFQVirtualTimeMonotone(t *testing.T) {
	s := sim.New()
	w := NewWFQ(units.MbitsPerSecond(8), s.Now, []units.Rate{units.MbitsPerSecond(4), units.MbitsPerSecond(4)})
	mgr := buffer.NewTailDrop(units.KiloBytes(50), 2)
	link := NewLink(s, units.MbitsPerSecond(8), w, mgr, nil)
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(6), link)
	src.Start()
	last := 0.0
	for i := 1; i <= 20; i++ {
		s.RunUntil(float64(i) * 0.05)
		v := w.VirtualTime()
		if v < last-1e-9 && v != 0 {
			t.Fatalf("virtual time went backwards: %v -> %v", last, v)
		}
		last = v
	}
}

func TestWFQIdleReset(t *testing.T) {
	s := sim.New()
	w := NewWFQ(units.MbitsPerSecond(8), s.Now, []units.Rate{units.MbitsPerSecond(8)})
	mgr := buffer.NewTailDrop(units.KiloBytes(50), 1)
	link := NewLink(s, units.MbitsPerSecond(8), w, mgr, nil)
	link.Receive(&packet.Packet{Flow: 0, Size: 500})
	s.Run(0) // drain completely
	if got := w.VirtualTime(); got != 0 {
		t.Errorf("virtual time after idle = %v, want reset to 0", got)
	}
}

func TestWFQDelayBoundForConformantFlow(t *testing.T) {
	// PGPS delay bound for a (σ, ρ)-conformant flow with weight ρ on an
	// exactly-allocated link: D ≤ σ/ρ + L/R (plus one packet time of
	// non-preemption). Flow 0 bursts σ then runs at ρ; flow 1 saturates.
	rate := units.MbitsPerSecond(48)
	sigma := units.KiloBytes(25)
	rho := units.MbitsPerSecond(8)
	s := sim.New()
	w := NewWFQ(rate, s.Now, []units.Rate{rho, rate - rho})
	mgr := buffer.NewUnlimited(2)
	link := NewLink(s, rate, w, mgr, nil)

	worst := 0.0
	link.OnDepart = func(p *packet.Packet) {
		if p.Flow != 0 {
			return
		}
		if d := s.Now() - p.Arrived; d > worst {
			worst = d
		}
	}
	// Aggressor.
	agg := source.NewCBR(s, 1, 500, rate, link)
	agg.Start()
	// Conformant flow: shaper output of a saturating feed.
	sh := source.NewShaper(s, packet.FlowSpec{TokenRate: rho, BucketSize: sigma}, link)
	feed := source.NewCBR(s, 0, 500, rate, sh)
	feed.Start()
	s.RunUntil(5)

	bound := sigma.Bits()/rho.BitsPerSecond() + 2*units.TransmissionTime(500, rate)
	if worst > bound+1e-9 {
		t.Errorf("worst-case delay %v exceeds PGPS bound %v", worst, bound)
	}
	if worst == 0 {
		t.Error("no flow-0 departures observed")
	}
}

func TestWFQFlowBacklogAccessor(t *testing.T) {
	w := NewWFQ(units.Mbps, func() float64 { return 0 }, []units.Rate{units.Mbps, units.Mbps})
	w.Enqueue(mkPkt(0, 500, 0))
	w.Enqueue(mkPkt(0, 500, 1))
	w.Enqueue(mkPkt(1, 500, 2))
	if w.FlowBacklog(0) != 2 || w.FlowBacklog(1) != 1 {
		t.Errorf("flow backlogs = %d,%d", w.FlowBacklog(0), w.FlowBacklog(1))
	}
	if w.Len() != 3 || w.Backlog() != 1500 {
		t.Errorf("len=%d backlog=%v", w.Len(), w.Backlog())
	}
}

func TestWFQPerFlowFIFOOrder(t *testing.T) {
	w := NewWFQ(units.Mbps, func() float64 { return 0 }, []units.Rate{units.Mbps})
	for i := 0; i < 5; i++ {
		w.Enqueue(mkPkt(0, 500, uint64(i)))
	}
	for i := 0; i < 5; i++ {
		p := w.Dequeue()
		if p.Seq != uint64(i) {
			t.Fatalf("per-flow order violated: got %d want %d", p.Seq, i)
		}
	}
}

func TestWFQValidation(t *testing.T) {
	now := func() float64 { return 0 }
	cases := []func(){
		func() { NewWFQ(0, now, []units.Rate{units.Mbps}) },
		func() { NewWFQ(units.Mbps, nil, []units.Rate{units.Mbps}) },
		func() { NewWFQ(units.Mbps, now, nil) },
		func() { NewWFQ(units.Mbps, now, []units.Rate{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("validation case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWFQSmallestFinishTagFirst(t *testing.T) {
	// Two packets arriving together: the one from the higher-weight
	// flow has the smaller finish tag and must go first.
	w := NewWFQ(units.MbitsPerSecond(10), func() float64 { return 0 },
		[]units.Rate{units.MbitsPerSecond(9), units.MbitsPerSecond(1)})
	w.Enqueue(mkPkt(1, 500, 100)) // low weight, enqueued first
	w.Enqueue(mkPkt(0, 500, 200)) // high weight
	if p := w.Dequeue(); p.Flow != 0 {
		t.Errorf("first dequeue from flow %d, want high-weight flow 0", p.Flow)
	}
}
