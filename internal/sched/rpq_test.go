package sched

import (
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

func TestRPQLowerClassFirst(t *testing.T) {
	now := 0.0
	// Flow 0 class 0 (urgent), flow 1 class 2.
	r := NewRPQ(4, 0.01, func() float64 { return now }, []int{0, 2})
	r.Enqueue(mkPkt(1, 500, 10)) // future epoch
	r.Enqueue(mkPkt(0, 500, 20)) // due now
	if p := r.Dequeue(); p.Flow != 0 {
		t.Fatalf("class-0 packet not served first (got flow %d)", p.Flow)
	}
	// Work conservation: the future packet is still served when nothing
	// is due.
	if p := r.Dequeue(); p == nil || p.Flow != 1 {
		t.Fatalf("future packet not served work-conservingly: %v", p)
	}
}

func TestRPQRotationPromotes(t *testing.T) {
	now := 0.0
	r := NewRPQ(4, 0.01, func() float64 { return now }, []int{0, 2})
	r.Enqueue(mkPkt(1, 500, 1)) // class 2: due in epoch 2
	r.Enqueue(mkPkt(0, 500, 2)) // due immediately
	// After two rotations the class-2 packet is due; a newly arriving
	// class-0 packet must queue BEHIND it in the due FIFO.
	now = 0.025 // epoch 2
	r.Enqueue(mkPkt(0, 500, 3))
	got := []uint64{}
	for p := r.Dequeue(); p != nil; p = r.Dequeue() {
		got = append(got, p.Seq)
	}
	want := []uint64{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order %v, want %v", got, want)
		}
	}
}

func TestRPQEpochAdvances(t *testing.T) {
	now := 0.0
	r := NewRPQ(8, 0.5, func() float64 { return now }, []int{0})
	if r.Epoch() != 0 {
		t.Fatal("epoch should start at 0")
	}
	now = 2.6
	if got := r.Epoch(); got != 5 {
		t.Errorf("epoch = %d at t=2.6 with Δ=0.5, want 5", got)
	}
}

func TestRPQCountsAndBacklog(t *testing.T) {
	now := 0.0
	r := NewRPQ(3, 0.01, func() float64 { return now }, []int{0, 1, 2})
	for f := 0; f < 3; f++ {
		r.Enqueue(mkPkt(f, 500, uint64(f)))
	}
	if r.Len() != 3 || r.Backlog() != 1500 {
		t.Errorf("len=%d backlog=%v", r.Len(), r.Backlog())
	}
	for r.Dequeue() != nil {
	}
	if r.Len() != 0 || r.Backlog() != 0 {
		t.Errorf("after drain: len=%d backlog=%v", r.Len(), r.Backlog())
	}
}

func TestRPQValidation(t *testing.T) {
	now := func() float64 { return 0 }
	cases := []func(){
		func() { NewRPQ(0, 0.01, now, nil) },
		func() { NewRPQ(4, 0, now, nil) },
		func() { NewRPQ(4, 0.01, nil, nil) },
		func() { NewRPQ(4, 0.01, now, []int{4}) },
		func() { NewRPQ(4, 0.01, now, []int{-1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRPQDelayClassEndToEnd(t *testing.T) {
	// Urgent class-0 CBR flow vs bulk class-3 saturating flow on one
	// link: the urgent flow's worst queueing delay must stay around one
	// rotation epoch + packet times, far below the bulk flow's.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	const delta = 0.002
	r := NewRPQ(4, delta, s.Now, []int{0, 3})
	link := NewLink(s, rate, r, buffer.NewFixedThreshold(units.KiloBytes(200),
		[]units.Bytes{units.KiloBytes(50), units.KiloBytes(150)}), nil)
	var worstUrgent, worstBulk float64
	link.OnDepart = func(p *packet.Packet) {
		d := s.Now() - p.Arrived
		if p.Flow == 0 && d > worstUrgent {
			worstUrgent = d
		}
		if p.Flow == 1 && d > worstBulk {
			worstBulk = d
		}
	}
	urgent := source.NewCBR(s, 0, 500, units.MbitsPerSecond(2), link)
	urgent.Start()
	bulk := source.NewSaturating(s, 1, 500, rate, link)
	bulk.Start()
	s.RunUntil(3)
	if worstUrgent == 0 || worstBulk == 0 {
		t.Fatal("a flow was never served")
	}
	// RPQ's guarantee under overload is deadline ORDERING, not small
	// absolute delays: the saturating bulk flow legitimately keeps its
	// whole 150 KB threshold promoted into the due queue. The checkable
	// properties: (a) urgent delay never exceeds the promoted-backlog
	// bound (bulk threshold drain time + one epoch + packet times), and
	// (b) the bulk class's worst delay clearly exceeds the urgent
	// class's (its packets park ≥ 3 epochs first).
	bound := 150e3*8/48e6 + delta + 2*units.TransmissionTime(500, rate)
	if worstUrgent > bound {
		t.Errorf("urgent worst delay %v exceeds promoted-backlog bound %v", worstUrgent, bound)
	}
	if worstBulk <= worstUrgent {
		t.Errorf("no class separation: bulk worst %v ≤ urgent worst %v", worstBulk, worstUrgent)
	}
}

func TestRPQWorkConservingUnderLoad(t *testing.T) {
	s := sim.New()
	rate := units.MbitsPerSecond(8)
	r := NewRPQ(4, 0.01, s.Now, []int{1})
	var delivered units.Bytes
	link := NewLink(s, rate, r, buffer.NewTailDrop(units.KiloBytes(50), 1), nil)
	link.OnDepart = func(p *packet.Packet) { delivered += p.Size }
	src := source.NewSaturating(s, 0, 500, 2*rate, link)
	src.Start()
	const dur = 2.0
	s.RunUntil(dur)
	capacity := rate.BytesPerSecond() * dur
	if float64(delivered) < capacity-1500 {
		t.Errorf("delivered %v of %v possible bytes: RPQ idled while backlogged", delivered, capacity)
	}
}
