package sched

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// DRR is Deficit Round Robin — the classic O(1) approximation of fair
// queueing. It is the other 1990s answer to the scalability problem the
// paper attacks: where the paper keeps FIFO and moves fairness into
// buffer management, DRR keeps per-flow queues but replaces the sorted
// list with a quantum-based round robin. Included as an ablation
// baseline so the two O(1) designs can be compared directly.
//
// Weights set per-flow quanta proportionally; the smallest weight gets
// one MTU per round so every backlogged flow can always send.
type DRR struct {
	flows   []drrFlow
	active  []int // round-robin list of backlogged flow indices
	cursor  int
	len     int
	backlog units.Bytes
}

type drrFlow struct {
	quantum float64
	deficit float64
	q       []*packet.Packet
	head    int
	active  bool
}

// NewDRR builds a DRR scheduler. weights are relative (the paper would
// use token rates); mtu scales the quanta so the minimum-weight flow
// receives one MTU per round.
func NewDRR(weights []units.Rate, mtu units.Bytes) *DRR {
	if len(weights) == 0 {
		panic("drr: no flows")
	}
	if mtu <= 0 {
		panic(fmt.Sprintf("drr: invalid MTU %v", mtu))
	}
	minW := weights[0]
	for _, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("drr: non-positive weight %v", w))
		}
		if w < minW {
			minW = w
		}
	}
	d := &DRR{flows: make([]drrFlow, len(weights))}
	for i, w := range weights {
		d.flows[i].quantum = float64(mtu) * w.BitsPerSecond() / minW.BitsPerSecond()
	}
	return d
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(p *packet.Packet) {
	f := &d.flows[p.Flow]
	f.q = append(f.q, p)
	d.len++
	d.backlog += p.Size
	if !f.active {
		f.active = true
		f.deficit = 0
		d.active = append(d.active, p.Flow)
	}
}

// Dequeue implements Scheduler.
func (d *DRR) Dequeue() *packet.Packet {
	if d.len == 0 {
		return nil
	}
	for {
		if d.cursor >= len(d.active) {
			d.cursor = 0
		}
		idx := d.active[d.cursor]
		f := &d.flows[idx]
		if f.head >= len(f.q) {
			// Emptied earlier in the round: retire from the list.
			d.retire(idx)
			continue
		}
		head := f.q[f.head]
		if f.deficit < float64(head.Size) {
			// New visit: grant the quantum and move on if still short.
			f.deficit += f.quantum
			if f.deficit < float64(head.Size) {
				d.cursor++
				continue
			}
		}
		f.deficit -= float64(head.Size)
		f.q[f.head] = nil
		f.head++
		if f.head > 64 && f.head*2 >= len(f.q) {
			n := copy(f.q, f.q[f.head:])
			f.q = f.q[:n]
			f.head = 0
		}
		d.len--
		d.backlog -= head.Size
		switch {
		case f.head >= len(f.q):
			d.retire(idx)
		case f.deficit < float64(f.q[f.head].Size):
			// Deficit exhausted: this flow's turn in the round is over.
			d.cursor++
		}
		return head
	}
}

// retire removes a flow from the active list, keeping cursor position
// consistent.
func (d *DRR) retire(idx int) {
	f := &d.flows[idx]
	f.active = false
	f.deficit = 0
	f.q = f.q[:0]
	f.head = 0
	for i, a := range d.active {
		if a == idx {
			d.active = append(d.active[:i], d.active[i+1:]...)
			if i < d.cursor {
				d.cursor--
			}
			break
		}
	}
}

// Len implements Scheduler.
func (d *DRR) Len() int { return d.len }

// Backlog implements Scheduler.
func (d *DRR) Backlog() units.Bytes { return d.backlog }
