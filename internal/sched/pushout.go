package sched

import (
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// PushoutFIFO implements the protective pushout policy of the paper's
// reference [2] (Cidon, Guérin, Khamisy, "Protective buffer management
// policies"): a FIFO queue where an arriving packet of a flow below its
// fair share may, when the buffer is full, push out the most recent
// packet of the flow most in excess of its own share.
//
// Pushout needs to remove packets already queued, which no
// Manager/Scheduler split can express — so this type implements BOTH
// interfaces and is wired into a Link as its scheduler and its buffer
// manager simultaneously. Compared to the paper's threshold scheme it
// achieves tail-drop-level utilization with flow protection, at the
// cost of O(queue length) worst-case removal work — exactly the kind of
// per-packet cost §1 argues against at high speed.
type PushoutFIFO struct {
	capacity units.Bytes
	shares   []units.Bytes
	occ      []units.Bytes
	total    units.Bytes

	q    []*packet.Packet // nil entries are pushed-out holes
	head int
	len  int

	// OnPushout, if set, is called for each victim packet (for drop
	// accounting).
	OnPushout func(p *packet.Packet)
}

// NewPushoutFIFO builds the combined queue/policy. shares[i] is flow
// i's guaranteed buffer share; Σshares should not exceed capacity for
// the protection property to hold.
func NewPushoutFIFO(capacity units.Bytes, shares []units.Bytes) *PushoutFIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("pushout: non-positive capacity %v", capacity))
	}
	if len(shares) == 0 {
		panic("pushout: no flows")
	}
	for i, s := range shares {
		if s < 0 {
			panic(fmt.Sprintf("pushout: negative share %v for flow %d", s, i))
		}
	}
	return &PushoutFIFO{
		capacity: capacity,
		shares:   append([]units.Bytes(nil), shares...),
		occ:      make([]units.Bytes, len(shares)),
	}
}

// SetOnPushout implements PushoutNotifier; it is equivalent to setting
// the exported OnPushout field.
func (po *PushoutFIFO) SetOnPushout(fn func(p *packet.Packet)) { po.OnPushout = fn }

// --- buffer.Manager ---

// Admit implements buffer.Manager. When the packet does not fit, a
// flow below its share pushes out the newest packet of the most
// over-share flow (repeatedly, until the arrival fits or no eligible
// victim remains).
func (po *PushoutFIFO) Admit(flow int, size units.Bytes) bool {
	for po.total+size > po.capacity {
		if po.occ[flow]+size > po.shares[flow] {
			return false // arriving flow not entitled to protection
		}
		victim := po.mostOverShare(flow)
		if victim < 0 {
			return false
		}
		if !po.pushOutNewest(victim) {
			return false
		}
	}
	po.occ[flow] += size
	po.total += size
	return true
}

// Release implements buffer.Manager (called by the Link on departure).
func (po *PushoutFIFO) Release(flow int, size units.Bytes) {
	if po.occ[flow] < size {
		panic(fmt.Sprintf("pushout: flow %d releasing %v with only %v held", flow, size, po.occ[flow]))
	}
	po.occ[flow] -= size
	po.total -= size
}

// Occupancy implements buffer.Manager.
func (po *PushoutFIFO) Occupancy(flow int) units.Bytes { return po.occ[flow] }

// Total implements buffer.Manager.
func (po *PushoutFIFO) Total() units.Bytes { return po.total }

// Capacity implements buffer.Manager.
func (po *PushoutFIFO) Capacity() units.Bytes { return po.capacity }

// mostOverShare returns the flow with the largest occupancy excess over
// its share (excluding the arriving flow), or -1 when nobody is over.
func (po *PushoutFIFO) mostOverShare(except int) int {
	best := -1
	var bestExcess units.Bytes
	for i := range po.occ {
		if i == except {
			continue
		}
		excess := po.occ[i] - po.shares[i]
		if excess > 0 && (best < 0 || excess > bestExcess) {
			best = i
			bestExcess = excess
		}
	}
	return best
}

// pushOutNewest removes the victim flow's most recent queued packet.
// The packet IN SERVICE cannot be pushed out (it has left the
// scheduler), so this can fail even when occupancy is positive.
func (po *PushoutFIFO) pushOutNewest(flow int) bool {
	for i := len(po.q) - 1; i >= po.head; i-- {
		p := po.q[i]
		if p == nil || p.Flow != flow {
			continue
		}
		po.q[i] = nil
		po.len--
		po.occ[flow] -= p.Size
		po.total -= p.Size
		if po.OnPushout != nil {
			po.OnPushout(p)
		}
		return true
	}
	return false
}

// --- Scheduler ---

// Enqueue implements Scheduler.
func (po *PushoutFIFO) Enqueue(p *packet.Packet) {
	po.q = append(po.q, p)
	po.len++
}

// Dequeue implements Scheduler, skipping pushed-out holes.
func (po *PushoutFIFO) Dequeue() *packet.Packet {
	for po.head < len(po.q) {
		p := po.q[po.head]
		po.q[po.head] = nil
		po.head++
		if po.head > 64 && po.head*2 >= len(po.q) {
			n := copy(po.q, po.q[po.head:])
			po.q = po.q[:n]
			po.head = 0
		}
		if p != nil {
			po.len--
			return p
		}
	}
	return nil
}

// Len implements Scheduler (queued packets, excluding holes).
func (po *PushoutFIFO) Len() int { return po.len }

// Backlog implements Scheduler. Note this equals Total() minus the
// packet in service, which the Link accounts for separately.
func (po *PushoutFIFO) Backlog() units.Bytes {
	var sum units.Bytes
	for i := po.head; i < len(po.q); i++ {
		if po.q[i] != nil {
			sum += po.q[i].Size
		}
	}
	return sum
}
