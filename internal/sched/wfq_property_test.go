package sched

import (
	"testing"
	"testing/quick"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// Property: under any interleaving of enqueues and dequeues with an
// advancing clock, WFQ conserves packets (every enqueued packet is
// dequeued exactly once, per-flow in FIFO order) and its Len/Backlog
// counters never drift.
func TestPropertyWFQConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		const nflows = 3
		now := 0.0
		w := NewWFQ(units.MbitsPerSecond(10), func() float64 { return now },
			[]units.Rate{units.Mbps, 2 * units.Mbps, 7 * units.Mbps})
		seqs := make([]uint64, nflows)
		nextOut := make([]uint64, nflows)
		inFlight := 0
		var backlog units.Bytes
		for _, op := range ops {
			now += float64(op%7) * 1e-4
			flow := int(op) % nflows
			if op%3 == 0 && inFlight > 0 {
				p := w.Dequeue()
				if p == nil {
					return false
				}
				if p.Seq != nextOut[p.Flow] {
					return false // per-flow FIFO order violated
				}
				nextOut[p.Flow]++
				inFlight--
				backlog -= p.Size
			} else {
				size := units.Bytes(op%1400) + 100
				w.Enqueue(&packet.Packet{Flow: flow, Size: size, Seq: seqs[flow]})
				seqs[flow]++
				inFlight++
				backlog += size
			}
			if w.Len() != inFlight || w.Backlog() != backlog {
				return false
			}
		}
		// Drain: everything comes out, in per-flow order.
		for p := w.Dequeue(); p != nil; p = w.Dequeue() {
			if p.Seq != nextOut[p.Flow] {
				return false
			}
			nextOut[p.Flow]++
			inFlight--
		}
		if inFlight != 0 || w.Len() != 0 || w.Backlog() != 0 {
			return false
		}
		for i := 0; i < nflows; i++ {
			if nextOut[i] != seqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the virtual clock never runs backwards under random
// operation sequences (monotone except the documented idle rebase to
// zero).
func TestPropertyWFQVirtualTimeMonotone(t *testing.T) {
	f := func(ops []uint16) bool {
		now := 0.0
		w := NewWFQ(units.MbitsPerSecond(10), func() float64 { return now },
			[]units.Rate{units.Mbps, 9 * units.Mbps})
		var seq uint64
		lastV := 0.0
		for _, op := range ops {
			now += float64(op%5) * 1e-4
			if op%2 == 0 {
				w.Enqueue(&packet.Packet{Flow: int(op) % 2, Size: units.Bytes(op%900) + 100, Seq: seq})
				seq++
			} else {
				w.Dequeue()
			}
			v := w.VirtualTime()
			if v < lastV-1e-9 && v != 0 {
				return false
			}
			lastV = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
