package sched

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// Link is the output-link server: it accepts packets from sources (it
// is a source.Sink), consults the buffer manager for admission, queues
// admitted packets in the scheduler, and transmits them back-to-back at
// the link rate. It is non-preemptive and work-conserving.
type Link struct {
	sim   *sim.Simulator
	rate  units.Rate
	sched Scheduler
	mgr   buffer.Manager
	col   *stats.Collector

	busy bool
	down bool
	// OnDepart, if set, is called after each completed transmission.
	// The fluid tests and the greedy feedback source use it.
	OnDepart func(p *packet.Packet)
	// OnDrop, if set, is called for each rejected packet.
	OnDrop func(p *packet.Packet)

	mServed      *metrics.Counter // nil unless instrumented
	mServedBytes *metrics.Counter
	mPushouts    *metrics.Counter
}

// PushoutNotifier is implemented by combined queue/manager types that
// evict already-queued packets (PushoutFIFO and the online class
// policies). NewLink registers a callback with such schedulers so
// every victim is counted as a drop — in the statistics collector, the
// pushout counter, and the OnDrop hook — keeping packet conservation
// (offered = departed + dropped + queued) intact.
type PushoutNotifier interface {
	SetOnPushout(fn func(p *packet.Packet))
}

// Instrument registers per-scheme service counters with r: packets and
// bytes transmitted, named "sched.served_packets.<scheme>" and
// "sched.served_bytes.<scheme>". It also instruments the scheduler
// when it supports it (WFQ virtual-time advances).
func (l *Link) Instrument(r *metrics.Registry, scheme string) {
	if r == nil {
		return
	}
	l.mServed = r.Counter("sched.served_packets." + scheme)
	l.mServedBytes = r.Counter("sched.served_bytes." + scheme)
	if _, ok := l.sched.(PushoutNotifier); ok {
		l.mPushouts = r.Counter("sched.pushouts." + scheme)
	}
	if in, ok := l.sched.(interface{ Instrument(*metrics.Registry) }); ok {
		in.Instrument(r)
	}
}

// NewLink builds a server draining sched at the given rate, with mgr
// deciding admissions. col may be nil when no statistics are wanted.
func NewLink(s *sim.Simulator, rate units.Rate, sched Scheduler, mgr buffer.Manager, col *stats.Collector) *Link {
	if rate <= 0 {
		panic(fmt.Sprintf("link: non-positive rate %v", rate))
	}
	if sched == nil || mgr == nil {
		panic("link: nil scheduler or buffer manager")
	}
	l := &Link{sim: s, rate: rate, sched: sched, mgr: mgr, col: col}
	if pn, ok := sched.(PushoutNotifier); ok {
		// Fields are read at pushout time, so counters registered by a
		// later Instrument call and OnDrop hooks set after construction
		// are honoured.
		pn.SetOnPushout(func(p *packet.Packet) {
			l.mPushouts.Inc()
			if l.col != nil {
				l.col.Dropped(p, l.sim.Now())
			}
			if l.OnDrop != nil {
				l.OnDrop(p)
			}
		})
	}
	return l
}

// Rate returns the link rate.
func (l *Link) Rate() units.Rate { return l.rate }

// SetRate changes the link rate for transmissions started from now on.
// The in-flight packet, if any, completes at the rate in force when it
// began (the serialization of a packet already on the wire cannot be
// sped up or slowed down). Scenario engines use this for mid-run
// capacity changes; a non-positive rate panics as in NewLink.
func (l *Link) SetRate(rate units.Rate) {
	if rate <= 0 {
		panic(fmt.Sprintf("link: non-positive rate %v", rate))
	}
	l.rate = rate
}

// SetDown fails (true) or recovers (false) the link. A failed link
// starts no new transmissions: arriving packets still pass buffer
// admission and queue up (a dead output port keeps its buffer), so the
// buffer fills and drops accrue while the link is down. The in-flight
// packet, if any, completes. Recovery resumes service immediately.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down && !l.busy {
		l.startNext()
	}
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// Manager returns the buffer manager, for occupancy inspection.
func (l *Link) Manager() buffer.Manager { return l.mgr }

// Scheduler returns the scheduler.
func (l *Link) Scheduler() Scheduler { return l.sched }

// Busy reports whether a packet is currently being transmitted.
func (l *Link) Busy() bool { return l.busy }

// Receive implements source.Sink: a packet arrives at the multiplexer.
func (l *Link) Receive(p *packet.Packet) {
	if l.col != nil {
		l.col.Offered(p, l.sim.Now())
	}
	if !l.mgr.Admit(p.Flow, p.Size) {
		if l.col != nil {
			l.col.Dropped(p, l.sim.Now())
		}
		if l.OnDrop != nil {
			l.OnDrop(p)
		}
		return
	}
	l.sched.Enqueue(p)
	if !l.busy {
		l.startNext()
	}
}

// startNext begins transmitting the scheduler's next packet, if any.
func (l *Link) startNext() {
	if l.down {
		l.busy = false
		return
	}
	p := l.sched.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.sim.After(units.TransmissionTime(p.Size, l.rate), func() {
		l.mgr.Release(p.Flow, p.Size)
		l.mServed.Inc()
		l.mServedBytes.Add(int64(p.Size))
		if l.col != nil {
			l.col.Departed(p, l.sim.Now())
		}
		if l.OnDepart != nil {
			l.OnDepart(p)
		}
		l.startNext()
	})
}
