package sched

import (
	"container/heap"
	"fmt"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// EDF is an Earliest-Deadline-First scheduler: each flow carries a
// per-hop delay budget, an arriving packet is stamped with deadline
// arrival + budget, and the pending packet with the earliest deadline
// is transmitted first. Combined with per-flow shaping at the edge this
// is the "rate controlled Earliest Deadline First" discipline of the
// paper's reference [4] — one of the sorted-queue alternatives whose
// per-packet cost motivates the buffer-management approach.
//
// Packets of the same flow never reorder (their deadlines are
// monotone); the heap breaks deadline ties by arrival sequence so the
// discipline is deterministic.
type EDF struct {
	budgets []float64
	nowFn   func() float64
	heap    edfHeap
	seq     uint64
	backlog units.Bytes
}

type edfItem struct {
	p        *packet.Packet
	deadline float64
	seq      uint64
}

// NewEDF builds an EDF scheduler. budgets[i] is flow i's per-hop delay
// budget in seconds; now is the clock.
func NewEDF(now func() float64, budgets []float64) *EDF {
	if now == nil {
		panic("edf: nil clock")
	}
	if len(budgets) == 0 {
		panic("edf: no flows")
	}
	for f, b := range budgets {
		if b <= 0 {
			panic(fmt.Sprintf("edf: flow %d has non-positive delay budget %v", f, b))
		}
	}
	return &EDF{budgets: append([]float64(nil), budgets...), nowFn: now}
}

// Enqueue implements Scheduler.
func (e *EDF) Enqueue(p *packet.Packet) {
	item := edfItem{p: p, deadline: e.nowFn() + e.budgets[p.Flow], seq: e.seq}
	e.seq++
	heap.Push(&e.heap, item)
	e.backlog += p.Size
}

// Dequeue implements Scheduler.
func (e *EDF) Dequeue() *packet.Packet {
	if len(e.heap) == 0 {
		return nil
	}
	item := heap.Pop(&e.heap).(edfItem)
	e.backlog -= item.p.Size
	return item.p
}

// Len implements Scheduler.
func (e *EDF) Len() int { return len(e.heap) }

// Backlog implements Scheduler.
func (e *EDF) Backlog() units.Bytes { return e.backlog }

type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1].p = nil
	*h = old[:n-1]
	return item
}

// VirtualClock implements the Virtual Clock discipline (the ancestor of
// the Leap-Forward Virtual Clock of reference [8]): each flow has a
// virtual clock advancing by L/ρᵢ per packet, lower-bounded by real
// time, and packets are served in stamp order. It provides rate
// guarantees like WFQ but without GPS virtual-time tracking; its known
// weakness — flows that idle can be punished later — is part of why
// fair-queueing variants exist.
type VirtualClock struct {
	rates   []float64 // bits/s
	clocks  []float64
	nowFn   func() float64
	heap    edfHeap // reuse: (stamp, seq) ordering
	seq     uint64
	backlog units.Bytes
}

// NewVirtualClock builds a Virtual Clock scheduler with per-flow
// reserved rates.
func NewVirtualClock(now func() float64, rates []units.Rate) *VirtualClock {
	if now == nil {
		panic("vc: nil clock")
	}
	if len(rates) == 0 {
		panic("vc: no flows")
	}
	v := &VirtualClock{nowFn: now, rates: make([]float64, len(rates)), clocks: make([]float64, len(rates))}
	for i, r := range rates {
		if r <= 0 {
			panic(fmt.Sprintf("vc: flow %d has non-positive rate %v", i, r))
		}
		v.rates[i] = r.BitsPerSecond()
	}
	return v
}

// Enqueue implements Scheduler.
func (v *VirtualClock) Enqueue(p *packet.Packet) {
	now := v.nowFn()
	if v.clocks[p.Flow] < now {
		v.clocks[p.Flow] = now
	}
	v.clocks[p.Flow] += p.Size.Bits() / v.rates[p.Flow]
	heap.Push(&v.heap, edfItem{p: p, deadline: v.clocks[p.Flow], seq: v.seq})
	v.seq++
	v.backlog += p.Size
}

// Dequeue implements Scheduler.
func (v *VirtualClock) Dequeue() *packet.Packet {
	if len(v.heap) == 0 {
		return nil
	}
	item := heap.Pop(&v.heap).(edfItem)
	v.backlog -= item.p.Size
	return item.p
}

// Len implements Scheduler.
func (v *VirtualClock) Len() int { return len(v.heap) }

// Backlog implements Scheduler.
func (v *VirtualClock) Backlog() units.Bytes { return v.backlog }
