package shard

import (
	"context"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestComputeColocatesZeroLookahead(t *testing.T) {
	// 0 -> 1 with zero lookahead must share a shard; 1 -> 2 with
	// lookahead 1ms may be cut.
	p := Compute(3, 2, []Edge{
		{From: 0, To: 1, Lookahead: 0, Weight: 5},
		{From: 1, To: 2, Lookahead: 0.001, Weight: 5},
	}, nil)
	if p.Assign[0] != p.Assign[1] {
		t.Errorf("zero-lookahead endpoints split: assign %v", p.Assign)
	}
	if p.N != 2 {
		t.Errorf("N = %d, want 2", p.N)
	}
	if p.Assign[2] == p.Assign[1] {
		t.Errorf("expected the 1ms edge to be cut, assign %v", p.Assign)
	}
	if p.Window != 0.001 {
		t.Errorf("Window = %v, want 0.001", p.Window)
	}
	if p.CutEdges != 1 {
		t.Errorf("CutEdges = %d, want 1", p.CutEdges)
	}
}

func TestComputeClampsShards(t *testing.T) {
	// Two links glued by a zero-lookahead edge form one group; asking
	// for 4 shards must yield 1.
	p := Compute(2, 4, []Edge{{From: 0, To: 1, Lookahead: 0}}, nil)
	if p.N != 1 {
		t.Errorf("N = %d, want 1", p.N)
	}
	if !math.IsInf(p.Window, 1) {
		t.Errorf("Window = %v, want +Inf (no cut edges)", p.Window)
	}
}

func TestComputeBalancesByWeight(t *testing.T) {
	// A chain of 4 links where link 0 carries almost all the load: the
	// partitioner must not lump everything with it.
	edges := []Edge{
		{From: 0, To: 1, Lookahead: 0.001, Weight: 1},
		{From: 1, To: 2, Lookahead: 0.001, Weight: 1},
		{From: 2, To: 3, Lookahead: 0.001, Weight: 1},
	}
	p := Compute(4, 2, edges, []int64{90, 10, 10, 10})
	counts := map[int]int{}
	for _, s := range p.Assign {
		counts[s]++
	}
	if len(counts) != 2 {
		t.Fatalf("used %d shards, want 2 (assign %v)", len(counts), p.Assign)
	}
	// The heavy link must sit alone (its weight already exceeds the
	// target), leaving the three light links together.
	var heavyShard = p.Assign[0]
	for i := 1; i < 4; i++ {
		if p.Assign[i] == heavyShard {
			t.Errorf("link %d shares a shard with the heavy link: %v", i, p.Assign)
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	edges := []Edge{
		{From: 0, To: 1, Lookahead: 0.002, Weight: 3},
		{From: 1, To: 2, Lookahead: 0.001, Weight: 2},
		{From: 2, To: 3, Lookahead: 0.004, Weight: 7},
		{From: 3, To: 0, Lookahead: 0.003, Weight: 1},
		{From: 1, To: 3, Lookahead: 0, Weight: 2},
	}
	w := []int64{4, 4, 5, 2}
	first := Compute(4, 3, edges, w)
	for i := 0; i < 20; i++ {
		if p := Compute(4, 3, edges, w); !reflect.DeepEqual(p, first) {
			t.Fatalf("run %d differs: %+v vs %+v", i, p, first)
		}
	}
}

// TestRunMergesDeterministically drives two producer shards feeding a
// third and checks the injected order is the (Time, Sched, tie) merge
// regardless of scheduling interleavings.
func TestRunMergesDeterministically(t *testing.T) {
	type pkt struct{ src, seq int }
	var (
		mu       sync.Mutex
		injected []Item[pkt]
	)
	produce := func(shard int, limit float64, final bool) []Item[pkt] {
		if shard == 2 || final {
			return nil
		}
		// Both producers emit items due at the same arrival instant;
		// shard 1 produced its item earlier in simulated time.
		if limit != 0.5 {
			return nil // only the first window produces
		}
		switch shard {
		case 0:
			return []Item[pkt]{{Dst: 2, Time: 0.6, Sched: 0.2, Load: pkt{0, 1}}}
		default:
			return []Item[pkt]{
				{Dst: 2, Time: 0.6, Sched: 0.1, Load: pkt{1, 1}},
				{Dst: 2, Time: 0.6, Sched: 0.2, Load: pkt{1, 2}},
			}
		}
	}
	inject := func(shard int, items []Item[pkt]) {
		mu.Lock()
		injected = append(injected, items...)
		mu.Unlock()
	}
	less := func(a, b pkt) bool {
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	}
	var first []Item[pkt]
	for trial := 0; trial < 10; trial++ {
		injected = nil
		st, err := Run(context.Background(), Config{Shards: 3, Window: 0.5, Horizon: 1}, produce, inject, less)
		if err != nil {
			t.Fatal(err)
		}
		// Two exclusive windows (0.5, 1.0) plus one boundary pass.
		if st.Windows != 3 {
			t.Fatalf("Windows = %d, want 3", st.Windows)
		}
		want := []Item[pkt]{
			{Dst: 2, Time: 0.6, Sched: 0.1, Load: pkt{1, 1}},
			{Dst: 2, Time: 0.6, Sched: 0.2, Load: pkt{0, 1}},
			{Dst: 2, Time: 0.6, Sched: 0.2, Load: pkt{1, 2}},
		}
		if !reflect.DeepEqual(injected, want) {
			t.Fatalf("trial %d injected %v, want %v", trial, injected, want)
		}
		if trial == 0 {
			first = append(first, injected...)
		} else if !reflect.DeepEqual(injected, first) {
			t.Fatalf("trial %d differs from first", trial)
		}
		if st.Exchanged[2] != 3 {
			t.Errorf("Exchanged[2] = %d, want 3", st.Exchanged[2])
		}
	}
}

// TestRunCausalityViolation checks an item due before the window end is
// rejected rather than silently reordered.
func TestRunCausalityViolation(t *testing.T) {
	produce := func(shard int, limit float64, final bool) []Item[int] {
		if final || limit != 0.5 {
			return nil
		}
		return []Item[int]{{Dst: 0, Time: 0.4, Sched: 0.3}}
	}
	_, err := Run(context.Background(), Config{Shards: 1, Window: 0.5, Horizon: 2},
		produce, func(int, []Item[int]) {}, func(a, b int) bool { return a < b })
	if err == nil {
		t.Fatal("expected a causality error")
	}
}

// TestRunCancellation checks ctx aborts between windows.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	windows := 0
	produce := func(shard int, limit float64, final bool) []Item[int] {
		windows++
		if windows == 3 {
			cancel()
		}
		return nil
	}
	_, err := Run(ctx, Config{Shards: 1, Window: 0.001, Horizon: 10},
		produce, func(int, []Item[int]) {}, func(a, b int) bool { return a < b })
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if windows > 4 {
		t.Errorf("ran %d windows after cancel", windows)
	}
}

// TestRunMinWindows checks the responsiveness cap subdivides a huge
// lookahead window.
func TestRunMinWindows(t *testing.T) {
	var limits []float64
	produce := func(shard int, limit float64, final bool) []Item[int] {
		limits = append(limits, limit)
		return nil
	}
	st, err := Run(context.Background(),
		Config{Shards: 1, Window: math.Inf(1), Horizon: 8, MinWindows: 4},
		produce, func(int, []Item[int]) {}, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	// Four exclusive windows (2, 4, 6, 8) plus one boundary pass.
	if st.Windows != 5 {
		t.Errorf("Windows = %d, want 5 (limits %v)", st.Windows, limits)
	}
	if !sort.Float64sAreSorted(limits) || limits[len(limits)-1] != 8 {
		t.Errorf("window limits %v, want ascending ending at 8", limits)
	}
}
