package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Item is one unit of in-flight work crossing shards at a barrier: it
// must appear on shard Dst at simulated Time, and was produced by an
// event that executed at Sched (Sched ≤ Time; the gap is the edge's
// lookahead). The coordinator merges each destination's items in
// (Time, Sched, tie) order, which is exactly the order a single global
// event heap would have dispatched them in.
type Item[T any] struct {
	Dst   int
	Time  float64
	Sched float64
	Load  T
}

// Config parameterizes one coordinated run.
type Config struct {
	// Shards is the number of workers (≥ 1).
	Shards int
	// Window is the lookahead W: the minimum over cut edges of the time
	// between production and remote appearance. +Inf (no cut edges)
	// means the whole horizon is one window.
	Window float64
	// Horizon is the simulated end time.
	Horizon float64
	// MinWindows, when > 0, caps the window at Horizon/MinWindows so a
	// run stays cancellable even when the lookahead is large. Shrinking
	// the window never affects results — any boundary set that respects
	// W produces the same exchange order — only barrier frequency.
	MinWindows int
}

// Stats summarizes one coordinated run's synchronization behaviour.
type Stats struct {
	// Windows is the number of barrier rounds executed, including the
	// boundary passes at the horizon.
	Windows int
	// NullBundles counts, per shard, the rounds where the shard had
	// nothing to send — the null messages of classic conservative PDES.
	NullBundles []int64
	// Exchanged counts, per shard, the items it received.
	Exchanged []int64
	// Stalls counts, per shard, the rounds where the worker finished
	// before the barrier released it (it sat idle waiting on its peers).
	Stalls []int64
}

// windowCmd releases one worker into its next round.
type windowCmd struct {
	limit float64
	final bool
}

// Run drives cfg.Shards workers through conservative windows until
// cfg.Horizon.
//
// run executes shard's events: strictly before limit when final is
// false, through limit inclusive when final is true. It returns the
// items produced for other shards during the round. inject delivers a
// sorted batch of items to their destination shard; it is called only
// between rounds, never concurrently with run. tieLess breaks residual
// (Time, Sched) ties; it must induce a total order for the merge to be
// deterministic.
//
// The schedule is: exclusive windows [0,T₁), [T₁,T₂), … with
// T_{j+1} = fl(T_j + W) until the horizon, then inclusive boundary
// passes at the horizon that repeat while crossings keep landing at
// exactly that instant (a packet can hop at most route-length cut
// edges per timestamp, so the passes terminate).
//
// Causality is checked: an item whose Time precedes the closed window's
// end would have to be inserted into simulated history the receiving
// shard already executed, so Run fails rather than silently reorder.
// The float subtlety is why the check cannot trip for a correct caller:
// an item produced at sched ≥ T crossing an edge with lookahead ≥ W has
// Time = fl(sched + lookahead) ≥ fl(T + W) because correctly-rounded
// addition is monotone. Arrivals at exactly the window end are fine —
// the end is excluded from the closed window and included in the next.
func Run[T any](ctx context.Context, cfg Config,
	run func(shard int, limit float64, final bool) []Item[T],
	inject func(shard int, items []Item[T]),
	tieLess func(a, b T) bool) (Stats, error) {

	n := cfg.Shards
	st := Stats{
		NullBundles: make([]int64, n),
		Exchanged:   make([]int64, n),
		Stalls:      make([]int64, n),
	}
	if n < 1 {
		return st, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	if cfg.Horizon <= 0 {
		return st, fmt.Errorf("shard: non-positive horizon %v", cfg.Horizon)
	}
	w := cfg.Window
	if cfg.MinWindows > 0 {
		if ceil := cfg.Horizon / float64(cfg.MinWindows); w > ceil {
			w = ceil
		}
	}
	if math.IsNaN(w) || w <= 0 {
		return st, fmt.Errorf("shard: non-positive window %v (a zero-lookahead cut edge?)", w)
	}

	cmds := make([]chan windowCmd, n)
	outs := make([]chan []Item[T], n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cmds[i] = make(chan windowCmd, 1)
		outs[i] = make(chan []Item[T], 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for c := range cmds[i] {
				outs[i] <- run(i, c.limit, c.final)
			}
		}(i)
	}
	defer func() {
		for i := range cmds {
			close(cmds[i])
		}
		wg.Wait()
	}()

	buckets := make([][]Item[T], n)
	// round runs every shard through one barrier round and re-buckets
	// the produced items by destination.
	round := func(limit float64, final bool) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			cmds[i] <- windowCmd{limit: limit, final: final}
		}
		for d := range buckets {
			buckets[d] = buckets[d][:0]
		}
		for i := 0; i < n; i++ {
			items, stalled := recvCounting(outs[i])
			if stalled {
				st.Stalls[i]++
			}
			if len(items) == 0 {
				st.NullBundles[i]++
			}
			for _, it := range items {
				if it.Dst < 0 || it.Dst >= n {
					return fmt.Errorf("shard %d produced item for unknown shard %d", i, it.Dst)
				}
				buckets[it.Dst] = append(buckets[it.Dst], it)
			}
		}
		st.Windows++
		for d := 0; d < n; d++ {
			sortBucket(buckets[d], tieLess)
		}
		return nil
	}

	// Exclusive windows up to the horizon.
	for t := 0.0; t < cfg.Horizon; {
		limit := t + w
		if limit > cfg.Horizon {
			limit = cfg.Horizon
		}
		if err := round(limit, false); err != nil {
			return st, err
		}
		for d := 0; d < n; d++ {
			b := buckets[d]
			if len(b) == 0 {
				continue
			}
			if b[0].Time < limit {
				return st, fmt.Errorf("shard: causality violation: item due at %v before window end %v (lookahead too small)", b[0].Time, limit)
			}
			st.Exchanged[d] += int64(len(b))
			inject(d, b)
		}
		t = limit
	}

	// Boundary passes: execute events at exactly the horizon, repeating
	// while crossings land at that same instant. Items due past the
	// horizon are dropped — a single global kernel would leave them
	// pending too.
	for {
		if err := round(cfg.Horizon, true); err != nil {
			return st, err
		}
		again := false
		for d := 0; d < n; d++ {
			b := buckets[d]
			if len(b) == 0 {
				continue
			}
			if b[0].Time < cfg.Horizon {
				return st, fmt.Errorf("shard: causality violation: item due at %v before horizon %v", b[0].Time, cfg.Horizon)
			}
			at := b
			for len(at) > 0 && at[len(at)-1].Time > cfg.Horizon {
				at = at[:len(at)-1]
			}
			if len(at) == 0 {
				continue
			}
			st.Exchanged[d] += int64(len(at))
			inject(d, at)
			again = true
		}
		if !again {
			return st, nil
		}
	}
}

// sortBucket orders one destination's items in global dispatch order.
func sortBucket[T any](b []Item[T], tieLess func(a, b T) bool) {
	sort.Slice(b, func(i, j int) bool {
		if b[i].Time != b[j].Time {
			return b[i].Time < b[j].Time
		}
		if b[i].Sched != b[j].Sched {
			return b[i].Sched < b[j].Sched
		}
		return tieLess(b[i].Load, b[j].Load)
	})
}

// recvCounting receives a worker's bundle, reporting whether the
// coordinator found it already waiting (the worker finished before the
// barrier released it — a stall on the worker's side).
func recvCounting[T any](out chan []Item[T]) ([]Item[T], bool) {
	select {
	case items := <-out:
		return items, true
	default:
		return <-out, false
	}
}
