// Package shard provides conservative-synchronization parallel
// discrete-event execution: a deterministic partitioner that groups a
// link graph into per-shard components, and a window coordinator that
// drives one simulator per shard through fixed lookahead windows,
// exchanging in-flight work at barriers.
//
// The synchronization protocol is the classic conservative one. Every
// cut edge (an adjacency whose endpoints live on different shards) has
// a lookahead: the minimum simulated time between the instant a
// producing event executes on one shard and the earliest instant its
// effect can occur on another (for a network link, the propagation
// delay). With window W = min lookahead over cut edges, work produced
// during window [T, T+W) arrives no earlier than T+W, so each shard may
// execute a whole window without hearing from its peers, and a barrier
// exchange between windows preserves causality. Zero-lookahead edges
// cannot be cut; the partitioner forces their endpoints into the same
// shard (union-find colocation) before balancing.
package shard

import "math"

// Edge is one directed adjacency in the entity graph being partitioned:
// work finishing at From can appear at To after Lookahead simulated
// seconds. Weight estimates the traffic crossing the adjacency (the cut
// cost the partitioner minimizes).
type Edge struct {
	From, To  int
	Lookahead float64
	Weight    int64
}

// Partition maps each entity (link) to a shard.
type Partition struct {
	// Assign maps entity index to shard index, in [0, N).
	Assign []int
	// N is the effective shard count: min(requested, number of
	// colocation groups), and at least 1.
	N int
	// Window is the synchronization window W: the minimum lookahead over
	// cut edges, or +Inf when no edge is cut (single shard, or disjoint
	// components).
	Window float64
	// CutEdges and CutWeight describe the realized cut.
	CutEdges  int
	CutWeight int64
}

// Compute partitions n entities into at most shards groups, minimizing
// cut weight greedily: zero-lookahead edges are first contracted
// (union-find), then shards are grown one at a time around adjacency —
// each shard seeds with the heaviest unassigned group and repeatedly
// absorbs the unassigned group most strongly connected to it until the
// shard reaches its load target. The result is deterministic: every
// tie breaks toward the smaller group index.
//
// weight estimates per-entity load (e.g. flow-hops of a link); nil
// means uniform. Entities untouched by any edge are ordinary groups of
// their own.
func Compute(n, shards int, edges []Edge, weight []int64) Partition {
	p := Partition{Assign: make([]int, n), N: 1, Window: math.Inf(1)}
	if n == 0 {
		p.N = 0
		return p
	}
	if shards < 1 {
		shards = 1
	}

	// 1. Contract zero-lookahead edges.
	uf := newUnionFind(n)
	for _, e := range edges {
		if e.Lookahead == 0 {
			uf.union(e.From, e.To)
		}
	}

	// 2. Collapse to groups, indexed in ascending order of their
	// smallest member so group numbering is canonical.
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	var groupWeight []int64
	for i := 0; i < n; i++ {
		root := uf.find(i)
		if groupOf[root] == -1 {
			groupOf[root] = len(groupWeight)
			groupWeight = append(groupWeight, 0)
		}
		groupOf[i] = groupOf[root]
		if weight != nil {
			groupWeight[groupOf[i]] += weight[i]
		} else {
			groupWeight[groupOf[i]]++
		}
	}
	groups := len(groupWeight)
	if shards > groups {
		shards = groups
	}

	// 3. Inter-group adjacency (symmetrized: cutting a→b costs the same
	// as b→a for balance purposes).
	adj := make([]map[int]int64, groups)
	for _, e := range edges {
		a, b := groupOf[e.From], groupOf[e.To]
		if a == b {
			continue
		}
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		if adj[a] == nil {
			adj[a] = map[int]int64{}
		}
		if adj[b] == nil {
			adj[b] = map[int]int64{}
		}
		adj[a][b] += w
		adj[b][a] += w
	}

	// 4. Greedy growth. conn[g] tracks g's connectivity to the shard
	// currently being grown.
	groupShard := make([]int, groups)
	for i := range groupShard {
		groupShard[i] = -1
	}
	var total int64
	for _, w := range groupWeight {
		total += w
	}
	target := (total + int64(shards) - 1) / int64(shards)
	conn := make([]int64, groups)
	remaining := groups
	for s := 0; s < shards; s++ {
		for i := range conn {
			conn[i] = 0
		}
		// Leave at least one group for every later shard.
		maxTake := remaining - (shards - 1 - s)
		var load int64
		taken := 0
		for taken < maxTake && (load < target || taken == 0) {
			best := -1
			for g := 0; g < groups; g++ {
				if groupShard[g] != -1 {
					continue
				}
				switch {
				case best == -1,
					conn[g] > conn[best],
					conn[g] == conn[best] && groupWeight[g] > groupWeight[best]:
					best = g
				}
			}
			if best == -1 {
				break
			}
			groupShard[best] = s
			load += groupWeight[best]
			taken++
			remaining--
			for g, w := range adj[best] {
				if groupShard[g] == -1 {
					conn[g] += w
				}
			}
		}
	}
	// Any stragglers (possible when growth closed early) go to the last
	// shard.
	for g := 0; g < groups; g++ {
		if groupShard[g] == -1 {
			groupShard[g] = shards - 1
		}
	}

	for i := 0; i < n; i++ {
		p.Assign[i] = groupShard[groupOf[i]]
	}
	p.N = shards

	// 5. Cut statistics and the window.
	for _, e := range edges {
		if p.Assign[e.From] == p.Assign[e.To] {
			continue
		}
		p.CutEdges++
		p.CutWeight += e.Weight
		if e.Lookahead < p.Window {
			p.Window = e.Lookahead
		}
	}
	return p
}

// unionFind is a standard disjoint-set with path halving.
type unionFind []int

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (uf unionFind) find(x int) int {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

// union merges the sets of a and b, keeping the smaller root so group
// numbering stays canonical.
func (uf unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf[rb] = ra
}
