package report

import "testing"

// Synthetic-figure unit tests for the checks not covered in
// report_test.go, so every registered claim has a direct positive and
// negative case.

func TestNoBMAlwaysLosesCheck(t *testing.T) {
	c := findCheck(t, "nobm-always-loses")
	good := synth("fig2", map[string][]float64{"FIFO": {0.15, 0.03}})
	if err := c.Verify(good); err != nil {
		t.Errorf("persistent-loss shape rejected: %v", err)
	}
	bad := synth("fig2", map[string][]float64{"FIFO": {0.15, 0.0}})
	if err := c.Verify(bad); err == nil {
		t.Error("vanishing no-BM loss accepted")
	}
}

func TestThresholdsPayUtilizationCheck(t *testing.T) {
	c := findCheck(t, "thresholds-pay-utilization")
	good := synth("fig1", map[string][]float64{
		"FIFO":            {0.95, 1.0},
		"FIFO+thresholds": {0.90, 0.97},
		"WFQ+thresholds":  {0.86, 0.94},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("paper ordering rejected: %v", err)
	}
	// Thresholds beating no-BM would be a simulator bug.
	bad := synth("fig1", map[string][]float64{
		"FIFO":            {0.80, 0.90},
		"FIFO+thresholds": {0.95, 0.99},
		"WFQ+thresholds":  {0.86, 0.94},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("inverted utilization ordering accepted")
	}
}

func TestSharingRecoversUtilizationCheck(t *testing.T) {
	c := findCheck(t, "sharing-recovers-utilization")
	good := synth("fig4", map[string][]float64{"FIFO+sharing": {0.91, 0.999}})
	if err := c.Verify(good); err != nil {
		t.Errorf("recovered utilization rejected: %v", err)
	}
	bad := synth("fig4", map[string][]float64{"FIFO+sharing": {0.91, 0.95}})
	if err := c.Verify(bad); err == nil {
		t.Error("low sharing utilization accepted")
	}
}

func TestSharingKeepsProtectionCheck(t *testing.T) {
	c := findCheck(t, "sharing-keeps-protection")
	good := synth("fig5", map[string][]float64{
		"FIFO+sharing": {0.002, 0.0},
		"WFQ+sharing":  {0.0, 0.0},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("protective shape rejected: %v", err)
	}
	bad := synth("fig5", map[string][]float64{
		"FIFO+sharing": {0.002, 0.02},
		"WFQ+sharing":  {0.0, 0.0},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("lossy sharing accepted")
	}
}

func TestFIFOSharingMimicsWFQCheck(t *testing.T) {
	c := findCheck(t, "fifo-sharing-mimics-wfq")
	good := synth("fig6", map[string][]float64{
		"FIFO+sharing flow6": {2.0, 3.1},
		"WFQ+sharing flow6":  {2.1, 2.8},
		"FIFO+sharing flow8": {13.0, 13.8},
		"WFQ+sharing flow8":  {13.1, 14.0},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("convergent sharing rejected: %v", err)
	}
	bad := synth("fig6", map[string][]float64{
		"FIFO+sharing flow6": {2.0, 6.0}, // double WFQ's share
		"WFQ+sharing flow6":  {2.1, 2.8},
		"FIFO+sharing flow8": {13.0, 13.8},
		"WFQ+sharing flow8":  {13.1, 14.0},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("divergent excess sharing accepted")
	}
}

func TestHybridLossCloseChecks(t *testing.T) {
	for _, name := range []string{"hybrid-loss-close-case1"} {
		c := findCheck(t, name)
		good := synth(c.Figure, map[string][]float64{
			"hybrid+sharing": {0.004, 0.0},
			"WFQ+sharing":    {0.002, 0.0},
		})
		if err := c.Verify(good); err != nil {
			t.Errorf("%s: close losses rejected: %v", name, err)
		}
		bad := synth(c.Figure, map[string][]float64{
			"hybrid+sharing": {0.08, 0.05},
			"WFQ+sharing":    {0.002, 0.0},
		})
		if err := c.Verify(bad); err == nil {
			t.Errorf("%s: distant losses accepted", name)
		}
	}
}

func TestCase2UtilizationCheck(t *testing.T) {
	c := findCheck(t, "hybrid-utilization-close-case2")
	good := synth("fig11", map[string][]float64{
		"hybrid+sharing": {0.95, 0.98},
		"WFQ+sharing":    {0.95, 0.995},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("close curves rejected: %v", err)
	}
}

func TestCase2SplitCheck(t *testing.T) {
	c := findCheck(t, "hybrid-sharing-split-case2")
	good := synth("fig13", map[string][]float64{
		"hybrid+sharing moderate": {2.41, 2.45},
		"WFQ+sharing moderate":    {2.42, 2.45},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("reservation-honoring shape rejected: %v", err)
	}
	starved := synth("fig13", map[string][]float64{
		"hybrid+sharing moderate": {1.5, 1.8},
		"WFQ+sharing moderate":    {2.42, 2.45},
	})
	if err := c.Verify(starved); err == nil {
		t.Error("starved moderate flows accepted")
	}
}
