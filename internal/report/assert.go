package report

import (
	"fmt"
	"io"
)

// Assertion is one machine-checked guarantee about a finished run: a
// short name, a human-readable detail line, and a nil Err when the
// guarantee held. Unlike Check, which re-simulates a paper figure, an
// Assertion judges measurements the caller already has — the topology
// engine emits one per per-flow/per-link guarantee of a scenario run.
type Assertion struct {
	// Name identifies the guarantee, e.g. "zero-conformant-loss".
	Name string
	// Detail says what was measured, e.g. "flow video over hop a->b".
	Detail string
	// Err is nil when the assertion held, else the violation.
	Err error
}

// Failed reports whether the assertion was violated.
func (a Assertion) Failed() bool { return a.Err != nil }

// WriteAssertions writes one PASS/FAIL line per assertion in the same
// layout as Run's check report, and returns how many failed.
func WriteAssertions(w io.Writer, as []Assertion) int {
	failed := 0
	for _, a := range as {
		status := "PASS"
		if a.Failed() {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-4s %-34s %s\n", status, a.Name, a.Detail)
		if a.Err != nil {
			fmt.Fprintf(w, "      -> %v\n", a.Err)
		}
	}
	return failed
}
