package report

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteAssertions(t *testing.T) {
	as := []Assertion{
		{Name: "zero-loss", Detail: "flow a over hop1"},
		{Name: "throughput", Detail: "flow b", Err: errors.New("1.2 Mb/s below reserved 2 Mb/s")},
	}
	var sb strings.Builder
	if failed := WriteAssertions(&sb, as); failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	out := sb.String()
	for _, want := range []string{"PASS", "FAIL", "zero-loss", "below reserved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !as[1].Failed() || as[0].Failed() {
		t.Error("Failed() disagrees with Err")
	}
}
