// Package report codifies the paper's qualitative claims about each
// figure as machine-checkable shape assertions. Reproduction is not
// about matching absolute numbers (the substrate differs) but about
// shape: who wins, by roughly what factor, where crossovers fall. Each
// Check pins one such claim; cmd/qcheck evaluates them all against
// freshly simulated figures and fails loudly when a refactor bends a
// curve the wrong way.
package report

import (
	"context"
	"fmt"
	"io"
	"strings"

	"bufqos/internal/experiment"
)

// Check is one shape assertion against a figure.
type Check struct {
	// Figure is the figure ID the check consumes ("fig1" … "fig13").
	Figure string
	// Name is a short identifier for reporting.
	Name string
	// Claim quotes or paraphrases the paper.
	Claim string
	// Verify returns nil when the regenerated figure satisfies the
	// claim.
	Verify func(fig experiment.Figure) error
}

// series fetches a labelled series or errors.
func series(fig experiment.Figure, label string) ([]float64, error) {
	s, ok := fig.SeriesByLabel(label)
	if !ok {
		return nil, fmt.Errorf("series %q missing from %s", label, fig.ID)
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Mean
	}
	return out, nil
}

func last(v []float64) float64  { return v[len(v)-1] }
func first(v []float64) float64 { return v[0] }

// dominates verifies a[i] ≥ b[i] − tol at every sweep point.
func dominates(a, b []float64, tol float64) error {
	for i := range a {
		if a[i] < b[i]-tol {
			return fmt.Errorf("ordering violated at point %d: %.4f < %.4f", i, a[i], b[i])
		}
	}
	return nil
}

// Checks returns the full registry of shape assertions.
func Checks() []Check {
	return []Check{
		{
			Figure: "fig1", Name: "nobm-fills-link",
			Claim: "the FIFO scheduler with no buffer management achieves ~90% utilization with barely 500 KBytes",
			Verify: func(fig experiment.Figure) error {
				fifo, err := series(fig, "FIFO")
				if err != nil {
					return err
				}
				if first(fifo) < 0.85 {
					return fmt.Errorf("no-BM utilization %.3f at smallest buffer, want ≥ 0.85", first(fifo))
				}
				return nil
			},
		},
		{
			Figure: "fig1", Name: "thresholds-pay-utilization",
			Claim: "threshold schemes require much more buffer to achieve the same utilization",
			Verify: func(fig experiment.Figure) error {
				fifo, err := series(fig, "FIFO")
				if err != nil {
					return err
				}
				thr, err := series(fig, "FIFO+thresholds")
				if err != nil {
					return err
				}
				wfqThr, err := series(fig, "WFQ+thresholds")
				if err != nil {
					return err
				}
				if err := dominates(fifo, thr, 0.005); err != nil {
					return fmt.Errorf("no-BM should dominate thresholds: %w", err)
				}
				if err := dominates(thr, wfqThr, 0.01); err != nil {
					return fmt.Errorf("FIFO+thr should not trail WFQ+thr: %w", err)
				}
				return nil
			},
		},
		{
			Figure: "fig2", Name: "nobm-always-loses",
			Claim: "without buffer management, aggressive flows cause conformant losses regardless of buffer size",
			Verify: func(fig experiment.Figure) error {
				fifo, err := series(fig, "FIFO")
				if err != nil {
					return err
				}
				// The largest-buffer loss is transient-sensitive (short
				// runs barely fill a 5 MB buffer), so require clear loss
				// at the small end and strictly positive loss at the
				// large end.
				if first(fifo) < 0.02 {
					return fmt.Errorf("no-BM conformant loss %.4f at smallest buffer, want > 0.02", first(fifo))
				}
				if last(fifo) <= 0 {
					return fmt.Errorf("no-BM conformant loss vanished at the largest buffer")
				}
				return nil
			},
		},
		{
			Figure: "fig2", Name: "thresholds-protect",
			Claim: "FIFO with thresholds achieves near 0 losses with 500 KBytes; WFQ with thresholds with 300 KBytes",
			Verify: func(fig experiment.Figure) error {
				thr, err := series(fig, "FIFO+thresholds")
				if err != nil {
					return err
				}
				wfqThr, err := series(fig, "WFQ+thresholds")
				if err != nil {
					return err
				}
				if last(thr) > 0.001 || last(wfqThr) > 0.001 {
					return fmt.Errorf("threshold losses at largest buffer: %.4f / %.4f, want ≈ 0", last(thr), last(wfqThr))
				}
				// WFQ+thr reaches zero no later than FIFO+thr.
				if err := dominates(thr, wfqThr, 1e-6); err != nil {
					return fmt.Errorf("WFQ+thr should lose no more than FIFO+thr: %w", err)
				}
				return nil
			},
		},
		{
			Figure: "fig3", Name: "wfq-shares-proportionally",
			Claim: "WFQ with thresholds shares excess roughly in the ratio of reserved rates; flow 8 ≫ flow 6",
			Verify: func(fig experiment.Figure) error {
				f6, err := series(fig, "WFQ+thresholds flow6")
				if err != nil {
					return err
				}
				f8, err := series(fig, "WFQ+thresholds flow8")
				if err != nil {
					return err
				}
				ratio := last(f8) / last(f6)
				if ratio < 3 {
					return fmt.Errorf("flow8/flow6 ratio %.2f under WFQ+thr, want ≥ 3 (reservation ratio 5)", ratio)
				}
				return nil
			},
		},
		{
			Figure: "fig4", Name: "sharing-recovers-utilization",
			Claim: "we are quite successful in improving link utilization with the buffer sharing scheme",
			Verify: func(fig experiment.Figure) error {
				share, err := series(fig, "FIFO+sharing")
				if err != nil {
					return err
				}
				if last(share) < 0.98 {
					return fmt.Errorf("FIFO+sharing utilization %.3f at largest buffer, want ≥ 0.98", last(share))
				}
				return nil
			},
		},
		{
			Figure: "fig5", Name: "sharing-keeps-protection",
			Claim: "the increase in throughput does not lead to worse protection for conformant flows",
			Verify: func(fig experiment.Figure) error {
				for _, label := range []string{"FIFO+sharing", "WFQ+sharing"} {
					v, err := series(fig, label)
					if err != nil {
						return err
					}
					if last(v) > 0.005 {
						return fmt.Errorf("%s conformant loss %.4f at largest buffer", label, last(v))
					}
				}
				return nil
			},
		},
		{
			Figure: "fig6", Name: "fifo-sharing-mimics-wfq",
			Claim: "FIFO scheduling with buffer sharing successfully mimics WFQ in distributing excess bandwidth",
			Verify: func(fig experiment.Figure) error {
				for _, flow := range []string{"flow6", "flow8"} {
					f, err := series(fig, "FIFO+sharing "+flow)
					if err != nil {
						return err
					}
					w, err := series(fig, "WFQ+sharing "+flow)
					if err != nil {
						return err
					}
					rel := (last(f) - last(w)) / last(w)
					if rel < -0.3 || rel > 0.3 {
						return fmt.Errorf("%s: FIFO+sharing %.2f vs WFQ+sharing %.2f Mb/s (rel %.0f%%)",
							flow, last(f), last(w), 100*rel)
					}
				}
				return nil
			},
		},
		{
			Figure: "fig7", Name: "headroom-protects",
			Claim: "increasing the headroom has the benefit of protecting conformant flows",
			Verify: func(fig experiment.Figure) error {
				v, err := series(fig, "FIFO+sharing")
				if err != nil {
					return err
				}
				// Loss must be (weakly) non-increasing in H, and the
				// largest-H loss no worse than the H=0 loss.
				if last(v) > first(v)+1e-4 {
					return fmt.Errorf("loss grew with headroom: %.5f -> %.5f", first(v), last(v))
				}
				return nil
			},
		},
		{
			Figure: "fig8", Name: "hybrid-utilization-close-case1",
			Claim:  "the performance of the 3-queue hybrid system is very close to WFQ with buffer sharing",
			Verify: verifyHybridClose("hybrid+sharing", "WFQ+sharing", 0.10),
		},
		{
			Figure: "fig9", Name: "hybrid-loss-close-case1",
			Claim:  "hybrid protection matches per-flow WFQ for the 9-flow case",
			Verify: verifyLossClose("hybrid+sharing", "WFQ+sharing", 0.01),
		},
		{
			Figure: "fig11", Name: "hybrid-utilization-close-case2",
			Claim:  "the hybrid system remains close to WFQ even for this larger number of flows",
			Verify: verifyHybridClose("hybrid+sharing", "WFQ+sharing", 0.07),
		},
		{
			Figure: "fig12", Name: "hybrid-loss-close-case2",
			Claim: "hybrid loss tracks WFQ and both are far below single-FIFO sharing at small buffers",
			Verify: func(fig experiment.Figure) error {
				hyb, err := series(fig, "hybrid+sharing")
				if err != nil {
					return err
				}
				wfq, err := series(fig, "WFQ+sharing")
				if err != nil {
					return err
				}
				fifo, err := series(fig, "FIFO+sharing")
				if err != nil {
					return err
				}
				for i := range hyb {
					if hyb[i] > wfq[i]+0.01 {
						return fmt.Errorf("point %d: hybrid loss %.4f ≫ WFQ %.4f", i, hyb[i], wfq[i])
					}
				}
				if first(fifo) < 2*first(hyb) {
					return fmt.Errorf("single-FIFO loss %.4f not clearly above hybrid %.4f at smallest buffer",
						first(fifo), first(hyb))
				}
				return nil
			},
		},
		{
			Figure: "fig13", Name: "hybrid-sharing-split-case2",
			Claim: "moderate flows keep their reservations; hybrid splits track WFQ",
			Verify: func(fig experiment.Figure) error {
				mod, err := series(fig, "hybrid+sharing moderate")
				if err != nil {
					return err
				}
				// Table 2 moderate flows reserve 2.4 Mb/s each.
				if last(mod) < 2.2 {
					return fmt.Errorf("moderate flows got %.2f Mb/s under hybrid, reservation is 2.4", last(mod))
				}
				wmod, err := series(fig, "WFQ+sharing moderate")
				if err != nil {
					return err
				}
				if rel := (last(mod) - last(wmod)) / last(wmod); rel < -0.1 || rel > 0.1 {
					return fmt.Errorf("hybrid moderate %.2f vs WFQ %.2f (rel %.0f%%)", last(mod), last(wmod), 100*rel)
				}
				return nil
			},
		},
	}
}

func verifyHybridClose(a, b string, tol float64) func(experiment.Figure) error {
	return func(fig experiment.Figure) error {
		av, err := series(fig, a)
		if err != nil {
			return err
		}
		bv, err := series(fig, b)
		if err != nil {
			return err
		}
		for i := range av {
			d := av[i] - bv[i]
			if d < -tol || d > tol {
				return fmt.Errorf("point %d: %s %.3f vs %s %.3f (|Δ| > %.2f)", i, a, av[i], b, bv[i], tol)
			}
		}
		return nil
	}
}

func verifyLossClose(a, b string, tol float64) func(experiment.Figure) error {
	return func(fig experiment.Figure) error {
		av, err := series(fig, a)
		if err != nil {
			return err
		}
		bv, err := series(fig, b)
		if err != nil {
			return err
		}
		for i := range av {
			if av[i] > bv[i]+tol {
				return fmt.Errorf("point %d: %s loss %.4f exceeds %s %.4f + %.2f", i, a, av[i], b, bv[i], tol)
			}
		}
		return nil
	}
}

// Result is the outcome of one check.
type Result struct {
	Check Check
	Err   error
}

// Run regenerates each figure once and evaluates every check against
// it, writing a line per check to w. Cancelling ctx aborts between (or
// inside) figure regenerations.
func Run(ctx context.Context, opts *experiment.Options, w io.Writer) ([]Result, error) {
	checks := Checks()
	// Group checks by figure so each figure is simulated once.
	byFig := map[string][]Check{}
	for _, c := range checks {
		byFig[c.Figure] = append(byFig[c.Figure], c)
	}
	var results []Result
	for _, id := range experiment.FigureIDs() {
		cs := byFig[id]
		if len(cs) == 0 {
			continue
		}
		fig, err := experiment.Figures[id](ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("regenerating %s: %w", id, err)
		}
		for _, c := range cs {
			r := Result{Check: c, Err: c.Verify(fig)}
			results = append(results, r)
			status := "PASS"
			if r.Err != nil {
				status = "FAIL"
			}
			fmt.Fprintf(w, "%-4s %-8s %-34s %s\n", status, c.Figure, c.Name, firstLine(c.Claim))
			if r.Err != nil {
				fmt.Fprintf(w, "      -> %v\n", r.Err)
			}
		}
	}
	return results, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
