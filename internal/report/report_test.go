package report

import (
	"context"
	"strings"
	"testing"

	"bufqos/internal/experiment"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// synth builds a figure from label -> values.
func synth(id string, series map[string][]float64) experiment.Figure {
	fig := experiment.Figure{ID: id}
	for label, vals := range series {
		s := experiment.Series{Label: label}
		for _, v := range vals {
			s.Points = append(s.Points, stats.Summary{Mean: v, N: 1})
		}
		fig.Series = append(fig.Series, s)
		fig.Xs = make([]float64, len(vals))
	}
	return fig
}

func findCheck(t *testing.T, name string) Check {
	t.Helper()
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("check %q not registered", name)
	return Check{}
}

func TestChecksRegistryCoversKeyFigures(t *testing.T) {
	figs := map[string]bool{}
	for _, c := range Checks() {
		figs[c.Figure] = true
		if c.Name == "" || c.Claim == "" || c.Verify == nil {
			t.Errorf("check %+v incomplete", c.Name)
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12", "fig13"} {
		if !figs[want] {
			t.Errorf("no check covers %s", want)
		}
	}
}

func TestNoBMFillsLinkCheck(t *testing.T) {
	c := findCheck(t, "nobm-fills-link")
	good := synth("fig1", map[string][]float64{"FIFO": {0.95, 0.99}})
	if err := c.Verify(good); err != nil {
		t.Errorf("good shape rejected: %v", err)
	}
	bad := synth("fig1", map[string][]float64{"FIFO": {0.60, 0.99}})
	if err := c.Verify(bad); err == nil {
		t.Error("bad shape accepted")
	}
	missing := synth("fig1", map[string][]float64{"WFQ": {0.9}})
	if err := c.Verify(missing); err == nil {
		t.Error("missing series accepted")
	}
}

func TestThresholdsProtectCheck(t *testing.T) {
	c := findCheck(t, "thresholds-protect")
	good := synth("fig2", map[string][]float64{
		"FIFO+thresholds": {0.05, 0.0},
		"WFQ+thresholds":  {0.01, 0.0},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("good shape rejected: %v", err)
	}
	// FIFO+thr still losing at max buffer: fail.
	bad := synth("fig2", map[string][]float64{
		"FIFO+thresholds": {0.05, 0.02},
		"WFQ+thresholds":  {0.01, 0.0},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("lossy threshold curve accepted")
	}
	// WFQ+thr losing MORE than FIFO+thr: ordering violated.
	inverted := synth("fig2", map[string][]float64{
		"FIFO+thresholds": {0.01, 0.0},
		"WFQ+thresholds":  {0.05, 0.0},
	})
	if err := c.Verify(inverted); err == nil {
		t.Error("inverted ordering accepted")
	}
}

func TestProportionalSharingCheck(t *testing.T) {
	c := findCheck(t, "wfq-shares-proportionally")
	good := synth("fig3", map[string][]float64{
		"WFQ+thresholds flow6": {1.0, 1.5},
		"WFQ+thresholds flow8": {8.0, 12.0},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("good ratio rejected: %v", err)
	}
	bad := synth("fig3", map[string][]float64{
		"WFQ+thresholds flow6": {5.0, 6.0},
		"WFQ+thresholds flow8": {8.0, 9.0},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("flat ratio accepted")
	}
}

func TestHeadroomCheck(t *testing.T) {
	c := findCheck(t, "headroom-protects")
	good := synth("fig7", map[string][]float64{"FIFO+sharing": {0.005, 0.001, 0.001}})
	if err := c.Verify(good); err != nil {
		t.Errorf("decreasing loss rejected: %v", err)
	}
	bad := synth("fig7", map[string][]float64{"FIFO+sharing": {0.001, 0.002, 0.01}})
	if err := c.Verify(bad); err == nil {
		t.Error("increasing loss accepted")
	}
}

func TestHybridCloseChecks(t *testing.T) {
	c := findCheck(t, "hybrid-utilization-close-case1")
	good := synth("fig8", map[string][]float64{
		"hybrid+sharing": {0.90, 0.96},
		"WFQ+sharing":    {0.88, 0.99},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("close curves rejected: %v", err)
	}
	bad := synth("fig8", map[string][]float64{
		"hybrid+sharing": {0.70, 0.80},
		"WFQ+sharing":    {0.88, 0.99},
	})
	if err := c.Verify(bad); err == nil {
		t.Error("distant curves accepted")
	}
}

func TestCase2LossCheck(t *testing.T) {
	c := findCheck(t, "hybrid-loss-close-case2")
	good := synth("fig12", map[string][]float64{
		"hybrid+sharing": {0.013, 0.000},
		"WFQ+sharing":    {0.009, 0.000},
		"FIFO+sharing":   {0.106, 0.002},
	})
	if err := c.Verify(good); err != nil {
		t.Errorf("paper-shaped data rejected: %v", err)
	}
	// FIFO no worse than hybrid: the separation claim fails.
	flat := synth("fig12", map[string][]float64{
		"hybrid+sharing": {0.013, 0.000},
		"WFQ+sharing":    {0.009, 0.000},
		"FIFO+sharing":   {0.014, 0.000},
	})
	if err := c.Verify(flat); err == nil {
		t.Error("missing FIFO separation accepted")
	}
}

func TestRunEndToEndTiny(t *testing.T) {
	// Full pipeline at tiny scale: every check must PASS against real
	// simulations. This is the repository's own reproduction gate.
	opts := &experiment.Options{
		Runs:        1,
		Duration:    6,
		BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(1), units.MegaBytes(2)},
		Headrooms:   []units.Bytes{0, units.KiloBytes(150), units.KiloBytes(300)},
		Headroom:    units.KiloBytes(500),
		Fig7Buffer:  units.KiloBytes(250),
	}
	experiment.WithWarmup(0.6)(opts)
	experiment.WithSeed(5)(opts)
	var b strings.Builder
	results, err := Run(context.Background(), opts, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Checks()) {
		t.Errorf("ran %d of %d checks", len(results), len(Checks()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s/%s failed: %v", r.Check.Figure, r.Check.Name, r.Err)
		}
	}
	out := b.String()
	if !strings.Contains(out, "PASS") {
		t.Error("no PASS lines in report output")
	}
}
