package topology

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"bufqos/internal/sim"
	"bufqos/internal/units"
)

// Generate builds a synthetic, validated scenario from a compact spec
// string of the form
//
//	kind?key=value,key=value,...
//
// Three kinds cover the shapes the sharded engine cares about:
//
//   - "line": a chain of links; flows ride random contiguous segments.
//     Keys: links (default 8), flows (default 32).
//   - "fattree": a 3-tier k-ary fat tree (every physical cable is a
//     pair of directed links); flows route edge→agg→core→agg→edge.
//     Keys: k (default 4, must be even ≥ 2), flows (default 64).
//     k=4 yields the canonical 64-link instance.
//   - "random": a directed ring plus random chords; flows ride short
//     random walks. Keys: links (default 64), flows (default 256).
//
// Common keys: seed (default 1) drives every random choice, util
// (default 0.7) sets the provisioned utilization ceiling. Generation is
// deterministic: the same spec always yields the same topology.
//
// Link capacities and buffers are provisioned after routing so that
// admission accepts every flow: each link gets Rate = Σρ/util and
// Buffer = 4·Σσ, which satisfies the FIFO region B·(1−Σρ/R) ≥ Σσ
// whenever util ≤ 0.7 (4·0.3 = 1.2 > 1). Propagation delays are
// randomized in [1ms, 5ms], so a sharded run always has healthy
// lookahead on cut links.
func Generate(spec string) (*Topology, error) {
	p, err := parseGenSpec(spec)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRand(p.seed)
	var t *Topology
	switch p.kind {
	case "line":
		t = genLine(p, rng)
	case "fattree":
		t = genFatTree(p, rng)
	case "random":
		t = genRandom(p, rng)
	default:
		return nil, fmt.Errorf("topology: unknown generator kind %q (want line, fattree, or random)", p.kind)
	}
	t.Name = spec
	provision(t, p.util, rng)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated %q invalid: %w", spec, err)
	}
	return t, nil
}

type genParams struct {
	kind  string
	links int
	flows int
	k     int
	seed  int64
	util  float64
}

func parseGenSpec(spec string) (genParams, error) {
	p := genParams{seed: 1, util: 0.7}
	kind, rest, _ := strings.Cut(spec, "?")
	p.kind = kind
	switch kind {
	case "line":
		p.links, p.flows = 8, 32
	case "fattree":
		p.k, p.flows = 4, 64
	case "random":
		p.links, p.flows = 64, 256
	}
	if rest == "" {
		return p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("topology: generator spec %q: malformed parameter %q (want key=value)", spec, kv)
		}
		switch key {
		case "links", "flows", "k":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("topology: generator spec %q: %s must be a positive integer, got %q", spec, key, val)
			}
			switch key {
			case "links":
				p.links = n
			case "flows":
				p.flows = n
			case "k":
				p.k = n
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("topology: generator spec %q: bad seed %q", spec, val)
			}
			p.seed = n
		case "util":
			u, err := strconv.ParseFloat(val, 64)
			if err != nil || u <= 0 || u > 0.7 {
				return p, fmt.Errorf("topology: generator spec %q: util must be in (0, 0.7], got %q", spec, val)
			}
			p.util = u
		default:
			return p, fmt.Errorf("topology: generator spec %q: unknown parameter %q", spec, key)
		}
	}
	if p.kind == "fattree" && (p.k < 2 || p.k%2 != 0) {
		return p, fmt.Errorf("topology: generator spec %q: fat-tree arity k=%d must be even and ≥ 2", spec, p.k)
	}
	return p, nil
}

// genLine chains links n0→n1→…→nL; each flow rides a random contiguous
// segment of one to four hops.
func genLine(p genParams, rng *rand.Rand) *Topology {
	t := &Topology{Description: "generated line"}
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 0; i < p.links; i++ {
		t.Links = append(t.Links, Link{From: node(i), To: node(i + 1)})
	}
	for f := 0; f < p.flows; f++ {
		hops := 1 + rng.Intn(min(p.links, 4))
		start := rng.Intn(p.links - hops + 1)
		var route []string
		for i := start; i <= start+hops; i++ {
			route = append(route, node(i))
		}
		t.Flows = append(t.Flows, randomFlow(f, route, rng))
	}
	return t
}

// genFatTree builds the classic 3-tier k-ary fat tree: (k/2)² core
// switches, k pods of k/2 aggregation and k/2 edge switches. Every
// cable is two directed links. Aggregation switch j of every pod
// connects to cores [j·k/2, (j+1)·k/2), so a core reaches the
// same-index aggregation switch in every pod — routes go up
// edge→agg→core and down core→agg→edge deterministically.
func genFatTree(p genParams, rng *rand.Rand) *Topology {
	t := &Topology{Description: "generated fat tree"}
	k := p.k
	half := k / 2
	core := func(i int) string { return fmt.Sprintf("c%d", i) }
	agg := func(pod, j int) string { return fmt.Sprintf("p%da%d", pod, j) }
	edge := func(pod, j int) string { return fmt.Sprintf("p%de%d", pod, j) }
	cable := func(a, b string) {
		t.Links = append(t.Links, Link{From: a, To: b}, Link{From: b, To: a})
	}
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				cable(edge(pod, j), agg(pod, i))
			}
			for c := 0; c < half; c++ {
				cable(agg(pod, j), core(j*half+c))
			}
		}
	}
	for f := 0; f < p.flows; f++ {
		sp, sj := rng.Intn(k), rng.Intn(half)
		dp, dj := rng.Intn(k), rng.Intn(half)
		for dp == sp && dj == sj {
			dp, dj = rng.Intn(k), rng.Intn(half)
		}
		var route []string
		a := rng.Intn(half)
		if sp == dp {
			route = []string{edge(sp, sj), agg(sp, a), edge(sp, dj)}
		} else {
			c := a*half + rng.Intn(half)
			route = []string{edge(sp, sj), agg(sp, a), core(c), agg(dp, a), edge(dp, dj)}
		}
		t.Flows = append(t.Flows, randomFlow(f, route, rng))
	}
	return t
}

// genRandom builds a directed ring (guaranteeing every node an exit)
// plus random non-duplicate chords up to the requested link count;
// flows ride loop-free random walks of one to four hops.
func genRandom(p genParams, rng *rand.Rand) *Topology {
	t := &Topology{Description: "generated random graph"}
	n := max(2, p.links/4)
	for n*(n-1) < p.links {
		n++
	}
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	type edge struct{ from, to int }
	edges := make([]edge, 0, p.links)
	used := map[edge]bool{}
	add := func(e edge) bool {
		if e.from == e.to || used[e] {
			return false
		}
		used[e] = true
		edges = append(edges, e)
		return true
	}
	for i := 0; i < n && len(edges) < p.links; i++ {
		add(edge{i, (i + 1) % n})
	}
	for tries := 0; len(edges) < p.links && tries < 100*p.links; tries++ {
		add(edge{rng.Intn(n), rng.Intn(n)})
	}
	for from := 0; len(edges) < p.links; from++ {
		// Sampling stalled near saturation; sweep deterministically.
		for to := 0; to < n && len(edges) < p.links; to++ {
			add(edge{from % n, to})
		}
	}
	out := make([][]int, n)
	for _, e := range edges {
		t.Links = append(t.Links, Link{From: node(e.from), To: node(e.to)})
		out[e.from] = append(out[e.from], e.to)
	}
	for f := 0; f < p.flows; f++ {
		at := rng.Intn(n)
		route := []string{node(at)}
		visited := map[int]bool{at: true}
		hops := 1 + rng.Intn(4)
		for h := 0; h < hops; h++ {
			var next []int
			for _, to := range out[at] {
				if !visited[to] {
					next = append(next, to)
				}
			}
			if len(next) == 0 {
				break
			}
			at = next[rng.Intn(len(next))]
			visited[at] = true
			route = append(route, node(at))
		}
		if len(route) < 2 {
			// Every node has a ring successor; the walk can only wedge
			// after at least one hop, so this is unreachable — but keep
			// the flow valid regardless.
			route = append(route, node((at+1)%n))
		}
		t.Flows = append(t.Flows, randomFlow(f, route, rng))
	}
	return t
}

// randomFlow draws one flow's contract: ρ ∈ [0.5, 2] Mb/s, σ ∈ [5, 20]
// KB, all shaped so Verify has a conformance contract to check. Four in
// five flows are CBR at exactly ρ (sustained, so reserved throughput is
// asserted); the rest are greedy, saturating their envelope.
func randomFlow(id int, route []string, rng *rand.Rand) Flow {
	f := Flow{
		Name:       fmt.Sprintf("flow%d", id),
		RouteNodes: route,
		Shaped:     true,
		Source:     SourceCBR,
	}
	f.Spec.TokenRate = units.MbitsPerSecond(0.5 + 1.5*rng.Float64())
	f.Spec.BucketSize = units.KiloBytes(5 + 15*rng.Float64())
	// Declare a peak at 3ρ: a greedy source saturates its shaper at the
	// peak rate, and leaving it unset would have it offer at the first
	// link's capacity — which provisioning grows with the population, so
	// source event rates (and simulation cost) would scale quadratically
	// in the flow count.
	f.Spec.PeakRate = 3 * f.Spec.TokenRate
	if rng.Intn(5) == 0 {
		f.Source = SourceGreedy
	}
	return f
}

// provision sizes every link after routing: Rate = Σρ/util and
// Buffer = 4·Σσ over the traversing flows keep the whole population
// inside the FIFO admission region (see Generate). Flowless links get
// nominal capacity. Propagation delays are uniform in [1ms, 5ms].
func provision(t *Topology, util float64, rng *rand.Rand) {
	rho := make([]float64, len(t.Links))
	sigma := make([]units.Bytes, len(t.Links))
	byEdge := map[string]int{}
	for i, l := range t.Links {
		byEdge[l.From+"->"+l.To] = i
	}
	for _, f := range t.Flows {
		for h := 0; h+1 < len(f.RouteNodes); h++ {
			li := byEdge[f.RouteNodes[h]+"->"+f.RouteNodes[h+1]]
			rho[li] += f.Spec.TokenRate.BitsPerSecond()
			sigma[li] += f.Spec.BucketSize
		}
	}
	for i := range t.Links {
		l := &t.Links[i]
		l.Rate = max(units.Rate(rho[i]/util), 5*units.Mbps)
		l.Buffer = max(4*sigma[i], units.KiloBytes(50))
		l.PropDelay = 0.001 + 0.004*rng.Float64()
	}
}
