package topology

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// twoHop builds a minimal validated two-hop scenario used across tests:
// flows [0] conformant greedy and [1] aggressive on-off, both routed
// a -> b -> c.
func twoHop(t *testing.T) *Topology {
	t.Helper()
	topo := &Topology{
		Name: "twohop",
		Links: []Link{
			{From: "a", To: "b", Rate: units.MbitsPerSecond(48), Buffer: units.MegaBytes(2), Spec: "fifo+threshold"},
			{From: "b", To: "c", Rate: units.MbitsPerSecond(48), Buffer: units.MegaBytes(1), Spec: "wfq+sharing", Headroom: units.KiloBytes(200)},
		},
		Flows: []Flow{
			{
				Name: "conf",
				Spec: packet.FlowSpec{
					PeakRate: units.MbitsPerSecond(16), TokenRate: units.MbitsPerSecond(4),
					BucketSize: units.KiloBytes(50),
				},
				RouteNodes: []string{"a", "b", "c"},
				Source:     SourceGreedy,
				Shaped:     true,
			},
			{
				Name: "agg",
				Spec: packet.FlowSpec{
					PeakRate: units.MbitsPerSecond(40), TokenRate: units.MbitsPerSecond(2),
					BucketSize: units.KiloBytes(50),
				},
				RouteNodes: []string{"a", "b", "c"},
				AvgRate:    units.MbitsPerSecond(10),
				MeanBurst:  units.KiloBytes(250),
			},
		},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestValidateResolvesRoutesAndDefaults(t *testing.T) {
	topo := twoHop(t)
	if topo.Links[0].Name != "a->b" || topo.Links[1].Name != "b->c" {
		t.Errorf("default link names wrong: %q %q", topo.Links[0].Name, topo.Links[1].Name)
	}
	if !reflect.DeepEqual(topo.Flows[0].Route, []int{0, 1}) {
		t.Errorf("route resolved to %v, want [0 1]", topo.Flows[0].Route)
	}
	f := &topo.Flows[1]
	if f.Source != SourceOnOff || f.PacketSize != 500 {
		t.Errorf("defaults not applied: source=%q pkt=%v", f.Source, f.PacketSize)
	}
	if topo.Flows[0].AvgRate != topo.Flows[0].Spec.TokenRate {
		t.Errorf("AvgRate default = %v, want ρ", topo.Flows[0].AvgRate)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *Topology {
		return &Topology{
			Name:  "bad",
			Links: []Link{{From: "a", To: "b", Rate: units.MbitsPerSecond(48), Buffer: units.MegaBytes(1)}},
			Flows: []Flow{{
				Name:       "f",
				Spec:       packet.FlowSpec{TokenRate: units.MbitsPerSecond(2), BucketSize: units.KiloBytes(50)},
				RouteNodes: []string{"a", "b"},
				Source:     SourceCBR,
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Topology)
		want   string
	}{
		{"unknown scheme", func(t *Topology) { t.Links[0].Spec = "bogus+none" }, "bogus"},
		{"negative prop", func(t *Topology) { t.Links[0].PropDelay = -1 }, "propagation"},
		{"zero rate", func(t *Topology) { t.Links[0].Rate = 0 }, "rate"},
		{"self loop", func(t *Topology) { t.Links[0].To = "a" }, "self-loop"},
		{"headroom too big", func(t *Topology) { t.Links[0].Headroom = units.MegaBytes(2) }, "headroom"},
		{"unroutable", func(t *Topology) { t.Flows[0].RouteNodes = []string{"a", "z"} }, "no link a->z"},
		{"short route", func(t *Topology) { t.Flows[0].RouteNodes = []string{"a"} }, "two nodes"},
		{"bad flow spec", func(t *Topology) { t.Flows[0].Spec.TokenRate = -1 }, "token rate"},
		{"greedy unshaped", func(t *Topology) { t.Flows[0].Source = SourceGreedy }, "shaped"},
		{"bad source kind", func(t *Topology) { t.Flows[0].Source = "warp" }, "source kind"},
		{"onoff without peak", func(t *Topology) { t.Flows[0].Source = SourceOnOff }, "peak"},
		{"unknown event flow", func(t *Topology) {
			t.Events = []Event{{At: 1, Kind: EventJoin, Flow: "ghost"}}
		}, "unknown flow"},
		{"unknown event link", func(t *Topology) {
			t.Events = []Event{{At: 1, Kind: EventFail, Link: "ghost"}}
		}, "unknown link"},
		{"leave before join", func(t *Topology) {
			t.Events = []Event{
				{At: 1, Kind: EventLeave, Flow: "f"},
				{At: 2, Kind: EventJoin, Flow: "f"},
			}
		}, "before its join"},
		{"double join", func(t *Topology) {
			t.Events = []Event{
				{At: 1, Kind: EventJoin, Flow: "f"},
				{At: 2, Kind: EventJoin, Flow: "f"},
			}
		}, "joins twice"},
		{"bad rate event", func(t *Topology) {
			t.Events = []Event{{At: 1, Kind: EventRate, Link: "a->b", Rate: 0}}
		}, "non-positive rate"},
		{"hybrid without queues", func(t *Topology) { t.Links[0].Spec = "hybrid+sharing" }, "hybrid"},
	}
	for _, tc := range cases {
		topo := base()
		tc.mutate(topo)
		err := topo.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","links":[{"from":"a","to":"b","rate_mbsp":48}]}`))
	if err == nil || !strings.Contains(err.Error(), "rate_mbsp") {
		t.Errorf("typo field not rejected: %v", err)
	}
}

func TestRunAdmitsAndDelivers(t *testing.T) {
	topo := twoHop(t)
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for fi, fr := range res.Flows {
		if !fr.Admitted {
			t.Fatalf("flow %d not admitted", fi)
		}
		if fr.Delivered.Packets == 0 || fr.Offered.Packets == 0 {
			t.Errorf("flow %d carried nothing: %+v", fi, fr)
		}
	}
	if len(res.Rejections) != 0 {
		t.Errorf("unexpected rejections: %+v", res.Rejections)
	}
	// The conformant greedy flow must hold its reservation end-to-end.
	for _, a := range Verify(topo, &res) {
		if a.Failed() {
			t.Errorf("%s (%s): %v", a.Name, a.Detail, a.Err)
		}
	}
	// Per-link forwarding diagnostics reach the result.
	if fwd := res.Links[0].Flows[0].Forwarded; fwd == 0 {
		t.Error("first hop forwarded nothing for flow 0")
	}
}

func TestAdmissionRejectionPerLinkReason(t *testing.T) {
	topo := twoHop(t)
	// A flow over-subscribing bandwidth on the (narrower) second link
	// only: ρ = 45 fits nothing alongside the existing 6 Mb/s.
	topo.Flows = append(topo.Flows, Flow{
		Name: "hog",
		Spec: packet.FlowSpec{
			PeakRate: units.MbitsPerSecond(45), TokenRate: units.MbitsPerSecond(45),
			BucketSize: units.KiloBytes(10),
		},
		RouteNodes: []string{"b", "c"},
		Source:     SourceCBR,
	})
	topo.Events = []Event{{At: 1, Kind: EventJoin, Flow: "hog"}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), topo, Options{Duration: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[2].Admitted {
		t.Fatal("45 Mb/s flow admitted on a 48 Mb/s link already carrying 6 Mb/s")
	}
	if len(res.Rejections) != 1 {
		t.Fatalf("rejections = %+v, want exactly one", res.Rejections)
	}
	rej := res.Rejections[0]
	if rej.Link != "b->c" || rej.Reason != core.BandwidthLimited || rej.Flow != "hog" || rej.At != 1 {
		t.Errorf("rejection = %+v, want hog at b->c, bandwidth-limited, t=1", rej)
	}
	if res.Flows[2].Delivered.Packets != 0 || res.Flows[2].Offered.Packets != 0 {
		t.Errorf("rejected flow carried traffic: %+v", res.Flows[2])
	}

	// A σ over-subscription on the WFQ hop is buffer-limited (eq. 6).
	topo2 := twoHop(t)
	topo2.Flows = append(topo2.Flows, Flow{
		Name: "burster",
		Spec: packet.FlowSpec{
			TokenRate:  units.MbitsPerSecond(1),
			BucketSize: units.MegaBytes(2), // > the 1 MB buffer of b->c
		},
		RouteNodes: []string{"b", "c"},
		Source:     SourceCBR,
	})
	if err := topo2.Validate(); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), topo2, Options{Duration: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rejections) != 1 || res2.Rejections[0].Reason != core.BufferLimited {
		t.Errorf("rejections = %+v, want one buffer-limited", res2.Rejections)
	}
}

func TestLeaveReleasesCapacity(t *testing.T) {
	topo := twoHop(t)
	// tenant reserves 30 Mb/s on a->b from the start and leaves at t=2;
	// successor needs that capacity and joins at t=3 (together they
	// would over-subscribe the 48 Mb/s link).
	big := packet.FlowSpec{
		PeakRate: units.MbitsPerSecond(40), TokenRate: units.MbitsPerSecond(30),
		BucketSize: units.KiloBytes(50),
	}
	topo.Flows = append(topo.Flows,
		Flow{
			Name: "tenant", Spec: big,
			RouteNodes: []string{"a", "b"},
			Source:     SourceCBR,
			AvgRate:    units.MbitsPerSecond(10),
		},
		Flow{
			Name: "successor", Spec: big,
			RouteNodes: []string{"a", "b"},
			Source:     SourceCBR,
			AvgRate:    units.MbitsPerSecond(10),
		},
	)
	topo.Events = []Event{
		{At: 2, Kind: EventLeave, Flow: "tenant"},
		{At: 3, Kind: EventJoin, Flow: "successor"},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tenant := res.Flows[2]
	if !tenant.Admitted || !tenant.Left || tenant.LeaveAt != 2 {
		t.Errorf("tenant = %+v, want admitted and left at t=2", tenant)
	}
	if !res.Flows[3].Admitted {
		t.Errorf("successor not admitted after tenant left: %+v", res.Rejections)
	}
	// Without the leave, the successor must be rejected.
	topo.Events = []Event{{At: 3, Kind: EventJoin, Flow: "successor"}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Flows[3].Admitted {
		t.Error("successor admitted alongside tenant: Σρ = 66 Mb/s on a 48 Mb/s link")
	}
}

func TestLinkFailurePartialPathStats(t *testing.T) {
	topo := twoHop(t)
	topo.Events = []Event{
		{At: 1, Kind: EventFail, Link: "b->c"},
		{At: 4, Kind: EventRecover, Link: "b->c"},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for fi, fr := range res.Flows {
		if !fr.Degraded {
			t.Errorf("flow %d crosses the failed link but is not degraded", fi)
		}
		if fr.Delivered.Packets == 0 {
			t.Errorf("flow %d delivered nothing despite recovery", fi)
		}
	}
	// The failed hop kept counting: its drops grew while it was down.
	if res.Links[1].DroppedPackets() == 0 {
		t.Error("3s outage on a loaded link dropped nothing")
	}
	// Degraded flows are exempt from the guarantees.
	for _, a := range Verify(topo, &res) {
		if a.Failed() {
			t.Errorf("degraded run should produce no failures: %s: %v", a.Name, a.Err)
		}
		if a.Name == "zero-conformant-loss" || a.Name == "reserved-throughput" {
			t.Errorf("strict guarantee %s asserted for a degraded flow", a.Name)
		}
	}
}

func TestVerifyFlagsConformantLoss(t *testing.T) {
	// No buffer management on a slow first hop: the aggressive flow's
	// 40 Mb/s bursts overload the 24 Mb/s link, tail-drop hits the
	// conformant flow too, and Verify must catch it. The declared
	// profiles (Σρ = 6 Mb/s, Σσ = 100 KB) still pass admission —
	// exactly the paper's Figure 2 failure mode.
	topo := twoHop(t)
	topo.Links[0].Spec = "fifo+none"
	topo.Links[0].Rate = units.MbitsPerSecond(24)
	topo.Links[0].Buffer = units.KiloBytes(150)
	topo.Flows[1].AvgRate = units.MbitsPerSecond(20)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, a := range Verify(topo, &res) {
		if a.Failed() {
			failed++
		}
	}
	if failed == 0 {
		t.Error("tail-drop with a 30 KB buffer under 30 Mb/s aggression produced no violation")
	}
}

func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	topo := twoHop(t)
	topo.Events = []Event{
		{At: 2, Kind: EventRate, Link: "a->b", Rate: units.MbitsPerSecond(40)},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	const runs = 6
	opts := Options{Duration: 3, Seed: 7}
	want, err := RunMany(context.Background(), topo, opts, runs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < runs; r++ {
		if want[r].Seed != 7+int64(r) {
			t.Errorf("run %d seed = %d, want %d", r, want[r].Seed, 7+r)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunMany(context.Background(), topo, opts, runs, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential results", workers)
		}
	}
}

func TestTablesAndCSV(t *testing.T) {
	topo := twoHop(t)
	results, err := RunMany(context.Background(), topo, Options{Duration: 2, Seed: 3}, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFlowTable(&sb, topo, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteLinkTable(&sb, topo, results); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"conf", "agg", "a->b", "b->c", "fifo+threshold", "wfq+sharing"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteFlowCSV(&sb, topo, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(sb.String()), "\n"); lines != 3*2 {
		t.Errorf("flow CSV has %d data rows, want 6", lines)
	}
	sb.Reset()
	if err := WriteLinkCSV(&sb, topo, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(sb.String()), "\n"); lines != 3*2*2 {
		t.Errorf("link CSV has %d data rows, want 12", lines)
	}
}
