package topology_test

import (
	"context"
	"fmt"
	"strings"

	"bufqos/internal/topology"
)

// A scenario is one JSON document: links with per-hop schemes, flows
// with routes and (σ, ρ) envelopes, and an optional event timeline.
// Parse validates everything (routes against links, envelope sanity, a
// trial build of each scheme) before Run simulates it; runs are
// deterministic for a fixed seed.
func ExampleParse() {
	const doc = `{
	  "name": "one-hop",
	  "links": [
	    {"from": "a", "to": "b", "rate_mbps": 48, "buffer_kb": 500,
	     "scheme": "fifo+threshold"}
	  ],
	  "flows": [
	    {"name": "conf", "route": ["a", "b"], "peak_mbps": 16,
	     "token_mbps": 8, "bucket_kb": 50, "source": "greedy", "shaped": true},
	    {"name": "rival", "route": ["a", "b"], "peak_mbps": 48,
	     "token_mbps": 24, "bucket_kb": 100, "source": "greedy", "shaped": true}
	  ]
	}`
	topo, err := topology.Parse(strings.NewReader(doc))
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := topology.Run(context.Background(), topo, topology.Options{Duration: 1, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, f := range res.Flows {
		fmt.Printf("%s: admitted=%v conformant drops=%d\n",
			topo.Flows[i].Name, f.Admitted, res.Links[0].Flows[i].ConformantDropped.Packets)
	}
	// Output:
	// conf: admitted=true conformant drops=0
	// rival: admitted=true conformant drops=0
}
