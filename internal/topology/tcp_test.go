package topology

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// tcpPair builds a validated two-hop closed-loop scenario: two tcp
// flows with asymmetric reservations share a bottleneck path
// a -> b -> c, with reverse links carrying their acknowledgements
// home. spec is applied to both forward links.
func tcpPair(t *testing.T, spec string) *Topology {
	t.Helper()
	topo := &Topology{
		Name: "tcppair",
		Links: []Link{
			{From: "a", To: "b", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(150), PropDelay: 0.001, Spec: spec},
			{From: "b", To: "c", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(150), PropDelay: 0.002, Spec: spec},
			{From: "c", To: "b", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(150), PropDelay: 0.002, Spec: spec},
			{From: "b", To: "a", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(150), PropDelay: 0.001, Spec: spec},
		},
		Flows: []Flow{
			{
				Name: "big",
				Spec: packet.FlowSpec{
					PeakRate: units.MbitsPerSecond(10), TokenRate: units.MbitsPerSecond(6),
					BucketSize: units.KiloBytes(10),
				},
				RouteNodes: []string{"a", "b", "c"},
				Source:     SourceTCP,
			},
			{
				Name: "small",
				Spec: packet.FlowSpec{
					PeakRate: units.MbitsPerSecond(10), TokenRate: units.MbitsPerSecond(2),
					BucketSize: units.KiloBytes(10),
				},
				RouteNodes: []string{"a", "b", "c"},
				Source:     SourceTCP,
			},
		},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestValidateTCPReverseRoute(t *testing.T) {
	topo := tcpPair(t, "fifo+threshold")
	// Forward a->b->c is links 0,1; reverse of hop 0 is b->a (link 3),
	// of hop 1 is c->b (link 2).
	if !reflect.DeepEqual(topo.Flows[0].Route, []int{0, 1}) {
		t.Errorf("route %v", topo.Flows[0].Route)
	}
	if !reflect.DeepEqual(topo.Flows[0].ReverseRoute, []int{3, 2}) {
		t.Errorf("reverse route %v, want [3 2]", topo.Flows[0].ReverseRoute)
	}
}

func TestValidateTCPErrors(t *testing.T) {
	// No reverse link: rejected with a message naming the missing edge.
	topo := &Topology{
		Name:  "bad",
		Links: []Link{{From: "a", To: "b", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(100)}},
		Flows: []Flow{{
			Spec:       packet.FlowSpec{TokenRate: units.MbitsPerSecond(1), BucketSize: units.KiloBytes(10)},
			RouteNodes: []string{"a", "b"},
			Source:     SourceTCP,
		}},
	}
	err := topo.Validate()
	if err == nil || !strings.Contains(err.Error(), "reverse link b->a") {
		t.Errorf("missing reverse link: err=%v", err)
	}
	// A shaped tcp flow is contradictory.
	topo2 := &Topology{
		Name: "bad2",
		Links: []Link{
			{From: "a", To: "b", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(100)},
			{From: "b", To: "a", Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(100)},
		},
		Flows: []Flow{{
			Spec:       packet.FlowSpec{TokenRate: units.MbitsPerSecond(1), BucketSize: units.KiloBytes(10)},
			RouteNodes: []string{"a", "b"},
			Source:     SourceTCP,
			Shaped:     true,
		}},
	}
	if err := topo2.Validate(); err == nil || !strings.Contains(err.Error(), "shaped") {
		t.Errorf("shaped tcp: err=%v", err)
	}
}

// TestTCPClosedLoopDelivers drives the feedback loop end to end: both
// windows open, the bottleneck fills, drops trigger retransmissions,
// and goodput excludes the duplicate copies.
func TestTCPClosedLoopDelivers(t *testing.T) {
	topo := tcpPair(t, "fifo+threshold")
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var totalGoodput units.Bytes
	for fi := range res.Flows {
		fr := &res.Flows[fi]
		if !fr.Admitted {
			t.Fatalf("flow %s rejected", fr.Name)
		}
		if fr.Goodput.Packets == 0 {
			t.Errorf("flow %s: zero goodput", fr.Name)
		}
		if fr.Goodput.Packets > fr.Delivered.Packets {
			t.Errorf("flow %s: goodput %d exceeds delivered %d", fr.Name, fr.Goodput.Packets, fr.Delivered.Packets)
		}
		totalGoodput += fr.Goodput.Bytes
	}
	// Two greedy windows against a 10 Mbit/s bottleneck must saturate
	// it: total goodput well above half capacity over the 5 s run.
	if totalGoodput.Bits() < 0.5*10e6*5 {
		t.Errorf("bottleneck underused: total goodput %v", totalGoodput)
	}
	// Saturation means loss, loss means retransmissions.
	if res.Flows[0].Retransmits+res.Flows[1].Retransmits == 0 {
		t.Error("no retransmissions despite a saturated bottleneck")
	}
}

// TestTCPShardEquivalence extends the bit-identity contract to the
// closed loop: ACK and drop notifications crossing shard boundaries
// must reproduce the single-shard schedule exactly.
func TestTCPShardEquivalence(t *testing.T) {
	for _, spec := range []string{"fifo+threshold", "fifo+sharing", "fifo+red", "fifo+none"} {
		t.Run(spec, func(t *testing.T) {
			topo := tcpPair(t, spec)
			opts := Options{Duration: 3, Seed: 7}
			base, err := Run(context.Background(), topo, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 4} {
				o := opts
				o.Shards = shards
				res, err := Run(context.Background(), topo, o)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(base, res) {
					t.Errorf("shards=%d: result differs from single-shard run", shards)
				}
			}
		})
	}
}

// TestVerifyTCPGoodputFloor: the closed-loop assertion fires for
// guaranteed routes and passes under per-flow thresholds.
func TestVerifyTCPGoodputFloor(t *testing.T) {
	topo := tcpPair(t, "fifo+threshold")
	res, err := Run(context.Background(), topo, Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	floors := 0
	for _, a := range Verify(topo, &res) {
		if a.Name != "tcp-goodput-floor" {
			continue
		}
		floors++
		if a.Err != nil {
			t.Errorf("%s: %v", a.Detail, a.Err)
		}
	}
	if floors != 2 {
		t.Errorf("want 2 goodput-floor assertions, got %d", floors)
	}
	// A taildrop route makes no per-flow promise: no floor asserted.
	plain := tcpPair(t, "fifo+none")
	res2, err := Run(context.Background(), plain, Options{Duration: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Verify(plain, &res2) {
		if a.Name == "tcp-goodput-floor" {
			t.Errorf("goodput floor asserted on a taildrop route: %s", a.Detail)
		}
	}
}
