package topology

import (
	"bytes"
	"strings"
	"testing"

	"bufqos/internal/units"
)

// TestParseWireTypedScenario loads a scenario written entirely in the
// suffixed wire encoding shared with qosd and checks it equals the
// legacy-numeric spelling of the same scenario.
func TestParseWireTypedScenario(t *testing.T) {
	wire := `{
  "name": "wire",
  "links": [
    {"from": "a", "to": "b", "rate": "48Mbit/s", "buffer": "600KB",
     "headroom": "50KB", "prop_delay": "5ms"}
  ],
  "flows": [
    {"name": "f0", "route": ["a", "b"], "source": "cbr", "shaped": true,
     "spec": {"peak": "6Mbit/s", "token": "2Mbit/s", "bucket": "60KB"},
     "avg": "2Mbit/s", "burst": "60KB", "packet": "500B"}
  ],
  "events": [
    {"at": 1, "type": "rate", "link": "a->b", "rate": "24Mbit/s"}
  ]
}`
	legacy := `{
  "name": "wire",
  "links": [
    {"from": "a", "to": "b", "rate_mbps": 48, "buffer_kb": 600,
     "headroom_kb": 50, "prop_delay_ms": 5}
  ],
  "flows": [
    {"name": "f0", "route": ["a", "b"], "source": "cbr", "shaped": true,
     "peak_mbps": 6, "token_mbps": 2, "bucket_kb": 60,
     "avg_mbps": 2, "burst_kb": 60, "packet_bytes": 500}
  ],
  "events": [
    {"at": 1, "type": "rate", "link": "a->b", "rate_mbps": 24}
  ]
}`
	tw, err := Parse(strings.NewReader(wire))
	if err != nil {
		t.Fatalf("wire form: %v", err)
	}
	tl, err := Parse(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy form: %v", err)
	}
	lw, ll := tw.Links[0], tl.Links[0]
	if lw.Rate != ll.Rate || lw.Buffer != ll.Buffer || lw.Headroom != ll.Headroom || lw.PropDelay != ll.PropDelay {
		t.Errorf("links differ:\nwire   %+v\nlegacy %+v", lw, ll)
	}
	if tw.Flows[0].Spec != tl.Flows[0].Spec || tw.Flows[0].AvgRate != tl.Flows[0].AvgRate ||
		tw.Flows[0].MeanBurst != tl.Flows[0].MeanBurst || tw.Flows[0].PacketSize != tl.Flows[0].PacketSize {
		t.Errorf("flows differ:\nwire   %+v\nlegacy %+v", tw.Flows[0], tl.Flows[0])
	}
	if tw.Events[0].Rate != tl.Events[0].Rate {
		t.Errorf("event rates differ: %v vs %v", tw.Events[0].Rate, tl.Events[0].Rate)
	}
	if tw.Links[0].Rate != units.MbitsPerSecond(48) || tw.Links[0].PropDelay != 0.005 {
		t.Errorf("wire link decoded wrong: %+v", tw.Links[0])
	}

	// Write emits the legacy schema; the round trip must survive.
	var buf bytes.Buffer
	if err := Write(&buf, tw); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse written scenario: %v", err)
	}
	if back.Links[0].Rate != tw.Links[0].Rate || back.Flows[0].Spec != tw.Flows[0].Spec {
		t.Error("Write/Parse round trip lost wire-typed values")
	}
}

// TestParseRejectsDoubleEncoding: giving the same quantity in both
// encodings is ambiguous and must fail loudly.
func TestParseRejectsDoubleEncoding(t *testing.T) {
	cases := []string{
		`{"name":"x","links":[{"from":"a","to":"b","rate_mbps":48,"rate":"24Mbit/s","buffer_kb":100}],
		  "flows":[{"route":["a","b"],"token_mbps":1,"bucket_kb":10,"peak_mbps":3}]}`,
		`{"name":"x","links":[{"from":"a","to":"b","rate_mbps":48,"buffer_kb":100}],
		  "flows":[{"route":["a","b"],"token_mbps":1,"bucket_kb":10,"peak_mbps":3,
		            "spec":{"token":"1Mbit/s","bucket":"10KB"}}]}`,
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: double-encoded scenario accepted", i)
		}
	}
}

// TestParseWireEventTimes: timeline times accept the suffixed wire
// encoding ("250ms", "1s") alongside bare numeric seconds, sharing the
// units.Time parser with flow specs, and survive a Write round trip.
func TestParseWireEventTimes(t *testing.T) {
	src := `{
  "name": "evt",
  "links": [
    {"from": "a", "to": "b", "rate_mbps": 48, "buffer_kb": 600}
  ],
  "flows": [
    {"name": "f0", "route": ["a", "b"], "source": "cbr",
     "peak_mbps": 6, "token_mbps": 2, "bucket_kb": 60}
  ],
  "events": [
    {"at": "250ms", "type": "rate", "link": "a->b", "rate_mbps": 24},
    {"at": 1, "type": "rate", "link": "a->b", "rate_mbps": 48},
    {"at": "1.5s", "type": "fail", "link": "a->b"}
  ]
}`
	tw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 1, 1.5}
	for i, w := range want {
		if tw.Events[i].At != w {
			t.Errorf("event %d: at=%v, want %v", i, tw.Events[i].At, w)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, tw); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse written scenario: %v", err)
	}
	for i, w := range want {
		if back.Events[i].At != w {
			t.Errorf("round trip event %d: at=%v, want %v", i, back.Events[i].At, w)
		}
	}
}
