package topology

import (
	"fmt"

	"bufqos/internal/report"
	"bufqos/internal/units"
)

// Verify checks the paper's composed guarantees against one finished
// run and returns one assertion per guarantee:
//
//   - zero conformant loss: an admitted shaped flow loses no conformant
//     packet at any link of its route (Prop. 2 per hop; admission kept
//     every hop inside its schedulability region).
//   - conservation: the flow delivers at least what it offered minus a
//     burst-and-storage allowance — one bucket σ plus, per hop, the
//     buffer that may still hold its bytes and the bits in flight on
//     the wire.
//   - reserved throughput: a sustained conformant flow (greedy, or CBR
//     at ≥ ρ) delivers its reserved rate ρ over its active window, up
//     to the same allowance.
//
// Flows whose route crosses a failed or rate-cut link are Degraded:
// the admission decision assumed the declared capacity, so their
// guarantees are void for the run and only a no-panic sanity assertion
// is emitted. Rejected flows assert that they carried no traffic.
func Verify(t *Topology, res *Result) []report.Assertion {
	var as []report.Assertion
	for fi := range t.Flows {
		f := &t.Flows[fi]
		fr := &res.Flows[fi]
		if !fr.Admitted {
			var err error
			if fr.Delivered.Packets != 0 || fr.Offered.Packets != 0 {
				err = fmt.Errorf("rejected flow carried traffic: offered %d, delivered %d packets",
					fr.Offered.Packets, fr.Delivered.Packets)
			}
			as = append(as, report.Assertion{
				Name:   "rejected-flow-idle",
				Detail: fmt.Sprintf("flow %s", f.Name),
				Err:    err,
			})
			continue
		}
		if fr.Degraded {
			as = append(as, report.Assertion{
				Name:   "degraded-flow-measured",
				Detail: fmt.Sprintf("flow %s (route crosses a failed or rate-cut link; guarantees void)", f.Name),
			})
			continue
		}
		if f.Source == SourceTCP {
			// The closed-loop contract: under per-flow buffer
			// management, an admitted TCP flow's goodput tracks its
			// reserved share of the bottleneck. Only guaranteed schemes
			// (fifo/wfq + threshold/sharing) are held to the floor —
			// taildrop and RED make no per-flow promise, which is
			// exactly the GFR comparison's point.
			if guaranteedRoute(t, f) && !fr.Left {
				active := fr.LeaveAt - fr.JoinAt
				want := units.Bytes(TCPGoodputFraction*float64(units.BytesAtRate(f.Spec.TokenRate, active))) - allowance(t, f)
				as = append(as, report.Assertion{
					Name: "tcp-goodput-floor",
					Detail: fmt.Sprintf("flow %s: goodput ≥ %.2g·ρ = %.2g·%v over %.3gs",
						f.Name, TCPGoodputFraction, TCPGoodputFraction, f.Spec.TokenRate, active),
					Err: check(fr.Goodput.Bytes >= want,
						"goodput %v (%v), want ≥ %v", fr.Goodput.Bytes, fr.GoodputRate, want),
				})
			}
			continue // tcp flows are unshaped; no conformance contract
		}
		if !f.Shaped {
			continue // no conformance contract to verify
		}
		for _, li := range f.Route {
			if res.Links[li].Flows == nil {
				continue // run used Options.SkipLinkFlows; per-flow loss not attributable
			}
			lf := &res.Links[li].Flows[fi]
			var err error
			if lf.ConformantDropped.Packets != 0 {
				err = fmt.Errorf("dropped %d conformant packets (%v)",
					lf.ConformantDropped.Packets, lf.ConformantDropped.Bytes)
			}
			as = append(as, report.Assertion{
				Name:   "zero-conformant-loss",
				Detail: fmt.Sprintf("flow %s at link %s", f.Name, res.Links[li].Name),
				Err:    err,
			})
		}
		allow := allowance(t, f)
		as = append(as, report.Assertion{
			Name:   "conservation",
			Detail: fmt.Sprintf("flow %s: delivered ≥ offered − %v", f.Name, allow),
			Err: check(fr.Delivered.Bytes >= fr.Offered.Bytes-allow,
				"delivered %v of %v offered (allowance %v)", fr.Delivered.Bytes, fr.Offered.Bytes, allow),
		})
		if sustained(f) && !fr.Left {
			active := fr.LeaveAt - fr.JoinAt
			want := units.BytesAtRate(f.Spec.TokenRate, active) - allow
			as = append(as, report.Assertion{
				Name:   "reserved-throughput",
				Detail: fmt.Sprintf("flow %s: ≥ ρ = %v over %.3gs", f.Name, f.Spec.TokenRate, active),
				Err: check(fr.Delivered.Bytes >= want,
					"delivered %v (%v), want ≥ %v", fr.Delivered.Bytes, fr.Throughput, want),
			})
		}
	}
	return as
}

// VerifyMany verifies every run, prefixing details with the run's seed
// when there is more than one.
func VerifyMany(t *Topology, results []Result) []report.Assertion {
	if len(results) == 1 {
		return Verify(t, &results[0])
	}
	var as []report.Assertion
	for i := range results {
		for _, a := range Verify(t, &results[i]) {
			a.Detail = fmt.Sprintf("seed %d: %s", results[i].Seed, a.Detail)
			as = append(as, a)
		}
	}
	return as
}

// allowance bounds how many of a conformant flow's offered bytes may
// legitimately be missing from delivery at the horizon: the bucket σ,
// plus per hop the buffer that may still store its packets and the
// bytes in flight on the propagation wire, plus one packet per hop in
// transmission. The bound is independent of how the run was executed:
// a sharded run exchanges in-flight packets at window barriers without
// perturbing their timestamps (the hand-off reproduces the exact
// arrival instant fl(departure + propagation) an unsharded After would
// have used), so "in flight on the wire" means the same set of bytes —
// and the same allowance — at every Options.Shards value.
func allowance(t *Topology, f *Flow) units.Bytes {
	a := f.Spec.BucketSize
	for _, li := range f.Route {
		l := &t.Links[li]
		a += l.Buffer + units.BytesAtRate(l.Rate, l.PropDelay) + f.PacketSize
	}
	return a
}

// TCPGoodputFraction is the fraction of its reserved rate ρ an
// admitted TCP flow must achieve as goodput on an all-guaranteed route
// (the tcp-goodput-floor assertion). The paper-faithful expectation is
// the full proportional share R·ρᵢ/Σρⱼ ≥ ρᵢ; the asserted floor is
// deliberately conservative at ρ/2 to absorb slow-start ramp-up and
// ACK-clocking transients on short horizons.
const TCPGoodputFraction = 0.5

// guaranteedRoute reports whether every hop of the flow's forward
// route runs a scheme the paper's per-flow protection claim covers
// (fifo/wfq scheduling with threshold/sharing buffer management).
func guaranteedRoute(t *Topology, f *Flow) bool {
	for _, li := range f.Route {
		l := &t.Links[li]
		switch l.scheme.SchedulerName() {
		case "fifo", "wfq":
		default:
			return false
		}
		switch l.scheme.ManagerName() {
		case "threshold", "sharing":
		default:
			return false
		}
	}
	return true
}

// sustained reports whether the flow's source keeps its leaky bucket
// busy for the whole run, making delivered-rate ≥ ρ a sound check.
func sustained(f *Flow) bool {
	switch f.Source {
	case SourceGreedy:
		return true
	case SourceCBR:
		return f.AvgRate >= f.Spec.TokenRate
	default:
		return false
	}
}

// check returns nil when ok, else the formatted violation.
func check(ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return fmt.Errorf(format, args...)
}
