package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// The JSON scenario format mirrors the paper's units: rates in Mbits/s,
// buffers and bucket depths in KBytes, propagation delays in
// milliseconds, times in simulated seconds. Alongside those legacy
// numeric fields, every quantity is also accepted in the suffixed wire
// encoding shared with the qosd control plane ("48Mbit/s", "100KB",
// "5ms", and flow "spec" contract objects); a file may use either form
// per field, never both.
type jsonTopology struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Links       []jsonLink  `json:"links"`
	Flows       []jsonFlow  `json:"flows"`
	Events      []jsonEvent `json:"events,omitempty"`
}

type jsonLink struct {
	Name       string  `json:"name,omitempty"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	RateMbps   float64 `json:"rate_mbps,omitempty"`
	BufferKB   float64 `json:"buffer_kb,omitempty"`
	HeadroomKB float64 `json:"headroom_kb,omitempty"`
	PropMs     float64 `json:"prop_delay_ms,omitempty"`
	Scheme     string  `json:"scheme,omitempty"`
	Queues     []int   `json:"queues,omitempty"`

	// Wire-typed alternatives to the numeric fields above.
	Rate      units.Rate  `json:"rate,omitempty"`
	Buffer    units.Bytes `json:"buffer,omitempty"`
	Headroom  units.Bytes `json:"headroom,omitempty"`
	PropDelay units.Time  `json:"prop_delay,omitempty"`
}

type jsonFlow struct {
	Name        string   `json:"name,omitempty"`
	Route       []string `json:"route"`
	PeakMbps    float64  `json:"peak_mbps,omitempty"`
	TokenMbps   float64  `json:"token_mbps,omitempty"`
	BucketKB    float64  `json:"bucket_kb,omitempty"`
	AvgMbps     float64  `json:"avg_mbps,omitempty"`
	BurstKB     float64  `json:"burst_kb,omitempty"`
	PacketBytes float64  `json:"packet_bytes,omitempty"`
	Source      string   `json:"source,omitempty"`
	Shaped      bool     `json:"shaped,omitempty"`
	Class       int      `json:"class,omitempty"`

	// Spec is the wire-typed alternative to peak/token/bucket: the same
	// {"peak","token","bucket"} contract object a qosd join carries.
	Spec    *packet.FlowSpec `json:"spec,omitempty"`
	AvgRate units.Rate       `json:"avg,omitempty"`
	Burst   units.Bytes      `json:"burst,omitempty"`
	PktSize units.Bytes      `json:"packet,omitempty"`
}

type jsonEvent struct {
	// At accepts both encodings directly through units.Time: a suffixed
	// wire duration ("250ms", "1s") or a bare number of simulated
	// seconds.
	At       units.Time `json:"at"`
	Type     string     `json:"type"`
	Flow     string     `json:"flow,omitempty"`
	Link     string     `json:"link,omitempty"`
	RateMbps float64    `json:"rate_mbps,omitempty"`
	Rate     units.Rate `json:"rate,omitempty"`
}

// Parse reads and validates a JSON scenario. Unknown fields are
// rejected so typos in hand-written files surface immediately.
func Parse(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jt jsonTopology
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	t := &Topology{Name: jt.Name, Description: jt.Description}
	// pick resolves one quantity given in at most one of its two
	// encodings (legacy numeric field vs wire-typed field).
	pick := func(where, field string, legacy, wire float64) (float64, error) {
		if legacy != 0 && wire != 0 {
			return 0, fmt.Errorf("topology: %s: both %s_mbps-style and %q forms given", where, field, field)
		}
		if wire != 0 {
			return wire, nil
		}
		return legacy, nil
	}
	for i, jl := range jt.Links {
		where := fmt.Sprintf("link %d", i)
		rate, err := pick(where, "rate", units.MbitsPerSecond(jl.RateMbps).BitsPerSecond(), jl.Rate.BitsPerSecond())
		if err != nil {
			return nil, err
		}
		buffer, err := pick(where, "buffer", float64(units.KiloBytes(jl.BufferKB)), float64(jl.Buffer))
		if err != nil {
			return nil, err
		}
		headroom, err := pick(where, "headroom", float64(units.KiloBytes(jl.HeadroomKB)), float64(jl.Headroom))
		if err != nil {
			return nil, err
		}
		prop, err := pick(where, "prop_delay", jl.PropMs/1000, jl.PropDelay.SecondsFloat())
		if err != nil {
			return nil, err
		}
		t.Links = append(t.Links, Link{
			Name:      jl.Name,
			From:      jl.From,
			To:        jl.To,
			Rate:      units.Rate(rate),
			Buffer:    units.Bytes(buffer),
			Headroom:  units.Bytes(headroom),
			PropDelay: prop,
			Spec:      jl.Scheme,
			Queues:    jl.Queues,
		})
	}
	for i, jf := range jt.Flows {
		where := fmt.Sprintf("flow %d", i)
		if jf.Spec != nil && (jf.PeakMbps != 0 || jf.TokenMbps != 0 || jf.BucketKB != 0) {
			return nil, fmt.Errorf("topology: %s: both a wire-typed \"spec\" and peak/token/bucket fields given", where)
		}
		avg, err := pick(where, "avg", units.MbitsPerSecond(jf.AvgMbps).BitsPerSecond(), jf.AvgRate.BitsPerSecond())
		if err != nil {
			return nil, err
		}
		burst, err := pick(where, "burst", float64(units.KiloBytes(jf.BurstKB)), float64(jf.Burst))
		if err != nil {
			return nil, err
		}
		pkt, err := pick(where, "packet", jf.PacketBytes, float64(jf.PktSize))
		if err != nil {
			return nil, err
		}
		f := Flow{
			Name:       jf.Name,
			RouteNodes: jf.Route,
			Source:     SourceKind(jf.Source),
			AvgRate:    units.Rate(avg),
			MeanBurst:  units.Bytes(burst),
			PacketSize: units.Bytes(pkt),
			Shaped:     jf.Shaped,
			Class:      jf.Class,
		}
		if jf.Spec != nil {
			f.Spec = *jf.Spec
		} else {
			f.Spec.PeakRate = units.MbitsPerSecond(jf.PeakMbps)
			f.Spec.TokenRate = units.MbitsPerSecond(jf.TokenMbps)
			f.Spec.BucketSize = units.KiloBytes(jf.BucketKB)
		}
		t.Flows = append(t.Flows, f)
	}
	for i, je := range jt.Events {
		rate, err := pick(fmt.Sprintf("event %d", i), "rate", units.MbitsPerSecond(je.RateMbps).BitsPerSecond(), je.Rate.BitsPerSecond())
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, Event{
			At:   je.At.SecondsFloat(),
			Kind: EventKind(je.Type),
			Flow: je.Flow,
			Link: je.Link,
			Rate: units.Rate(rate),
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Load parses and validates the scenario file at path.
func Load(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
