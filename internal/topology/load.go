package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bufqos/internal/units"
)

// The JSON scenario format mirrors the paper's units: rates in Mbits/s,
// buffers and bucket depths in KBytes, propagation delays in
// milliseconds, times in simulated seconds.
type jsonTopology struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Links       []jsonLink  `json:"links"`
	Flows       []jsonFlow  `json:"flows"`
	Events      []jsonEvent `json:"events,omitempty"`
}

type jsonLink struct {
	Name       string  `json:"name,omitempty"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	RateMbps   float64 `json:"rate_mbps"`
	BufferKB   float64 `json:"buffer_kb"`
	HeadroomKB float64 `json:"headroom_kb,omitempty"`
	PropMs     float64 `json:"prop_delay_ms,omitempty"`
	Scheme     string  `json:"scheme,omitempty"`
	Queues     []int   `json:"queues,omitempty"`
}

type jsonFlow struct {
	Name        string   `json:"name,omitempty"`
	Route       []string `json:"route"`
	PeakMbps    float64  `json:"peak_mbps,omitempty"`
	TokenMbps   float64  `json:"token_mbps"`
	BucketKB    float64  `json:"bucket_kb"`
	AvgMbps     float64  `json:"avg_mbps,omitempty"`
	BurstKB     float64  `json:"burst_kb,omitempty"`
	PacketBytes float64  `json:"packet_bytes,omitempty"`
	Source      string   `json:"source,omitempty"`
	Shaped      bool     `json:"shaped,omitempty"`
}

type jsonEvent struct {
	At       float64 `json:"at"`
	Type     string  `json:"type"`
	Flow     string  `json:"flow,omitempty"`
	Link     string  `json:"link,omitempty"`
	RateMbps float64 `json:"rate_mbps,omitempty"`
}

// Parse reads and validates a JSON scenario. Unknown fields are
// rejected so typos in hand-written files surface immediately.
func Parse(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jt jsonTopology
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	t := &Topology{Name: jt.Name, Description: jt.Description}
	for _, jl := range jt.Links {
		t.Links = append(t.Links, Link{
			Name:      jl.Name,
			From:      jl.From,
			To:        jl.To,
			Rate:      units.MbitsPerSecond(jl.RateMbps),
			Buffer:    units.KiloBytes(jl.BufferKB),
			Headroom:  units.KiloBytes(jl.HeadroomKB),
			PropDelay: jl.PropMs / 1000,
			Spec:      jl.Scheme,
			Queues:    jl.Queues,
		})
	}
	for _, jf := range jt.Flows {
		f := Flow{
			Name:       jf.Name,
			RouteNodes: jf.Route,
			Source:     SourceKind(jf.Source),
			AvgRate:    units.MbitsPerSecond(jf.AvgMbps),
			MeanBurst:  units.KiloBytes(jf.BurstKB),
			PacketSize: units.Bytes(jf.PacketBytes),
			Shaped:     jf.Shaped,
		}
		f.Spec.PeakRate = units.MbitsPerSecond(jf.PeakMbps)
		f.Spec.TokenRate = units.MbitsPerSecond(jf.TokenMbps)
		f.Spec.BucketSize = units.KiloBytes(jf.BucketKB)
		t.Flows = append(t.Flows, f)
	}
	for _, je := range jt.Events {
		t.Events = append(t.Events, Event{
			At:   je.At,
			Kind: EventKind(je.Type),
			Flow: je.Flow,
			Link: je.Link,
			Rate: units.MbitsPerSecond(je.RateMbps),
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Load parses and validates the scenario file at path.
func Load(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
