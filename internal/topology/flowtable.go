package topology

// FlowTable is the struct-of-arrays route index of a validated
// topology: every flow's route flattened into one CSR layout, plus the
// inverse mapping from each link to the flows traversing it. The
// scenario engine uses it for O(1) next-hop and link-local flow-id
// lookups on the forwarding fast path, instead of chasing per-flow
// route slices and per-link maps.
type FlowTable struct {
	// RouteOff has one entry per flow plus a sentinel: flow f's hops
	// occupy RouteLink[RouteOff[f]:RouteOff[f+1]].
	RouteOff []int32
	// RouteLink is the link index at each hop.
	RouteLink []int32
	// RouteLocal is the flow's link-local index at each hop: its
	// position in LinkFlows[RouteLink[h]]. Engines that build a link's
	// data plane over only the flows traversing it renumber packet Flow
	// fields with these.
	RouteLocal []int32
	// LinkFlows maps each link to the global ids of the flows traversing
	// it, in ascending order. A flow crossing a link twice (a looping
	// route) appears once.
	LinkFlows [][]int32
}

// NewFlowTable indexes a validated topology (Routes must be resolved).
func NewFlowTable(t *Topology) *FlowTable {
	ft := &FlowTable{
		RouteOff:  make([]int32, len(t.Flows)+1),
		LinkFlows: make([][]int32, len(t.Links)),
	}
	hops := 0
	for i := range t.Flows {
		hops += len(t.Flows[i].Route)
	}
	ft.RouteLink = make([]int32, 0, hops)
	ft.RouteLocal = make([]int32, 0, hops)
	// Iterating flows in id order makes every LinkFlows list ascending
	// without a sort.
	seen := make([]int32, len(t.Links)) // last flow appended per link, +1
	for fi := range t.Flows {
		ft.RouteOff[fi] = int32(len(ft.RouteLink))
		for _, li := range t.Flows[fi].Route {
			if seen[li] != int32(fi)+1 {
				ft.LinkFlows[li] = append(ft.LinkFlows[li], int32(fi))
				seen[li] = int32(fi) + 1
			}
			ft.RouteLink = append(ft.RouteLink, int32(li))
			ft.RouteLocal = append(ft.RouteLocal, int32(len(ft.LinkFlows[li])-1))
		}
	}
	ft.RouteOff[len(t.Flows)] = int32(len(ft.RouteLink))
	return ft
}

// Hops returns flow f's route length.
func (ft *FlowTable) Hops(f int) int {
	return int(ft.RouteOff[f+1] - ft.RouteOff[f])
}
