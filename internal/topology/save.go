package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bufqos/internal/units"
)

// Write encodes a validated scenario in the same JSON schema Parse
// reads (rates in Mbits/s, sizes in KBytes, propagation delays in
// milliseconds), so a programmatically built Topology — a fuzzer's
// shrunk reproducer, a generated benchmark — can be replayed with
// `qnet -topology file.json`. Parse(Write(t)) yields an equivalent
// scenario: defaults that Validate filled in (link names, source kinds,
// average rates) are written explicitly, which keeps the file
// self-describing.
func Write(w io.Writer, t *Topology) error {
	jt := jsonTopology{Name: t.Name, Description: t.Description}
	for i := range t.Links {
		l := &t.Links[i]
		jl := jsonLink{
			From:       l.From,
			To:         l.To,
			RateMbps:   l.Rate.Mbits(),
			BufferKB:   l.Buffer.KB(),
			HeadroomKB: l.Headroom.KB(),
			PropMs:     l.PropDelay * 1000,
			Scheme:     l.Spec,
			Queues:     l.Queues,
		}
		// Keep explicit names only when they differ from the default.
		if l.Name != l.From+"->"+l.To {
			jl.Name = l.Name
		}
		jt.Links = append(jt.Links, jl)
	}
	for i := range t.Flows {
		f := &t.Flows[i]
		jt.Flows = append(jt.Flows, jsonFlow{
			Name:        f.Name,
			Route:       f.RouteNodes,
			PeakMbps:    f.Spec.PeakRate.Mbits(),
			TokenMbps:   f.Spec.TokenRate.Mbits(),
			BucketKB:    f.Spec.BucketSize.KB(),
			AvgMbps:     f.AvgRate.Mbits(),
			BurstKB:     f.MeanBurst.KB(),
			PacketBytes: float64(f.PacketSize),
			Source:      string(f.Source),
			Shaped:      f.Shaped,
			Class:       f.Class,
		})
	}
	for i := range t.Events {
		ev := &t.Events[i]
		jt.Events = append(jt.Events, jsonEvent{
			At:       units.Seconds(ev.At),
			Type:     string(ev.Kind),
			Flow:     ev.Flow,
			Link:     ev.Link,
			RateMbps: ev.Rate.Mbits(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jt); err != nil {
		return fmt.Errorf("topology %s: %w", t.Name, err)
	}
	return nil
}

// Save writes the scenario to path via Write, creating or truncating
// the file.
func Save(path string, t *Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topology: %w", err)
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
