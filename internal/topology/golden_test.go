package topology_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bufqos/internal/topology"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/goldens from the current engine")

// TestResultGoldens pins the engine's small-n results byte for byte:
// every shipped scenario is run short and its full Result (per-flow and
// per-link counters, delays, goodput, rejections, event count) is
// compared against a committed JSON golden. The goldens were generated
// before the flow-state refactor (map-based TCP send records,
// pointer-array collectors), so this test proves the index-based flow
// tables reproduce the old data plane exactly. Regenerate deliberately
// with `go test ./internal/topology -run TestResultGoldens -update-goldens`.
func TestResultGoldens(t *testing.T) {
	scenarios, err := filepath.Glob(filepath.Join("..", "..", "topologies", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) == 0 {
		t.Fatal("no shipped scenarios found under topologies/")
	}
	for _, path := range scenarios {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			topo, err := topology.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := topology.Run(t.Context(), topo, topology.Options{
				Duration: 3,
				Seed:     42,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(&res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			goldenPath := filepath.Join("testdata", "goldens", name)
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens to create): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("result diverges from the committed golden %s;\nif the change is intentional, regenerate with -update-goldens and explain the divergence in the commit", goldenPath)
			}
		})
	}
}
